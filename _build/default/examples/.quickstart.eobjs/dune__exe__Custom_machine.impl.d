examples/custom_machine.ml: Cluster Ddg Format Hcv_ir Hcv_machine Hcv_sched Hcv_sim Hcv_support Hcv_workload Homo Icn List Loop Machine Mii Q Rng Schedule Shapes
