examples/quickstart.mli:
