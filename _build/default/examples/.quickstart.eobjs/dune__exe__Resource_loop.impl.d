examples/resource_loop.ml: Format Hcv_core Hcv_ir Hcv_machine Hcv_sched Hcv_support Hcv_workload List Loop Opconfig Pipeline Presets Printf Rng Select Shapes
