examples/quickstart.ml: Ddg Format Hcv_ir Hcv_machine Hcv_sched Hcv_sim Hcv_support Homo Loop Machine Mii Opcode Presets Q Schedule
