examples/recurrence_loop.mli:
