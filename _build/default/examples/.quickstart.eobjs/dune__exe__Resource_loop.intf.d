examples/resource_loop.mli:
