(* Quickstart: build a loop, modulo-schedule it on the paper's 4-cluster
   machine, and print the schedule and its cost metrics.

   Run with: dune exec examples/quickstart.exe *)

open Hcv_support
open Hcv_ir
open Hcv_machine
open Hcv_sched

let () =
  (* 1. Describe a loop body: a floating-point dot product.
        s += a[i] * b[i], with s carried across iterations. *)
  let b = Ddg.Builder.create () in
  let ld_a = Ddg.Builder.add_instr b ~name:"ld_a" (Opcode.make Memory Fp) in
  let ld_b = Ddg.Builder.add_instr b ~name:"ld_b" (Opcode.make Memory Fp) in
  let mul = Ddg.Builder.add_instr b ~name:"mul" (Opcode.make Mult Fp) in
  let acc = Ddg.Builder.add_instr b ~name:"acc" (Opcode.make Arith Fp) in
  Ddg.Builder.add_edge b ld_a mul;
  Ddg.Builder.add_edge b ld_b mul;
  Ddg.Builder.add_edge b mul acc;
  (* The accumulator depends on its own previous iteration. *)
  Ddg.Builder.add_edge b ~distance:1 acc acc;
  let loop = Loop.make ~trip:1000 ~name:"dotprod" (Ddg.Builder.build b) in

  (* 2. The machine: the paper's 4-cluster VLIW with one register bus. *)
  let machine = Presets.machine_4c ~buses:1 in
  Format.printf "%a@.@." Machine.pp machine;

  (* 3. The loop's static bounds. *)
  Format.printf "resMII = %d cycles, recMII = %d cycles, class = %s@.@."
    (Mii.res_mii machine loop.Loop.ddg)
    (Mii.rec_mii loop.Loop.ddg)
    (Mii.class_to_string (Mii.classify machine loop.Loop.ddg));

  (* 4. Modulo-schedule it at the 1 GHz reference. *)
  match Homo.schedule ~machine ~cycle_time:Q.one ~loop () with
  | Error msg -> Format.printf "scheduling failed: %s@." msg
  | Ok (sched, stats) ->
    Format.printf "%a@.@." Schedule.pp sched;
    Format.printf "II = %d (MII was %d), iteration length = %a ns@."
      stats.Homo.ii stats.Homo.mii Q.pp (Schedule.it_length sched);
    Format.printf "1000 iterations take %.1f ns@."
      (Schedule.exec_time_ns sched ~trip:1000);
    (* 5. Replay it on the cycle-level simulator as a cross-check. *)
    let r = Hcv_sim.Simulator.run ~schedule:sched ~trip:1000 () in
    Format.printf "simulator: %a@." Hcv_sim.Simulator.pp_result r
