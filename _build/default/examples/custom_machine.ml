(* Defining a machine that is not the paper's: two asymmetric clusters
   (a beefy FP cluster and a lean integer/memory cluster) with two
   register buses, then scheduling a stencil on it — the library is not
   hard-wired to the 4-cluster evaluation machine.

   Run with: dune exec examples/custom_machine.exe *)

open Hcv_support
open Hcv_ir
open Hcv_machine
open Hcv_sched
open Hcv_workload

let () =
  let fp_heavy =
    Cluster.make ~name:"fp-heavy" ~int_fus:1 ~fp_fus:3 ~mem_ports:1
      ~registers:32 ()
  in
  let mem_lean =
    Cluster.make ~name:"mem-lean" ~int_fus:2 ~fp_fus:1 ~mem_ports:2
      ~registers:24 ()
  in
  let machine =
    Machine.make ~name:"asymmetric-2c"
      ~clusters:[| fp_heavy; mem_lean |]
      ~icn:(Icn.make ~buses:2 ())
      ()
  in
  Format.printf "%a@.@." Machine.pp machine;

  let rng = Rng.create 99 in
  let loop = Shapes.stencil ~rng ~name:"stencil9" ~points:9 ~trip:400 () in
  Format.printf "loop: %d instructions, resMII=%d, recMII=%d@.@."
    (Ddg.n_instrs loop.Loop.ddg)
    (Mii.res_mii machine loop.Loop.ddg)
    (Mii.rec_mii loop.Loop.ddg);

  (* Schedule at 1 GHz, then at a hypothetical 1.25 GHz part. *)
  List.iter
    (fun (label, ct) ->
      match Homo.schedule ~machine ~cycle_time:ct ~loop () with
      | Error msg -> Format.printf "%s: failed: %s@." label msg
      | Ok (sched, stats) ->
        Format.printf "%s: II=%d, it_length=%a ns, comms/iter=%d, %d stages@."
          label stats.Homo.ii Q.pp (Schedule.it_length sched)
          (Schedule.n_comms sched) (Schedule.stage_count sched);
        let r = Hcv_sim.Simulator.run ~schedule:sched ~trip:400 () in
        Format.printf "  simulated: %a@." Hcv_sim.Simulator.pp_result r)
    [ ("1 GHz   ", Q.one); ("1.25 GHz", Q.make 4 5) ]
