(* Command-line driver; see `hcvliw --help`. *)
let () = Cli.main ()
