bin/hcvliw.ml: Cli
