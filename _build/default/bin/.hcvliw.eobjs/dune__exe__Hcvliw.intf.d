bin/hcvliw.mli:
