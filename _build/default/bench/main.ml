(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Table 1, Table 2, Figures 6-9) on the synthetic SPECfp
   populations, plus Bechamel micro-benchmarks of the compiler itself.

   Usage:
     main.exe [table1] [table2] [fig6] [fig7] [fig8] [fig9] [ablation]
              [micro] [--quick]
   With no selector, everything runs.  --quick shrinks the populations
   and skips the 2-bus variants of the sensitivity figures. *)

open Hcv_support
open Hcv_ir
open Hcv_machine
open Hcv_energy
open Hcv_core
open Hcv_workload

let quick = ref false
let seed = 42

let fig_loops () = if !quick then Some 6 else Some 10
let fig6_loops () = if !quick then Some 8 else None (* per-spec default *)
let sense_buses () = if !quick then [ 1 ] else [ 1; 2 ]

(* ------------------------------------------------------------------ *)

let table1 () =
  let t =
    Tablefmt.create
      ~title:
        "Table 1: instruction latencies and energy relative to an integer add"
      [
        ("class", Tablefmt.Left);
        ("INT lat", Tablefmt.Right);
        ("INT E", Tablefmt.Right);
        ("FP lat", Tablefmt.Right);
        ("FP E", Tablefmt.Right);
      ]
  in
  List.iter
    (fun (label, clazz) ->
      let lat d = Opcode.latency (Opcode.make clazz d) in
      let en d = Opcode.energy (Opcode.make clazz d) in
      Tablefmt.add_row t
        [
          label;
          string_of_int (lat Opcode.Int);
          Printf.sprintf "%.1f" (en Opcode.Int);
          string_of_int (lat Opcode.Fp);
          Printf.sprintf "%.1f" (en Opcode.Fp);
        ])
    [
      ("Memory", Opcode.Memory);
      ("Arithmetic", Opcode.Arith);
      ("Multiply", Opcode.Mult);
      ("Division/Modulo/sqrt", Opcode.Div);
    ];
  Tablefmt.print t;
  print_newline ()

(* ------------------------------------------------------------------ *)

let table2 () =
  let machine = Presets.machine_4c ~buses:1 in
  let t =
    Tablefmt.create
      ~title:
        "Table 2: share of execution time per constraint class (paper -> ours)"
      [
        ("benchmark", Tablefmt.Left);
        ("res paper", Tablefmt.Right);
        ("res ours", Tablefmt.Right);
        ("border paper", Tablefmt.Right);
        ("border ours", Tablefmt.Right);
        ("rec paper", Tablefmt.Right);
        ("rec ours", Tablefmt.Right);
      ]
  in
  List.iter
    (fun spec ->
      let loops = Specfp.loops ~seed spec in
      let res, border, rec_ = Specfp.table2_row machine loops in
      Tablefmt.add_row t
        [
          spec.Specfp.name;
          Tablefmt.cell_pct spec.Specfp.res_share;
          Tablefmt.cell_pct res;
          Tablefmt.cell_pct spec.Specfp.border_share;
          Tablefmt.cell_pct border;
          Tablefmt.cell_pct spec.Specfp.rec_share;
          Tablefmt.cell_pct rec_;
        ])
    Specfp.all;
  Tablefmt.print t;
  print_newline ()

(* ------------------------------------------------------------------ *)

let run_all_benchmarks ?n_loops ?(params = Params.default) ~buses () =
  let machine = Presets.machine_4c ~buses in
  List.filter_map
    (fun spec ->
      let loops = Specfp.loops ?n_loops ~seed spec in
      match
        Pipeline.run ~params ~machine ~name:spec.Specfp.name ~loops ()
      with
      | Ok r -> Some r
      | Error msg ->
        Printf.printf "  !! %s failed: %s\n%!" spec.Specfp.name msg;
        None)
    Specfp.all

let mean_ratio results =
  Listx.mean (List.map (fun r -> r.Pipeline.ed2_ratio) results)

(* Paper Figure 6 per-benchmark readings (approximate, from the bar
   chart; 1-bus values; used only as the "paper" column). *)
let fig6_paper =
  [
    ("wupwise", 0.95); ("swim", 0.90); ("mgrid", 0.90); ("applu", 0.95);
    ("galgel", 0.85); ("facerec", 0.70); ("lucas", 0.78); ("fma3d", 0.85);
    ("sixtrack", 0.65); ("apsi", 0.85);
  ]

let fig6 () =
  List.iter
    (fun buses ->
      Printf.printf "Figure 6 (%d bus%s): ED2 normalised to the optimum homogeneous\n%!"
        buses (if buses > 1 then "es" else "");
      let results = run_all_benchmarks ?n_loops:(fig6_loops ()) ~buses () in
      let t =
        Tablefmt.create
          [
            ("benchmark", Tablefmt.Left);
            ("ED2 paper", Tablefmt.Right);
            ("ED2 ours", Tablefmt.Right);
            ("time ratio", Tablefmt.Right);
            ("energy ratio", Tablefmt.Right);
          ]
      in
      List.iter
        (fun r ->
          Tablefmt.add_row t
            [
              r.Pipeline.name;
              (match List.assoc_opt r.Pipeline.name fig6_paper with
              | Some v -> Tablefmt.cell_f v
              | None -> "-");
              Tablefmt.cell_f r.Pipeline.ed2_ratio;
              Tablefmt.cell_f r.Pipeline.time_ratio;
              Tablefmt.cell_f r.Pipeline.energy_ratio;
            ])
        results;
      Tablefmt.add_sep t;
      Tablefmt.add_row t
        [ "mean"; Tablefmt.cell_f 0.85; Tablefmt.cell_f (mean_ratio results);
          "-"; "-" ];
      Tablefmt.print t;
      print_newline ())
    [ 1; 2 ]

(* ------------------------------------------------------------------ *)

let fig7 () =
  Printf.printf
    "Figure 7: mean ED2 ratio vs number of supported frequencies\n%!";
  let t =
    Tablefmt.create
      [
        ("buses", Tablefmt.Right);
        ("any freq", Tablefmt.Right);
        ("16 freqs", Tablefmt.Right);
        ("8 freqs", Tablefmt.Right);
        ("4 freqs", Tablefmt.Right);
      ]
  in
  List.iter
    (fun buses ->
      let cells =
        List.map
          (fun steps ->
            let machine =
              Machine.with_grid
                (Presets.machine_4c ~buses)
                (Presets.grid_of_steps steps)
            in
            let results =
              List.filter_map
                (fun spec ->
                  let loops = Specfp.loops ?n_loops:(fig_loops ()) ~seed spec in
                  match
                    Pipeline.run ~machine ~name:spec.Specfp.name ~loops ()
                  with
                  | Ok r -> Some r
                  | Error _ -> None)
                Specfp.all
            in
            Tablefmt.cell_f (mean_ratio results))
          [ None; Some 16; Some 8; Some 4 ]
      in
      Tablefmt.add_row t (string_of_int buses :: cells))
    (sense_buses ());
  Tablefmt.print t;
  Printf.printf
    "(paper: 16 freqs within 0.1%% of any; 8 freqs < 1%% worse; 4 freqs ~2%% worse)\n\n%!"

(* ------------------------------------------------------------------ *)

let fig8 () =
  Printf.printf
    "Figure 8: mean ED2 ratio varying the ICN/cache energy shares\n%!";
  let variants =
    [
      ("0.10/0.25", 0.10, 0.25);
      ("0.10/0.33", 0.10, 1.0 /. 3.0);
      ("0.15/0.30", 0.15, 0.30);
      ("0.20/0.25", 0.20, 0.25);
      ("0.20/0.30", 0.20, 0.30);
    ]
  in
  let t =
    Tablefmt.create
      (("buses", Tablefmt.Right)
      :: List.map (fun (label, _, _) -> (label, Tablefmt.Right)) variants)
  in
  List.iter
    (fun buses ->
      let cells =
        List.map
          (fun (_, frac_icn, frac_cache) ->
            let params = Params.make ~frac_icn ~frac_cache () in
            let results =
              run_all_benchmarks ?n_loops:(fig_loops ()) ~params ~buses ()
            in
            Tablefmt.cell_f (mean_ratio results))
          variants
      in
      Tablefmt.add_row t (string_of_int buses :: cells))
    (sense_buses ());
  Tablefmt.print t;
  Printf.printf "(paper: results vary only slightly across shares)\n\n%!"

(* ------------------------------------------------------------------ *)

let fig9 () =
  Printf.printf
    "Figure 9: mean ED2 ratio varying the leakage shares (cluster/ICN/cache)\n%!";
  let variants =
    [
      ("0.25/0.05/0.60", 0.25, 0.05, 0.60);
      ("0.33/0.10/0.66", 1.0 /. 3.0, 0.10, 2.0 /. 3.0);
      ("0.40/0.15/0.70", 0.40, 0.15, 0.70);
      ("0.20/0.10/0.75", 0.20, 0.10, 0.75);
    ]
  in
  let t =
    Tablefmt.create
      (("buses", Tablefmt.Right)
      :: List.map (fun (label, _, _, _) -> (label, Tablefmt.Right)) variants)
  in
  List.iter
    (fun buses ->
      let cells =
        List.map
          (fun (_, leak_cluster, leak_icn, leak_cache) ->
            let params = Params.make ~leak_cluster ~leak_icn ~leak_cache () in
            let results =
              run_all_benchmarks ?n_loops:(fig_loops ()) ~params ~buses ()
            in
            Tablefmt.cell_f (mean_ratio results))
          variants
      in
      Tablefmt.add_row t (string_of_int buses :: cells))
    (sense_buses ());
  Tablefmt.print t;
  Printf.printf "(paper: changing leakage shares has little impact)\n\n%!"

(* ------------------------------------------------------------------ *)

(* Ablations of the two heterogeneous-specific scheduling ingredients
   (§4.1): recurrence pre-placement and ED2-guided refinement; plus the
   §5.3 unrolling mitigation for coarse frequency grids. *)
let ablation () =
  Printf.printf "Ablations (design choices called out in DESIGN.md)\n%!";
  let machine = Presets.machine_4c ~buses:1 in
  let bench_names = [ "sixtrack"; "facerec"; "fma3d" ] in
  let t =
    Tablefmt.create
      ~title:"measured ED2 vs optimum homogeneous, per scheduler variant"
      [
        ("benchmark", Tablefmt.Left);
        ("full", Tablefmt.Right);
        ("no pre-placement", Tablefmt.Right);
        ("schedulability score", Tablefmt.Right);
      ]
  in
  List.iter
    (fun name ->
      let spec = Option.get (Specfp.find name) in
      let loops = Specfp.loops ?n_loops:(fig_loops ()) ~seed spec in
      match Profile.profile ~machine ~loops with
      | Error msg -> Printf.printf "  !! %s: %s\n%!" name msg
      | Ok profile ->
        let units =
          Units.of_reference ~params:Params.default ~n_clusters:4
            profile.Profile.activity
        in
        let ctx = Model.ctx ~params:Params.default ~units () in
        let homo = Select.optimum_homogeneous ~ctx ~machine profile in
        let config =
          (Select.select_heterogeneous ~ctx ~machine profile).Select.config
        in
        let measure ?preplace ?score_mode () =
          let _, ed2, _ =
            Pipeline.measure_config ?preplace ?score_mode ~ctx ~machine
              ~profile ~config ()
          in
          ed2 /. homo.Select.predicted_ed2
        in
        Tablefmt.add_row t
          [
            name;
            Tablefmt.cell_f (measure ());
            Tablefmt.cell_f (measure ~preplace:false ());
            Tablefmt.cell_f (measure ~score_mode:Hsched.Schedulability ());
          ])
    bench_names;
  Tablefmt.print t;
  (* Unrolling vs coarse frequency grids: mean loop-level ED2 with a
     4-frequency grid, scheduling the plain vs the 2x-unrolled loop. *)
  let machine4 =
    Machine.with_grid machine (Presets.grid_of_steps (Some 4))
  in
  let spec = Option.get (Specfp.find "sixtrack") in
  let loops = Specfp.loops ~n_loops:8 ~seed spec in
  (match Profile.profile ~machine:machine4 ~loops with
  | Error msg -> Printf.printf "  !! unroll ablation: %s\n%!" msg
  | Ok profile ->
    let units =
      Units.of_reference ~params:Params.default ~n_clusters:4
        profile.Profile.activity
    in
    let ctx = Model.ctx ~params:Params.default ~units () in
    let config =
      (Select.select_heterogeneous ~ctx ~machine:machine4 profile).Select.config
    in
    let sync_and_time unroll =
      List.fold_left
        (fun (bumps, time) (lp : Profile.loop_profile) ->
          let loop = Hcv_sched.Unroll.loop ~factor:unroll lp.Profile.loop in
          match Hsched.schedule ~ctx ~config ~loop () with
          | Ok (sched, stats) ->
            ( bumps + stats.Hsched.sync_bumps,
              time
              +. lp.Profile.reps
                 *. Hcv_sched.Schedule.exec_time_ns sched
                      ~trip:loop.Loop.trip )
          | Error _ -> (bumps, time))
        (0, 0.0) profile.Profile.loops
    in
    let b1, t1 = sync_and_time 1 in
    let b2, t2 = sync_and_time 2 in
    Printf.printf
      "unrolling under a 4-frequency grid (sixtrack): plain %d sync bumps, \
       %.0f ns; unrolled x2 %d sync bumps, %.0f ns (%.1f%% time change)\n\n%!"
      b1 t1 b2 t2
      (100.0 *. ((t2 /. t1) -. 1.0)));
  ()

(* ------------------------------------------------------------------ *)

let micro () =
  Printf.printf "Micro-benchmarks (Bechamel)\n%!";
  let open Bechamel in
  let machine = Presets.machine_4c ~buses:1 in
  let spec = Option.get (Specfp.find "galgel") in
  let loops = Specfp.loops ~n_loops:6 ~seed spec in
  let loop = List.hd loops in
  let profile = Result.get_ok (Profile.profile ~machine ~loops) in
  let units =
    Units.of_reference ~params:Params.default ~n_clusters:4
      profile.Profile.activity
  in
  let ctx = Model.ctx ~params:Params.default ~units () in
  let hetero = Select.select_heterogeneous ~ctx ~machine profile in
  let hetero_sched =
    match Hsched.schedule ~ctx ~config:hetero.Select.config ~loop () with
    | Ok (s, _) -> s
    | Error msg -> failwith msg
  in
  let tests =
    [
      Test.make ~name:"recurrence-analysis"
        (Staged.stage (fun () ->
             ignore (Recurrence.find_all loop.Loop.ddg)));
      Test.make ~name:"homogeneous-schedule"
        (Staged.stage (fun () ->
             ignore
               (Hcv_sched.Homo.schedule ~machine ~cycle_time:Q.one ~loop ())));
      Test.make ~name:"heterogeneous-schedule"
        (Staged.stage (fun () ->
             ignore (Hsched.schedule ~ctx ~config:hetero.Select.config ~loop ())));
      Test.make ~name:"config-selection"
        (Staged.stage (fun () ->
             ignore (Select.select_heterogeneous ~ctx ~machine profile)));
      Test.make ~name:"simulate-100-iters"
        (Staged.stage (fun () ->
             ignore (Hcv_sim.Simulator.run ~schedule:hetero_sched ~trip:100 ())));
    ]
  in
  let run_one test =
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) ~kde:None ()
    in
    let raw = Benchmark.all cfg instances test in
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:false
        ~predictors:[| Measure.run |]
    in
    let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
    Hashtbl.iter
      (fun name result ->
        match Analyze.OLS.estimates result with
        | Some [ est ] -> Printf.printf "  %-28s %12.0f ns/run\n%!" name est
        | Some _ | None -> Printf.printf "  %-28s (no estimate)\n%!" name)
      results
  in
  List.iter (fun test -> run_one (Test.make_grouped ~name:"" [ test ])) tests;
  print_newline ()

(* ------------------------------------------------------------------ *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  quick := List.mem "--quick" args;
  let args = List.filter (fun a -> a <> "--quick") args in
  let selected = if args = [] then [ "all" ] else args in
  let want name = List.mem name selected || List.mem "all" selected in
  if want "table1" then table1 ();
  if want "table2" then table2 ();
  if want "fig6" then fig6 ();
  if want "fig7" then fig7 ();
  if want "fig8" then fig8 ();
  if want "fig9" then fig9 ();
  if want "ablation" then ablation ();
  if want "micro" then micro ()
