(* SCCs and recurrences. *)

open Hcv_support
open Hcv_ir

let add = Opcode.make Opcode.Arith Opcode.Int

let build edges n =
  let b = Ddg.Builder.create () in
  for _ = 1 to n do
    ignore (Ddg.Builder.add_instr b add)
  done;
  List.iter
    (fun (src, dst, lat, dist) ->
      Ddg.Builder.add_edge b ~latency:lat ~distance:dist src dst)
    edges;
  Ddg.Builder.build b

let test_acyclic_singletons () =
  let g = build [ (0, 1, 1, 0); (1, 2, 1, 0) ] 3 in
  Alcotest.(check int) "3 components" 3 (List.length (Scc.of_ddg g));
  Alcotest.(check int) "no recurrences" 0 (List.length (Scc.non_trivial g))

let test_two_recurrences () =
  let g =
    build
      [ (0, 1, 1, 0); (1, 0, 1, 1); (2, 3, 1, 0); (3, 2, 1, 1); (1, 2, 1, 0) ]
      4
  in
  let recs = Scc.non_trivial g in
  Alcotest.(check int) "two recurrences" 2 (List.length recs);
  Alcotest.(check (list (list int))) "members" [ [ 0; 1 ]; [ 2; 3 ] ]
    (List.sort compare recs)

let test_self_edge () =
  let g = build [ (0, 0, 2, 1) ] 2 in
  Alcotest.(check (list (list int))) "self recurrence" [ [ 0 ] ]
    (Scc.non_trivial g)

let test_recurrence_analysis () =
  let g =
    build [ (0, 1, 3, 0); (1, 0, 3, 1); (2, 2, 2, 1); (0, 3, 1, 0) ] 4
  in
  let recs = Recurrence.find_all g in
  Alcotest.(check int) "two recurrences" 2 (List.length recs);
  (* Sorted most critical first: ratio 6 before ratio 2. *)
  let first = List.hd recs in
  Alcotest.(check bool) "critical first" true
    (Q.equal first.Recurrence.ratio (Q.of_int 6));
  Alcotest.(check (list int)) "members" [ 0; 1 ] first.Recurrence.nodes;
  Alcotest.(check int) "min_ii" 6 first.Recurrence.min_ii;
  Alcotest.(check int) "rec_mii is max" 6 (Recurrence.rec_mii g)

let test_member_map () =
  let g = build [ (0, 1, 3, 0); (1, 0, 3, 1) ] 3 in
  let recs = Recurrence.find_all g in
  let map = Recurrence.member_map g recs in
  Alcotest.(check int) "node 0 in rec 0" 0 map.(0);
  Alcotest.(check int) "node 1 in rec 0" 0 map.(1);
  Alcotest.(check int) "node 2 free" (-1) map.(2)

let test_rec_mii_no_recurrence () =
  let g = build [ (0, 1, 1, 0) ] 2 in
  Alcotest.(check int) "0 without recurrences" 0 (Recurrence.rec_mii g)

let suite =
  [
    Alcotest.test_case "acyclic -> singletons" `Quick test_acyclic_singletons;
    Alcotest.test_case "two recurrences" `Quick test_two_recurrences;
    Alcotest.test_case "self edge" `Quick test_self_edge;
    Alcotest.test_case "recurrence analysis" `Quick test_recurrence_analysis;
    Alcotest.test_case "member map" `Quick test_member_map;
    Alcotest.test_case "rec_mii without recurrences" `Quick
      test_rec_mii_no_recurrence;
  ]
