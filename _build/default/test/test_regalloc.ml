(* Register-requirement analysis (MaxLives / MVE). *)

open Hcv_support
open Hcv_ir
open Hcv_sched

let machine = Builders.machine_1bus

let analyze loop =
  match Homo.schedule ~machine ~cycle_time:Q.one ~loop () with
  | Ok (sched, _) -> (sched, Regalloc.analyze sched)
  | Error msg -> Alcotest.failf "scheduling failed: %s" msg

let test_fits_paper_machine () =
  List.iter
    (fun loop ->
      let _, r = analyze loop in
      Alcotest.(check bool)
        (loop.Loop.name ^ " fits 16 regs/cluster")
        true
        (Array.for_all Fun.id r.Regalloc.fits))
    [ Builders.dotprod (); Builders.recurrence_loop (); Builders.wide_loop () ]

let test_maxlives_positive () =
  let loop = Builders.recurrence_loop () in
  let _, r = analyze loop in
  Alcotest.(check bool) "some values tracked" true
    (List.length r.Regalloc.values > 0);
  Alcotest.(check bool) "some lives" true
    (Array.exists (fun l -> l > 0) r.Regalloc.max_lives)

let test_mve_long_lifetime () =
  (* A value read 2 iterations later lives ~2 IIs: at least 2 instances,
     so the MVE factor must be >= 2. *)
  let b = Ddg.Builder.create () in
  let p = Ddg.Builder.add_instr b ~name:"p" (Opcode.make Opcode.Arith Opcode.Fp) in
  let c = Ddg.Builder.add_instr b ~name:"c" (Opcode.make Opcode.Arith Opcode.Fp) in
  (* The consumer reads p from three iterations ago; a self-recurrence
     pins the II at ~3 cycles, so p's value spans ~9 ns >= 2 IIs. *)
  Ddg.Builder.add_edge b ~distance:3 p c;
  Ddg.Builder.add_edge b ~distance:1 ~latency:3 p p;
  let loop = Loop.make ~name:"longlife" (Ddg.Builder.build b) in
  let _, r = analyze loop in
  let pv =
    List.find
      (fun (v : Regalloc.value) -> v.Regalloc.producer = 0 && not v.Regalloc.via_bus)
      r.Regalloc.values
  in
  Alcotest.(check bool) "multiple instances" true (pv.Regalloc.instances >= 2);
  Alcotest.(check bool) "mve >= instances" true
    (r.Regalloc.mve_factor >= pv.Regalloc.instances)

let test_bus_values_tracked () =
  (* Force a cross-cluster value; its destination copy must appear. *)
  let b = Ddg.Builder.create () in
  let x = Ddg.Builder.add_instr b ~name:"x" (Opcode.make Opcode.Arith Opcode.Fp) in
  let y = Ddg.Builder.add_instr b ~name:"y" (Opcode.make Opcode.Arith Opcode.Fp) in
  Ddg.Builder.add_edge b x y;
  let loop = Loop.make ~name:"xy" (Ddg.Builder.build b) in
  let clocking = Clocking.homogeneous ~n_clusters:4 ~ii:4 ~cycle_time:Q.one in
  (* Hand placement: x defines at 3, bus departs at 4, arrives at 5; y
     issues at 7, so the delivered copy lives 2 ns in C1's file. *)
  let sched =
    Schedule.make ~loop ~machine ~clocking
      ~placements:
        [| { Schedule.cluster = 0; cycle = 0 };
           { Schedule.cluster = 1; cycle = 7 } |]
      ~transfers:[ { Schedule.src = 0; dst_cluster = 1; bus_cycle = 4 } ]
  in
  Alcotest.(check bool) "schedule valid" true (Schedule.validate sched = Ok ());
  let r = Regalloc.analyze sched in
  Alcotest.(check bool) "bus copy tracked" true
    (List.exists (fun (v : Regalloc.value) -> v.Regalloc.via_bus) r.Regalloc.values)

let test_maxlives_bounds_lifetime_sum () =
  (* MaxLives * IT >= total lifetime span per cluster (a value alive
     for span S contributes S to the integral over one IT window). *)
  let loop = Builders.recurrence_loop () in
  let sched, r = analyze loop in
  let it = sched.Schedule.clocking.Clocking.it in
  let spans = Schedule.lifetimes_ns sched in
  Array.iteri
    (fun cl lives ->
      Alcotest.(check bool)
        (Printf.sprintf "cluster %d integral bound" cl)
        true
        (Q.( >= ) (Q.mul_int it lives) spans.(cl)))
    r.Regalloc.max_lives

let suite =
  [
    Alcotest.test_case "fits the paper machine" `Quick test_fits_paper_machine;
    Alcotest.test_case "maxlives positive" `Quick test_maxlives_positive;
    Alcotest.test_case "MVE on long lifetimes" `Quick test_mve_long_lifetime;
    Alcotest.test_case "bus values tracked" `Quick test_bus_values_tracked;
    Alcotest.test_case "maxlives bounds lifetime sum" `Quick
      test_maxlives_bounds_lifetime_sum;
  ]
