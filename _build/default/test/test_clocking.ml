(* Per-domain clocking: (frequency, II) selection at a given IT. *)

open Hcv_support
open Hcv_machine
open Hcv_sched

let machine = Presets.machine_4c ~buses:1
let q = Alcotest.testable Q.pp Q.equal

(* The paper's Figure 3: cluster 1 at 1 ns, cluster 2 at 1.5 ns,
   IT = 3 ns gives II1 = 3 and II2 = 2. *)
let test_paper_figure3 () =
  let machine2 =
    Machine.make ~name:"fig3"
      ~clusters:[| Cluster.paper; Cluster.paper |]
      ~icn:(Icn.make ~buses:1 ())
      ()
  in
  let pt ct = { Opconfig.cycle_time = ct; vdd = 1.0 } in
  let config =
    Opconfig.make ~machine:machine2
      ~cluster_points:[| pt Q.one; pt (Q.make 3 2) |]
      ~icn_point:(pt Q.one) ~cache_point:(pt Q.one)
  in
  match Clocking.of_config ~config ~it:(Q.of_int 3) with
  | Error c -> Alcotest.failf "sync failure at %s" (Comp.to_string c)
  | Ok clocking ->
    Alcotest.(check int) "II C1 = 3" 3 clocking.Clocking.cluster_ii.(0);
    Alcotest.(check int) "II C2 = 2" 2 clocking.Clocking.cluster_ii.(1);
    Alcotest.(check q) "C2 actual cycle time" (Q.make 3 2)
      clocking.Clocking.cluster_ct.(1)

let test_homogeneous () =
  let c = Clocking.homogeneous ~n_clusters:4 ~ii:5 ~cycle_time:Q.one in
  Alcotest.(check q) "IT" (Q.of_int 5) c.Clocking.it;
  Alcotest.(check int) "icn II" 5 c.Clocking.icn_ii;
  Alcotest.(check int) "fastest" 0 (Clocking.fastest_cluster c)

let test_frequency_scaling_down () =
  (* IT not an integer multiple of the cycle time: the domain is
     clocked below its maximum. *)
  let config = Presets.reference_config machine in
  match Clocking.of_config ~config ~it:(Q.make 7 2) with
  | Error c -> Alcotest.failf "sync failure at %s" (Comp.to_string c)
  | Ok clocking ->
    Alcotest.(check int) "II = 3" 3 clocking.Clocking.cluster_ii.(0);
    (* Actual cycle time = IT / II = 7/6 > 1. *)
    Alcotest.(check q) "stretched cycle" (Q.make 7 6)
      clocking.Clocking.cluster_ct.(0)

let test_grid_sync_failure () =
  (* With a coarse grid, some ITs admit no (f, II) pair. *)
  let gridded =
    Machine.with_grid machine (Freqgrid.uniform ~steps:2 ~top:(Q.of_int 2))
  in
  (* Grid = {1, 2} GHz.  IT = 7/2: f=1 -> 3.5 not integer; f=2 -> 7
     (integer!) but 2 GHz > fmax=1.  So sync failure. *)
  let config = Presets.reference_config gridded in
  (match Clocking.of_config ~config ~it:(Q.make 7 2) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected sync failure");
  (* IT = 4 works at f = 1. *)
  match Clocking.of_config ~config ~it:(Q.of_int 4) with
  | Ok c -> Alcotest.(check int) "II 4" 4 c.Clocking.cluster_ii.(0)
  | Error _ -> Alcotest.fail "IT=4 must synchronise"

let test_cycle_helpers () =
  let c = Clocking.homogeneous ~n_clusters:1 ~ii:4 ~cycle_time:(Q.make 3 2) in
  Alcotest.(check q) "cycle 2 starts at 3" (Q.of_int 3)
    (Clocking.cycle_start c (Comp.Cluster 0) 2);
  Alcotest.(check int) "first cycle at 2.9" 2
    (Clocking.first_cycle_at_or_after c (Comp.Cluster 0) (Q.make 29 10));
  Alcotest.(check int) "first cycle at 3.0" 2
    (Clocking.first_cycle_at_or_after c (Comp.Cluster 0) (Q.of_int 3));
  Alcotest.(check int) "never negative" 0
    (Clocking.first_cycle_at_or_after c (Comp.Cluster 0) (Q.of_int (-5)))

let suite =
  [
    Alcotest.test_case "paper figure 3" `Quick test_paper_figure3;
    Alcotest.test_case "homogeneous" `Quick test_homogeneous;
    Alcotest.test_case "frequency scaled down" `Quick
      test_frequency_scaling_down;
    Alcotest.test_case "grid sync failure" `Quick test_grid_sync_failure;
    Alcotest.test_case "cycle helpers" `Quick test_cycle_helpers;
  ]
