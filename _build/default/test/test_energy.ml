(* The §3.1 energy model: units, scaling factors and the reconstruction
   invariant (the reference run on the reference machine costs exactly
   1.0). *)

open Hcv_machine
open Hcv_energy
open Hcv_support

let machine = Presets.machine_4c ~buses:1

let ref_activity =
  Activity.make ~exec_time_ns:1000.0
    ~per_cluster_ins_energy:[| 100.0; 110.0; 90.0; 100.0 |]
    ~n_comms:120.0 ~n_mem:130.0

let ctx_of params =
  let units = Units.of_reference ~params ~n_clusters:4 ref_activity in
  Model.ctx ~params ~units ()

let test_params_validation () =
  Alcotest.check_raises "shares leave nothing"
    (Invalid_argument
       "Params.make: icn and cache shares leave nothing for clusters")
    (fun () -> ignore (Params.make ~frac_icn:0.5 ~frac_cache:0.5 ()));
  let p = Params.default in
  Alcotest.(check (float 1e-9)) "cluster share" (1.0 -. 0.1 -. (1.0 /. 3.0))
    (Params.frac_cluster p)

let test_reference_reconstruction () =
  (* Evaluating the reference activity on the reference configuration
     must reproduce exactly 1.0 total energy, with the configured
     component shares. *)
  let params = Params.default in
  let ctx = ctx_of params in
  let config = Presets.reference_config machine in
  let b = Model.energy ctx ~config ref_activity in
  Alcotest.(check (float 1e-9)) "total = 1" 1.0 (Model.total b);
  Alcotest.(check (float 1e-9)) "icn share" 0.1 (b.Model.dyn_icn +. b.Model.stat_icn);
  Alcotest.(check (float 1e-9)) "cache share" (1.0 /. 3.0)
    (b.Model.dyn_cache +. b.Model.stat_cache);
  Alcotest.(check (float 1e-9)) "cluster leakage share"
    ((1.0 /. 3.0) *. Params.frac_cluster params)
    b.Model.stat_cluster

let test_reconstruction_other_params () =
  (* The invariant holds for any breakdown (the Fig. 8/9 knobs). *)
  List.iter
    (fun (fi, fc, li, lc, lcl) ->
      let params =
        Params.make ~frac_icn:fi ~frac_cache:fc ~leak_icn:li ~leak_cache:lc
          ~leak_cluster:lcl ()
      in
      let ctx = ctx_of params in
      let config = Presets.reference_config machine in
      let b = Model.energy ctx ~config ref_activity in
      Alcotest.(check (float 1e-9)) "total = 1" 1.0 (Model.total b))
    [
      (0.1, 0.25, 0.1, 2.0 /. 3.0, 1.0 /. 3.0);
      (0.2, 0.3, 0.15, 0.7, 0.4);
      (0.15, 0.3, 0.05, 0.6, 0.25);
    ]

let test_scale_factors_at_reference () =
  Alcotest.(check (float 1e-9)) "delta(ref)=1" 1.0
    (Scale.delta ~vdd:1.0 ~vdd_ref:1.0);
  Alcotest.(check (float 1e-9)) "sigma(ref)=1" 1.0
    (Scale.sigma ~vdd:1.0 ~vth:0.25 ~vdd_ref:1.0 ~vth_ref:0.25 ());
  Alcotest.(check (float 1e-9)) "delta quadratic" 4.0
    (Scale.delta ~vdd:2.0 ~vdd_ref:1.0);
  (* One subthreshold swing of vth change = 10x leakage. *)
  Alcotest.(check (float 1e-6)) "sigma decade" 10.0
    (Scale.sigma ~vdd:1.0 ~vth:0.15 ~vdd_ref:1.0 ~vth_ref:0.25 ())

let test_voltage_scaling_direction () =
  (* Dropping every supply voltage (same frequency headroom aside) must
     not increase dynamic energy. *)
  let ctx = ctx_of Params.default in
  let lo =
    Opconfig.homogeneous ~machine ~cycle_time:(Q.make 3 2) ~vdd:0.8 ()
  in
  let hi = Opconfig.homogeneous ~machine ~cycle_time:(Q.make 3 2) ~vdd:1.0 () in
  let b_lo = Model.energy ctx ~config:lo ref_activity in
  let b_hi = Model.energy ctx ~config:hi ref_activity in
  Alcotest.(check bool) "dyn cluster lower" true
    (b_lo.Model.dyn_cluster < b_hi.Model.dyn_cluster);
  Alcotest.(check bool) "dyn cache lower" true
    (b_lo.Model.dyn_cache < b_hi.Model.dyn_cache)

let test_ed2 () =
  let ctx = ctx_of Params.default in
  let config = Presets.reference_config machine in
  Alcotest.(check (float 1e-3)) "ed2 = E * T^2" 1e6
    (Model.ed2 ctx ~config ref_activity)

let test_unrealisable_rejected () =
  let ctx = ctx_of Params.default in
  (* 0.7 V cannot sustain 1 GHz within the vth guard band... it can
     actually; use an absurd frequency instead. *)
  let config =
    Opconfig.homogeneous ~machine ~cycle_time:(Q.make 1 10) ~vdd:1.0 ()
  in
  Alcotest.(check bool) "unrealisable" false (Opconfig.realisable config);
  match Model.energy ctx ~config ref_activity with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_activity_ops () =
  let a = Activity.scale ref_activity 2.0 in
  Alcotest.(check (float 1e-9)) "scale time" 2000.0 a.Activity.exec_time_ns;
  Alcotest.(check (float 1e-9)) "scale comms" 240.0 a.Activity.n_comms;
  let s = Activity.add ref_activity ref_activity in
  Alcotest.(check (float 1e-9)) "add" (Activity.total_ins_energy a)
    (Activity.total_ins_energy s)

let suite =
  [
    Alcotest.test_case "params validation" `Quick test_params_validation;
    Alcotest.test_case "reference reconstructs to 1.0" `Quick
      test_reference_reconstruction;
    Alcotest.test_case "reconstruction across params" `Quick
      test_reconstruction_other_params;
    Alcotest.test_case "delta/sigma at reference" `Quick
      test_scale_factors_at_reference;
    Alcotest.test_case "voltage scaling direction" `Quick
      test_voltage_scaling_direction;
    Alcotest.test_case "ed2" `Quick test_ed2;
    Alcotest.test_case "unrealisable configs rejected" `Quick
      test_unrealisable_rejected;
    Alcotest.test_case "activity scale/add" `Quick test_activity_ops;
  ]
