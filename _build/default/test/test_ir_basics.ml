(* Small IR types: instructions, edges, loops. *)

open Hcv_ir

let fadd = Opcode.make Opcode.Arith Opcode.Fp

let test_instr () =
  let i = Instr.make ~id:3 ~name:"x" ~op:fadd in
  Alcotest.(check int) "latency" 3 (Instr.latency i);
  Alcotest.(check (float 1e-9)) "energy" 1.2 (Instr.energy i);
  Alcotest.(check bool) "fu" true (Instr.fu i = Opcode.Fp_fu);
  let j = Instr.make ~id:3 ~name:"y" ~op:fadd in
  Alcotest.(check bool) "equal by id" true (Instr.equal i j)

let test_edge_validation () =
  Alcotest.check_raises "negative latency"
    (Invalid_argument "Edge.make: negative latency") (fun () ->
      ignore (Edge.make ~src:0 ~dst:1 ~latency:(-1) ()));
  Alcotest.check_raises "negative distance"
    (Invalid_argument "Edge.make: negative distance") (fun () ->
      ignore (Edge.make ~distance:(-2) ~src:0 ~dst:1 ~latency:1 ()))

let test_edge_kinds () =
  let e = Edge.make ~kind:Edge.Anti ~src:0 ~dst:1 ~latency:0 () in
  Alcotest.(check bool) "anti carries no value" false (Edge.carries_value e);
  Alcotest.(check bool) "not loop carried" false (Edge.is_loop_carried e);
  let f = Edge.make ~distance:2 ~src:0 ~dst:1 ~latency:3 () in
  Alcotest.(check bool) "flow carries value" true (Edge.carries_value f);
  Alcotest.(check bool) "loop carried" true (Edge.is_loop_carried f)

let test_loop_validation () =
  let b = Ddg.Builder.create () in
  let _ = Ddg.Builder.add_instr b fadd in
  let g = Ddg.Builder.build b in
  Alcotest.check_raises "trip" (Invalid_argument "Loop.make: trip < 1")
    (fun () -> ignore (Loop.make ~trip:0 ~name:"l" g));
  Alcotest.check_raises "weight"
    (Invalid_argument "Loop.make: non-positive weight") (fun () ->
      ignore (Loop.make ~weight:0.0 ~name:"l" g))

let test_loop_mem_count () =
  let b = Ddg.Builder.create () in
  let _ = Ddg.Builder.add_instr b (Opcode.make Opcode.Memory Opcode.Fp) in
  let _ = Ddg.Builder.add_instr b fadd in
  let _ = Ddg.Builder.add_instr b (Opcode.make Opcode.Memory Opcode.Int) in
  let loop = Loop.make ~name:"l" (Ddg.Builder.build b) in
  Alcotest.(check int) "mem accesses" 2 (Loop.mem_accesses_per_iter loop);
  Alcotest.(check int) "instrs" 3 (Loop.n_instrs loop)

let test_dot_output () =
  let loop = Builders.dotprod () in
  let dot = Dot.of_loop loop in
  Alcotest.(check bool) "digraph" true
    (String.length dot > 8 && String.sub dot 0 8 = "digraph ");
  (* Colour by cluster when an assignment is given. *)
  let coloured =
    Dot.of_ddg ~cluster_of:(fun i -> Some (i mod 2)) loop.Loop.ddg
  in
  Alcotest.(check bool) "filled nodes" true
    (String.length coloured > String.length dot)

let suite =
  [
    Alcotest.test_case "instr" `Quick test_instr;
    Alcotest.test_case "edge validation" `Quick test_edge_validation;
    Alcotest.test_case "edge kinds" `Quick test_edge_kinds;
    Alcotest.test_case "loop validation" `Quick test_loop_validation;
    Alcotest.test_case "loop mem count" `Quick test_loop_mem_count;
    Alcotest.test_case "dot export" `Quick test_dot_output;
  ]
