(* List helpers. *)

open Hcv_support

let test_sums () =
  Alcotest.(check int) "sum_int" 10 (Listx.sum_int [ 1; 2; 3; 4 ]);
  Alcotest.(check (float 1e-9)) "sum_float" 1.5 (Listx.sum_float [ 0.5; 1.0 ]);
  Alcotest.(check int) "empty" 0 (Listx.sum_int [])

let test_mean () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Listx.mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.check_raises "empty" (Invalid_argument "Listx.mean: empty list")
    (fun () -> ignore (Listx.mean []))

let test_geomean () =
  Alcotest.(check (float 1e-9)) "geomean" 2.0 (Listx.geomean [ 1.0; 4.0 ]);
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Listx.geomean: non-positive value") (fun () ->
      ignore (Listx.geomean [ 1.0; 0.0 ]))

let test_min_max_by () =
  Alcotest.(check string) "min_by" "a" (Listx.min_by String.length [ "bb"; "a"; "ccc" ]);
  Alcotest.(check string) "max_by" "ccc" (Listx.max_by String.length [ "bb"; "a"; "ccc" ]);
  (* First on ties. *)
  Alcotest.(check string) "min tie" "xy" (Listx.min_by String.length [ "xy"; "ab" ])

let test_range () =
  Alcotest.(check (list int)) "range" [ 2; 3; 4 ] (Listx.range 2 5);
  Alcotest.(check (list int)) "empty range" [] (Listx.range 5 2)

let test_take () =
  Alcotest.(check (list int)) "take 2" [ 1; 2 ] (Listx.take 2 [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "take more" [ 1 ] (Listx.take 5 [ 1 ]);
  Alcotest.(check (list int)) "take 0" [] (Listx.take 0 [ 1 ])

let test_group_by () =
  let groups = Listx.group_by (fun x -> x mod 2) [ 1; 2; 3; 4; 5 ] in
  Alcotest.(check int) "two groups" 2 (List.length groups);
  Alcotest.(check (list int)) "odds first (first occurrence order)"
    [ 1; 3; 5 ] (List.assoc 1 groups);
  Alcotest.(check (list int)) "evens" [ 2; 4 ] (List.assoc 0 groups)

let test_uniq () =
  Alcotest.(check (list int)) "uniq" [ 3; 1; 2 ] (Listx.uniq [ 3; 1; 3; 2; 1 ])

let suite =
  [
    Alcotest.test_case "sums" `Quick test_sums;
    Alcotest.test_case "mean" `Quick test_mean;
    Alcotest.test_case "geomean" `Quick test_geomean;
    Alcotest.test_case "min_by/max_by" `Quick test_min_max_by;
    Alcotest.test_case "range" `Quick test_range;
    Alcotest.test_case "take" `Quick test_take;
    Alcotest.test_case "group_by" `Quick test_group_by;
    Alcotest.test_case "uniq" `Quick test_uniq;
  ]
