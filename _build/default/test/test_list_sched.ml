(* The acyclic list-scheduling baseline. *)

open Hcv_support
open Hcv_ir
open Hcv_sched

let machine = Builders.machine_1bus

let test_validates () =
  List.iter
    (fun loop ->
      match List_sched.run ~machine ~cycle_time:Q.one ~loop () with
      | Ok sched ->
        Alcotest.(check bool) "validates" true (Schedule.validate sched = Ok ())
      | Error msg -> Alcotest.failf "%s: %s" loop.Loop.name msg)
    [ Builders.dotprod (); Builders.recurrence_loop (); Builders.wide_loop () ]

let test_no_overlap () =
  (* The acyclic schedule's II equals its iteration length: SC = 1. *)
  let loop = Builders.wide_loop ~width:6 () in
  match List_sched.run ~machine ~cycle_time:Q.one ~loop () with
  | Ok sched -> Alcotest.(check int) "one stage" 1 (Schedule.stage_count sched)
  | Error msg -> Alcotest.failf "failed: %s" msg

let test_pipelining_wins_on_parallel_loops () =
  (* Software pipelining must beat acyclic scheduling on a wide loop
     with a long trip. *)
  let loop = Builders.wide_loop ~trip:200 ~width:8 () in
  match List_sched.speedup_of_pipelining ~machine ~cycle_time:Q.one ~loop () with
  | Ok speedup ->
    Alcotest.(check bool)
      (Printf.sprintf "speedup %.2f > 1.2" speedup)
      true (speedup > 1.2)
  | Error msg -> Alcotest.failf "failed: %s" msg

let test_respects_latency () =
  (* The acyclic critical path lower-bounds the iteration length. *)
  let loop = Builders.dotprod () in
  match List_sched.run ~machine ~cycle_time:Q.one ~loop () with
  | Ok sched ->
    let cp = Ddg.acyclic_critical_path loop.Loop.ddg in
    Alcotest.(check bool) "length >= critical path" true
      (Q.( >= ) (Schedule.it_length sched) (Q.of_int cp))
  | Error msg -> Alcotest.failf "failed: %s" msg

let test_simulates () =
  let loop = Builders.recurrence_loop ~trip:20 () in
  match List_sched.run ~machine ~cycle_time:Q.one ~loop () with
  | Ok sched ->
    let r = Hcv_sim.Simulator.run ~schedule:sched ~trip:20 () in
    Alcotest.(check (list string)) "no violations" []
      r.Hcv_sim.Simulator.violations
  | Error msg -> Alcotest.failf "failed: %s" msg

let suite =
  [
    Alcotest.test_case "schedules validate" `Quick test_validates;
    Alcotest.test_case "no iteration overlap" `Quick test_no_overlap;
    Alcotest.test_case "pipelining wins" `Quick
      test_pipelining_wins_on_parallel_loops;
    Alcotest.test_case "respects latency" `Quick test_respects_latency;
    Alcotest.test_case "simulates cleanly" `Quick test_simulates;
  ]
