(* The simulator's priority queue. *)

open Hcv_support
open Hcv_sim

let test_ordering () =
  let q = Pqueue.create () in
  List.iter
    (fun k -> Pqueue.push q (Q.make k 7) k)
    [ 5; 1; 4; 2; 3; 9; 0; 8; 7; 6 ];
  let rec drain acc =
    match Pqueue.pop q with
    | None -> List.rev acc
    | Some (_, v) -> drain (v :: acc)
  in
  Alcotest.(check (list int)) "sorted" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (drain [])

let test_empty () =
  let q = Pqueue.create () in
  Alcotest.(check bool) "empty" true (Pqueue.is_empty q);
  Alcotest.(check bool) "pop none" true (Pqueue.pop q = None);
  Alcotest.(check bool) "peek none" true (Pqueue.peek_key q = None)

let test_interleaved () =
  let q = Pqueue.create () in
  Pqueue.push q (Q.of_int 5) "e";
  Pqueue.push q (Q.of_int 1) "a";
  (match Pqueue.pop q with
  | Some (_, v) -> Alcotest.(check string) "min first" "a" v
  | None -> Alcotest.fail "expected a value");
  Pqueue.push q (Q.of_int 3) "c";
  Pqueue.push q (Q.of_int 2) "b";
  (match Pqueue.peek_key q with
  | Some k -> Alcotest.(check bool) "peek = 2" true (Q.equal k (Q.of_int 2))
  | None -> Alcotest.fail "expected a key");
  Alcotest.(check int) "length" 3 (Pqueue.length q)

let prop_heap_sorts =
  QCheck.Test.make ~name:"pqueue drains sorted" ~count:100
    QCheck.(list (pair (int_range (-500) 500) (int_range 1 50)))
    (fun pairs ->
      let q = Pqueue.create () in
      List.iteri (fun i (n, d) -> Pqueue.push q (Q.make n d) i) pairs;
      let rec drain acc =
        match Pqueue.pop q with
        | None -> List.rev acc
        | Some (k, _) -> drain (k :: acc)
      in
      let keys = drain [] in
      let rec sorted = function
        | a :: (b :: _ as rest) -> Q.( <= ) a b && sorted rest
        | [ _ ] | [] -> true
      in
      sorted keys && List.length keys = List.length pairs)

let suite =
  [
    Alcotest.test_case "ordering" `Quick test_ordering;
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "interleaved" `Quick test_interleaved;
    QCheck_alcotest.to_alcotest prop_heap_sorts;
  ]
