(* The simulator must agree with the analytic modulo-schedule formulas
   and find no violations in validated schedules. *)

open Hcv_support
open Hcv_sched
open Hcv_sim

let simulate_homo loop trip =
  match
    Homo.schedule ~machine:Builders.machine_1bus ~cycle_time:Q.one ~loop ()
  with
  | Error msg -> Alcotest.failf "scheduling failed: %s" msg
  | Ok (sched, _) -> (sched, Simulator.run ~schedule:sched ~trip ())

let test_no_violations () =
  List.iter
    (fun loop ->
      let _, r = simulate_homo loop 20 in
      Alcotest.(check (list string)) "no violations" [] r.Simulator.violations)
    [ Builders.dotprod (); Builders.recurrence_loop (); Builders.wide_loop () ]

let test_exec_time_formula () =
  List.iter
    (fun loop ->
      let trip = 33 in
      let sched, r = simulate_homo loop trip in
      let analytic = Schedule.exec_time_ns sched ~trip in
      Alcotest.(check (float 1e-9))
        "sim time = (N-1)*IT + it_length" analytic
        (Q.to_float r.Simulator.exec_ns))
    [ Builders.dotprod (); Builders.recurrence_loop (); Builders.wide_loop () ]

let test_counts () =
  let loop = Builders.dotprod () in
  let trip = 10 in
  let sched, r = simulate_homo loop trip in
  Alcotest.(check int)
    "issues = n * trip"
    (Hcv_ir.Ddg.n_instrs loop.Hcv_ir.Loop.ddg * trip)
    r.Simulator.n_issues;
  Alcotest.(check int)
    "transfers = comms * trip"
    (Schedule.n_comms sched * trip)
    r.Simulator.n_transfers;
  Alcotest.(check int)
    "mem accesses"
    (Schedule.n_mem sched * trip)
    r.Simulator.n_mem_accesses

let test_measure_matches_activity () =
  let loop = Builders.recurrence_loop () in
  let trip = 25 in
  let sched, _ = simulate_homo loop trip in
  match Simulator.measure ~schedule:sched ~trip with
  | Error vs -> Alcotest.failf "violations: %s" (String.concat "; " vs)
  | Ok act ->
    let analytic = Hcv_core.Profile.activity_of_schedule sched ~trip in
    Alcotest.(check (float 1e-6))
      "exec time" analytic.Hcv_energy.Activity.exec_time_ns
      act.Hcv_energy.Activity.exec_time_ns;
    Alcotest.(check (float 1e-6))
      "comms" analytic.Hcv_energy.Activity.n_comms
      act.Hcv_energy.Activity.n_comms;
    Array.iteri
      (fun i e ->
        Alcotest.(check (float 1e-6))
          (Printf.sprintf "cluster %d energy" i)
          analytic.Hcv_energy.Activity.per_cluster_ins_energy.(i)
          e)
      act.Hcv_energy.Activity.per_cluster_ins_energy

let test_detects_broken_schedule () =
  (* Corrupt a valid schedule: pull a dependent instruction to cycle 0;
     the simulator must flag an operand violation (or a resource
     conflict). *)
  let loop = Builders.dotprod () in
  let sched, _ = simulate_homo loop 1 in
  let placements = Array.copy sched.Schedule.placements in
  (* Instruction 3 ("s") depends on 2 ("m"); force it to cycle 0 in the
     same cluster as its producer. *)
  placements.(3) <-
    { Schedule.cluster = placements.(2).Schedule.cluster; cycle = 0 };
  let broken = { sched with Schedule.placements } in
  let r = Simulator.run ~schedule:broken ~trip:3 () in
  Alcotest.(check bool) "violations found" true (r.Simulator.violations <> [])


let test_cache_model () =
  let loop = Builders.dotprod () in
  let sched, base = simulate_homo loop 50 in
  (* Zero miss rate: identical to the baseline. *)
  let zero =
    Simulator.run
      ~cache:{ Simulator.miss_rate = 0.0; miss_penalty_cycles = 20 }
      ~schedule:sched ~trip:50 ()
  in
  Alcotest.(check int) "no misses" 0 zero.Simulator.n_misses;
  Alcotest.(check bool) "same time" true
    (Q.equal zero.Simulator.exec_ns base.Simulator.exec_ns);
  (* Every access misses: time grows by misses * penalty, and each miss
     adds one refill access. *)
  let all =
    Simulator.run
      ~cache:{ Simulator.miss_rate = 1.0; miss_penalty_cycles = 20 }
      ~schedule:sched ~trip:50 ()
  in
  Alcotest.(check int) "all miss" all.Simulator.n_mem_accesses
    (2 * base.Simulator.n_mem_accesses);
  Alcotest.(check bool) "slower" true
    Q.(all.Simulator.exec_ns > base.Simulator.exec_ns);
  Alcotest.(check bool) "stall accounted" true
    (Q.equal all.Simulator.exec_ns
       (Q.add base.Simulator.exec_ns all.Simulator.stall_ns));
  (* A middling rate lies in between (monotonicity). *)
  let half =
    Simulator.run
      ~cache:{ Simulator.miss_rate = 0.5; miss_penalty_cycles = 20 }
      ~schedule:sched ~trip:50 ()
  in
  Alcotest.(check bool) "monotone" true
    (half.Simulator.n_misses > 0
    && half.Simulator.n_misses < all.Simulator.n_misses)

let suite =
  [
    Alcotest.test_case "validated schedules run clean" `Quick test_no_violations;
    Alcotest.test_case "exec time formula" `Quick test_exec_time_formula;
    Alcotest.test_case "event counts" `Quick test_counts;
    Alcotest.test_case "measure = analytic activity" `Quick
      test_measure_matches_activity;
    Alcotest.test_case "detects broken schedules" `Quick
      test_detects_broken_schedule;
    Alcotest.test_case "cache-miss extension" `Quick test_cache_model;
  ]
