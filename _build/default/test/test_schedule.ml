(* Schedule semantics and the static validator. *)

open Hcv_support
open Hcv_ir
open Hcv_machine
open Hcv_sched

let machine = Presets.machine_4c ~buses:1
let q = Alcotest.testable Q.pp Q.equal

(* a (ld) -> b (fp add), manual placement. *)
let tiny_loop () =
  let b = Ddg.Builder.create () in
  let a = Ddg.Builder.add_instr b ~name:"a" (Opcode.make Opcode.Memory Opcode.Fp) in
  let c =
    Ddg.Builder.add_instr b ~name:"b" (Opcode.make Opcode.Arith Opcode.Fp)
  in
  Ddg.Builder.add_edge b a c;
  Loop.make ~name:"tiny" (Ddg.Builder.build b)

let clocking = Clocking.homogeneous ~n_clusters:4 ~ii:2 ~cycle_time:Q.one

let sched_with placements transfers =
  Schedule.make ~loop:(tiny_loop ()) ~machine ~clocking
    ~placements:(Array.of_list placements)
    ~transfers

let ok_same_cluster () =
  sched_with
    [ { Schedule.cluster = 0; cycle = 0 }; { Schedule.cluster = 0; cycle = 2 } ]
    []

let test_valid_same_cluster () =
  match Schedule.validate (ok_same_cluster ()) with
  | Ok () -> ()
  | Error es -> Alcotest.failf "unexpected: %s" (String.concat "; " es)

let test_dependence_violation () =
  (* Consumer at cycle 1 < producer latency 2. *)
  let s =
    sched_with
      [ { Schedule.cluster = 0; cycle = 0 }; { Schedule.cluster = 0; cycle = 1 } ]
      []
  in
  match Schedule.validate s with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected violation"

let test_missing_transfer () =
  let s =
    sched_with
      [ { Schedule.cluster = 0; cycle = 0 }; { Schedule.cluster = 1; cycle = 9 } ]
      []
  in
  match Schedule.validate s with
  | Error es ->
    Alcotest.(check bool) "mentions transfer" true
      (List.exists
         (fun m ->
           let rec has i =
             i + 8 <= String.length m
             && (String.sub m i 8 = "transfer" || has (i + 1))
           in
           has 0)
         es)
  | Ok () -> Alcotest.fail "expected violation"

let test_cross_cluster_with_transfer () =
  (* a defines at t=2 (ld latency 2).  Earliest bus cycle: ceil((2+1)/1)
     = 3 (one sync cycle).  Arrival = (3+1) = 4.  Consumer at cycle 9 >=
     4: fine. *)
  let s =
    sched_with
      [ { Schedule.cluster = 0; cycle = 0 }; { Schedule.cluster = 1; cycle = 9 } ]
      [ { Schedule.src = 0; dst_cluster = 1; bus_cycle = 3 } ]
  in
  (match Schedule.validate s with
  | Ok () -> ()
  | Error es -> Alcotest.failf "unexpected: %s" (String.concat "; " es));
  Alcotest.(check int) "1 comm" 1 (Schedule.n_comms s)

let test_late_transfer_rejected () =
  (* Transfer arriving after the consumer started. *)
  let s =
    sched_with
      [ { Schedule.cluster = 0; cycle = 0 }; { Schedule.cluster = 1; cycle = 3 } ]
      [ { Schedule.src = 0; dst_cluster = 1; bus_cycle = 3 } ]
  in
  match Schedule.validate s with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected violation"

let test_fu_conflict () =
  (* Two memory ops in the same cluster, same modulo slot. *)
  let b = Ddg.Builder.create () in
  let _ = Ddg.Builder.add_instr b (Opcode.make Opcode.Memory Opcode.Fp) in
  let _ = Ddg.Builder.add_instr b (Opcode.make Opcode.Memory Opcode.Fp) in
  let loop = Loop.make ~name:"mm" (Ddg.Builder.build b) in
  let s =
    Schedule.make ~loop ~machine ~clocking
      ~placements:
        [| { Schedule.cluster = 0; cycle = 0 }; { Schedule.cluster = 0; cycle = 2 } |]
      ~transfers:[]
  in
  match Schedule.validate s with
  | Error es ->
    Alcotest.(check bool) "capacity error" true
      (List.exists (fun m -> String.length m > 0) es)
  | Ok () -> Alcotest.fail "expected fu conflict"

let test_metrics () =
  let s = ok_same_cluster () in
  (* it_length: b starts at 2, fp add latency 3 -> 5. *)
  Alcotest.(check q) "it_length" (Q.of_int 5) (Schedule.it_length s);
  Alcotest.(check int) "stage count ceil(5/2)" 3 (Schedule.stage_count s);
  Alcotest.(check (float 1e-9)) "exec time, 10 iters"
    ((10.0 -. 1.0) *. 2.0 +. 5.0)
    (Schedule.exec_time_ns s ~trip:10);
  Alcotest.(check int) "n_mem" 1 (Schedule.n_mem s);
  let e = Schedule.per_cluster_ins_energy s in
  Alcotest.(check (float 1e-9)) "cluster 0 energy" 2.2 e.(0)

let test_lifetimes () =
  let s = ok_same_cluster () in
  let spans = Schedule.lifetimes_ns s in
  (* Value of a: born at 2, read by b at 2... last read = start(b) = 2:
     span 0.  b's value has no consumer: 0. *)
  Alcotest.(check q) "cluster 0 span" Q.zero spans.(0)

let suite =
  [
    Alcotest.test_case "valid same-cluster schedule" `Quick
      test_valid_same_cluster;
    Alcotest.test_case "dependence violation" `Quick test_dependence_violation;
    Alcotest.test_case "missing transfer" `Quick test_missing_transfer;
    Alcotest.test_case "cross-cluster with transfer" `Quick
      test_cross_cluster_with_transfer;
    Alcotest.test_case "late transfer rejected" `Quick
      test_late_transfer_rejected;
    Alcotest.test_case "fu conflict" `Quick test_fu_conflict;
    Alcotest.test_case "derived metrics" `Quick test_metrics;
    Alcotest.test_case "lifetimes" `Quick test_lifetimes;
  ]
