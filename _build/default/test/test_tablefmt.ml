(* Table rendering. *)

open Hcv_support

let test_basic_render () =
  let t = Tablefmt.create [ ("name", Tablefmt.Left); ("v", Tablefmt.Right) ] in
  Tablefmt.add_row t [ "alpha"; "1" ];
  Tablefmt.add_row t [ "b"; "22" ];
  let s = Tablefmt.render t in
  Alcotest.(check bool) "contains header" true
    (String.length s > 0 && Option.is_some (String.index_opt s '+'));
  (* Every line has the same width. *)
  let widths =
    String.split_on_char '\n' s
    |> List.filter (fun l -> l <> "")
    |> List.map String.length
  in
  Alcotest.(check bool) "rectangular" true
    (List.for_all (fun w -> w = List.hd widths) widths)

let test_arity_check () =
  let t = Tablefmt.create [ ("a", Tablefmt.Left) ] in
  Alcotest.check_raises "arity"
    (Invalid_argument "Tablefmt.add_row: arity mismatch") (fun () ->
      Tablefmt.add_row t [ "x"; "y" ])

let test_title () =
  let t = Tablefmt.create ~title:"My Table" [ ("a", Tablefmt.Center) ] in
  Tablefmt.add_row t [ "x" ];
  let s = Tablefmt.render t in
  Alcotest.(check bool) "title present" true
    (String.length s >= 8 && String.sub s 0 8 = "My Table")

let test_cells () =
  Alcotest.(check string) "cell_f" "1.500" (Tablefmt.cell_f 1.5);
  Alcotest.(check string) "cell_pct" "15.40%" (Tablefmt.cell_pct 0.154)

let suite =
  [
    Alcotest.test_case "render" `Quick test_basic_render;
    Alcotest.test_case "arity" `Quick test_arity_check;
    Alcotest.test_case "title" `Quick test_title;
    Alcotest.test_case "cell formatting" `Quick test_cells;
  ]
