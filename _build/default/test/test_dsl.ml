(* The .loop textual format. *)

open Hcv_ir

let parse_one text =
  match Dsl.parse text with
  | Ok [ loop ] -> loop
  | Ok l -> Alcotest.failf "expected 1 loop, got %d" (List.length l)
  | Error e -> Alcotest.failf "parse error: %a" Dsl.pp_error e

let test_basic () =
  let loop =
    parse_one
      {|
# a dot product
loop dot trip 256 weight 0.5
  node a ld.f
  node b ld.f
  node m mul.f
  node s add.f
  edge a m
  edge b m
  edge m s
  edge s s dist 1
end
|}
  in
  Alcotest.(check string) "name" "dot" loop.Loop.name;
  Alcotest.(check int) "trip" 256 loop.Loop.trip;
  Alcotest.(check (float 1e-9)) "weight" 0.5 loop.Loop.weight;
  Alcotest.(check int) "4 nodes" 4 (Ddg.n_instrs loop.Loop.ddg);
  Alcotest.(check int) "4 edges" 4 (Ddg.n_edges loop.Loop.ddg)

let test_edge_options () =
  let loop =
    parse_one
      {|
loop l
  node a st.f
  node b ld.f
  edge a b dist 2 lat 0 kind mem
end
|}
  in
  match Ddg.edges loop.Loop.ddg with
  | [ e ] ->
    Alcotest.(check int) "dist" 2 e.Edge.distance;
    Alcotest.(check int) "lat" 0 e.Edge.latency;
    Alcotest.(check string) "kind" "mem" (Edge.kind_to_string e.Edge.kind)
  | es -> Alcotest.failf "expected 1 edge, got %d" (List.length es)

let expect_error text expected_line =
  match Dsl.parse text with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error e -> Alcotest.(check int) "error line" expected_line e.Dsl.line

let test_errors () =
  expect_error "loop l\n  node a bogus.op\nend\n" 2;
  expect_error "loop l\n  edge x y\nend\n" 2;
  expect_error "node a add.i\n" 1;
  expect_error "loop l\n  node a add.i\n  node a add.i\nend\n" 3;
  (* missing end is reported at EOF (the line after the last) *)
  expect_error "loop l\n  node a add.i\n" 3

let test_multiple_loops () =
  match
    Dsl.parse "loop a\n node x add.i\nend\nloop b\n node y add.f\nend\n"
  with
  | Ok loops ->
    Alcotest.(check (list string)) "names" [ "a"; "b" ]
      (List.map (fun (l : Loop.t) -> l.Loop.name) loops)
  | Error e -> Alcotest.failf "parse error: %a" Dsl.pp_error e

let test_roundtrip () =
  let original = Builders.recurrence_loop () in
  let loop = parse_one (Dsl.print original) in
  Alcotest.(check int) "instr count"
    (Ddg.n_instrs original.Loop.ddg)
    (Ddg.n_instrs loop.Loop.ddg);
  Alcotest.(check int) "edge count"
    (Ddg.n_edges original.Loop.ddg)
    (Ddg.n_edges loop.Loop.ddg);
  Alcotest.(check int) "trip" original.Loop.trip loop.Loop.trip;
  (* Re-printing is a fixpoint. *)
  Alcotest.(check string) "print is stable" (Dsl.print original)
    (Dsl.print loop)

let test_roundtrip_generated () =
  (* Round-trip a whole generated population. *)
  let spec = Option.get (Hcv_workload.Specfp.find "galgel") in
  let loops = Hcv_workload.Specfp.loops ~n_loops:4 ~seed:1 spec in
  match Dsl.parse (Dsl.print_all loops) with
  | Ok parsed ->
    Alcotest.(check int) "loop count" (List.length loops) (List.length parsed);
    List.iter2
      (fun (a : Loop.t) (b : Loop.t) ->
        Alcotest.(check string) "name" a.Loop.name b.Loop.name;
        Alcotest.(check int) "instrs" (Ddg.n_instrs a.Loop.ddg)
          (Ddg.n_instrs b.Loop.ddg))
      loops parsed
  | Error e -> Alcotest.failf "parse error: %a" Dsl.pp_error e

let suite =
  [
    Alcotest.test_case "basic parse" `Quick test_basic;
    Alcotest.test_case "edge options" `Quick test_edge_options;
    Alcotest.test_case "errors with line numbers" `Quick test_errors;
    Alcotest.test_case "multiple loops" `Quick test_multiple_loops;
    Alcotest.test_case "print/parse roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "generated population roundtrip" `Quick
      test_roundtrip_generated;
  ]
