(* Modulo reservation tables. *)

open Hcv_support
open Hcv_ir
open Hcv_machine
open Hcv_sched

let machine = Presets.machine_4c ~buses:1
let clocking = Clocking.homogeneous ~n_clusters:4 ~ii:3 ~cycle_time:Q.one

let test_fu_capacity () =
  let m = Mrt.create machine clocking in
  Alcotest.(check bool) "free" true
    (Mrt.fu_available m ~cluster:0 ~kind:Opcode.Fp_fu ~cycle:1);
  Mrt.fu_reserve m ~cluster:0 ~kind:Opcode.Fp_fu ~cycle:1;
  (* 1 FP unit per cluster: slot now full, also for conflicting
     cycles mod II. *)
  Alcotest.(check bool) "full" false
    (Mrt.fu_available m ~cluster:0 ~kind:Opcode.Fp_fu ~cycle:1);
  Alcotest.(check bool) "modulo conflict" false
    (Mrt.fu_available m ~cluster:0 ~kind:Opcode.Fp_fu ~cycle:4);
  (* Other kinds, cycles, clusters unaffected. *)
  Alcotest.(check bool) "other kind" true
    (Mrt.fu_available m ~cluster:0 ~kind:Opcode.Int_fu ~cycle:1);
  Alcotest.(check bool) "other cycle" true
    (Mrt.fu_available m ~cluster:0 ~kind:Opcode.Fp_fu ~cycle:2);
  Alcotest.(check bool) "other cluster" true
    (Mrt.fu_available m ~cluster:1 ~kind:Opcode.Fp_fu ~cycle:1)

let test_release () =
  let m = Mrt.create machine clocking in
  Mrt.fu_reserve m ~cluster:2 ~kind:Opcode.Mem_port ~cycle:5;
  Mrt.fu_release m ~cluster:2 ~kind:Opcode.Mem_port ~cycle:5;
  Alcotest.(check bool) "free again" true
    (Mrt.fu_available m ~cluster:2 ~kind:Opcode.Mem_port ~cycle:5);
  Alcotest.check_raises "double release"
    (Invalid_argument "Mrt.fu_release: slot empty") (fun () ->
      Mrt.fu_release m ~cluster:2 ~kind:Opcode.Mem_port ~cycle:5)

let test_overbook_rejected () =
  let m = Mrt.create machine clocking in
  Mrt.fu_reserve m ~cluster:0 ~kind:Opcode.Int_fu ~cycle:0;
  Alcotest.check_raises "overbook"
    (Invalid_argument "Mrt.fu_reserve: slot full") (fun () ->
      Mrt.fu_reserve m ~cluster:0 ~kind:Opcode.Int_fu ~cycle:3)

let test_bus () =
  let m = Mrt.create machine clocking in
  Mrt.bus_reserve m ~cycle:2;
  Alcotest.(check bool) "1 bus full" false (Mrt.bus_available m ~cycle:5);
  Alcotest.(check int) "occupancy" 1 (Mrt.bus_used m ~slot:2);
  Mrt.bus_release m ~cycle:2;
  Alcotest.(check bool) "free" true (Mrt.bus_available m ~cycle:2);
  (* Two buses allow two transfers in the same slot. *)
  let m2 = Mrt.create (Presets.machine_4c ~buses:2) clocking in
  Mrt.bus_reserve m2 ~cycle:2;
  Alcotest.(check bool) "second bus" true (Mrt.bus_available m2 ~cycle:2)

let test_clear () =
  let m = Mrt.create machine clocking in
  Mrt.fu_reserve m ~cluster:0 ~kind:Opcode.Int_fu ~cycle:0;
  Mrt.bus_reserve m ~cycle:0;
  Mrt.clear m;
  Alcotest.(check bool) "fu cleared" true
    (Mrt.fu_available m ~cluster:0 ~kind:Opcode.Int_fu ~cycle:0);
  Alcotest.(check bool) "bus cleared" true (Mrt.bus_available m ~cycle:0)

let test_negative_cycle () =
  let m = Mrt.create machine clocking in
  Alcotest.check_raises "negative" (Invalid_argument "Mrt: negative cycle")
    (fun () -> ignore (Mrt.fu_available m ~cluster:0 ~kind:Opcode.Int_fu ~cycle:(-1)))

let suite =
  [
    Alcotest.test_case "fu capacity and modulo" `Quick test_fu_capacity;
    Alcotest.test_case "release" `Quick test_release;
    Alcotest.test_case "overbooking rejected" `Quick test_overbook_rejected;
    Alcotest.test_case "bus slots" `Quick test_bus;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "negative cycle" `Quick test_negative_cycle;
  ]
