(* Frequency grids and (frequency, II) pair selection. *)

open Hcv_support
open Hcv_machine

let q = Alcotest.testable Q.pp Q.equal

let test_unrestricted () =
  (* fmax = 1 GHz, IT = 3.5 ns: II = 3, f = 3/3.5 = 6/7. *)
  match Freqgrid.best_pair Freqgrid.Unrestricted ~fmax:Q.one ~it:(Q.make 7 2) with
  | Some (f, ii) ->
    Alcotest.(check int) "II" 3 ii;
    Alcotest.(check q) "f" (Q.make 6 7) f
  | None -> Alcotest.fail "expected a pair"

let test_unrestricted_exact () =
  (* Integral product: run at fmax. *)
  match Freqgrid.best_pair Freqgrid.Unrestricted ~fmax:Q.one ~it:(Q.of_int 4) with
  | Some (f, ii) ->
    Alcotest.(check int) "II" 4 ii;
    Alcotest.(check q) "f = fmax" Q.one f
  | None -> Alcotest.fail "expected a pair"

let test_unrestricted_too_small () =
  (* IT below one cycle: no pair. *)
  Alcotest.(check bool) "none" true
    (Freqgrid.best_pair Freqgrid.Unrestricted ~fmax:Q.one ~it:(Q.make 1 2)
    = None)

let test_uniform_membership () =
  let grid = Freqgrid.uniform ~steps:4 ~top:(Q.of_int 2) in
  (* Grid = {1/2, 1, 3/2, 2}. *)
  (match Freqgrid.frequencies grid with
  | Some fs ->
    Alcotest.(check int) "4 freqs" 4 (List.length fs);
    Alcotest.(check q) "lowest" (Q.make 1 2) (List.hd fs)
  | None -> Alcotest.fail "uniform grid lists frequencies");
  (* fmax = 1, IT = 2: best grid f with f*2 integer and f <= 1: f = 1
     (II 2). *)
  match Freqgrid.best_pair grid ~fmax:Q.one ~it:(Q.of_int 2) with
  | Some (f, ii) ->
    Alcotest.(check q) "f" Q.one f;
    Alcotest.(check int) "II" 2 ii
  | None -> Alcotest.fail "expected a pair"

let test_uniform_integrality () =
  let grid = Freqgrid.uniform ~steps:4 ~top:(Q.of_int 2) in
  (* IT = 7/3: 1 * 7/3 not integral; 3/2 * 7/3 = 7/2 not integral;
     1/2 * 7/3 = 7/6 not integral -> no pair. *)
  Alcotest.(check bool) "sync failure" true
    (Freqgrid.best_pair grid ~fmax:Q.one ~it:(Q.make 7 3) = None);
  (* IT = 2: fine. *)
  Alcotest.(check bool) "sync ok" true
    (Freqgrid.best_pair grid ~fmax:Q.one ~it:(Q.of_int 2) <> None)

let prop_pair_is_valid =
  let gen =
    QCheck.make
      (QCheck.Gen.map
         (fun seed ->
           let rng = Hcv_support.Rng.create seed in
           let steps = 1 + Hcv_support.Rng.int rng 16 in
           let fmax =
             Q.make (1 + Hcv_support.Rng.int rng 20) (1 + Hcv_support.Rng.int rng 10)
           in
           let it =
             Q.make (1 + Hcv_support.Rng.int rng 40) (1 + Hcv_support.Rng.int rng 8)
           in
           (steps, fmax, it))
         QCheck.Gen.int)
  in
  QCheck.Test.make ~name:"best_pair invariants" ~count:200 gen
    (fun (steps, fmax, it) ->
      let grid = Freqgrid.uniform ~steps ~top:(Q.of_int 2) in
      match Freqgrid.best_pair grid ~fmax ~it with
      | None -> true
      | Some (f, ii) ->
        ii >= 1
        && Q.( <= ) f fmax
        && Q.equal (Q.mul f it) (Q.of_int ii)
        &&
        (* f is a grid frequency. *)
        (match Freqgrid.frequencies grid with
        | Some fs -> List.exists (Q.equal f) fs
        | None -> false))


(* Divider grids (the Fig. 2 clock-generation network). *)
let test_dividers () =
  let grid = Freqgrid.dividers ~steps:4 ~base:(Q.of_int 2) in
  (match Freqgrid.frequencies grid with
  | Some fs ->
    Alcotest.(check int) "4 freqs" 4 (List.length fs);
    Alcotest.(check q) "lowest = base/steps" (Q.make 1 2) (List.hd fs);
    Alcotest.(check q) "highest = base" (Q.of_int 2)
      (List.nth fs 3)
  | None -> Alcotest.fail "dividers list frequencies");
  (* fmax = 1: dividers 2 (f=1), 3 (2/3), 4 (1/2) are usable.
     IT = 3: f=1 -> II 3 (integer): picked. *)
  (match Freqgrid.best_pair grid ~fmax:Q.one ~it:(Q.of_int 3) with
  | Some (f, ii) ->
    Alcotest.(check q) "f" Q.one f;
    Alcotest.(check int) "II" 3 ii
  | None -> Alcotest.fail "expected a pair");
  (* IT = 3/2: f=1 -> 3/2 not integral; f=2/3 -> 1 (integral). *)
  match Freqgrid.best_pair grid ~fmax:Q.one ~it:(Q.make 3 2) with
  | Some (f, ii) ->
    Alcotest.(check q) "lower divider" (Q.make 2 3) f;
    Alcotest.(check int) "II 1" 1 ii
  | None -> Alcotest.fail "expected a divider pair"

let suite =
  [
    Alcotest.test_case "unrestricted" `Quick test_unrestricted;
    Alcotest.test_case "unrestricted exact" `Quick test_unrestricted_exact;
    Alcotest.test_case "IT below a cycle" `Quick test_unrestricted_too_small;
    Alcotest.test_case "uniform membership" `Quick test_uniform_membership;
    Alcotest.test_case "uniform integrality" `Quick test_uniform_integrality;
    QCheck_alcotest.to_alcotest prop_pair_is_valid;
    Alcotest.test_case "divider grids" `Quick test_dividers;
  ]
