(* Maximum cycle ratio: the exact recurrence bound. *)

open Hcv_support
open Hcv_ir

let add = Opcode.make Opcode.Arith Opcode.Int

let build edges n =
  let b = Ddg.Builder.create () in
  for _ = 1 to n do
    ignore (Ddg.Builder.add_instr b add)
  done;
  List.iter
    (fun (src, dst, lat, dist) ->
      Ddg.Builder.add_edge b ~latency:lat ~distance:dist src dst)
    edges;
  Ddg.Builder.build b

let all_nodes n = List.init n (fun i -> i)
let q = Alcotest.testable Q.pp Q.equal

let test_simple_self_loop () =
  let g = build [ (0, 0, 3, 1) ] 1 in
  Alcotest.(check (option q)) "ratio 3" (Some (Q.of_int 3))
    (Cycle_ratio.exact_over g (all_nodes 1));
  Alcotest.(check int) "ceil 3" 3 (Cycle_ratio.ceil_over g (all_nodes 1))

let test_fractional_ratio () =
  (* Cycle of latency 7 spanning 2 iterations: ratio 7/2. *)
  let g = build [ (0, 1, 3, 0); (1, 0, 4, 2) ] 2 in
  Alcotest.(check (option q)) "ratio 7/2" (Some (Q.make 7 2))
    (Cycle_ratio.exact_over g (all_nodes 2));
  Alcotest.(check int) "ceil 4" 4 (Cycle_ratio.ceil_over g (all_nodes 2))

let test_max_of_two_cycles () =
  (* Two cycles: 0<->1 with ratio 5, 0 self loop ratio 2: max is 5. *)
  let g = build [ (0, 1, 2, 0); (1, 0, 3, 1); (0, 0, 2, 1) ] 2 in
  Alcotest.(check (option q)) "max ratio" (Some (Q.of_int 5))
    (Cycle_ratio.exact_over g (all_nodes 2))

let test_no_cycle () =
  let g = build [ (0, 1, 5, 0) ] 2 in
  Alcotest.(check (option q)) "acyclic" None
    (Cycle_ratio.exact_over g (all_nodes 2));
  Alcotest.(check int) "ceil 0" 0 (Cycle_ratio.ceil_over g (all_nodes 2))

let test_zero_latency_cycle () =
  let g = build [ (0, 1, 0, 0); (1, 0, 0, 1) ] 2 in
  Alcotest.(check (option q)) "ratio 0" (Some Q.zero)
    (Cycle_ratio.exact_over g (all_nodes 2))

let test_subset_restriction () =
  (* The critical cycle is outside the queried subset. *)
  let g = build [ (0, 0, 9, 1); (1, 1, 2, 1) ] 2 in
  Alcotest.(check (option q)) "only node 1" (Some (Q.of_int 2))
    (Cycle_ratio.exact_over g [ 1 ])

let test_positive_cycle_monotone () =
  let g = build [ (0, 1, 3, 0); (1, 0, 4, 2) ] 2 in
  (* lambda* = 7/2: positive cycle strictly below, none at or above. *)
  Alcotest.(check bool) "below" true
    (Cycle_ratio.has_positive_cycle g (all_nodes 2) (Q.of_int 3));
  Alcotest.(check bool) "at" false
    (Cycle_ratio.has_positive_cycle g (all_nodes 2) (Q.make 7 2));
  Alcotest.(check bool) "above" false
    (Cycle_ratio.has_positive_cycle g (all_nodes 2) (Q.of_int 4))

(* Property: ceil_over = ceil(exact_over) on random strongly cyclic
   graphs. *)
let prop_ceil_consistent =
  let gen =
    QCheck.make
      (QCheck.Gen.map
         (fun seed ->
           let rng = Hcv_support.Rng.create seed in
           let n = 2 + Hcv_support.Rng.int rng 6 in
           (* A ring with distances >= 1 on one edge plus chords. *)
           let edges = ref [] in
           for i = 0 to n - 1 do
             let dist = if i = n - 1 then 1 + Hcv_support.Rng.int rng 3 else 0 in
             edges :=
               (i, (i + 1) mod n, 1 + Hcv_support.Rng.int rng 8, dist)
               :: !edges
           done;
           for _ = 1 to Hcv_support.Rng.int rng 4 do
             let a = Hcv_support.Rng.int rng n
             and b = Hcv_support.Rng.int rng n in
             edges :=
               (a, b, 1 + Hcv_support.Rng.int rng 8,
                1 + Hcv_support.Rng.int rng 2)
               :: !edges
           done;
           build !edges n)
         QCheck.Gen.int)
  in
  QCheck.Test.make ~name:"ceil_over = ceil(exact_over)" ~count:100 gen
    (fun g ->
      let nodes = all_nodes (Ddg.n_instrs g) in
      match Cycle_ratio.exact_over g nodes with
      | None -> Cycle_ratio.ceil_over g nodes = 0
      | Some r -> Cycle_ratio.ceil_over g nodes = Q.ceil r)

(* Property: the exact ratio is the feasibility boundary: the
   positive-cycle test fails at the ratio itself and succeeds just
   below it. *)
let prop_exact_is_boundary =
  let gen =
    QCheck.make
      (QCheck.Gen.map
         (fun seed ->
           let rng = Hcv_support.Rng.create seed in
           let lat = 1 + Hcv_support.Rng.int rng 12 in
           let dist = 1 + Hcv_support.Rng.int rng 4 in
           let lat2 = 1 + Hcv_support.Rng.int rng 12 in
           build [ (0, 1, lat, 0); (1, 0, lat2, dist) ] 2)
         QCheck.Gen.int)
  in
  QCheck.Test.make ~name:"exact ratio is the feasibility boundary" ~count:100
    gen (fun g ->
      let nodes = all_nodes 2 in
      match Cycle_ratio.exact_over g nodes with
      | None -> false
      | Some r ->
        (not (Cycle_ratio.has_positive_cycle g nodes r))
        && Cycle_ratio.has_positive_cycle g nodes
             (Q.sub r (Q.make 1 1000)))

let suite =
  [
    Alcotest.test_case "self loop" `Quick test_simple_self_loop;
    Alcotest.test_case "fractional ratio" `Quick test_fractional_ratio;
    Alcotest.test_case "max of two cycles" `Quick test_max_of_two_cycles;
    Alcotest.test_case "no cycle" `Quick test_no_cycle;
    Alcotest.test_case "zero-latency cycle" `Quick test_zero_latency_cycle;
    Alcotest.test_case "subset restriction" `Quick test_subset_restriction;
    Alcotest.test_case "positive-cycle monotone" `Quick
      test_positive_cycle_monotone;
    QCheck_alcotest.to_alcotest prop_ceil_consistent;
    QCheck_alcotest.to_alcotest prop_exact_is_boundary;
  ]
