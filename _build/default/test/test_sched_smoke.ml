(* End-to-end smoke tests for the homogeneous scheduler: every loop
   shape must produce a schedule that passes full validation at an II
   close to its MII. *)

open Hcv_support
open Hcv_sched

let check_valid sched =
  match Schedule.validate sched with
  | Ok () -> ()
  | Error errs -> Alcotest.failf "invalid schedule: %s" (String.concat "; " errs)

let schedule_ok machine loop =
  match
    Homo.schedule ~machine ~cycle_time:Q.one ~loop ()
  with
  | Ok (sched, stats) ->
    check_valid sched;
    (sched, stats)
  | Error msg -> Alcotest.failf "scheduling failed: %s" msg

let test_dotprod () =
  let loop = Builders.dotprod () in
  let sched, stats = schedule_ok Builders.machine_1bus loop in
  Alcotest.(check bool) "ii >= mii" true (stats.Homo.ii >= stats.Homo.mii);
  Alcotest.(check bool)
    "positive length" true
    (Q.sign (Schedule.it_length sched) > 0)

let test_recurrence () =
  let loop = Builders.recurrence_loop () in
  let sched, _ = schedule_ok Builders.machine_1bus loop in
  check_valid sched

let test_wide () =
  let loop = Builders.wide_loop ~width:8 () in
  let sched, stats = schedule_ok Builders.machine_1bus loop in
  check_valid sched;
  (* 16 memory ops over 4 memory ports: resMII = 4. *)
  Alcotest.(check bool) "ii >= 4" true (stats.Homo.ii >= 4)

let test_single_cluster () =
  let loop = Builders.dotprod () in
  let sched, _ = schedule_ok Builders.single_cluster loop in
  check_valid sched;
  Alcotest.(check int) "no comms on one cluster" 0 (Schedule.n_comms sched)

let test_two_bus_not_worse () =
  let loop = Builders.wide_loop ~width:6 () in
  let _, s1 = schedule_ok Builders.machine_1bus loop in
  let _, s2 = schedule_ok Builders.machine_2bus loop in
  Alcotest.(check bool) "2 buses not worse" true (s2.Homo.ii <= s1.Homo.ii + 1)

let suite =
  [
    Alcotest.test_case "dotprod schedules" `Quick test_dotprod;
    Alcotest.test_case "recurrence loop schedules" `Quick test_recurrence;
    Alcotest.test_case "wide loop schedules" `Quick test_wide;
    Alcotest.test_case "single cluster" `Quick test_single_cluster;
    Alcotest.test_case "two buses" `Quick test_two_bus_not_worse;
  ]
