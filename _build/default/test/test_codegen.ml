(* Software-pipelined code emission. *)

open Hcv_support
open Hcv_ir
open Hcv_sched

let machine = Builders.machine_1bus

let emit loop =
  match Homo.schedule ~machine ~cycle_time:Q.one ~loop () with
  | Ok (sched, _) -> Codegen.emit sched
  | Error msg -> Alcotest.failf "scheduling failed: %s" msg

let test_kernel_is_one_iteration () =
  let loop = Builders.recurrence_loop () in
  let code = emit loop in
  Alcotest.(check int) "kernel ops = instrs + comms"
    (Ddg.n_instrs loop.Loop.ddg
    + Schedule.n_comms code.Codegen.schedule)
    (Codegen.kernel_ops code)

let test_prologue_epilogue_counts () =
  (* Each instruction of stage s appears (SC-1-s) times in the prologue
     and s times in the epilogue: together SC-1 times. *)
  let loop = Builders.recurrence_loop () in
  let code = emit loop in
  let sc = code.Codegen.stage_count in
  let n_ops =
    Ddg.n_instrs loop.Loop.ddg + Schedule.n_comms code.Codegen.schedule
  in
  Alcotest.(check int) "ramp ops"
    ((sc - 1) * n_ops)
    (Codegen.static_ops code - Codegen.kernel_ops code)

let test_kernel_length () =
  let loop = Builders.dotprod () in
  let code = emit loop in
  let clocking = code.Codegen.schedule.Schedule.clocking in
  Array.iteri
    (fun cl (c : Codegen.cluster_code) ->
      Alcotest.(check int)
        (Printf.sprintf "kernel II cluster %d" cl)
        clocking.Clocking.cluster_ii.(cl)
        (Array.length c.Codegen.kernel))
    code.Codegen.clusters;
  Alcotest.(check int) "prologue length"
    ((code.Codegen.stage_count - 1) * clocking.Clocking.cluster_ii.(0))
    (Array.length code.Codegen.clusters.(0).Codegen.prologue)

let test_stage_annotations () =
  let loop = Builders.recurrence_loop () in
  let code = emit loop in
  let sc = code.Codegen.stage_count in
  Array.iter
    (fun (c : Codegen.cluster_code) ->
      Array.iter
        (fun word ->
          List.iter
            (function
              | Codegen.Instr { stage; _ } | Codegen.Copy { stage; _ } ->
                if stage < 0 || stage >= sc then
                  Alcotest.failf "stage %d out of [0,%d)" stage sc)
            word)
        c.Codegen.kernel)
    code.Codegen.clusters

let test_render () =
  let loop = Builders.dotprod () in
  let code = emit loop in
  let listing = Codegen.render code in
  let table = Codegen.render_kernel_table code in
  Alcotest.(check bool) "listing mentions kernel" true
    (String.length listing > 0);
  Alcotest.(check bool) "table nonempty" true (String.length table > 0)

let test_invalid_rejected () =
  let loop = Builders.dotprod () in
  match Homo.schedule ~machine ~cycle_time:Q.one ~loop () with
  | Error msg -> Alcotest.failf "scheduling failed: %s" msg
  | Ok (sched, _) ->
    let placements = Array.copy sched.Schedule.placements in
    placements.(3) <- { Schedule.cluster = 0; cycle = 0 };
    let broken = { sched with Schedule.placements } in
    (match Codegen.emit broken with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument")

let suite =
  [
    Alcotest.test_case "kernel = one iteration" `Quick
      test_kernel_is_one_iteration;
    Alcotest.test_case "prologue/epilogue counts" `Quick
      test_prologue_epilogue_counts;
    Alcotest.test_case "kernel lengths" `Quick test_kernel_length;
    Alcotest.test_case "stage annotations" `Quick test_stage_annotations;
    Alcotest.test_case "rendering" `Quick test_render;
    Alcotest.test_case "invalid schedules rejected" `Quick
      test_invalid_rejected;
  ]
