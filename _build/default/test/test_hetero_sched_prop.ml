(* Property tests of the scheduler under *randomised heterogeneous
   clockings*: random loops on random per-cluster cycle times must
   either schedule to a fully validated schedule or fail with a clean
   error — never emit a wrong schedule. *)

open Hcv_support
open Hcv_ir
open Hcv_machine
open Hcv_sched
open Hcv_core

let machine = Presets.machine_4c ~buses:1

let random_loop rng =
  let ops =
    [
      Opcode.make Opcode.Arith Opcode.Fp;
      Opcode.make Opcode.Mult Opcode.Fp;
      Opcode.make Opcode.Div Opcode.Fp;
      Opcode.make Opcode.Arith Opcode.Int;
      Opcode.make Opcode.Memory Opcode.Fp;
    ]
  in
  let n = 3 + Rng.int rng 14 in
  let b = Ddg.Builder.create () in
  for _ = 1 to n do
    ignore (Ddg.Builder.add_instr b (Rng.pick rng ops))
  done;
  for dst = 1 to n - 1 do
    if Rng.chance rng 0.75 then Ddg.Builder.add_edge b (Rng.int rng dst) dst;
    if Rng.chance rng 0.2 then
      Ddg.Builder.add_edge b ~distance:(1 + Rng.int rng 2) dst (Rng.int rng dst)
  done;
  Loop.make ~trip:(10 + Rng.int rng 100) ~name:"prop" (Ddg.Builder.build b)

let random_config rng =
  let fast = Rng.pick rng Presets.fast_factors in
  let slow = Rng.pick rng Presets.slow_factors in
  let fast_ct = Q.mul Presets.reference_cycle_time fast in
  let slow_ct = Q.mul fast_ct slow in
  let n_fast = 1 + Rng.int rng 3 in
  let pt ct = { Opconfig.cycle_time = ct; vdd = 1.0 } in
  Opconfig.make ~machine
    ~cluster_points:
      (Array.init 4 (fun i -> pt (if i < n_fast then fast_ct else slow_ct)))
    ~icn_point:(pt fast_ct) ~cache_point:(pt fast_ct)

(* A throwaway model context (scoring only compares candidates). *)
let ctx =
  let act =
    Hcv_energy.Activity.make ~exec_time_ns:1e6
      ~per_cluster_ins_energy:[| 100.; 100.; 100.; 100. |]
      ~n_comms:100. ~n_mem:100.
  in
  Hcv_energy.Model.ctx ~params:Hcv_energy.Params.default
    ~units:
      (Hcv_energy.Units.of_reference ~params:Hcv_energy.Params.default
         ~n_clusters:4 act)
    ()

let prop_hetero_schedules_validate =
  QCheck.Test.make ~name:"heterogeneous schedules validate" ~count:40
    (QCheck.make QCheck.Gen.int) (fun seed ->
      let rng = Rng.create seed in
      let loop = random_loop rng in
      let config = random_config rng in
      match Hsched.schedule ~ctx ~config ~loop () with
      | Error _ -> true (* clean failure is acceptable *)
      | Ok (sched, stats) ->
        Schedule.validate sched = Ok ()
        && Q.( >= ) stats.Hsched.it stats.Hsched.mit)

let prop_hetero_sim_clean =
  QCheck.Test.make ~name:"heterogeneous schedules simulate clean" ~count:25
    (QCheck.make QCheck.Gen.int) (fun seed ->
      let rng = Rng.create (seed lxor 0x5bd1e995) in
      let loop = random_loop rng in
      let config = random_config rng in
      match Hsched.schedule ~ctx ~config ~loop () with
      | Error _ -> true
      | Ok (sched, _) -> (
        match Hcv_sim.Simulator.measure ~schedule:sched ~trip:15 with
        | Ok _ -> true
        | Error _ -> false))

let prop_it_on_candidate_grid =
  QCheck.Test.make ~name:"final IT admits integral IIs everywhere" ~count:40
    (QCheck.make QCheck.Gen.int) (fun seed ->
      let rng = Rng.create (seed lxor 0x2545f491) in
      let loop = random_loop rng in
      let config = random_config rng in
      match Hsched.schedule ~ctx ~config ~loop () with
      | Error _ -> true
      | Ok (sched, _) ->
        let clocking = sched.Schedule.clocking in
        (* Every domain: II >= 1 and II * actual-ct = IT. *)
        Array.for_all2
          (fun ii ct ->
            ii >= 1 && Q.equal (Q.mul_int ct ii) clocking.Clocking.it)
          clocking.Clocking.cluster_ii clocking.Clocking.cluster_ct)

let prop_unrolled_hetero =
  QCheck.Test.make ~name:"unrolled loops schedule heterogeneously" ~count:15
    (QCheck.make QCheck.Gen.int) (fun seed ->
      let rng = Rng.create (seed lxor 0x9e3779b9) in
      let loop = Unroll.loop ~factor:2 (random_loop rng) in
      let config = random_config rng in
      match Hsched.schedule ~ctx ~config ~loop () with
      | Error _ -> true
      | Ok (sched, _) -> Schedule.validate sched = Ok ())

let suite =
  [
    QCheck_alcotest.to_alcotest prop_hetero_schedules_validate;
    QCheck_alcotest.to_alcotest prop_hetero_sim_clean;
    QCheck_alcotest.to_alcotest prop_it_on_candidate_grid;
    QCheck_alcotest.to_alcotest prop_unrolled_hetero;
  ]
