(* Synthetic workload generators and the SPECfp2000 populations. *)

open Hcv_support
open Hcv_ir
open Hcv_machine
open Hcv_sched
open Hcv_workload

let machine = Presets.machine_4c ~buses:1

let test_shapes_valid () =
  let rng = Rng.create 5 in
  let loops =
    [
      Shapes.recurrence_chain ~rng ~name:"rc" ~rec_len:3 ~extra:12 ();
      Shapes.reduction ~rng ~name:"red" ~width:6 ();
      Shapes.stencil ~rng ~name:"st" ~points:5 ();
      Shapes.wide_parallel ~rng ~name:"wp" ~lanes:5 ~merge:true ();
      Shapes.register_heavy ~rng ~name:"rh" ~values:8 ();
    ]
  in
  (* Construction already validates (no zero-distance cycles); check
     basic structure. *)
  List.iter
    (fun (l : Loop.t) ->
      Alcotest.(check bool) (l.Loop.name ^ " nonempty") true
        (Ddg.n_instrs l.Loop.ddg > 0))
    loops

let test_recurrence_chain_class () =
  let rng = Rng.create 7 in
  let l = Shapes.recurrence_chain ~rng ~name:"r" ~rec_len:3 ~extra:6 () in
  (* A 3-op multiply-heavy recurrence dominates a small body. *)
  Alcotest.(check bool) "has recurrence" true
    (Recurrence.rec_mii l.Loop.ddg > 0)

let test_wide_parallel_class () =
  let rng = Rng.create 8 in
  let l = Shapes.wide_parallel ~rng ~name:"w" ~lanes:8 ~depth:2 () in
  Alcotest.(check int) "no recurrence" 0 (Recurrence.rec_mii l.Loop.ddg);
  Alcotest.(check string) "resource class" "resource"
    (Mii.class_to_string (Mii.classify machine l.Loop.ddg))

let test_specfp_table2 () =
  (* Every population's measured class mix matches its Table 2 row. *)
  List.iter
    (fun spec ->
      let loops = Specfp.loops ~seed:42 spec in
      let res, border, rec_ = Specfp.table2_row machine loops in
      let close what a b =
        if Float.abs (a -. b) > 0.02 then
          Alcotest.failf "%s/%s: %.4f vs %.4f" spec.Specfp.name what a b
      in
      close "res" res spec.Specfp.res_share;
      close "border" border spec.Specfp.border_share;
      close "rec" rec_ spec.Specfp.rec_share)
    Specfp.all

let test_specfp_deterministic () =
  let spec = Option.get (Specfp.find "facerec") in
  let a = Specfp.loops ~seed:9 spec and b = Specfp.loops ~seed:9 spec in
  List.iter2
    (fun (x : Loop.t) (y : Loop.t) ->
      Alcotest.(check int) "same sizes" (Ddg.n_instrs x.Loop.ddg)
        (Ddg.n_instrs y.Loop.ddg);
      Alcotest.(check int) "same edges" (Ddg.n_edges x.Loop.ddg)
        (Ddg.n_edges y.Loop.ddg))
    a b;
  let c = Specfp.loops ~seed:10 spec in
  (* Different seeds give a different population (very likely). *)
  let sizes l = List.map (fun (x : Loop.t) -> Ddg.n_instrs x.Loop.ddg) l in
  Alcotest.(check bool) "seed sensitivity" true (sizes a <> sizes c)

let test_specfp_all_schedule () =
  (* Every loop of one population schedules on the reference machine. *)
  let spec = Option.get (Specfp.find "galgel") in
  List.iter
    (fun loop ->
      match
        Homo.schedule ~machine ~cycle_time:Presets.reference_cycle_time ~loop ()
      with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "%s: %s" loop.Loop.name msg)
    (Specfp.loops ~n_loops:8 ~seed:3 spec)

let test_ten_benchmarks () =
  Alcotest.(check int) "10 benchmarks" 10 (List.length Specfp.all);
  Alcotest.(check (list string)) "names"
    [ "wupwise"; "swim"; "mgrid"; "applu"; "galgel"; "facerec"; "lucas";
      "fma3d"; "sixtrack"; "apsi" ]
    (List.map (fun s -> s.Specfp.name) Specfp.all)

let suite =
  [
    Alcotest.test_case "shapes build" `Quick test_shapes_valid;
    Alcotest.test_case "recurrence chain has recurrence" `Quick
      test_recurrence_chain_class;
    Alcotest.test_case "wide parallel is resource class" `Quick
      test_wide_parallel_class;
    Alcotest.test_case "Table 2 mixes match" `Quick test_specfp_table2;
    Alcotest.test_case "deterministic generation" `Quick
      test_specfp_deterministic;
    Alcotest.test_case "populations schedule" `Quick test_specfp_all_schedule;
    Alcotest.test_case "ten benchmarks" `Quick test_ten_benchmarks;
  ]
