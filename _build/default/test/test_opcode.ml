(* Table 1 of the paper: latencies and relative energies. *)

open Hcv_ir

let lat clazz domain = Opcode.latency (Opcode.make clazz domain)
let en clazz domain = Opcode.energy (Opcode.make clazz domain)

let test_latencies () =
  Alcotest.(check int) "mem int" 2 (lat Opcode.Memory Opcode.Int);
  Alcotest.(check int) "mem fp" 2 (lat Opcode.Memory Opcode.Fp);
  Alcotest.(check int) "arith int" 1 (lat Opcode.Arith Opcode.Int);
  Alcotest.(check int) "arith fp" 3 (lat Opcode.Arith Opcode.Fp);
  Alcotest.(check int) "mult int" 2 (lat Opcode.Mult Opcode.Int);
  Alcotest.(check int) "mult fp" 6 (lat Opcode.Mult Opcode.Fp);
  Alcotest.(check int) "div int" 6 (lat Opcode.Div Opcode.Int);
  Alcotest.(check int) "div fp" 18 (lat Opcode.Div Opcode.Fp)

let test_energies () =
  Alcotest.(check (float 1e-9)) "mem" 1.0 (en Opcode.Memory Opcode.Int);
  Alcotest.(check (float 1e-9)) "int add (reference)" 1.0
    (en Opcode.Arith Opcode.Int);
  Alcotest.(check (float 1e-9)) "fp arith" 1.2 (en Opcode.Arith Opcode.Fp);
  Alcotest.(check (float 1e-9)) "int mult" 1.1 (en Opcode.Mult Opcode.Int);
  Alcotest.(check (float 1e-9)) "fp mult" 1.5 (en Opcode.Mult Opcode.Fp);
  Alcotest.(check (float 1e-9)) "int div" 1.4 (en Opcode.Div Opcode.Int);
  Alcotest.(check (float 1e-9)) "fp div" 2.0 (en Opcode.Div Opcode.Fp)

let test_fu_mapping () =
  Alcotest.(check bool) "mem -> port" true
    (Opcode.fu (Opcode.make Opcode.Memory Opcode.Fp) = Opcode.Mem_port);
  Alcotest.(check bool) "int arith -> int fu" true
    (Opcode.fu (Opcode.make Opcode.Arith Opcode.Int) = Opcode.Int_fu);
  Alcotest.(check bool) "fp div -> fp fu" true
    (Opcode.fu (Opcode.make Opcode.Div Opcode.Fp) = Opcode.Fp_fu)

let test_mnemonics () =
  List.iter
    (fun (m, op) ->
      match Opcode.of_mnemonic m with
      | Some op' -> Alcotest.(check bool) m true (Opcode.equal op op')
      | None -> Alcotest.failf "mnemonic %s not parsed" m)
    Opcode.mnemonics;
  Alcotest.(check bool) "unknown" true (Opcode.of_mnemonic "bogus" = None)

let test_all_coverage () =
  Alcotest.(check int) "eight classes" 8 (List.length Opcode.all);
  (* Every class has at least one mnemonic. *)
  List.iter
    (fun op ->
      let found =
        List.exists (fun (_, o) -> Opcode.equal o op) Opcode.mnemonics
      in
      Alcotest.(check bool) (Opcode.to_string op) true found)
    Opcode.all

let suite =
  [
    Alcotest.test_case "Table 1 latencies" `Quick test_latencies;
    Alcotest.test_case "Table 1 energies" `Quick test_energies;
    Alcotest.test_case "FU mapping" `Quick test_fu_mapping;
    Alcotest.test_case "mnemonics" `Quick test_mnemonics;
    Alcotest.test_case "class coverage" `Quick test_all_coverage;
  ]
