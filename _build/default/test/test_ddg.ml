(* DDG construction and analyses. *)

open Hcv_ir

let add = Opcode.make Opcode.Arith Opcode.Int
let fmul = Opcode.make Opcode.Mult Opcode.Fp

let diamond () =
  (* a -> b, a -> c, b -> d, c -> d *)
  let b = Ddg.Builder.create () in
  let a = Ddg.Builder.add_instr b ~name:"a" add in
  let b1 = Ddg.Builder.add_instr b ~name:"b" fmul in
  let c = Ddg.Builder.add_instr b ~name:"c" add in
  let d = Ddg.Builder.add_instr b ~name:"d" add in
  Ddg.Builder.add_edge b a b1;
  Ddg.Builder.add_edge b a c;
  Ddg.Builder.add_edge b b1 d;
  Ddg.Builder.add_edge b c d;
  Ddg.Builder.build b

let test_builder_basic () =
  let g = diamond () in
  Alcotest.(check int) "4 instrs" 4 (Ddg.n_instrs g);
  Alcotest.(check int) "4 edges" 4 (Ddg.n_edges g);
  Alcotest.(check int) "a has 2 succs" 2 (List.length (Ddg.succs g 0));
  Alcotest.(check int) "d has 2 preds" 2 (List.length (Ddg.preds g 3))

let test_default_edge_latency () =
  let g = diamond () in
  (* Edge a->b defaults to a's latency (int add = 1); b->d to fp mult's
     latency (6). *)
  let e_ab = List.find (fun (e : Edge.t) -> e.dst = 1) (Ddg.succs g 0) in
  Alcotest.(check int) "a->b latency" 1 e_ab.Edge.latency;
  let e_bd = List.hd (Ddg.succs g 1) in
  Alcotest.(check int) "b->d latency" 6 e_bd.Edge.latency

let test_zero_cycle_rejected () =
  let b = Ddg.Builder.create () in
  let a = Ddg.Builder.add_instr b add in
  let c = Ddg.Builder.add_instr b add in
  Ddg.Builder.add_edge b a c;
  Ddg.Builder.add_edge b c a;
  Alcotest.check_raises "0-distance cycle"
    (Invalid_argument "Ddg.of_instrs: zero-distance dependence cycle")
    (fun () -> ignore (Ddg.Builder.build b))

let test_loop_carried_cycle_ok () =
  let b = Ddg.Builder.create () in
  let a = Ddg.Builder.add_instr b add in
  let c = Ddg.Builder.add_instr b add in
  Ddg.Builder.add_edge b a c;
  Ddg.Builder.add_edge b ~distance:1 c a;
  let g = Ddg.Builder.build b in
  Alcotest.(check int) "built" 2 (Ddg.n_instrs g)

let test_topo_order () =
  let g = diamond () in
  let order = Ddg.topo_order g in
  let pos = Array.make 4 0 in
  List.iteri (fun idx i -> pos.(i) <- idx) order;
  List.iter
    (fun (e : Edge.t) ->
      if e.distance = 0 then
        Alcotest.(check bool) "src before dst" true (pos.(e.src) < pos.(e.dst)))
    (Ddg.edges g)

let test_heights_and_critical_path () =
  let g = diamond () in
  let h = Ddg.heights g in
  (* d: 1; b: 6 + 1 = 7; c: 1 + 1 = 2; a: 1 + 7 = 8. *)
  Alcotest.(check int) "height d" 1 h.(3);
  Alcotest.(check int) "height b" 7 h.(1);
  Alcotest.(check int) "height c" 2 h.(2);
  Alcotest.(check int) "height a" 8 h.(0);
  Alcotest.(check int) "critical path" 8 (Ddg.acyclic_critical_path g)

let test_earliest_starts () =
  let g = diamond () in
  let s = Ddg.earliest_starts g in
  Alcotest.(check int) "a at 0" 0 s.(0);
  Alcotest.(check int) "b at 1" 1 s.(1);
  Alcotest.(check int) "c at 1" 1 s.(2);
  Alcotest.(check int) "d after b" 7 s.(3)

let test_fu_demand () =
  let g = diamond () in
  let demand = Ddg.fu_demand g in
  Alcotest.(check int) "int ops" 3 (List.assoc Opcode.Int_fu demand);
  Alcotest.(check int) "fp ops" 1 (List.assoc Opcode.Fp_fu demand);
  Alcotest.(check int) "mem ops" 0 (List.assoc Opcode.Mem_port demand)

let test_find_instr () =
  let g = diamond () in
  (match Ddg.find_instr g "c" with
  | Some ins -> Alcotest.(check int) "id of c" 2 ins.Instr.id
  | None -> Alcotest.fail "c not found");
  Alcotest.(check bool) "missing" true (Ddg.find_instr g "zz" = None)

let test_total_energy () =
  let g = diamond () in
  (* 3 int adds (1.0) + 1 fp mult (1.5). *)
  Alcotest.(check (float 1e-9)) "energy" 4.5 (Ddg.total_energy g)

(* Property: random DAGs (edges only forward) always build and
   topo-sort. *)
let prop_random_dag =
  let gen =
    QCheck.make
      (QCheck.Gen.map
         (fun seed ->
           let rng = Hcv_support.Rng.create seed in
           let n = 2 + Hcv_support.Rng.int rng 20 in
           let b = Ddg.Builder.create () in
           for _ = 1 to n do
             ignore (Ddg.Builder.add_instr b add)
           done;
           for dst = 1 to n - 1 do
             let n_preds = Hcv_support.Rng.int rng 3 in
             for _ = 1 to n_preds do
               Ddg.Builder.add_edge b (Hcv_support.Rng.int rng dst) dst
             done
           done;
           Ddg.Builder.build b)
         QCheck.Gen.int)
  in
  QCheck.Test.make ~name:"random forward DAGs topo-sort" ~count:100 gen
    (fun g ->
      let order = Ddg.topo_order g in
      List.length order = Ddg.n_instrs g)

let suite =
  [
    Alcotest.test_case "builder" `Quick test_builder_basic;
    Alcotest.test_case "default edge latency" `Quick test_default_edge_latency;
    Alcotest.test_case "zero-distance cycle rejected" `Quick
      test_zero_cycle_rejected;
    Alcotest.test_case "loop-carried cycle ok" `Quick
      test_loop_carried_cycle_ok;
    Alcotest.test_case "topological order" `Quick test_topo_order;
    Alcotest.test_case "heights / critical path" `Quick
      test_heights_and_critical_path;
    Alcotest.test_case "earliest starts" `Quick test_earliest_starts;
    Alcotest.test_case "fu demand" `Quick test_fu_demand;
    Alcotest.test_case "find by name" `Quick test_find_instr;
    Alcotest.test_case "total energy" `Quick test_total_energy;
    QCheck_alcotest.to_alcotest prop_random_dag;
  ]
