(* The alpha-power voltage/frequency model. *)

open Hcv_machine

let p = Alpha_power.default

let test_calibration_point () =
  (* The reference point satisfies the law exactly. *)
  Alcotest.(check (float 1e-9)) "1 GHz at 1 V / 0.25 V" 1.0
    (Alpha_power.fmax p ~vdd:1.0 ~vth:0.25)

let test_vth_inverts_fmax () =
  List.iter
    (fun (vdd, f) ->
      match Alpha_power.vth_for p ~vdd ~f with
      | None -> Alcotest.failf "no vth for vdd=%g f=%g" vdd f
      | Some vth ->
        Alcotest.(check (float 1e-9))
          (Printf.sprintf "fmax(vdd=%g, vth_for)=f" vdd)
          f
          (Alpha_power.fmax p ~vdd ~vth))
    [ (1.0, 0.8); (1.1, 1.0); (0.9, 0.5); (1.2, 1.1) ]

let test_monotonic_in_vth () =
  (* Lower threshold -> faster. *)
  let f1 = Alpha_power.fmax p ~vdd:1.0 ~vth:0.2 in
  let f2 = Alpha_power.fmax p ~vdd:1.0 ~vth:0.3 in
  Alcotest.(check bool) "vth down, f up" true (f1 > f2)

let test_unreachable_frequency () =
  (* Even vth = 0 cannot reach 10 GHz at 1 V. *)
  Alcotest.(check bool) "none" true (Alpha_power.vth_for p ~vdd:1.0 ~f:10.0 = None)

let test_valid_vth_band () =
  Alcotest.(check bool) "mid ok" true (Alpha_power.valid_vth ~vdd:1.0 ~vth:0.5);
  Alcotest.(check bool) "too low" false
    (Alpha_power.valid_vth ~vdd:1.0 ~vth:0.05);
  Alcotest.(check bool) "too high" false
    (Alpha_power.valid_vth ~vdd:1.0 ~vth:0.95)

let test_supports () =
  (* The reference point is supported. *)
  Alcotest.(check bool) "reference supported" true
    (Alpha_power.supports p ~vdd:1.0 ~f:1.0 <> None);
  (* A very low frequency at high vdd pushes vth above the guard
     band. *)
  Alcotest.(check bool) "underclocked out of band" true
    (Alpha_power.supports p ~vdd:1.2 ~f:0.01 = None)

let suite =
  [
    Alcotest.test_case "calibration point" `Quick test_calibration_point;
    Alcotest.test_case "vth_for inverts fmax" `Quick test_vth_inverts_fmax;
    Alcotest.test_case "monotonicity" `Quick test_monotonic_in_vth;
    Alcotest.test_case "unreachable frequency" `Quick
      test_unreachable_frequency;
    Alcotest.test_case "vth guard band" `Quick test_valid_vth_band;
    Alcotest.test_case "supports" `Quick test_supports;
  ]
