test/test_alpha.ml: Alcotest Alpha_power Hcv_machine List Printf
