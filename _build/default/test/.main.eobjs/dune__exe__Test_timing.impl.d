test/test_timing.ml: Alcotest Clocking Hcv_ir Hcv_sched Hcv_support Instr Opcode Q Timing
