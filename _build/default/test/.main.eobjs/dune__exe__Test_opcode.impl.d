test/test_opcode.ml: Alcotest Hcv_ir List Opcode
