test/test_pseudo.ml: Alcotest Array Builders Clocking Ddg Hcv_ir Hcv_machine Hcv_sched Hcv_support Loop Opcode Partition Presets Pseudo Q Schedule
