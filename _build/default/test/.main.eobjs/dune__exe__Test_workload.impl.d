test/test_workload.ml: Alcotest Ddg Float Hcv_ir Hcv_machine Hcv_sched Hcv_support Hcv_workload Homo List Loop Mii Option Presets Recurrence Rng Shapes Specfp
