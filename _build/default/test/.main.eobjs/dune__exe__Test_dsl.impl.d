test/test_dsl.ml: Alcotest Builders Ddg Dsl Edge Hcv_ir Hcv_workload List Loop Option
