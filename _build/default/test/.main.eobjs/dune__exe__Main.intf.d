test/main.mli:
