test/test_sim.ml: Alcotest Array Builders Hcv_core Hcv_energy Hcv_ir Hcv_sched Hcv_sim Hcv_support Homo List Printf Q Schedule Simulator String
