test/test_freqgrid.ml: Alcotest Freqgrid Hcv_machine Hcv_support List Q QCheck QCheck_alcotest
