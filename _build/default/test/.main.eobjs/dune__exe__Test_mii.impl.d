test/test_mii.ml: Alcotest Cluster Ddg Hcv_ir Hcv_machine Hcv_sched Icn Machine Mii Opcode Presets
