test/test_machine.ml: Alcotest Cluster Comp Hcv_ir Hcv_machine Hcv_support Icn List Machine Opcode Opconfig Presets Q String
