test/test_sched_smoke.ml: Alcotest Builders Hcv_sched Hcv_support Homo Q Schedule String
