test/test_partition.ml: Alcotest Array Ddg Edge Hcv_ir Hcv_sched Hcv_support List Opcode Partition QCheck QCheck_alcotest Rng
