test/test_mrt.ml: Alcotest Clocking Hcv_ir Hcv_machine Hcv_sched Hcv_support Mrt Opcode Presets Q
