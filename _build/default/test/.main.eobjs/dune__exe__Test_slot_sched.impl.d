test/test_slot_sched.ml: Alcotest Clocking Cluster Ddg Hcv_ir Hcv_machine Hcv_sched Hcv_support Icn Loop Machine Mii Opcode Partition Presets Printf Q QCheck QCheck_alcotest Rng Schedule Slot_sched
