test/test_unroll.ml: Alcotest Builders Ddg Edge Hcv_ir Hcv_machine Hcv_sched Hcv_support Homo List Loop Opcode Presets Printf Q Recurrence Schedule Unroll
