test/test_tablefmt.ml: Alcotest Hcv_support List Option String Tablefmt
