test/test_cycle_ratio.ml: Alcotest Cycle_ratio Ddg Hcv_ir Hcv_support List Opcode Q QCheck QCheck_alcotest
