test/builders.ml: Cluster Ddg Hcv_ir Hcv_machine Icn Loop Machine Opcode Presets Printf
