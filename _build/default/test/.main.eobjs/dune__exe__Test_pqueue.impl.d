test/test_pqueue.ml: Alcotest Hcv_sim Hcv_support List Pqueue Q QCheck QCheck_alcotest
