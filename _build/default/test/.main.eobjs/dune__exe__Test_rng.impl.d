test/test_rng.ml: Alcotest Hcv_support List Listx Rng
