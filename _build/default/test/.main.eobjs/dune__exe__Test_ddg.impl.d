test/test_ddg.ml: Alcotest Array Ddg Edge Hcv_ir Hcv_support Instr List Opcode QCheck QCheck_alcotest
