test/test_scc.ml: Alcotest Array Ddg Hcv_ir Hcv_support List Opcode Q Recurrence Scc
