test/test_energy.ml: Activity Alcotest Hcv_energy Hcv_machine Hcv_support List Model Opconfig Params Presets Q Scale Units
