test/test_regalloc.ml: Alcotest Array Builders Clocking Ddg Fun Hcv_ir Hcv_sched Hcv_support Homo List Loop Opcode Printf Q Regalloc Schedule
