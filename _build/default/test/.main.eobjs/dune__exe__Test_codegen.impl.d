test/test_codegen.ml: Alcotest Array Builders Clocking Codegen Ddg Hcv_ir Hcv_sched Hcv_support Homo List Loop Printf Q Schedule String
