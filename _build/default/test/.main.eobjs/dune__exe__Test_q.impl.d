test/test_q.ml: Alcotest Float Hcv_support Q QCheck QCheck_alcotest
