test/test_mit.ml: Alcotest Builders Cluster Ddg Hcv_core Hcv_ir Hcv_machine Hcv_sched Hcv_support Icn List Listx Loop Machine Mit Opcode Opconfig Presets Q
