test/test_serialize.ml: Alcotest Array Builders Clocking Hcv_ir Hcv_machine Hcv_sched Hcv_support Homo List Q Schedule Serialize Slot_sched String
