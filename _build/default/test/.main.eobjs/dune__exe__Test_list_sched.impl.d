test/test_list_sched.ml: Alcotest Builders Ddg Hcv_ir Hcv_sched Hcv_sim Hcv_support List List_sched Loop Printf Q Schedule
