test/test_listx.ml: Alcotest Hcv_support List Listx String
