test/test_ir_basics.ml: Alcotest Builders Ddg Dot Edge Hcv_ir Instr Loop Opcode String
