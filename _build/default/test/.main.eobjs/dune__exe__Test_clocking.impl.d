test/test_clocking.ml: Alcotest Array Clocking Cluster Comp Freqgrid Hcv_machine Hcv_sched Hcv_support Icn Machine Opconfig Presets Q
