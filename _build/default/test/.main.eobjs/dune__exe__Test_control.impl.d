test/test_control.ml: Activity Alcotest Array Builders Control Hcv_energy Hcv_sched Hcv_support Homo Q
