test/test_ablation.ml: Alcotest Hcv_core Hcv_energy Hcv_machine Hcv_workload Hsched List Model Option Params Pipeline Presets Printf Profile Result Select Specfp Units
