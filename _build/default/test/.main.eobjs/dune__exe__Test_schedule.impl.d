test/test_schedule.ml: Alcotest Array Clocking Ddg Hcv_ir Hcv_machine Hcv_sched Hcv_support List Loop Opcode Presets Q Schedule String
