(* Control-path overhead (distributed unbundled branches). *)

open Hcv_support
open Hcv_energy
open Hcv_sched

let machine = Builders.machine_1bus

let sched_of loop =
  match Homo.schedule ~machine ~cycle_time:Q.one ~loop () with
  | Ok (s, _) -> s
  | Error msg -> Alcotest.failf "scheduling failed: %s" msg

let test_counts () =
  let sched = sched_of (Builders.dotprod ()) in
  let c = Control.analyze sched in
  (* 4 clusters: 2 ops each + 1 condition = 9; 3 broadcasts. *)
  Alcotest.(check int) "branch ops" 9 c.Control.branch_ops_per_iter;
  Alcotest.(check int) "broadcasts" 3 c.Control.broadcasts_per_iter;
  Alcotest.(check (float 1e-9)) "energy" 9.0 c.Control.energy_per_iter

let test_slack () =
  (* At II=3 and 1 ns cycles: condition (1) + sync (1) + bus (1) = 3 ns
     fits the 3 ns IT. *)
  let sched = sched_of (Builders.dotprod ()) in
  let c = Control.analyze sched in
  Alcotest.(check bool) "slack ok" true c.Control.slack_ok

let test_overhead_activity () =
  let sched = sched_of (Builders.dotprod ()) in
  let c = Control.analyze sched in
  let base =
    Activity.make ~exec_time_ns:100.0
      ~per_cluster_ins_energy:[| 10.0; 10.0; 10.0; 10.0 |]
      ~n_comms:5.0 ~n_mem:2.0
  in
  let act =
    Control.overhead_activity c ~trip:10 ~n_clusters:4 ~cond_cluster:0 base
  in
  (* +2 int ops per cluster per iteration, +1 on the condition cluster. *)
  Alcotest.(check (float 1e-9)) "cond cluster" (10.0 +. 30.0)
    act.Activity.per_cluster_ins_energy.(0);
  Alcotest.(check (float 1e-9)) "other cluster" (10.0 +. 20.0)
    act.Activity.per_cluster_ins_energy.(1);
  Alcotest.(check (float 1e-9)) "broadcasts" (5.0 +. 30.0) act.Activity.n_comms;
  Alcotest.(check (float 1e-9)) "time unchanged" 100.0
    act.Activity.exec_time_ns

let suite =
  [
    Alcotest.test_case "per-iteration counts" `Quick test_counts;
    Alcotest.test_case "slack check" `Quick test_slack;
    Alcotest.test_case "overhead activity" `Quick test_overhead_activity;
  ]
