(* Multilevel graph partitioning. *)

open Hcv_support
open Hcv_ir
open Hcv_sched

let add = Opcode.make Opcode.Arith Opcode.Int

let chain n =
  let b = Ddg.Builder.create () in
  let prev = ref (Ddg.Builder.add_instr b add) in
  for _ = 2 to n do
    let x = Ddg.Builder.add_instr b add in
    Ddg.Builder.add_edge b !prev x;
    prev := x
  done;
  Ddg.Builder.build b

(* Count of cut flow edges: the canonical min-comm objective. *)
let cut_score ddg a =
  float_of_int
    (List.length
       (List.filter
          (fun (e : Edge.t) ->
            Edge.carries_value e && a.(e.src) <> a.(e.dst))
          (Ddg.edges ddg)))

let test_respects_fixed () =
  let g = chain 10 in
  let fixed = [ (0, 2); (9, 3) ] in
  let r =
    Partition.run ~n_clusters:4 ~ddg:g ~fixed ~score:(cut_score g) ()
  in
  Alcotest.(check int) "node 0 fixed" 2 r.Partition.assignment.(0);
  Alcotest.(check int) "node 9 fixed" 3 r.Partition.assignment.(9)

let test_range () =
  let g = chain 20 in
  let r = Partition.run ~n_clusters:4 ~ddg:g ~score:(cut_score g) () in
  Array.iter
    (fun c -> if c < 0 || c >= 4 then Alcotest.failf "out of range %d" c)
    r.Partition.assignment

let test_min_cut_on_chain () =
  (* With a pure cut objective and no capacity pressure, a chain ends up
     in one cluster (cut 0). *)
  let g = chain 12 in
  let r = Partition.run ~n_clusters:4 ~ddg:g ~score:(cut_score g) () in
  Alcotest.(check (float 1e-9)) "zero cut" 0.0 r.Partition.score

let test_balance_objective () =
  (* With a balance objective, two independent chains separate. *)
  let b = Ddg.Builder.create () in
  for _ = 1 to 2 do
    let prev = ref (Ddg.Builder.add_instr b add) in
    for _ = 2 to 5 do
      let x = Ddg.Builder.add_instr b add in
      Ddg.Builder.add_edge b !prev x;
      prev := x
    done
  done;
  let g = Ddg.Builder.build b in
  let score a =
    let counts = Array.make 2 0 in
    Array.iter (fun c -> counts.(c) <- counts.(c) + 1) a;
    (* imbalance plus cut *)
    float_of_int (abs (counts.(0) - counts.(1))) +. cut_score g a
  in
  let r = Partition.run ~n_clusters:2 ~ddg:g ~score () in
  Alcotest.(check (float 1e-9)) "balanced, no cut" 0.0 r.Partition.score

let test_groups_stay_together () =
  (* Two groups and a pathological score that rewards splitting a
     group's members would still start with groups whole; with a neutral
     score, groups remain whole. *)
  let g = chain 8 in
  let groups = [ [ 0; 1; 2 ]; [ 5; 6 ] ] in
  let r =
    Partition.run ~n_clusters:4 ~ddg:g ~groups ~score:(cut_score g) ()
  in
  let a = r.Partition.assignment in
  Alcotest.(check bool) "group 1 together" true (a.(0) = a.(1) && a.(1) = a.(2));
  Alcotest.(check bool) "group 2 together" true (a.(5) = a.(6))

let test_group_overlap_rejected () =
  let g = chain 4 in
  Alcotest.check_raises "overlap"
    (Invalid_argument "Partition.run: groups overlap") (fun () ->
      ignore
        (Partition.run ~n_clusters:2 ~ddg:g
           ~groups:[ [ 0; 1 ]; [ 1; 2 ] ]
           ~score:(cut_score g) ()))

let test_fixed_validation () =
  let g = chain 4 in
  Alcotest.check_raises "bad cluster"
    (Invalid_argument "Partition.run: fixed cluster out of range") (fun () ->
      ignore
        (Partition.run ~n_clusters:2 ~ddg:g ~fixed:[ (0, 7) ]
           ~score:(cut_score g) ()))

let test_empty_graph () =
  let g = Ddg.Builder.build (Ddg.Builder.create ()) in
  let r = Partition.run ~n_clusters:4 ~ddg:g ~score:(fun _ -> 0.0) () in
  Alcotest.(check int) "empty" 0 (Array.length r.Partition.assignment)

let prop_random_valid =
  let gen =
    QCheck.make
      (QCheck.Gen.map
         (fun seed ->
           let rng = Rng.create seed in
           let n = 1 + Rng.int rng 25 in
           let b = Ddg.Builder.create () in
           for _ = 1 to n do
             ignore (Ddg.Builder.add_instr b add)
           done;
           for dst = 1 to n - 1 do
             if Rng.chance rng 0.7 then
               Ddg.Builder.add_edge b (Rng.int rng dst) dst
           done;
           let g = Ddg.Builder.build b in
           let fixed = if n > 2 then [ (0, 0); (n - 1, 1) ] else [] in
           (g, fixed))
         QCheck.Gen.int)
  in
  QCheck.Test.make ~name:"random graphs partition validly" ~count:60 gen
    (fun (g, fixed) ->
      let r =
        Partition.run ~n_clusters:3 ~ddg:g ~fixed ~score:(cut_score g) ()
      in
      Array.for_all (fun c -> c >= 0 && c < 3) r.Partition.assignment
      && List.for_all (fun (i, c) -> r.Partition.assignment.(i) = c) fixed)

let test_initial_even () =
  let g = chain 7 in
  let a = Partition.initial_even ~n_clusters:3 g in
  Array.iter (fun c -> if c < 0 || c >= 3 then Alcotest.fail "range") a

let suite =
  [
    Alcotest.test_case "respects fixed nodes" `Quick test_respects_fixed;
    Alcotest.test_case "assignment in range" `Quick test_range;
    Alcotest.test_case "min cut on a chain" `Quick test_min_cut_on_chain;
    Alcotest.test_case "balance objective" `Quick test_balance_objective;
    Alcotest.test_case "groups stay together" `Quick test_groups_stay_together;
    Alcotest.test_case "group overlap rejected" `Quick
      test_group_overlap_rejected;
    Alcotest.test_case "fixed validation" `Quick test_fixed_validation;
    Alcotest.test_case "empty graph" `Quick test_empty_graph;
    Alcotest.test_case "initial_even" `Quick test_initial_even;
    QCheck_alcotest.to_alcotest prop_random_valid;
  ]
