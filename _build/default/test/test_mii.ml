(* resMII / recMII and the Table 2 classification. *)

open Hcv_ir
open Hcv_machine
open Hcv_sched

let machine = Presets.machine_4c ~buses:1
let fadd = Opcode.make Opcode.Arith Opcode.Fp
let ld = Opcode.make Opcode.Memory Opcode.Fp

let loop_with ~fp_ops ~mem_ops ~rec_latency =
  let b = Ddg.Builder.create () in
  let first = Ddg.Builder.add_instr b fadd in
  if rec_latency > 0 then
    Ddg.Builder.add_edge b ~latency:rec_latency ~distance:1 first first;
  for _ = 2 to fp_ops do
    ignore (Ddg.Builder.add_instr b fadd)
  done;
  for _ = 1 to mem_ops do
    ignore (Ddg.Builder.add_instr b ld)
  done;
  Ddg.Builder.build b

let test_res_mii () =
  (* 9 FP ops over 4 FP units: ceil(9/4) = 3. *)
  let g = loop_with ~fp_ops:9 ~mem_ops:2 ~rec_latency:0 in
  Alcotest.(check int) "resMII" 3 (Mii.res_mii machine g);
  (* 5 mem ops over 4 ports: 2 > fp bound when fp is low. *)
  let g2 = loop_with ~fp_ops:1 ~mem_ops:5 ~rec_latency:0 in
  Alcotest.(check int) "mem-bound" 2 (Mii.res_mii machine g2)

let test_rec_mii () =
  let g = loop_with ~fp_ops:2 ~mem_ops:0 ~rec_latency:7 in
  Alcotest.(check int) "recMII" 7 (Mii.rec_mii g);
  Alcotest.(check int) "mii = max" 7 (Mii.mii machine g)

let test_res_mii_cluster () =
  let g = loop_with ~fp_ops:3 ~mem_ops:2 ~rec_latency:0 in
  let members = [ 0; 1; 2; 3; 4 ] in
  (* One cluster: 1 fp fu, 1 mem port -> max(3, 2) = 3. *)
  Alcotest.(check int) "cluster bound" 3
    (Mii.res_mii_cluster Cluster.paper g members);
  (* A cluster with no FP units cannot host FP ops. *)
  let intonly =
    Cluster.make ~int_fus:1 ~fp_fus:0 ~mem_ports:1 ~registers:8 ()
  in
  Alcotest.(check int) "impossible" max_int
    (Mii.res_mii_cluster intonly g members)

let test_classification () =
  let check_class name expected g =
    Alcotest.(check string) name expected
      (Mii.class_to_string (Mii.classify machine g))
  in
  (* resMII 3, recMII 0. *)
  check_class "resource" "resource" (loop_with ~fp_ops:9 ~mem_ops:0 ~rec_latency:0);
  (* resMII 3, recMII 3: borderline (3 < 1.3*3). *)
  check_class "borderline" "borderline"
    (loop_with ~fp_ops:9 ~mem_ops:0 ~rec_latency:3);
  (* recMII 4 >= 1.3 * resMII 3?  1.3*3 = 3.9 <= 4: recurrence. *)
  check_class "recurrence" "recurrence"
    (loop_with ~fp_ops:9 ~mem_ops:0 ~rec_latency:4)

let test_boundary_exactness () =
  (* recMII = 13, resMII = 10: 13 = 1.3 * 10 exactly -> recurrence
     class (the paper's ">= 1.3 resMII" bucket), checked with integer
     arithmetic. *)
  let g = loop_with ~fp_ops:39 ~mem_ops:0 ~rec_latency:13 in
  Alcotest.(check int) "resMII 10" 10 (Mii.res_mii machine g);
  Alcotest.(check string) "exact 1.3 boundary" "recurrence"
    (Mii.class_to_string (Mii.classify machine g))

let test_missing_resource () =
  let no_fp =
    Machine.make
      ~clusters:[| Cluster.make ~int_fus:1 ~fp_fus:0 ~mem_ports:1 ~registers:8 () |]
      ~icn:(Icn.make ~buses:1 ())
      ()
  in
  let g = loop_with ~fp_ops:2 ~mem_ops:0 ~rec_latency:0 in
  Alcotest.check_raises "no fp anywhere"
    (Invalid_argument "Mii.res_mii: no fp-fu in the machine") (fun () ->
      ignore (Mii.res_mii no_fp g))

let suite =
  [
    Alcotest.test_case "resMII" `Quick test_res_mii;
    Alcotest.test_case "recMII" `Quick test_rec_mii;
    Alcotest.test_case "per-cluster resMII" `Quick test_res_mii_cluster;
    Alcotest.test_case "Table 2 classification" `Quick test_classification;
    Alcotest.test_case "exact 1.3 boundary" `Quick test_boundary_exactness;
    Alcotest.test_case "missing resource kind" `Quick test_missing_resource;
  ]
