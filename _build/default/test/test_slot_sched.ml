(* The slot scheduler: every produced schedule passes full validation;
   failures are reported, not silently wrong. *)

open Hcv_support
open Hcv_ir
open Hcv_machine
open Hcv_sched

let machine = Presets.machine_4c ~buses:1

let random_loop seed =
  let rng = Rng.create seed in
  let ops =
    [
      Opcode.make Opcode.Arith Opcode.Fp;
      Opcode.make Opcode.Mult Opcode.Fp;
      Opcode.make Opcode.Arith Opcode.Int;
      Opcode.make Opcode.Memory Opcode.Fp;
    ]
  in
  let n = 4 + Rng.int rng 16 in
  let b = Ddg.Builder.create () in
  for _ = 1 to n do
    ignore (Ddg.Builder.add_instr b (Rng.pick rng ops))
  done;
  for dst = 1 to n - 1 do
    if Rng.chance rng 0.8 then Ddg.Builder.add_edge b (Rng.int rng dst) dst;
    if Rng.chance rng 0.15 then
      (* A loop-carried edge (may create a recurrence). *)
      Ddg.Builder.add_edge b ~distance:(1 + Rng.int rng 2) dst (Rng.int rng dst)
  done;
  Loop.make ~name:(Printf.sprintf "rand%d" seed) (Ddg.Builder.build b)

let try_schedule loop ii =
  let clocking = Clocking.homogeneous ~n_clusters:4 ~ii ~cycle_time:Q.one in
  let assignment = Partition.initial_even ~n_clusters:4 loop.Loop.ddg in
  Slot_sched.run ~machine ~clocking ~loop ~assignment ()

let prop_schedules_validate =
  QCheck.Test.make ~name:"produced schedules validate" ~count:60
    (QCheck.make QCheck.Gen.int) (fun seed ->
      let loop = random_loop seed in
      let mii = Mii.mii machine loop.Loop.ddg in
      (* Try a few IIs from the MII up; any success must validate. *)
      let rec go ii tries =
        if tries = 0 then true
        else
          match try_schedule loop ii with
          | Ok sched -> Schedule.validate sched = Ok ()
          | Error _ -> go (ii + 1) (tries - 1)
      in
      go mii 12)

let test_positive_cycle_detected () =
  (* A recurrence whose latency exceeds II * distance at this clocking. *)
  let b = Ddg.Builder.create () in
  let a = Ddg.Builder.add_instr b (Opcode.make Opcode.Mult Opcode.Fp) in
  let c = Ddg.Builder.add_instr b (Opcode.make Opcode.Mult Opcode.Fp) in
  Ddg.Builder.add_edge b a c;
  Ddg.Builder.add_edge b ~distance:1 c a;
  let loop = Loop.make ~name:"rec" (Ddg.Builder.build b) in
  (* recMII = 12; try II = 2. *)
  match try_schedule loop 2 with
  | Error Slot_sched.Positive_cycle -> ()
  | Error f -> Alcotest.failf "wrong failure: %s" (Slot_sched.failure_to_string f)
  | Ok _ -> Alcotest.fail "expected Positive_cycle"

let test_impossible_fu () =
  (* Assign an FP op to a cluster... all paper clusters have FP units;
     build an int-only cluster machine instead. *)
  let m2 =
    Machine.make
      ~clusters:
        [|
          Cluster.make ~int_fus:1 ~fp_fus:1 ~mem_ports:1 ~registers:16 ();
          Cluster.make ~int_fus:1 ~fp_fus:0 ~mem_ports:1 ~registers:16 ();
        |]
      ~icn:(Icn.make ~buses:1 ())
      ()
  in
  let b = Ddg.Builder.create () in
  let _ = Ddg.Builder.add_instr b (Opcode.make Opcode.Arith Opcode.Fp) in
  let loop = Loop.make ~name:"fp" (Ddg.Builder.build b) in
  let clocking = Clocking.homogeneous ~n_clusters:2 ~ii:2 ~cycle_time:Q.one in
  (* Force the FP op onto the FP-less cluster. *)
  match Slot_sched.run ~machine:m2 ~clocking ~loop ~assignment:[| 1 |] () with
  | Error Slot_sched.Budget_exhausted -> ()
  | Error f -> Alcotest.failf "wrong failure: %s" (Slot_sched.failure_to_string f)
  | Ok _ -> Alcotest.fail "cannot schedule FP on an int-only cluster"

let test_deterministic () =
  let loop = random_loop 77 in
  let mii = Mii.mii machine loop.Loop.ddg in
  match (try_schedule loop (mii + 1), try_schedule loop (mii + 1)) with
  | Ok a, Ok b ->
    Alcotest.(check bool) "same placements" true
      (a.Schedule.placements = b.Schedule.placements)
  | _, _ -> ()

let test_cross_cluster_chain () =
  (* A chain forced across two clusters needs transfers; the scheduler
     must produce them. *)
  let b = Ddg.Builder.create () in
  let x = Ddg.Builder.add_instr b (Opcode.make Opcode.Arith Opcode.Fp) in
  let y = Ddg.Builder.add_instr b (Opcode.make Opcode.Arith Opcode.Fp) in
  Ddg.Builder.add_edge b x y;
  let loop = Loop.make ~name:"xy" (Ddg.Builder.build b) in
  let clocking = Clocking.homogeneous ~n_clusters:4 ~ii:4 ~cycle_time:Q.one in
  match Slot_sched.run ~machine ~clocking ~loop ~assignment:[| 0; 1 |] () with
  | Ok sched ->
    Alcotest.(check int) "one transfer" 1 (Schedule.n_comms sched);
    Alcotest.(check bool) "validates" true (Schedule.validate sched = Ok ())
  | Error f -> Alcotest.failf "failed: %s" (Slot_sched.failure_to_string f)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_schedules_validate;
    Alcotest.test_case "positive cycle detected" `Quick
      test_positive_cycle_detected;
    Alcotest.test_case "impossible FU assignment" `Quick test_impossible_fu;
    Alcotest.test_case "determinism" `Quick test_deterministic;
    Alcotest.test_case "cross-cluster chain" `Quick test_cross_cluster_chain;
  ]
