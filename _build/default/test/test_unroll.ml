(* Loop unrolling. *)

open Hcv_support
open Hcv_ir
open Hcv_machine
open Hcv_sched

let machine = Presets.machine_4c ~buses:1

let test_structure () =
  let loop = Builders.dotprod ~trip:100 () in
  let n = Ddg.n_instrs loop.Loop.ddg in
  let u = Unroll.loop ~factor:3 loop in
  Alcotest.(check int) "3x instructions" (3 * n) (Ddg.n_instrs u.Loop.ddg);
  Alcotest.(check int) "3x edges"
    (3 * Ddg.n_edges loop.Loop.ddg)
    (Ddg.n_edges u.Loop.ddg);
  Alcotest.(check int) "trip divided" 34 u.Loop.trip;
  Alcotest.(check string) "name suffix" "dotprod__x3" u.Loop.name

let test_factor_one_identity () =
  let loop = Builders.recurrence_loop () in
  let u = Unroll.loop ~factor:1 loop in
  Alcotest.(check string) "same loop" loop.Loop.name u.Loop.name

let test_distance_remapping () =
  (* Self edge (s, s, dist 1) unrolled by 2: copy0 <- copy1 at distance
     1, copy1 <- copy0 at distance 0. *)
  let b = Ddg.Builder.create () in
  let s = Ddg.Builder.add_instr b ~name:"s" (Opcode.make Opcode.Arith Opcode.Fp) in
  Ddg.Builder.add_edge b ~distance:1 s s;
  let g = Unroll.ddg ~factor:2 (Ddg.Builder.build b) in
  let edges = List.sort compare (Ddg.edges g) in
  match edges with
  | [ e1; e2 ] ->
    (* copy0 -> copy1, distance 0. *)
    Alcotest.(check (pair int int)) "forward" (0, 1) (e1.Edge.src, e1.Edge.dst);
    Alcotest.(check int) "dist 0" 0 e1.Edge.distance;
    (* copy1 -> copy0, distance 1. *)
    Alcotest.(check (pair int int)) "wrap" (1, 0) (e2.Edge.src, e2.Edge.dst);
    Alcotest.(check int) "dist 1" 1 e2.Edge.distance
  | es -> Alcotest.failf "expected 2 edges, got %d" (List.length es)

let test_recmii_scales () =
  (* Unrolling multiplies the recurrence MII (the §5.3 argument). *)
  let loop = Builders.recurrence_loop () in
  let base = Recurrence.rec_mii loop.Loop.ddg in
  let u = Unroll.ddg ~factor:2 loop.Loop.ddg in
  Alcotest.(check int) "recMII doubles" (2 * base) (Recurrence.rec_mii u)

let test_unrolled_schedules () =
  (* The unrolled loop still schedules and validates. *)
  let loop = Unroll.loop ~factor:2 (Builders.dotprod ()) in
  match Homo.schedule ~machine ~cycle_time:Q.one ~loop () with
  | Ok (sched, _) ->
    Alcotest.(check bool) "validates" true (Schedule.validate sched = Ok ())
  | Error msg -> Alcotest.failf "failed: %s" msg

let test_copy_of () =
  Alcotest.(check (pair int int)) "copy_of" (2, 1)
    (Unroll.copy_of ~factor:3 ~n_orig:4 9)

let test_semantics_preserved () =
  (* Per-original-iteration execution time should not degrade much:
     unrolled exec of trip/k iterations covers the same work. *)
  let loop = Builders.wide_loop ~trip:120 ~width:6 () in
  let u = Unroll.loop ~factor:2 loop in
  match
    ( Homo.schedule ~machine ~cycle_time:Q.one ~loop (),
      Homo.schedule ~machine ~cycle_time:Q.one ~loop:u () )
  with
  | Ok (s1, _), Ok (s2, _) ->
    let t1 = Schedule.exec_time_ns s1 ~trip:loop.Loop.trip in
    let t2 = Schedule.exec_time_ns s2 ~trip:u.Loop.trip in
    Alcotest.(check bool)
      (Printf.sprintf "within 2x (%.0f vs %.0f)" t1 t2)
      true
      (t2 < 2.0 *. t1)
  | Error m, _ | _, Error m -> Alcotest.failf "failed: %s" m

let suite =
  [
    Alcotest.test_case "structure" `Quick test_structure;
    Alcotest.test_case "factor 1 is identity" `Quick test_factor_one_identity;
    Alcotest.test_case "distance remapping" `Quick test_distance_remapping;
    Alcotest.test_case "recMII scales" `Quick test_recmii_scales;
    Alcotest.test_case "unrolled loops schedule" `Quick test_unrolled_schedules;
    Alcotest.test_case "copy_of" `Quick test_copy_of;
    Alcotest.test_case "semantics preserved" `Quick test_semantics_preserved;
  ]
