(* Deterministic PRNG. *)

open Hcv_support

let test_determinism () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next a) (Rng.next b)
  done

let test_different_seeds () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different streams" true (Rng.next a <> Rng.next b)

let test_split_independent () =
  let a = Rng.create 5 in
  let c = Rng.split a in
  (* The split stream differs from the parent's continuation. *)
  Alcotest.(check bool) "split differs" true (Rng.next c <> Rng.next a)

let test_int_bounds () =
  let r = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of range: %d" v
  done;
  Alcotest.check_raises "non-positive bound"
    (Invalid_argument "Rng.int: non-positive bound") (fun () ->
      ignore (Rng.int r 0))

let test_int_in_bounds () =
  let r = Rng.create 4 in
  for _ = 1 to 1000 do
    let v = Rng.int_in r (-5) 5 in
    if v < -5 || v > 5 then Alcotest.failf "out of range: %d" v
  done

let test_float_bounds () =
  let r = Rng.create 9 in
  for _ = 1 to 1000 do
    let v = Rng.float r 2.5 in
    if v < 0.0 || v >= 2.5 then Alcotest.failf "out of range: %g" v
  done

let test_pick () =
  let r = Rng.create 11 in
  for _ = 1 to 100 do
    let v = Rng.pick r [ 1; 2; 3 ] in
    if v < 1 || v > 3 then Alcotest.failf "bad pick %d" v
  done;
  Alcotest.check_raises "empty list"
    (Invalid_argument "Rng.pick: empty list") (fun () ->
      ignore (Rng.pick r []))

let test_pick_weighted () =
  let r = Rng.create 13 in
  (* Zero-weight elements are never picked. *)
  for _ = 1 to 200 do
    let v = Rng.pick_weighted r [ ("a", 1.0); ("b", 0.0) ] in
    Alcotest.(check string) "only positive weight" "a" v
  done

let test_shuffle_permutation () =
  let r = Rng.create 17 in
  let l = Listx.range 0 50 in
  let s = Rng.shuffle r l in
  Alcotest.(check (list int)) "same multiset" l (List.sort compare s)

let test_chance_extremes () =
  let r = Rng.create 19 in
  for _ = 1 to 50 do
    Alcotest.(check bool) "p=1 always" true (Rng.chance r 1.0);
    Alcotest.(check bool) "p=0 never" false (Rng.chance r 0.0)
  done

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_different_seeds;
    Alcotest.test_case "split" `Quick test_split_independent;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int_in bounds" `Quick test_int_in_bounds;
    Alcotest.test_case "float bounds" `Quick test_float_bounds;
    Alcotest.test_case "pick" `Quick test_pick;
    Alcotest.test_case "pick_weighted" `Quick test_pick_weighted;
    Alcotest.test_case "shuffle is a permutation" `Quick
      test_shuffle_permutation;
    Alcotest.test_case "chance extremes" `Quick test_chance_extremes;
  ]
