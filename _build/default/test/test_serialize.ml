(* Schedule serialisation round-trips. *)

open Hcv_support
open Hcv_sched

let machine = Builders.machine_1bus

let sched_of loop =
  match Homo.schedule ~machine ~cycle_time:Q.one ~loop () with
  | Ok (s, _) -> s
  | Error msg -> Alcotest.failf "scheduling failed: %s" msg

let test_roundtrip () =
  List.iter
    (fun loop ->
      let sched = sched_of loop in
      let text = Serialize.to_string sched in
      match Serialize.of_string ~machine ~loop text with
      | Error msg -> Alcotest.failf "%s: %s" loop.Hcv_ir.Loop.name msg
      | Ok sched2 ->
        Alcotest.(check bool) "same placements" true
          (sched.Schedule.placements = sched2.Schedule.placements);
        Alcotest.(check bool) "same transfers" true
          (sched.Schedule.transfers = sched2.Schedule.transfers);
        Alcotest.(check bool) "same clocking" true
          (Clocking.equal sched.Schedule.clocking sched2.Schedule.clocking))
    [ Builders.dotprod (); Builders.recurrence_loop (); Builders.wide_loop () ]

let test_hetero_roundtrip () =
  (* A heterogeneous clocking survives the fractional cycle times. *)
  let loop = Builders.dotprod () in
  let pt ct = { Hcv_machine.Opconfig.cycle_time = ct; vdd = 1.0 } in
  let config =
    Hcv_machine.Opconfig.make ~machine
      ~cluster_points:[| pt (Q.make 9 10); pt (Q.make 27 20); pt (Q.make 27 20); pt (Q.make 27 20) |]
      ~icn_point:(pt (Q.make 9 10))
      ~cache_point:(pt (Q.make 9 10))
  in
  let it = Q.mul_int (Q.make 27 10) 2 in
  match Clocking.of_config ~config ~it with
  | Error _ -> Alcotest.fail "clocking failed"
  | Ok clocking -> (
    let assignment = Array.make (Hcv_ir.Ddg.n_instrs loop.Hcv_ir.Loop.ddg) 0 in
    match Slot_sched.run ~machine ~clocking ~loop ~assignment () with
    | Error f -> Alcotest.failf "failed: %s" (Slot_sched.failure_to_string f)
    | Ok sched -> (
      match Serialize.of_string ~machine ~loop (Serialize.to_string sched) with
      | Error msg -> Alcotest.failf "roundtrip: %s" msg
      | Ok sched2 ->
        Alcotest.(check bool) "clocking preserved" true
          (Clocking.equal sched.Schedule.clocking sched2.Schedule.clocking)))

let test_rejects_garbage () =
  let loop = Builders.dotprod () in
  (match Serialize.of_string ~machine ~loop "bogus directive\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected an error");
  (match Serialize.of_string ~machine ~loop "it 3\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing domains must fail");
  (* A tampered placement that breaks a dependence is rejected by
     validation. *)
  let sched = sched_of loop in
  let text = Serialize.to_string sched in
  let tampered =
    String.split_on_char '\n' text
    |> List.map (fun l ->
           if String.length l > 9 && String.sub l 2 7 = "place s" then
             "  place s 0 0"
           else l)
    |> String.concat "\n"
  in
  match Serialize.of_string ~machine ~loop tampered with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "tampered schedule must fail validation"

let suite =
  [
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "heterogeneous roundtrip" `Quick test_hetero_roundtrip;
    Alcotest.test_case "rejects garbage" `Quick test_rejects_garbage;
  ]
