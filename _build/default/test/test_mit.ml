(* Minimum initiation time, including the paper's Figure 4 example. *)

open Hcv_support
open Hcv_ir
open Hcv_machine
open Hcv_core

let q = Alcotest.testable Q.pp Q.equal
let iadd = Opcode.make Opcode.Arith Opcode.Int

(* Paper Figure 4: five 1-cycle instructions, a 3-cycle recurrence
   {A,B,C}; two clusters at 1 ns and 5/3 ns (the paper prints 1.67).
   recMIT = 3 cycles x 1 ns = 3 ns; resMIT = 10/3 ns (3 slots in C1 + 2
   in C2); MIT = 10/3 ns. *)
let fig4_config () =
  let int_cluster =
    Cluster.make ~name:"c" ~int_fus:1 ~fp_fus:0 ~mem_ports:0 ~registers:16 ()
  in
  let machine =
    Machine.make ~name:"fig4"
      ~clusters:[| int_cluster; int_cluster |]
      ~icn:(Icn.make ~buses:1 ())
      ()
  in
  let pt ct = { Opconfig.cycle_time = ct; vdd = 1.0 } in
  Opconfig.make ~machine
    ~cluster_points:[| pt Q.one; pt (Q.make 5 3) |]
    ~icn_point:(pt Q.one) ~cache_point:(pt Q.one)

let fig4_ddg () =
  let b = Ddg.Builder.create () in
  let a = Ddg.Builder.add_instr b ~name:"A" iadd in
  let b1 = Ddg.Builder.add_instr b ~name:"B" iadd in
  let c = Ddg.Builder.add_instr b ~name:"C" iadd in
  let d = Ddg.Builder.add_instr b ~name:"D" iadd in
  let _e = Ddg.Builder.add_instr b ~name:"E" iadd in
  Ddg.Builder.add_edge b a b1;
  Ddg.Builder.add_edge b b1 c;
  Ddg.Builder.add_edge b ~distance:1 c a;
  Ddg.Builder.add_edge b a d;
  Ddg.Builder.build b

let test_fig4 () =
  let config = fig4_config () in
  let ddg = fig4_ddg () in
  Alcotest.(check q) "recMIT = 3 ns" (Q.of_int 3) (Mit.rec_mit ~config ddg);
  Alcotest.(check q) "resMIT = 10/3 ns" (Q.make 10 3) (Mit.res_mit ~config ddg);
  Alcotest.(check q) "MIT = 10/3 ns" (Q.make 10 3) (Mit.mit ~config ddg)

let test_capacity_table () =
  (* The paper's Figure 4 capacity table: IT -> slots. *)
  let config = fig4_config () in
  let cap it = Mit.capacity_at ~config ~it Opcode.Int_fu in
  Alcotest.(check int) "IT=1 -> 1 slot" 1 (cap Q.one);
  Alcotest.(check int) "IT=5/3 -> 2 slots" 2 (cap (Q.make 5 3));
  Alcotest.(check int) "IT=2 -> 3 slots" 3 (cap (Q.of_int 2));
  Alcotest.(check int) "IT=3 -> 4 slots" 4 (cap (Q.of_int 3));
  Alcotest.(check int) "IT=10/3 -> 5 slots" 5 (cap (Q.make 10 3))

let test_candidates () =
  let config = fig4_config () in
  let cands = Mit.candidates ~config ~upto:(Q.make 7 2) in
  (* Multiples of 1: 1,2,3; of 5/3: 5/3, 10/3. *)
  Alcotest.(check int) "5 candidates" 5 (List.length cands);
  Alcotest.(check bool) "sorted" true
    (List.for_all2 Q.( <= ) (Listx.take 4 cands) (List.tl cands))

let test_next_candidate () =
  let config = fig4_config () in
  Alcotest.(check q) "after 1" (Q.make 5 3)
    (Mit.next_candidate ~config ~after:Q.one);
  Alcotest.(check q) "after 5/3" (Q.of_int 2)
    (Mit.next_candidate ~config ~after:(Q.make 5 3));
  Alcotest.(check q) "after 0" Q.one (Mit.next_candidate ~config ~after:Q.zero)

let test_paper_machine_mit () =
  (* On the homogeneous reference, MIT = MII * 1 ns. *)
  let machine = Presets.machine_4c ~buses:1 in
  let config = Presets.reference_config machine in
  let loop = Builders.recurrence_loop () in
  let mii = Hcv_sched.Mii.mii machine loop.Loop.ddg in
  Alcotest.(check q) "MIT = MII ns" (Q.of_int mii)
    (Mit.mit ~config loop.Loop.ddg)

let suite =
  [
    Alcotest.test_case "paper figure 4" `Quick test_fig4;
    Alcotest.test_case "capacity table" `Quick test_capacity_table;
    Alcotest.test_case "candidate grid" `Quick test_candidates;
    Alcotest.test_case "next candidate" `Quick test_next_candidate;
    Alcotest.test_case "homogeneous MIT = MII" `Quick test_paper_machine_mit;
  ]
