(* The shared multi-clock timing rules. *)

open Hcv_support
open Hcv_ir
open Hcv_sched

let q = Alcotest.testable Q.pp Q.equal

let fadd = Instr.make ~id:0 ~name:"a" ~op:(Opcode.make Opcode.Arith Opcode.Fp)
let ld = Instr.make ~id:1 ~name:"l" ~op:(Opcode.make Opcode.Memory Opcode.Fp)

(* Heterogeneous clocking: cluster 0 at 1 ns, cluster 1 at 3/2 ns, ICN
   and cache at 1 ns, IT = 6. *)
let clocking =
  {
    Clocking.it = Q.of_int 6;
    cluster_ii = [| 6; 4 |];
    cluster_ct = [| Q.one; Q.make 3 2 |];
    icn_ii = 6;
    icn_ct = Q.one;
    cache_ii = 6;
    cache_ct = Q.one;
  }

let test_start_and_def () =
  Alcotest.(check q) "start c1 cycle 2" (Q.of_int 3)
    (Timing.start_time clocking ~cluster:1 ~cycle:2);
  (* fp add latency 3 on the 3/2 ns cluster: def at 3 + 4.5. *)
  Alcotest.(check q) "def" (Q.make 15 2)
    (Timing.def_time clocking ~cluster:1 ~cycle:2 fadd)

let test_memory_effective_ct () =
  (* Memory ops advance at max(cluster, cache) cycle time.  Cache at
     1 ns < cluster at 3/2 ns: the cluster dominates. *)
  Alcotest.(check q) "mem eff ct" (Q.make 3 2)
    (Timing.eff_ct clocking ~cluster:1 ld);
  (* A slower cache would dominate instead. *)
  let slow_cache = { clocking with Clocking.cache_ct = Q.of_int 2 } in
  Alcotest.(check q) "slow cache dominates" (Q.of_int 2)
    (Timing.eff_ct slow_cache ~cluster:1 ld);
  (* Non-memory ops never see the cache clock. *)
  Alcotest.(check q) "fp unaffected" (Q.make 3 2)
    (Timing.eff_ct slow_cache ~cluster:1 fadd)

let test_bus_windows () =
  (* Value defined at t=3: one sync cycle, so the earliest bus cycle
     starts at ceil((3+1)/1) = 4. *)
  Alcotest.(check int) "earliest bus" 4
    (Timing.earliest_bus_cycle clocking ~def_time:(Q.of_int 3));
  (* Need by t=9 with buslat 1: latest departure at floor(9/1) - 1. *)
  Alcotest.(check int) "latest bus" 8
    (Timing.latest_bus_cycle clocking ~buslat:1 ~need:(Q.of_int 9));
  Alcotest.(check q) "arrival" (Q.of_int 6)
    (Timing.bus_arrival clocking ~buslat:1 ~bus_cycle:5)

let test_earliest_cycle () =
  Alcotest.(check int) "exact boundary" 2
    (Timing.earliest_cycle clocking ~cluster:1 ~ready:(Q.of_int 3));
  Alcotest.(check int) "round up" 3
    (Timing.earliest_cycle clocking ~cluster:1 ~ready:(Q.make 7 2));
  Alcotest.(check int) "negative clamps" 0
    (Timing.earliest_cycle clocking ~cluster:0 ~ready:(Q.of_int (-4)))

let test_dep_ready () =
  (* distance 2 rewinds two ITs. *)
  Alcotest.(check q) "same-cluster ready" (Q.of_int (-5))
    (Timing.dep_ready_same clocking ~it:(Q.of_int 6) ~def_time:(Q.of_int 7)
       ~distance:2)

let suite =
  [
    Alcotest.test_case "start/def times" `Quick test_start_and_def;
    Alcotest.test_case "memory effective cycle time" `Quick
      test_memory_effective_ct;
    Alcotest.test_case "bus windows" `Quick test_bus_windows;
    Alcotest.test_case "earliest cycle" `Quick test_earliest_cycle;
    Alcotest.test_case "dependence rewind" `Quick test_dep_ready;
  ]
