(** Compile-time estimation of execution time and ED² of a candidate
    heterogeneous configuration from the reference profile (paper §3.2,
    §3.3) — no scheduling involved.

    The estimated IT of a loop is the smallest initiation time that
    simultaneously (1) reaches the configuration's MIT, (2) provides
    enough bus slots for the communications of the homogeneous schedule,
    (3) provides enough register-lifetime slots for the homogeneous
    schedule's lifetimes, and (4) admits a synchronisable (frequency,
    II) pair for every domain under the machine's frequency grid.

    The iteration length is approximated by assuming half of the
    iteration executes on fast clusters and half on slow ones: the
    homogeneous iteration length in cycles times the arithmetic mean of
    the cluster cycle times. *)

open Hcv_support
open Hcv_machine
open Hcv_energy

type loop_estimate = {
  it : Q.t;
  it_length_ns : float;
  exec_ns : float;  (** one invocation *)
}

val loop_it : config:Opconfig.t -> Profile.loop_profile -> Q.t
val loop_estimate : config:Opconfig.t -> Profile.loop_profile -> loop_estimate

val predict_activity : config:Opconfig.t -> Profile.t -> Activity.t
(** Whole-run activity under the candidate configuration: per-loop
    estimated execution times, reference event counts (the heterogeneous
    schedule is assumed to keep the homogeneous instruction
    distribution, per §3.1). *)

val predict_ed2 : ctx:Model.ctx -> config:Opconfig.t -> Profile.t -> float
