lib/core/estimate.ml: Activity Array Clocking Cluster Comp Hcv_energy Hcv_ir Hcv_machine Hcv_sched Hcv_support Icn List Listx Machine Mit Model Opconfig Profile Q
