lib/core/select.ml: Activity Alpha_power Array Estimate Format Hcv_energy Hcv_machine Hcv_support List Machine Model Opconfig Presets Profile Q Scale Units
