lib/core/pipeline.mli: Activity Format Hcv_energy Hcv_ir Hcv_machine Hcv_sched Hsched Loop Machine Model Opconfig Params Profile Schedule Select
