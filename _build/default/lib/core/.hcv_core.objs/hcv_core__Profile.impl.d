lib/core/profile.ml: Activity Array Hcv_energy Hcv_ir Hcv_machine Hcv_sched Hcv_support Homo List Listx Loop Machine Opconfig Presets Q Schedule
