lib/core/estimate.mli: Activity Hcv_energy Hcv_machine Hcv_support Model Opconfig Profile Q
