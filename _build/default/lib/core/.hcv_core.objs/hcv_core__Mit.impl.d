lib/core/mit.ml: Array Cluster Comp Ddg Hcv_ir Hcv_machine Hcv_sched Hcv_support List Machine Mii Opcode Opconfig Printf Q
