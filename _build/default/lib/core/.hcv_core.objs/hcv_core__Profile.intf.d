lib/core/profile.mli: Activity Hcv_energy Hcv_ir Hcv_machine Hcv_sched Hcv_support Loop Machine Opconfig Q Schedule
