lib/core/select.mli: Format Hcv_energy Hcv_machine Machine Model Opconfig Profile
