lib/core/mit.mli: Ddg Hcv_ir Hcv_machine Hcv_support Opcode Opconfig Q
