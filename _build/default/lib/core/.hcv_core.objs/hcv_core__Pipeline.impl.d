lib/core/pipeline.ml: Activity Comp Estimate Format Hcv_energy Hcv_ir Hcv_machine Hcv_sched Hcv_support Hsched List Logs Machine Model Opconfig Params Printf Profile Schedule Select Units
