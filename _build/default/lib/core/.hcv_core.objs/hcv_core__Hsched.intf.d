lib/core/hsched.mli: Clocking Ddg Hcv_energy Hcv_ir Hcv_machine Hcv_sched Hcv_support Instr Loop Model Opconfig Q Schedule
