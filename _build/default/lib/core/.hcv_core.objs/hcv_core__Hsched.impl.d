lib/core/hsched.ml: Array Clocking Comp Format Hcv_energy Hcv_ir Hcv_machine Hcv_sched Hcv_support List Loop Machine Mii Mit Model Opconfig Partition Profile Pseudo Q Recurrence Slot_sched
