open Hcv_support

type t = { nodes : Instr.id list; ratio : Q.t; min_ii : int; n_edges : int }

let internal_edges ddg nodes =
  let in_set = Hashtbl.create (List.length nodes) in
  List.iter (fun v -> Hashtbl.replace in_set v ()) nodes;
  List.concat_map
    (fun v ->
      List.filter (fun (e : Edge.t) -> Hashtbl.mem in_set e.dst) (Ddg.succs ddg v))
    nodes

let find_all ddg =
  let comps = Scc.non_trivial ddg in
  let recs =
    List.map
      (fun nodes ->
        let ratio =
          match Cycle_ratio.exact_over ddg nodes with
          | Some r -> r
          | None -> assert false (* non-trivial SCC always has a cycle *)
        in
        {
          nodes;
          ratio;
          min_ii = Q.ceil ratio;
          n_edges = List.length (internal_edges ddg nodes);
        })
      comps
  in
  List.sort
    (fun a b ->
      match Q.compare b.ratio a.ratio with
      | 0 -> (
        match Stdlib.compare (List.length b.nodes) (List.length a.nodes) with
        | 0 -> Stdlib.compare a.nodes b.nodes
        | c -> c)
      | c -> c)
    recs

let rec_mii ddg =
  List.fold_left (fun acc r -> max acc r.min_ii) 0 (find_all ddg)

let member_map ddg recs =
  let map = Array.make (Ddg.n_instrs ddg) (-1) in
  List.iteri (fun idx r -> List.iter (fun v -> map.(v) <- idx) r.nodes) recs;
  map

let pp ppf t =
  Format.fprintf ppf "rec{nodes=[%s]; ratio=%a; min_ii=%d}"
    (String.concat "," (List.map string_of_int t.nodes))
    Q.pp t.ratio t.min_ii
