type kind = Flow | Anti | Output | Mem

type t = {
  src : Instr.id;
  dst : Instr.id;
  latency : int;
  distance : int;
  kind : kind;
}

let make ?(kind = Flow) ?(distance = 0) ~src ~dst ~latency () =
  if latency < 0 then invalid_arg "Edge.make: negative latency";
  if distance < 0 then invalid_arg "Edge.make: negative distance";
  { src; dst; latency; distance; kind }

let is_loop_carried t = t.distance > 0
let carries_value t = t.kind = Flow

let kind_to_string = function
  | Flow -> "flow"
  | Anti -> "anti"
  | Output -> "output"
  | Mem -> "mem"

let compare = Stdlib.compare

let pp ppf t =
  Format.fprintf ppf "%d -[%s,lat=%d,dist=%d]-> %d" t.src
    (kind_to_string t.kind) t.latency t.distance t.dst
