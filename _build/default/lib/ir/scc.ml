let of_ddg ddg =
  let n = Ddg.n_instrs ddg in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let next_index = ref 0 in
  let components = ref [] in
  (* Recursive Tarjan; loop DDGs are small (at most a few hundred
     nodes), so stack depth is not a concern. *)
  let rec strongconnect v =
    index.(v) <- !next_index;
    lowlink.(v) <- !next_index;
    incr next_index;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun (e : Edge.t) ->
        let w = e.dst in
        if index.(w) = -1 then begin
          strongconnect w;
          lowlink.(v) <- min lowlink.(v) lowlink.(w)
        end
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      (Ddg.succs ddg v);
    if lowlink.(v) = index.(v) then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
          stack := rest;
          on_stack.(w) <- false;
          if w = v then w :: acc else pop (w :: acc)
      in
      let comp = pop [] in
      components := List.sort Stdlib.compare comp :: !components
    end
  in
  for v = 0 to n - 1 do
    if index.(v) = -1 then strongconnect v
  done;
  !components

let has_self_edge ddg v =
  List.exists (fun (e : Edge.t) -> e.dst = v) (Ddg.succs ddg v)

let non_trivial ddg =
  List.filter
    (function
      | [] -> false
      | [ v ] -> has_self_edge ddg v
      | _ :: _ :: _ -> true)
    (of_ddg ddg)
