(** A software-pipelinable loop: a DDG plus dynamic information.

    [trip] is the average iteration count observed by profiling (the
    paper's "average number of iterations"); [weight] is the fraction of
    whole-program execution time this loop accounts for in the reference
    homogeneous run, used to aggregate per-loop results into
    per-benchmark results. *)

type t = { name : string; ddg : Ddg.t; trip : int; weight : float }

val make : ?trip:int -> ?weight:float -> name:string -> Ddg.t -> t
(** [trip] defaults to 100, [weight] to 1.0.
    @raise Invalid_argument if [trip < 1] or [weight <= 0]. *)

val n_instrs : t -> int

val mem_accesses_per_iter : t -> int
(** Number of memory-class instructions in the body. *)

val pp : Format.formatter -> t -> unit
