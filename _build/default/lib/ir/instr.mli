(** Instructions (DDG nodes). *)

type id = int
(** Dense index of the instruction within its loop's DDG, [0..n-1]. *)

type t = { id : id; name : string; op : Opcode.t }

val make : id:id -> name:string -> op:Opcode.t -> t
val latency : t -> int
val energy : t -> float
val fu : t -> Opcode.fu_kind
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
