(** Dependence edges of the data-dependence graph.

    An edge [(src, dst, latency, distance)] means: instruction [dst] of
    iteration [i + distance] may start no earlier than [latency] cycles
    after instruction [src] of iteration [i] starts (cycles of the
    cluster executing [src]).  [distance = 0] is an intra-iteration
    dependence; [distance >= 1] is loop-carried. *)

type kind =
  | Flow  (** true (read-after-write) register dependence *)
  | Anti
  | Output
  | Mem  (** memory-disambiguation dependence *)

type t = {
  src : Instr.id;
  dst : Instr.id;
  latency : int;
  distance : int;
  kind : kind;
}

val make :
  ?kind:kind -> ?distance:int -> src:Instr.id -> dst:Instr.id -> latency:int
  -> unit -> t
(** [kind] defaults to [Flow], [distance] to [0].
    @raise Invalid_argument on negative latency or distance. *)

val is_loop_carried : t -> bool

val carries_value : t -> bool
(** True for [Flow] edges: the edge transports a register value and so
    needs an inter-cluster copy when its endpoints live in different
    clusters, and it contributes a register lifetime. *)

val kind_to_string : kind -> string
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
