let palette =
  [| "#a6cee3"; "#b2df8a"; "#fb9a99"; "#fdbf6f"; "#cab2d6"; "#ffff99" |]

let of_ddg ?(name = "ddg") ?(cluster_of = fun _ -> None) ddg =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "digraph \"%s\" {\n" name);
  Buffer.add_string buf "  node [shape=box, fontname=\"monospace\"];\n";
  Array.iter
    (fun (ins : Instr.t) ->
      let color =
        match cluster_of ins.id with
        | None -> ""
        | Some c ->
          Printf.sprintf ", style=filled, fillcolor=\"%s\""
            palette.(c mod Array.length palette)
      in
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\\n%s\"%s];\n" ins.id ins.name
           (Opcode.to_string ins.op) color))
    (Ddg.instrs ddg);
  List.iter
    (fun (e : Edge.t) ->
      let style = if Edge.is_loop_carried e then ", style=dashed" else "" in
      Buffer.add_string buf
        (Printf.sprintf "  n%d -> n%d [label=\"%d/%d\"%s];\n" e.src e.dst
           e.latency e.distance style))
    (Ddg.edges ddg);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let of_loop (loop : Loop.t) = of_ddg ~name:loop.name loop.ddg
