type t = {
  instrs : Instr.t array;
  edges : Edge.t list;
  succs : Edge.t list array;
  preds : Edge.t list array;
}

let n_instrs t = Array.length t.instrs
let instr t i = t.instrs.(i)
let instrs t = t.instrs
let edges t = t.edges
let n_edges t = List.length t.edges
let succs t i = t.succs.(i)
let preds t i = t.preds.(i)

let find_instr t name =
  Array.fold_left
    (fun acc (ins : Instr.t) ->
      match acc with
      | Some _ -> acc
      | None -> if String.equal ins.name name then Some ins else None)
    None t.instrs

(* Kahn topological sort of the zero-distance subgraph.  Returns None if
   that subgraph has a cycle. *)
let topo_order_opt instrs succs =
  let n = Array.length instrs in
  let indeg = Array.make n 0 in
  Array.iter
    (List.iter (fun (e : Edge.t) ->
         if e.distance = 0 then indeg.(e.dst) <- indeg.(e.dst) + 1))
    succs;
  let queue = Queue.create () in
  Array.iteri (fun i d -> if d = 0 then Queue.add i queue) indeg;
  let order = ref [] in
  let count = ref 0 in
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    incr count;
    order := i :: !order;
    List.iter
      (fun (e : Edge.t) ->
        if e.distance = 0 then begin
          indeg.(e.dst) <- indeg.(e.dst) - 1;
          if indeg.(e.dst) = 0 then Queue.add e.dst queue
        end)
      succs.(i)
  done;
  if !count = n then Some (List.rev !order) else None

let of_instrs instrs edges =
  Array.iteri
    (fun i (ins : Instr.t) ->
      if ins.id <> i then invalid_arg "Ddg.of_instrs: id/index mismatch")
    instrs;
  let n = Array.length instrs in
  let succs = Array.make n [] and preds = Array.make n [] in
  List.iter
    (fun (e : Edge.t) ->
      if e.src < 0 || e.src >= n || e.dst < 0 || e.dst >= n then
        invalid_arg "Ddg.of_instrs: edge endpoint out of range";
      succs.(e.src) <- e :: succs.(e.src);
      preds.(e.dst) <- e :: preds.(e.dst))
    edges;
  let succs = Array.map List.rev succs and preds = Array.map List.rev preds in
  (match topo_order_opt instrs succs with
  | Some _ -> ()
  | None -> invalid_arg "Ddg.of_instrs: zero-distance dependence cycle");
  { instrs; edges; succs; preds }

module Builder = struct
  type t = {
    mutable rev_instrs : Instr.t list;
    mutable rev_edges : Edge.t list;
    mutable count : int;
  }

  let create () = { rev_instrs = []; rev_edges = []; count = 0 }

  let add_instr b ?name op =
    let id = b.count in
    let name = match name with Some n -> n | None -> Printf.sprintf "n%d" id in
    b.rev_instrs <- Instr.make ~id ~name ~op :: b.rev_instrs;
    b.count <- id + 1;
    id

  let add_edge b ?kind ?distance ?latency src dst =
    if src < 0 || src >= b.count || dst < 0 || dst >= b.count then
      invalid_arg "Ddg.Builder.add_edge: unknown endpoint";
    let latency =
      match latency with
      | Some l -> l
      | None ->
        let src_instr = List.nth b.rev_instrs (b.count - 1 - src) in
        Instr.latency src_instr
    in
    b.rev_edges <- Edge.make ?kind ?distance ~src ~dst ~latency () :: b.rev_edges

  let build b =
    of_instrs (Array.of_list (List.rev b.rev_instrs)) (List.rev b.rev_edges)
end

let fu_demand t =
  List.map
    (fun kind ->
      let count =
        Array.fold_left
          (fun acc ins -> if Instr.fu ins = kind then acc + 1 else acc)
          0 t.instrs
      in
      (kind, count))
    Opcode.all_fu_kinds

let topo_order t =
  match topo_order_opt t.instrs t.succs with
  | Some order -> order
  | None -> assert false (* validated at construction *)

let earliest_starts t =
  let n = n_instrs t in
  let start = Array.make n 0 in
  List.iter
    (fun i ->
      List.iter
        (fun (e : Edge.t) ->
          if e.distance = 0 then
            start.(e.dst) <- max start.(e.dst) (start.(i) + e.latency))
        t.succs.(i))
    (topo_order t);
  start

let heights t =
  let n = n_instrs t in
  let h = Array.make n 0 in
  Array.iteri (fun i ins -> h.(i) <- Instr.latency ins) t.instrs;
  List.iter
    (fun i ->
      List.iter
        (fun (e : Edge.t) ->
          if e.distance = 0 then h.(i) <- max h.(i) (e.latency + h.(e.dst)))
        t.succs.(i))
    (List.rev (topo_order t));
  h

let acyclic_critical_path t =
  if n_instrs t = 0 then 0
  else Array.fold_left max 0 (heights t)

let total_energy t =
  Array.fold_left (fun acc ins -> acc +. Instr.energy ins) 0.0 t.instrs

let pp ppf t =
  Format.fprintf ppf "@[<v>ddg (%d instrs, %d edges)" (n_instrs t) (n_edges t);
  Array.iter (fun ins -> Format.fprintf ppf "@,  %a" Instr.pp ins) t.instrs;
  List.iter (fun e -> Format.fprintf ppf "@,  %a" Edge.pp e) t.edges;
  Format.fprintf ppf "@]"
