(** Textual format for loops ([.loop] files).

    Line-oriented:

    {v
    # comment
    loop dotprod trip 256 weight 0.4
      node a ld.f
      node c mul.f
      edge a c                # latency defaults to src's latency
      edge c c dist 1 lat 6   # loop-carried, explicit latency
      edge a c kind mem
    end
    v}

    A file may contain several loops.  Node names are per-loop unique
    identifiers; [edge] refers to them.  [trip] and [weight] are
    optional (defaults as in {!Loop.make}). *)

type error = { line : int; msg : string }

val parse : string -> (Loop.t list, error) result
(** Parse from a string. *)

val parse_file : string -> (Loop.t list, error) result
(** Parse from a file; I/O failures are reported as [{line = 0; _}]. *)

val print : Loop.t -> string
(** Render a loop in the DSL syntax; [parse (print l)] round-trips. *)

val print_all : Loop.t list -> string

val pp_error : Format.formatter -> error -> unit
