(** Graphviz export of DDGs, for debugging and documentation. *)

val of_ddg : ?name:string -> ?cluster_of:(Instr.id -> int option) -> Ddg.t -> string
(** DOT source.  When [cluster_of] is given, nodes are coloured by the
    cluster they were assigned to (useful to visualise partitions). *)

val of_loop : Loop.t -> string
