(** Strongly connected components (Tarjan), over all dependence edges
    including loop-carried ones. *)

val of_ddg : Ddg.t -> Instr.id list list
(** Components in reverse topological order of the condensation; each
    component lists its members in ascending id order.  Singleton
    components without a self-edge are included. *)

val non_trivial : Ddg.t -> Instr.id list list
(** Only the components that contain a cycle: size [>= 2], or size 1
    with a self-edge.  These are the loop's recurrences' node sets. *)
