(** Recurrences of a loop: the non-trivial strongly connected components
    of its DDG, with their criticality metrics.

    A recurrence placed entirely in a cluster with initiation interval
    [II] (in that cluster's cycles) is schedulable iff its exact cycle
    ratio is [<= II]; [min_ii] is that bound rounded up to an integer
    number of cycles. *)

open Hcv_support

type t = {
  nodes : Instr.id list;  (** members, ascending id *)
  ratio : Q.t;  (** exact maximum cycle ratio (cycles per iteration) *)
  min_ii : int;  (** [ceil ratio]: minimum II hosting this recurrence *)
  n_edges : int;  (** edges internal to the component *)
}

val find_all : Ddg.t -> t list
(** All recurrences, sorted most critical first (descending [ratio],
    ties broken by more nodes first, then by first node id). *)

val rec_mii : Ddg.t -> int
(** Recurrence-constrained minimum initiation interval of the whole
    loop: max over recurrences of [min_ii]; [0] if the loop has no
    recurrence. *)

val member_map : Ddg.t -> t list -> int array
(** [member_map ddg recs] maps each instruction id to the index (in
    [recs]) of the recurrence containing it, or [-1]. *)

val pp : Format.formatter -> t -> unit
