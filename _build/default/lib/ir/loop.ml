type t = { name : string; ddg : Ddg.t; trip : int; weight : float }

let make ?(trip = 100) ?(weight = 1.0) ~name ddg =
  if trip < 1 then invalid_arg "Loop.make: trip < 1";
  if weight <= 0.0 then invalid_arg "Loop.make: non-positive weight";
  { name; ddg; trip; weight }

let n_instrs t = Ddg.n_instrs t.ddg

let mem_accesses_per_iter t =
  Array.fold_left
    (fun acc ins -> if Instr.fu ins = Opcode.Mem_port then acc + 1 else acc)
    0 (Ddg.instrs t.ddg)

let pp ppf t =
  Format.fprintf ppf "loop %s (trip=%d, weight=%.3f):@ %a" t.name t.trip
    t.weight Ddg.pp t.ddg
