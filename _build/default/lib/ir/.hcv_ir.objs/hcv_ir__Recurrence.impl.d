lib/ir/recurrence.ml: Array Cycle_ratio Ddg Edge Format Hashtbl Hcv_support Instr List Q Scc Stdlib String
