lib/ir/dot.ml: Array Buffer Ddg Edge Instr List Loop Opcode Printf
