lib/ir/dot.mli: Ddg Instr Loop
