lib/ir/instr.mli: Format Opcode
