lib/ir/cycle_ratio.mli: Ddg Hcv_support Instr Q
