lib/ir/loop.mli: Ddg Format
