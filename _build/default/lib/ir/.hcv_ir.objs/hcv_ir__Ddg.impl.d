lib/ir/ddg.ml: Array Edge Format Instr List Opcode Printf Queue String
