lib/ir/ddg.mli: Edge Format Instr Opcode
