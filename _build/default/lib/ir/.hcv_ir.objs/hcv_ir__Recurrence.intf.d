lib/ir/recurrence.mli: Ddg Format Hcv_support Instr Q
