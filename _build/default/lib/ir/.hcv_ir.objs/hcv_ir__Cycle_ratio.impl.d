lib/ir/cycle_ratio.ml: Array Ddg Edge Hashtbl Hcv_support List Q
