lib/ir/edge.mli: Format Instr
