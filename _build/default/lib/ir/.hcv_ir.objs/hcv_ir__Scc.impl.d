lib/ir/scc.ml: Array Ddg Edge List Stdlib
