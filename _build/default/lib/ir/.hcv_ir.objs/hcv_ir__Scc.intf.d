lib/ir/scc.mli: Ddg Instr
