lib/ir/dsl.mli: Format Loop
