lib/ir/instr.ml: Format Opcode Stdlib
