lib/ir/opcode.ml: Format List Stdlib
