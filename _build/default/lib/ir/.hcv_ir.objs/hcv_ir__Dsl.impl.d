lib/ir/dsl.ml: Array Buffer Ddg Edge Format Hashtbl In_channel Instr List Loop Opcode Option Printf String
