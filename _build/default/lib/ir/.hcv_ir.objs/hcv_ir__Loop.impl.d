lib/ir/loop.ml: Array Ddg Format Instr Opcode
