lib/ir/edge.ml: Format Instr Stdlib
