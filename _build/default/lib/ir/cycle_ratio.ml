open Hcv_support

(* Edges of the induced subgraph, with endpoints renumbered densely. *)
let induced ddg nodes =
  let n = List.length nodes in
  let rank = Hashtbl.create n in
  List.iteri (fun i v -> Hashtbl.replace rank v i) nodes;
  let edges =
    List.concat_map
      (fun v ->
        List.filter_map
          (fun (e : Edge.t) ->
            match (Hashtbl.find_opt rank e.src, Hashtbl.find_opt rank e.dst) with
            | Some s, Some d -> Some (s, d, e.latency, e.distance)
            | _, _ -> None)
          (Ddg.succs ddg v))
      nodes
  in
  (n, edges)

(* Bellman-Ford longest-path relaxation with weights l - r*d; a node
   still relaxable after n rounds witnesses a positive cycle. *)
let positive_cycle n edges r =
  if n = 0 || edges = [] then false
  else begin
    let dist = Array.make n Q.zero in
    let changed = ref true in
    let rounds = ref 0 in
    while !changed && !rounds <= n do
      changed := false;
      incr rounds;
      List.iter
        (fun (s, d, l, dst_d) ->
          let w = Q.(sub (of_int l) (mul r (of_int dst_d))) in
          let candidate = Q.add dist.(s) w in
          if Q.( > ) candidate dist.(d) then begin
            dist.(d) <- candidate;
            changed := true
          end)
        edges;
    done;
    !changed
  end

let has_positive_cycle ddg nodes r =
  let n, edges = induced ddg nodes in
  positive_cycle n edges r

let has_cycle n edges =
  (* A cycle exists iff lambda* > -1 given all latencies >= 0 and
     distances >= 0: any cycle has weight sum l + sum d > 0 under
     r = -1 (zero-distance cycles are excluded upstream, so sum d >= 1
     even when sum l = 0). *)
  positive_cycle n edges (Q.of_int (-1))

let ceil_over ddg nodes =
  let n, edges = induced ddg nodes in
  if not (has_cycle n edges) then 0
  else begin
    (* Smallest integer r such that no positive cycle under l - r*d. *)
    let hi = List.fold_left (fun acc (_, _, l, _) -> acc + max l 1) 1 edges in
    let lo = ref 0 and hi = ref hi in
    (* Invariant: positive cycle at (lo - 1) viewpoint... we search the
       least infeasible->feasible boundary: feasible(r) = no positive
       cycle. feasible(hi) holds (hi >= sum of latencies). *)
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if positive_cycle n edges (Q.of_int mid) then lo := mid + 1
      else hi := mid
    done;
    !lo
  end

(* Simplest fraction in the open interval (lo, hi), via the
   Stern-Brocot / continued-fraction descent.  Requires 0 <= lo < hi. *)
let rec simplest lo hi =
  assert (Q.( < ) lo hi);
  let n = Q.floor lo in
  if Q.( < ) (Q.of_int (n + 1)) hi then Q.of_int (n + 1)
  else begin
    let lo' = Q.sub lo (Q.of_int n) and hi' = Q.sub hi (Q.of_int n) in
    (* 0 <= lo' < hi' <= 1 *)
    if Q.sign lo' = 0 then
      (* Need 1/y < hi', i.e. integer y > 1/hi'. *)
      Q.add (Q.of_int n) (Q.inv (Q.of_int (Q.floor (Q.inv hi') + 1)))
    else Q.add (Q.of_int n) (Q.inv (simplest (Q.inv hi') (Q.inv lo')))
  end

let exact_over ddg nodes =
  let n, edges = induced ddg nodes in
  if not (has_cycle n edges) then None
  else if not (positive_cycle n edges Q.zero) then
    (* All cycles have zero total latency (latencies are >= 0, so
       lambda* >= 0, and lambda* > 0 just failed). *)
    Some Q.zero
  else begin
    let total_dist =
      List.fold_left (fun acc (_, _, _, d) -> acc + d) 0 edges
    in
    let total_dist = max total_dist 1 in
    (* lambda* = p/q with 1 <= q <= total_dist.  Distinct candidate
       ratios differ by at least 1/total_dist^2; binary-search r down to
       an interval narrower than that, keeping the invariant
       lambda* in (lo, hi]. *)
    let gap = Q.make 1 (total_dist * total_dist) in
    let hi0 = List.fold_left (fun acc (_, _, l, _) -> acc + max l 0) 1 edges in
    let lo = ref Q.zero and hi = ref (Q.of_int hi0) in
    while Q.( > ) (Q.sub !hi !lo) (Q.div_int gap 4) do
      let mid = Q.div_int (Q.add !lo !hi) 2 in
      if positive_cycle n edges mid then lo := mid else hi := mid
    done;
    (* The open interval (lo, hi + gap/2) contains lambda* (> lo since
       positive_cycle lo holds) and no other fraction with denominator
       <= total_dist; the simplest fraction in it is lambda*. *)
    Some (simplest !lo (Q.add !hi (Q.div_int gap 2)))
  end
