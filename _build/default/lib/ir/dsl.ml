type error = { line : int; msg : string }

let pp_error ppf e = Format.fprintf ppf "line %d: %s" e.line e.msg

exception Parse of error

let fail line fmt = Format.kasprintf (fun msg -> raise (Parse { line; msg })) fmt

let tokenize_line line =
  (* Strip comments, split on whitespace. *)
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

type pending_loop = {
  mutable lname : string;
  mutable trip : int option;
  mutable weight : float option;
  builder : Ddg.Builder.t;
  names : (string, Instr.id) Hashtbl.t;
}

let parse_int lnum what s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> fail lnum "invalid %s %S" what s

let parse_float lnum what s =
  match float_of_string_opt s with
  | Some v -> v
  | None -> fail lnum "invalid %s %S" what s

(* Parse "key value" option pairs from a token list. *)
let rec parse_opts lnum acc = function
  | [] -> acc
  | [ k ] -> fail lnum "option %S has no value" k
  | k :: v :: rest -> parse_opts lnum ((k, v) :: acc) rest

let lookup_opt opts key = List.assoc_opt key opts

let finish_loop lnum pl =
  let ddg =
    try Ddg.Builder.build pl.builder
    with Invalid_argument msg -> fail lnum "loop %s: %s" pl.lname msg
  in
  try Loop.make ?trip:pl.trip ?weight:pl.weight ~name:pl.lname ddg
  with Invalid_argument msg -> fail lnum "loop %s: %s" pl.lname msg

let parse text =
  let lines = String.split_on_char '\n' text in
  let loops = ref [] in
  let current = ref None in
  try
    List.iteri
      (fun i line ->
        let lnum = i + 1 in
        match (tokenize_line line, !current) with
        | [], _ -> ()
        | "loop" :: name :: opts, None ->
          let opts = parse_opts lnum [] opts in
          let pl =
            {
              lname = name;
              trip = Option.map (parse_int lnum "trip") (lookup_opt opts "trip");
              weight =
                Option.map (parse_float lnum "weight") (lookup_opt opts "weight");
              builder = Ddg.Builder.create ();
              names = Hashtbl.create 16;
            }
          in
          current := Some pl
        | "loop" :: _, Some pl ->
          fail lnum "loop %S not closed before a new one starts" pl.lname
        | [ "loop" ], None -> fail lnum "loop without a name"
        | "node" :: name :: mnemonic :: [], Some pl ->
          if Hashtbl.mem pl.names name then
            fail lnum "duplicate node name %S" name;
          let op =
            match Opcode.of_mnemonic mnemonic with
            | Some op -> op
            | None -> fail lnum "unknown opcode %S" mnemonic
          in
          Hashtbl.replace pl.names name
            (Ddg.Builder.add_instr pl.builder ~name op)
        | "node" :: _, Some _ -> fail lnum "node expects: node <name> <opcode>"
        | "edge" :: src :: dst :: opts, Some pl ->
          let opts = parse_opts lnum [] opts in
          let resolve n =
            match Hashtbl.find_opt pl.names n with
            | Some id -> id
            | None -> fail lnum "unknown node %S" n
          in
          let kind =
            match lookup_opt opts "kind" with
            | None -> None
            | Some "flow" -> Some Edge.Flow
            | Some "anti" -> Some Edge.Anti
            | Some "output" -> Some Edge.Output
            | Some "mem" -> Some Edge.Mem
            | Some other -> fail lnum "unknown edge kind %S" other
          in
          Ddg.Builder.add_edge pl.builder ?kind
            ?distance:(Option.map (parse_int lnum "dist") (lookup_opt opts "dist"))
            ?latency:(Option.map (parse_int lnum "lat") (lookup_opt opts "lat"))
            (resolve src) (resolve dst)
        | "edge" :: _, Some _ ->
          fail lnum "edge expects: edge <src> <dst> [dist N] [lat N] [kind K]"
        | [ "end" ], Some pl ->
          loops := finish_loop lnum pl :: !loops;
          current := None
        | ("node" | "edge" | "end") :: _, None ->
          fail lnum "directive outside of a loop block"
        | tok :: _, _ -> fail lnum "unknown directive %S" tok)
      lines;
    (match !current with
    | Some pl -> fail (List.length lines) "loop %S missing `end`" pl.lname
    | None -> ());
    Ok (List.rev !loops)
  with Parse e -> Error e

let parse_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse text
  | exception Sys_error msg -> Error { line = 0; msg }

let mnemonic_of_op (op : Opcode.t) =
  (* First mnemonic mapping to this class. *)
  match
    List.find_opt (fun (_, o) -> Opcode.equal o op) Opcode.mnemonics
  with
  | Some (m, _) -> m
  | None -> assert false (* every class has a mnemonic *)

let print (loop : Loop.t) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "loop %s trip %d weight %g\n" loop.name loop.trip
       loop.weight);
  let ddg = loop.ddg in
  Array.iter
    (fun (ins : Instr.t) ->
      Buffer.add_string buf
        (Printf.sprintf "  node %s %s\n" ins.name (mnemonic_of_op ins.op)))
    (Ddg.instrs ddg);
  List.iter
    (fun (e : Edge.t) ->
      let name id = (Ddg.instr ddg id).Instr.name in
      Buffer.add_string buf
        (Printf.sprintf "  edge %s %s lat %d dist %d kind %s\n" (name e.src)
           (name e.dst) e.latency e.distance
           (Edge.kind_to_string e.kind)))
    (Ddg.edges ddg);
  Buffer.add_string buf "end\n";
  Buffer.contents buf

let print_all loops = String.concat "\n" (List.map print loops)
