type id = int
type t = { id : id; name : string; op : Opcode.t }

let make ~id ~name ~op = { id; name; op }
let latency t = Opcode.latency t.op
let energy t = Opcode.energy t.op
let fu t = Opcode.fu t.op
let equal a b = a.id = b.id
let compare a b = Stdlib.compare a.id b.id
let pp ppf t = Format.fprintf ppf "%s:%a" t.name Opcode.pp t.op
