(** Maximum cycle ratio of a dependence subgraph.

    For a set of edges each carrying a latency [l(e)] and a distance
    [d(e)], the maximum cycle ratio is

      lambda* = max over cycles c of (sum l(e) / sum d(e), e in c).

    This is the exact per-recurrence lower bound on the initiation
    interval: a recurrence scheduled entirely in a cluster with
    initiation interval II is feasible iff [lambda* <= II].  Zero-
    distance cycles are assumed absent (guaranteed by {!Ddg}
    validation), so every cycle has [sum d(e) >= 1] and lambda* is
    finite. *)

open Hcv_support

val ceil_over : Ddg.t -> Instr.id list -> int
(** [ceil_over ddg nodes] is [ceil lambda*] restricted to the edges with
    both endpoints in [nodes], i.e. the minimum integer II at which the
    subgraph's recurrences fit.  Returns [0] if the subgraph has no
    cycle. *)

val exact_over : Ddg.t -> Instr.id list -> Q.t option
(** Exact [lambda*] as a rational, [None] if the subgraph has no cycle.
    Computed by parametric search (positive-cycle detection under
    weights [l - r*d]) followed by simplest-fraction recovery, so the
    result is exact, not a float approximation. *)

val has_positive_cycle : Ddg.t -> Instr.id list -> Q.t -> bool
(** [has_positive_cycle ddg nodes r] tests whether the subgraph has a
    cycle with [sum l > r * sum d] — i.e. whether [lambda* > r].
    Exposed for property tests. *)
