(** The alpha-power law linking maximum frequency, supply voltage and
    threshold voltage (paper §3.3):

      fmax = beta * (Vdd - Vth)^alpha / (CL * Vdd)

    The technology constant [beta / CL] is calibrated so that the
    reference design point (1 GHz at Vdd = 1 V, Vth = 0.25 V in the
    paper) satisfies the law exactly.  Given a target frequency and a
    supply voltage, the threshold voltage is recovered by inverting the
    law; the result must then pass {!valid_vth}, which encodes the
    paper's metastability / process-variation guard band (the printed
    inequality is OCR-garbled; we implement the standard reading: the
    threshold must stay at least 10% of Vdd away from both rails,
    [0.1*Vdd <= Vth <= 0.9*Vdd]). *)

open Hcv_support

type params = {
  alpha : float;  (** velocity-saturation exponent, default 1.5 *)
  vdd_ref : float;  (** volts *)
  vth_ref : float;  (** volts *)
  f_ref : Q.t;  (** GHz at the reference (Vdd, Vth) *)
}

val default : params
(** alpha = 1.5, 1 GHz at Vdd 1 V / Vth 0.25 V (paper §5). *)

val fmax : params -> vdd:float -> vth:float -> float
(** Maximum frequency (GHz) sustainable at the given voltages.
    @raise Invalid_argument if [vdd <= vth]. *)

val vth_for : params -> vdd:float -> f:float -> float option
(** Threshold voltage at which [fmax = f] given [vdd]; [None] when even
    [vth = 0] cannot reach [f] (the component cannot run that fast at
    this supply voltage). *)

val valid_vth : vdd:float -> vth:float -> bool

val supports : params -> vdd:float -> f:float -> float option
(** [vth_for] filtered by [valid_vth]: the operating threshold voltage
    if (f, vdd) is a realisable point, else [None]. *)
