(** Clock/voltage domains of the heterogeneous microarchitecture: each
    cluster, the inter-cluster connection network, and the on-chip
    memory hierarchy (paper §2.1). *)

type t = Cluster of int | Icn | Cache

val all : n_clusters:int -> t list
val equal : t -> t -> bool
val compare : t -> t -> int
val to_string : t -> string
val pp : Format.formatter -> t -> unit
