type t = {
  name : string;
  int_fus : int;
  fp_fus : int;
  mem_ports : int;
  registers : int;
}

let make ?(name = "cluster") ~int_fus ~fp_fus ~mem_ports ~registers () =
  if int_fus < 0 || fp_fus < 0 || mem_ports < 0 || registers < 0 then
    invalid_arg "Cluster.make: negative resource count";
  if int_fus + fp_fus + mem_ports = 0 then
    invalid_arg "Cluster.make: cluster with no execution resources";
  { name; int_fus; fp_fus; mem_ports; registers }

let fu_count t = function
  | Hcv_ir.Opcode.Int_fu -> t.int_fus
  | Hcv_ir.Opcode.Fp_fu -> t.fp_fus
  | Hcv_ir.Opcode.Mem_port -> t.mem_ports

let issue_width t = t.int_fus + t.fp_fus + t.mem_ports

let paper = make ~name:"paper" ~int_fus:1 ~fp_fus:1 ~mem_ports:1 ~registers:16 ()

let pp ppf t =
  Format.fprintf ppf "%s{int=%d fp=%d mem=%d regs=%d}" t.name t.int_fus
    t.fp_fus t.mem_ports t.registers
