open Hcv_support

let reference_cycle_time = Q.one
let reference_vdd = 1.0
let reference_vth = 0.25

let machine_4c ~buses =
  Machine.make ~name:(Printf.sprintf "paper-4c-%dbus" buses)
    ~clusters:(Array.init 4 (fun _ -> Cluster.paper))
    ~icn:(Icn.make ~buses ())
    ()

let fast_factors =
  [ Q.make 9 10; Q.make 19 20; Q.one; Q.make 21 20; Q.make 11 10 ]

let slow_factors = [ Q.one; Q.make 5 4; Q.make 4 3; Q.make 3 2 ]

let volt_range lo hi =
  (* Inclusive range in 0.05 V steps, computed in integer hundredths of
     a volt to avoid float accumulation. *)
  let lo = int_of_float ((lo *. 100.0) +. 0.5)
  and hi = int_of_float ((hi *. 100.0) +. 0.5) in
  List.init (((hi - lo) / 5) + 1) (fun i -> float_of_int (lo + (5 * i)) /. 100.0)

let cluster_vdds = volt_range 0.7 1.2
let icn_vdds = volt_range 0.8 1.1
let cache_vdds = volt_range 1.0 1.4

let reference_config machine =
  Opconfig.homogeneous ~machine ~cycle_time:reference_cycle_time
    ~vdd:reference_vdd ()

let grid_of_steps = function
  | None -> Freqgrid.Unrestricted
  | Some n ->
    (* The generator clock runs at twice the fastest cluster frequency
       the paper allows (cycle time 0.9 ns -> 20/9 GHz doubled), and
       the supported frequencies are its dividers (Figure 2). *)
    Freqgrid.dividers ~steps:n ~base:(Q.make 20 9)
