(** A machine design: the structural part of the microarchitecture,
    independent of any frequency/voltage operating point. *)

type t = {
  name : string;
  clusters : Cluster.t array;
  icn : Icn.t;
  grid : Freqgrid.t;
}

val make :
  ?name:string -> ?grid:Freqgrid.t -> clusters:Cluster.t array -> icn:Icn.t
  -> unit -> t
(** [grid] defaults to [Unrestricted].
    @raise Invalid_argument if there are no clusters. *)

val n_clusters : t -> int
val cluster : t -> int -> Cluster.t

val fu_total : t -> Hcv_ir.Opcode.fu_kind -> int
(** Machine-wide count of a resource kind. *)

val components : t -> Comp.t list

val with_grid : t -> Freqgrid.t -> t
val with_icn : t -> Icn.t -> t

val pp : Format.formatter -> t -> unit
