(** Discrete frequency grids (paper §2.1, Fig. 2 and the Fig. 7
    sensitivity study).

    The clock-generation network derives a limited set of frequencies
    from a general clock with multipliers and dividers; a component may
    only run at a grid frequency.  During scheduling, a component with
    maximum frequency [fmax] (fixed by its supply voltage) must be given
    a pair (f, II) with [f <= fmax], [f] in the grid and [II = f * it]
    a positive integer; when no such pair exists the initiation time
    must be increased ("synchronisation problem", §4). *)

open Hcv_support

type t =
  | Unrestricted
      (** any frequency is realisable; [f = floor(fmax*it) / it] *)
  | Uniform of { steps : int; top : Q.t }
      (** the [steps] frequencies [top * k/steps], [k = 1..steps] —
          a linearly spaced grid *)
  | Dividers of { steps : int; base : Q.t }
      (** the [steps] frequencies [base / m], [m = 1..steps] — the
          clock-generation network of the paper's Figure 2: a general
          clock divided down.  With [base] chosen commensurate with the
          machine's cycle-time grid, most initiation times admit a
          synchronisable divider, matching the paper's observation that
          few supported frequencies cost little. *)

val uniform : steps:int -> top:Q.t -> t
(** @raise Invalid_argument if [steps < 1] or [top <= 0]. *)

val dividers : steps:int -> base:Q.t -> t
(** @raise Invalid_argument if [steps < 1] or [base <= 0]. *)

val frequencies : t -> Q.t list option
(** The grid as a list (ascending), or [None] for [Unrestricted]. *)

val best_pair : t -> fmax:Q.t -> it:Q.t -> (Q.t * int) option
(** Highest-frequency valid pair (f, II) for initiation time [it]:
    [f <= fmax], [f] in the grid, [II = f*it] a positive integer.
    [None] when the component cannot be synchronised at this [it]. *)

val pp : Format.formatter -> t -> unit
