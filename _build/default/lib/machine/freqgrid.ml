open Hcv_support

type t =
  | Unrestricted
  | Uniform of { steps : int; top : Q.t }
  | Dividers of { steps : int; base : Q.t }

let uniform ~steps ~top =
  if steps < 1 then invalid_arg "Freqgrid.uniform: steps < 1";
  if Q.sign top <= 0 then invalid_arg "Freqgrid.uniform: non-positive top";
  Uniform { steps; top }

let dividers ~steps ~base =
  if steps < 1 then invalid_arg "Freqgrid.dividers: steps < 1";
  if Q.sign base <= 0 then invalid_arg "Freqgrid.dividers: non-positive base";
  Dividers { steps; base }

let frequencies = function
  | Unrestricted -> None
  | Uniform { steps; top } ->
    Some (List.init steps (fun k -> Q.mul_int (Q.div_int top steps) (k + 1)))
  | Dividers { steps; base } ->
    Some
      (List.init steps (fun m -> Q.div_int base (steps - m))
      (* ascending: base/steps .. base/1 *))

let best_pair t ~fmax ~it =
  if Q.sign fmax <= 0 || Q.sign it <= 0 then
    invalid_arg "Freqgrid.best_pair: non-positive fmax or it";
  match t with
  | Unrestricted ->
    let ii = Q.floor (Q.mul fmax it) in
    if ii < 1 then None else Some (Q.div (Q.of_int ii) it, ii)
  | Uniform { steps; top } ->
    let step = Q.div_int top steps in
    (* Highest k with step*k <= fmax, then scan down for integrality. *)
    let kmax = min steps (Q.floor (Q.div fmax step)) in
    let rec scan k =
      if k < 1 then None
      else
        let f = Q.mul_int step k in
        let ii = Q.mul f it in
        if Q.is_integer ii && Q.num ii >= 1 then Some (f, Q.num ii)
        else scan (k - 1)
    in
    scan kmax
  | Dividers { steps; base } ->
    (* Smallest divider m with base/m <= fmax, then scan up (towards
       lower frequencies) for integrality. *)
    let mmin = max 1 (Q.ceil (Q.div base fmax)) in
    let rec scan m =
      if m > steps then None
      else
        let f = Q.div_int base m in
        let ii = Q.mul f it in
        if Q.is_integer ii && Q.num ii >= 1 then Some (f, Q.num ii)
        else scan (m + 1)
    in
    scan mmin

let pp ppf = function
  | Unrestricted -> Format.pp_print_string ppf "grid{any}"
  | Uniform { steps; top } ->
    Format.fprintf ppf "grid{%d steps up to %a}" steps Q.pp top
  | Dividers { steps; base } ->
    Format.fprintf ppf "grid{%d dividers of %a}" steps Q.pp base
