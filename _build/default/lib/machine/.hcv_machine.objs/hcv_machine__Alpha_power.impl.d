lib/machine/alpha_power.ml: Hcv_support Q
