lib/machine/cluster.mli: Format Hcv_ir
