lib/machine/comp.ml: Format List Printf Stdlib
