lib/machine/opconfig.mli: Alpha_power Comp Format Hcv_support Machine Q
