lib/machine/freqgrid.mli: Format Hcv_support Q
