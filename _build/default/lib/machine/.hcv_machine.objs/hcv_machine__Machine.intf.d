lib/machine/machine.mli: Cluster Comp Format Freqgrid Hcv_ir Icn
