lib/machine/alpha_power.mli: Hcv_support Q
