lib/machine/machine.ml: Array Cluster Comp Format Freqgrid Icn
