lib/machine/opconfig.ml: Alpha_power Array Comp Format Hcv_support List Machine Option Printf Q
