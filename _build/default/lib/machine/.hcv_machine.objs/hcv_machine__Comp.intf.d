lib/machine/comp.mli: Format
