lib/machine/icn.ml: Format
