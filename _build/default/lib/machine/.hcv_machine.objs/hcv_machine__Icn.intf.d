lib/machine/icn.mli: Format
