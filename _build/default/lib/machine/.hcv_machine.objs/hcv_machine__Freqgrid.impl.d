lib/machine/freqgrid.ml: Format Hcv_support List Q
