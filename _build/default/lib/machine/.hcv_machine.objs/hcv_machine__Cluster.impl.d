lib/machine/cluster.ml: Format Hcv_ir
