lib/machine/presets.ml: Array Cluster Freqgrid Hcv_support Icn List Machine Opconfig Printf Q
