lib/machine/presets.mli: Freqgrid Hcv_support Machine Opconfig Q
