type t = Cluster of int | Icn | Cache

let all ~n_clusters = List.init n_clusters (fun i -> Cluster i) @ [ Icn; Cache ]
let equal a b = a = b
let compare = Stdlib.compare

let to_string = function
  | Cluster i -> Printf.sprintf "C%d" i
  | Icn -> "ICN"
  | Cache -> "cache"

let pp ppf t = Format.pp_print_string ppf (to_string t)
