(** Operating configurations: a frequency/voltage point per clock
    domain of a machine design.

    A configuration fixes, for every component, its *maximum* cycle time
    (the frequency the supply voltage can sustain).  During modulo
    scheduling, components may be clocked below this maximum to align
    their II with the loop's initiation time (paper §4). *)

open Hcv_support

type point = { cycle_time : Q.t;  (** ns; the minimum cycle time *) vdd : float }

type t = {
  machine : Machine.t;
  cluster_points : point array;
  icn_point : point;
  cache_point : point;
}

val make :
  machine:Machine.t -> cluster_points:point array -> icn_point:point
  -> cache_point:point -> t
(** @raise Invalid_argument on arity mismatch or non-positive cycle
    times / voltages. *)

val homogeneous :
  machine:Machine.t -> cycle_time:Q.t -> ?vdd_cluster:float -> ?vdd_icn:float
  -> ?vdd_cache:float -> vdd:float -> unit -> t
(** Every domain at the same cycle time; per-domain voltages default to
    [vdd]. *)

val point : t -> Comp.t -> point
val fmax : t -> Comp.t -> Q.t
(** Maximum frequency in GHz ([1 / cycle_time] with cycle time in
    ns). *)

val cycle_time : t -> Comp.t -> Q.t
val vdd : t -> Comp.t -> float

val fastest_cluster : t -> int
(** Index of the cluster with the smallest cycle time (first on
    ties). *)

val fastest_cluster_cycle_time : t -> Q.t

val is_homogeneous : t -> bool
(** True when all domains share one cycle time. *)

val vth : ?params:Alpha_power.params -> t -> Comp.t -> float option
(** Operating threshold voltage of the domain: the Vth at which its
    supply voltage sustains exactly its maximum frequency, if that point
    is realisable (see {!Alpha_power.supports}). *)

val realisable : ?params:Alpha_power.params -> t -> bool
(** All domains have a valid threshold voltage. *)

val pp : Format.formatter -> t -> unit
