type t = { buses : int; latency_cycles : int }

let make ?(latency_cycles = 1) ~buses () =
  if buses < 1 then invalid_arg "Icn.make: need at least one bus";
  if latency_cycles < 1 then invalid_arg "Icn.make: latency below one cycle";
  { buses; latency_cycles }

let paper_1bus = make ~buses:1 ()
let paper_2bus = make ~buses:2 ()
let pp ppf t = Format.fprintf ppf "icn{buses=%d lat=%d}" t.buses t.latency_cycles
