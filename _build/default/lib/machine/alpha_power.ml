open Hcv_support

type params = { alpha : float; vdd_ref : float; vth_ref : float; f_ref : Q.t }

let default = { alpha = 1.5; vdd_ref = 1.0; vth_ref = 0.25; f_ref = Q.one }

(* beta / CL, in GHz * V^(1-alpha). *)
let k params =
  Q.to_float params.f_ref *. params.vdd_ref
  /. ((params.vdd_ref -. params.vth_ref) ** params.alpha)

let fmax params ~vdd ~vth =
  if vdd <= vth then invalid_arg "Alpha_power.fmax: vdd <= vth";
  k params *. ((vdd -. vth) ** params.alpha) /. vdd

let vth_for params ~vdd ~f =
  if f <= 0.0 || vdd <= 0.0 then invalid_arg "Alpha_power.vth_for";
  (* f = k (vdd - vth)^alpha / vdd  =>  vth = vdd - (f vdd / k)^(1/alpha) *)
  let overdrive = (f *. vdd /. k params) ** (1.0 /. params.alpha) in
  let vth = vdd -. overdrive in
  if vth < 0.0 then None else Some vth

let valid_vth ~vdd ~vth = vth >= 0.1 *. vdd && vth <= 0.9 *. vdd

let supports params ~vdd ~f =
  match vth_for params ~vdd ~f with
  | Some vth when valid_vth ~vdd ~vth -> Some vth
  | Some _ | None -> None
