open Hcv_support

type point = { cycle_time : Q.t; vdd : float }

type t = {
  machine : Machine.t;
  cluster_points : point array;
  icn_point : point;
  cache_point : point;
}

let check_point what p =
  if Q.sign p.cycle_time <= 0 then
    invalid_arg (Printf.sprintf "Opconfig: non-positive cycle time for %s" what);
  if p.vdd <= 0.0 then
    invalid_arg (Printf.sprintf "Opconfig: non-positive vdd for %s" what)

let make ~machine ~cluster_points ~icn_point ~cache_point =
  if Array.length cluster_points <> Machine.n_clusters machine then
    invalid_arg "Opconfig.make: cluster point arity mismatch";
  Array.iteri
    (fun i p -> check_point (Printf.sprintf "cluster %d" i) p)
    cluster_points;
  check_point "icn" icn_point;
  check_point "cache" cache_point;
  { machine; cluster_points; icn_point; cache_point }

let homogeneous ~machine ~cycle_time ?vdd_cluster ?vdd_icn ?vdd_cache ~vdd () =
  let v d = Option.value d ~default:vdd in
  make ~machine
    ~cluster_points:
      (Array.make (Machine.n_clusters machine)
         { cycle_time; vdd = v vdd_cluster })
    ~icn_point:{ cycle_time; vdd = v vdd_icn }
    ~cache_point:{ cycle_time; vdd = v vdd_cache }

let point t = function
  | Comp.Cluster i -> t.cluster_points.(i)
  | Comp.Icn -> t.icn_point
  | Comp.Cache -> t.cache_point

let cycle_time t c = (point t c).cycle_time
let vdd t c = (point t c).vdd
let fmax t c = Q.inv (cycle_time t c)

let fastest_cluster t =
  let best = ref 0 in
  Array.iteri
    (fun i p ->
      if Q.( < ) p.cycle_time t.cluster_points.(!best).cycle_time then best := i)
    t.cluster_points;
  !best

let fastest_cluster_cycle_time t =
  t.cluster_points.(fastest_cluster t).cycle_time

let is_homogeneous t =
  let ct = t.icn_point.cycle_time in
  Q.equal ct t.cache_point.cycle_time
  && Array.for_all (fun p -> Q.equal p.cycle_time ct) t.cluster_points

let vth ?(params = Alpha_power.default) t c =
  Alpha_power.supports params ~vdd:(vdd t c) ~f:(Q.to_float (fmax t c))

let realisable ?params t =
  List.for_all
    (fun c -> Option.is_some (vth ?params t c))
    (Machine.components t.machine)

let pp ppf t =
  Format.fprintf ppf "@[<v>config on %s:" t.machine.Machine.name;
  List.iter
    (fun c ->
      let p = point t c in
      Format.fprintf ppf "@,  %a: Tcyc=%a ns, Vdd=%.2f V" Comp.pp c Q.pp
        p.cycle_time p.vdd)
    (Machine.components t.machine);
  Format.fprintf ppf "@]"
