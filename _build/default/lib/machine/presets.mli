(** The CGO'07 evaluation parameters (paper §5). *)

open Hcv_support

val reference_cycle_time : Q.t
(** 1 ns (1 GHz reference). *)

val reference_vdd : float
(** 1 V. *)

val reference_vth : float
(** 0.25 V. *)

val machine_4c : buses:int -> Machine.t
(** The evaluation machine: 4 identical clusters of 1 int FU + 1 FP FU +
    1 memory port + 16 registers, [buses] 1-cycle register buses. *)

val fast_factors : Q.t list
(** Allowed fast-cluster cycle times relative to the reference:
    0.9, 0.95, 1, 1.05, 1.1. *)

val slow_factors : Q.t list
(** Allowed slow-cluster cycle times relative to the fast cluster:
    1, 5/4, 4/3, 3/2 (the paper prints 1.25, 1.33, 1.5). *)

val cluster_vdds : float list
(** Candidate cluster supply voltages, 0.7 V .. 1.2 V in 0.05 V steps. *)

val icn_vdds : float list
(** 0.8 V .. 1.1 V. *)

val cache_vdds : float list
(** 1.0 V .. 1.4 V (higher because the cache's static energy share is
    large). *)

val reference_config : Machine.t -> Opconfig.t
(** The reference homogeneous configuration: everything at 1 ns / 1 V. *)

val grid_of_steps : int option -> Freqgrid.t
(** [None] -> unrestricted; [Some n] -> the [n] dividers of a 20/9 GHz
    generator clock (twice the fastest cluster frequency the paper
    allows) — the Figure 2 clock-generation network, as used in the
    Fig. 7 sensitivity study. *)
