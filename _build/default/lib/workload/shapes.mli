(** Parameterised loop-shape generators.

    Every generator draws from an explicit {!Hcv_support.Rng.t} and
    produces a structurally valid loop (no zero-distance cycles).  The
    shapes correspond to the kinds of floating-point loop bodies the
    paper's discussion distinguishes (§5.2): loops dominated by a
    critical recurrence (short or long), borderline loops, wide
    resource-bound loops, and register-pressure-heavy loops. *)

open Hcv_support
open Hcv_ir

val recurrence_chain :
  rng:Rng.t -> name:string -> rec_len:int -> extra:int -> ?trip:int
  -> ?weight:float -> unit -> Loop.t
(** A single cyclic chain of [rec_len] FP operations (distance-1 back
    edge) — the critical recurrence — plus [extra] instructions of
    independent load/compute/store work hanging off it.  Small
    [rec_len] with high-latency ops gives the
    few-critical-instructions profile of sixtrack/facerec. *)

val reduction :
  rng:Rng.t -> name:string -> width:int -> ?trip:int -> ?weight:float -> unit
  -> Loop.t
(** [width] parallel load+multiply lanes feeding a serial accumulate
    (self-recurrence of one FP add). *)

val stencil :
  rng:Rng.t -> name:string -> points:int -> ?carry:int -> ?trip:int
  -> ?weight:float -> unit -> Loop.t
(** A [points]-point stencil: loads, a weighted-sum tree, a store, and a
    loop-carried dependence of distance [carry] (default 1) from the
    store back to one load (memory recurrence). *)

val wide_parallel :
  rng:Rng.t -> name:string -> lanes:int -> ?depth:int -> ?merge:bool
  -> ?trip:int -> ?weight:float -> unit -> Loop.t
(** [lanes] load/op^depth chains — resource bound, no recurrence.  With
    [merge] (default false) the lanes feed a final reduction tree and a
    single store instead of per-lane stores. *)

val register_heavy :
  rng:Rng.t -> name:string -> values:int -> ?span:int -> ?trip:int
  -> ?weight:float -> unit -> Loop.t
(** [values] loads whose results are all consumed by a late chain of
    adds, creating long overlapping lifetimes (about [span] consumers
    deep). *)
