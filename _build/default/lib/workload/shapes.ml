open Hcv_support
open Hcv_ir

let op_ld = Opcode.make Opcode.Memory Opcode.Fp
let op_st = Opcode.make Opcode.Memory Opcode.Fp
let op_add = Opcode.make Opcode.Arith Opcode.Fp
let op_mul = Opcode.make Opcode.Mult Opcode.Fp
let op_div = Opcode.make Opcode.Div Opcode.Fp
let op_addi = Opcode.make Opcode.Arith Opcode.Int

(* Pick an FP compute opcode, biased towards adds and multiplies. *)
let compute_op rng =
  Rng.pick_weighted rng [ (op_add, 5.0); (op_mul, 3.0); (op_div, 0.5) ]

let recurrence_chain ~rng ~name ~rec_len ~extra ?(trip = 200) ?(weight = 1.0)
    () =
  if rec_len < 1 then invalid_arg "Shapes.recurrence_chain: rec_len < 1";
  let b = Ddg.Builder.create () in
  (* The critical recurrence: a chain of FP ops closed by a distance-1
     back edge.  Use multiply-heavy ops so the recurrence latency
     dominates. *)
  let rec_nodes =
    List.init rec_len (fun k ->
        let op =
          if rec_len <= 3 then
            Rng.pick_weighted rng [ (op_mul, 3.0); (op_div, 1.0) ]
          else Rng.pick_weighted rng [ (op_add, 2.0); (op_mul, 2.0) ]
        in
        Ddg.Builder.add_instr b ~name:(Printf.sprintf "r%d" k) op)
  in
  let rec link = function
    | a :: (b' :: _ as rest) ->
      Ddg.Builder.add_edge b a b';
      link rest
    | [ _ ] | [] -> ()
  in
  link rec_nodes;
  (match (rec_nodes, List.rev rec_nodes) with
  | first :: _, last :: _ -> Ddg.Builder.add_edge b ~distance:1 last first
  | _, _ -> assert false);
  (* Off-recurrence work: load/compute/store lanes that read the
     recurrence value, share data with earlier lanes and occasionally
     chain into the next lane — the interconnected bulk of a real
     unrolled loop body, which is what keeps the register buses busy
     once the partitioner has to spread it over clusters. *)
  let first_rec = List.hd rec_nodes in
  let remaining = ref extra in
  let lane = ref 0 in
  (* Pool of earlier value-producing nodes available as extra operands;
     drawing operands from it creates the dense shared dataflow of a
     real unrolled body (common subexpressions, shared addresses),
     which is what keeps the register buses busy once the body spreads
     over several clusters. *)
  let producers = ref [ first_rec ] in
  while !remaining > 0 do
    let len = min !remaining (Rng.int_in rng 3 5) in
    let ld =
      Ddg.Builder.add_instr b ~name:(Printf.sprintf "ld%d" !lane) op_ld
    in
    let lane_producers = ref [ ld ] in
    let prev = ref ld in
    for k = 1 to len - 1 do
      let is_store = k = len - 1 && Rng.chance rng 0.5 in
      let node =
        if is_store then
          Ddg.Builder.add_instr b ~name:(Printf.sprintf "st%d_%d" !lane k) op_st
        else
          Ddg.Builder.add_instr b
            ~name:(Printf.sprintf "w%d_%d" !lane k)
            (compute_op rng)
      in
      Ddg.Builder.add_edge b !prev node;
      if k = 1 && Rng.chance rng 0.4 then
        (* Consume the recurrence value (forward edge only). *)
        Ddg.Builder.add_edge b first_rec node;
      if Rng.chance rng 0.6 then
        Ddg.Builder.add_edge b (Rng.pick rng !producers) node;
      if not is_store then lane_producers := node :: !lane_producers;
      prev := node
    done;
    producers := !lane_producers @ !producers;
    remaining := !remaining - len;
    incr lane
  done;
  Loop.make ~trip ~weight ~name (Ddg.Builder.build b)

let reduction ~rng ~name ~width ?(trip = 200) ?(weight = 1.0) () =
  if width < 1 then invalid_arg "Shapes.reduction: width < 1";
  let b = Ddg.Builder.create () in
  let acc = Ddg.Builder.add_instr b ~name:"acc" op_add in
  Ddg.Builder.add_edge b ~distance:1 acc acc;
  for k = 0 to width - 1 do
    let l1 = Ddg.Builder.add_instr b ~name:(Printf.sprintf "a%d" k) op_ld in
    let l2 = Ddg.Builder.add_instr b ~name:(Printf.sprintf "b%d" k) op_ld in
    let m = Ddg.Builder.add_instr b ~name:(Printf.sprintf "m%d" k) op_mul in
    Ddg.Builder.add_edge b l1 m;
    Ddg.Builder.add_edge b l2 m;
    Ddg.Builder.add_edge b m acc;
    if Rng.chance rng 0.2 then begin
      (* An occasional address update on the integer side. *)
      let upd =
        Ddg.Builder.add_instr b ~name:(Printf.sprintf "i%d" k) op_addi
      in
      Ddg.Builder.add_edge b upd l1;
      Ddg.Builder.add_edge b ~distance:1 upd upd
    end
  done;
  Loop.make ~trip ~weight ~name (Ddg.Builder.build b)

let stencil ~rng ~name ~points ?(carry = 1) ?(trip = 200) ?(weight = 1.0) () =
  if points < 2 then invalid_arg "Shapes.stencil: points < 2";
  let b = Ddg.Builder.create () in
  let loads =
    List.init points (fun k ->
        Ddg.Builder.add_instr b ~name:(Printf.sprintf "ld%d" k) op_ld)
  in
  (* Weighted-sum tree: scale each point, then fold. *)
  let scaled =
    List.mapi
      (fun k ld ->
        let m = Ddg.Builder.add_instr b ~name:(Printf.sprintf "m%d" k) op_mul in
        Ddg.Builder.add_edge b ld m;
        m)
      loads
  in
  let rec fold acc k = function
    | [] -> acc
    | x :: rest ->
      let s = Ddg.Builder.add_instr b ~name:(Printf.sprintf "s%d" k) op_add in
      Ddg.Builder.add_edge b acc s;
      Ddg.Builder.add_edge b x s;
      fold s (k + 1) rest
  in
  let sum =
    match scaled with
    | first :: rest -> fold first 0 rest
    | [] -> assert false
  in
  let st = Ddg.Builder.add_instr b ~name:"st" op_st in
  Ddg.Builder.add_edge b sum st;
  (* The loop-carried memory recurrence: this iteration's store feeds a
     load [carry] iterations later. *)
  let fed_load = Rng.pick rng loads in
  Ddg.Builder.add_edge b ~distance:carry ~kind:Edge.Mem st fed_load;
  Loop.make ~trip ~weight ~name (Ddg.Builder.build b)

let wide_parallel ~rng ~name ~lanes ?(depth = 2) ?(merge = false)
    ?(trip = 200) ?(weight = 1.0) () =
  if lanes < 1 then invalid_arg "Shapes.wide_parallel: lanes < 1";
  let b = Ddg.Builder.create () in
  let tails = ref [] in
  let producers = ref [] in
  for k = 0 to lanes - 1 do
    let ld = Ddg.Builder.add_instr b ~name:(Printf.sprintf "ld%d" k) op_ld in
    producers := ld :: !producers;
    let prev = ref ld in
    for d = 0 to depth - 1 do
      let node =
        Ddg.Builder.add_instr b
          ~name:(Printf.sprintf "c%d_%d" k d)
          (compute_op rng)
      in
      Ddg.Builder.add_edge b !prev node;
      if Rng.chance rng 0.35 then
        (* A shared operand from another lane. *)
        Ddg.Builder.add_edge b (Rng.pick rng !producers) node;
      producers := node :: !producers;
      prev := node
    done;
    if merge then tails := !prev :: !tails
    else begin
      let st = Ddg.Builder.add_instr b ~name:(Printf.sprintf "st%d" k) op_st in
      Ddg.Builder.add_edge b !prev st
    end
  done;
  (if merge then
     (* A reduction tree joins the lanes — inter-lane dataflow that
        forces cross-cluster traffic when lanes spread out. *)
     match !tails with
     | [] -> ()
     | first :: rest ->
       let sum = ref first in
       List.iteri
         (fun k t ->
           let s =
             Ddg.Builder.add_instr b ~name:(Printf.sprintf "t%d" k) op_add
           in
           Ddg.Builder.add_edge b !sum s;
           Ddg.Builder.add_edge b t s;
           sum := s)
         rest;
       let st = Ddg.Builder.add_instr b ~name:"st" op_st in
       Ddg.Builder.add_edge b !sum st);
  Loop.make ~trip ~weight ~name (Ddg.Builder.build b)

let register_heavy ~rng ~name ~values ?(span = 4) ?(trip = 200)
    ?(weight = 1.0) () =
  if values < 2 then invalid_arg "Shapes.register_heavy: values < 2";
  let b = Ddg.Builder.create () in
  let loads =
    List.init values (fun k ->
        Ddg.Builder.add_instr b ~name:(Printf.sprintf "v%d" k) op_ld)
  in
  (* A serial spine delays the consumers, stretching every load's
     lifetime. *)
  let spine = ref (Ddg.Builder.add_instr b ~name:"sp0" (compute_op rng)) in
  for k = 1 to span - 1 do
    let s =
      Ddg.Builder.add_instr b ~name:(Printf.sprintf "sp%d" k) (compute_op rng)
    in
    Ddg.Builder.add_edge b !spine s;
    spine := s
  done;
  List.iteri
    (fun k ld ->
      let c = Ddg.Builder.add_instr b ~name:(Printf.sprintf "u%d" k) op_add in
      Ddg.Builder.add_edge b ld c;
      Ddg.Builder.add_edge b !spine c)
    loads;
  Loop.make ~trip ~weight ~name (Ddg.Builder.build b)
