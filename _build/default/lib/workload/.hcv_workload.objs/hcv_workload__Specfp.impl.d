lib/workload/specfp.ml: Array Float Hashtbl Hcv_ir Hcv_machine Hcv_sched Hcv_support List Loop Mii Option Presets Printf Recurrence Rng Shapes
