lib/workload/specfp.mli: Hcv_ir Hcv_machine Loop
