lib/workload/shapes.ml: Ddg Edge Hcv_ir Hcv_support List Loop Opcode Printf Rng
