lib/workload/shapes.mli: Hcv_ir Hcv_support Loop Rng
