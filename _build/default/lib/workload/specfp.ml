open Hcv_support
open Hcv_ir
open Hcv_machine
open Hcv_sched

type spec = {
  name : string;
  res_share : float;
  border_share : float;
  rec_share : float;
  small_rec : bool;
  trip : int;
  reg_heavy : bool;
  default_loops : int;
}

(* Table 2 of the paper, with the per-benchmark characteristics §5.2
   discusses. *)
let all =
  [
    { name = "wupwise"; res_share = 0.1404; border_share = 0.6876;
      rec_share = 0.172; small_rec = false; trip = 200; reg_heavy = false;
      default_loops = 16 };
    { name = "swim"; res_share = 1.0; border_share = 0.0; rec_share = 0.0;
      small_rec = false; trip = 200; reg_heavy = true; default_loops = 16 };
    { name = "mgrid"; res_share = 0.9554; border_share = 0.0;
      rec_share = 0.0446; small_rec = false; trip = 200; reg_heavy = true;
      default_loops = 16 };
    { name = "applu"; res_share = 0.3194; border_share = 0.0617;
      rec_share = 0.6189; small_rec = true; trip = 8; reg_heavy = false;
      default_loops = 16 };
    { name = "galgel"; res_share = 0.3327; border_share = 0.0918;
      rec_share = 0.5755; small_rec = true; trip = 200; reg_heavy = false;
      default_loops = 16 };
    { name = "facerec"; res_share = 0.1659; border_share = 0.0;
      rec_share = 0.8341; small_rec = true; trip = 300; reg_heavy = false;
      default_loops = 16 };
    { name = "lucas"; res_share = 0.3213; border_share = 0.0002;
      rec_share = 0.6785; small_rec = true; trip = 300; reg_heavy = false;
      default_loops = 16 };
    { name = "fma3d"; res_share = 0.1522; border_share = 0.0296;
      rec_share = 0.8182; small_rec = false; trip = 200; reg_heavy = false;
      default_loops = 16 };
    { name = "sixtrack"; res_share = 0.0008; border_share = 0.0;
      rec_share = 0.9992; small_rec = true; trip = 300; reg_heavy = false;
      default_loops = 16 };
    { name = "apsi"; res_share = 0.155; border_share = 0.0337;
      rec_share = 0.8113; small_rec = false; trip = 200; reg_heavy = false;
      default_loops = 16 };
  ]

let find name = List.find_opt (fun s -> s.name = name) all

let machine = Presets.machine_4c ~buses:1

type clazz = Res | Border | Rec

let classify loop =
  match Mii.classify machine loop.Loop.ddg with
  | Mii.Resource_constrained -> Res
  | Mii.Borderline -> Border
  | Mii.Recurrence_constrained -> Rec

(* One generation attempt for a target class. *)
let attempt rng spec target idx =
  let name = Printf.sprintf "%s_l%d" spec.name idx in
  let trip = max 2 (spec.trip + Rng.int_in rng (-spec.trip / 4) (spec.trip / 4)) in
  match target with
  | Rec ->
    let rec_len =
      if spec.small_rec then Rng.int_in rng 2 3 else Rng.int_in rng 9 14
    in
    (* Size the off-recurrence work relative to the recurrence's own
       recMII so that, at the recurrence-bound II, the body still needs
       several clusters (the §5.2 profiles: sixtrack-like benchmarks
       have tiny critical recurrences inside big bodies, fma3d-like
       ones have big recurrences and comparatively less other work). *)
    let base_seed = Rng.int rng 0x3FFFFFFF in
    let probe =
      Shapes.recurrence_chain
        ~rng:(Rng.create base_seed)
        ~name ~rec_len ~extra:0 ~trip ()
    in
    let recmii = max 1 (Recurrence.rec_mii probe.Loop.ddg) in
    let factor =
      if spec.small_rec then 2.5 +. Rng.float rng 1.0
      else 0.08 +. Rng.float rng 0.12
    in
    let extra =
      min 90 (max 8 (int_of_float (float_of_int recmii *. factor)))
    in
    Shapes.recurrence_chain
      ~rng:(Rng.create base_seed)
      ~name ~rec_len ~extra ~trip ()
  | Border ->
    (* A modest recurrence padded with parallel work until resMII is
       just below recMII: grow the off-recurrence work until the class
       flips from recurrence-constrained to borderline.  Reseeding a
       fresh generator per step keeps the recurrence identical while
       the padding grows. *)
    let rec_len = Rng.int_in rng 2 4 in
    let base_seed = Rng.int rng 0x3FFFFFFF in
    let build extra =
      Shapes.recurrence_chain
        ~rng:(Rng.create base_seed)
        ~name ~rec_len ~extra ~trip ()
    in
    let rec scan extra =
      if extra > 80 then build 40
      else
        let loop = build extra in
        (match classify loop with
        | Border -> loop
        | Rec -> scan (extra + 2)
        | Res -> loop (* overshot the window; accept the nearest *))
    in
    scan 4
  | Res ->
    if spec.reg_heavy && Rng.chance rng 0.3 then
      Shapes.register_heavy ~rng ~name ~values:(Rng.int_in rng 8 12)
        ~span:(Rng.int_in rng 3 5) ~trip ()
    else if Rng.chance rng 0.4 then
      Shapes.reduction ~rng ~name ~width:(Rng.int_in rng 8 14) ~trip ()
    else
      Shapes.wide_parallel ~rng ~name
        ~lanes:(Rng.int_in rng 7 11)
        ~depth:(Rng.int_in rng 2 3)
        ~merge:(Rng.chance rng 0.5) ~trip ()

let generate_class rng spec target idx =
  let rec go tries =
    let loop = attempt rng spec target idx in
    if classify loop = target || tries <= 0 then loop else go (tries - 1)
  in
  go 50

let loops ?n_loops ~seed spec =
  let n = Option.value n_loops ~default:spec.default_loops in
  let rng = Rng.create (seed lxor Hashtbl.hash spec.name) in
  (* Distribute the loop count across classes proportionally to the
     Table 2 shares (at least one loop per class with a nonzero
     share). *)
  let counts =
    List.map
      (fun (cls, share) ->
        let c =
          if share <= 0.0 then 0
          else max 1 (int_of_float (Float.round (share *. float_of_int n)))
        in
        (cls, share, c))
      [ (Res, spec.res_share); (Border, spec.border_share); (Rec, spec.rec_share) ]
  in
  List.concat_map
    (fun (cls, share, count) ->
      List.init count (fun k ->
          let idx =
            (match cls with Res -> 0 | Border -> 1000 | Rec -> 2000) + k
          in
          let loop = generate_class rng spec cls idx in
          (* Split the class share evenly across its loops. *)
          let weight = share /. float_of_int count in
          { loop with Loop.weight = max weight 1e-6 }))
    counts

let benchmarks ?n_loops ?(seed = 42) () =
  List.map (fun spec -> (spec.name, loops ?n_loops ~seed spec)) all

let table2_row machine loops =
  let shares = [| 0.0; 0.0; 0.0 |] in
  List.iter
    (fun (loop : Loop.t) ->
      let idx =
        match Mii.classify machine loop.Loop.ddg with
        | Mii.Resource_constrained -> 0
        | Mii.Borderline -> 1
        | Mii.Recurrence_constrained -> 2
      in
      shares.(idx) <- shares.(idx) +. loop.Loop.weight)
    loops;
  let total = shares.(0) +. shares.(1) +. shares.(2) in
  if total <= 0.0 then (0.0, 0.0, 0.0)
  else (shares.(0) /. total, shares.(1) /. total, shares.(2) /. total)
