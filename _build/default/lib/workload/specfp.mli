(** Synthetic stand-ins for the SPECfp2000 loop populations.

    The paper evaluates >4000 software-pipelined loops from ten Fortran
    SPECfp2000 benchmarks; the proprietary loop bodies are replaced by
    synthetic populations whose *constraint-class mix matches Table 2 of
    the paper* — the share of execution time spent in
    resource-constrained (recMII < resMII), borderline
    (resMII <= recMII < 1.3 resMII) and recurrence-constrained
    (1.3 resMII <= recMII) loops, verified against the paper's 4-cluster
    machine — plus the per-benchmark characteristics the §5.2 discussion
    attributes the results to (critical-recurrence size, trip counts,
    register pressure). *)

open Hcv_ir

type spec = {
  name : string;
  res_share : float;  (** Table 2 column 1 *)
  border_share : float;  (** Table 2 column 2 *)
  rec_share : float;  (** Table 2 column 3 *)
  small_rec : bool;
      (** critical recurrences contain few instructions (sixtrack,
          facerec, lucas) as opposed to many (fma3d, apsi) *)
  trip : int;  (** typical iteration count (applu's loops run few) *)
  reg_heavy : bool;
      (** include register-pressure-heavy loops (swim, mgrid) *)
  default_loops : int;
}

val all : spec list
(** The ten benchmarks, in Table 2 order. *)

val find : string -> spec option

val loops : ?n_loops:int -> seed:int -> spec -> Loop.t list
(** Generate the loop population: deterministic in [seed]; per-loop
    [weight]s realise the Table 2 shares.  Every generated loop's class
    is verified against the paper machine; generation resamples until
    the class matches (with a bounded number of attempts per loop). *)

val benchmarks : ?n_loops:int -> ?seed:int -> unit -> (string * Loop.t list) list
(** All ten populations ([seed] defaults to 42). *)

val table2_row : Hcv_machine.Machine.t -> Loop.t list -> float * float * float
(** Measured execution-time shares (resource, borderline, recurrence)
    of a population on a machine — the reproduction of Table 2. *)
