lib/energy/units.ml: Activity Format Params
