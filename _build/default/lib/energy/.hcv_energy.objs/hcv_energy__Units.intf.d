lib/energy/units.mli: Activity Format Params
