lib/energy/activity.mli: Format
