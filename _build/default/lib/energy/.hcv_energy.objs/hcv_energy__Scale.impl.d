lib/energy/scale.ml:
