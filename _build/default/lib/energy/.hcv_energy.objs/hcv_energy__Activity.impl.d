lib/energy/activity.ml: Array Format
