lib/energy/scale.mli:
