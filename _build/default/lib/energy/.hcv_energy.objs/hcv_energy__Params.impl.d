lib/energy/params.ml: Format Printf
