lib/energy/model.ml: Activity Alpha_power Array Comp Format Hcv_machine Machine Opconfig Params Printf Scale Units
