lib/energy/params.mli: Format
