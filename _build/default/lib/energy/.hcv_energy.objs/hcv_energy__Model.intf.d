lib/energy/model.mli: Activity Format Hcv_machine Params Units
