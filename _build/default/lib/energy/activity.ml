type t = {
  exec_time_ns : float;
  per_cluster_ins_energy : float array;
  n_comms : float;
  n_mem : float;
}

let make ~exec_time_ns ~per_cluster_ins_energy ~n_comms ~n_mem =
  if exec_time_ns <= 0.0 then invalid_arg "Activity.make: non-positive time";
  if n_comms < 0.0 || n_mem < 0.0 then
    invalid_arg "Activity.make: negative count";
  Array.iter
    (fun e -> if e < 0.0 then invalid_arg "Activity.make: negative energy")
    per_cluster_ins_energy;
  { exec_time_ns; per_cluster_ins_energy; n_comms; n_mem }

let total_ins_energy t =
  Array.fold_left ( +. ) 0.0 t.per_cluster_ins_energy

let scale t k =
  {
    exec_time_ns = t.exec_time_ns *. k;
    per_cluster_ins_energy = Array.map (fun e -> e *. k) t.per_cluster_ins_energy;
    n_comms = t.n_comms *. k;
    n_mem = t.n_mem *. k;
  }

let add a b =
  if Array.length a.per_cluster_ins_energy <> Array.length b.per_cluster_ins_energy
  then invalid_arg "Activity.add: cluster arity mismatch";
  {
    exec_time_ns = a.exec_time_ns +. b.exec_time_ns;
    per_cluster_ins_energy =
      Array.mapi
        (fun i e -> e +. b.per_cluster_ins_energy.(i))
        a.per_cluster_ins_energy;
    n_comms = a.n_comms +. b.n_comms;
    n_mem = a.n_mem +. b.n_mem;
  }

let zero ~n_clusters =
  {
    exec_time_ns = 0.0;
    per_cluster_ins_energy = Array.make n_clusters 0.0;
    n_comms = 0.0;
    n_mem = 0.0;
  }

let pp ppf t =
  Format.fprintf ppf "activity{t=%.1fns ins_e=%.1f comms=%.0f mem=%.0f}"
    t.exec_time_ns (total_ins_energy t) t.n_comms t.n_mem
