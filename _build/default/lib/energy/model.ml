open Hcv_machine

type breakdown = {
  dyn_cluster : float;
  dyn_icn : float;
  dyn_cache : float;
  stat_cluster : float;
  stat_icn : float;
  stat_cache : float;
}

let total b =
  b.dyn_cluster +. b.dyn_icn +. b.dyn_cache +. b.stat_cluster +. b.stat_icn
  +. b.stat_cache

type ctx = {
  params : Params.t;
  units : Units.t;
  alpha : Alpha_power.params;
  vdd_ref : float;
  vth_ref : float;
}

let ctx ?(alpha = Alpha_power.default) ?(vdd_ref = 1.0) ?(vth_ref = 0.25)
    ~params ~units () =
  { params; units; alpha; vdd_ref; vth_ref }

let factors ctx config comp =
  let vdd = Opconfig.vdd config comp in
  match Opconfig.vth ~params:ctx.alpha config comp with
  | None ->
    invalid_arg
      (Printf.sprintf "Model.energy: unrealisable domain %s"
         (Comp.to_string comp))
  | Some vth ->
    ( Scale.delta ~vdd ~vdd_ref:ctx.vdd_ref,
      Scale.sigma ~vdd ~vth ~vdd_ref:ctx.vdd_ref ~vth_ref:ctx.vth_ref () )

let energy ctx ~config (act : Activity.t) =
  let n_clusters = Machine.n_clusters config.Opconfig.machine in
  if Array.length act.Activity.per_cluster_ins_energy <> n_clusters then
    invalid_arg "Model.energy: activity/config cluster arity mismatch";
  let u = ctx.units in
  let dyn_cluster = ref 0.0 and stat_cluster = ref 0.0 in
  for i = 0 to n_clusters - 1 do
    let delta, sigma = factors ctx config (Comp.Cluster i) in
    dyn_cluster :=
      !dyn_cluster
      +. (u.Units.e_ins *. delta *. act.Activity.per_cluster_ins_energy.(i));
    stat_cluster :=
      !stat_cluster
      +. (sigma *. u.Units.p_stat_cluster *. act.Activity.exec_time_ns)
  done;
  let delta_icn, sigma_icn = factors ctx config Comp.Icn in
  let delta_cache, sigma_cache = factors ctx config Comp.Cache in
  {
    dyn_cluster = !dyn_cluster;
    dyn_icn = u.Units.e_comm *. delta_icn *. act.Activity.n_comms;
    dyn_cache = u.Units.e_access *. delta_cache *. act.Activity.n_mem;
    stat_cluster = !stat_cluster;
    stat_icn = sigma_icn *. u.Units.p_stat_icn *. act.Activity.exec_time_ns;
    stat_cache = sigma_cache *. u.Units.p_stat_cache *. act.Activity.exec_time_ns;
  }

let ed2 ctx ~config act =
  let e = total (energy ctx ~config act) in
  let d = act.Activity.exec_time_ns in
  e *. d *. d

let pp_breakdown ppf b =
  Format.fprintf ppf
    "E{dyn: cl=%.4f icn=%.4f cache=%.4f | stat: cl=%.4f icn=%.4f cache=%.4f | total=%.4f}"
    b.dyn_cluster b.dyn_icn b.dyn_cache b.stat_cluster b.stat_icn b.stat_cache
    (total b)
