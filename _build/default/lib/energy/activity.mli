(** Activity counts of one program execution — the quantities the §3.1
    energy model multiplies by per-event unit energies.

    An activity record comes either from profiling the reference
    homogeneous machine (then [per_cluster_ins_energy] reflects that
    schedule's cluster assignment), from the compile-time estimator for
    a candidate heterogeneous configuration, or from the cycle
    simulator. *)

type t = {
  exec_time_ns : float;  (** total execution time *)
  per_cluster_ins_energy : float array;
      (** for each cluster, the summed Table-1 relative energies of the
          dynamic instructions it executed (class-refined version of
          [nIns * p_Ci]) *)
  n_comms : float;  (** inter-cluster communications (bus transfers) *)
  n_mem : float;  (** memory accesses *)
}

val make :
  exec_time_ns:float -> per_cluster_ins_energy:float array -> n_comms:float
  -> n_mem:float -> t
(** @raise Invalid_argument on negative counts or non-positive time. *)

val total_ins_energy : t -> float
val scale : t -> float -> t
(** Multiply every count and the time by a factor (used to weight loops
    by execution share). *)

val add : t -> t -> t
(** Component-wise sum (clusters arrays must agree in length). *)

val zero : n_clusters:int -> t

val pp : Format.formatter -> t -> unit
