(** Voltage/frequency scaling factors for energy (paper §3.1.1-3.1.2).

    For two identically designed components at different operating
    points, dynamic energy per event scales as delta = (Vdd/Vdd0)^2 and
    static power scales as
    sigma = 10^((Vth0 - Vth)/S) * (Vdd/Vdd0), with S the subthreshold
    swing (V per decade of leakage current). *)

val subthreshold_swing : float
(** 0.1 V/decade, a standard value for the paper's era. *)

val delta : vdd:float -> vdd_ref:float -> float
(** Dynamic-energy scaling factor. *)

val sigma :
  ?s:float -> vdd:float -> vth:float -> vdd_ref:float -> vth_ref:float -> unit
  -> float
(** Static-power scaling factor; [s] defaults to
    {!subthreshold_swing}. *)
