(** Energy breakdown of the reference homogeneous microarchitecture
    (paper §5): which fraction of total energy each component consumes,
    and which fraction of each component's energy is leakage.

    Defaults are the paper's baseline: one third of the energy is
    consumed by the memory hierarchy and 10% by the ICN; leakage
    accounts for one third of cluster energy, two thirds of cache energy
    and 10% of ICN energy.  Figures 8 and 9 of the paper vary these. *)

type t = {
  frac_icn : float;  (** share of total energy consumed by the ICN *)
  frac_cache : float;  (** share of total energy consumed by the cache *)
  leak_cluster : float;  (** leakage share within cluster energy *)
  leak_icn : float;
  leak_cache : float;
}

val make :
  ?frac_icn:float -> ?frac_cache:float -> ?leak_cluster:float
  -> ?leak_icn:float -> ?leak_cache:float -> unit -> t
(** @raise Invalid_argument if any share is outside [\[0,1\]] or the
    component shares sum to [>= 1]. *)

val default : t

val frac_cluster : t -> float
(** [1 - frac_icn - frac_cache]. *)

val pp : Format.formatter -> t -> unit
