type t = {
  frac_icn : float;
  frac_cache : float;
  leak_cluster : float;
  leak_icn : float;
  leak_cache : float;
}

let check_share what v =
  if v < 0.0 || v > 1.0 then
    invalid_arg (Printf.sprintf "Params.make: %s=%g outside [0,1]" what v)

let make ?(frac_icn = 0.10) ?(frac_cache = 1.0 /. 3.0)
    ?(leak_cluster = 1.0 /. 3.0) ?(leak_icn = 0.10) ?(leak_cache = 2.0 /. 3.0)
    () =
  check_share "frac_icn" frac_icn;
  check_share "frac_cache" frac_cache;
  check_share "leak_cluster" leak_cluster;
  check_share "leak_icn" leak_icn;
  check_share "leak_cache" leak_cache;
  if frac_icn +. frac_cache >= 1.0 then
    invalid_arg "Params.make: icn and cache shares leave nothing for clusters";
  { frac_icn; frac_cache; leak_cluster; leak_icn; leak_cache }

let default = make ()
let frac_cluster t = 1.0 -. t.frac_icn -. t.frac_cache

let pp ppf t =
  Format.fprintf ppf
    "params{icn=%.2f cache=%.2f | leak: cl=%.2f icn=%.2f cache=%.2f}"
    t.frac_icn t.frac_cache t.leak_cluster t.leak_icn t.leak_cache
