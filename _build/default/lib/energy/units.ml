type t = {
  e_ins : float;
  e_comm : float;
  e_access : float;
  p_stat_cluster : float;
  p_stat_icn : float;
  p_stat_cache : float;
}

let safe_div num den = if den <= 0.0 then 0.0 else num /. den

let of_reference ~params ~n_clusters (ref_act : Activity.t) =
  if n_clusters < 1 then invalid_arg "Units.of_reference: n_clusters < 1";
  let total = 1.0 in
  let e_cluster = Params.frac_cluster params *. total in
  let e_icn = params.Params.frac_icn *. total in
  let e_cache = params.Params.frac_cache *. total in
  let t = ref_act.Activity.exec_time_ns in
  {
    e_ins =
      safe_div
        ((1.0 -. params.Params.leak_cluster) *. e_cluster)
        (Activity.total_ins_energy ref_act);
    e_comm =
      safe_div ((1.0 -. params.Params.leak_icn) *. e_icn) ref_act.Activity.n_comms;
    e_access =
      safe_div
        ((1.0 -. params.Params.leak_cache) *. e_cache)
        ref_act.Activity.n_mem;
    p_stat_cluster =
      safe_div (params.Params.leak_cluster *. e_cluster) (t *. float_of_int n_clusters);
    p_stat_icn = safe_div (params.Params.leak_icn *. e_icn) t;
    p_stat_cache = safe_div (params.Params.leak_cache *. e_cache) t;
  }

let pp ppf t =
  Format.fprintf ppf
    "units{e_ins=%.3g e_comm=%.3g e_acc=%.3g | Pstat: cl=%.3g icn=%.3g cache=%.3g}"
    t.e_ins t.e_comm t.e_access t.p_stat_cluster t.p_stat_icn t.p_stat_cache
