(** The §3.1 energy model: energy of an arbitrary configuration in terms
    of the reference homogeneous machine's unit energies.

      E_het = e_ins * sum_C delta_C * InsEnergy_C
            + e_comm * nComms * delta_ICN
            + e_access * nMem * delta_cache
            + Texec * ( sum_C sigma_C * Pstat_cluster
                      + sigma_ICN * Pstat_ICN
                      + sigma_cache * Pstat_cache )

    where delta/sigma are the {!Scale} factors of each domain's
    operating point relative to the reference point. *)

type breakdown = {
  dyn_cluster : float;
  dyn_icn : float;
  dyn_cache : float;
  stat_cluster : float;
  stat_icn : float;
  stat_cache : float;
}

val total : breakdown -> float

type ctx = {
  params : Params.t;
  units : Units.t;
  alpha : Hcv_machine.Alpha_power.params;
  vdd_ref : float;
  vth_ref : float;
}

val ctx :
  ?alpha:Hcv_machine.Alpha_power.params -> ?vdd_ref:float -> ?vth_ref:float
  -> params:Params.t -> units:Units.t -> unit -> ctx
(** Reference voltages default to the paper's 1 V / 0.25 V. *)

val energy : ctx -> config:Hcv_machine.Opconfig.t -> Activity.t -> breakdown
(** Energy of executing the given activity on [config].
    @raise Invalid_argument if some domain of [config] is not realisable
    (no valid threshold voltage — callers must filter configurations
    with {!Hcv_machine.Opconfig.realisable} first). *)

val ed2 : ctx -> config:Hcv_machine.Opconfig.t -> Activity.t -> float
(** Energy-delay-squared: [total energy * (exec_time_ns)^2]. *)

val pp_breakdown : Format.formatter -> breakdown -> unit
