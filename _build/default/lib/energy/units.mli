(** Per-event unit energies of the reference homogeneous machine.

    The §3.1 model expresses every configuration's energy in terms of
    six reference quantities: the dynamic energy of one instruction /
    one communication / one memory access, and the static power of one
    cluster / the ICN / the cache.  We normalise the reference run's
    total energy to 1.0 and solve the units from the breakdown
    fractions in {!Params} and the reference activity counts, so all
    downstream energies are in units of "reference-run total energy". *)

type t = {
  e_ins : float;
      (** dynamic energy per unit of Table-1 relative instruction
          energy (an integer add costs exactly [e_ins]) *)
  e_comm : float;  (** dynamic energy of one bus communication *)
  e_access : float;  (** dynamic energy of one cache access *)
  p_stat_cluster : float;  (** static power of one cluster, per ns *)
  p_stat_icn : float;
  p_stat_cache : float;
}

val of_reference : params:Params.t -> n_clusters:int -> Activity.t -> t
(** Solve the units from the reference homogeneous activity.  Events
    with zero reference count get a zero unit (they contribute no energy
    in any configuration under this model).
    @raise Invalid_argument if [n_clusters < 1]. *)

val pp : Format.formatter -> t -> unit
