let subthreshold_swing = 0.1

let delta ~vdd ~vdd_ref =
  let r = vdd /. vdd_ref in
  r *. r

let sigma ?(s = subthreshold_swing) ~vdd ~vth ~vdd_ref ~vth_ref () =
  (10.0 ** ((vth_ref -. vth) /. s)) *. (vdd /. vdd_ref)
