lib/support/tablefmt.ml: Buffer List Printf String
