lib/support/q.ml: Float Format Stdlib
