lib/support/rng.mli:
