lib/support/listx.mli:
