lib/support/q.mli: Format
