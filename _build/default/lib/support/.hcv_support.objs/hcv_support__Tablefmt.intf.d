lib/support/tablefmt.mli:
