(** Deterministic pseudo-random number generation (splitmix64).

    Every stochastic component of the workload generator draws from this
    generator with an explicit seed, so the whole evaluation pipeline is
    reproducible bit-for-bit and independent of [Stdlib.Random] state. *)

type t

val create : int -> t
(** [create seed] is a fresh generator.  Equal seeds give equal
    streams. *)

val copy : t -> t
val split : t -> t
(** [split t] advances [t] and returns an independent generator, for
    giving sub-components their own streams. *)

val next : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive.
    @raise Invalid_argument if [hi < lo]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val chance : t -> float -> bool
(** [chance t p] is true with probability [p] (clamped to [\[0,1\]]). *)

val pick : t -> 'a list -> 'a
(** Uniform choice. @raise Invalid_argument on the empty list. *)

val pick_weighted : t -> ('a * float) list -> 'a
(** Choice proportional to the (non-negative) weights.
    @raise Invalid_argument if the list is empty or all weights are 0. *)

val shuffle : t -> 'a list -> 'a list
(** Fisher–Yates shuffle. *)
