type align = Left | Right | Center

type row = Cells of string list | Sep

type t = {
  title : string option;
  headers : string list;
  aligns : align list;
  mutable rows : row list; (* reversed *)
}

let create ?title cols =
  { title; headers = List.map fst cols; aligns = List.map snd cols; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Tablefmt.add_row: arity mismatch";
  t.rows <- Cells cells :: t.rows

let add_sep t = t.rows <- Sep :: t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s
    | Center ->
      let l = (width - n) / 2 in
      String.make l ' ' ^ s ^ String.make (width - n - l) ' '

let render t =
  let rows = List.rev t.rows in
  let widths =
    List.fold_left
      (fun ws row ->
        match row with
        | Sep -> ws
        | Cells cs -> List.map2 (fun w c -> max w (String.length c)) ws cs)
      (List.map String.length t.headers)
      rows
  in
  let buf = Buffer.create 256 in
  let rule () =
    List.iter (fun w -> Buffer.add_string buf ("+" ^ String.make (w + 2) '-')) widths;
    Buffer.add_string buf "+\n"
  in
  let line cells =
    List.iteri
      (fun i c ->
        let w = List.nth widths i in
        let a = List.nth t.aligns i in
        Buffer.add_string buf ("| " ^ pad a w c ^ " "))
      cells;
    Buffer.add_string buf "|\n"
  in
  (match t.title with
  | None -> ()
  | Some title -> Buffer.add_string buf (title ^ "\n"));
  rule ();
  line t.headers;
  rule ();
  List.iter (function Sep -> rule () | Cells cs -> line cs) rows;
  rule ();
  Buffer.contents buf

let print t = print_string (render t)

let cell_f v = Printf.sprintf "%.3f" v
let cell_pct v = Printf.sprintf "%.2f%%" (100.0 *. v)
