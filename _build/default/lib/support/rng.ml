type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

let next t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let seed = next t in
  { state = seed }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: non-positive bound";
  (* Keep 62 bits so the conversion to a native int stays positive. *)
  let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  v mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  bound *. (v /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (next t) 1L = 1L

let chance t p =
  let p = Float.max 0.0 (Float.min 1.0 p) in
  float t 1.0 < p

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | l -> List.nth l (int t (List.length l))

let pick_weighted t pairs =
  if pairs = [] then invalid_arg "Rng.pick_weighted: empty list";
  let total = List.fold_left (fun acc (_, w) -> acc +. Float.max 0.0 w) 0.0 pairs in
  if total <= 0.0 then invalid_arg "Rng.pick_weighted: all weights zero";
  let r = float t total in
  let rec go acc = function
    | [] -> fst (List.nth pairs (List.length pairs - 1))
    | (x, w) :: rest ->
      let acc = acc +. Float.max 0.0 w in
      if r < acc then x else go acc rest
  in
  go 0.0 pairs

let shuffle t l =
  let a = Array.of_list l in
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a
