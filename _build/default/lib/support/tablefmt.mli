(** Plain-text table rendering for benchmark and report output. *)

type align = Left | Right | Center

type t

val create : ?title:string -> (string * align) list -> t
(** [create cols] is an empty table with the given column headers. *)

val add_row : t -> string list -> unit
(** @raise Invalid_argument if the row arity differs from the header. *)

val add_sep : t -> unit
(** Insert a horizontal separator before the next row. *)

val render : t -> string
val print : t -> unit
(** [render]/[print] draw the table with box-drawing-free ASCII rules. *)

val cell_f : float -> string
(** Format a float with 3 decimals, the project-wide table convention. *)

val cell_pct : float -> string
(** Format a ratio as a percentage with 2 decimals, e.g. [0.154] ->
    ["15.40%"]. *)
