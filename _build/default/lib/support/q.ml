type t = { num : int; den : int }

let rec gcd_pos a b = if b = 0 then a else gcd_pos b (a mod b)
let gcd a b = gcd_pos (abs a) (abs b)
let lcm a b = if a = 0 || b = 0 then 0 else abs (a / gcd a b * b)

let make num den =
  if den = 0 then invalid_arg "Q.make: zero denominator";
  let s = if den < 0 then -1 else 1 in
  let num = s * num and den = s * den in
  let g = gcd num den in
  if g = 0 then { num = 0; den = 1 } else { num = num / g; den = den / g }

let of_int n = { num = n; den = 1 }
let zero = of_int 0
let one = of_int 1
let num t = t.num
let den t = t.den
let add a b = make ((a.num * b.den) + (b.num * a.den)) (a.den * b.den)
let sub a b = make ((a.num * b.den) - (b.num * a.den)) (a.den * b.den)
let mul a b = make (a.num * b.num) (a.den * b.den)

let div a b =
  if b.num = 0 then raise Division_by_zero;
  make (a.num * b.den) (a.den * b.num)

let neg a = { a with num = -a.num }

let inv a =
  if a.num = 0 then raise Division_by_zero;
  make a.den a.num

let compare a b = Stdlib.compare (a.num * b.den) (b.num * a.den)
let equal a b = a.num = b.num && a.den = b.den
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b
let is_integer t = t.den = 1

let floor t =
  if t.num >= 0 then t.num / t.den
  else if t.num mod t.den = 0 then t.num / t.den
  else (t.num / t.den) - 1

let ceil t = -floor (neg t)
let sign t = Stdlib.compare t.num 0
let to_float t = float_of_int t.num /. float_of_int t.den

let of_float_approx ?(max_den = 1_000_000) f =
  if Float.is_nan f || Float.is_integer f then of_int (int_of_float f)
  else begin
    let negative = f < 0.0 in
    let f = Float.abs f in
    let a0 = int_of_float (Float.floor f) in
    let frac = f -. float_of_int a0 in
    (* Continued-fraction convergents p/q with q bounded by max_den;
       [x >= 1] is the reciprocal of the remaining fractional part. *)
    let rec go x p_prev q_prev p q depth =
      let a = int_of_float (Float.floor x) in
      let p' = (a * p) + p_prev and q' = (a * q) + q_prev in
      if q' > max_den || depth > 64 then (p, q)
      else
        let rem = x -. float_of_int a in
        if rem < 1e-12 then (p', q')
        else go (1.0 /. rem) p q p' q' (depth + 1)
    in
    let p, q =
      if frac < 1e-12 then (a0, 1) else go (1.0 /. frac) 1 0 a0 1 0
    in
    make (if negative then -p else p) q
  end

let mul_int t n = make (t.num * n) t.den
let div_int t n = make t.num (t.den * n)

let pp ppf t =
  if t.den = 1 then Format.fprintf ppf "%d" t.num
  else Format.fprintf ppf "%d/%d" t.num t.den

let to_string t = Format.asprintf "%a" pp t

(* Comparison operators over [t] come last so that the int/float
   comparisons above keep their Stdlib meaning. *)
let ( < ) a b = compare a b < 0
let ( <= ) a b = compare a b <= 0
let ( > ) a b = compare a b > 0
let ( >= ) a b = compare a b >= 0
