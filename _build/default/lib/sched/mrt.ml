open Hcv_ir
open Hcv_machine

type cluster_table = {
  ii : int;
  capacity : Opcode.fu_kind -> int;
  used : (Opcode.fu_kind, int array) Hashtbl.t;
}

type t = {
  clusters : cluster_table array;
  bus_ii : int;
  bus_capacity : int;
  bus_used : int array;
}

let create machine clocking =
  if Machine.n_clusters machine <> Clocking.n_clusters clocking then
    invalid_arg "Mrt.create: cluster count mismatch";
  let clusters =
    Array.mapi
      (fun i cluster ->
        let ii = clocking.Clocking.cluster_ii.(i) in
        let used = Hashtbl.create 4 in
        List.iter
          (fun kind -> Hashtbl.replace used kind (Array.make ii 0))
          Opcode.all_fu_kinds;
        { ii; capacity = Cluster.fu_count cluster; used })
      machine.Machine.clusters
  in
  {
    clusters;
    bus_ii = clocking.Clocking.icn_ii;
    bus_capacity = machine.Machine.icn.Icn.buses;
    bus_used = Array.make clocking.Clocking.icn_ii 0;
  }

let slot_of ii cycle =
  if cycle < 0 then invalid_arg "Mrt: negative cycle";
  cycle mod ii

let row ct kind =
  match Hashtbl.find_opt ct.used kind with
  | Some r -> r
  | None -> invalid_arg "Mrt: unknown fu kind"

let fu_available t ~cluster ~kind ~cycle =
  let ct = t.clusters.(cluster) in
  (row ct kind).(slot_of ct.ii cycle) < ct.capacity kind

let fu_reserve t ~cluster ~kind ~cycle =
  let ct = t.clusters.(cluster) in
  let r = row ct kind in
  let s = slot_of ct.ii cycle in
  if r.(s) >= ct.capacity kind then invalid_arg "Mrt.fu_reserve: slot full";
  r.(s) <- r.(s) + 1

let fu_release t ~cluster ~kind ~cycle =
  let ct = t.clusters.(cluster) in
  let r = row ct kind in
  let s = slot_of ct.ii cycle in
  if r.(s) <= 0 then invalid_arg "Mrt.fu_release: slot empty";
  r.(s) <- r.(s) - 1

let bus_available t ~cycle = t.bus_used.(slot_of t.bus_ii cycle) < t.bus_capacity

let bus_reserve t ~cycle =
  let s = slot_of t.bus_ii cycle in
  if t.bus_used.(s) >= t.bus_capacity then
    invalid_arg "Mrt.bus_reserve: slot full";
  t.bus_used.(s) <- t.bus_used.(s) + 1

let bus_release t ~cycle =
  let s = slot_of t.bus_ii cycle in
  if t.bus_used.(s) <= 0 then invalid_arg "Mrt.bus_release: slot empty";
  t.bus_used.(s) <- t.bus_used.(s) - 1

let fu_used t ~cluster ~kind ~slot = (row t.clusters.(cluster) kind).(slot)
let bus_used t ~slot = t.bus_used.(slot)

let clear t =
  Array.iter
    (fun ct -> Hashtbl.iter (fun _ r -> Array.fill r 0 (Array.length r) 0) ct.used)
    t.clusters;
  Array.fill t.bus_used 0 (Array.length t.bus_used) 0

let pp ppf t =
  Format.fprintf ppf "@[<v>mrt:";
  Array.iteri
    (fun i ct ->
      Format.fprintf ppf "@,  C%d (II=%d):" i ct.ii;
      List.iter
        (fun kind ->
          let r = row ct kind in
          Format.fprintf ppf " %a=[%s]" Opcode.pp_fu kind
            (String.concat ";" (Array.to_list (Array.map string_of_int r))))
        Opcode.all_fu_kinds)
    t.clusters;
  Format.fprintf ppf "@,  bus (II=%d cap=%d): [%s]@]" t.bus_ii t.bus_capacity
    (String.concat ";" (Array.to_list (Array.map string_of_int t.bus_used)))
