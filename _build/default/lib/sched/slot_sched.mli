(** Slot assignment: iterative modulo scheduling of a partitioned loop
    onto per-domain modulo reservation tables.

    Given a clocking (IT + per-domain IIs) and a cluster assignment,
    place every instruction at an absolute cycle of its cluster,
    scheduling inter-cluster value transfers on the register buses.
    Follows Rau's iterative modulo scheduling: instructions are placed
    highest-priority-first (longest time-path through the DDG under the
    current IT); when no conflict-free slot exists in one II window, the
    instruction is force-placed and conflicting instructions are
    evicted, within an operation budget. *)

open Hcv_ir
open Hcv_machine

type failure =
  | Budget_exhausted  (** eviction budget spent — raise the IT *)
  | Positive_cycle
      (** a recurrence cannot meet the IT with this partition (some of
          its instructions sit on too-slow clusters) *)
  | Register_pressure  (** schedule found but lifetimes exceed registers *)

val failure_to_string : failure -> string

val run :
  machine:Machine.t -> clocking:Clocking.t -> loop:Loop.t
  -> assignment:int array -> ?budget_factor:int -> unit
  -> (Schedule.t, failure) result
(** [budget_factor] (default 16) bounds total placement attempts at
    [budget_factor * n_instrs].  A returned schedule always passes
    {!Schedule.validate}. *)
