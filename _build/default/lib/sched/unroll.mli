(** Loop unrolling (paper §5.3).

    Unrolling multiplies the MIT of a loop, which shrinks the *relative*
    penalty of increasing the IT for synchronisation when the machine
    supports few frequencies, and the unroll factor can be chosen so
    that the resulting IT synchronises directly.

    Unrolling by [factor] k replicates the body k times: copy [c] of an
    instruction executes original iteration [K*k + c] during unrolled
    iteration [K].  A dependence of distance [d] from [src] to [dst]
    becomes, for each destination copy [c], an edge from source copy
    [(c - d) mod k] with distance [(d - c + c') / k]. *)

open Hcv_ir

val ddg : factor:int -> Ddg.t -> Ddg.t
(** @raise Invalid_argument if [factor < 1]. *)

val loop : factor:int -> Loop.t -> Loop.t
(** Unrolls the body and divides the trip count (rounding up; the
    remainder iterations a production compiler would peel into an
    epilogue loop are charged as one extra unrolled iteration).  The
    name gains an [__x<factor>] suffix.  [factor = 1] returns the loop
    unchanged. *)

val copy_of : factor:int -> n_orig:int -> Instr.id -> int * Instr.id
(** [copy_of ~factor ~n_orig id] maps an unrolled instruction id back to
    [(copy index, original id)]. *)
