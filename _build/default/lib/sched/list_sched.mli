(** Acyclic list scheduling — the non-pipelined baseline.

    The paper notes (§5) that loops whose DDG collapses into one big
    recurrence (e.g. pointer-heavy C code) gain nothing from modulo
    scheduling and are better served by acyclic scheduling.  This module
    schedules one iteration at a time on the clustered machine: greedy
    critical-path list scheduling with on-the-fly cluster selection
    (earliest-finish cluster, accounting for bus transfer delays).

    The result is returned as a degenerate modulo schedule whose II
    equals the iteration length, so all downstream tooling (validator,
    simulator, code emission, energy accounting) applies unchanged. *)

open Hcv_support
open Hcv_ir
open Hcv_machine

val run :
  machine:Machine.t -> cycle_time:Q.t -> loop:Loop.t -> unit
  -> (Schedule.t, string) result
(** Iterations do not overlap: consecutive iterations are separated by
    the full iteration length. *)

val speedup_of_pipelining :
  machine:Machine.t -> cycle_time:Q.t -> loop:Loop.t -> unit
  -> (float, string) result
(** Ratio of the acyclic schedule's execution time to the modulo
    schedule's, at the loop's trip count — how much software pipelining
    buys on this loop. *)
