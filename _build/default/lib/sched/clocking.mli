(** Per-domain clocking of one modulo-scheduled loop.

    On a heterogeneous machine the initiation interval is no longer a
    single constant: the loop has one initiation *time* IT (in ns), and
    every clock domain X runs at a frequency f_X such that
    II_X = IT * f_X is a positive integer (paper §2.2).  A clocking
    bundles the IT with the per-domain (cycle time, II) pairs chosen for
    the loop.  Domains may be clocked below their configured maximum
    frequency to satisfy the integrality requirement. *)

open Hcv_support
open Hcv_machine

type t = {
  it : Q.t;  (** initiation time, ns *)
  cluster_ii : int array;
  cluster_ct : Q.t array;  (** actual cycle time: [it / ii] *)
  icn_ii : int;
  icn_ct : Q.t;
  cache_ii : int;
  cache_ct : Q.t;
}

val homogeneous : n_clusters:int -> ii:int -> cycle_time:Q.t -> t
(** Single-frequency clocking: every domain at [cycle_time] with the
    same [ii]; [it = ii * cycle_time]. *)

val of_config : config:Opconfig.t -> it:Q.t -> (t, Comp.t) result
(** Select, for each domain of [config], the best (frequency, II) pair
    at initiation time [it] under the machine's frequency grid
    (paper §4): the highest grid frequency [f <= fmax] with [f*it] a
    positive integer.  [Error comp] reports the first domain that cannot
    be synchronised at this [it] (the caller must increase the IT). *)

val n_clusters : t -> int

val ii : t -> Comp.t -> int
(** Initiation interval of one domain, in its own cycles. *)

val ct : t -> Comp.t -> Q.t
(** Actual cycle time of one domain (its maximum stretched to make the
    II integral), ns. *)

val cycle_start : t -> Comp.t -> int -> Q.t
(** Time at which the given absolute cycle of a domain begins. *)

val first_cycle_at_or_after : t -> Comp.t -> Q.t -> int
(** Smallest cycle index [k] with [cycle_start >= time]. *)

val fastest_cluster : t -> int
(** Cluster with the smallest actual cycle time (first on ties). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
