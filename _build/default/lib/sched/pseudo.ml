open Hcv_support
open Hcv_ir
open Hcv_machine

type t = {
  schedule : Schedule.t;
  overflow : int;
  back_violations : int;
  regs_ok : bool;
}

let feasible t = t.overflow = 0 && t.back_violations = 0 && t.regs_ok

let estimate ~machine ~clocking ~loop ~assignment =
  let ddg = loop.Loop.ddg in
  let n = Ddg.n_instrs ddg in
  if Array.length assignment <> n then
    invalid_arg "Pseudo.estimate: assignment arity mismatch";
  let it = clocking.Clocking.it in
  let buslat = machine.Machine.icn.Icn.latency_cycles in
  let mrt = Mrt.create machine clocking in
  let cyc = Array.make n 0 in
  let placed = Array.make n false in
  let overflow = ref 0 in
  (* One transfer per (producer, destination cluster); moving a transfer
     earlier is always safe for already-served consumers. *)
  let transfers : (int * int, int ref) Hashtbl.t = Hashtbl.create 16 in
  let start_of i =
    Timing.start_time clocking ~cluster:assignment.(i) ~cycle:cyc.(i)
  in
  let def_of_edge (e : Edge.t) =
    (* Source definition time under the edge's latency. *)
    Q.add (start_of e.src)
      (Q.mul_int
         (Timing.eff_ct clocking ~cluster:assignment.(e.src)
            (Ddg.instr ddg e.src))
         e.latency)
  in
  (* Plan (without committing) a bus slot in [earliest, latest]; prefer
     the earliest free cycle. *)
  let find_bus ~earliest ~latest =
    let rec go b = if b > latest then None
      else if Mrt.bus_available mrt ~cycle:b then Some b
      else go (b + 1)
    in
    if earliest > latest then None else go (max 0 earliest)
  in
  (* Serve a cross-cluster value edge for a consumer starting at [need]:
     reuse (or advance) the transfer, or create one.  Returns false when
     no bus slot can make the delivery. *)
  let serve_transfer ~src ~dst_cluster ~need =
    let key = (src, dst_cluster) in
    let def = start_of src in
    let def =
      Q.add def
        (Q.mul_int
           (Timing.eff_ct clocking ~cluster:assignment.(src)
              (Ddg.instr ddg src))
           (Instr.latency (Ddg.instr ddg src)))
    in
    let earliest = Timing.earliest_bus_cycle clocking ~def_time:def in
    let latest = Timing.latest_bus_cycle clocking ~buslat ~need in
    match Hashtbl.find_opt transfers key with
    | Some b when !b <= latest -> true
    | Some b -> (
      (* Existing transfer arrives too late for this consumer; try to
         move it earlier (earlier arrival serves everyone). *)
      match find_bus ~earliest ~latest with
      | Some b' ->
        Mrt.bus_release mrt ~cycle:!b;
        Mrt.bus_reserve mrt ~cycle:b';
        b := b';
        true
      | None -> false)
    | None -> (
      match find_bus ~earliest ~latest with
      | Some b ->
        Mrt.bus_reserve mrt ~cycle:b;
        Hashtbl.replace transfers key (ref b);
        true
      | None -> false)
  in
  (* Greedy placement in topological order of the acyclic subgraph. *)
  List.iter
    (fun i ->
      let c = assignment.(i) in
      let ins = Ddg.instr ddg i in
      let kind = Instr.fu ins in
      let ii = clocking.Clocking.cluster_ii.(c) in
      let ready =
        List.fold_left
          (fun acc (e : Edge.t) ->
            if not placed.(e.src) then acc
            else begin
              let def = def_of_edge e in
              let r =
                if assignment.(e.src) = c then
                  Timing.dep_ready_same clocking ~it ~def_time:def
                    ~distance:e.distance
                else if Edge.carries_value e then
                  (* Earliest conceivable arrival through the bus. *)
                  Q.sub
                    (Timing.bus_arrival clocking ~buslat
                       ~bus_cycle:
                         (Timing.earliest_bus_cycle clocking ~def_time:def))
                    (Q.mul_int it e.distance)
                else
                  Q.sub
                    (Q.add def (Timing.sync_penalty clocking))
                    (Q.mul_int it e.distance)
              in
              Q.max acc r
            end)
          Q.zero (Ddg.preds ddg i)
      in
      let e0 = Timing.earliest_cycle clocking ~cluster:c ~ready in
      let try_cycle k =
        if not (Mrt.fu_available mrt ~cluster:c ~kind ~cycle:k) then false
        else begin
          (* Tentatively adopt cycle k to compute consumer needs. *)
          let prev = cyc.(i) in
          cyc.(i) <- k;
          let ok =
            List.for_all
              (fun (e : Edge.t) ->
                (not placed.(e.src))
                || assignment.(e.src) = c
                || (not (Edge.carries_value e))
                ||
                let need = Q.add (start_of i) (Q.mul_int it e.distance) in
                serve_transfer ~src:e.src ~dst_cluster:c ~need)
              (Ddg.preds ddg i)
          in
          if not ok then cyc.(i) <- prev;
          ok
        end
      in
      let rec place k tries =
        if tries = 0 then begin
          (* Overbook at the dependence-ready cycle. *)
          incr overflow;
          cyc.(i) <- e0
        end
        else if try_cycle k then Mrt.fu_reserve mrt ~cluster:c ~kind ~cycle:k
        else place (k + 1) (tries - 1)
      in
      place e0 (max ii 1);
      placed.(i) <- true)
    (Ddg.topo_order ddg);
  (* Loop-carried dependences: check, and reserve buses for the value
     transfers the greedy forward pass did not see. *)
  let back_violations = ref 0 in
  List.iter
    (fun (e : Edge.t) ->
      if e.distance > 0 then begin
        let lhs = Q.add (start_of e.dst) (Q.mul_int it e.distance) in
        let def = def_of_edge e in
        if assignment.(e.src) = assignment.(e.dst) then begin
          if Q.( < ) lhs def then incr back_violations
        end
        else if Edge.carries_value e then begin
          if not (serve_transfer ~src:e.src ~dst_cluster:assignment.(e.dst) ~need:lhs)
          then incr back_violations
        end
        else if Q.( < ) lhs (Q.add def (Timing.sync_penalty clocking)) then
          incr back_violations
      end)
    (Ddg.edges ddg);
  let placements =
    Array.init n (fun i ->
        { Schedule.cluster = assignment.(i); cycle = cyc.(i) })
  in
  let transfer_list =
    Hashtbl.fold
      (fun (src, dst_cluster) b acc ->
        { Schedule.src; dst_cluster; bus_cycle = !b } :: acc)
      transfers []
    |> List.sort Stdlib.compare
  in
  let schedule =
    Schedule.make ~loop ~machine ~clocking ~placements ~transfers:transfer_list
  in
  let regs_ok =
    let spans = Schedule.lifetimes_ns schedule in
    Array.for_all2
      (fun span (cl : Cluster.t) ->
        Q.( <= ) span (Q.mul_int it cl.Cluster.registers))
      spans machine.Machine.clusters
  in
  { schedule; overflow = !overflow; back_violations = !back_violations; regs_ok }

let score t =
  (float_of_int t.overflow *. 1e12)
  +. (float_of_int t.back_violations *. 1e9)
  +. (if t.regs_ok then 0.0 else 1e7)
  +. (float_of_int (Schedule.n_comms t.schedule) *. 100.0)
  +. Q.to_float (Schedule.it_length t.schedule)
