open Hcv_support
open Hcv_machine

type t = {
  it : Q.t;
  cluster_ii : int array;
  cluster_ct : Q.t array;
  icn_ii : int;
  icn_ct : Q.t;
  cache_ii : int;
  cache_ct : Q.t;
}

let homogeneous ~n_clusters ~ii ~cycle_time =
  if ii < 1 then invalid_arg "Clocking.homogeneous: ii < 1";
  if Q.sign cycle_time <= 0 then
    invalid_arg "Clocking.homogeneous: non-positive cycle time";
  {
    it = Q.mul_int cycle_time ii;
    cluster_ii = Array.make n_clusters ii;
    cluster_ct = Array.make n_clusters cycle_time;
    icn_ii = ii;
    icn_ct = cycle_time;
    cache_ii = ii;
    cache_ct = cycle_time;
  }

let of_config ~config ~it =
  let machine = config.Opconfig.machine in
  let grid = machine.Machine.grid in
  let pick comp =
    let fmax = Opconfig.fmax config comp in
    match Freqgrid.best_pair grid ~fmax ~it with
    | Some (f, ii) -> Ok (ii, Q.inv f)
    | None -> Error comp
  in
  let n = Machine.n_clusters machine in
  let cluster_ii = Array.make n 0 and cluster_ct = Array.make n Q.one in
  let rec clusters i =
    if i >= n then Ok ()
    else
      match pick (Comp.Cluster i) with
      | Error _ as e -> e
      | Ok (ii, ct) ->
        cluster_ii.(i) <- ii;
        cluster_ct.(i) <- ct;
        clusters (i + 1)
  in
  match clusters 0 with
  | Error c -> Error c
  | Ok () -> (
    match (pick Comp.Icn, pick Comp.Cache) with
    | Error c, _ | _, Error c -> Error c
    | Ok (icn_ii, icn_ct), Ok (cache_ii, cache_ct) ->
      Ok { it; cluster_ii; cluster_ct; icn_ii; icn_ct; cache_ii; cache_ct })

let n_clusters t = Array.length t.cluster_ii

let ii t = function
  | Comp.Cluster i -> t.cluster_ii.(i)
  | Comp.Icn -> t.icn_ii
  | Comp.Cache -> t.cache_ii

let ct t = function
  | Comp.Cluster i -> t.cluster_ct.(i)
  | Comp.Icn -> t.icn_ct
  | Comp.Cache -> t.cache_ct

let cycle_start t comp k = Q.mul_int (ct t comp) k

let first_cycle_at_or_after t comp time =
  let c = ct t comp in
  max 0 (Q.ceil (Q.div time c))

let fastest_cluster t =
  let best = ref 0 in
  Array.iteri
    (fun i c -> if Q.( < ) c t.cluster_ct.(!best) then best := i)
    t.cluster_ct;
  !best

let equal a b =
  Q.equal a.it b.it
  && a.cluster_ii = b.cluster_ii
  && Array.for_all2 Q.equal a.cluster_ct b.cluster_ct
  && a.icn_ii = b.icn_ii && a.cache_ii = b.cache_ii
  && Q.equal a.icn_ct b.icn_ct
  && Q.equal a.cache_ct b.cache_ct

let pp ppf t =
  Format.fprintf ppf "@[<v>clocking IT=%a ns" Q.pp t.it;
  Array.iteri
    (fun i ii ->
      Format.fprintf ppf "@,  C%d: II=%d Tcyc=%a" i ii Q.pp t.cluster_ct.(i))
    t.cluster_ii;
  Format.fprintf ppf "@,  ICN: II=%d Tcyc=%a" t.icn_ii Q.pp t.icn_ct;
  Format.fprintf ppf "@,  cache: II=%d Tcyc=%a@]" t.cache_ii Q.pp t.cache_ct
