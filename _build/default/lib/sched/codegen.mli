(** Software-pipelined code emission.

    A modulo schedule only fixes the kernel; executable code also needs
    the prologue (pipeline fill: stage counts ramp up over SC-1
    iterations) and the epilogue (drain).  This module materialises all
    three as per-cluster VLIW instruction streams — the distributed code
    layout of the paper's Figure 1(b), where each cluster fetches its
    own stream — plus the bus copy operations.

    An emitted operation [op] records which instruction issues, and from
    which pipeline stage (iteration offset) it comes. *)

open Hcv_ir

type op =
  | Instr of { instr : Instr.id; stage : int }
  | Copy of { src : Instr.id; dst_cluster : int; stage : int }
      (** a bus transfer issued by the ICN (shown on its own stream) *)

type word = op list
(** Operations issuing in one cycle of one domain (possibly []). *)

type section = word array
(** Indexed by domain-local cycle. *)

type cluster_code = {
  prologue : section;
  kernel : section;  (** exactly II_C words *)
  epilogue : section;
}

type t = {
  schedule : Schedule.t;
  stage_count : int;  (** SC: concurrently active iterations *)
  clusters : cluster_code array;
  icn : cluster_code;  (** copy operations on the bus domain *)
}

val emit : Schedule.t -> t
(** @raise Invalid_argument on a schedule that fails validation. *)

val kernel_ops : t -> int
(** Total operations in all kernel sections (instructions + copies) —
    one full iteration's worth. *)

val static_ops : t -> int
(** Total emitted operations across prologue, kernel and epilogue — the
    code-size cost of software pipelining. *)

val render : t -> string
(** ASCII listing: per cluster, the three sections with one line per
    cycle. *)

val render_kernel_table : t -> string
(** The kernel as a modulo-slot table (slots x clusters), the view used
    throughout the paper's examples. *)
