open Hcv_support
open Hcv_ir
open Hcv_machine

(* Non-modulo occupancy tables. *)
type tables = {
  fu : (int * Opcode.fu_kind * int, int) Hashtbl.t;
  bus : (int, int) Hashtbl.t;
}

let fu_free tables machine ~cluster ~kind ~cycle =
  Option.value (Hashtbl.find_opt tables.fu (cluster, kind, cycle)) ~default:0
  < Cluster.fu_count (Machine.cluster machine cluster) kind

let fu_take tables ~cluster ~kind ~cycle =
  let key = (cluster, kind, cycle) in
  Hashtbl.replace tables.fu key
    (1 + Option.value (Hashtbl.find_opt tables.fu key) ~default:0)

let bus_free tables machine ~cycle =
  Option.value (Hashtbl.find_opt tables.bus cycle) ~default:0
  < machine.Machine.icn.Icn.buses

let bus_take tables ~cycle =
  Hashtbl.replace tables.bus cycle
    (1 + Option.value (Hashtbl.find_opt tables.bus cycle) ~default:0)

let run ~machine ~cycle_time ~loop () =
  let ddg = loop.Loop.ddg in
  let n = Ddg.n_instrs ddg in
  let n_clusters = Machine.n_clusters machine in
  (* A provisional single-frequency clocking; the II is fixed up once
     the schedule length is known. *)
  let provisional ii = Clocking.homogeneous ~n_clusters ~ii ~cycle_time in
  let clk = provisional 1 (* cycle times only; II unused below *) in
  let buslat = machine.Machine.icn.Icn.latency_cycles in
  let tables = { fu = Hashtbl.create 64; bus = Hashtbl.create 16 } in
  let cluster_of = Array.make n 0 in
  let cycle_of = Array.make n 0 in
  let placed = Array.make n false in
  let transfers : (int * int, int) Hashtbl.t = Hashtbl.create 16 in
  let heights = Ddg.heights ddg in
  (* Priority: height (critical path) descending, then id. *)
  let order =
    List.sort
      (fun a b ->
        match compare heights.(b) heights.(a) with
        | 0 -> compare a b
        | c -> c)
      (Ddg.topo_order ddg)
  in
  (* Process in topological order but prefer high priority among ready
     nodes: a simple ready-list loop. *)
  let in_degree = Array.make n 0 in
  List.iter
    (fun (e : Edge.t) ->
      if e.distance = 0 then in_degree.(e.dst) <- in_degree.(e.dst) + 1)
    (Ddg.edges ddg);
  let ready = ref (List.filter (fun i -> in_degree.(i) = 0) order) in
  let def_time i =
    Timing.def_time clk ~cluster:cluster_of.(i) ~cycle:cycle_of.(i)
      (Ddg.instr ddg i)
  in
  let failure = ref None in
  while !ready <> [] && !failure = None do
    (* Highest node by priority among the ready set. *)
    let i =
      Listx.max_by (fun i -> (heights.(i), -i)) !ready
    in
    ready := List.filter (fun j -> j <> i) !ready;
    let ins = Ddg.instr ddg i in
    let kind = Instr.fu ins in
    (* Evaluate each cluster: earliest feasible start cycle. *)
    let best = ref None in
    for cl = 0 to n_clusters - 1 do
      if Cluster.fu_count (Machine.cluster machine cl) kind > 0 then begin
        (* Ready time from same-iteration predecessors. *)
        let ready_t =
          List.fold_left
            (fun acc (e : Edge.t) ->
              if e.distance > 0 then acc
              else begin
                let def = def_time e.src in
                let t =
                  if cluster_of.(e.src) = cl then def
                  else if Edge.carries_value e then
                    (* Earliest arrival through the bus (slot found
                       later; assume the earliest). *)
                    Timing.bus_arrival clk ~buslat
                      ~bus_cycle:(Timing.earliest_bus_cycle clk ~def_time:def)
                  else Q.add def (Timing.sync_penalty clk)
                in
                Q.max acc t
              end)
            Q.zero (Ddg.preds ddg i)
        in
        let rec find_cycle k =
          if fu_free tables machine ~cluster:cl ~kind ~cycle:k then k
          else find_cycle (k + 1)
        in
        let k = find_cycle (Timing.earliest_cycle clk ~cluster:cl ~ready:ready_t) in
        let finish =
          Q.add
            (Timing.start_time clk ~cluster:cl ~cycle:k)
            (Q.mul_int (Timing.eff_ct clk ~cluster:cl ins) (Instr.latency ins))
        in
        match !best with
        | Some (_, bf) when Q.( <= ) bf finish -> ()
        | Some _ | None -> best := Some ((cl, k), finish)
      end
    done;
    (match !best with
    | None ->
      failure :=
        Some
          (Printf.sprintf "no cluster can execute %s" ins.Instr.name)
    | Some ((cl, k), _) -> (
      cluster_of.(i) <- cl;
      cycle_of.(i) <- k;
      placed.(i) <- true;
      fu_take tables ~cluster:cl ~kind ~cycle:k;
      (* Schedule bus transfers for cross-cluster value preds. *)
      let ok =
        List.for_all
          (fun (e : Edge.t) ->
            e.distance > 0
            || cluster_of.(e.src) = cl
            || (not (Edge.carries_value e))
            ||
            let key = (e.src, cl) in
            Hashtbl.mem transfers key
            ||
            let earliest =
              Timing.earliest_bus_cycle clk ~def_time:(def_time e.src)
            in
            let latest =
              Timing.latest_bus_cycle clk ~buslat
                ~need:(Timing.start_time clk ~cluster:cl ~cycle:k)
            in
            let rec find b =
              if b > latest then None
              else if bus_free tables machine ~cycle:b then Some b
              else find (b + 1)
            in
            (match find earliest with
            | Some b ->
              bus_take tables ~cycle:b;
              Hashtbl.replace transfers key b;
              true
            | None -> false))
          (Ddg.preds ddg i)
      in
      if not ok then
        (* Bus congestion: retry this instruction one cycle later by
           re-running at k+1 would complicate the loop; instead report
           failure (rare: requires a saturated bus). *)
        failure :=
          Some (Printf.sprintf "no bus slot for an operand of %s" ins.Instr.name);
      List.iter
        (fun (e : Edge.t) ->
          if e.distance = 0 then begin
            in_degree.(e.dst) <- in_degree.(e.dst) - 1;
            if in_degree.(e.dst) = 0 then ready := e.dst :: !ready
          end)
        (Ddg.succs ddg i)))
  done;
  (* Loop-carried values crossing clusters also ride the bus; their
     deadline is an iteration length away, so the earliest free slot
     always serves. *)
  if !failure = None then
    List.iter
      (fun (e : Edge.t) ->
        if
          e.distance > 0
          && Edge.carries_value e
          && cluster_of.(e.src) <> cluster_of.(e.dst)
          && not (Hashtbl.mem transfers (e.src, cluster_of.(e.dst)))
        then begin
          let rec find b =
            if bus_free tables machine ~cycle:b then b else find (b + 1)
          in
          let b =
            find (Timing.earliest_bus_cycle clk ~def_time:(def_time e.src))
          in
          bus_take tables ~cycle:b;
          Hashtbl.replace transfers (e.src, cluster_of.(e.dst)) b
        end)
      (Ddg.edges ddg);
  match !failure with
  | Some msg -> Error (Printf.sprintf "List_sched: %s" msg)
  | None ->
    (* Iteration length in cycles; II = that length so iterations do
       not overlap and the modulo wrap never bites. *)
    let len_cycles =
      Array.to_list (Array.init n (fun i -> i))
      |> List.fold_left
           (fun acc i ->
             let fin = Q.div (def_time i) cycle_time in
             max acc (Q.ceil fin))
           1
    in
    let len_cycles =
      Hashtbl.fold
        (fun _ b acc -> max acc (b + buslat))
        transfers len_cycles
    in
    let clocking = provisional len_cycles in
    let placements =
      Array.init n (fun i ->
          { Schedule.cluster = cluster_of.(i); cycle = cycle_of.(i) })
    in
    let transfers =
      Hashtbl.fold
        (fun (src, dst_cluster) b acc ->
          { Schedule.src; dst_cluster; bus_cycle = b } :: acc)
        transfers []
      |> List.sort Stdlib.compare
    in
    let sched = Schedule.make ~loop ~machine ~clocking ~placements ~transfers in
    (match Schedule.validate sched with
    | Ok () -> Ok sched
    | Error errs ->
      Error
        (Printf.sprintf "List_sched: internal error: %s"
           (String.concat "; " errs)))

let speedup_of_pipelining ~machine ~cycle_time ~loop () =
  match
    ( run ~machine ~cycle_time ~loop (),
      Homo.schedule ~machine ~cycle_time ~loop () )
  with
  | Ok acyclic, Ok (pipelined, _) ->
    Ok
      (Schedule.exec_time_ns acyclic ~trip:loop.Loop.trip
      /. Schedule.exec_time_ns pipelined ~trip:loop.Loop.trip)
  | Error msg, _ -> Error msg
  | _, Error msg -> Error msg
