(** Register requirements of a modulo schedule.

    In a software-pipelined loop a value may stay live longer than one
    initiation interval, so several instances of it (from consecutive
    iterations) are live at once.  Machines with rotating register files
    handle this in hardware; others need modulo variable expansion
    (MVE): the kernel is replicated so that each live instance gets its
    own architectural register.

    This module computes, from a validated schedule:
    - per-value lifetimes and instance counts,
    - MaxLives per cluster (the steady-state peak of simultaneously
      live values — the classical lower bound on registers),
    - the MVE factor (how many kernel copies a non-rotating machine
      needs),
    - whether the schedule fits each cluster's register file. *)

open Hcv_support
open Hcv_ir

type value = {
  producer : Instr.id;
  cluster : int;  (** register file holding this value *)
  via_bus : bool;  (** true for the copy living in a consumer cluster *)
  birth : Q.t;  (** definition or bus-arrival time, ns *)
  span : Q.t;  (** lifetime length, ns *)
  instances : int;  (** ceil(span / IT), concurrent live copies *)
}

type t = {
  values : value list;
  max_lives : int array;  (** per cluster, steady-state peak *)
  mve_factor : int;  (** lcm of instance counts (1 if none exceeds 1) *)
  fits : bool array;  (** max_lives <= registers, per cluster *)
}

val analyze : Schedule.t -> t

val pp : Format.formatter -> t -> unit
