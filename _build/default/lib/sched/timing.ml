open Hcv_support
open Hcv_ir

let eff_ct clocking ~cluster ins =
  let ct = clocking.Clocking.cluster_ct.(cluster) in
  match Instr.fu ins with
  | Opcode.Mem_port -> Q.max ct clocking.Clocking.cache_ct
  | Opcode.Int_fu | Opcode.Fp_fu -> ct

let start_time clocking ~cluster ~cycle =
  Q.mul_int clocking.Clocking.cluster_ct.(cluster) cycle

let def_time clocking ~cluster ~cycle ins =
  Q.add (start_time clocking ~cluster ~cycle)
    (Q.mul_int (eff_ct clocking ~cluster ins) (Instr.latency ins))

let earliest_bus_cycle clocking ~def_time =
  (* One sync cycle: the transfer may start at the first ICN cycle
     boundary at least one ICN cycle after the value is ready. *)
  let ct = clocking.Clocking.icn_ct in
  max 0 (Q.ceil (Q.div (Q.add def_time ct) ct))

let latest_bus_cycle clocking ~buslat ~need =
  let ct = clocking.Clocking.icn_ct in
  Q.floor (Q.div need ct) - buslat

let bus_arrival clocking ~buslat ~bus_cycle =
  Q.mul_int clocking.Clocking.icn_ct (bus_cycle + buslat)

let earliest_cycle clocking ~cluster ~ready =
  let ct = clocking.Clocking.cluster_ct.(cluster) in
  max 0 (Q.ceil (Q.div ready ct))

let dep_ready_same _clocking ~it ~def_time ~distance =
  Q.sub def_time (Q.mul_int it distance)

let sync_penalty clocking = clocking.Clocking.icn_ct
