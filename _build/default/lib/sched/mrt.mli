(** Modulo reservation tables.

    One table per cluster (II_C columns, one row per functional-unit
    kind with the cluster's capacity) plus one for the ICN buses (II_ICN
    columns, capacity = number of buses).  An operation issued at
    absolute cycle [k] occupies column [k mod II] of its domain. *)

open Hcv_ir
open Hcv_machine

type t

val create : Machine.t -> Clocking.t -> t
(** Empty tables for the given clocking.
    @raise Invalid_argument on cluster-count mismatch. *)

val fu_available : t -> cluster:int -> kind:Opcode.fu_kind -> cycle:int -> bool
val fu_reserve : t -> cluster:int -> kind:Opcode.fu_kind -> cycle:int -> unit
(** @raise Invalid_argument when the slot is full (callers must check
    {!fu_available} first). *)

val fu_release : t -> cluster:int -> kind:Opcode.fu_kind -> cycle:int -> unit
(** @raise Invalid_argument when the slot is already empty. *)

val bus_available : t -> cycle:int -> bool
val bus_reserve : t -> cycle:int -> unit
val bus_release : t -> cycle:int -> unit

val fu_used : t -> cluster:int -> kind:Opcode.fu_kind -> slot:int -> int
(** Occupancy of one column (for tests and pretty-printing). *)

val bus_used : t -> slot:int -> int

val clear : t -> unit
val pp : Format.formatter -> t -> unit
