(** Modulo schedules and their validation.

    A schedule assigns every instruction a (cluster, absolute cycle)
    pair and lists the inter-cluster value transfers of one kernel
    iteration.  A transfer ships the value of [src] (of the current
    iteration) to [dst_cluster] over a register bus starting at ICN
    cycle [bus_cycle]; all consumers of that value in that cluster share
    it when their timing allows. *)

open Hcv_support
open Hcv_ir
open Hcv_machine

type placement = { cluster : int; cycle : int }
type transfer = { src : Instr.id; dst_cluster : int; bus_cycle : int }

type t = {
  loop : Loop.t;
  machine : Machine.t;
  clocking : Clocking.t;
  placements : placement array;
  transfers : transfer list;
}

val make :
  loop:Loop.t -> machine:Machine.t -> clocking:Clocking.t
  -> placements:placement array -> transfers:transfer list -> t
(** Structural construction only; run {!validate} to check
    semantics. *)

val start_time : t -> Instr.id -> Q.t
(** Issue time within iteration 0, ns. *)

val def_time : t -> Instr.id -> Q.t
(** Time the instruction's value is available (issue + latency at the
    effective cycle time), ns. *)

val it_length : t -> Q.t
(** Iteration length: latest value-definition or transfer-arrival time
    of one iteration (ns). *)

val stage_count : t -> int
(** ceil(it_length / IT). *)

val exec_time_ns : t -> trip:int -> float
(** [(trip - 1) * IT + it_length]. *)

val n_comms : t -> int
(** Bus transfers per kernel iteration. *)

val per_cluster_ins_energy : t -> float array
(** Summed Table-1 relative energies of the instructions each cluster
    executes in one iteration. *)

val n_mem : t -> int

val lifetimes_ns : t -> Q.t array
(** Per-cluster sum of value lifetimes (ns): each value lives in its
    producer's register file from definition to last local read or bus
    send, and in every destination cluster from bus arrival to last read
    there.  The register-pressure check compares this against
    [registers * IT]. *)

val validate : t -> (unit, string list) result
(** Check every dependence (with the {!Timing} rules), FU and bus
    capacity per modulo slot, transfer timing, and per-cluster register
    pressure (sum of value lifetimes within a cluster must not exceed
    [registers * IT]).  Returns all violations found. *)

val pp : Format.formatter -> t -> unit
