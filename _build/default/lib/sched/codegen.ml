open Hcv_ir

type op =
  | Instr of { instr : Instr.id; stage : int }
  | Copy of { src : Instr.id; dst_cluster : int; stage : int }

type word = op list
type section = word array

type cluster_code = { prologue : section; kernel : section; epilogue : section }

type t = {
  schedule : Schedule.t;
  stage_count : int;
  clusters : cluster_code array;
  icn : cluster_code;
}

(* Build the three sections of one domain given its II and the ops
   placed at absolute cycles: op [o] at absolute cycle [c] has stage
   [c / ii] and kernel slot [c mod ii].

   During iteration [k] of the kernel, the machine executes, at slot
   [s], the ops of stage [t] on behalf of source iteration [k - t].
   The prologue consists of stages 0..SC-2 of iterations 0..SC-2: in
   prologue block [p] (0-based), ops with stage <= p issue.  The
   epilogue drains symmetrically: in epilogue block [p] (0-based, SC-1
   blocks), ops with stage > p issue. *)
let sections ~ii ~sc placed =
  let make_block pred =
    Array.init ii (fun slot ->
        List.filter_map
          (fun (op, abs_cycle) ->
            let stage = abs_cycle / ii and s = abs_cycle mod ii in
            if s = slot && pred stage then Some (op stage) else None)
          placed)
  in
  let kernel = make_block (fun _ -> true) in
  let prologue =
    Array.concat
      (List.init (max 0 (sc - 1)) (fun p ->
           make_block (fun stage -> stage <= p)))
  in
  let epilogue =
    Array.concat
      (List.init (max 0 (sc - 1)) (fun p ->
           make_block (fun stage -> stage > p)))
  in
  { prologue; kernel; epilogue }

let emit (sched : Schedule.t) =
  (match Schedule.validate sched with
  | Ok () -> ()
  | Error errs ->
    invalid_arg
      (Printf.sprintf "Codegen.emit: invalid schedule: %s"
         (String.concat "; " errs)));
  let clocking = sched.Schedule.clocking in
  let n_clusters = Array.length clocking.Clocking.cluster_ii in
  let sc = max 1 (Schedule.stage_count sched) in
  let clusters =
    Array.init n_clusters (fun cl ->
        let placed = ref [] in
        Array.iteri
          (fun i (p : Schedule.placement) ->
            if p.Schedule.cluster = cl then
              placed :=
                ((fun stage -> Instr { instr = i; stage }), p.Schedule.cycle)
                :: !placed)
          sched.Schedule.placements;
        sections ~ii:clocking.Clocking.cluster_ii.(cl) ~sc (List.rev !placed))
  in
  let icn =
    let placed =
      List.map
        (fun (tr : Schedule.transfer) ->
          ( (fun stage ->
              Copy { src = tr.Schedule.src; dst_cluster = tr.Schedule.dst_cluster; stage }),
            tr.Schedule.bus_cycle ))
        sched.Schedule.transfers
    in
    sections ~ii:clocking.Clocking.icn_ii ~sc placed
  in
  { schedule = sched; stage_count = sc; clusters; icn }

let count_section (s : section) =
  Array.fold_left (fun acc w -> acc + List.length w) 0 s

let count_code c =
  count_section c.prologue + count_section c.kernel + count_section c.epilogue

let kernel_ops t =
  Array.fold_left (fun acc c -> acc + count_section c.kernel) 0 t.clusters
  + count_section t.icn.kernel

let static_ops t =
  Array.fold_left (fun acc c -> acc + count_code c) 0 t.clusters
  + count_code t.icn

let op_to_string ddg = function
  | Instr { instr; stage } ->
    Printf.sprintf "%s[%d]" (Ddg.instr ddg instr).Instr.name stage
  | Copy { src; dst_cluster; stage } ->
    Printf.sprintf "copy(%s->C%d)[%d]"
      (Ddg.instr ddg src).Instr.name dst_cluster stage

let render_section buf ddg label (s : section) =
  Buffer.add_string buf (Printf.sprintf "  %s (%d cycles):\n" label (Array.length s));
  Array.iteri
    (fun cyc w ->
      Buffer.add_string buf
        (Printf.sprintf "    %3d: %s\n" cyc
           (if w = [] then "nop"
            else String.concat " | " (List.map (op_to_string ddg) w))))
    s

let render t =
  let ddg = t.schedule.Schedule.loop.Loop.ddg in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "pipelined code for %s (SC=%d)\n"
       t.schedule.Schedule.loop.Loop.name t.stage_count);
  Array.iteri
    (fun cl code ->
      Buffer.add_string buf (Printf.sprintf "cluster C%d:\n" cl);
      render_section buf ddg "prologue" code.prologue;
      render_section buf ddg "kernel" code.kernel;
      render_section buf ddg "epilogue" code.epilogue)
    t.clusters;
  Buffer.add_string buf "icn:\n";
  render_section buf ddg "prologue" t.icn.prologue;
  render_section buf ddg "kernel" t.icn.kernel;
  render_section buf ddg "epilogue" t.icn.epilogue;
  Buffer.contents buf

let render_kernel_table t =
  let ddg = t.schedule.Schedule.loop.Loop.ddg in
  let clocking = t.schedule.Schedule.clocking in
  let tbl =
    Hcv_support.Tablefmt.create
      ~title:
        (Printf.sprintf "kernel of %s (IT=%s ns)"
           t.schedule.Schedule.loop.Loop.name
           (Hcv_support.Q.to_string clocking.Clocking.it))
      (("slot", Hcv_support.Tablefmt.Right)
      :: (List.init (Array.length t.clusters) (fun cl ->
              ( Printf.sprintf "C%d (II=%d)" cl
                  clocking.Clocking.cluster_ii.(cl),
                Hcv_support.Tablefmt.Left ))
         @ [ (Printf.sprintf "bus (II=%d)" clocking.Clocking.icn_ii,
              Hcv_support.Tablefmt.Left) ]))
  in
  let max_ii =
    Array.fold_left
      (fun acc c -> max acc (Array.length c.kernel))
      (Array.length t.icn.kernel) t.clusters
  in
  for slot = 0 to max_ii - 1 do
    let cell (code : cluster_code) =
      if slot >= Array.length code.kernel then "-"
      else
        match code.kernel.(slot) with
        | [] -> "."
        | w -> String.concat " " (List.map (op_to_string ddg) w)
    in
    Hcv_support.Tablefmt.add_row tbl
      (string_of_int slot
      :: (Array.to_list (Array.map cell t.clusters) @ [ cell t.icn ]))
  done;
  Hcv_support.Tablefmt.render tbl
