(** Homogeneous clustered modulo scheduling — the state-of-the-art
    baseline the paper builds on ([2][3]): graph-partitioning cluster
    assignment driven by pseudo-schedule scores, then iterative modulo
    scheduling, retrying at increasing II until a valid schedule is
    found. *)

open Hcv_support
open Hcv_ir
open Hcv_machine

type stats = {
  ii : int;  (** final initiation interval (cycles) *)
  tries : int;  (** IIs attempted *)
  mii : int;  (** lower bound at which the search started *)
}

val schedule :
  machine:Machine.t -> cycle_time:Q.t -> loop:Loop.t -> ?max_tries:int
  -> ?seed:int -> unit -> (Schedule.t * stats, string) result
(** Schedule [loop] on [machine] with every domain at [cycle_time].
    [max_tries] (default 64) bounds the IIs attempted above the MII. *)
