lib/sched/control.ml: Activity Array Clocking Format Hcv_energy Hcv_ir Hcv_machine Hcv_support Icn Machine Opcode Q Schedule Timing
