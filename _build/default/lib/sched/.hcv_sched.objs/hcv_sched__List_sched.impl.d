lib/sched/list_sched.ml: Array Clocking Cluster Ddg Edge Hashtbl Hcv_ir Hcv_machine Hcv_support Homo Icn Instr List Listx Loop Machine Opcode Option Printf Q Schedule Stdlib String Timing
