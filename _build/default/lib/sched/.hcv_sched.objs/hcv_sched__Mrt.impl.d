lib/sched/mrt.ml: Array Clocking Cluster Format Hashtbl Hcv_ir Hcv_machine Icn List Machine Opcode String
