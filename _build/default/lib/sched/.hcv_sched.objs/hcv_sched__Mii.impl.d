lib/sched/mii.ml: Cluster Ddg Hcv_ir Hcv_machine Instr List Machine Opcode Printf Recurrence
