lib/sched/control.mli: Format Hcv_energy Schedule
