lib/sched/schedule.mli: Clocking Format Hcv_ir Hcv_machine Hcv_support Instr Loop Machine Q
