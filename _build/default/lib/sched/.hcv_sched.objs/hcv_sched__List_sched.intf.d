lib/sched/list_sched.mli: Hcv_ir Hcv_machine Hcv_support Loop Machine Q Schedule
