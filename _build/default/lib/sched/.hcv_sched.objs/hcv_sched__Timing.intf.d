lib/sched/timing.mli: Clocking Hcv_ir Hcv_support Instr Q
