lib/sched/pseudo.mli: Clocking Hcv_ir Hcv_machine Loop Machine Schedule
