lib/sched/pseudo.ml: Array Clocking Cluster Ddg Edge Hashtbl Hcv_ir Hcv_machine Hcv_support Icn Instr List Loop Machine Mrt Q Schedule Stdlib Timing
