lib/sched/slot_sched.mli: Clocking Hcv_ir Hcv_machine Loop Machine Schedule
