lib/sched/regalloc.mli: Format Hcv_ir Hcv_support Instr Q Schedule
