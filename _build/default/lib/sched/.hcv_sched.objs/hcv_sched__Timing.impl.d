lib/sched/timing.ml: Array Clocking Hcv_ir Hcv_support Instr Opcode Q
