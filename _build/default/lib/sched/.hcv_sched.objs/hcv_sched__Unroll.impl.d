lib/sched/unroll.ml: Array Ddg Edge Hcv_ir Instr List Loop Printf
