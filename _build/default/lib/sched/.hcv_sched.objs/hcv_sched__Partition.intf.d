lib/sched/partition.mli: Ddg Hcv_ir Instr
