lib/sched/codegen.mli: Hcv_ir Instr Schedule
