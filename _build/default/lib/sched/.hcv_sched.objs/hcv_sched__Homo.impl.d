lib/sched/homo.ml: Array Clocking Ddg Hcv_ir Hcv_machine Loop Machine Mii Partition Printf Pseudo Slot_sched
