lib/sched/homo.mli: Hcv_ir Hcv_machine Hcv_support Loop Machine Q Schedule
