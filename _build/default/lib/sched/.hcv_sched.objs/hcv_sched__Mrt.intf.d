lib/sched/mrt.mli: Clocking Format Hcv_ir Hcv_machine Machine Opcode
