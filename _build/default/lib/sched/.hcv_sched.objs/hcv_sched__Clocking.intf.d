lib/sched/clocking.mli: Comp Format Hcv_machine Hcv_support Opconfig Q
