lib/sched/slot_sched.ml: Array Clocking Ddg Edge Hashtbl Hcv_ir Hcv_machine Hcv_support Icn Instr List Loop Machine Mrt Printf Q Schedule Stdlib String Timing
