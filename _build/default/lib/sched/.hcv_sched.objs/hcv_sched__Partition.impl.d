lib/sched/partition.ml: Array Ddg Edge Hashtbl Hcv_ir Hcv_support List Listx Option Stdlib
