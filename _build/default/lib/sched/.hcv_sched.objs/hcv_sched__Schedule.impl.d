lib/sched/schedule.ml: Array Clocking Cluster Ddg Edge Format Hashtbl Hcv_ir Hcv_machine Hcv_support Icn Instr List Loop Machine Opcode Option Q Timing
