lib/sched/clocking.ml: Array Comp Format Freqgrid Hcv_machine Hcv_support Machine Opconfig Q
