lib/sched/unroll.mli: Ddg Hcv_ir Instr Loop
