lib/sched/serialize.mli: Hcv_ir Hcv_machine Loop Machine Schedule
