lib/sched/serialize.ml: Array Buffer Clocking Ddg Hcv_ir Hcv_machine Hcv_support Instr List Loop Machine Printf Q Schedule String
