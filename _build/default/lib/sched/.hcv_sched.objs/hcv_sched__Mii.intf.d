lib/sched/mii.mli: Hcv_ir Hcv_machine
