lib/sched/regalloc.ml: Array Clocking Cluster Ddg Edge Format Fun Hcv_ir Hcv_machine Hcv_support Icn Instr List Loop Machine Q Schedule String
