lib/sched/codegen.ml: Array Buffer Clocking Ddg Hcv_ir Hcv_support Instr List Loop Printf Schedule String
