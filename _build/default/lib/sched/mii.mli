(** Minimum initiation interval bounds for homogeneous machines
    (Rau's resMII / recMII, paper §2.2). *)

val res_mii : Hcv_machine.Machine.t -> Hcv_ir.Ddg.t -> int
(** Resource-constrained bound: max over resource kinds of
    [ceil(demand / machine-wide count)].  Kinds with demand but no
    resource raise [Invalid_argument].  At least 1 for non-empty
    loops. *)

val res_mii_cluster : Hcv_machine.Cluster.t -> Hcv_ir.Ddg.t -> Hcv_ir.Instr.id list -> int
(** Same bound restricted to the instructions assigned to one
    cluster. *)

val rec_mii : Hcv_ir.Ddg.t -> int
(** Recurrence-constrained bound (0 when the loop has no
    recurrence). *)

val mii : Hcv_machine.Machine.t -> Hcv_ir.Ddg.t -> int
(** [max (res_mii, rec_mii, 1)]. *)

type constraint_class =
  | Resource_constrained  (** recMII < resMII *)
  | Borderline  (** resMII <= recMII < 1.3 * resMII *)
  | Recurrence_constrained  (** recMII >= 1.3 * resMII *)
      (** The paper's Table 2 classification of loops. *)

val classify : Hcv_machine.Machine.t -> Hcv_ir.Ddg.t -> constraint_class
val class_to_string : constraint_class -> string
