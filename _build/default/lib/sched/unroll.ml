open Hcv_ir

let ddg ~factor g =
  if factor < 1 then invalid_arg "Unroll.ddg: factor < 1";
  if factor = 1 then g
  else begin
    let n = Ddg.n_instrs g in
    let instrs =
      Array.init (n * factor) (fun id ->
          let c = id / n and orig = id mod n in
          let ins = Ddg.instr g orig in
          Instr.make ~id
            ~name:(Printf.sprintf "%s__u%d" ins.Instr.name c)
            ~op:ins.Instr.op)
    in
    let edges =
      List.concat_map
        (fun (e : Edge.t) ->
          List.init factor (fun c ->
              (* Destination copy c reads from source copy c', spanning
                 d_unrolled unrolled iterations. *)
              let c' = ((c - e.distance) mod factor + factor) mod factor in
              let d_unrolled = (e.distance - c + c') / factor in
              Edge.make ~kind:e.kind ~distance:d_unrolled
                ~src:(e.src + (c' * n))
                ~dst:(e.dst + (c * n))
                ~latency:e.latency ()))
        (Ddg.edges g)
    in
    Ddg.of_instrs instrs edges
  end

let loop ~factor (l : Loop.t) =
  if factor < 1 then invalid_arg "Unroll.loop: factor < 1";
  if factor = 1 then l
  else
    Loop.make
      ~trip:(max 1 ((l.Loop.trip + factor - 1) / factor))
      ~weight:l.Loop.weight
      ~name:(Printf.sprintf "%s__x%d" l.Loop.name factor)
      (ddg ~factor l.Loop.ddg)

let copy_of ~factor ~n_orig id =
  if factor < 1 || n_orig < 1 then invalid_arg "Unroll.copy_of";
  (id / n_orig, id mod n_orig)
