open Hcv_support
open Hcv_ir
open Hcv_machine

type value = {
  producer : Instr.id;
  cluster : int;
  via_bus : bool;
  birth : Q.t;
  span : Q.t;
  instances : int;
}

type t = {
  values : value list;
  max_lives : int array;
  mve_factor : int;
  fits : bool array;
}

(* Collect every value's (cluster, birth, death): producer-side copies
   live from definition to last local read or bus send; bus-delivered
   copies live in the destination cluster from arrival to last read
   there.  Mirrors Schedule.lifetimes_ns, but keeps the per-value
   structure. *)
let collect (sched : Schedule.t) =
  let ddg = sched.Schedule.loop.Loop.ddg in
  let it = sched.Schedule.clocking.Clocking.it in
  let buslat = sched.Schedule.machine.Machine.icn.Icn.latency_cycles in
  let values = ref [] in
  let read_time (e : Edge.t) =
    Q.add (Schedule.start_time sched e.dst) (Q.mul_int it e.distance)
  in
  Array.iteri
    (fun i (p : Schedule.placement) ->
      let birth = Schedule.def_time sched i in
      let death = ref birth in
      List.iter
        (fun (e : Edge.t) ->
          if
            Edge.carries_value e
            && sched.Schedule.placements.(e.dst).Schedule.cluster
               = p.Schedule.cluster
          then death := Q.max !death (read_time e))
        (Ddg.succs ddg i);
      List.iter
        (fun (tr : Schedule.transfer) ->
          if tr.Schedule.src = i then
            death :=
              Q.max !death
                (Q.mul_int sched.Schedule.clocking.Clocking.icn_ct
                   tr.Schedule.bus_cycle))
        sched.Schedule.transfers;
      let span = Q.sub !death birth in
      if Q.sign span > 0 then
        values :=
          {
            producer = i;
            cluster = p.Schedule.cluster;
            via_bus = false;
            birth;
            span;
            instances = max 1 (Q.ceil (Q.div span it));
          }
          :: !values)
    sched.Schedule.placements;
  List.iter
    (fun (tr : Schedule.transfer) ->
      let birth =
        Q.mul_int sched.Schedule.clocking.Clocking.icn_ct
          (tr.Schedule.bus_cycle + buslat)
      in
      let death = ref birth in
      List.iter
        (fun (e : Edge.t) ->
          if
            Edge.carries_value e
            && sched.Schedule.placements.(e.dst).Schedule.cluster
               = tr.Schedule.dst_cluster
          then death := Q.max !death (read_time e))
        (Ddg.succs ddg tr.Schedule.src);
      let span = Q.sub !death birth in
      if Q.sign span > 0 then
        values :=
          {
            producer = tr.Schedule.src;
            cluster = tr.Schedule.dst_cluster;
            via_bus = true;
            birth;
            span;
            instances = max 1 (Q.ceil (Q.div span it));
          }
          :: !values)
    sched.Schedule.transfers;
  List.rev !values

(* Steady-state live count of one value at kernel phase [phi]: copies
   from iterations whose span covers phi.  With birth phase beta and
   span L: delta = (phi - beta) mod IT, count = floor((L - delta)/IT)+1
   when L > delta else 0. *)
let live_at it (v : value) phi =
  let beta =
    let m = Q.sub v.birth (Q.mul_int it (Q.floor (Q.div v.birth it))) in
    m
  in
  let delta =
    let d = Q.sub phi beta in
    if Q.sign d >= 0 then d else Q.add d it
  in
  if Q.( > ) v.span delta then Q.floor (Q.div (Q.sub v.span delta) it) + 1
  else 0

let rec gcd a b = if b = 0 then a else gcd b (a mod b)
let lcm a b = a / gcd a b * b

let analyze (sched : Schedule.t) =
  let it = sched.Schedule.clocking.Clocking.it in
  let machine = sched.Schedule.machine in
  let n_clusters = Machine.n_clusters machine in
  let values = collect sched in
  (* Candidate phases: just after each birth (local maxima of the live
     count). *)
  let phases =
    List.map
      (fun v ->
        Q.sub v.birth (Q.mul_int it (Q.floor (Q.div v.birth it))))
      values
    |> List.sort_uniq Q.compare
  in
  let max_lives =
    Array.init n_clusters (fun cl ->
        let vs = List.filter (fun v -> v.cluster = cl) values in
        List.fold_left
          (fun acc phi ->
            max acc (List.fold_left (fun s v -> s + live_at it v phi) 0 vs))
          0 phases)
  in
  let mve_factor =
    List.fold_left (fun acc v -> lcm acc (max 1 v.instances)) 1 values
  in
  let fits =
    Array.mapi
      (fun cl lives ->
        lives <= (Machine.cluster machine cl).Cluster.registers)
      max_lives
  in
  { values; max_lives; mve_factor; fits }

let pp ppf t =
  Format.fprintf ppf "regalloc{values=%d; maxlives=[%s]; mve=%d; fits=%s}"
    (List.length t.values)
    (String.concat ";" (Array.to_list (Array.map string_of_int t.max_lives)))
    t.mve_factor
    (if Array.for_all Fun.id t.fits then "yes" else "NO")
