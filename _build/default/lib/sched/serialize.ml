open Hcv_support
open Hcv_ir
open Hcv_machine

let to_string (s : Schedule.t) =
  let buf = Buffer.create 512 in
  let ddg = s.Schedule.loop.Loop.ddg in
  let name i = (Ddg.instr ddg i).Instr.name in
  Buffer.add_string buf
    (Printf.sprintf "schedule %s\n" s.Schedule.loop.Loop.name);
  Buffer.add_string buf
    (Printf.sprintf "  it %s\n" (Q.to_string s.Schedule.clocking.Clocking.it));
  Array.iteri
    (fun i ii ->
      Buffer.add_string buf
        (Printf.sprintf "  domain C%d ii %d ct %s\n" i ii
           (Q.to_string s.Schedule.clocking.Clocking.cluster_ct.(i))))
    s.Schedule.clocking.Clocking.cluster_ii;
  Buffer.add_string buf
    (Printf.sprintf "  domain ICN ii %d ct %s\n"
       s.Schedule.clocking.Clocking.icn_ii
       (Q.to_string s.Schedule.clocking.Clocking.icn_ct));
  Buffer.add_string buf
    (Printf.sprintf "  domain cache ii %d ct %s\n"
       s.Schedule.clocking.Clocking.cache_ii
       (Q.to_string s.Schedule.clocking.Clocking.cache_ct));
  Array.iteri
    (fun i (p : Schedule.placement) ->
      Buffer.add_string buf
        (Printf.sprintf "  place %s %d %d\n" (name i) p.Schedule.cluster
           p.Schedule.cycle))
    s.Schedule.placements;
  List.iter
    (fun (tr : Schedule.transfer) ->
      Buffer.add_string buf
        (Printf.sprintf "  copy %s %d %d\n" (name tr.Schedule.src)
           tr.Schedule.dst_cluster tr.Schedule.bus_cycle))
    s.Schedule.transfers;
  Buffer.add_string buf "end\n";
  Buffer.contents buf

exception Bad of string

let parse_q what s =
  match String.split_on_char '/' s with
  | [ n ] -> (
    match int_of_string_opt n with
    | Some v -> Q.of_int v
    | None -> raise (Bad (Printf.sprintf "bad %s %S" what s)))
  | [ n; d ] -> (
    match (int_of_string_opt n, int_of_string_opt d) with
    | Some n, Some d when d > 0 -> Q.make n d
    | _, _ -> raise (Bad (Printf.sprintf "bad %s %S" what s)))
  | _ -> raise (Bad (Printf.sprintf "bad %s %S" what s))

let parse_int what s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> raise (Bad (Printf.sprintf "bad %s %S" what s))

let of_string ~machine ~loop text =
  let ddg = loop.Loop.ddg in
  let n = Ddg.n_instrs ddg in
  let n_clusters = Machine.n_clusters machine in
  let resolve nm =
    match Ddg.find_instr ddg nm with
    | Some ins -> ins.Instr.id
    | None -> raise (Bad (Printf.sprintf "unknown instruction %S" nm))
  in
  try
    let it = ref None in
    let cluster_ii = Array.make n_clusters 0 in
    let cluster_ct = Array.make n_clusters Q.one in
    let icn = ref None and cache = ref None in
    let placements = Array.make n None in
    let transfers = ref [] in
    List.iter
      (fun line ->
        let tokens =
          String.split_on_char ' ' line |> List.filter (fun t -> t <> "")
        in
        match tokens with
        | [] | "schedule" :: _ | [ "end" ] -> ()
        | [ "it"; v ] -> it := Some (parse_q "it" v)
        | [ "domain"; dom; "ii"; ii; "ct"; ct ] -> (
          let ii = parse_int "ii" ii and ct = parse_q "ct" ct in
          match dom with
          | "ICN" -> icn := Some (ii, ct)
          | "cache" -> cache := Some (ii, ct)
          | _ ->
            if String.length dom < 2 || dom.[0] <> 'C' then
              raise (Bad (Printf.sprintf "bad domain %S" dom));
            let c = parse_int "cluster" (String.sub dom 1 (String.length dom - 1)) in
            if c < 0 || c >= n_clusters then
              raise (Bad (Printf.sprintf "cluster %d out of range" c));
            cluster_ii.(c) <- ii;
            cluster_ct.(c) <- ct)
        | [ "place"; nm; cl; cyc ] ->
          placements.(resolve nm) <-
            Some
              {
                Schedule.cluster = parse_int "cluster" cl;
                cycle = parse_int "cycle" cyc;
              }
        | [ "copy"; nm; dcl; b ] ->
          transfers :=
            {
              Schedule.src = resolve nm;
              dst_cluster = parse_int "cluster" dcl;
              bus_cycle = parse_int "bus cycle" b;
            }
            :: !transfers
        | tok :: _ -> raise (Bad (Printf.sprintf "unknown directive %S" tok)))
      (String.split_on_char '\n' text);
    let it = match !it with Some v -> v | None -> raise (Bad "missing it") in
    let icn_ii, icn_ct =
      match !icn with Some v -> v | None -> raise (Bad "missing ICN domain")
    in
    let cache_ii, cache_ct =
      match !cache with
      | Some v -> v
      | None -> raise (Bad "missing cache domain")
    in
    let placements =
      Array.mapi
        (fun i p ->
          match p with
          | Some p -> p
          | None ->
            raise
              (Bad
                 (Printf.sprintf "missing placement for %s"
                    (Ddg.instr ddg i).Instr.name)))
        placements
    in
    let clocking =
      {
        Clocking.it;
        cluster_ii;
        cluster_ct;
        icn_ii;
        icn_ct;
        cache_ii;
        cache_ct;
      }
    in
    let sched =
      Schedule.make ~loop ~machine ~clocking ~placements
        ~transfers:(List.rev !transfers)
    in
    match Schedule.validate sched with
    | Ok () -> Ok sched
    | Error errs -> Error (String.concat "; " errs)
  with Bad msg -> Error msg
