(** Textual serialisation of schedules.

    A schedule is stored as a line-oriented block (in the spirit of the
    [.loop] DSL) recording the initiation time, the per-domain (II,
    cycle-time) pairs, every placement and every bus transfer:

    {v
    schedule dotprod
      it 27/5
      domain C0 ii 6 ct 9/10
      domain ICN ii 6 ct 9/10
      domain cache ii 6 ct 9/10
      place mul 0 3          # instruction, cluster, cycle
      copy mul 1 4           # source, destination cluster, bus cycle
    end
    v}

    Deserialisation needs the machine and the loop (the schedule only
    references them), validates the clocking against the machine shape
    and re-runs the full {!Schedule.validate}. *)

open Hcv_ir
open Hcv_machine

val to_string : Schedule.t -> string

val of_string :
  machine:Machine.t -> loop:Loop.t -> string -> (Schedule.t, string) result
(** Round-trips [to_string]; rejects unknown instruction names, malformed
    domains and semantically invalid schedules. *)
