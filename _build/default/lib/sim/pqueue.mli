(** A minimal binary min-heap priority queue over rational keys, used by
    the event-driven simulator. *)

open Hcv_support

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int
val push : 'a t -> Q.t -> 'a -> unit

val pop : 'a t -> (Q.t * 'a) option
(** Smallest key first; ties pop in unspecified order. *)

val peek_key : 'a t -> Q.t option
