(** Event-driven execution of a modulo schedule on a multi-clock-domain
    clustered VLIW.

    The simulator replays [trip] kernel iterations of a schedule on its
    operating configuration: every instruction issue, completion, bus
    departure and bus arrival becomes a timestamped event (exact
    rational ns, as in the machine's synchronised-enable clocking,
    §2.1).  It independently re-checks, at run time, everything the
    static validator promised:

    - operand availability: a consumer must not issue before every
      producer of the right iteration has completed (or its bus copy
      arrived);
    - functional-unit and memory-port occupancy per absolute cluster
      cycle;
    - register-bus occupancy per absolute ICN cycle;
    - synchronisation-queue delay on every clock-domain crossing.

    It also counts dynamic events (instructions per cluster,
    communications, memory accesses) and the elapsed time per domain,
    which {!measure} converts into an {!Hcv_energy.Activity.t} for the
    §3.1 energy model — the measured counterpart of the compile-time
    estimates. *)

open Hcv_support
open Hcv_energy
open Hcv_sched

type cache_model = {
  miss_rate : float;  (** fraction of memory accesses that miss *)
  miss_penalty_cycles : int;  (** whole-machine stall, in cache cycles *)
}
(** The paper evaluates with "all cache accesses are hits" (§5); this
    optional model relaxes that: a deterministic pseudo-random subset of
    accesses misses, and — as in any statically scheduled in-order
    machine — the whole machine stalls for the penalty.  Stalls shift
    every later event uniformly, so the schedule's correctness is
    unaffected; only time (and one extra cache access of energy per
    miss) is added. *)

type result = {
  exec_ns : Q.t;  (** time of the last event *)
  n_issues : int;
  n_transfers : int;
  n_mem_accesses : int;
  per_cluster_ins_energy : float array;
  violations : string list;  (** empty for a correct schedule *)
  events : int;  (** total events processed *)
  n_misses : int;  (** cache misses (0 without a cache model) *)
  stall_ns : Q.t;  (** total stall time added by misses *)
}

val run : ?cache:cache_model -> schedule:Schedule.t -> trip:int -> unit -> result
(** Simulate [trip] iterations.  @raise Invalid_argument if
    [trip < 1]. *)

val measure :
  schedule:Schedule.t -> trip:int -> (Activity.t, string list) Stdlib.result
(** Activity of a [trip]-iteration execution, or the violations found.
    The returned activity is directly comparable with
    {!Hcv_core.Profile.activity_of_schedule}. *)

val pp_result : Format.formatter -> result -> unit
