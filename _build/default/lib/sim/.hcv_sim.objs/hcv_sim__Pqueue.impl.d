lib/sim/pqueue.ml: Array Hcv_support Q
