lib/sim/simulator.mli: Activity Format Hcv_energy Hcv_sched Hcv_support Q Schedule Stdlib
