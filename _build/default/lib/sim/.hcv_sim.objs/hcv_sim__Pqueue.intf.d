lib/sim/pqueue.mli: Hcv_support Q
