open Hcv_support

type 'a t = { mutable keys : Q.t array; mutable vals : 'a array; mutable n : int }

let create () = { keys = [||]; vals = [||]; n = 0 }
let is_empty t = t.n = 0
let length t = t.n

let grow t v =
  let cap = max 16 (2 * Array.length t.keys) in
  let keys = Array.make cap Q.zero and vals = Array.make cap v in
  Array.blit t.keys 0 keys 0 t.n;
  Array.blit t.vals 0 vals 0 t.n;
  t.keys <- keys;
  t.vals <- vals

let swap t i j =
  let k = t.keys.(i) and v = t.vals.(i) in
  t.keys.(i) <- t.keys.(j);
  t.vals.(i) <- t.vals.(j);
  t.keys.(j) <- k;
  t.vals.(j) <- v

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if Q.( < ) t.keys.(i) t.keys.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.n && Q.( < ) t.keys.(l) t.keys.(!smallest) then smallest := l;
  if r < t.n && Q.( < ) t.keys.(r) t.keys.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t key v =
  if t.n >= Array.length t.keys then grow t v;
  t.keys.(t.n) <- key;
  t.vals.(t.n) <- v;
  t.n <- t.n + 1;
  sift_up t (t.n - 1)

let pop t =
  if t.n = 0 then None
  else begin
    let key = t.keys.(0) and v = t.vals.(0) in
    t.n <- t.n - 1;
    if t.n > 0 then begin
      t.keys.(0) <- t.keys.(t.n);
      t.vals.(0) <- t.vals.(t.n);
      sift_down t 0
    end;
    Some (key, v)
  end

let peek_key t = if t.n = 0 then None else Some t.keys.(0)
