(* A resource-constrained workload (the swim/mgrid case of the paper,
   §5.2): wide parallel loops with no recurrences.  Every instruction
   matters for throughput, so slowing some clusters would cost time;
   the selector falls back to a uniform-frequency configuration and the
   benefit comes from per-domain voltage tuning alone.

   Run with: dune exec examples/resource_loop.exe *)

open Hcv_support
open Hcv_ir
open Hcv_machine
open Hcv_core
open Hcv_workload

let () =
  let machine = Presets.machine_4c ~buses:1 in
  let rng = Rng.create 7 in
  let loops =
    List.init 6 (fun k ->
        if k mod 2 = 0 then
          Shapes.wide_parallel ~rng
            ~name:(Printf.sprintf "wide%d" k)
            ~lanes:(8 + k) ~depth:2 ~merge:(k mod 4 = 0) ~trip:200 ()
        else
          Shapes.reduction ~rng
            ~name:(Printf.sprintf "red%d" k)
            ~width:(9 + k) ~trip:200 ())
  in
  List.iter
    (fun (l : Loop.t) ->
      Format.printf "%s: class = %s (resMII=%d, recMII=%d)@." l.Loop.name
        (Hcv_sched.Mii.class_to_string
           (Hcv_sched.Mii.classify machine l.Loop.ddg))
        (Hcv_sched.Mii.res_mii machine l.Loop.ddg)
        (Hcv_sched.Mii.rec_mii l.Loop.ddg))
    loops;
  Format.printf "@.";
  match Pipeline.run ~machine ~name:"resource-demo" ~loops () with
  | Error d -> Format.printf "pipeline failed: %a@." Hcv_obs.Diag.pp d
  | Ok r ->
    Format.printf "chosen configuration:@.%a@.@." Select.pp_choice
      r.Pipeline.hetero;
    Format.printf "uniform frequencies? %b@."
      (Opconfig.is_homogeneous r.Pipeline.hetero.Select.config);
    Format.printf "ED2 ratio vs optimum homogeneous: %.3f (time x%.3f, energy x%.3f)@."
      r.Pipeline.ed2_ratio r.Pipeline.time_ratio r.Pipeline.energy_ratio
