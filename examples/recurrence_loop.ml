(* A recurrence-constrained workload (the sixtrack/facerec case of the
   paper, §5.2): a small critical recurrence inside a large body.  The
   heterogeneous machine keeps the recurrence on the fast cluster and
   pushes the rest to the low-power clusters — time stays put, energy
   drops, ED2 wins.

   Run with: dune exec examples/recurrence_loop.exe *)

open Hcv_support
open Hcv_ir
open Hcv_machine
open Hcv_energy
open Hcv_core
open Hcv_workload

let () =
  let machine = Presets.machine_4c ~buses:1 in
  (* A facerec-like population: mostly recurrence-constrained loops with
     tiny critical recurrences. *)
  let rng = Rng.create 2024 in
  let loops =
    List.init 6 (fun k ->
        Shapes.recurrence_chain ~rng
          ~name:(Printf.sprintf "rec%d" k)
          ~rec_len:(2 + (k mod 2))
          ~extra:(30 + (4 * k))
          ~trip:300 ())
  in
  let profile =
    match Profile.profile ~machine ~loops () with
    | Ok p -> p
    | Error d -> failwith (Hcv_obs.Diag.to_string d)
  in
  let units =
    Units.of_reference ~params:Params.default ~n_clusters:4
      profile.Profile.activity
  in
  let ctx = Model.ctx ~params:Params.default ~units () in

  let diag_ok = function
    | Ok v -> v
    | Error d -> failwith (Hcv_obs.Diag.to_string d)
  in
  let homo = diag_ok (Select.optimum_homogeneous ~ctx ~machine profile) in
  let hetero = diag_ok (Select.select_heterogeneous ~ctx ~machine profile) in
  Format.printf "optimum homogeneous:@.%a@.@." Select.pp_choice homo;
  Format.printf "selected heterogeneous:@.%a@.@." Select.pp_choice hetero;

  (* Schedule one loop and show where the recurrence went. *)
  let loop = List.hd loops in
  match Hsched.schedule ~ctx ~config:hetero.Select.config ~loop () with
  | Error d -> Format.printf "scheduling failed: %a@." Hcv_obs.Diag.pp d
  | Ok (sched, stats) ->
    Format.printf "loop %s: IT=%a ns (MIT=%a), %d instructions pre-placed@."
      loop.Loop.name Q.pp stats.Hsched.it Q.pp stats.Hsched.mit
      stats.Hsched.prePlaced;
    let recs = Recurrence.find_all loop.Loop.ddg in
    List.iter
      (fun (r : Recurrence.t) ->
        let clusters =
          Hcv_support.Listx.uniq
            (List.map
               (fun i ->
                 sched.Hcv_sched.Schedule.placements.(i)
                   .Hcv_sched.Schedule.cluster)
               r.Recurrence.nodes)
        in
        Format.printf "  recurrence (ratio %a) on cluster(s) %s@." Q.pp
          r.Recurrence.ratio
          (String.concat "," (List.map string_of_int clusters)))
      recs;
    let dist = Hcv_sched.Schedule.per_cluster_ins_energy sched in
    Format.printf "  per-cluster instruction energy: [%s]@."
      (String.concat "; "
         (Array.to_list (Array.map (Printf.sprintf "%.1f") dist)))
