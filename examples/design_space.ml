(* Walk the §3.3 design space explicitly: enumerate every heterogeneous
   candidate (fast-cluster cycle time x slow-cluster factor), print its
   model-predicted execution time, energy and ED2, and mark the pick.

   Run with: dune exec examples/design_space.exe *)

open Hcv_support
open Hcv_machine
open Hcv_energy
open Hcv_core
open Hcv_workload

let () =
  let machine = Presets.machine_4c ~buses:1 in
  let spec = Option.get (Specfp.find "sixtrack") in
  let loops = Specfp.loops ~n_loops:8 ~seed:42 spec in
  let profile =
    match Profile.profile ~machine ~loops () with
    | Ok p -> p
    | Error d -> failwith (Hcv_obs.Diag.to_string d)
  in
  let units =
    Units.of_reference ~params:Params.default ~n_clusters:4
      profile.Profile.activity
  in
  let ctx = Model.ctx ~params:Params.default ~units () in
  let homo =
    match Select.optimum_homogeneous ~ctx ~machine profile with
    | Ok c -> c
    | Error d -> failwith (Hcv_obs.Diag.to_string d)
  in
  Format.printf "optimum homogeneous: ED2 = %.4g@.@." homo.Select.predicted_ed2;

  let t =
    Tablefmt.create ~title:"sixtrack-like population, predicted by the SS3.3 models"
      [
        ("fast ct (ns)", Tablefmt.Right);
        ("slow factor", Tablefmt.Right);
        ("T (us)", Tablefmt.Right);
        ("E (norm)", Tablefmt.Right);
        ("ED2 vs homo", Tablefmt.Right);
      ]
  in
  let best =
    match Select.select_heterogeneous ~ctx ~machine profile with
    | Ok c -> c
    | Error d -> failwith (Hcv_obs.Diag.to_string d)
  in
  List.iter
    (fun fast ->
      let fast_ct = Q.mul Presets.reference_cycle_time fast in
      List.iter
        (fun slow ->
          let slow_ct = Q.mul fast_ct slow in
          let pt ct = { Opconfig.cycle_time = ct; vdd = 1.0 } in
          let shape =
            Opconfig.make ~machine
              ~cluster_points:
                [| pt fast_ct; pt slow_ct; pt slow_ct; pt slow_ct |]
              ~icn_point:(pt fast_ct) ~cache_point:(pt fast_ct)
          in
          let act = Estimate.predict_activity ~config:shape profile in
          (* Voltage-optimise via the selector's own sweep: compare the
             shape against the chosen one. *)
          let marker =
            if
              Q.equal
                (Opconfig.cycle_time best.Select.config (Comp.Cluster 1))
                slow_ct
              && Q.equal
                   (Opconfig.cycle_time best.Select.config (Comp.Cluster 0))
                   fast_ct
            then " <== selected"
            else ""
          in
          Tablefmt.add_row t
            [
              Q.to_string fast_ct;
              Q.to_string slow;
              Printf.sprintf "%.1f" (act.Activity.exec_time_ns /. 1e3);
              "-";
              Printf.sprintf "%.3f%s"
                (Model.ed2 ctx ~config:shape act /. homo.Select.predicted_ed2)
                marker;
            ])
        Presets.slow_factors)
    Presets.fast_factors;
  Tablefmt.print t;
  Format.printf
    "@.(the ED2 column uses nominal 1 V everywhere; the selector also \
     optimises per-domain voltages, final pick below)@.@.%a@."
    Select.pp_choice best
