(* The lib/check subsystem itself: the independent legality oracle
   (acceptance of real scheduler output, rejection of corrupted
   schedules by category), the generators (determinism, printable
   repros) and the greedy shrinker. *)

open Hcv_support
open Hcv_ir
open Hcv_machine
open Hcv_sched
open Hcv_check

let ctx_for machine =
  let n = Machine.n_clusters machine in
  let act =
    Hcv_energy.Activity.make ~exec_time_ns:1e6
      ~per_cluster_ins_energy:(Array.make n 100.)
      ~n_comms:100. ~n_mem:100.
  in
  Hcv_energy.Model.ctx ~params:Hcv_energy.Params.default
    ~units:
      (Hcv_energy.Units.of_reference ~params:Hcv_energy.Params.default
         ~n_clusters:n act)
    ()

(* Heterogeneous schedules for the first scheduable generated cases. *)
let scheduled_cases ~seed ~n =
  let rec go acc seed n =
    if n = 0 then List.rev acc
    else
      let c = Gen.case ~seed in
      match
        Hcv_core.Hsched.schedule ~ctx:(ctx_for c.Gen.machine)
          ~config:c.Gen.config ~loop:c.Gen.loop ()
      with
      | Ok (sched, _) -> go ((c, sched) :: acc) (seed + 1) (n - 1)
      | Error _ -> go acc (seed + 1) n
  in
  go [] seed n

let test_oracle_accepts_scheduler_output () =
  List.iter
    (fun ((c : Gen.case), sched) ->
      (match Legal.verify sched with
      | Ok () -> ()
      | Error vs ->
        Alcotest.failf "seed %d rejected: %s" c.Gen.seed
          (String.concat "; " (Legal.to_strings vs)));
      match Legal.verify_clocking ~config:c.Gen.config sched.Schedule.clocking with
      | Ok () -> ()
      | Error vs ->
        Alcotest.failf "seed %d clocking rejected: %s" c.Gen.seed
          (String.concat "; " (Legal.to_strings vs)))
    (scheduled_cases ~seed:1000 ~n:12)

let test_oracle_accepts_homogeneous_output () =
  List.iter
    (fun loop ->
      match
        Homo.schedule ~machine:Builders.machine_2bus
          ~cycle_time:Presets.reference_cycle_time ~loop ()
      with
      | Error msg -> Alcotest.failf "homo schedule failed: %s" msg
      | Ok (sched, _) -> (
        match Legal.verify sched with
        | Ok () -> ()
        | Error vs ->
          Alcotest.failf "%s rejected: %s" loop.Loop.name
            (String.concat "; " (Legal.to_strings vs))))
    [
      Gen.dotprod ();
      Gen.recurrence_loop ();
      Gen.wide_loop ();
      Gen.random_loop ~seed:7 ();
    ]

(* The category (rule tags) of the violations a corruption provokes. *)
let rules_of = function
  | Ok () -> []
  | Error vs ->
    List.sort_uniq compare
      (List.map (fun (v : Legal.violation) -> v.Legal.rule) vs)

let expect_rule what rule result =
  match rules_of result with
  | [] -> Alcotest.failf "%s: corruption not flagged" what
  | rules ->
    Alcotest.(check bool)
      (Printf.sprintf "%s flags %s (got: %s)" what rule
         (String.concat "," rules))
      true (List.mem rule rules)

let some_scheduled seed =
  match scheduled_cases ~seed ~n:1 with
  | [ (c, sched) ] -> (c, sched)
  | _ -> Alcotest.fail "no scheduable case found"

let test_oracle_rejects_corruptions () =
  (* A multi-instruction case so every corruption has something to
     corrupt. *)
  let rec find seed =
    let c, sched = some_scheduled seed in
    if Ddg.n_instrs c.Gen.loop.Loop.ddg >= 4 && Ddg.n_edges c.Gen.loop.Loop.ddg >= 2
    then (c, sched)
    else find (seed + 1)
  in
  let _, sched = find 2000 in
  (* Pull every instruction to cluster 0, cycle 0: FU slots overflow. *)
  let all_zero =
    {
      sched with
      Schedule.placements =
        Array.map
          (fun _ -> { Schedule.cluster = 0; cycle = 0 })
          sched.Schedule.placements;
      transfers = [];
    }
  in
  expect_rule "all-to-slot-0" "fu-capacity" (Legal.verify all_zero);
  (* Shift one dependent instruction a cycle earlier: some dependence
     (or FU slot) must break; find an edge whose shift trips the
     dependence rule. *)
  let edges = Ddg.edges sched.Schedule.loop.Loop.ddg in
  let broke_dependence =
    List.exists
      (fun (e : Edge.t) ->
        let p = Array.copy sched.Schedule.placements in
        p.(e.Edge.dst) <-
          { (p.(e.Edge.dst)) with Schedule.cycle = p.(e.Edge.dst).Schedule.cycle - 1 };
        match Legal.verify { sched with Schedule.placements = p } with
        | Ok () -> false
        | Error vs ->
          List.exists (fun (v : Legal.violation) -> v.Legal.rule = "dependence") vs)
      edges
  in
  Alcotest.(check bool) "some -1 cycle shift breaks a dependence" true
    broke_dependence;
  (* Negative cycle: placement rule. *)
  let neg =
    let p = Array.copy sched.Schedule.placements in
    p.(0) <- { (p.(0)) with Schedule.cycle = -1 };
    { sched with Schedule.placements = p }
  in
  expect_rule "negative cycle" "placement" (Legal.verify neg);
  (* Corrupted clocking: II x ct no longer equals IT. *)
  let bad_ck =
    {
      sched with
      Schedule.clocking =
        {
          sched.Schedule.clocking with
          Clocking.it = Q.add sched.Schedule.clocking.Clocking.it Q.one;
        };
    }
  in
  expect_rule "broken IT" "clocking" (Legal.verify bad_ck)

let test_oracle_rejects_early_transfer () =
  (* Build a 2-cluster schedule with a transfer by hand, then move the
     transfer to bus cycle 0 — before its value can have crossed the
     synchronisation queue. *)
  let b = Ddg.Builder.create () in
  let x = Ddg.Builder.add_instr b ~name:"x" Builders.op_add_f in
  let y = Ddg.Builder.add_instr b ~name:"y" Builders.op_add_f in
  Ddg.Builder.add_edge b x y;
  let loop = Loop.make ~name:"xfer" (Ddg.Builder.build b) in
  let machine = Builders.machine_1bus in
  let ck =
    Clocking.homogeneous ~n_clusters:(Machine.n_clusters machine) ~ii:8
      ~cycle_time:Q.one
  in
  let placements =
    [| { Schedule.cluster = 0; cycle = 0 }; { Schedule.cluster = 1; cycle = 7 } |]
  in
  let mk bus_cycle =
    Schedule.make ~loop ~machine ~clocking:ck ~placements
      ~transfers:[ { Schedule.src = 0; dst_cluster = 1; bus_cycle } ]
  in
  (* add.f latency 3: def at 3 ns, so the bus may depart at cycle 4
     ( (4-1)*1 >= 3 ) and arrives at 5 <= start(y) = 7. *)
  (match Legal.verify (mk 4) with
  | Ok () -> ()
  | Error vs ->
    Alcotest.failf "legal transfer rejected: %s"
      (String.concat "; " (Legal.to_strings vs)));
  expect_rule "early transfer" "transfer" (Legal.verify (mk 2));
  (* No transfer at all: the cross-cluster flow dependence is unserved. *)
  let no_transfer =
    Schedule.make ~loop ~machine ~clocking:ck ~placements ~transfers:[]
  in
  expect_rule "missing transfer" "dependence" (Legal.verify no_transfer)

let test_lifetimes_agree () =
  List.iter
    (fun ((c : Gen.case), sched) ->
      let ours = Legal.lifetime_sums sched in
      let theirs = Schedule.lifetimes_ns sched in
      Array.iteri
        (fun cl a ->
          Alcotest.(check bool)
            (Format.asprintf "seed %d cluster %d: %a = %a" c.Gen.seed cl Q.pp a
               Q.pp theirs.(cl))
            true (Q.equal a theirs.(cl)))
        ours)
    (scheduled_cases ~seed:3000 ~n:10)

let test_generator_deterministic () =
  List.iter
    (fun seed ->
      let a = Gen.case ~seed and b = Gen.case ~seed in
      Alcotest.(check string)
        (Printf.sprintf "seed %d reproducible" seed)
        (Gen.print_case a) (Gen.print_case b))
    [ 0; 1; 42; 987654321 ]

let test_print_case_parses () =
  List.iter
    (fun seed ->
      let c = Gen.case ~seed in
      match Dsl.parse (Gen.print_case c) with
      | Error e -> Alcotest.failf "seed %d: %a" seed Dsl.pp_error e
      | Ok [ l ] ->
        Alcotest.(check int)
          "same instruction count"
          (Ddg.n_instrs c.Gen.loop.Loop.ddg)
          (Ddg.n_instrs l.Loop.ddg);
        Alcotest.(check int)
          "same edge count"
          (Ddg.n_edges c.Gen.loop.Loop.ddg)
          (Ddg.n_edges l.Loop.ddg)
      | Ok ls -> Alcotest.failf "seed %d: %d loops" seed (List.length ls))
    [ 5; 17; 99; 123456 ]

let test_shrinker () =
  let c = Gen.case ~seed:4242 in
  let n0 = Ddg.n_instrs c.Gen.loop.Loop.ddg in
  (* keep = "has at least 2 instructions": shrinks to exactly 2. *)
  let small =
    Gen.shrink ~keep:(fun c' -> Ddg.n_instrs c'.Gen.loop.Loop.ddg >= 2) c
  in
  Alcotest.(check int) "shrinks to the boundary" 2
    (Ddg.n_instrs small.Gen.loop.Loop.ddg);
  Alcotest.(check bool) "never grows" true
    (Ddg.n_instrs small.Gen.loop.Loop.ddg <= n0);
  (* The shrunk case also drops machine structure: a keep that ignores
     the machine ends at 1 cluster, 1 bus, free grid. *)
  Alcotest.(check int) "one cluster" 1
    (Machine.n_clusters small.Gen.machine);
  Alcotest.(check int) "one bus" 1 small.Gen.machine.Machine.icn.Icn.buses;
  Alcotest.(check bool) "trip shrunk" true (small.Gen.loop.Loop.trip <= 2);
  (* keep failing by exception counts as not reproduced: nothing
     shrinks, the original comes back. *)
  let same = Gen.shrink ~keep:(fun _ -> failwith "boom") c in
  Alcotest.(check string) "exception = not reproduced" (Gen.print_case c)
    (Gen.print_case same);
  (* max_checks bounds the number of keep evaluations. *)
  let calls = ref 0 in
  let _ =
    Gen.shrink ~max_checks:5
      ~keep:(fun _ ->
        incr calls;
        true)
      c
  in
  Alcotest.(check bool)
    (Printf.sprintf "keep called %d <= 5 times" !calls)
    true (!calls <= 5)

let suite =
  [
    Alcotest.test_case "oracle accepts heterogeneous schedules" `Quick
      test_oracle_accepts_scheduler_output;
    Alcotest.test_case "oracle accepts homogeneous schedules" `Quick
      test_oracle_accepts_homogeneous_output;
    Alcotest.test_case "oracle rejects corruptions" `Quick
      test_oracle_rejects_corruptions;
    Alcotest.test_case "oracle rejects early/missing transfers" `Quick
      test_oracle_rejects_early_transfer;
    Alcotest.test_case "lifetime derivations agree" `Quick
      test_lifetimes_agree;
    Alcotest.test_case "generator is deterministic" `Quick
      test_generator_deterministic;
    Alcotest.test_case "printed repros parse" `Quick test_print_case_parses;
    Alcotest.test_case "shrinker minimises greedily" `Quick test_shrinker;
  ]
