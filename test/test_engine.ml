(* The sweep engine: memoisation, decode-failure recovery,
   resume-from-partial-cache determinism, and supervised execution
   (per-cell quarantine instead of fan-out aborts). *)

open Hcv_explore
module R = Hcv_resilience

(* A codec for (int -> int * int) cells with a computation counter, so
   tests can distinguish cached from computed results.  Atomic because
   workers run on separate domains. *)
let computed = Atomic.make 0

let square x =
  Atomic.incr computed;
  (x, x * x)

let codec =
  {
    Engine.cell_key = (fun x -> Printf.sprintf "cell-%d" x);
    encode = (fun (x, y) -> Printf.sprintf "%d:%d" x y);
    decode =
      (fun s ->
        match String.split_on_char ':' s with
        | [ a; b ] -> (
            match (int_of_string_opt a, int_of_string_opt b) with
            | Some a, Some b -> Some (a, b)
            | _ -> None)
        | _ -> None);
  }

let with_engine ?jobs ?cache ?policy f =
  let e = Engine.create ?jobs ?cache ?policy () in
  Fun.protect ~finally:(fun () -> Engine.shutdown e) (fun () -> f e)

let xs = List.init 12 (fun i -> i)
let expected = List.map (fun x -> (x, x * x)) xs

(* Unwrap a supervised sweep that is expected to be failure-free. *)
let oks rs =
  List.map
    (function
      | Ok v -> v
      | Error d -> Alcotest.failf "unexpected quarantine: %s" (Hcv_obs.Diag.to_string d))
    rs

let test_map_matches_serial () =
  List.iter
    (fun jobs ->
      with_engine ~jobs (fun e ->
          Alcotest.(check (list (pair int int)))
            (Printf.sprintf "map jobs=%d" jobs)
            expected
            (Engine.map e (fun x -> (x, x * x)) xs)))
    [ 1; 3 ]

let test_warm_cache_computes_nothing () =
  let cache = Cache.in_memory () in
  with_engine ~cache (fun e ->
      Atomic.set computed 0;
      let cold = oks (Engine.sweep e ~codec square xs) in
      Alcotest.(check int) "cold run computes all" 12 (Atomic.get computed);
      Alcotest.(check (list (pair int int))) "cold results" expected cold;
      let warm = oks (Engine.sweep e ~codec square xs) in
      Alcotest.(check int) "warm run computes nothing" 12 (Atomic.get computed);
      Alcotest.(check (list (pair int int))) "warm results equal" expected warm;
      let s = Cache.stats cache in
      Alcotest.(check int) "12 hits" 12 s.Cache.hits;
      Alcotest.(check int) "12 misses" 12 s.Cache.misses)

let test_decode_failure_recomputes () =
  let cache = Cache.in_memory () in
  (* Poison one entry with bytes the codec cannot decode. *)
  Cache.store cache ~key:(codec.Engine.cell_key 5) "garbage";
  with_engine ~cache (fun e ->
      Atomic.set computed 0;
      let out = oks (Engine.sweep e ~codec square xs) in
      Alcotest.(check (list (pair int int)))
        "results correct despite poison" expected out;
      Alcotest.(check int) "all recomputed (none cached)" 12 (Atomic.get computed);
      let s = Cache.stats cache in
      Alcotest.(check int) "poisoned probe is not a hit" 0 s.Cache.hits;
      (* The recomputed value replaced the poison. *)
      Atomic.set computed 0;
      ignore (Engine.sweep e ~codec square [ 5 ]);
      Alcotest.(check int) "healed entry now serves" 0 (Atomic.get computed))

let test_resume_from_partial_cache () =
  (* Simulate a killed sweep: only a prefix of the cells made it to
     the cache.  The resumed sweep must complete the rest and return
     exactly what an uninterrupted run returns. *)
  let cache = Cache.in_memory () in
  with_engine ~cache (fun e ->
      ignore (Engine.sweep e ~codec square (Hcv_support.Listx.take 5 xs)));
  with_engine ~jobs:3 ~cache (fun e ->
      Atomic.set computed 0;
      let resumed = oks (Engine.sweep e ~codec square xs) in
      Alcotest.(check (list (pair int int)))
        "resumed output identical" expected resumed;
      Alcotest.(check int) "only the missing cells computed" 7 (Atomic.get computed))

let test_sweep_parallel_matches_serial () =
  let serial =
    let cache = Cache.in_memory () in
    with_engine ~cache (fun e -> oks (Engine.sweep e ~codec square xs))
  in
  let parallel =
    let cache = Cache.in_memory () in
    with_engine ~jobs:4 ~cache (fun e -> oks (Engine.sweep e ~codec square xs))
  in
  Alcotest.(check (list (pair int int))) "jobs=4 equals jobs=1" serial parallel

(* ----- supervised execution ---------------------------------------- *)

(* Injected transient faults are retried away: the sweep output is the
   fault-free output, and nothing is quarantined. *)
let test_transient_fault_recovered () =
  let plan =
    R.Inject.plan ~seed:7
      [ R.Inject.spec ~prob:1.0 ~max_fires:2 R.Inject.Task_raise ]
  in
  let out =
    R.Inject.with_plan plan (fun () ->
        with_engine (fun e -> Engine.sweep e ~codec square xs))
  in
  Alcotest.(check int) "both injected faults fired" 2
    (R.Inject.total_fires plan);
  Alcotest.(check (list (pair int int)))
    "recovered output identical to fault-free" expected (oks out)

(* A persistently failing cell is quarantined in its own slot; every
   other cell completes, and the poisoned cell is never cached. *)
let test_permanent_fault_quarantined () =
  let cache = Cache.in_memory () in
  let plan =
    R.Inject.plan ~seed:7
      [
        R.Inject.spec ~prob:1.0 ~max_fires:max_int ~key:"cell-5"
          ~transient:false R.Inject.Task_raise;
      ]
  in
  List.iter
    (fun jobs ->
      let out =
        R.Inject.with_plan plan (fun () ->
            with_engine ~jobs ~cache (fun e -> Engine.sweep e ~codec square xs))
      in
      let quarantined =
        List.filteri (fun i r -> Result.is_error r && i <> 5) out
      in
      Alcotest.(check int)
        (Printf.sprintf "only cell 5 quarantined (jobs=%d)" jobs)
        0
        (List.length quarantined);
      (match List.nth out 5 with
      | Error d ->
        Alcotest.(check string) "injected-fault code" "injected-fault"
          (Hcv_obs.Diag.code d)
      | Ok _ -> Alcotest.fail "cell 5 should be quarantined");
      List.iteri
        (fun i r ->
          if i <> 5 then
            match r with
            | Ok v ->
              Alcotest.(check (pair int int))
                (Printf.sprintf "cell %d completes" i)
                (i, i * i) v
            | Error d ->
              Alcotest.failf "cell %d quarantined: %s" i
                (Hcv_obs.Diag.to_string d))
        out;
      Alcotest.(check (option string))
        (Printf.sprintf "failed cell never cached (jobs=%d)" jobs)
        None
        (let r = Cache.find cache "cell-5" in
         Cache.demote_hit cache;
         r))
    [ 1; 3 ]

(* An unhandled real exception in a task is retried, then quarantined
   with the exception in the diagnostic context — the fan-out never
   aborts. *)
let test_real_exception_quarantined () =
  let attempts = Atomic.make 0 in
  let f x =
    if x = 3 then begin
      Atomic.incr attempts;
      failwith "boom"
    end
    else square x
  in
  let out =
    with_engine
      ~policy:{ R.Retry.max_attempts = 3; backoff_s = 0.0; jitter = 0.0 }
      (fun e -> Engine.sweep e ~codec f xs)
  in
  Alcotest.(check int) "retried to the attempt budget" 3
    (Atomic.get attempts);
  (match List.nth out 3 with
  | Error d ->
    Alcotest.(check string) "task-failed code" "task-failed"
      (Hcv_obs.Diag.code d);
    Alcotest.(check bool) "exception recorded" true
      (List.mem_assoc "exn" (Hcv_obs.Diag.fields d))
  | Ok _ -> Alcotest.fail "cell 3 should be quarantined");
  Alcotest.(check int) "all other cells completed" 11
    (List.length (List.filter Result.is_ok out))

let suite =
  [
    Alcotest.test_case "map matches serial" `Quick test_map_matches_serial;
    Alcotest.test_case "warm cache computes nothing" `Quick
      test_warm_cache_computes_nothing;
    Alcotest.test_case "decode failure recomputes" `Quick
      test_decode_failure_recomputes;
    Alcotest.test_case "resume from partial cache" `Quick
      test_resume_from_partial_cache;
    Alcotest.test_case "parallel sweep equals serial" `Quick
      test_sweep_parallel_matches_serial;
    Alcotest.test_case "transient fault retried away" `Quick
      test_transient_fault_recovered;
    Alcotest.test_case "permanent fault quarantined per cell" `Quick
      test_permanent_fault_quarantined;
    Alcotest.test_case "real exception quarantined with context" `Quick
      test_real_exception_quarantined;
  ]
