(* The sweep engine: memoisation, decode-failure recovery, and
   resume-from-partial-cache determinism. *)

open Hcv_explore

(* A codec for (int -> int * int) cells with a computation counter, so
   tests can distinguish cached from computed results.  Atomic because
   workers run on separate domains. *)
let computed = Atomic.make 0

let square x =
  Atomic.incr computed;
  (x, x * x)

let codec =
  {
    Engine.cell_key = (fun x -> Printf.sprintf "cell-%d" x);
    encode = (fun (x, y) -> Printf.sprintf "%d:%d" x y);
    decode =
      (fun s ->
        match String.split_on_char ':' s with
        | [ a; b ] -> (
            match (int_of_string_opt a, int_of_string_opt b) with
            | Some a, Some b -> Some (a, b)
            | _ -> None)
        | _ -> None);
  }

let with_engine ?jobs ?cache f =
  let e = Engine.create ?jobs ?cache () in
  Fun.protect ~finally:(fun () -> Engine.shutdown e) (fun () -> f e)

let xs = List.init 12 (fun i -> i)
let expected = List.map (fun x -> (x, x * x)) xs

let test_map_matches_serial () =
  List.iter
    (fun jobs ->
      with_engine ~jobs (fun e ->
          Alcotest.(check (list (pair int int)))
            (Printf.sprintf "map jobs=%d" jobs)
            expected
            (Engine.map e (fun x -> (x, x * x)) xs)))
    [ 1; 3 ]

let test_warm_cache_computes_nothing () =
  let cache = Cache.in_memory () in
  with_engine ~cache (fun e ->
      Atomic.set computed 0;
      let cold = Engine.sweep e ~codec square xs in
      Alcotest.(check int) "cold run computes all" 12 (Atomic.get computed);
      Alcotest.(check (list (pair int int))) "cold results" expected cold;
      let warm = Engine.sweep e ~codec square xs in
      Alcotest.(check int) "warm run computes nothing" 12 (Atomic.get computed);
      Alcotest.(check (list (pair int int))) "warm results equal" expected warm;
      let s = Cache.stats cache in
      Alcotest.(check int) "12 hits" 12 s.Cache.hits;
      Alcotest.(check int) "12 misses" 12 s.Cache.misses)

let test_decode_failure_recomputes () =
  let cache = Cache.in_memory () in
  (* Poison one entry with bytes the codec cannot decode. *)
  Cache.store cache ~key:(codec.Engine.cell_key 5) "garbage";
  with_engine ~cache (fun e ->
      Atomic.set computed 0;
      let out = Engine.sweep e ~codec square xs in
      Alcotest.(check (list (pair int int)))
        "results correct despite poison" expected out;
      Alcotest.(check int) "all recomputed (none cached)" 12 (Atomic.get computed);
      let s = Cache.stats cache in
      Alcotest.(check int) "poisoned probe is not a hit" 0 s.Cache.hits;
      (* The recomputed value replaced the poison. *)
      Atomic.set computed 0;
      ignore (Engine.sweep e ~codec square [ 5 ]);
      Alcotest.(check int) "healed entry now serves" 0 (Atomic.get computed))

let test_resume_from_partial_cache () =
  (* Simulate a killed sweep: only a prefix of the cells made it to
     the cache.  The resumed sweep must complete the rest and return
     exactly what an uninterrupted run returns. *)
  let cache = Cache.in_memory () in
  with_engine ~cache (fun e ->
      ignore (Engine.sweep e ~codec square (Hcv_support.Listx.take 5 xs)));
  with_engine ~jobs:3 ~cache (fun e ->
      Atomic.set computed 0;
      let resumed = Engine.sweep e ~codec square xs in
      Alcotest.(check (list (pair int int)))
        "resumed output identical" expected resumed;
      Alcotest.(check int) "only the missing cells computed" 7 (Atomic.get computed))

let test_sweep_parallel_matches_serial () =
  let serial =
    let cache = Cache.in_memory () in
    with_engine ~cache (fun e -> Engine.sweep e ~codec square xs)
  in
  let parallel =
    let cache = Cache.in_memory () in
    with_engine ~jobs:4 ~cache (fun e -> Engine.sweep e ~codec square xs)
  in
  Alcotest.(check (list (pair int int))) "jobs=4 equals jobs=1" serial parallel

let suite =
  [
    Alcotest.test_case "map matches serial" `Quick test_map_matches_serial;
    Alcotest.test_case "warm cache computes nothing" `Quick
      test_warm_cache_computes_nothing;
    Alcotest.test_case "decode failure recomputes" `Quick
      test_decode_failure_recomputes;
    Alcotest.test_case "resume from partial cache" `Quick
      test_resume_from_partial_cache;
    Alcotest.test_case "parallel sweep equals serial" `Quick
      test_sweep_parallel_matches_serial;
  ]
