(* The heterogeneous core: profiling, estimation, selection, the
   Fig. 5 scheduler and the pipeline. *)

open Hcv_support
open Hcv_ir
open Hcv_machine
open Hcv_energy
open Hcv_core

let machine = Presets.machine_4c ~buses:1

let small_loops () =
  [
    Builders.dotprod ~trip:50 ();
    Builders.recurrence_loop ~trip:80 ();
    Builders.wide_loop ~trip:60 ~width:6 ();
  ]

let make_ctx profile =
  let units =
    Units.of_reference ~params:Params.default ~n_clusters:4
      profile.Profile.activity
  in
  Model.ctx ~params:Params.default ~units ()

let diag_ok = function
  | Ok v -> v
  | Error d -> Alcotest.failf "unexpected diagnostic: %a" Hcv_obs.Diag.pp d

let with_profile f =
  match Profile.profile ~machine ~loops:(small_loops ()) () with
  | Error d -> Alcotest.failf "profiling failed: %a" Hcv_obs.Diag.pp d
  | Ok p -> f p

let test_profile_basics () =
  with_profile (fun p ->
      Alcotest.(check int) "3 loops" 3 (List.length p.Profile.loops);
      (* The normalised run spans t_norm_ns. *)
      Alcotest.(check (float 1.0)) "normalised time" Profile.t_norm_ns
        p.Profile.activity.Activity.exec_time_ns;
      List.iter
        (fun (lp : Profile.loop_profile) ->
          Alcotest.(check bool) "ii >= mii" true
            (lp.Profile.ii_hom >= lp.Profile.mii_hom);
          Alcotest.(check bool) "positive reps" true (lp.Profile.reps > 0.0))
        p.Profile.loops)

let test_scale_cycle_time () =
  with_profile (fun p ->
      let a = Profile.scale_cycle_time p (Q.make 3 2) in
      Alcotest.(check (float 1.0)) "time scales"
        (1.5 *. Profile.t_norm_ns)
        a.Activity.exec_time_ns;
      Alcotest.(check (float 1e-6)) "counts unchanged"
        p.Profile.activity.Activity.n_comms a.Activity.n_comms)

let hetero_config () =
  let pt ct vdd = { Opconfig.cycle_time = ct; vdd } in
  Opconfig.make ~machine
    ~cluster_points:
      [|
        pt (Q.make 9 10) 1.2;
        pt (Q.make 27 20) 0.9;
        pt (Q.make 27 20) 0.9;
        pt (Q.make 27 20) 0.9;
      |]
    ~icn_point:(pt (Q.make 9 10) 1.0)
    ~cache_point:(pt (Q.make 9 10) 1.2)

let test_estimate_bounds () =
  with_profile (fun p ->
      let config = hetero_config () in
      List.iter
        (fun (lp : Profile.loop_profile) ->
          let it = Estimate.loop_it ~config lp in
          (* The estimated IT is at least the MIT. *)
          Alcotest.(check bool) "it >= mit" true
            (Q.( >= ) it (Mit.mit ~config lp.Profile.loop.Loop.ddg));
          let est = Estimate.loop_estimate ~config lp in
          Alcotest.(check bool) "positive exec" true (est.Estimate.exec_ns > 0.0))
        p.Profile.loops)

let test_estimate_activity () =
  with_profile (fun p ->
      let config = hetero_config () in
      let act = Estimate.predict_activity ~config p in
      (* Event counts carry over from the reference. *)
      Alcotest.(check (float 1e-3)) "comms preserved"
        p.Profile.activity.Activity.n_comms act.Activity.n_comms;
      Alcotest.(check (float 1e-3)) "mem preserved"
        p.Profile.activity.Activity.n_mem act.Activity.n_mem)

let test_selection () =
  with_profile (fun p ->
      let ctx = make_ctx p in
      let homo = diag_ok (Select.optimum_homogeneous ~ctx ~machine p) in
      (* The optimum homogeneous is no worse than the reference design
         itself (which is in the sweep at ct=1, vdd=1). *)
      let ref_ed2 =
        Model.ed2 ctx
          ~config:(Presets.reference_config machine)
          p.Profile.activity
      in
      Alcotest.(check bool) "homo optimum <= reference" true
        (homo.Select.predicted_ed2 <= ref_ed2 +. 1e-9);
      (* Homogeneous configs share one voltage. *)
      let cfg = homo.Select.config in
      Alcotest.(check bool) "single voltage" true
        (Opconfig.vdd cfg (Comp.Cluster 0) = Opconfig.vdd cfg Comp.Icn
        && Opconfig.vdd cfg Comp.Icn = Opconfig.vdd cfg Comp.Cache);
      let hetero = diag_ok (Select.select_heterogeneous ~ctx ~machine p) in
      Alcotest.(check bool) "hetero config realisable" true
        (Opconfig.realisable hetero.Select.config);
      let uniform = diag_ok (Select.select_uniform ~ctx ~machine p) in
      Alcotest.(check bool) "uniform is homogeneous-frequency" true
        (Opconfig.is_homogeneous uniform.Select.config);
      (* The heterogeneous sweep includes the uniform points. *)
      Alcotest.(check bool) "hetero <= uniform (predicted)" true
        (hetero.Select.predicted_ed2 <= uniform.Select.predicted_ed2 +. 1e-9))

let test_preplacement () =
  with_profile (fun p ->
      let config = hetero_config () in
      let lp =
        List.find
          (fun (lp : Profile.loop_profile) ->
            lp.Profile.loop.Loop.name = "recurrence")
          p.Profile.loops
      in
      let ddg = lp.Profile.loop.Loop.ddg in
      let mit = Mit.mit ~config ddg in
      match Hcv_sched.Clocking.of_config ~config ~it:mit with
      | Error _ -> Alcotest.fail "clocking failed at MIT"
      | Ok clocking -> (
        match Hsched.preplace_recurrences ~config ~clocking ddg with
        | Error d -> Alcotest.failf "preplacement failed: %a" Hcv_obs.Diag.pp d
        | Ok fixed ->
          (* The loop's 3-node critical recurrence does not fit the slow
             clusters at MIT, so it must be pre-placed — on the fast
             cluster. *)
          Alcotest.(check int) "3 nodes fixed" 3 (List.length fixed);
          List.iter
            (fun (_, c) -> Alcotest.(check int) "fast cluster" 0 c)
            fixed))

let test_hsched_valid () =
  with_profile (fun p ->
      let ctx = make_ctx p in
      let config = hetero_config () in
      List.iter
        (fun (lp : Profile.loop_profile) ->
          match Hsched.schedule ~ctx ~config ~loop:lp.Profile.loop () with
          | Error d -> Alcotest.failf "hsched failed: %a" Hcv_obs.Diag.pp d
          | Ok (sched, stats) ->
            Alcotest.(check bool) "validates" true
              (Hcv_sched.Schedule.validate sched = Ok ());
            Alcotest.(check bool) "IT >= MIT" true
              (Q.( >= ) stats.Hsched.it stats.Hsched.mit))
        p.Profile.loops)

let test_pipeline () =
  match
    Pipeline.run ~machine ~name:"mini" ~loops:(small_loops ()) ()
  with
  | Error d -> Alcotest.failf "pipeline failed: %a" Hcv_obs.Diag.pp d
  | Ok r ->
    Alcotest.(check int) "no fallbacks" 0 r.Pipeline.fallbacks;
    (* A 3-loop toy workload is not the calibrated population; just
       require a sane, finite ratio. *)
    Alcotest.(check bool) "ratio sane" true
      (r.Pipeline.ed2_ratio > 0.3 && r.Pipeline.ed2_ratio < 1.3);
    Alcotest.(check bool) "positive times" true
      (r.Pipeline.ed2_homo > 0.0 && r.Pipeline.ed2_hetero > 0.0)

let test_pipeline_hetero_sim_agrees () =
  (* Cross-check the measured heterogeneous schedules against the
     event-driven simulator. *)
  match Pipeline.run ~machine ~name:"mini" ~loops:(small_loops ()) () with
  | Error d -> Alcotest.failf "pipeline failed: %a" Hcv_obs.Diag.pp d
  | Ok r ->
    List.iter
      (fun (lr : Pipeline.loop_result) ->
        let trip = lr.Pipeline.profile.Profile.loop.Loop.trip in
        match Hcv_sim.Simulator.measure ~schedule:lr.Pipeline.schedule ~trip with
        | Error vs ->
          Alcotest.failf "sim violations: %s" (String.concat "; " vs)
        | Ok act ->
          let analytic =
            Profile.activity_of_schedule lr.Pipeline.schedule ~trip
          in
          Alcotest.(check (float 1e-6))
            "sim time = analytic" analytic.Activity.exec_time_ns
            act.Activity.exec_time_ns)
      r.Pipeline.loop_results

let suite =
  [
    Alcotest.test_case "profile basics" `Quick test_profile_basics;
    Alcotest.test_case "homogeneous cycle-time scaling" `Quick
      test_scale_cycle_time;
    Alcotest.test_case "estimate bounds" `Quick test_estimate_bounds;
    Alcotest.test_case "estimate activity" `Quick test_estimate_activity;
    Alcotest.test_case "selection" `Quick test_selection;
    Alcotest.test_case "recurrence pre-placement" `Quick test_preplacement;
    Alcotest.test_case "heterogeneous schedules validate" `Quick
      test_hsched_valid;
    Alcotest.test_case "pipeline" `Quick test_pipeline;
    Alcotest.test_case "pipeline vs simulator" `Quick
      test_pipeline_hetero_sim_agrees;
  ]
