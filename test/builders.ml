(* Shared loop/machine builders for the test suite.

   The loop builders live in Hcv_check.Gen (the fuzzer and the tests
   must draw DDGs from one place); this module re-exports them plus a
   few machine presets the tests use. *)

open Hcv_ir
open Hcv_machine

let op_add_f = Opcode.make Opcode.Arith Opcode.Fp
let op_add_i = Opcode.make Opcode.Arith Opcode.Int
let op_mul_f = Opcode.make Opcode.Mult Opcode.Fp
let op_div_f = Opcode.make Opcode.Div Opcode.Fp
let op_ld = Opcode.make Opcode.Memory Opcode.Fp
let op_st = Opcode.make Opcode.Memory Opcode.Fp

let dotprod = Hcv_check.Gen.dotprod
let recurrence_loop = Hcv_check.Gen.recurrence_loop
let wide_loop = Hcv_check.Gen.wide_loop
let random_loop = Hcv_check.Gen.random_loop

let machine_1bus = Presets.machine_4c ~buses:1
let machine_2bus = Presets.machine_4c ~buses:2

let single_cluster =
  Machine.make ~name:"single"
    ~clusters:
      [|
        Cluster.make ~name:"big" ~int_fus:4 ~fp_fus:4 ~mem_ports:4
          ~registers:64 ();
      |]
    ~icn:(Icn.make ~buses:1 ())
    ()
