(* Shared loop/machine builders for the test suite. *)

open Hcv_ir
open Hcv_machine

let op_add_f = Opcode.make Opcode.Arith Opcode.Fp
let op_add_i = Opcode.make Opcode.Arith Opcode.Int
let op_mul_f = Opcode.make Opcode.Mult Opcode.Fp
let op_div_f = Opcode.make Opcode.Div Opcode.Fp
let op_ld = Opcode.make Opcode.Memory Opcode.Fp
let op_st = Opcode.make Opcode.Memory Opcode.Fp

(* A simple FP dot-product-like loop:
     a = load; b = load; m = a*b; s = s + m (loop-carried self add). *)
let dotprod ?(trip = 100) () =
  let b = Ddg.Builder.create () in
  let a = Ddg.Builder.add_instr b ~name:"a" op_ld in
  let b2 = Ddg.Builder.add_instr b ~name:"b" op_ld in
  let m = Ddg.Builder.add_instr b ~name:"m" op_mul_f in
  let s = Ddg.Builder.add_instr b ~name:"s" op_add_f in
  Ddg.Builder.add_edge b a m;
  Ddg.Builder.add_edge b b2 m;
  Ddg.Builder.add_edge b m s;
  Ddg.Builder.add_edge b ~distance:1 s s;
  Loop.make ~trip ~name:"dotprod" (Ddg.Builder.build b)

(* A recurrence-constrained loop: a long dependence chain feeding back
   with distance 1, plus some independent off-recurrence work. *)
let recurrence_loop ?(trip = 100) () =
  let b = Ddg.Builder.create () in
  let x1 = Ddg.Builder.add_instr b ~name:"x1" op_add_f in
  let x2 = Ddg.Builder.add_instr b ~name:"x2" op_mul_f in
  let x3 = Ddg.Builder.add_instr b ~name:"x3" op_add_f in
  Ddg.Builder.add_edge b x1 x2;
  Ddg.Builder.add_edge b x2 x3;
  Ddg.Builder.add_edge b ~distance:1 x3 x1;
  let l1 = Ddg.Builder.add_instr b ~name:"l1" op_ld in
  let l2 = Ddg.Builder.add_instr b ~name:"l2" op_ld in
  let y = Ddg.Builder.add_instr b ~name:"y" op_add_f in
  let st = Ddg.Builder.add_instr b ~name:"st" op_st in
  Ddg.Builder.add_edge b l1 y;
  Ddg.Builder.add_edge b l2 y;
  Ddg.Builder.add_edge b y st;
  Loop.make ~trip ~name:"recurrence" (Ddg.Builder.build b)

(* A resource-constrained loop: many independent memory + FP ops, no
   recurrence. *)
let wide_loop ?(trip = 100) ?(width = 8) () =
  let b = Ddg.Builder.create () in
  for k = 0 to width - 1 do
    let ld = Ddg.Builder.add_instr b ~name:(Printf.sprintf "ld%d" k) op_ld in
    let ad =
      Ddg.Builder.add_instr b ~name:(Printf.sprintf "add%d" k) op_add_f
    in
    let st = Ddg.Builder.add_instr b ~name:(Printf.sprintf "st%d" k) op_st in
    Ddg.Builder.add_edge b ld ad;
    Ddg.Builder.add_edge b ad st
  done;
  Loop.make ~trip ~name:"wide" (Ddg.Builder.build b)

(* A seeded random loop: a random DAG over [n] instructions (only
   forward zero-distance edges, so the acyclicity invariant holds by
   construction) plus a few loop-carried edges in either direction.
   Equal seeds give equal loops; used by the property tests that check
   the indexed hot-path data structures against reference
   implementations. *)
let random_loop ?(n = 20) ~seed () =
  let open Hcv_support in
  let rng = Rng.create seed in
  let ops = [ op_add_f; op_add_i; op_mul_f; op_div_f; op_ld; op_st ] in
  let b = Ddg.Builder.create () in
  let ids = Array.init n (fun _ -> Ddg.Builder.add_instr b (Rng.pick rng ops)) in
  for j = 1 to n - 1 do
    if Rng.chance rng 0.85 then Ddg.Builder.add_edge b ids.(Rng.int rng j) ids.(j);
    if Rng.chance rng 0.35 then Ddg.Builder.add_edge b ids.(Rng.int rng j) ids.(j);
    if Rng.chance rng 0.2 then
      Ddg.Builder.add_edge b ~distance:(1 + Rng.int rng 2) ids.(j)
        ids.(Rng.int rng j)
  done;
  Loop.make ~trip:100 ~name:(Printf.sprintf "rand%d" seed) (Ddg.Builder.build b)

let machine_1bus = Presets.machine_4c ~buses:1
let machine_2bus = Presets.machine_4c ~buses:2

let single_cluster =
  Machine.make ~name:"single"
    ~clusters:
      [|
        Cluster.make ~name:"big" ~int_fus:4 ~fp_fus:4 ~mem_ports:4
          ~registers:64 ();
      |]
    ~icn:(Icn.make ~buses:1 ())
    ()
