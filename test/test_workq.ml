(* The mutex/condition work queue feeding the explore worker pool. *)

open Hcv_explore

let test_fifo () =
  let q = Workq.create () in
  List.iter (Workq.push q) [ 1; 2; 3 ];
  Alcotest.(check int) "length" 3 (Workq.length q);
  Alcotest.(check (option int)) "first" (Some 1) (Workq.pop q);
  Alcotest.(check (option int)) "second" (Some 2) (Workq.pop q);
  Workq.push q 4;
  Alcotest.(check (option int)) "third" (Some 3) (Workq.pop q);
  Alcotest.(check (option int)) "fourth" (Some 4) (Workq.pop q)

let test_close_drains () =
  let q = Workq.create () in
  List.iter (Workq.push q) [ 1; 2 ];
  Workq.close q;
  Alcotest.(check bool) "closed" true (Workq.is_closed q);
  (* A closed queue still hands out what was queued... *)
  Alcotest.(check (option int)) "drain 1" (Some 1) (Workq.pop q);
  Alcotest.(check (option int)) "drain 2" (Some 2) (Workq.pop q);
  (* ...and only then reports exhaustion. *)
  Alcotest.(check (option int)) "exhausted" None (Workq.pop q);
  Alcotest.check_raises "push after close"
    (Invalid_argument "Workq.push: queue is closed") (fun () ->
      Workq.push q 3)

let test_pop_blocks_until_push () =
  let q = Workq.create () in
  (* A consumer domain blocks in pop until the producer delivers. *)
  let consumer = Domain.spawn (fun () -> Workq.pop q) in
  Unix.sleepf 0.05;
  Workq.push q 42;
  Alcotest.(check (option int)) "received" (Some 42) (Domain.join consumer)

let test_close_wakes_consumers () =
  let q = Workq.create () in
  let consumers =
    List.init 3 (fun _ -> Domain.spawn (fun () -> Workq.pop q))
  in
  Unix.sleepf 0.05;
  Workq.close q;
  List.iter
    (fun d -> Alcotest.(check (option int)) "woken empty" None (Domain.join d))
    consumers

let suite =
  [
    Alcotest.test_case "fifo order" `Quick test_fifo;
    Alcotest.test_case "close drains then stops" `Quick test_close_drains;
    Alcotest.test_case "pop blocks until push" `Quick
      test_pop_blocks_until_push;
    Alcotest.test_case "close wakes consumers" `Quick
      test_close_wakes_consumers;
  ]
