(* Machine descriptions: clusters, ICN, designs, presets. *)

open Hcv_support
open Hcv_ir
open Hcv_machine

let test_cluster () =
  let c = Cluster.paper in
  Alcotest.(check int) "int fu" 1 (Cluster.fu_count c Opcode.Int_fu);
  Alcotest.(check int) "fp fu" 1 (Cluster.fu_count c Opcode.Fp_fu);
  Alcotest.(check int) "mem port" 1 (Cluster.fu_count c Opcode.Mem_port);
  Alcotest.(check int) "registers" 16 c.Cluster.registers;
  Alcotest.(check int) "issue width" 3 (Cluster.issue_width c);
  (* Partial and even FU-less clusters are constructible: capability
     asymmetry is a placement question, not a structural one. *)
  let bare = Cluster.make ~int_fus:0 ~fp_fus:0 ~mem_ports:0 ~registers:4 () in
  Alcotest.(check int) "bare issue width" 0 (Cluster.issue_width bare);
  List.iter
    (fun kind ->
      Alcotest.(check int)
        (Printf.sprintf "bare %s count" (Opcode.fu_to_string kind))
        0 (Cluster.fu_count bare kind);
      Alcotest.(check bool)
        (Printf.sprintf "bare not %s capable" (Opcode.fu_to_string kind))
        false (Cluster.capable bare kind))
    Opcode.all_fu_kinds;
  let mem_only = Cluster.make ~int_fus:0 ~fp_fus:0 ~mem_ports:2 ~registers:8 () in
  Alcotest.(check int) "mem-only issue width" 2 (Cluster.issue_width mem_only);
  Alcotest.(check bool) "mem-only capable mem" true
    (Cluster.capable mem_only Opcode.Mem_port);
  Alcotest.(check bool) "mem-only not capable int" false
    (Cluster.capable mem_only Opcode.Int_fu);
  (* Negative counts stay structurally invalid. *)
  Alcotest.check_raises "negative resources"
    (Invalid_argument "Cluster.make: negative resource count") (fun () ->
      ignore (Cluster.make ~int_fus:(-1) ~fp_fus:0 ~mem_ports:0 ~registers:4 ()))

let test_icn () =
  Alcotest.(check int) "1 bus" 1 Icn.paper_1bus.Icn.buses;
  Alcotest.(check int) "2 buses" 2 Icn.paper_2bus.Icn.buses;
  Alcotest.(check int) "latency" 1 Icn.paper_1bus.Icn.latency_cycles;
  Alcotest.check_raises "no buses"
    (Invalid_argument "Icn.make: need at least one bus") (fun () ->
      ignore (Icn.make ~buses:0 ()))

let test_paper_machine () =
  let m = Presets.machine_4c ~buses:1 in
  Alcotest.(check int) "4 clusters" 4 (Machine.n_clusters m);
  Alcotest.(check int) "4 int fus" 4 (Machine.fu_total m Opcode.Int_fu);
  Alcotest.(check int) "4 fp fus" 4 (Machine.fu_total m Opcode.Fp_fu);
  Alcotest.(check int) "4 mem ports" 4 (Machine.fu_total m Opcode.Mem_port);
  Alcotest.(check int) "6 components" 6 (List.length (Machine.components m))

let test_presets_factors () =
  Alcotest.(check int) "5 fast factors" 5 (List.length Presets.fast_factors);
  Alcotest.(check int) "4 slow factors" 4 (List.length Presets.slow_factors);
  Alcotest.(check bool) "slow includes 1" true
    (List.exists (Q.equal Q.one) Presets.slow_factors);
  (* The paper's 1.33 is the exact 4/3. *)
  Alcotest.(check bool) "4/3 present" true
    (List.exists (Q.equal (Q.make 4 3)) Presets.slow_factors)

let test_volt_ranges () =
  Alcotest.(check (float 1e-9)) "cluster lo" 0.7 (List.hd Presets.cluster_vdds);
  Alcotest.(check (float 1e-9)) "cluster hi" 1.2
    (List.nth Presets.cluster_vdds (List.length Presets.cluster_vdds - 1));
  Alcotest.(check (float 1e-9)) "icn lo" 0.8 (List.hd Presets.icn_vdds);
  Alcotest.(check (float 1e-9)) "cache hi" 1.4
    (List.nth Presets.cache_vdds (List.length Presets.cache_vdds - 1));
  (* 0.05 V steps. *)
  Alcotest.(check int) "cluster count" 11 (List.length Presets.cluster_vdds)

let test_opconfig_basics () =
  let m = Presets.machine_4c ~buses:1 in
  let cfg = Presets.reference_config m in
  Alcotest.(check bool) "homogeneous" true (Opconfig.is_homogeneous cfg);
  Alcotest.(check int) "fastest cluster" 0 (Opconfig.fastest_cluster cfg);
  Alcotest.(check bool) "fmax is 1 GHz" true
    (Q.equal (Opconfig.fmax cfg (Comp.Cluster 0)) Q.one);
  Alcotest.(check bool) "realisable" true (Opconfig.realisable cfg)

let test_opconfig_hetero () =
  let m = Presets.machine_4c ~buses:1 in
  let pts k = { Opconfig.cycle_time = Q.make k 10; vdd = 1.0 } in
  let cfg =
    Opconfig.make ~machine:m
      ~cluster_points:[| pts 9; pts 12; pts 12; pts 12 |]
      ~icn_point:(pts 9) ~cache_point:(pts 9)
  in
  Alcotest.(check bool) "not homogeneous" false (Opconfig.is_homogeneous cfg);
  Alcotest.(check int) "fastest is 0" 0 (Opconfig.fastest_cluster cfg);
  Alcotest.(check bool) "fastest ct" true
    (Q.equal (Opconfig.fastest_cluster_cycle_time cfg) (Q.make 9 10))

let test_comp () =
  let comps = Comp.all ~n_clusters:2 in
  Alcotest.(check int) "4 comps" 4 (List.length comps);
  Alcotest.(check string) "names" "C0,C1,ICN,cache"
    (String.concat "," (List.map Comp.to_string comps))

let suite =
  [
    Alcotest.test_case "cluster" `Quick test_cluster;
    Alcotest.test_case "icn" `Quick test_icn;
    Alcotest.test_case "paper machine" `Quick test_paper_machine;
    Alcotest.test_case "cycle-time factors" `Quick test_presets_factors;
    Alcotest.test_case "voltage ranges" `Quick test_volt_ranges;
    Alcotest.test_case "reference config" `Quick test_opconfig_basics;
    Alcotest.test_case "heterogeneous config" `Quick test_opconfig_hetero;
    Alcotest.test_case "components" `Quick test_comp;
  ]
