(* The pre-incremental-gain partitioner, kept verbatim as a quality
   reference: the corpus test in test_partition checks that the
   rewritten Partition never ends at a worse exact score than this
   implementation on any generated case.  Do not optimise this file —
   its O(levels x passes x n x n_clusters) full-estimate behaviour is
   exactly what it is here to pin. *)

open Hcv_support
open Hcv_ir

type result = { assignment : int array; score : float }

(* A level of the multilevel hierarchy: [n] macronodes, each with its
   member instructions, optional fixed cluster, and weighted undirected
   adjacency (indices within the level). *)
type level = {
  n : int;
  members : int list array;
  fixed : int option array;
  adj : (int, int) Hashtbl.t array;  (* neighbour -> weight *)
}

let edge_weight (e : Edge.t) = if Edge.carries_value e then 2 else 1

let finest_level ~fixed_map ddg =
  let n = Ddg.n_instrs ddg in
  let adj = Array.init n (fun _ -> Hashtbl.create 4) in
  let bump a b w =
    if a <> b then begin
      let add x y =
        Hashtbl.replace adj.(x) y
          (w + Option.value (Hashtbl.find_opt adj.(x) y) ~default:0)
      in
      add a b;
      add b a
    end
  in
  List.iter (fun (e : Edge.t) -> bump e.src e.dst (edge_weight e)) (Ddg.edges ddg);
  {
    n;
    members = Array.init n (fun i -> [ i ]);
    fixed = Array.init n (fun i -> fixed_map.(i));
    adj;
  }

(* Matching may only merge nodes with identical placement constraints:
   merging a pre-placed (fixed) node with a free one would freeze the
   free node's instructions to that cluster for every coarser level and
   bar refinement from ever moving them. *)
let compatible a b =
  match (a, b) with
  | Some x, Some y -> x = y
  | None, None -> true
  | Some _, None | None, Some _ -> false

let merge_fixed a b = match a with Some _ -> a | None -> b

(* One round of heavy-edge matching; returns the coarser level and the
   mapping old-index -> new-index, or None when nothing merged. *)
let coarsen_once level =
  let matched = Array.make level.n (-1) in
  let order = Listx.range 0 level.n in
  let merged = ref 0 in
  List.iter
    (fun v ->
      if matched.(v) = -1 then begin
        (* Heaviest compatible unmatched neighbour. *)
        let best = ref (-1) and best_w = ref 0 in
        Hashtbl.iter
          (fun u w ->
            if
              matched.(u) = -1 && u <> v
              && compatible level.fixed.(v) level.fixed.(u)
              && (w > !best_w || (w = !best_w && (!best = -1 || u < !best)))
            then begin
              best := u;
              best_w := w
            end)
          level.adj.(v);
        if !best >= 0 then begin
          matched.(v) <- !best;
          matched.(!best) <- v;
          incr merged
        end
      end)
    order;
  if !merged = 0 then None
  else begin
    (* Assign new indices: the lower endpoint of each pair leads. *)
    let map = Array.make level.n (-1) in
    let next = ref 0 in
    List.iter
      (fun v ->
        if map.(v) = -1 then begin
          map.(v) <- !next;
          let u = matched.(v) in
          if u >= 0 then map.(u) <- !next;
          incr next
        end)
      order;
    let n' = !next in
    let members = Array.make n' [] in
    let fixed = Array.make n' None in
    Array.iteri
      (fun v nv ->
        members.(nv) <- members.(nv) @ level.members.(v);
        fixed.(nv) <- merge_fixed fixed.(nv) level.fixed.(v))
      map;
    let adj = Array.init n' (fun _ -> Hashtbl.create 4) in
    Array.iteri
      (fun v nv ->
        Hashtbl.iter
          (fun u w ->
            let nu = map.(u) in
            if nu <> nv then
              Hashtbl.replace adj.(nv) nu
                (w + Option.value (Hashtbl.find_opt adj.(nv) nu) ~default:0))
          level.adj.(v))
      map;
    Some ({ n = n'; members; fixed; adj }, map)
  end

let project level macro_assignment instr_assignment =
  Array.iteri
    (fun v cl -> List.iter (fun i -> instr_assignment.(i) <- cl) level.members.(v))
    macro_assignment

(* Greedy refinement of macronode assignments at one level.  Moves are
   steepest-descent over the injected score; fixed macronodes do not
   move. *)
let refine ~n_clusters ~score ?(moves = ref 0) level macro_assignment
    instr_assignment =
  let current = ref (score instr_assignment) in
  let improved = ref true in
  let passes = ref 0 in
  while !improved && !passes < 2 do
    improved := false;
    incr passes;
    for v = 0 to level.n - 1 do
      if level.fixed.(v) = None then begin
        let home = macro_assignment.(v) in
        let best_cl = ref home and best_s = ref !current in
        for cl = 0 to n_clusters - 1 do
          if cl <> home then begin
            List.iter (fun i -> instr_assignment.(i) <- cl) level.members.(v);
            let s = score instr_assignment in
            if s < !best_s then begin
              best_s := s;
              best_cl := cl
            end
          end
        done;
        List.iter
          (fun i -> instr_assignment.(i) <- !best_cl)
          level.members.(v);
        if !best_cl <> home then begin
          macro_assignment.(v) <- !best_cl;
          current := !best_s;
          improved := true;
          incr moves
        end
      end
    done
  done;
  !current

let initial_even ~n_clusters ddg =
  let a = Array.make (Ddg.n_instrs ddg) 0 in
  List.iteri (fun k i -> a.(i) <- k mod n_clusters) (Ddg.topo_order ddg);
  a

(* Merge the members of each group into one macronode, producing the
   level just above the instruction level. *)
(* Invariant: group/fixed validation below guards caller-constructed
   data (Hsched derives both from the loop's own DDG), not user input —
   violations are bugs, hence [invalid_arg] rather than a Diag. *)
let coarsen_groups level groups =
  let n = level.n in
  let map = Array.make n (-1) in
  let next = ref 0 in
  List.iter
    (fun group ->
      match group with
      | [] -> ()
      | _ ->
        let g = !next in
        incr next;
        List.iter
          (fun i ->
            if i < 0 || i >= n then
              invalid_arg "Partition.run: group id out of range";
            if map.(i) <> -1 then invalid_arg "Partition.run: groups overlap";
            map.(i) <- g)
          group)
    groups;
  for i = 0 to n - 1 do
    if map.(i) = -1 then begin
      map.(i) <- !next;
      incr next
    end
  done;
  let n' = !next in
  let members = Array.make n' [] in
  let fixed = Array.make n' None in
  Array.iteri
    (fun v nv ->
      members.(nv) <- members.(nv) @ level.members.(v);
      (match (fixed.(nv), level.fixed.(v)) with
      | Some a, Some b when a <> b ->
        invalid_arg "Partition.run: conflicting fixed clusters in a group"
      | _, _ -> ());
      fixed.(nv) <- merge_fixed fixed.(nv) level.fixed.(v))
    map;
  let adj = Array.init n' (fun _ -> Hashtbl.create 4) in
  Array.iteri
    (fun v nv ->
      Hashtbl.iter
        (fun u w ->
          let nu = map.(u) in
          if nu <> nv then
            Hashtbl.replace adj.(nv) nu
              (w + Option.value (Hashtbl.find_opt adj.(nv) nu) ~default:0))
        level.adj.(v))
    map;
  { n = n'; members; fixed; adj }

let run ?(obs = Hcv_obs.Trace.null) ~n_clusters ~ddg ?(fixed = [])
    ?(groups = []) ?(seed = 0) ~score () =
  if n_clusters < 1 then invalid_arg "Partition.run: n_clusters < 1";
  let n = Ddg.n_instrs ddg in
  let fixed_map = Array.make n None in
  List.iter
    (fun (i, cl) ->
      if i < 0 || i >= n then invalid_arg "Partition.run: fixed id out of range";
      if cl < 0 || cl >= n_clusters then
        invalid_arg "Partition.run: fixed cluster out of range";
      fixed_map.(i) <- Some cl)
    fixed;
  if n = 0 then { assignment = [||]; score = score [||] }
  else begin
    (* Coarsen. *)
    let finest = finest_level ~fixed_map ddg in
    let levels =
      ref
        (if groups = [] then [ finest ]
         else [ coarsen_groups finest groups; finest ])
    in
    let continue_ = ref true in
    while
      !continue_
      && (match !levels with l :: _ -> l.n > n_clusters | [] -> false)
    do
      match coarsen_once (List.hd !levels) with
      | Some (l, _) -> levels := l :: !levels
      | None -> continue_ := false
    done;
    (* Initial assignment on the coarsest level: fixed nodes to their
       clusters, the rest greedily by score, heaviest (most members)
       first; the seed rotates the starting cluster for tie diversity. *)
    let coarsest = List.hd !levels in
    let macro = Array.make coarsest.n (-1) in
    let instr_assignment = Array.make n 0 in
    Array.iteri
      (fun v f -> match f with Some cl -> macro.(v) <- cl | None -> ())
      coarsest.fixed;
    let unassigned =
      List.filter (fun v -> macro.(v) = -1) (Listx.range 0 coarsest.n)
      |> List.sort (fun a b ->
             Stdlib.compare
               (List.length coarsest.members.(b))
               (List.length coarsest.members.(a)))
    in
    (* Fill with a provisional round-robin so the score sees a complete
       assignment, then greedily improve node by node. *)
    List.iteri
      (fun k v -> macro.(v) <- (k + seed) mod n_clusters)
      unassigned;
    project coarsest macro instr_assignment;
    List.iter
      (fun v ->
        let best_cl = ref macro.(v) and best_s = ref infinity in
        for cl = 0 to n_clusters - 1 do
          List.iter (fun i -> instr_assignment.(i) <- cl) coarsest.members.(v);
          let s = score instr_assignment in
          if s < !best_s then begin
            best_s := s;
            best_cl := cl
          end
        done;
        macro.(v) <- !best_cl;
        List.iter
          (fun i -> instr_assignment.(i) <- !best_cl)
          coarsest.members.(v))
      unassigned;
    (* Refine down the hierarchy.  Macro assignments at a finer level
       start from the (already projected) instruction assignment. *)
    let final_score = ref (score instr_assignment) in
    let moves = ref 0 in
    List.iter
      (fun level ->
        let macro_assignment =
          Array.init level.n (fun v ->
              match level.members.(v) with
              | i :: _ -> instr_assignment.(i)
              | [] -> 0)
        in
        final_score :=
          refine ~n_clusters ~score ~moves level macro_assignment
            instr_assignment)
      !levels;
    Hcv_obs.Trace.incr obs "partition.runs";
    Hcv_obs.Trace.add obs "partition.levels" (List.length !levels);
    Hcv_obs.Trace.add obs "partition.refine_moves" !moves;
    { assignment = instr_assignment; score = !final_score }
  end
