(* The selection sweep's contracts: structured error paths when the
   voltage model rules the whole grid out, budget-as-prefix semantics,
   and pool-vs-serial byte identity. *)

open Hcv_support
open Hcv_machine
open Hcv_energy
open Hcv_core

let machine = Presets.machine_4c ~buses:1

let small_loops () =
  [
    Builders.dotprod ~trip:50 ();
    Builders.recurrence_loop ~trip:80 ();
    Builders.wide_loop ~trip:60 ~width:6 ();
  ]

let with_profile f =
  match Profile.profile ~machine ~loops:(small_loops ()) () with
  | Error d -> Alcotest.failf "profiling failed: %a" Hcv_obs.Diag.pp d
  | Ok p -> f p

let ctx_of ?alpha p =
  let units =
    Units.of_reference ~params:Params.default ~n_clusters:4
      p.Profile.activity
  in
  Model.ctx ?alpha ~params:Params.default ~units ()

let diag_ok = function
  | Ok v -> v
  | Error d -> Alcotest.failf "unexpected diagnostic: %a" Hcv_obs.Diag.pp d

let err_code = function
  | Ok _ -> Alcotest.fail "expected a diagnostic, got a choice"
  | Error d -> Hcv_obs.Diag.code d

(* A technology whose reference frequency is so low that no grid point
   can reach the sweep's target frequencies: every candidate fails
   Alpha_power.supports, so each selector must report its structured
   no-point diagnostic rather than an empty fold. *)
let hopeless_alpha =
  { Alpha_power.default with Alpha_power.f_ref = Q.make 1 1000 }

let test_error_paths () =
  with_profile (fun p ->
      let ctx = ctx_of ~alpha:hopeless_alpha p in
      Alcotest.(check string) "homogeneous" "no-homogeneous-point"
        (err_code (Select.optimum_homogeneous ~ctx ~machine p));
      Alcotest.(check string) "heterogeneous" "no-heterogeneous-point"
        (err_code (Select.select_heterogeneous ~ctx ~machine p));
      Alcotest.(check string) "uniform" "no-heterogeneous-point"
        (err_code (Select.select_uniform ~ctx ~machine p));
      Alcotest.(check string) "frontier" "no-heterogeneous-point"
        (err_code (Select.frontier_heterogeneous ~ctx ~machine p)))

(* The budgeted sweep is the leading prefix of the serial point order:
   a budgeted selection equals the selection over the smaller grid, and
   the dropped points are counted on the observation span. *)
let test_budget_prefix () =
  with_profile (fun p ->
      let ctx = ctx_of p in
      let full =
        Select.sweep_heterogeneous ~ctx ~machine
          ~slow_factors:Presets.slow_factors p
      in
      let total = List.length full in
      Alcotest.(check bool) "grid is non-trivial" true (total > 8);
      let b = 7 in
      let obs = Hcv_obs.Trace.root "test" in
      let budgeted =
        Select.sweep_heterogeneous ~obs ~budget:b ~ctx ~machine
          ~slow_factors:Presets.slow_factors p
      in
      Alcotest.(check int) "budget keeps b points" b (List.length budgeted);
      List.iteri
        (fun i c ->
          Alcotest.(check (option string))
            (Printf.sprintf "point %d is the serial point %d" i i)
            (Option.map Sweep.choice_to_string (List.nth full i))
            (Option.map Sweep.choice_to_string c))
        budgeted;
      (match Hcv_obs.Trace.export obs with
      | None -> Alcotest.fail "root span exported nothing"
      | Some node ->
        Alcotest.(check int) "dropped points counted" (total - b)
          (Hcv_obs.Trace.counter_total node "select.budget_dropped");
        Alcotest.(check int) "scored points counted" b
          (Hcv_obs.Trace.counter_total node "select.points"));
      (* A budget covering the whole grid changes nothing and counts no
         drops. *)
      let obs2 = Hcv_obs.Trace.root "test" in
      let whole =
        Select.sweep_heterogeneous ~obs:obs2 ~budget:total ~ctx ~machine
          ~slow_factors:Presets.slow_factors p
      in
      Alcotest.(check int) "covering budget keeps all" total
        (List.length whole);
      match Hcv_obs.Trace.export obs2 with
      | None -> Alcotest.fail "root span exported nothing"
      | Some node ->
        Alcotest.(check int) "no drops counted" 0
          (Hcv_obs.Trace.counter_total node "select.budget_dropped"))

let test_budgeted_selection_equals_prefix_fold () =
  with_profile (fun p ->
      let ctx = ctx_of p in
      let b = 9 in
      let choice =
        diag_ok (Select.select_heterogeneous ~budget:b ~ctx ~machine p)
      in
      let prefix =
        Listx.take b
          (Select.sweep_heterogeneous ~ctx ~machine
             ~slow_factors:Presets.slow_factors p)
      in
      (* Recompute the fold the selector documents: earliest strict
         minimum of predicted ED² over the prefix. *)
      let best =
        List.fold_left
          (fun acc c ->
            match (acc, c) with
            | None, c -> c
            | Some (a : Select.choice), Some b ->
              if b.Select.predicted_ed2 < a.Select.predicted_ed2 then Some b
              else acc
            | Some _, None -> acc)
          None prefix
      in
      match best with
      | None -> Alcotest.fail "prefix had no realisable point"
      | Some best ->
        Alcotest.(check string) "budgeted selection = prefix fold"
          (Sweep.choice_to_string best)
          (Sweep.choice_to_string choice))

let test_pool_matches_serial () =
  with_profile (fun p ->
      let ctx = ctx_of p in
      let serial = diag_ok (Select.select_heterogeneous ~ctx ~machine p) in
      let pool = Hcv_explore.Pool.create ~jobs:2 () in
      Fun.protect
        ~finally:(fun () -> Hcv_explore.Pool.shutdown pool)
        (fun () ->
          let par =
            diag_ok (Select.select_heterogeneous ~pool ~ctx ~machine p)
          in
          let par_budget =
            diag_ok
              (Select.select_heterogeneous ~pool ~budget:9 ~ctx ~machine p)
          in
          let serial_budget =
            diag_ok (Select.select_heterogeneous ~budget:9 ~ctx ~machine p)
          in
          Alcotest.(check string) "pool = serial"
            (Sweep.choice_to_string serial)
            (Sweep.choice_to_string par);
          Alcotest.(check string) "pool = serial under a budget"
            (Sweep.choice_to_string serial_budget)
            (Sweep.choice_to_string par_budget)))

let suite =
  [
    Alcotest.test_case "structured no-point errors" `Quick test_error_paths;
    Alcotest.test_case "budget is a serial-order prefix" `Quick
      test_budget_prefix;
    Alcotest.test_case "budgeted selection = prefix fold" `Quick
      test_budgeted_selection_equals_prefix_fold;
    Alcotest.test_case "pool matches serial" `Quick test_pool_matches_serial;
  ]
