(* Multilevel graph partitioning. *)

open Hcv_support
open Hcv_ir
open Hcv_sched

let add = Opcode.make Opcode.Arith Opcode.Int

let chain n =
  let b = Ddg.Builder.create () in
  let prev = ref (Ddg.Builder.add_instr b add) in
  for _ = 2 to n do
    let x = Ddg.Builder.add_instr b add in
    Ddg.Builder.add_edge b !prev x;
    prev := x
  done;
  Ddg.Builder.build b

(* Count of cut flow edges: the canonical min-comm objective. *)
let cut_score ddg a =
  float_of_int
    (List.length
       (List.filter
          (fun (e : Edge.t) ->
            Edge.carries_value e && a.(e.src) <> a.(e.dst))
          (Ddg.edges ddg)))

let test_respects_fixed () =
  let g = chain 10 in
  let fixed = [ (0, 2); (9, 3) ] in
  let r =
    Partition.run ~n_clusters:4 ~ddg:g ~fixed ~score:(cut_score g) ()
  in
  Alcotest.(check int) "node 0 fixed" 2 r.Partition.assignment.(0);
  Alcotest.(check int) "node 9 fixed" 3 r.Partition.assignment.(9)

let test_range () =
  let g = chain 20 in
  let r = Partition.run ~n_clusters:4 ~ddg:g ~score:(cut_score g) () in
  Array.iter
    (fun c -> if c < 0 || c >= 4 then Alcotest.failf "out of range %d" c)
    r.Partition.assignment

let test_min_cut_on_chain () =
  (* With a pure cut objective and no capacity pressure, a chain ends up
     in one cluster (cut 0). *)
  let g = chain 12 in
  let r = Partition.run ~n_clusters:4 ~ddg:g ~score:(cut_score g) () in
  Alcotest.(check (float 1e-9)) "zero cut" 0.0 r.Partition.score

let test_balance_objective () =
  (* With a balance objective, two independent chains separate. *)
  let b = Ddg.Builder.create () in
  for _ = 1 to 2 do
    let prev = ref (Ddg.Builder.add_instr b add) in
    for _ = 2 to 5 do
      let x = Ddg.Builder.add_instr b add in
      Ddg.Builder.add_edge b !prev x;
      prev := x
    done
  done;
  let g = Ddg.Builder.build b in
  let score a =
    let counts = Array.make 2 0 in
    Array.iter (fun c -> counts.(c) <- counts.(c) + 1) a;
    (* imbalance plus cut *)
    float_of_int (abs (counts.(0) - counts.(1))) +. cut_score g a
  in
  let r = Partition.run ~n_clusters:2 ~ddg:g ~score () in
  Alcotest.(check (float 1e-9)) "balanced, no cut" 0.0 r.Partition.score

let test_groups_stay_together () =
  (* Two groups and a pathological score that rewards splitting a
     group's members would still start with groups whole; with a neutral
     score, groups remain whole. *)
  let g = chain 8 in
  let groups = [ [ 0; 1; 2 ]; [ 5; 6 ] ] in
  let r =
    Partition.run ~n_clusters:4 ~ddg:g ~groups ~score:(cut_score g) ()
  in
  let a = r.Partition.assignment in
  Alcotest.(check bool) "group 1 together" true (a.(0) = a.(1) && a.(1) = a.(2));
  Alcotest.(check bool) "group 2 together" true (a.(5) = a.(6))

let test_group_overlap_rejected () =
  let g = chain 4 in
  Alcotest.check_raises "overlap"
    (Invalid_argument "Partition.run: groups overlap") (fun () ->
      ignore
        (Partition.run ~n_clusters:2 ~ddg:g
           ~groups:[ [ 0; 1 ]; [ 1; 2 ] ]
           ~score:(cut_score g) ()))

let test_fixed_validation () =
  let g = chain 4 in
  Alcotest.check_raises "bad cluster"
    (Invalid_argument "Partition.run: fixed cluster out of range") (fun () ->
      ignore
        (Partition.run ~n_clusters:2 ~ddg:g ~fixed:[ (0, 7) ]
           ~score:(cut_score g) ()))

let test_empty_graph () =
  let g = Ddg.Builder.build (Ddg.Builder.create ()) in
  let r = Partition.run ~n_clusters:4 ~ddg:g ~score:(fun _ -> 0.0) () in
  Alcotest.(check int) "empty" 0 (Array.length r.Partition.assignment)

let prop_random_valid =
  let gen =
    QCheck.make
      (QCheck.Gen.map
         (fun seed ->
           let rng = Rng.create seed in
           let n = 1 + Rng.int rng 25 in
           let b = Ddg.Builder.create () in
           for _ = 1 to n do
             ignore (Ddg.Builder.add_instr b add)
           done;
           for dst = 1 to n - 1 do
             if Rng.chance rng 0.7 then
               Ddg.Builder.add_edge b (Rng.int rng dst) dst
           done;
           let g = Ddg.Builder.build b in
           let fixed = if n > 2 then [ (0, 0); (n - 1, 1) ] else [] in
           (g, fixed))
         QCheck.Gen.int)
  in
  QCheck.Test.make ~name:"random graphs partition validly" ~count:60 gen
    (fun (g, fixed) ->
      let r =
        Partition.run ~n_clusters:3 ~ddg:g ~fixed ~score:(cut_score g) ()
      in
      Array.for_all (fun c -> c >= 0 && c < 3) r.Partition.assignment
      && List.for_all (fun (i, c) -> r.Partition.assignment.(i) = c) fixed)

let test_initial_even () =
  let g = chain 7 in
  let a = Partition.initial_even ~n_clusters:3 g in
  Array.iter (fun c -> if c < 0 || c >= 3 then Alcotest.fail "range") a

let suite =
  [
    Alcotest.test_case "respects fixed nodes" `Quick test_respects_fixed;
    Alcotest.test_case "assignment in range" `Quick test_range;
    Alcotest.test_case "min cut on a chain" `Quick test_min_cut_on_chain;
    Alcotest.test_case "balance objective" `Quick test_balance_objective;
    Alcotest.test_case "groups stay together" `Quick test_groups_stay_together;
    Alcotest.test_case "group overlap rejected" `Quick
      test_group_overlap_rejected;
    Alcotest.test_case "fixed validation" `Quick test_fixed_validation;
    Alcotest.test_case "empty graph" `Quick test_empty_graph;
    Alcotest.test_case "initial_even" `Quick test_initial_even;
    QCheck_alcotest.to_alcotest prop_random_valid;
  ]

(* ----- Seeded {!Hcv_check.Gen} corpus: the rewritten partitioner
   against the pre-PR implementation kept verbatim in
   {!Partition_reference}.  The rewrite prunes candidates and skips
   converged nodes but gates every committed move on the same exact
   score, so it must never end at a worse final score — and, being the
   perf fix, never at more exact-score evaluations either. ----- *)

let corpus_seeds = List.init 20 (fun i -> 101 + (13 * i))

(* First clocking realisable at or above the configuration's MIT — the
   same snap the production pipeline performs. *)
let clocking_for ~config ddg =
  let mit = Hcv_core.Mit.mit ~config ddg in
  let mit =
    if Q.sign mit <= 0 then Hcv_core.Mit.next_candidate ~config ~after:Q.zero
    else mit
  in
  let rec go it tries =
    if tries > 64 then None
    else
      match Clocking.of_config ~config ~it with
      | Ok c -> Some c
      | Error _ -> go (Hcv_core.Mit.next_candidate ~config ~after:it) (tries + 1)
  in
  go mit 0

(* Instantiate one generated case as a partitioning problem: the real
   {!Pseudo.score} objective, recurrence groups, and a deterministic
   pre-placement pin (first recurrence node, else node 0) so the fixed
   path is exercised on every case.  Cases whose configuration has no
   realisable clocking are skipped — nothing to score there. *)
let with_corpus_case seed f =
  let c = Hcv_check.Gen.case ~seed in
  let loop = c.Hcv_check.Gen.loop in
  let machine = c.Hcv_check.Gen.machine in
  let ddg = loop.Loop.ddg in
  match clocking_for ~config:c.Hcv_check.Gen.config ddg with
  | None -> ()
  | Some clocking ->
    let n_clusters = Hcv_machine.Machine.n_clusters machine in
    let groups =
      List.map
        (fun (r : Recurrence.t) -> r.Recurrence.nodes)
        (Recurrence.find_all ddg)
    in
    let fixed =
      match groups with
      | (i :: _) :: _ -> [ (i, 0) ]
      | _ -> if Ddg.n_instrs ddg > 0 then [ (0, 0) ] else []
    in
    let memo = Timing.Memo.create clocking in
    let score assignment =
      Pseudo.score (Pseudo.estimate ~memo ~machine ~clocking ~loop ~assignment ())
    in
    f ~seed ~ddg ~n_clusters ~fixed ~groups ~score

let test_corpus_dominance () =
  let ran = ref 0 in
  List.iter
    (fun seed ->
      with_corpus_case seed
        (fun ~seed ~ddg ~n_clusters ~fixed ~groups ~score ->
          incr ran;
          let ev_ref = ref 0 and ev_new = ref 0 in
          let r_ref =
            Partition_reference.run ~n_clusters ~ddg ~fixed ~groups
              ~score:(fun a -> incr ev_ref; score a)
              ()
          in
          let r_new =
            Partition.run ~n_clusters ~ddg ~fixed ~groups
              ~score:(fun a -> incr ev_new; score a)
              ()
          in
          if r_new.Partition.score > r_ref.Partition_reference.score then
            Alcotest.failf "seed %d: new score %.1f worse than reference %.1f"
              seed r_new.Partition.score r_ref.Partition_reference.score;
          if !ev_new > !ev_ref then
            Alcotest.failf "seed %d: %d exact evals, reference needed %d" seed
              !ev_new !ev_ref;
          Array.iteri
            (fun i cl ->
              if cl < 0 || cl >= n_clusters then
                Alcotest.failf "seed %d: node %d out of range (%d)" seed i cl)
            r_new.Partition.assignment;
          List.iter
            (fun (i, cl) ->
              if r_new.Partition.assignment.(i) <> cl then
                Alcotest.failf "seed %d: fixed node %d moved to %d" seed i
                  r_new.Partition.assignment.(i))
            fixed))
    corpus_seeds;
  if !ran < 10 then Alcotest.failf "corpus too thin: only %d cases ran" !ran

let test_corpus_deterministic () =
  List.iter
    (fun seed ->
      with_corpus_case seed
        (fun ~seed ~ddg ~n_clusters ~fixed ~groups ~score ->
          let r1 = Partition.run ~n_clusters ~ddg ~fixed ~groups ~score () in
          let hier = Partition.Hier.build ~ddg ~fixed ~groups () in
          (* run = Hier.build + run_hier, and a hierarchy is read-only:
             reusing it must reproduce the same result bit for bit. *)
          let r2 = Partition.run_hier ~n_clusters ~hier ~score () in
          let r3 = Partition.run_hier ~n_clusters ~hier ~score () in
          let eq a b =
            a.Partition.score = b.Partition.score
            && a.Partition.assignment = b.Partition.assignment
          in
          if not (eq r1 r2) then
            Alcotest.failf "seed %d: run <> run_hier over fresh hierarchy" seed;
          if not (eq r2 r3) then
            Alcotest.failf "seed %d: hierarchy reuse changed the result" seed))
    corpus_seeds

(* Drive generated cases through the full heterogeneous scheduler (the
   partitioner's production caller, hierarchy reuse and pruning
   included) and hand every schedule to the lib/check legality oracle.
   Both score modes run: Ed2 exercises the prune-disabled path,
   Schedulability the transfer-delta pruning. *)
let test_corpus_legal () =
  let ctx_for machine =
    let n = Hcv_machine.Machine.n_clusters machine in
    let act =
      Hcv_energy.Activity.make ~exec_time_ns:1e6
        ~per_cluster_ins_energy:(Array.make n 100.)
        ~n_comms:100. ~n_mem:100.
    in
    Hcv_energy.Model.ctx ~params:Hcv_energy.Params.default
      ~units:
        (Hcv_energy.Units.of_reference ~params:Hcv_energy.Params.default
           ~n_clusters:n act)
      ()
  in
  let checked = ref 0 in
  List.iter
    (fun seed ->
      let c = Hcv_check.Gen.case ~seed in
      let ctx = ctx_for c.Hcv_check.Gen.machine in
      List.iter
        (fun score_mode ->
          match
            Hcv_core.Hsched.schedule ~ctx ~config:c.Hcv_check.Gen.config
              ~loop:c.Hcv_check.Gen.loop ~score_mode ()
          with
          | Error _ -> () (* unschedulable cases are vetted by the fuzzer *)
          | Ok (sched, _) -> (
            incr checked;
            match Hcv_check.Legal.verify sched with
            | Ok () -> ()
            | Error vs ->
              Alcotest.failf "seed %d: illegal schedule: %s" seed
                (String.concat "; " (Hcv_check.Legal.to_strings vs))))
        [ Hcv_core.Hsched.Ed2; Hcv_core.Hsched.Schedulability ])
    corpus_seeds;
  if !checked < 10 then
    Alcotest.failf "legality corpus too thin: only %d schedules" !checked

let suite =
  suite
  @ [
      Alcotest.test_case "corpus: dominates reference" `Quick
        test_corpus_dominance;
      Alcotest.test_case "corpus: deterministic, hier reusable" `Quick
        test_corpus_deterministic;
      Alcotest.test_case "corpus: schedules legal" `Slow test_corpus_legal;
    ]
