(* The resilience plane: deterministic fault injection, the retry
   supervisor, and the work budgets that keep pathological configs from
   hanging the pipeline. *)

open Hcv_support
open Hcv_machine
open Hcv_energy
open Hcv_core
module R = Hcv_resilience

(* ----- Inject ------------------------------------------------------ *)

let test_disarmed () =
  Alcotest.(check bool) "not armed" false (R.Inject.armed ());
  Alcotest.(check bool) "never fires" false (R.Inject.fire R.Inject.Task_raise)

let test_deterministic_firing () =
  let mk () =
    R.Inject.plan ~seed:9
      [ R.Inject.spec ~prob:0.4 ~max_fires:max_int R.Inject.Task_raise ]
  in
  let draw plan =
    R.Inject.with_plan plan (fun () ->
        List.init 64 (fun i ->
            R.Inject.fire ~key:(string_of_int i) R.Inject.Task_raise))
  in
  let a = draw (mk ()) in
  let b = draw (mk ()) in
  Alcotest.(check (list bool)) "same seed, same firing sequence" a b;
  Alcotest.(check bool) "prob 0.4 fires sometimes" true (List.mem true a);
  Alcotest.(check bool) "prob 0.4 skips sometimes" true (List.mem false a)

let test_max_fires () =
  let plan =
    R.Inject.plan ~seed:1 [ R.Inject.spec ~max_fires:3 R.Inject.Slow_cell ]
  in
  let fired =
    R.Inject.with_plan plan (fun () ->
        List.filter Fun.id
          (List.init 50 (fun _ -> R.Inject.fire R.Inject.Slow_cell)))
  in
  Alcotest.(check int) "capped at max_fires" 3 (List.length fired);
  Alcotest.(check int) "plan reports the count" 3 (R.Inject.total_fires plan)

let test_key_filter () =
  let plan =
    R.Inject.plan ~seed:1
      [ R.Inject.spec ~max_fires:max_int ~key:"cell-7" R.Inject.Task_raise ]
  in
  R.Inject.with_plan plan (fun () ->
      Alcotest.(check bool) "other key" false
        (R.Inject.fire ~key:"cell-3" R.Inject.Task_raise);
      Alcotest.(check bool) "no key" false (R.Inject.fire R.Inject.Task_raise);
      Alcotest.(check bool) "substring match" true
        (R.Inject.fire ~key:"sweep/cell-7/x" R.Inject.Task_raise))

let test_with_plan_disarms_on_raise () =
  let plan = R.Inject.plan ~seed:1 [ R.Inject.spec R.Inject.Task_raise ] in
  (try R.Inject.with_plan plan (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check bool) "disarmed after a raise" false (R.Inject.armed ())

let test_point_names_roundtrip () =
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (R.Inject.point_name p ^ " round-trips")
        true
        (R.Inject.point_of_name (R.Inject.point_name p) = Some p))
    R.Inject.all_points

(* ----- Retry ------------------------------------------------------- *)

let fast = { R.Retry.max_attempts = 3; backoff_s = 0.0; jitter = 0.0 }

let test_retry_recovers () =
  let n = ref 0 in
  match
    R.Retry.run ~policy:fast ~label:"t" (fun () ->
        incr n;
        if !n < 3 then failwith "flaky" else "ok")
  with
  | Ok s ->
    Alcotest.(check string) "recovered value" "ok" s;
    Alcotest.(check int) "used all spare attempts" 3 !n
  | Error d -> Alcotest.failf "should recover: %s" (Hcv_obs.Diag.to_string d)

let test_retry_exhausted () =
  let calls = ref 0 in
  let retries = ref 0 in
  match
    R.Retry.run ~policy:fast
      ~on_retry:(fun ~attempt:_ _ -> incr retries)
      ~label:"cell-k"
      (fun () ->
        incr calls;
        failwith "always")
  with
  | Ok _ -> Alcotest.fail "cannot succeed"
  | Error d ->
    Alcotest.(check string) "code" "task-failed" (Hcv_obs.Diag.code d);
    Alcotest.(check int) "ran max_attempts times" 3 !calls;
    Alcotest.(check int) "on_retry per re-attempt" 2 !retries;
    let fields = Hcv_obs.Diag.fields d in
    Alcotest.(check (option string)) "task recorded" (Some "cell-k")
      (List.assoc_opt "task" fields);
    Alcotest.(check (option string)) "attempts recorded" (Some "3")
      (List.assoc_opt "attempts" fields);
    Alcotest.(check bool) "exception recorded" true
      (List.mem_assoc "exn" fields)

let test_retry_persistent_fault_fails_fast () =
  let plan =
    R.Inject.plan ~seed:1
      [ R.Inject.spec ~max_fires:max_int ~transient:false R.Inject.Task_raise ]
  in
  let calls = ref 0 in
  let r =
    R.Inject.with_plan plan (fun () ->
        R.Retry.run ~policy:fast ~label:"k" (fun () ->
            incr calls;
            R.Inject.raise_if R.Inject.Task_raise;
            "unreachable"))
  in
  (match r with
  | Error d ->
    Alcotest.(check string) "code" "injected-fault" (Hcv_obs.Diag.code d)
  | Ok _ -> Alcotest.fail "persistent fault cannot succeed");
  Alcotest.(check int) "no pointless retries" 1 !calls

(* ----- work budgets ------------------------------------------------ *)

let machine = Presets.machine_4c ~buses:1

let small_loops () =
  [
    Builders.dotprod ~trip:50 ();
    Builders.recurrence_loop ~trip:80 ();
    Builders.wide_loop ~trip:60 ~width:6 ();
  ]

let diag_ok = function
  | Ok v -> v
  | Error d -> Alcotest.failf "unexpected diagnostic: %a" Hcv_obs.Diag.pp d

let with_profile f =
  match Profile.profile ~machine ~loops:(small_loops ()) () with
  | Error d -> Alcotest.failf "profiling failed: %a" Hcv_obs.Diag.pp d
  | Ok p -> f p

let make_ctx (profile : Profile.t) =
  let units =
    Units.of_reference ~params:Params.default ~n_clusters:4
      profile.Profile.activity
  in
  Model.ctx ~params:Params.default ~units ()

let hetero_config () =
  let pt ct vdd = { Opconfig.cycle_time = ct; vdd } in
  Opconfig.make ~machine
    ~cluster_points:
      [|
        pt (Q.make 9 10) 1.2;
        pt (Q.make 27 20) 0.9;
        pt (Q.make 27 20) 0.9;
        pt (Q.make 27 20) 0.9;
      |]
    ~icn_point:(pt (Q.make 9 10) 1.0)
    ~cache_point:(pt (Q.make 9 10) 1.2)

let test_hsched_budget_exhausted () =
  with_profile (fun p ->
      let ctx = make_ctx p in
      let config = hetero_config () in
      let lp = List.hd p.Profile.loops in
      match
        Hsched.schedule ~ctx ~config ~loop:lp.Profile.loop ~budget:0 ()
      with
      | Ok _ -> Alcotest.fail "a zero budget cannot produce a schedule"
      | Error d ->
        Alcotest.(check string) "code" "budget-exhausted"
          (Hcv_obs.Diag.code d);
        let fields = Hcv_obs.Diag.fields d in
        Alcotest.(check bool) "loop recorded" true
          (List.mem_assoc "loop" fields);
        Alcotest.(check (option string)) "budget recorded" (Some "0")
          (List.assoc_opt "budget" fields))

let test_hsched_ample_budget_invisible () =
  with_profile (fun p ->
      let ctx = make_ctx p in
      let config = hetero_config () in
      List.iter
        (fun (lp : Profile.loop_profile) ->
          let free =
            diag_ok (Hsched.schedule ~ctx ~config ~loop:lp.Profile.loop ())
          in
          let capped =
            diag_ok
              (Hsched.schedule ~ctx ~config ~loop:lp.Profile.loop
                 ~budget:1_000_000 ())
          in
          let _, free_stats = free in
          let _, capped_stats = capped in
          Alcotest.(check bool) "same IT" true
            (Q.compare free_stats.Hsched.it capped_stats.Hsched.it = 0);
          Alcotest.(check int) "same tries" free_stats.Hsched.tries
            capped_stats.Hsched.tries)
        p.Profile.loops)

let test_select_budget () =
  with_profile (fun p ->
      let ctx = make_ctx p in
      let full = diag_ok (Select.select_heterogeneous ~ctx ~machine p) in
      let ample =
        diag_ok (Select.select_heterogeneous ~budget:1000 ~ctx ~machine p)
      in
      Alcotest.(check (float 0.0)) "ample budget is invisible"
        full.Select.predicted_ed2 ample.Select.predicted_ed2;
      (* One point: the leading prefix of the serial sweep order. *)
      let first =
        diag_ok (Select.select_heterogeneous ~budget:1 ~ctx ~machine p)
      in
      Alcotest.(check bool) "budgeted pick is no better than the full sweep"
        true
        (full.Select.predicted_ed2 <= first.Select.predicted_ed2 +. 1e-9))

let test_pipeline_budget_degrades () =
  (* A budget of 1 leaves every selection sweep a single design point
     (still realisable) but starves the scheduler, so every loop must
     degrade to the estimate through the fallback path — the run still
     completes and names the cause. *)
  match
    Pipeline.run ~budget:1 ~machine ~name:"mini" ~loops:(small_loops ()) ()
  with
  | Error d -> Alcotest.failf "pipeline must complete: %a" Hcv_obs.Diag.pp d
  | Ok r ->
    Alcotest.(check int) "every loop fell back" 3 r.Pipeline.fallbacks;
    List.iter
      (fun (_, d) ->
        Alcotest.(check string) "cause recorded" "budget-exhausted"
          (Hcv_obs.Diag.code d))
      r.Pipeline.fallback_causes;
    Alcotest.(check bool) "ratios still finite" true
      (Float.is_finite r.Pipeline.ed2_ratio)

(* ----- Retry backoff jitter ---------------------------------------- *)

let test_retry_jitter_schedule () =
  let policy = { R.Retry.max_attempts = 4; backoff_s = 0.01; jitter = 0.5 } in
  let a = R.Retry.schedule ~policy ~label:"cell-a" () in
  let b = R.Retry.schedule ~policy ~label:"cell-a" () in
  Alcotest.(check int) "max_attempts - 1 sleeps" 3 (List.length a);
  Alcotest.(check (list (float 0.0))) "same label, same schedule" a b;
  let c = R.Retry.schedule ~policy ~label:"cell-b" () in
  Alcotest.(check bool) "distinct labels de-synchronise" true (a <> c);
  (* Every sleep stays inside [backoff * (1 - jitter), backoff], with
     the exponential doubling underneath. *)
  List.iteri
    (fun i s ->
      let full = policy.R.Retry.backoff_s *. (2. ** float_of_int i) in
      Alcotest.(check bool) "within the jitter band" true
        (s >= (full *. 0.5) -. 1e-12 && s <= full +. 1e-12))
    a;
  (* jitter 0 is the exact exponential, whatever the label. *)
  let exact =
    R.Retry.schedule
      ~policy:{ policy with R.Retry.jitter = 0.0 }
      ~label:"cell-a" ()
  in
  Alcotest.(check (list (float 1e-12))) "zero jitter = exact doubling"
    [ 0.01; 0.02; 0.04 ] exact

let suite =
  [
    Alcotest.test_case "disarmed plane never fires" `Quick test_disarmed;
    Alcotest.test_case "seeded firing is deterministic" `Quick
      test_deterministic_firing;
    Alcotest.test_case "max_fires caps injections" `Quick test_max_fires;
    Alcotest.test_case "key filter scopes faults" `Quick test_key_filter;
    Alcotest.test_case "with_plan disarms on raise" `Quick
      test_with_plan_disarms_on_raise;
    Alcotest.test_case "point names round-trip" `Quick
      test_point_names_roundtrip;
    Alcotest.test_case "retry recovers a transient fault" `Quick
      test_retry_recovers;
    Alcotest.test_case "retry exhaustion is a structured diag" `Quick
      test_retry_exhausted;
    Alcotest.test_case "persistent faults skip retries" `Quick
      test_retry_persistent_fault_fails_fast;
    Alcotest.test_case "backoff jitter is label-seeded and bounded" `Quick
      test_retry_jitter_schedule;
    Alcotest.test_case "hsched budget exhaustion" `Quick
      test_hsched_budget_exhausted;
    Alcotest.test_case "ample hsched budget changes nothing" `Quick
      test_hsched_ample_budget_invisible;
    Alcotest.test_case "select budget truncates the sweep" `Quick
      test_select_budget;
    Alcotest.test_case "pipeline degrades under budget" `Quick
      test_pipeline_budget_degrades;
  ]
