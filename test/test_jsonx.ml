(* The hand-rolled JSON codec backing the result cache. *)

open Hcv_explore

let json =
  Alcotest.testable
    (fun ppf j -> Format.pp_print_string ppf (Jsonx.to_string j))
    ( = )

let roundtrip name j =
  match Jsonx.of_string (Jsonx.to_string j) with
  | Ok j' -> Alcotest.check json name j j'
  | Error msg -> Alcotest.failf "%s: parse error: %s" name msg

let test_roundtrip () =
  roundtrip "null" Jsonx.Null;
  roundtrip "bools" (Jsonx.List [ Jsonx.Bool true; Jsonx.Bool false ]);
  roundtrip "integers" (Jsonx.List [ Jsonx.Num 0.; Jsonx.Num (-42.) ]);
  roundtrip "floats"
    (Jsonx.List
       [ Jsonx.Num 0.1; Jsonx.Num 1.0000000000000002; Jsonx.Num 1e-300 ]);
  roundtrip "string escapes"
    (Jsonx.Str "line\nbreak \"quoted\" back\\slash \t \x01");
  roundtrip "nested"
    (Jsonx.Obj
       [
         ("k", Jsonx.Str "abc");
         ("v", Jsonx.List [ Jsonx.Obj [ ("x", Jsonx.Num 3.5) ]; Jsonx.Null ]);
       ])

let test_float_exactness () =
  (* The cache must replay the original bits, not an approximation. *)
  List.iter
    (fun f ->
      match Jsonx.of_string (Jsonx.to_string (Jsonx.Num f)) with
      | Ok (Jsonx.Num f') ->
          Alcotest.(check bool)
            (Printf.sprintf "%h survives" f)
            true
            (Int64.equal (Int64.bits_of_float f) (Int64.bits_of_float f'))
      | Ok _ -> Alcotest.fail "not a number"
      | Error msg -> Alcotest.failf "parse error: %s" msg)
    [ 0.1; 1. /. 3.; 0.8748906986305911; 1e22; 4.9e-324; -0. ]

let test_parse_errors () =
  List.iter
    (fun s ->
      match Jsonx.of_string s with
      | Ok _ -> Alcotest.failf "accepted malformed input %S" s
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "nul"; "\"unterminated"; "1 2"; "{\"a\" 1}" ]

let test_accessors () =
  let j =
    Jsonx.Obj
      [ ("name", Jsonx.Str "x"); ("n", Jsonx.Num 3.); ("xs", Jsonx.List []) ]
  in
  Alcotest.(check (option string)) "str" (Some "x")
    (Option.bind (Jsonx.member "name" j) Jsonx.str);
  Alcotest.(check (option int)) "int" (Some 3)
    (Option.bind (Jsonx.member "n" j) Jsonx.int);
  Alcotest.(check bool) "list" true
    (Option.bind (Jsonx.member "xs" j) Jsonx.list = Some []);
  Alcotest.(check bool) "missing member" true (Jsonx.member "zz" j = None);
  Alcotest.(check (option int)) "int rejects fraction" None
    (Jsonx.int (Jsonx.Num 3.5))

let suite =
  [
    Alcotest.test_case "round-trips" `Quick test_roundtrip;
    Alcotest.test_case "float bit-exactness" `Quick test_float_exactness;
    Alcotest.test_case "rejects malformed input" `Quick test_parse_errors;
    Alcotest.test_case "accessors" `Quick test_accessors;
  ]
