(* The hand-rolled JSON codec backing the result cache. *)

open Hcv_explore

let json =
  Alcotest.testable
    (fun ppf j -> Format.pp_print_string ppf (Jsonx.to_string j))
    ( = )

let roundtrip name j =
  match Jsonx.of_string (Jsonx.to_string j) with
  | Ok j' -> Alcotest.check json name j j'
  | Error msg -> Alcotest.failf "%s: parse error: %s" name msg

let test_roundtrip () =
  roundtrip "null" Jsonx.Null;
  roundtrip "bools" (Jsonx.List [ Jsonx.Bool true; Jsonx.Bool false ]);
  roundtrip "integers" (Jsonx.List [ Jsonx.Num 0.; Jsonx.Num (-42.) ]);
  roundtrip "floats"
    (Jsonx.List
       [ Jsonx.Num 0.1; Jsonx.Num 1.0000000000000002; Jsonx.Num 1e-300 ]);
  roundtrip "string escapes"
    (Jsonx.Str "line\nbreak \"quoted\" back\\slash \t \x01");
  roundtrip "nested"
    (Jsonx.Obj
       [
         ("k", Jsonx.Str "abc");
         ("v", Jsonx.List [ Jsonx.Obj [ ("x", Jsonx.Num 3.5) ]; Jsonx.Null ]);
       ])

let test_float_exactness () =
  (* The cache must replay the original bits, not an approximation. *)
  List.iter
    (fun f ->
      match Jsonx.of_string (Jsonx.to_string (Jsonx.Num f)) with
      | Ok (Jsonx.Num f') ->
          Alcotest.(check bool)
            (Printf.sprintf "%h survives" f)
            true
            (Int64.equal (Int64.bits_of_float f) (Int64.bits_of_float f'))
      | Ok _ -> Alcotest.fail "not a number"
      | Error msg -> Alcotest.failf "parse error: %s" msg)
    [ 0.1; 1. /. 3.; 0.8748906986305911; 1e22; 4.9e-324; -0. ]

let test_parse_errors () =
  List.iter
    (fun s ->
      match Jsonx.of_string s with
      | Ok _ -> Alcotest.failf "accepted malformed input %S" s
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "nul"; "\"unterminated"; "1 2"; "{\"a\" 1}" ]

let test_accessors () =
  let j =
    Jsonx.Obj
      [ ("name", Jsonx.Str "x"); ("n", Jsonx.Num 3.); ("xs", Jsonx.List []) ]
  in
  Alcotest.(check (option string)) "str" (Some "x")
    (Option.bind (Jsonx.member "name" j) Jsonx.str);
  Alcotest.(check (option int)) "int" (Some 3)
    (Option.bind (Jsonx.member "n" j) Jsonx.int);
  Alcotest.(check bool) "list" true
    (Option.bind (Jsonx.member "xs" j) Jsonx.list = Some []);
  Alcotest.(check bool) "missing member" true (Jsonx.member "zz" j = None);
  Alcotest.(check (option int)) "int rejects fraction" None
    (Jsonx.int (Jsonx.Num 3.5))

(* Adversarial wire input: what the serving plane feeds the codec. *)

let test_torn_input () =
  (* Every proper prefix of a valid object is itself invalid — torn
     lines must never half-parse into a value. *)
  let whole = {|{"id":"r1","op":"explore","bench":"applu","budget":10}|} in
  for len = 0 to String.length whole - 1 do
    match Jsonx.of_string (String.sub whole 0 len) with
    | Ok _ -> Alcotest.failf "accepted torn prefix of length %d" len
    | Error _ -> ()
  done;
  match Jsonx.of_string whole with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "whole line failed: %s" msg

let test_unicode_escapes () =
  (* \uXXXX escapes decode to UTF-8 bytes... *)
  (match Jsonx.of_string {|"a\u00e9\u0041 \u2028b"|} with
  | Ok (Jsonx.Str s) ->
    Alcotest.(check string) "decoded utf-8" "a\xc3\xa9A \xe2\x80\xa8b" s
  | Ok _ -> Alcotest.fail "not a string"
  | Error msg -> Alcotest.failf "parse error: %s" msg);
  (* ...control characters round-trip through the escape the printer
     emits... *)
  roundtrip "control chars" (Jsonx.Str "\x00\x01\x1f");
  (* ...and truncated or non-hex escapes are structured errors. *)
  List.iter
    (fun s ->
      match Jsonx.of_string s with
      | Ok _ -> Alcotest.failf "accepted bad escape %S" s
      | Error _ -> ())
    [ {|"\u12"|}; {|"\u12g4"|}; {|"\u"|}; {|"\x41"|} ]

let test_trailing_garbage () =
  (* One value per line: anything after a complete value is an error,
     not silently ignored. *)
  List.iter
    (fun s ->
      match Jsonx.of_string s with
      | Ok _ -> Alcotest.failf "accepted trailing garbage in %S" s
      | Error _ -> ())
    [
      {|{"a":1} {"b":2}|};
      {|{"a":1}}|};
      {|{"a":1}]|};
      {|null null|};
      {|42 x|};
      {|{"a":1},|};
    ]

let test_oversized_payload () =
  (* Deep nesting and megabyte-scale atoms must parse (or fail) without
     blowing the stack or corrupting the result. *)
  let big_str = String.make 1_000_000 'x' in
  (match Jsonx.of_string (Jsonx.to_string (Jsonx.Str big_str)) with
  | Ok (Jsonx.Str s) ->
    Alcotest.(check int) "1 MB string survives" 1_000_000 (String.length s)
  | _ -> Alcotest.fail "big string did not round-trip");
  let depth = 5_000 in
  let deep =
    String.concat "" [ String.make depth '['; "1"; String.make depth ']' ]
  in
  (match Jsonx.of_string deep with
  | Ok j ->
    let rec count = function
      | Jsonx.List [ inner ] -> 1 + count inner
      | Jsonx.Num 1.0 -> 0
      | _ -> Alcotest.fail "unexpected shape"
    in
    Alcotest.(check int) "nesting depth preserved" depth (count j)
  | Error msg -> Alcotest.failf "deep nesting rejected: %s" msg);
  (* An unterminated deep payload is an error, not a crash. *)
  match Jsonx.of_string (String.make depth '[') with
  | Ok _ -> Alcotest.fail "accepted unterminated nesting"
  | Error _ -> ()

let suite =
  [
    Alcotest.test_case "round-trips" `Quick test_roundtrip;
    Alcotest.test_case "float bit-exactness" `Quick test_float_exactness;
    Alcotest.test_case "rejects malformed input" `Quick test_parse_errors;
    Alcotest.test_case "accessors" `Quick test_accessors;
    Alcotest.test_case "torn lines never half-parse" `Quick test_torn_input;
    Alcotest.test_case "unicode escapes" `Quick test_unicode_escapes;
    Alcotest.test_case "trailing garbage rejected" `Quick
      test_trailing_garbage;
    Alcotest.test_case "oversized payloads" `Quick test_oversized_payload;
  ]
