(* Capability-asymmetric machine families: coverage invariants,
   description round-trips, structured machine-incapable failures,
   legality on asymmetric placements, resMII bounds per family, and
   pool-vs-serial byte identity of a family sweep. *)

open Hcv_support
open Hcv_ir
open Hcv_machine
open Hcv_energy
open Hcv_core
module E = Hcv_explore

(* ----- family coverage --------------------------------------------- *)

let test_family_coverage () =
  Alcotest.(check bool) "at least 3 families" true
    (List.length Family.names >= 3);
  List.iter
    (fun name ->
      let m =
        match Family.find name with
        | Some m -> m
        | None -> Alcotest.failf "family %s not found by name" name
      in
      (* Machine-wide, every kind is covered... *)
      List.iter
        (fun kind ->
          Alcotest.(check bool)
            (Printf.sprintf "%s supports %s" name (Opcode.fu_to_string kind))
            true (Machine.supports m kind))
        Opcode.all_fu_kinds;
      (* ...but no family is capability-symmetric (that is the point). *)
      Alcotest.(check bool)
        (Printf.sprintf "%s is asymmetric" name)
        false
        (Machine.capability_symmetric m);
      (* The eligibility masks agree with the per-cluster capability. *)
      List.iter
        (fun kind ->
          let mask = Machine.eligible_clusters m kind in
          Array.iteri
            (fun i ok ->
              Alcotest.(check bool)
                (Printf.sprintf "%s c%d mask %s" name i
                   (Opcode.fu_to_string kind))
                (Cluster.capable (Machine.cluster m i) kind)
                ok)
            mask)
        Opcode.all_fu_kinds)
    Family.names;
  (* The paper machine is the symmetric baseline. *)
  Alcotest.(check bool) "paper machine is symmetric" true
    (Machine.capability_symmetric (Presets.machine_4c ~buses:1))

(* ----- machine descriptions ---------------------------------------- *)

let test_machdesc_roundtrip () =
  let machines =
    ("paper", Presets.machine_4c ~buses:1)
    :: ("paper-2bus", Presets.machine_4c ~buses:2)
    :: Family.all ()
  in
  List.iter
    (fun (name, m) ->
      let text = E.Machdesc.to_string m in
      match E.Machdesc.of_string text with
      | Error e -> Alcotest.failf "%s does not re-parse: %s" name e
      | Ok m' ->
        (* Canonical serialisation: equal machines print identically. *)
        Alcotest.(check string)
          (Printf.sprintf "%s canonical round-trip" name)
          text (E.Machdesc.to_string m'))
    machines

let test_machdesc_errors () =
  let bad = [ "not json"; "{}"; "{\"clusters\":[]}"; "[1,2,3]" ] in
  List.iter
    (fun text ->
      match E.Machdesc.of_string text with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "bad description %S parsed" text)
    bad

(* ----- structured machine-incapable failures ----------------------- *)

let int_only =
  Machine.make ~name:"int-only"
    ~clusters:
      [|
        Cluster.make ~name:"i0" ~int_fus:2 ~fp_fus:0 ~mem_ports:0 ~registers:16
          ();
        Cluster.make ~name:"i1" ~int_fus:2 ~fp_fus:0 ~mem_ports:0 ~registers:16
          ();
      |]
    ~icn:(Icn.make ~buses:1 ())
    ()

let ctx_for machine =
  let n = Machine.n_clusters machine in
  let act =
    Activity.make ~exec_time_ns:1e6
      ~per_cluster_ins_energy:(Array.make n 100.)
      ~n_comms:100. ~n_mem:100.
  in
  Model.ctx ~params:Params.default
    ~units:(Units.of_reference ~params:Params.default ~n_clusters:n act)
    ()

let test_machine_incapable () =
  let loop = Builders.dotprod ~trip:10 () in
  (* dotprod demands FP and memory; int_only has neither. *)
  let missing = Hcv_sched.Mii.missing_kinds int_only loop.Loop.ddg in
  Alcotest.(check bool) "fp missing" true (List.mem Opcode.Fp_fu missing);
  Alcotest.(check bool) "mem missing" true (List.mem Opcode.Mem_port missing);
  Alcotest.(check bool) "int not missing" false
    (List.mem Opcode.Int_fu missing);
  (* Profiling fails structurally, not with an exception. *)
  (match Profile.profile ~machine:int_only ~loops:[ loop ] () with
  | Ok _ -> Alcotest.fail "profiling an incapable machine succeeded"
  | Error d ->
    Alcotest.(check string) "profile code" "machine-incapable"
      (Hcv_obs.Diag.code d));
  (* So does the heterogeneous scheduler... *)
  (match
     Hsched.schedule ~ctx:(ctx_for int_only)
       ~config:(Presets.reference_config int_only)
       ~loop ()
   with
  | Ok _ -> Alcotest.fail "scheduling on an incapable machine succeeded"
  | Error d ->
    Alcotest.(check string) "hsched code" "machine-incapable"
      (Hcv_obs.Diag.code d));
  (* ...and the homogeneous baseline. *)
  match
    Hcv_sched.Homo.schedule ~machine:int_only ~cycle_time:Q.one ~loop ()
  with
  | Ok _ -> Alcotest.fail "homo scheduling on an incapable machine succeeded"
  | Error _ -> ()

(* ----- legality on asymmetric machines ----------------------------- *)

let schedule_on machine loop =
  match
    Hsched.schedule ~ctx:(ctx_for machine)
      ~config:(Presets.reference_config machine)
      ~loop ()
  with
  | Ok (sched, _) -> sched
  | Error d ->
    Alcotest.failf "scheduling failed on %s: %a" machine.Machine.name
      Hcv_obs.Diag.pp d

let test_asymmetric_legality () =
  let loop = Builders.dotprod ~trip:10 () in
  List.iter
    (fun (name, machine) ->
      let sched = schedule_on machine loop in
      (* Legal placements on a legal machine. *)
      (match Hcv_check.Legal.verify sched with
      | Ok () -> ()
      | Error vs ->
        Alcotest.failf "%s schedule illegal: %s" name
          (String.concat "; "
             (List.map
                (fun (v : Hcv_check.Legal.violation) ->
                  v.Hcv_check.Legal.rule ^ ": " ^ v.Hcv_check.Legal.detail)
                vs)));
      (* Moving an op to a cluster lacking its FU kind must trip the
         oracle's fu-eligibility rule. *)
      let ddg = loop.Loop.ddg in
      let victim =
        let found = ref None in
        Array.iteri
          (fun i (_ : Hcv_sched.Schedule.placement) ->
            if !found = None then begin
              let kind = Instr.fu (Ddg.instr ddg i) in
              let mask = Machine.eligible_clusters machine kind in
              Array.iteri
                (fun c ok -> if (not ok) && !found = None then
                    found := Some (i, c))
                mask
            end)
          sched.Hcv_sched.Schedule.placements;
        !found
      in
      match victim with
      | None -> Alcotest.failf "%s has no ineligible (instr, cluster) pair" name
      | Some (i, c) ->
        let p = Array.copy sched.Hcv_sched.Schedule.placements in
        p.(i) <- { (p.(i)) with Hcv_sched.Schedule.cluster = c };
        let bad = { sched with Hcv_sched.Schedule.placements = p } in
        (match Hcv_check.Legal.verify bad with
        | Ok () ->
          Alcotest.failf "%s: ineligible placement passed the oracle" name
        | Error vs ->
          Alcotest.(check bool)
            (Printf.sprintf "%s flags fu-eligibility" name)
            true
            (List.exists
               (fun (v : Hcv_check.Legal.violation) ->
                 v.Hcv_check.Legal.rule = "fu-eligibility")
               vs)))
    (Family.all ())

(* ----- resMII lower bounds per family ------------------------------ *)

let test_res_mii_bounds () =
  let loop = Builders.wide_loop ~trip:10 ~width:8 () in
  let ddg = loop.Loop.ddg in
  (* wide_loop(8): 8 loads + 8 stores (memory) and 8 FP adds. *)
  let expected =
    [
      ("big-little", 3);
      (* mem: ceil(16/6) *)
      ("fp-heavy", 4);
      (* mem: ceil(16/4) *)
      ("scalar-satellite", 8);
      (* mem: ceil(16/2) *)
    ]
  in
  List.iter
    (fun (name, want) ->
      let m = Family.machine name in
      let got = Hcv_sched.Mii.res_mii m ddg in
      Alcotest.(check int) (Printf.sprintf "%s resMII" name) want got;
      (* The documented formula: max over kinds of ceil(demand/total). *)
      let formula =
        List.fold_left
          (fun acc kind ->
            let demand =
              Array.fold_left
                (fun n i -> if Instr.fu i = kind then n + 1 else n)
                0 (Ddg.instrs ddg)
            in
            if demand = 0 then acc
            else
              let total = Machine.fu_total m kind in
              max acc ((demand + total - 1) / total))
          1 Opcode.all_fu_kinds
      in
      Alcotest.(check int)
        (Printf.sprintf "%s matches the formula" name)
        formula got)
    expected;
  Alcotest.(check int) "paper resMII" 4
    (Hcv_sched.Mii.res_mii (Presets.machine_4c ~buses:1) ddg)

(* ----- machine keys ------------------------------------------------ *)

let test_machine_keys () =
  (* The paper machine's key is pinned: caches from earlier releases
     must stay valid. *)
  Alcotest.(check string) "paper key unchanged"
    "paper-4c-1bus:4:unrestricted"
    (E.Codec.machine_key (Presets.machine_4c ~buses:1));
  (* Family keys carry the full structural signature and are pairwise
     distinct. *)
  let keys =
    List.map (fun (_, m) -> E.Codec.machine_key m) (Family.all ())
  in
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Printf.sprintf "%s carries cluster signature" k)
        true
        (String.length k > String.length "x:clusters="
        && List.exists
             (fun i ->
               i + 9 <= String.length k && String.sub k i 9 = "clusters=")
             (List.init (String.length k - 8) Fun.id)))
    keys;
  Alcotest.(check int) "family keys distinct" (List.length keys)
    (List.length (Listx.uniq keys))

(* ----- family sweep: pool vs serial -------------------------------- *)

let loops_of (c : Sweep.cell) =
  match c.Sweep.bench with
  | "tiny-dot" -> [ Builders.dotprod ~trip:50 () ]
  | b -> Alcotest.failf "unexpected bench %s" b

let family_cells =
  List.map
    (fun f -> Sweep.cell ~machine:(Sweep.Family f) "tiny-dot")
    Family.names

let run_with jobs =
  let engine = E.Engine.create ~jobs () in
  Fun.protect
    ~finally:(fun () -> E.Engine.shutdown engine)
    (fun () -> Sweep.run engine ~loops_of family_cells)

let test_family_sweep_pool_equals_serial () =
  let serial = run_with 1 in
  let parallel = run_with 3 in
  Alcotest.(check (list string))
    "jobs=3 equals jobs=1, byte for byte"
    (List.map Sweep.outcome_to_string serial)
    (List.map Sweep.outcome_to_string parallel);
  List.iter2
    (fun f (o : Sweep.outcome) ->
      Alcotest.(check (option string)) (f ^ " succeeded") None o.Sweep.error;
      Alcotest.(check bool)
        (f ^ " ed2 ratio sane") true
        (Float.is_finite o.Sweep.ed2_ratio && o.Sweep.ed2_ratio > 0.))
    Family.names serial

let suite =
  [
    Alcotest.test_case "family coverage" `Quick test_family_coverage;
    Alcotest.test_case "machdesc round-trip" `Quick test_machdesc_roundtrip;
    Alcotest.test_case "machdesc errors" `Quick test_machdesc_errors;
    Alcotest.test_case "machine incapable" `Quick test_machine_incapable;
    Alcotest.test_case "asymmetric legality" `Quick test_asymmetric_legality;
    Alcotest.test_case "resMII bounds" `Quick test_res_mii_bounds;
    Alcotest.test_case "machine keys" `Quick test_machine_keys;
    Alcotest.test_case "family sweep pool=serial" `Quick
      test_family_sweep_pool_equals_serial;
  ]
