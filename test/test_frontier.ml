(* The Pareto-dominance core: vector derivations, spec canonicalisation,
   and the frontier properties — soundness (no member dominates a
   member), completeness (every offered point is on the frontier or
   dominated by it), the ED²-corner/scalarised-selector equivalence and
   cap-filter commutation — over seeded Gen.gen_metrics corpora. *)

open Hcv_support
open Hcv_machine
open Hcv_energy
open Hcv_core
open Hcv_check

module F = Frontier

(* ----- vectors and dominance --------------------------------------- *)

let test_vec_components () =
  let v = F.vec ~time_ns:3.0 ~energy:2.0 in
  (* Bit-identical to the selector's own derivations: same operation
     order. *)
  Alcotest.(check bool) "ed2 = e*t*t" true (v.F.ed2 = 2.0 *. 3.0 *. 3.0);
  Alcotest.(check bool) "edp = e*t" true (v.F.edp = 2.0 *. 3.0);
  Alcotest.(check bool) "power = e/t" true (v.F.power = 2.0 /. 3.0);
  List.iter
    (fun o ->
      Alcotest.(check bool)
        (Printf.sprintf "value agrees for %s" (F.objective_name o))
        true
        (F.value v o
        = match o with
          | F.Time -> v.F.time_ns
          | F.Energy -> v.F.energy
          | F.Ed2 -> v.F.ed2
          | F.Edp -> v.F.edp
          | F.Power -> v.F.power))
    F.all_objectives

let test_dominance () =
  let a = F.vec ~time_ns:1.0 ~energy:1.0 in
  let b = F.vec ~time_ns:2.0 ~energy:2.0 in
  let objectives = F.all_objectives in
  Alcotest.(check bool) "better everywhere dominates" true
    (F.dominates ~objectives a b);
  Alcotest.(check bool) "dominance is asymmetric" false
    (F.dominates ~objectives b a);
  (* Equal vectors never dominate each other: predicted ties all stay. *)
  Alcotest.(check bool) "equal does not dominate" false
    (F.dominates ~objectives a (F.vec ~time_ns:1.0 ~energy:1.0));
  (* Fast-but-hungry vs slow-but-frugal: incomparable on {time,energy},
     comparable once only time matters. *)
  let fast = F.vec ~time_ns:1.0 ~energy:5.0 in
  let frugal = F.vec ~time_ns:5.0 ~energy:1.0 in
  Alcotest.(check bool) "incomparable on time+energy" false
    (F.dominates ~objectives:[ F.Time; F.Energy ] fast frugal
    || F.dominates ~objectives:[ F.Time; F.Energy ] frugal fast);
  Alcotest.(check bool) "time-only collapses the trade-off" true
    (F.dominates ~objectives:[ F.Time ] fast frugal)

(* ----- specs: canonical form, parsing, wire form ------------------- *)

let test_spec_canonical () =
  let s =
    F.spec ~objectives:[ F.Power; F.Time; F.Power; F.Time ]
      ~caps:
        [
          { F.cap = F.Energy; bound = 2.0 };
          { F.cap = F.Time; bound = 9.0 };
          { F.cap = F.Energy; bound = 2.0 };
        ]
      ()
  in
  (* Deduplicated into all_objectives order, caps sorted and unique. *)
  Alcotest.(check (list string))
    "objectives canonical" [ "time"; "power" ]
    (List.map F.objective_name s.F.objectives);
  Alcotest.(check (list string))
    "caps canonical" [ "time<=9"; "energy<=2" ]
    (List.map F.cap_to_string s.F.caps);
  let s' =
    F.spec ~objectives:[ F.Time; F.Power ]
      ~caps:[ { F.cap = F.Time; bound = 9.0 }; { F.cap = F.Energy; bound = 2.0 } ]
      ()
  in
  Alcotest.(check string) "equal specs, equal keys" (F.spec_key s)
    (F.spec_key s');
  Alcotest.(check bool) "default key differs" false
    (F.spec_key s = F.spec_key F.default_spec);
  Alcotest.check_raises "empty objective set rejected"
    (Invalid_argument "Frontier.spec: empty objective list") (fun () ->
      ignore (F.spec ~objectives:[] ()))

let test_cap_parse () =
  (match F.cap_of_string "energy<=2.5" with
  | Ok c ->
    Alcotest.(check string) "parses" "energy<=2.5" (F.cap_to_string c)
  | Error e -> Alcotest.failf "cap did not parse: %s" e);
  (match F.cap_of_string "time=4" with
  | Ok c -> Alcotest.(check string) "= accepted" "time<=4" (F.cap_to_string c)
  | Error e -> Alcotest.failf "cap did not parse: %s" e);
  List.iter
    (fun s ->
      match F.cap_of_string s with
      | Ok _ -> Alcotest.failf "accepted malformed cap %S" s
      | Error _ -> ())
    [ ""; "energy"; "frob<=2"; "energy<=0"; "energy<=-1"; "energy<=nan" ]

let test_spec_json_roundtrip () =
  let s =
    F.spec ~objectives:[ F.Time; F.Energy ]
      ~caps:[ { F.cap = F.Energy; bound = 2.5 } ]
      ()
  in
  (match F.spec_of_json (F.spec_to_json s) with
  | Ok s' ->
    Alcotest.(check string) "roundtrips" (F.spec_key s) (F.spec_key s')
  | Error e -> Alcotest.failf "wire form did not parse: %s" e);
  (* Both fields optional with the spec defaults. *)
  (match F.spec_of_json (Hcv_explore.Jsonx.Obj []) with
  | Ok s' ->
    Alcotest.(check string) "defaults" (F.spec_key F.default_spec)
      (F.spec_key s')
  | Error e -> Alcotest.failf "empty object did not parse: %s" e);
  match
    F.spec_of_json
      (Hcv_explore.Jsonx.Obj
         [
           ( "objectives",
             Hcv_explore.Jsonx.List [ Hcv_explore.Jsonx.Str "frob" ] );
         ])
  with
  | Ok _ -> Alcotest.fail "accepted unknown objective"
  | Error _ -> ()

(* ----- frontier properties over seeded corpora --------------------- *)

let frontier_of_metrics spec metrics =
  F.of_list spec
    (List.mapi (fun i (time_ns, energy) -> (i, F.vec ~time_ns ~energy)) metrics)

(* Soundness and completeness of one frontier against the corpus it was
   built from. *)
let check_frontier ~seed spec metrics f =
  let objectives = (F.spec_of f).F.objectives in
  let ms = F.members f in
  Alcotest.(check int)
    (Printf.sprintf "seed %d: considered counts offers" seed)
    (List.length metrics) (F.considered f);
  (* No member dominates another member. *)
  List.iter
    (fun (a : int F.entry) ->
      List.iter
        (fun (b : int F.entry) ->
          if a.F.index <> b.F.index then
            Alcotest.(check bool)
              (Printf.sprintf "seed %d: member %d must not dominate member %d"
                 seed a.F.index b.F.index)
              false
              (F.dominates ~objectives a.F.fvec b.F.fvec))
        ms)
    ms;
  (* Every feasible offered point is on the frontier or dominated by a
     member. *)
  List.iteri
    (fun i (time_ns, energy) ->
      let v = F.vec ~time_ns ~energy in
      if F.feasible ~caps:spec.F.caps v then
        Alcotest.(check bool)
          (Printf.sprintf "seed %d: point %d covered" seed i)
          true
          (List.exists
             (fun (m : int F.entry) ->
               m.F.fvec = v || F.dominates ~objectives m.F.fvec v)
             ms))
    metrics;
  (* min_by = the earliest strict minimum over the members. *)
  List.iter
    (fun o ->
      let naive =
        List.fold_left
          (fun acc (m : int F.entry) ->
            match acc with
            | Some (b : int F.entry) when F.value b.F.fvec o <= F.value m.F.fvec o
              ->
              acc
            | _ -> Some m)
          None ms
      in
      (* The fold above keeps the earliest on ties because later members
         only replace on strict improvement. *)
      Alcotest.(check (option int))
        (Printf.sprintf "seed %d: %s corner" seed (F.objective_name o))
        (Option.map (fun (m : int F.entry) -> m.F.index) naive)
        (Option.map (fun (m : int F.entry) -> m.F.index) (F.min_by f o)))
    objectives

let test_properties_default_spec () =
  (* 200 seeded corpora — the fixed-seed property battery. *)
  for seed = 1 to 200 do
    let rng = Rng.create seed in
    let n = 8 + (seed mod 41) in
    let metrics = Gen.gen_metrics ~rng ~n () in
    let f = frontier_of_metrics F.default_spec metrics in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: non-empty" seed)
      true (F.size f > 0);
    Alcotest.(check int)
      (Printf.sprintf "seed %d: no caps, no infeasible" seed)
      0 (F.infeasible f);
    check_frontier ~seed F.default_spec metrics f
  done

let test_properties_objective_subsets () =
  let subsets =
    [ [ F.Time; F.Energy ]; [ F.Ed2 ]; [ F.Edp; F.Power ]; [ F.Time; F.Power ] ]
  in
  for seed = 201 to 280 do
    let rng = Rng.create seed in
    let metrics = Gen.gen_metrics ~rng ~n:24 () in
    let objectives = List.nth subsets (seed mod List.length subsets) in
    let spec = F.spec ~objectives () in
    check_frontier ~seed spec metrics (frontier_of_metrics spec metrics);
    (* A single-objective frontier is exactly the set of points tied at
       the minimum. *)
    match objectives with
    | [ o ] ->
      let best =
        List.fold_left min infinity
          (List.map
             (fun (t, e) -> F.value (F.vec ~time_ns:t ~energy:e) o)
             metrics)
      in
      let f = frontier_of_metrics spec metrics in
      List.iter
        (fun (m : int F.entry) ->
          Alcotest.(check bool)
            (Printf.sprintf "seed %d: single-objective member at min" seed)
            true
            (F.value m.F.fvec o = best))
        (F.members f)
    | _ -> ()
  done

(* Capping then folding equals filtering then folding with no caps:
   constraint filters commute with frontier construction. *)
let test_caps_commute () =
  for seed = 301 to 400 do
    let rng = Rng.create seed in
    let metrics = Gen.gen_metrics ~rng ~n:32 () in
    (* Bounds drawn inside the generator's range so both sides of the
       filter are regularly exercised. *)
    let caps =
      [
        { F.cap = F.Time; bound = 50.0 +. Rng.float rng 900.0 };
        { F.cap = F.Energy; bound = 1.0 +. Rng.float rng 90.0 };
      ]
    in
    let capped =
      frontier_of_metrics (F.spec ~caps ()) metrics
    in
    let feasible =
      List.filter
        (fun (t, e) -> F.feasible ~caps (F.vec ~time_ns:t ~energy:e))
        metrics
    in
    let filtered = frontier_of_metrics (F.spec ()) feasible in
    Alcotest.(check int)
      (Printf.sprintf "seed %d: infeasible = filtered out" seed)
      (List.length metrics - List.length feasible)
      (F.infeasible capped);
    Alcotest.(check (list (pair (float 0.0) (float 0.0))))
      (Printf.sprintf "seed %d: cap-then-fold = filter-then-fold" seed)
      (List.map
         (fun (m : int F.entry) -> (m.F.fvec.F.time_ns, m.F.fvec.F.energy))
         (F.members filtered))
      (List.map
         (fun (m : int F.entry) -> (m.F.fvec.F.time_ns, m.F.fvec.F.energy))
         (F.members capped))
  done

(* ----- the real sweep: corner exactness and pool determinism ------- *)

let machine = Presets.machine_4c ~buses:1

let small_loops () =
  [
    Builders.dotprod ~trip:50 ();
    Builders.recurrence_loop ~trip:80 ();
    Builders.wide_loop ~trip:60 ~width:6 ();
  ]

let with_profile f =
  match Profile.profile ~machine ~loops:(small_loops ()) () with
  | Error d -> Alcotest.failf "profiling failed: %a" Hcv_obs.Diag.pp d
  | Ok p ->
    let units =
      Units.of_reference ~params:Params.default ~n_clusters:4
        p.Profile.activity
    in
    f (Model.ctx ~params:Params.default ~units ()) p

let diag_ok = function
  | Ok v -> v
  | Error d -> Alcotest.failf "unexpected diagnostic: %a" Hcv_obs.Diag.pp d

let test_ed2_corner_is_legacy_selector () =
  with_profile (fun ctx p ->
      let f = diag_ok (Select.frontier_heterogeneous ~ctx ~machine p) in
      let legacy = diag_ok (Select.select_heterogeneous ~ctx ~machine p) in
      match F.min_by f F.Ed2 with
      | None -> Alcotest.fail "non-empty frontier has no ED2 corner"
      | Some m ->
        (* Exactly — byte-for-byte on the serialized choice, not within
           a tolerance. *)
        Alcotest.(check string) "ED2 corner = select_heterogeneous"
          (Sweep.choice_to_string legacy)
          (Sweep.choice_to_string m.F.item))

let test_frontier_covers_sweep () =
  with_profile (fun ctx p ->
      let f = diag_ok (Select.frontier_heterogeneous ~ctx ~machine p) in
      let scored =
        Select.sweep_heterogeneous ~ctx ~machine
          ~slow_factors:Presets.slow_factors p
      in
      Alcotest.(check int) "considered = realisable points"
        (List.length (List.filter_map Fun.id scored))
        (F.considered f);
      List.iter
        (fun (c : Select.choice) ->
          let v = Select.vec_of_choice c in
          Alcotest.(check bool) "swept point covered" true
            (List.exists
               (fun (m : Select.choice F.entry) ->
                 m.F.fvec = v
                 || F.dominates ~objectives:F.all_objectives m.F.fvec v)
               (F.members f)))
        (List.filter_map Fun.id scored))

let members_bytes f =
  String.concat "\n"
    (List.map
       (fun (m : Select.choice F.entry) ->
         Printf.sprintf "%d %s" m.F.index (Sweep.choice_to_string m.F.item))
       (F.members f))

let test_pool_identical () =
  with_profile (fun ctx p ->
      let serial = diag_ok (Select.frontier_heterogeneous ~ctx ~machine p) in
      let pool = Hcv_explore.Pool.create ~jobs:2 () in
      Fun.protect
        ~finally:(fun () -> Hcv_explore.Pool.shutdown pool)
        (fun () ->
          let par =
            diag_ok (Select.frontier_heterogeneous ~pool ~ctx ~machine p)
          in
          Alcotest.(check string) "members byte-identical across workers"
            (members_bytes serial) (members_bytes par)))

let test_infeasible_caps () =
  with_profile (fun ctx p ->
      let spec = F.spec ~caps:[ { F.cap = F.Time; bound = 1e-12 } ] () in
      match Select.frontier_heterogeneous ~spec ~ctx ~machine p with
      | Ok _ -> Alcotest.fail "impossible cap produced a frontier"
      | Error d ->
        Alcotest.(check string) "no-feasible-point" "no-feasible-point"
          (Hcv_obs.Diag.code d))

let suite =
  [
    Alcotest.test_case "vector components" `Quick test_vec_components;
    Alcotest.test_case "dominance" `Quick test_dominance;
    Alcotest.test_case "spec canonicalisation" `Quick test_spec_canonical;
    Alcotest.test_case "cap parsing" `Quick test_cap_parse;
    Alcotest.test_case "spec wire form" `Quick test_spec_json_roundtrip;
    Alcotest.test_case "frontier properties (200 seeds)" `Quick
      test_properties_default_spec;
    Alcotest.test_case "objective subsets (80 seeds)" `Quick
      test_properties_objective_subsets;
    Alcotest.test_case "cap filters commute (100 seeds)" `Quick
      test_caps_commute;
    Alcotest.test_case "ED2 corner = legacy selector" `Quick
      test_ed2_corner_is_legacy_selector;
    Alcotest.test_case "frontier covers the sweep" `Quick
      test_frontier_covers_sweep;
    Alcotest.test_case "pool-identical members" `Quick test_pool_identical;
    Alcotest.test_case "impossible caps diagnose" `Quick test_infeasible_caps;
  ]
