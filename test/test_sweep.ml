(* Sweep cells: content keys, outcome/choice serialization, and the
   end-to-end parallel-equals-serial property of Sweep.run. *)

open Hcv_energy
open Hcv_core
module E = Hcv_explore

let default_cell = Sweep.cell "applu"

let test_cell_key_stable () =
  (* Same inputs, same key — the property --resume depends on. *)
  Alcotest.(check string)
    "key is a pure function of the cell"
    (Sweep.cell_key default_cell)
    (Sweep.cell_key (Sweep.cell "applu"))

let test_cell_key_distinct () =
  let variants =
    [
      ("bench", Sweep.cell "apsi");
      ("buses", Sweep.cell ~buses:2 "applu");
      ("loops", Sweep.cell ~n_loops:3 "applu");
      ("seed", Sweep.cell ~seed:7 "applu");
      ("grid", Sweep.cell ~grid_steps:8 "applu");
      ( "params",
        Sweep.cell ~params:(Params.make ~frac_icn:0.2 ()) "applu" );
      ("frontier", Sweep.cell ~frontier:Frontier.default_spec "applu");
      ( "frontier-caps",
        Sweep.cell
          ~frontier:
            (Frontier.spec
               ~caps:[ { Frontier.cap = Frontier.Energy; bound = 2.0 } ]
               ())
          "applu" );
    ]
  in
  let base = Sweep.cell_key default_cell in
  List.iter
    (fun (what, c) ->
      Alcotest.(check bool)
        (Printf.sprintf "changing %s changes the key" what)
        false
        (String.equal base (Sweep.cell_key c)))
    variants;
  (* All variant keys are also pairwise distinct. *)
  let keys = base :: List.map (fun (_, c) -> Sweep.cell_key c) variants in
  Alcotest.(check int) "no collisions" (List.length keys)
    (List.length (Hcv_support.Listx.uniq keys))

let outcome_eq (a : Sweep.outcome) (b : Sweep.outcome) =
  let feq x y =
    (Float.is_nan x && Float.is_nan y)
    || Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  in
  String.equal a.bench b.bench
  && feq a.ed2_ratio b.ed2_ratio
  && feq a.time_ratio b.time_ratio
  && feq a.energy_ratio b.energy_ratio
  && a.fallbacks = b.fallbacks
  && a.causes = b.causes
  && String.equal a.hetero b.hetero
  && a.frontier = b.frontier
  && a.error = b.error
  && a.trace = b.trace

let outcome =
  Alcotest.testable
    (fun ppf (o : Sweep.outcome) ->
      Format.fprintf ppf "%s ed2=%h err=%s" o.bench o.ed2_ratio
        (Option.value ~default:"-" o.error))
    outcome_eq

let test_outcome_roundtrip () =
  let ok : Sweep.outcome =
    {
      bench = "applu";
      ed2_ratio = 0.8748906986305911;
      time_ratio = 1.02;
      energy_ratio = 0.84;
      fallbacks = 1;
      causes = [ "no-valid-it" ];
      hetero = {|{"config":"fake"}|};
      frontier = [ {|{"config":"fake"}|}; {|{"config":"fake2"}|} ];
      error = None;
      (* The deterministic view only: zero wall, no volatile gauges —
         exactly what the codec keeps. *)
      trace =
        Some
          {
            Hcv_obs.Trace.name = "cell:applu";
            attrs = [ ("bench", "applu") ];
            counters = [ ("hsched.attempts", 3); ("pseudo.evals", 7) ];
            volatile = [];
            wall_ns = 0.0;
            children = [];
          };
    }
  in
  let failed : Sweep.outcome =
    {
      bench = "apsi";
      ed2_ratio = Float.nan;
      time_ratio = Float.nan;
      energy_ratio = Float.nan;
      fallbacks = 0;
      causes = [];
      hetero = "";
      frontier = [];
      error = Some {|scheduling failed: "II overflow"|};
      trace = None;
    }
  in
  List.iter
    (fun o ->
      match Sweep.outcome_of_string (Sweep.outcome_to_string o) with
      | Some o' -> Alcotest.check outcome o.Sweep.bench o o'
      | None -> Alcotest.failf "%s: decode failed" o.Sweep.bench)
    [ ok; failed ];
  Alcotest.(check bool) "garbage rejected" true
    (Sweep.outcome_of_string "{broken" = None)

let test_outcome_legacy_causes () =
  (* Entries written before outcomes carried "causes": one with
     fallbacks must decode as stale (a warm replay would otherwise omit
     the causes a cold recompute reports), one without decodes as-is. *)
  let legacy fallbacks =
    Printf.sprintf
      {|{"bench":"applu","ed2":"0x1.c0p-1","time":"0x1p0","energy":"0x1p-1","fallbacks":%d,"hetero":"h"}|}
      fallbacks
  in
  Alcotest.(check bool) "fallbacks without causes is stale" true
    (Sweep.outcome_of_string (legacy 1) = None);
  match Sweep.outcome_of_string (legacy 0) with
  | Some o ->
    Alcotest.(check (list string)) "clean entry decodes" [] o.Sweep.causes
  | None -> Alcotest.fail "clean pre-causes entry must decode"

(* A cheap synthetic workload standing in for a SPECfp benchmark so the
   end-to-end tests run in test-suite time. *)
let loops_of (c : Sweep.cell) =
  match c.Sweep.bench with
  | "tiny-dot" -> [ Builders.dotprod ~trip:50 () ]
  | "tiny-mix" ->
      [ Builders.recurrence_loop ~trip:50 (); Builders.wide_loop ~trip:50 () ]
  | b -> Alcotest.failf "unexpected bench %s" b

let cells = [ Sweep.cell "tiny-dot"; Sweep.cell "tiny-mix" ]

let run_with ?cache jobs =
  let engine = E.Engine.create ~jobs ?cache () in
  Fun.protect
    ~finally:(fun () -> E.Engine.shutdown engine)
    (fun () -> Sweep.run engine ~loops_of cells)

let test_run_parallel_equals_serial () =
  let serial = run_with 1 in
  let parallel = run_with 3 in
  Alcotest.(check (list outcome)) "jobs=3 equals jobs=1" serial parallel;
  List.iter
    (fun (o : Sweep.outcome) ->
      Alcotest.(check (option string))
        (o.bench ^ " succeeded") None o.error;
      Alcotest.(check bool)
        (o.bench ^ " ed2 ratio sane") true
        (Float.is_finite o.ed2_ratio && o.ed2_ratio > 0.))
    serial

let test_choice_roundtrip_and_cache_replay () =
  (* Round-trip the winning choice of a real run, and check a cached
     replay reproduces the outcome bit-for-bit. *)
  let cache = E.Cache.in_memory () in
  let cold = run_with ~cache 1 in
  let warm = run_with ~cache 1 in
  Alcotest.(check (list outcome)) "cache replay identical" cold warm;
  let s = E.Cache.stats cache in
  Alcotest.(check int) "second run all hits" 2 s.E.Cache.hits;
  List.iter2
    (fun (c : Sweep.cell) (o : Sweep.outcome) ->
      let machine = Sweep.machine_of_cell c in
      match Sweep.choice_of_string ~machine o.hetero with
      | None -> Alcotest.failf "%s: choice decode failed" o.bench
      | Some choice ->
          Alcotest.(check string)
            (o.bench ^ " choice round-trips")
            o.hetero
            (Sweep.choice_to_string choice))
    cells cold

let suite =
  [
    Alcotest.test_case "cell key is stable" `Quick test_cell_key_stable;
    Alcotest.test_case "cell key separates inputs" `Quick
      test_cell_key_distinct;
    Alcotest.test_case "outcome round-trip (incl. failure)" `Quick
      test_outcome_roundtrip;
    Alcotest.test_case "legacy entries with fallbacks are stale" `Quick
      test_outcome_legacy_causes;
    Alcotest.test_case "parallel run equals serial" `Slow
      test_run_parallel_equals_serial;
    Alcotest.test_case "choice round-trip and cache replay" `Slow
      test_choice_roundtrip_and_cache_replay;
  ]
