(* The ablation switches of the heterogeneous scheduler. *)

open Hcv_machine
open Hcv_energy
open Hcv_core
open Hcv_workload

let machine = Presets.machine_4c ~buses:1

let diag_ok = function
  | Ok v -> v
  | Error d -> Alcotest.failf "unexpected diagnostic: %a" Hcv_obs.Diag.pp d

let setup () =
  let spec = Option.get (Specfp.find "sixtrack") in
  let loops = Specfp.loops ~n_loops:4 ~seed:11 spec in
  let profile = diag_ok (Profile.profile ~machine ~loops ()) in
  let units =
    Units.of_reference ~params:Params.default ~n_clusters:4
      profile.Profile.activity
  in
  let ctx = Model.ctx ~params:Params.default ~units () in
  let config =
    (diag_ok (Select.select_heterogeneous ~ctx ~machine profile)).Select.config
  in
  (ctx, profile, config)

let test_variants_schedule () =
  let ctx, profile, config = setup () in
  List.iter
    (fun (label, preplace, score_mode) ->
      let _, ed2, fallbacks =
        Pipeline.measure_config ~preplace ~score_mode ~ctx ~machine ~profile
          ~config ()
      in
      Alcotest.(check bool) (label ^ " positive ed2") true (ed2 > 0.0);
      Alcotest.(check int) (label ^ " no fallbacks") 0 fallbacks)
    [
      ("full", true, Hsched.Ed2);
      ("no-preplace", false, Hsched.Ed2);
      ("schedulability", true, Hsched.Schedulability);
    ]

let test_ed2_scoring_not_worse () =
  (* On a recurrence-heavy population, the ED2-guided refinement should
     not lose to pure schedulability scoring. *)
  let ctx, profile, config = setup () in
  let measure score_mode =
    let _, ed2, _ =
      Pipeline.measure_config ~score_mode ~ctx ~machine ~profile ~config ()
    in
    ed2
  in
  let full = measure Hsched.Ed2 in
  let sched_only = measure Hsched.Schedulability in
  Alcotest.(check bool)
    (Printf.sprintf "ed2 %.4g <= sched-only %.4g * 1.02" full sched_only)
    true
    (full <= sched_only *. 1.02)

let suite =
  [
    Alcotest.test_case "all variants schedule" `Quick test_variants_schedule;
    Alcotest.test_case "ED2 scoring not worse" `Quick
      test_ed2_scoring_not_worse;
  ]
