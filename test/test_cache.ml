(* The persistent content-addressed cache: hit/miss accounting,
   reopen persistence, corrupt-entry recovery (CRC quarantine, torn
   tails), v2 compatibility, and atomic compaction. *)

open Hcv_explore
module R = Hcv_resilience

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "hcv-cache-test-%d-%d" (Unix.getpid ()) !counter)
    in
    if Sys.file_exists dir then
      Array.iter
        (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir)
    else ();
    dir

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then (
        Array.iter
          (fun file -> Sys.remove (Filename.concat dir file))
          (Sys.readdir dir);
        Sys.rmdir dir))
    (fun () -> f dir)

let test_in_memory () =
  let c = Cache.in_memory () in
  Alcotest.(check bool) "no dir" true (Cache.dir c = None);
  Alcotest.(check (option string)) "miss" None (Cache.find c "k1");
  Cache.store c ~key:"k1" "v1";
  Alcotest.(check (option string)) "hit" (Some "v1") (Cache.find c "k1");
  Cache.store c ~key:"k1" "v2";
  Alcotest.(check (option string)) "replaced" (Some "v2") (Cache.find c "k1");
  let s = Cache.stats c in
  Alcotest.(check int) "entries" 1 s.Cache.entries;
  Alcotest.(check int) "hits" 2 s.Cache.hits;
  Alcotest.(check int) "misses" 1 s.Cache.misses;
  Cache.close c

let test_persistence () =
  with_dir (fun dir ->
      let c = Cache.open_dir dir in
      Cache.store c ~key:"alpha" "one";
      Cache.store c ~key:"beta" {|two with "quotes" and
newline|};
      Cache.close c;
      let c' = Cache.open_dir dir in
      let s = Cache.stats c' in
      Alcotest.(check int) "loaded" 2 s.Cache.loaded;
      Alcotest.(check int) "nothing dropped" 0 s.Cache.dropped;
      Alcotest.(check (option string)) "alpha survives" (Some "one")
        (Cache.find c' "alpha");
      Alcotest.(check (option string))
        "beta survives" (Some {|two with "quotes" and
newline|})
        (Cache.find c' "beta");
      Cache.close c')

let test_corrupt_recovery () =
  with_dir (fun dir ->
      let c = Cache.open_dir dir in
      Cache.store c ~key:"good1" "v1";
      Cache.store c ~key:"good2" "v2";
      Cache.close c;
      (* Corrupt the file the two ways a real crash/bitrot produces:
         garbage in the middle and a truncated final line. *)
      let file = Filename.concat dir "cache.jsonl" in
      let lines =
        let ic = open_in file in
        let rec go acc =
          match input_line ic with
          | l -> go (l :: acc)
          | exception End_of_file ->
              close_in ic;
              List.rev acc
        in
        go []
      in
      let oc = open_out file in
      (match lines with
      | [ l1; l2 ] ->
          output_string oc l1;
          output_char oc '\n';
          output_string oc "{not json at all\n";
          output_string oc "{\"k\":\"no-value-field\"}\n";
          (* Truncated mid-line, as a kill during append leaves it. *)
          output_string oc (String.sub l2 0 (String.length l2 / 2))
      | _ -> Alcotest.fail "expected two cache lines");
      close_out oc;
      let c' = Cache.open_dir dir in
      let s = Cache.stats c' in
      Alcotest.(check int) "one good entry loaded" 1 s.Cache.loaded;
      Alcotest.(check int) "three corrupt lines dropped" 3 s.Cache.dropped;
      Alcotest.(check (option string)) "good1 recovered" (Some "v1")
        (Cache.find c' "good1");
      Alcotest.(check (option string)) "good2 must recompute" None
        (Cache.find c' "good2");
      (* Recompute and store; a further reopen sees both again. *)
      Cache.store c' ~key:"good2" "v2";
      Cache.close c';
      let c'' = Cache.open_dir dir in
      Alcotest.(check (option string)) "good2 after recompute" (Some "v2")
        (Cache.find c'' "good2");
      Cache.close c'')

let read_lines file =
  let ic = open_in file in
  let rec go acc =
    match input_line ic with
    | l -> go (l :: acc)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  go []

let write_lines file lines =
  let oc = open_out file in
  List.iter
    (fun l ->
      output_string oc l;
      output_char oc '\n')
    lines;
  close_out oc

let find_sub s sub =
  let n = String.length s in
  let m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else go (i + 1)
  in
  go 0

let replace_sub s ~sub ~by =
  match find_sub s sub with
  | None -> s
  | Some i ->
    String.sub s 0 i ^ by
    ^ String.sub s (i + String.length sub)
        (String.length s - i - String.length sub)

let contains_sub s sub = find_sub s sub <> None

(* A bit flip *inside a structurally valid record* — undetectable by
   the JSON parser, caught only by the v3 CRC. *)
let test_crc_catches_bit_flip () =
  with_dir (fun dir ->
      let c = Cache.open_dir dir in
      Cache.store c ~key:"good1" "v1";
      Cache.store c ~key:"good2" "v2";
      Cache.close c;
      let file = Filename.concat dir "cache.jsonl" in
      let tampered =
        match read_lines file with
        | [ l1; l2 ] ->
          let flipped = replace_sub l2 ~sub:{|"v":"v2"|} ~by:{|"v":"vX"|} in
          Alcotest.(check bool) "tampering changed the line" true
            (flipped <> l2);
          [ l1; flipped ]
        | _ -> Alcotest.fail "expected two cache lines"
      in
      write_lines file tampered;
      let warns = ref [] in
      let c' = Cache.open_dir ~warn:(fun d -> warns := d :: !warns) dir in
      let s = Cache.stats c' in
      Alcotest.(check int) "one entry survives" 1 s.Cache.loaded;
      Alcotest.(check int) "flipped record dropped" 1 s.Cache.dropped;
      Alcotest.(check (option string)) "good1 intact" (Some "v1")
        (Cache.find c' "good1");
      Alcotest.(check (option string)) "tampered value not served" None
        (Cache.find c' "good2");
      (match !warns with
      | [ d ] ->
        Alcotest.(check string) "warn code" "cache-corrupt-lines"
          (Hcv_obs.Diag.code d);
        let fields = Hcv_obs.Diag.fields d in
        Alcotest.(check (option string)) "dropped count" (Some "1")
          (List.assoc_opt "dropped" fields);
        Alcotest.(check (option string)) "first bad line" (Some "2")
          (List.assoc_opt "first_bad_line" fields)
      | ws -> Alcotest.failf "expected exactly one warning, got %d"
                (List.length ws));
      (* The bad line is preserved verbatim for forensics. *)
      Alcotest.(check (list string)) "quarantined verbatim"
        [ List.nth tampered 1 ]
        (read_lines (Filename.concat dir Cache.rej_file));
      Cache.close c')

(* Kill simulations: the file ends mid-record and mid-CRC.  Both stubs
   must be quarantined and never corrupt neighbouring records. *)
let test_torn_tail_mid_crc () =
  with_dir (fun dir ->
      let c = Cache.open_dir dir in
      Cache.store c ~key:"a" "1";
      Cache.store c ~key:"b" "2";
      Cache.close c;
      let file = Filename.concat dir "cache.jsonl" in
      (match read_lines file with
      | [ l1; l2 ] ->
        (* Cut inside the trailing CRC hex digits. *)
        let oc = open_out file in
        output_string oc l1;
        output_char oc '\n';
        output_string oc (String.sub l2 0 (String.length l2 - 5));
        close_out oc
      | _ -> Alcotest.fail "expected two cache lines");
      let c' = Cache.open_dir dir in
      let s = Cache.stats c' in
      Alcotest.(check int) "intact record loads" 1 s.Cache.loaded;
      Alcotest.(check int) "mid-CRC stub dropped" 1 s.Cache.dropped;
      (* The next append must start on a fresh line, not glue onto the
         stub. *)
      Cache.store c' ~key:"b" "2";
      Cache.close c';
      let c'' = Cache.open_dir dir in
      (* The stub itself stays on disk (quarantine copies it, the live
         file is untouched) but the healed append after it parses
         cleanly. *)
      Alcotest.(check int) "only the old stub dropped" 1
        (Cache.stats c'').Cache.dropped;
      Alcotest.(check int) "both records load" 2 (Cache.stats c'').Cache.loaded;
      Alcotest.(check (option string)) "healed entry" (Some "2")
        (Cache.find c'' "b");
      (* Compaction scrubs the stub for good. *)
      (match Cache.compact c'' with
      | Ok n -> Alcotest.(check int) "two live records" 2 n
      | Error d ->
        Alcotest.failf "compact failed: %s" (Hcv_obs.Diag.to_string d));
      Cache.close c'';
      let c3 = Cache.open_dir dir in
      Alcotest.(check int) "clean after compaction" 0
        (Cache.stats c3).Cache.dropped;
      Cache.close c3)

let test_torn_write_injection () =
  with_dir (fun dir ->
      let plan =
        R.Inject.plan ~seed:3 [ R.Inject.spec ~max_fires:1 R.Inject.Torn_write ]
      in
      R.Inject.with_plan plan (fun () ->
          let c = Cache.open_dir dir in
          Cache.store c ~key:"k1" "v1";
          (* torn on disk, intact in memory *)
          Cache.store c ~key:"k2" "v2";
          Alcotest.(check (option string)) "memory view intact" (Some "v1")
            (Cache.find c "k1");
          Cache.close c);
      Alcotest.(check int) "fault fired" 1 (R.Inject.total_fires plan);
      let c' = Cache.open_dir dir in
      let s = Cache.stats c' in
      Alcotest.(check int) "full record recovered" 1 s.Cache.loaded;
      Alcotest.(check int) "torn record quarantined" 1 s.Cache.dropped;
      Alcotest.(check (option string)) "k2 survives" (Some "v2")
        (Cache.find c' "k2");
      Alcotest.(check (option string)) "k1 must recompute" None
        (Cache.find c' "k1");
      Cache.close c')

let test_v2_compat () =
  with_dir (fun dir ->
      (* A pre-CRC cache file written by an older build. *)
      let file = Filename.concat dir "cache.jsonl" in
      Sys.mkdir dir 0o755;
      write_lines file [ {|{"k":"old1","v":"a"}|}; {|{"k":"old2","v":"b"}|} ];
      let c = Cache.open_dir dir in
      let s = Cache.stats c in
      Alcotest.(check int) "v2 records load" 2 s.Cache.loaded;
      Alcotest.(check int) "nothing dropped" 0 s.Cache.dropped;
      Alcotest.(check (option string)) "v2 value served" (Some "a")
        (Cache.find c "old1");
      (* New appends are v3; the mixed file still round-trips. *)
      Cache.store c ~key:"new" "c";
      Cache.close c;
      let c' = Cache.open_dir dir in
      Alcotest.(check int) "mixed v2/v3 reload" 3 (Cache.stats c').Cache.loaded;
      Alcotest.(check bool) "new record carries a CRC" true
        (List.exists
           (fun l -> contains_sub l {|"c":|})
           (read_lines (Filename.concat dir "cache.jsonl")));
      Cache.close c')

let test_compact_atomic () =
  with_dir (fun dir ->
      let c = Cache.open_dir dir in
      Cache.store c ~key:"b" "2";
      Cache.store c ~key:"a" "1";
      Cache.store c ~key:"a" "1'";
      (* superseded duplicate on disk *)
      Alcotest.(check int) "three appended lines before compaction" 3
        (List.length (read_lines (Filename.concat dir "cache.jsonl")));
      (match Cache.compact c with
      | Ok n -> Alcotest.(check int) "two live records" 2 n
      | Error d -> Alcotest.failf "compact failed: %s" (Hcv_obs.Diag.to_string d));
      let lines = read_lines (Filename.concat dir "cache.jsonl") in
      Alcotest.(check int) "duplicates dropped" 2 (List.length lines);
      Cache.store c ~key:"c" "3";
      Cache.close c;
      let c' = Cache.open_dir dir in
      Alcotest.(check int) "reload after compact+append" 3
        (Cache.stats c').Cache.loaded;
      Alcotest.(check (option string)) "latest duplicate wins" (Some "1'")
        (Cache.find c' "a");
      (* An injected rename failure must leave the live file untouched
         and remove the temp. *)
      let before = read_lines (Filename.concat dir "cache.jsonl") in
      let plan =
        R.Inject.plan ~seed:1 [ R.Inject.spec R.Inject.Rename_fail ]
      in
      R.Inject.with_plan plan (fun () ->
          match Cache.compact c' with
          | Ok _ -> Alcotest.fail "rename failure must surface"
          | Error d ->
            Alcotest.(check string) "code" "compact-rename-failed"
              (Hcv_obs.Diag.code d));
      Alcotest.(check (list string)) "original file untouched" before
        (read_lines (Filename.concat dir "cache.jsonl"));
      Alcotest.(check bool) "temp file removed" false
        (Sys.file_exists (Filename.concat dir "cache.jsonl.tmp"));
      Cache.close c')

let test_open_fail_degrades () =
  with_dir (fun dir ->
      let plan =
        R.Inject.plan ~seed:1 [ R.Inject.spec R.Inject.Cache_open_fail ]
      in
      let warns = ref [] in
      R.Inject.with_plan plan (fun () ->
          let c = Cache.open_dir ~warn:(fun d -> warns := d :: !warns) dir in
          Alcotest.(check bool) "degraded to in-memory" true
            (Cache.dir c = None);
          (* Memoisation still works, it just stops checkpointing. *)
          Cache.store c ~key:"k" "v";
          Alcotest.(check (option string)) "in-memory store" (Some "v")
            (Cache.find c "k");
          Cache.close c);
      match !warns with
      | [ d ] ->
        Alcotest.(check string) "warn code" "cache-unwritable"
          (Hcv_obs.Diag.code d)
      | ws ->
        Alcotest.failf "expected exactly one warning, got %d" (List.length ws))

let test_demote_hit () =
  let c = Cache.in_memory () in
  Cache.store c ~key:"k" "undecodable";
  ignore (Cache.find c "k");
  Cache.demote_hit c;
  let s = Cache.stats c in
  Alcotest.(check int) "hit demoted" 0 s.Cache.hits;
  Alcotest.(check int) "counted as miss" 1 s.Cache.misses;
  Cache.close c

let suite =
  [
    Alcotest.test_case "in-memory hit/miss" `Quick test_in_memory;
    Alcotest.test_case "persists across reopen" `Quick test_persistence;
    Alcotest.test_case "skips corrupt and truncated lines" `Quick
      test_corrupt_recovery;
    Alcotest.test_case "CRC catches in-record bit flips" `Quick
      test_crc_catches_bit_flip;
    Alcotest.test_case "torn tail mid-CRC quarantined" `Quick
      test_torn_tail_mid_crc;
    Alcotest.test_case "injected torn write recovers on reopen" `Quick
      test_torn_write_injection;
    Alcotest.test_case "v2 files round-trip" `Quick test_v2_compat;
    Alcotest.test_case "compact is atomic" `Quick test_compact_atomic;
    Alcotest.test_case "open failure degrades to in-memory" `Quick
      test_open_fail_degrades;
    Alcotest.test_case "demote_hit reclassifies" `Quick test_demote_hit;
  ]
