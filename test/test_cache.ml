(* The persistent content-addressed cache: hit/miss accounting,
   reopen persistence, and corrupt-entry recovery. *)

open Hcv_explore

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "hcv-cache-test-%d-%d" (Unix.getpid ()) !counter)
    in
    if Sys.file_exists dir then
      Array.iter
        (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir)
    else ();
    dir

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then (
        Array.iter
          (fun file -> Sys.remove (Filename.concat dir file))
          (Sys.readdir dir);
        Sys.rmdir dir))
    (fun () -> f dir)

let test_in_memory () =
  let c = Cache.in_memory () in
  Alcotest.(check bool) "no dir" true (Cache.dir c = None);
  Alcotest.(check (option string)) "miss" None (Cache.find c "k1");
  Cache.store c ~key:"k1" "v1";
  Alcotest.(check (option string)) "hit" (Some "v1") (Cache.find c "k1");
  Cache.store c ~key:"k1" "v2";
  Alcotest.(check (option string)) "replaced" (Some "v2") (Cache.find c "k1");
  let s = Cache.stats c in
  Alcotest.(check int) "entries" 1 s.Cache.entries;
  Alcotest.(check int) "hits" 2 s.Cache.hits;
  Alcotest.(check int) "misses" 1 s.Cache.misses;
  Cache.close c

let test_persistence () =
  with_dir (fun dir ->
      let c = Cache.open_dir dir in
      Cache.store c ~key:"alpha" "one";
      Cache.store c ~key:"beta" {|two with "quotes" and
newline|};
      Cache.close c;
      let c' = Cache.open_dir dir in
      let s = Cache.stats c' in
      Alcotest.(check int) "loaded" 2 s.Cache.loaded;
      Alcotest.(check int) "nothing dropped" 0 s.Cache.dropped;
      Alcotest.(check (option string)) "alpha survives" (Some "one")
        (Cache.find c' "alpha");
      Alcotest.(check (option string))
        "beta survives" (Some {|two with "quotes" and
newline|})
        (Cache.find c' "beta");
      Cache.close c')

let test_corrupt_recovery () =
  with_dir (fun dir ->
      let c = Cache.open_dir dir in
      Cache.store c ~key:"good1" "v1";
      Cache.store c ~key:"good2" "v2";
      Cache.close c;
      (* Corrupt the file the two ways a real crash/bitrot produces:
         garbage in the middle and a truncated final line. *)
      let file = Filename.concat dir "cache.jsonl" in
      let lines =
        let ic = open_in file in
        let rec go acc =
          match input_line ic with
          | l -> go (l :: acc)
          | exception End_of_file ->
              close_in ic;
              List.rev acc
        in
        go []
      in
      let oc = open_out file in
      (match lines with
      | [ l1; l2 ] ->
          output_string oc l1;
          output_char oc '\n';
          output_string oc "{not json at all\n";
          output_string oc "{\"k\":\"no-value-field\"}\n";
          (* Truncated mid-line, as a kill during append leaves it. *)
          output_string oc (String.sub l2 0 (String.length l2 / 2))
      | _ -> Alcotest.fail "expected two cache lines");
      close_out oc;
      let c' = Cache.open_dir dir in
      let s = Cache.stats c' in
      Alcotest.(check int) "one good entry loaded" 1 s.Cache.loaded;
      Alcotest.(check int) "three corrupt lines dropped" 3 s.Cache.dropped;
      Alcotest.(check (option string)) "good1 recovered" (Some "v1")
        (Cache.find c' "good1");
      Alcotest.(check (option string)) "good2 must recompute" None
        (Cache.find c' "good2");
      (* Recompute and store; a further reopen sees both again. *)
      Cache.store c' ~key:"good2" "v2";
      Cache.close c';
      let c'' = Cache.open_dir dir in
      Alcotest.(check (option string)) "good2 after recompute" (Some "v2")
        (Cache.find c'' "good2");
      Cache.close c'')

let test_demote_hit () =
  let c = Cache.in_memory () in
  Cache.store c ~key:"k" "undecodable";
  ignore (Cache.find c "k");
  Cache.demote_hit c;
  let s = Cache.stats c in
  Alcotest.(check int) "hit demoted" 0 s.Cache.hits;
  Alcotest.(check int) "counted as miss" 1 s.Cache.misses;
  Cache.close c

let suite =
  [
    Alcotest.test_case "in-memory hit/miss" `Quick test_in_memory;
    Alcotest.test_case "persists across reopen" `Quick test_persistence;
    Alcotest.test_case "skips corrupt and truncated lines" `Quick
      test_corrupt_recovery;
    Alcotest.test_case "demote_hit reclassifies" `Quick test_demote_hit;
  ]
