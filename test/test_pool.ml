(* The fixed worker-domain pool: determinism for any worker count,
   exception propagation, safe nesting. *)

open Hcv_explore

let with_pool jobs f =
  let pool = Pool.create ~jobs () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

(* A pure function with input-dependent cost, so parallel completion
   order differs from submission order. *)
let work x =
  let n = 1000 + (x * 131 mod 5000) in
  let acc = ref 0 in
  for i = 1 to n do
    acc := (!acc + (i * x)) mod 1_000_003
  done;
  (x, !acc)

let test_determinism () =
  let xs = List.init 100 (fun i -> i) in
  let expected = List.map work xs in
  List.iter
    (fun jobs ->
      with_pool jobs (fun pool ->
          Alcotest.(check (list (pair int int)))
            (Printf.sprintf "jobs=%d matches serial" jobs)
            expected (Pool.map pool work xs)))
    [ 1; 2; 8 ]

let test_empty_and_singleton () =
  with_pool 4 (fun pool ->
      Alcotest.(check (list int)) "empty" [] (Pool.map pool (fun x -> x) []);
      Alcotest.(check (list int)) "singleton" [ 7 ]
        (Pool.map pool (fun x -> x + 6) [ 1 ]))

let test_exception_propagation () =
  with_pool 4 (fun pool ->
      Alcotest.check_raises "worker exception reaches the caller"
        (Failure "boom-3") (fun () ->
          ignore
            (Pool.map pool
               (fun x -> if x = 3 then failwith "boom-3" else x)
               [ 0; 1; 2; 3; 4; 5 ])))

let test_first_failure_wins () =
  (* Two failing cells: the serial run would hit index 2 first, so the
     parallel run must report that one whatever finishes first. *)
  with_pool 8 (fun pool ->
      Alcotest.check_raises "lowest-indexed failure" (Failure "boom-2")
        (fun () ->
          ignore
            (Pool.map pool
               (fun x ->
                 if x >= 2 then failwith (Printf.sprintf "boom-%d" x) else x)
               [ 0; 1; 2; 3; 4; 5; 6; 7 ])))

let test_map_outcome_per_item () =
  (* Supervised fan-out: every task runs, each failure stays in its own
     slot — identical shape for the serial and parallel paths. *)
  List.iter
    (fun jobs ->
      with_pool jobs (fun pool ->
          let ran = Atomic.make 0 in
          let out =
            Pool.map_outcome pool
              (fun x ->
                Atomic.incr ran;
                if x mod 3 = 0 then failwith (Printf.sprintf "boom-%d" x)
                else x * 10)
              [ 0; 1; 2; 3; 4; 5 ]
          in
          Alcotest.(check int)
            (Printf.sprintf "every task ran (jobs=%d)" jobs)
            6 (Atomic.get ran);
          List.iteri
            (fun i r ->
              if i mod 3 = 0 then
                match r with
                | Error (Failure msg, _) ->
                  Alcotest.(check string) "failure in its slot"
                    (Printf.sprintf "boom-%d" i) msg
                | Error _ -> Alcotest.fail "wrong exception"
                | Ok _ -> Alcotest.failf "slot %d should fail" i
              else
                match r with
                | Ok v -> Alcotest.(check int) "value in its slot" (i * 10) v
                | Error _ -> Alcotest.failf "slot %d should succeed" i)
            out))
    [ 1; 4 ]

let test_map_outcome_all_ok () =
  with_pool 3 (fun pool ->
      let out = Pool.map_outcome pool (fun x -> x + 1) [ 1; 2; 3 ] in
      Alcotest.(check (list int)) "all ok" [ 2; 3; 4 ]
        (List.map Result.get_ok out))

let test_nested_map_runs_inline () =
  (* A map issued from inside a worker must not deadlock: it runs
     inline in that worker. *)
  with_pool 2 (fun pool ->
      let result =
        Pool.map pool
          (fun x -> Pool.map pool (fun y -> x * y) [ 1; 2; 3 ])
          [ 1; 2; 3; 4 ]
      in
      Alcotest.(check (list (list int)))
        "nested results"
        [ [ 1; 2; 3 ]; [ 2; 4; 6 ]; [ 3; 6; 9 ]; [ 4; 8; 12 ] ]
        result)

let test_pool_reuse () =
  (* The pool is fixed: several maps reuse the same workers. *)
  with_pool 3 (fun pool ->
      for i = 1 to 5 do
        let xs = List.init 20 (fun j -> (i * 100) + j) in
        Alcotest.(check (list (pair int int)))
          (Printf.sprintf "round %d" i)
          (List.map work xs) (Pool.map pool work xs)
      done)

let suite =
  [
    Alcotest.test_case "deterministic under 1/2/8 workers" `Quick
      test_determinism;
    Alcotest.test_case "empty and singleton" `Quick test_empty_and_singleton;
    Alcotest.test_case "exception propagation" `Quick
      test_exception_propagation;
    Alcotest.test_case "first failure wins" `Quick test_first_failure_wins;
    Alcotest.test_case "map_outcome isolates failures per slot" `Quick
      test_map_outcome_per_item;
    Alcotest.test_case "map_outcome all-ok" `Quick test_map_outcome_all_ok;
    Alcotest.test_case "nested map runs inline" `Quick
      test_nested_map_runs_inline;
    Alcotest.test_case "pool reuse across maps" `Quick test_pool_reuse;
  ]
