(* End-to-end integration: DSL text -> heterogeneous scheduling ->
   code emission -> simulation, all consistent with each other. *)

open Hcv_support
open Hcv_ir
open Hcv_machine
open Hcv_energy
open Hcv_sched
open Hcv_core

let machine = Presets.machine_4c ~buses:1

let source =
  {|
loop saxpy trip 120 weight 0.5
  node lx ld.f
  node ly ld.f
  node m mul.f
  node s add.f
  node st st.f
  node i add.i
  edge lx m
  edge ly s
  edge m s
  edge s st
  edge i lx
  edge i ly
  edge i i dist 1
end

loop horner trip 200 weight 0.5
  node c0 ld.f
  node m mul.f
  node a add.f
  edge c0 a
  edge m a
  edge a m dist 1
end
|}

let parse () =
  match Dsl.parse source with
  | Ok loops -> loops
  | Error e -> Alcotest.failf "parse: %a" Dsl.pp_error e

let test_full_flow () =
  let loops = parse () in
  match Pipeline.run ~machine ~name:"integration" ~loops () with
  | Error d -> Alcotest.failf "pipeline: %a" Hcv_obs.Diag.pp d
  | Ok r ->
    Alcotest.(check int) "all loops scheduled" (List.length loops)
      (List.length r.Pipeline.loop_results);
    List.iter
      (fun (lr : Pipeline.loop_result) ->
        let sched = lr.Pipeline.schedule in
        let trip = lr.Pipeline.profile.Profile.loop.Loop.trip in
        (* Code emission succeeds and its kernel covers one iteration. *)
        let code = Codegen.emit sched in
        Alcotest.(check int) "kernel ops"
          (Ddg.n_instrs sched.Schedule.loop.Loop.ddg + Schedule.n_comms sched)
          (Codegen.kernel_ops code);
        (* The simulator replays it with no violations and agrees with
           the analytic time. *)
        (match Hcv_sim.Simulator.measure ~schedule:sched ~trip with
        | Error vs -> Alcotest.failf "sim: %s" (String.concat "; " vs)
        | Ok act ->
          Alcotest.(check (float 1e-6))
            "time agrees"
            (Schedule.exec_time_ns sched ~trip)
            act.Activity.exec_time_ns);
        (* Registers fit. *)
        let ra = Regalloc.analyze sched in
        Alcotest.(check bool) "registers fit" true
          (Array.for_all Fun.id ra.Regalloc.fits))
      r.Pipeline.loop_results

let test_energy_model_consistency () =
  (* Measured activity through the simulator gives the same model
     energy as the analytic activity. *)
  let loops = parse () in
  match Pipeline.run ~machine ~name:"integration" ~loops () with
  | Error d -> Alcotest.failf "pipeline: %a" Hcv_obs.Diag.pp d
  | Ok r ->
    let config = r.Pipeline.hetero.Select.config in
    List.iter
      (fun (lr : Pipeline.loop_result) ->
        let trip = lr.Pipeline.profile.Profile.loop.Loop.trip in
        let analytic =
          Profile.activity_of_schedule lr.Pipeline.schedule ~trip
        in
        match Hcv_sim.Simulator.measure ~schedule:lr.Pipeline.schedule ~trip with
        | Error vs -> Alcotest.failf "sim: %s" (String.concat "; " vs)
        | Ok measured ->
          let e1 =
            Model.total (Model.energy r.Pipeline.ctx ~config analytic)
          in
          let e2 =
            Model.total (Model.energy r.Pipeline.ctx ~config measured)
          in
          Alcotest.(check (float 1e-9)) "same energy" e1 e2)
      r.Pipeline.loop_results

let test_dsl_roundtrip_through_scheduler () =
  (* Print the loops back out, reparse, and get identical MIIs. *)
  let loops = parse () in
  match Dsl.parse (Dsl.print_all loops) with
  | Error e -> Alcotest.failf "reparse: %a" Dsl.pp_error e
  | Ok loops2 ->
    List.iter2
      (fun (a : Loop.t) (b : Loop.t) ->
        Alcotest.(check int) "same MII"
          (Mii.mii machine a.Loop.ddg)
          (Mii.mii machine b.Loop.ddg))
      loops loops2

let test_acyclic_vs_pipelined () =
  (* For the horner recurrence the acyclic schedule is nearly as good
     (the recurrence serialises everything); for saxpy pipelining
     wins clearly. *)
  let loops = parse () in
  let saxpy = List.find (fun (l : Loop.t) -> l.Loop.name = "saxpy") loops in
  match
    List_sched.speedup_of_pipelining ~machine ~cycle_time:Q.one ~loop:saxpy ()
  with
  | Error msg -> Alcotest.failf "failed: %s" msg
  | Ok speedup ->
    Alcotest.(check bool)
      (Printf.sprintf "saxpy speedup %.2f > 1.5" speedup)
      true (speedup > 1.5)

let test_oracle_over_pipelines () =
  (* The independent legality oracle accepts every schedule the
     evaluation pipelines produce: the full flow on the unrestricted
     machine and on the Fig. 7 grid-restricted machine, the homogeneous
     reference schedules behind the profile, and the §4.1 ablation
     variants (pre-placement / scoring switched off). *)
  let loops = parse () in
  let ok_or_fail label = function
    | Ok () -> ()
    | Error vs ->
      Alcotest.failf "%s: %s" label
        (String.concat "; " (Hcv_check.Legal.to_strings vs))
  in
  List.iter
    (fun (mlabel, machine) ->
      match Pipeline.run ~machine ~name:mlabel ~loops () with
      | Error d -> Alcotest.failf "%s: pipeline: %a" mlabel Hcv_obs.Diag.pp d
      | Ok r ->
        let config = r.Pipeline.hetero.Select.config in
        List.iter
          (fun (lr : Pipeline.loop_result) ->
            let name = lr.Pipeline.profile.Profile.loop.Loop.name in
            ok_or_fail
              (Printf.sprintf "%s/%s hetero" mlabel name)
              (Hcv_check.Legal.verify lr.Pipeline.schedule);
            ok_or_fail
              (Printf.sprintf "%s/%s clocking" mlabel name)
              (Hcv_check.Legal.verify_clocking ~config
                 lr.Pipeline.schedule.Schedule.clocking);
            (* The homogeneous reference schedule behind the profile
               (its clocking bypasses the grid by design, so only the
               schedule itself is checked). *)
            ok_or_fail
              (Printf.sprintf "%s/%s reference" mlabel name)
              (Hcv_check.Legal.verify lr.Pipeline.profile.Profile.sched))
          r.Pipeline.loop_results;
        (* Ablation variants of the heterogeneous scheduler. *)
        List.iter
          (fun (preplace, score_mode, alabel) ->
            List.iter
              (fun (lp : Profile.loop_profile) ->
                match
                  Hsched.schedule ~ctx:r.Pipeline.ctx ~config
                    ~loop:lp.Profile.loop ~preplace ~score_mode ()
                with
                | Error _ -> () (* estimate fallback, as in the bench *)
                | Ok (sched, _) ->
                  ok_or_fail
                    (Printf.sprintf "%s/%s %s" mlabel
                       lp.Profile.loop.Loop.name alabel)
                    (Hcv_check.Legal.verify sched))
              r.Pipeline.profile.Profile.loops)
          [
            (false, Hsched.Ed2, "no-preplace");
            (true, Hsched.Schedulability, "sched-score");
            (false, Hsched.Schedulability, "no-preplace/sched-score");
          ])
    [
      ("unrestricted", machine);
      ("fig7-grid", Machine.with_grid machine (Presets.grid_of_steps (Some 8)));
    ]

let test_paper_byte_identity () =
  (* The capability-aware layers must leave the paper machine
     untouched: a paper machine arriving from a description file (the
     new input path) is structurally identical to the compiled-in
     preset, takes the same cache keys, and yields byte-identical sweep
     outcomes to the default-machine path. *)
  let module E = Hcv_explore in
  let m' =
    match E.Machdesc.of_string (E.Machdesc.to_string machine) with
    | Ok m -> m
    | Error e -> Alcotest.failf "paper machine does not round-trip: %s" e
  in
  Alcotest.(check bool) "round-trip is structurally identical" true
    (m' = machine);
  Alcotest.(check string) "same machine key"
    (E.Codec.machine_key machine)
    (E.Codec.machine_key m');
  let loops_of (_ : Sweep.cell) = parse () in
  let default_cell = Sweep.cell "integration" in
  let desc_cell =
    Sweep.cell ~machine:(Sweep.Desc (E.Machdesc.to_string machine))
      "integration"
  in
  Alcotest.(check string) "description path keys like the default path"
    (Sweep.cell_key default_cell)
    (Sweep.cell_key desc_cell);
  Alcotest.(check string) "byte-identical outcome"
    (Sweep.outcome_to_string (Sweep.run_cell ~loops_of default_cell))
    (Sweep.outcome_to_string (Sweep.run_cell ~loops_of desc_cell))

let suite =
  [
    Alcotest.test_case "full flow" `Quick test_full_flow;
    Alcotest.test_case "paper-machine byte identity" `Quick
      test_paper_byte_identity;
    Alcotest.test_case "oracle over fig7/ablation pipelines" `Quick
      test_oracle_over_pipelines;
    Alcotest.test_case "energy model consistency" `Quick
      test_energy_model_consistency;
    Alcotest.test_case "DSL roundtrip through the scheduler" `Quick
      test_dsl_roundtrip_through_scheduler;
    Alcotest.test_case "acyclic vs pipelined" `Quick test_acyclic_vs_pipelined;
  ]
