(* The observability layer: structured diagnostics, spans/counters, the
   pass combinator's provenance stamping, the zero-cost null sink and
   the determinism of pipeline traces. *)

open Hcv_obs
open Hcv_core
module E = Hcv_explore

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* ----- Diag -------------------------------------------------------- *)

let test_diag_render () =
  let d =
    Diag.v ~code:"unschedulable" ~context:[ ("loop", "fft"); ("mit", "3/2") ]
      "no IT under budget"
  in
  Alcotest.(check string)
    "stageless render" "unschedulable: no IT under budget (loop=fft, mit=3/2)"
    (Diag.to_string d);
  let d = Diag.with_stage "schedule" d in
  Alcotest.(check string)
    "staged render"
    "schedule/unschedulable: no IT under budget (loop=fft, mit=3/2)"
    (Diag.to_string d);
  (* The innermost stage wins: a later (outer) stamp is a no-op. *)
  let d = Diag.with_stage "evaluate" d in
  Alcotest.(check (option string)) "innermost stage wins" (Some "schedule")
    (Diag.stage d);
  Alcotest.(check (list (pair string string)))
    "machine-readable fields"
    [
      ("stage", "schedule");
      ("code", "unschedulable");
      ("msg", "no IT under budget");
      ("loop", "fft");
      ("mit", "3/2");
    ]
    (Diag.fields d)

(* ----- spans and counters ------------------------------------------ *)

let test_span_tree () =
  let sp = Trace.root "top" in
  Trace.span sp "left" (fun l ->
      Trace.incr l "n";
      Trace.add l "n" 2;
      Trace.span l "leaf" (fun leaf -> Trace.incr leaf "n"));
  Trace.span sp "right" (fun r -> Trace.add r "m" 5);
  let node = Option.get (Trace.export sp) in
  Alcotest.(check (list string))
    "children attach in completion order" [ "left"; "right" ]
    (List.map (fun (n : Trace.node) -> n.Trace.name) node.Trace.children);
  Alcotest.(check int) "counter sums over the tree" 4
    (Trace.counter_total node "n");
  Alcotest.(check int) "find_all finds nested spans" 1
    (List.length (Trace.find_all node "leaf"))

(* ----- pass provenance --------------------------------------------- *)

let test_pass_stamps_stage () =
  let open Hcv_pass in
  let p =
    Pass.v ~name:"first" (fun sp x ->
        Trace.incr sp "seen";
        Ok (x + 1))
    |> fun a ->
    Pass.( >>> ) a
      (Pass.v ~name:"second" (fun _ _ ->
           Error (Diag.v ~code:"boom" "stage-local failure")))
  in
  Alcotest.(check (list string)) "names in order" [ "first"; "second" ]
    (Pass.names p);
  let sp = Trace.root "run" in
  (match Pass.run ~obs:sp p 1 with
  | Ok _ -> Alcotest.fail "expected the second stage to fail"
  | Error d ->
    Alcotest.(check (option string))
      "failing stage stamped" (Some "second") (Diag.stage d));
  let node = Option.get (Trace.export sp) in
  Alcotest.(check bool) "one span per executed stage" true
    (Trace.find_all node "stage:first" <> []
    && Trace.find_all node "stage:second" <> [])

(* ----- the null sink is free --------------------------------------- *)

let test_null_sink_zero_alloc () =
  (* Counter traffic against the null span — and fault-point queries
     with no plan armed — must not allocate at all. *)
  assert (not (Hcv_resilience.Inject.armed ()));
  let fired = ref false in
  let before = Gc.minor_words () in
  for _ = 1 to 10_000 do
    Trace.incr Trace.null "pseudo.evals";
    Trace.add Trace.null "partition.refine_moves" 3;
    Trace.vol Trace.null "worker.busy" 1.0;
    if Hcv_resilience.Inject.fire Hcv_resilience.Inject.Task_raise then
      fired := true
  done;
  let per_op = (Gc.minor_words () -. before) /. 40_000.0 in
  Alcotest.(check bool) "disarmed fault plane never fires" false !fired;
  Alcotest.(check (float 0.0))
    "null counter ops and disarmed fault points allocate nothing" 0.0 per_op

let test_null_sink_free_on_estimate () =
  (* Pseudo.estimate with the (default) null sink allocates exactly what
     it allocates without any observation argument: the instrumentation
     disappears when off. *)
  let loop = Builders.dotprod ~trip:50 () in
  let machine = Hcv_machine.Presets.machine_4c ~buses:1 in
  let config = Hcv_machine.Presets.reference_config machine in
  let clocking =
    Result.get_ok (Hcv_sched.Clocking.of_config ~config ~it:(Hcv_support.Q.of_int 4))
  in
  let assignment =
    Hcv_sched.Partition.initial_even ~n_clusters:4 loop.Hcv_ir.Loop.ddg
  in
  let words f =
    let b = Gc.minor_words () in
    ignore (f ());
    Gc.minor_words () -. b
  in
  (* The option is boxed outside the measured region, so the comparison
     sees only what the estimator itself allocates. *)
  let call obs () =
    Hcv_sched.Pseudo.estimate ?obs ~machine ~clocking ~loop ~assignment ()
  in
  let default_obs = call None in
  let explicit_null = call (Some Trace.null) in
  (* Warm both paths, then compare steady-state allocation. *)
  ignore (default_obs ());
  ignore (explicit_null ());
  Alcotest.(check (float 0.0))
    "null sink adds zero words to the estimate hot path"
    (words default_obs) (words explicit_null)

(* ----- trace serialization ----------------------------------------- *)

let test_tracex_roundtrip () =
  let sp = Trace.root ~attrs:[ ("bench", "tiny") ] "cell:tiny" in
  Trace.span sp "stage:profile" (fun s -> Trace.add s "profile.loops" 2);
  Trace.incr sp "hsched.attempts";
  Trace.vol sp "cache.hits" 1.0;
  let node = Option.get (Trace.export sp) in
  let det = E.Tracex.json_of_node ~wall:false node in
  (match E.Tracex.node_of_json det with
  | None -> Alcotest.fail "deterministic view does not decode"
  | Some node' ->
    Alcotest.(check string) "name survives" node.Trace.name node'.Trace.name;
    Alcotest.(check bool) "volatile stripped from deterministic view" true
      (node'.Trace.volatile = [] && node'.Trace.wall_ns = 0.0);
    (* Round-tripping the deterministic view is the identity. *)
    Alcotest.(check string) "idempotent"
      (E.Jsonx.to_string det)
      (E.Jsonx.to_string (E.Tracex.json_of_node ~wall:false node')));
  (* JSONL: pre-order with explicit depths; timed view appends wall_us
     as a late field so it can be stripped mechanically. *)
  let lines = E.Tracex.jsonl ~wall:false node in
  Alcotest.(check int) "one line per span" 2 (List.length lines);
  Alcotest.(check bool) "depth present" true
    (String.length (List.hd lines) > 0
    && String.sub (List.hd lines) 0 10 = {|{"depth":0|});
  List.iter
    (fun l ->
      Alcotest.(check bool) "deterministic lines carry no wall time" false
        (contains ~sub:"wall_us" l))
    lines

(* ----- pipeline trace: per-stage spans, --jobs and cache invariance - *)

let loops_of (c : Sweep.cell) =
  match c.Sweep.bench with
  | "tiny-dot" -> [ Builders.dotprod ~trip:50 () ]
  | "tiny-mix" ->
    [ Builders.recurrence_loop ~trip:50 (); Builders.wide_loop ~trip:50 () ]
  | b -> Alcotest.failf "unexpected bench %s" b

let cells = [ Sweep.cell "tiny-dot"; Sweep.cell "tiny-mix" ]

let sweep_trace ?cache jobs =
  let engine = E.Engine.create ~jobs ?cache () in
  Fun.protect
    ~finally:(fun () -> E.Engine.shutdown engine)
    (fun () ->
      let sp = Trace.root "fig7" in
      let (_ : Sweep.outcome list) =
        Sweep.run engine ~label:"test" ~obs:sp ~loops_of cells
      in
      Option.get (Trace.export sp))

let det_lines node = E.Tracex.jsonl ~wall:false node

let test_trace_per_stage_spans () =
  let node = sweep_trace 1 in
  List.iter
    (fun stage ->
      Alcotest.(check int)
        (Printf.sprintf "one stage:%s span per cell" stage)
        (List.length cells)
        (List.length (Trace.find_all node ("stage:" ^ stage))))
    Pipeline.stage_names;
  (* The scheduler's counters made it into the tree. *)
  Alcotest.(check bool) "hsched attempts counted" true
    (Trace.counter_total node "hsched.attempts" > 0);
  Alcotest.(check bool) "pseudo evals counted" true
    (Trace.counter_total node "pseudo.evals" > 0)

let test_trace_jobs_invariant () =
  let serial = det_lines (sweep_trace 1) in
  let parallel = det_lines (sweep_trace 4) in
  Alcotest.(check (list string)) "jobs=4 trace equals jobs=1" serial parallel

let test_trace_cache_invariant () =
  let cache = E.Cache.in_memory () in
  let cold = det_lines (sweep_trace ~cache 1) in
  let warm = det_lines (sweep_trace ~cache 1) in
  let s = E.Cache.stats cache in
  Alcotest.(check int) "second run all hits" (List.length cells)
    s.E.Cache.hits;
  Alcotest.(check (list string)) "warm trace equals cold" cold warm

(* ----- metrics table ----------------------------------------------- *)

let test_metrics_table () =
  let node = sweep_trace 1 in
  let rendered =
    Format.asprintf "%a" Hcv_obs.Metrics.print node
  in
  List.iter
    (fun stage ->
      Alcotest.(check bool)
        (Printf.sprintf "table mentions stage:%s" stage)
        true
        (contains ~sub:("stage:" ^ stage) rendered))
    Pipeline.stage_names

let suite =
  [
    Alcotest.test_case "diag rendering and provenance" `Quick test_diag_render;
    Alcotest.test_case "span tree and counters" `Quick test_span_tree;
    Alcotest.test_case "pass stamps the failing stage" `Quick
      test_pass_stamps_stage;
    Alcotest.test_case "null sink allocates nothing" `Quick
      test_null_sink_zero_alloc;
    Alcotest.test_case "null sink free on Pseudo.estimate" `Quick
      test_null_sink_free_on_estimate;
    Alcotest.test_case "trace serialization round-trips" `Quick
      test_tracex_roundtrip;
    Alcotest.test_case "a span per paper stage" `Slow
      test_trace_per_stage_spans;
    Alcotest.test_case "trace invariant under --jobs" `Slow
      test_trace_jobs_invariant;
    Alcotest.test_case "trace invariant under cache state" `Slow
      test_trace_cache_invariant;
    Alcotest.test_case "metrics table renders every stage" `Slow
      test_metrics_table;
  ]
