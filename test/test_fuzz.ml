(* Seeded fuzz runs as part of the unit-test suite: 200 differential
   cases with a fixed seed (so CI is deterministic), plus three shrunk
   corruption repros pinned as goldens under test/golden/. *)

open Hcv_ir
open Hcv_machine
open Hcv_sched
open Hcv_check

let fixed_seed = 20260807

let test_fuzz_200 () =
  let r = Diff.run ~shrink:false ~seed:fixed_seed ~cases:200 () in
  List.iter
    (fun (f : Diff.failure) ->
      Printf.printf "FAIL seed %d [%s]: %s\n%s\n" f.Diff.seed
        (Diff.category_to_string f.Diff.category)
        f.Diff.detail f.Diff.repro)
    r.Diff.failures;
  Alcotest.(check int) "zero failures" 0 (List.length r.Diff.failures);
  (* The generators must keep producing mostly-schedulable cases:
     unschedulable cases exercise nothing. *)
  Alcotest.(check bool)
    (Printf.sprintf "scheduled %d >= 180 of 200" r.Diff.scheduled)
    true
    (r.Diff.scheduled >= 180)

(* ----- pinned shrunk repros ---------------------------------------- *)

let ctx_for machine =
  let n = Machine.n_clusters machine in
  let act =
    Hcv_energy.Activity.make ~exec_time_ns:1e6
      ~per_cluster_ins_energy:(Array.make n 100.)
      ~n_comms:100. ~n_mem:100.
  in
  Hcv_energy.Model.ctx ~params:Hcv_energy.Params.default
    ~units:
      (Hcv_energy.Units.of_reference ~params:Hcv_energy.Params.default
         ~n_clusters:n act)
    ()

let schedule_of (c : Gen.case) =
  match
    Hcv_core.Hsched.schedule ~ctx:(ctx_for c.Gen.machine) ~config:c.Gen.config
      ~loop:c.Gen.loop ()
  with
  | Ok (sched, _) -> Some sched
  | Error _ | (exception _) -> None

let flags_rule rule = function
  | Ok () -> false
  | Error vs ->
    List.exists (fun (v : Legal.violation) -> v.Legal.rule = rule) vs

(* [keep] for the shrinker: schedule the case, apply the corruption,
   and require the oracle to still flag [rule]. *)
let keep_corrupt corrupt rule c =
  match schedule_of c with
  | None -> false
  | Some sched -> flags_rule rule (Legal.verify (corrupt sched))

(* The three pinned corruption scenarios. *)
let corruptions =
  [
    (* Every instruction piled onto cluster 0, cycle 0. *)
    ( "fu_overcommit",
      "fu-capacity",
      fun (s : Schedule.t) ->
        {
          s with
          Schedule.placements =
            Array.map
              (fun _ -> { Schedule.cluster = 0; cycle = 0 })
              s.Schedule.placements;
          transfers = [];
        } );
    (* The destination of the first dependence edge pulled one cycle
       earlier. *)
    ( "dependence_shift",
      "dependence",
      fun (s : Schedule.t) ->
        match Ddg.edges s.Schedule.loop.Loop.ddg with
        | [] -> s
        | e :: _ ->
          let p = Array.copy s.Schedule.placements in
          p.(e.Edge.dst) <-
            {
              (p.(e.Edge.dst)) with
              Schedule.cycle = p.(e.Edge.dst).Schedule.cycle - 1;
            };
          { s with Schedule.placements = p } );
    (* Every transfer departing at bus cycle 0 — before its value can
       have crossed the synchronisation queue. *)
    ( "transfer_too_early",
      "transfer",
      fun (s : Schedule.t) ->
        {
          s with
          Schedule.transfers =
            List.map
              (fun tr -> { tr with Schedule.bus_cycle = 0 })
              s.Schedule.transfers;
        } );
  ]

(* First seed at or above a fixed base whose scheduled corruption trips
   the rule — deterministic, and robust to generator drift. *)
let find_case corrupt rule =
  let rec go seed =
    if seed > 6000 then Alcotest.fail "no seed reproduces the corruption"
    else
      let c = Gen.case ~seed in
      if keep_corrupt corrupt rule c then c else go (seed + 1)
  in
  go 5000

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Under `dune runtest` the cwd is _build/default/test (the goldens are
   declared as deps); under `dune exec` from the repo root they live
   under test/golden. *)
let golden_path name =
  let rel = Printf.sprintf "golden/check_%s.txt" name in
  if Sys.file_exists rel then rel else Filename.concat "test" rel

let test_pinned_repro (name, rule, corrupt) () =
  let c = find_case corrupt rule in
  let shrunk = Gen.shrink ~keep:(keep_corrupt corrupt rule) c in
  (* Still reproduces after shrinking... *)
  Alcotest.(check bool) "shrunk case still reproduces" true
    (keep_corrupt corrupt rule shrunk);
  (* ...and matches the pinned golden byte for byte. *)
  let actual = Gen.print_case shrunk in
  let golden = golden_path name in
  (* HCV_BLESS=1 dune exec test/main.exe (from the repo root) rewrites
     the goldens after a deliberate generator change. *)
  if Sys.getenv_opt "HCV_BLESS" <> None then begin
    let oc = open_out_bin golden in
    output_string oc actual;
    close_out oc
  end
  else if not (Sys.file_exists golden) then
    Alcotest.failf "missing golden %s; expected contents:\n%s" golden actual
  else
    Alcotest.(check string)
      (Printf.sprintf "matches %s" golden)
      (read_file golden) actual

let suite =
  Alcotest.test_case "200 seeded differential cases" `Quick test_fuzz_200
  :: List.map
       (fun ((name, _, _) as sc) ->
         Alcotest.test_case
           (Printf.sprintf "pinned repro: %s" name)
           `Quick (test_pinned_repro sc))
       corruptions
