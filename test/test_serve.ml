(* The serving plane: framing, wire protocol, content addressing,
   batched dispatch and the socket loop. *)

open Hcv_core
module E = Hcv_explore
module R = Hcv_resilience
module S = Hcv_serve

(* The overload personas keep writing into sockets the server reaps
   mid-test — exactly the point of the test.  Without this the default
   SIGPIPE disposition kills the runner instead of surfacing EPIPE. *)
let () = Sys.set_signal Sys.sigpipe Sys.Signal_ignore

(* ----- frame: incremental line framing ----------------------------- *)

let pop_line f =
  match S.Frame.pop f with
  | Some (S.Frame.Line l) -> l
  | Some (S.Frame.Oversized n) -> Alcotest.failf "unexpected oversized %d" n
  | None -> Alcotest.fail "expected a complete line"

let test_frame_torn () =
  let f = S.Frame.create () in
  (* A line delivered one byte at a time must come out whole. *)
  String.iter
    (fun c -> S.Frame.feed f (String.make 1 c))
    "hello\nwor";
  Alcotest.(check string) "first line" "hello" (pop_line f);
  Alcotest.(check bool) "second torn" true (S.Frame.pop f = None);
  Alcotest.(check int) "torn bytes buffered" 3 (S.Frame.pending f);
  S.Frame.feed f "ld\r\n";
  Alcotest.(check string) "second line, CR stripped" "world" (pop_line f);
  (* Several lines in one read. *)
  S.Frame.feed f "a\nb\n\nc";
  Alcotest.(check string) "a" "a" (pop_line f);
  Alcotest.(check string) "b" "b" (pop_line f);
  Alcotest.(check string) "empty line" "" (pop_line f);
  Alcotest.(check bool) "c torn" true (S.Frame.pop f = None)

let test_frame_oversized () =
  let f = S.Frame.create ~max_line:8 () in
  S.Frame.feed f (String.make 20 'x');
  Alcotest.(check bool) "no newline yet" true (S.Frame.pop f = None);
  S.Frame.feed f "yyyy\nok\n";
  (match S.Frame.pop f with
  | Some (S.Frame.Oversized n) ->
    Alcotest.(check int) "total length counted" 24 n
  | _ -> Alcotest.fail "expected Oversized");
  (* The frame recovers: the next line is intact. *)
  Alcotest.(check string) "next line survives" "ok" (pop_line f)

let test_frame_drop_partial () =
  let f = S.Frame.create () in
  (* Byte-at-a-time delivery across both line boundaries, popping as
     lines complete: framing state survives any tear position. *)
  let got = ref [] in
  String.iter
    (fun c ->
      S.Frame.feed f (String.make 1 c);
      match S.Frame.pop f with
      | Some (S.Frame.Line l) -> got := l :: !got
      | Some (S.Frame.Oversized n) -> Alcotest.failf "oversized %d" n
      | None -> ())
    "one\ntwo\nthr";
  Alcotest.(check (list string)) "lines out of 1-byte feeds"
    [ "one"; "two" ] (List.rev !got);
  (* Mid-frame disconnect: the torn tail is dropped, and the frame is
     clean for reuse. *)
  Alcotest.(check int) "torn bytes reported" 3 (S.Frame.drop_partial f);
  Alcotest.(check int) "nothing pending" 0 (S.Frame.pending f);
  S.Frame.feed f "ok\n";
  Alcotest.(check string) "fresh line after the drop" "ok" (pop_line f);
  (* Dropping also abandons an oversized line in progress. *)
  let g = S.Frame.create ~max_line:4 () in
  S.Frame.feed g (String.make 10 'x');
  Alcotest.(check bool) "discarding, nothing complete" true
    (S.Frame.pop g = None);
  ignore (S.Frame.drop_partial g);
  S.Frame.feed g "ok\n";
  Alcotest.(check string) "recovered from discarding state" "ok" (pop_line g)

(* ----- proto: request parsing and response rendering --------------- *)

let parse_ok line =
  match S.Proto.parse line with
  | Ok e -> e
  | Error (_, d) ->
    Alcotest.failf "unexpected parse error: %s" (Hcv_obs.Diag.to_string d)

let parse_err line =
  match S.Proto.parse line with
  | Ok _ -> Alcotest.failf "accepted malformed request %S" line
  | Error (id, d) -> (id, Hcv_obs.Diag.code d)

let test_proto_parse () =
  let e = parse_ok {|{"id":"a","op":"ping"}|} in
  Alcotest.(check string) "id" "a" e.S.Proto.id;
  Alcotest.(check string) "op" "ping" (S.Proto.op_name e.S.Proto.req);
  let e =
    parse_ok
      {|{"id":"b","op":"explore","bench":"applu","buses":2,"grid_steps":8,"budget":100,"degrade":true}|}
  in
  (match e.S.Proto.req with
  | S.Proto.Run w ->
    Alcotest.(check string) "bench name" "applu" w.S.Proto.name;
    Alcotest.(check int) "buses" 2 w.S.Proto.spec.S.Proto.buses;
    Alcotest.(check (option int)) "grid" (Some 8)
      w.S.Proto.spec.S.Proto.grid_steps;
    Alcotest.(check (option int)) "budget" (Some 100) w.S.Proto.budget;
    Alcotest.(check bool) "degrade" true w.S.Proto.degrade
  | _ -> Alcotest.fail "expected Run");
  (* Shape errors: code + preserved id where extractable. *)
  Alcotest.(check (pair (option string) string))
    "not json" (None, "bad-json")
    (parse_err "this is not json");
  Alcotest.(check (pair (option string) string))
    "torn object" (None, "bad-json")
    (parse_err {|{"id":|});
  Alcotest.(check (pair (option string) string))
    "missing id" (None, "bad-request")
    (parse_err {|{"op":"ping"}|});
  Alcotest.(check (pair (option string) string))
    "unknown op"
    (Some "x", "unknown-op")
    (parse_err {|{"id":"x","op":"frobnicate"}|});
  Alcotest.(check (pair (option string) string))
    "explore without bench"
    (Some "x", "bad-request")
    (parse_err {|{"id":"x","op":"explore"}|});
  Alcotest.(check (pair (option string) string))
    "schedule with both payloads"
    (Some "x", "bad-request")
    (parse_err {|{"id":"x","op":"schedule","dsl":"","graph":{}}|});
  Alcotest.(check (pair (option string) string))
    "bad budget"
    (Some "x", "bad-request")
    (parse_err {|{"id":"x","op":"explore","bench":"applu","budget":0}|})

let test_proto_machine () =
  (* Absent field: the paper machine. *)
  let machine_of line =
    match (parse_ok line).S.Proto.req with
    | S.Proto.Run w -> w.S.Proto.spec.S.Proto.machine
    | _ -> Alcotest.fail "expected Run"
  in
  (match machine_of {|{"id":"a","op":"explore","bench":"applu"}|} with
  | S.Proto.Default -> ()
  | _ -> Alcotest.fail "absent machine must be Default");
  (* A family by name. *)
  (match
     machine_of {|{"id":"a","op":"explore","bench":"applu","machine":"fp-heavy"}|}
   with
  | S.Proto.Family f -> Alcotest.(check string) "family" "fp-heavy" f
  | _ -> Alcotest.fail "expected Family");
  (* An inline description, canonicalised: the same machine with keys
     in a different order and defaults elided parses to the same
     [Desc]. *)
  let desc json =
    match
      machine_of
        (Printf.sprintf
           {|{"id":"a","op":"explore","bench":"applu","machine":%s}|} json)
    with
    | S.Proto.Desc d -> d
    | _ -> Alcotest.fail "expected Desc"
  in
  Alcotest.(check string) "descriptions canonicalised"
    (desc {|{"name":"m","clusters":[{"int":1,"fp":0,"mem":1}]}|})
    (desc
       {|{"clusters":[{"mem":1,"fp":0,"int":1,"regs":16}],"name":"m","icn":{"buses":1,"latency":1}}|});
  (* Unknown family names and malformed descriptions are structured
     errors with the id preserved. *)
  Alcotest.(check (pair (option string) string))
    "unknown family"
    (Some "x", "bad-request")
    (parse_err {|{"id":"x","op":"explore","bench":"applu","machine":"huge"}|});
  Alcotest.(check (pair (option string) string))
    "malformed description"
    (Some "x", "bad-request")
    (parse_err {|{"id":"x","op":"explore","bench":"applu","machine":{}}|});
  Alcotest.(check (pair (option string) string))
    "wrong type"
    (Some "x", "bad-request")
    (parse_err {|{"id":"x","op":"explore","bench":"applu","machine":7}|})

let test_proto_responses () =
  let ok = S.Proto.ok_line ~id:"a" ~op:"ping" () in
  (match S.Proto.parse_response ok with
  | Ok r ->
    Alcotest.(check (option string)) "rid" (Some "a") r.S.Proto.rid;
    Alcotest.(check bool) "ok" true r.S.Proto.ok;
    Alcotest.(check (option string)) "op" (Some "ping") r.S.Proto.op
  | Error m -> Alcotest.failf "response did not parse: %s" m);
  let d =
    Hcv_obs.Diag.v ~stage:"serve" ~code:"bad-dsl"
      ~context:[ ("line", "3") ]
      "unexpected token"
  in
  (match S.Proto.parse_response (S.Proto.error_line ~id:(Some "z") d) with
  | Ok r ->
    Alcotest.(check bool) "not ok" false r.S.Proto.ok;
    (match r.S.Proto.error with
    | Some d' ->
      Alcotest.(check string) "code survives" "bad-dsl" (Hcv_obs.Diag.code d')
    | None -> Alcotest.fail "error object missing")
  | Error m -> Alcotest.failf "error line did not parse: %s" m);
  (match S.Proto.parse_response (S.Proto.error_line ~id:None d) with
  | Ok r -> Alcotest.(check (option string)) "null id" None r.S.Proto.rid
  | Error m -> Alcotest.failf "null-id line did not parse: %s" m)

(* ----- registry: admission and content keys ------------------------ *)

let work_of line =
  match (parse_ok line).S.Proto.req with
  | S.Proto.Run w -> w
  | _ -> Alcotest.fail "expected a run request"

let admit_ok line =
  match S.Registry.admit (work_of line) with
  | Ok t -> t
  | Error d -> Alcotest.failf "admit failed: %s" (Hcv_obs.Diag.to_string d)

let admit_err line =
  match S.Registry.admit (work_of line) with
  | Ok _ -> Alcotest.failf "admitted invalid work %S" line
  | Error d -> Hcv_obs.Diag.code d

let test_registry_keys () =
  (* An unbudgeted explore request shares the exploration sweeps'
     cache: its key IS the sweep cell key. *)
  let t =
    admit_ok {|{"id":"a","op":"explore","bench":"applu","loops":2,"seed":7}|}
  in
  let cell = Sweep.cell ~buses:1 ~n_loops:2 ~seed:7 "applu" in
  Alcotest.(check string)
    "unbudgeted bench key = sweep cell key" (Sweep.cell_key cell)
    (S.Registry.key t);
  (* A budget changes the result, so it must change the key. *)
  let tb =
    admit_ok
      {|{"id":"a","op":"explore","bench":"applu","loops":2,"seed":7,"budget":5}|}
  in
  Alcotest.(check bool) "budget forks the key" true
    (S.Registry.key tb <> S.Registry.key t);
  (* Payload keys are content keys: formatting must not matter. *)
  let dsl_a = "loop l trip 8\n node a add.i\n node b mul.i\n edge a b\nend\n" in
  let dsl_b =
    "loop l  trip 8\n\n  node a add.i\n  node b mul.i\n  edge a b\nend\n"
  in
  let key_of dsl =
    S.Registry.key
      (admit_ok
         (E.Jsonx.to_string
            (E.Jsonx.Obj
               [
                 ("id", E.Jsonx.Str "p");
                 ("op", E.Jsonx.Str "schedule");
                 ("dsl", E.Jsonx.Str dsl);
               ])))
  in
  Alcotest.(check string) "formatting-independent payload key" (key_of dsl_a)
    (key_of dsl_b);
  (* And a payload key never collides with a bench key's space. *)
  Alcotest.(check bool) "payload key differs" true
    (key_of dsl_a <> S.Registry.key t)

(* The frontier op: parsing, spec extraction, and warm-cache key
   sharing with the CLI's frontier sweep cells. *)
let test_frontier_op () =
  let line =
    {|{"id":"f","op":"frontier","bench":"applu","loops":2,"seed":7,"objectives":["time","energy"],"caps":[["energy",2.5]]}|}
  in
  let e = parse_ok line in
  Alcotest.(check string) "op name" "frontier" (S.Proto.op_name e.S.Proto.req);
  let w = work_of line in
  let spec =
    Frontier.spec
      ~objectives:[ Frontier.Time; Frontier.Energy ]
      ~caps:[ { Frontier.cap = Frontier.Energy; bound = 2.5 } ]
      ()
  in
  (match w.S.Proto.frontier with
  | None -> Alcotest.fail "frontier request carries no spec"
  | Some s ->
    Alcotest.(check string) "spec parsed" (Frontier.spec_key spec)
      (Frontier.spec_key s));
  (* An unbudgeted frontier request keys exactly as the CLI's frontier
     sweep cell: the daemon shares the warm cache. *)
  let t = admit_ok line in
  let cell =
    Sweep.cell ~buses:1 ~n_loops:2 ~seed:7 ~frontier:spec "applu"
  in
  Alcotest.(check string) "key = frontier sweep cell key"
    (Sweep.cell_key cell) (S.Registry.key t);
  (* Defaulted spec: plain-looking request, but still a frontier cell,
     so it must never collide with the plain explore cell. *)
  let t_def =
    admit_ok {|{"id":"f","op":"frontier","bench":"applu","loops":2,"seed":7}|}
  in
  let t_explore =
    admit_ok {|{"id":"f","op":"explore","bench":"applu","loops":2,"seed":7}|}
  in
  Alcotest.(check bool) "frontier cell forks the key" true
    (S.Registry.key t_def <> S.Registry.key t_explore);
  (* Malformed specs are structured parse errors, id preserved. *)
  Alcotest.(check (pair (option string) string))
    "frontier without bench"
    (Some "x", "bad-request")
    (parse_err {|{"id":"x","op":"frontier"}|});
  Alcotest.(check (pair (option string) string))
    "unknown objective"
    (Some "x", "bad-request")
    (parse_err
       {|{"id":"x","op":"frontier","bench":"applu","objectives":["frob"]}|});
  Alcotest.(check (pair (option string) string))
    "bad cap bound"
    (Some "x", "bad-request")
    (parse_err
       {|{"id":"x","op":"frontier","bench":"applu","caps":[["energy",-1]]}|})

let test_registry_rejections () =
  Alcotest.(check string) "unknown benchmark" "unknown-benchmark"
    (admit_err {|{"id":"a","op":"explore","bench":"nosuchbench"}|});
  Alcotest.(check string) "bad dsl" "bad-dsl"
    (admit_err
       {|{"id":"a","op":"schedule","dsl":"loop x trip 4\n node a frob\nend\n"}|});
  Alcotest.(check string) "empty dsl" "bad-request"
    (admit_err {|{"id":"a","op":"schedule","dsl":""}|});
  Alcotest.(check string) "graph with unknown op" "bad-graph"
    (admit_err
       {|{"id":"a","op":"schedule","graph":{"name":"g","trip":8,"nodes":[{"n":"a","op":"frob"}],"edges":[]}}|})

(* ----- deadlines: wire field compiled onto the budget machinery ----- *)

let test_deadline_compile_registry () =
  (* The wire field parses, rejects negatives, and compiles onto the
     budget with a deterministic points-per-ms constant. *)
  let w =
    work_of {|{"id":"a","op":"explore","bench":"applu","deadline_ms":5}|}
  in
  Alcotest.(check (option int)) "deadline parsed" (Some 5) w.S.Proto.deadline_ms;
  Alcotest.(check (pair (option string) string))
    "negative deadline rejected"
    (Some "x", "bad-request")
    (parse_err {|{"id":"x","op":"explore","bench":"applu","deadline_ms":-1}|});
  Alcotest.(check (option int)) "deadline-only effective budget"
    (Some (Sweep.budget_of_deadline 5))
    (S.Registry.effective_budget w);
  (* Deadline 0 is the fast-fail probe: the floor of one point, never
     zero. *)
  Alcotest.(check int) "deadline 0 floors at one point" 1
    (Sweep.budget_of_deadline 0);
  (* With both present the tighter bound wins. *)
  let both b d =
    S.Registry.effective_budget
      (work_of
         (Printf.sprintf
            {|{"id":"a","op":"explore","bench":"applu","budget":%d,"deadline_ms":%d}|}
            b d))
  in
  Alcotest.(check (option int)) "tight budget binds" (Some 3) (both 3 5);
  Alcotest.(check (option int)) "tight deadline binds"
    (Some (Sweep.budget_of_deadline 1))
    (both 1_000_000 1);
  (* A deadline forks the content key exactly as the equivalent budget
     would — the two spellings of the same work cap share a key. *)
  let key line = S.Registry.key (admit_ok line) in
  Alcotest.(check bool) "deadline forks the unbudgeted key" true
    (key {|{"id":"a","op":"explore","bench":"applu","deadline_ms":1}|}
    <> key {|{"id":"a","op":"explore","bench":"applu"}|});
  Alcotest.(check string) "deadline keys as its compiled budget"
    (key
       (Printf.sprintf
          {|{"id":"a","op":"explore","bench":"applu","budget":%d}|}
          (Sweep.budget_of_deadline 1)))
    (key {|{"id":"a","op":"explore","bench":"applu","deadline_ms":1}|})

(* ----- dispatch: batching, determinism, error isolation ------------ *)

let dsl_line ?(id = "d1") ?budget ?deadline_ms ?degrade () =
  E.Jsonx.to_string
    (E.Jsonx.Obj
       ([
          ("id", E.Jsonx.Str id);
          ("op", E.Jsonx.Str "schedule");
          ( "dsl",
            E.Jsonx.Str
              "loop tiny trip 8\n\
              \ node a ld.f\n\
              \ node b mul.f\n\
              \ node c add.f\n\
              \ edge a b\n\
              \ edge b c\n\
              \ edge c c dist 1\n\
               end\n" );
        ]
       @ (match budget with
         | None -> []
         | Some b -> [ ("budget", E.Jsonx.Num (float_of_int b)) ])
       @ (match deadline_ms with
         | None -> []
         | Some d -> [ ("deadline_ms", E.Jsonx.Num (float_of_int d)) ])
       @
       match degrade with
       | None -> []
       | Some d -> [ ("degrade", E.Jsonx.Bool d) ]))

let with_dispatch ?cache ~jobs f =
  let cache = Option.map (E.Cache.open_dir ?warn:None) cache in
  let engine = E.Engine.create ~jobs ?cache () in
  Fun.protect
    ~finally:(fun () -> E.Engine.shutdown engine)
    (fun () -> f (S.Dispatch.create engine))

let rec rm_tree path =
  match Sys.is_directory path with
  | true ->
    Array.iter (fun f -> rm_tree (Filename.concat path f)) (Sys.readdir path);
    (try Sys.rmdir path with Sys_error _ -> ())
  | false -> ( try Sys.remove path with Sys_error _ -> ())
  | exception Sys_error _ -> ()

let error_code_of line =
  match S.Proto.parse_response line with
  | Ok { S.Proto.ok = false; error = Some e; _ } -> Hcv_obs.Diag.code e
  | Ok _ -> Alcotest.failf "expected an error response, got %S" line
  | Error m -> Alcotest.failf "unparseable response: %s" m

let test_deadline_render () =
  with_dispatch ~jobs:1 (fun d ->
      (* An impossible deadline answers deadline-exceeded, not
         budget-exhausted: the client asked in time units and the error
         must speak them. *)
      let resp = S.Dispatch.handle_line d (dsl_line ~deadline_ms:0 ()) in
      Alcotest.(check string) "deadline-exceeded" "deadline-exceeded"
        (error_code_of resp);
      (match S.Proto.parse_response resp with
      | Ok { S.Proto.error = Some e; _ } ->
        Alcotest.(check (option string)) "context names the deadline"
          (Some "0")
          (List.assoc_opt "deadline_ms" e.Hcv_obs.Diag.context)
      | _ -> Alcotest.fail "error object missing");
      (* Binding rules: whichever bound is tighter names the error. *)
      Alcotest.(check string) "tight budget still budget-exhausted"
        "budget-exhausted"
        (error_code_of
           (S.Dispatch.handle_line d (dsl_line ~budget:1 ~deadline_ms:60000 ())));
      Alcotest.(check string) "tight deadline wins the rendering"
        "deadline-exceeded"
        (error_code_of
           (S.Dispatch.handle_line d
              (dsl_line ~budget:1000000 ~deadline_ms:0 ())));
      (* degrade:true turns the missed deadline into the estimate. *)
      match
        S.Proto.parse_response
          (S.Dispatch.handle_line d (dsl_line ~deadline_ms:0 ~degrade:true ()))
      with
      | Ok { S.Proto.ok = true; result = Some _; _ } -> ()
      | _ -> Alcotest.fail "degrade:true must answer the estimate");
  (* A server-side default deadline fills in only where the request
     carries none. *)
  let engine = E.Engine.create ~jobs:1 () in
  Fun.protect
    ~finally:(fun () -> E.Engine.shutdown engine)
    (fun () ->
      let d = S.Dispatch.create ~default_deadline_ms:0 engine in
      Alcotest.(check string) "default deadline applies" "deadline-exceeded"
        (error_code_of (S.Dispatch.handle_line d (dsl_line ())));
      match
        S.Proto.parse_response
          (S.Dispatch.handle_line d (dsl_line ~deadline_ms:60000 ()))
      with
      | Ok { S.Proto.ok = true; _ } -> ()
      | _ -> Alcotest.fail "explicit deadline must override the default")

let test_dispatch_deterministic () =
  let lines =
    [
      {|{"id":"p","op":"ping"}|};
      dsl_line ~id:"s1" ();
      "not json at all";
      dsl_line ~id:"s2" ();
      (* duplicate content, distinct id: must be computed once but
         answered twice, each under its own id *)
    ]
  in
  let dir = Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "hcvliw-test-serve-%d" (Unix.getpid ())) in
  rm_tree dir;
  Fun.protect
    ~finally:(fun () -> rm_tree dir)
    (fun () ->
      let answer ?cache ~jobs () =
        with_dispatch ?cache ~jobs (fun d ->
            List.map (S.Dispatch.handle_line d) lines)
      in
      let serial = answer ~jobs:1 () in
      let parallel_cold = answer ~cache:dir ~jobs:2 () in
      let warm = answer ~cache:dir ~jobs:2 () in
      Alcotest.(check (list string)) "jobs-independent" serial parallel_cold;
      Alcotest.(check (list string)) "cache-state-independent" serial warm;
      (* s1 and s2 share content: identical result objects, own ids. *)
      let result_of id =
        List.find_map
          (fun l ->
            match S.Proto.parse_response l with
            | Ok { S.Proto.rid = Some i; result; _ } when i = id -> result
            | _ -> None)
          serial
      in
      Alcotest.(check bool) "duplicate content same result" true
        (result_of "s1" = result_of "s2" && result_of "s1" <> None))

let test_dispatch_batch_dedup () =
  with_dispatch ~jobs:1 (fun d ->
      let envelopes =
        List.map parse_ok [ dsl_line ~id:"a" (); dsl_line ~id:"b" () ]
      in
      let root = Hcv_obs.Trace.root "test" in
      let lines = S.Dispatch.handle d ~obs:root envelopes in
      Alcotest.(check int) "two responses" 2 (List.length lines);
      match Hcv_obs.Trace.export root with
      | None -> Alcotest.fail "expected an exported trace"
      | Some node ->
        Alcotest.(check int) "identical requests computed once" 1
          (Hcv_obs.Trace.counter_total node "serve.unique_cells");
        Alcotest.(check int) "both answered" 2
          (Hcv_obs.Trace.counter_total node "serve.requests"))

let test_dispatch_survives_errors () =
  with_dispatch ~jobs:1 (fun d ->
      (* Malformed, semantically invalid and budget-exhausted requests
         each answer with a structured error — and the dispatcher keeps
         serving afterwards. *)
      let err line =
        match S.Proto.parse_response (S.Dispatch.handle_line d line) with
        | Ok { S.Proto.ok = false; error = Some e; _ } -> Hcv_obs.Diag.code e
        | Ok _ -> Alcotest.failf "expected an error response for %S" line
        | Error m -> Alcotest.failf "unparseable response: %s" m
      in
      Alcotest.(check string) "bad json" "bad-json" (err "{");
      Alcotest.(check string) "unknown benchmark" "unknown-benchmark"
        (err {|{"id":"x","op":"explore","bench":"nosuchbench"}|});
      Alcotest.(check string) "strict budget" "budget-exhausted"
        (err (dsl_line ~id:"x" ~budget:1 ()));
      (* degrade:true turns the same exhaustion into a degraded ok. *)
      (match
         S.Proto.parse_response
           (S.Dispatch.handle_line d (dsl_line ~id:"y" ~budget:1 ~degrade:true ()))
       with
      | Ok { S.Proto.ok = true; result = Some r; _ } ->
        let causes =
          match Option.bind (E.Jsonx.member "causes" r) E.Jsonx.list with
          | Some l -> List.filter_map E.Jsonx.str l
          | None -> []
        in
        Alcotest.(check bool) "causes name the exhaustion" true
          (List.mem "budget-exhausted" causes)
      | Ok _ -> Alcotest.fail "expected a degraded ok response"
      | Error m -> Alcotest.failf "unparseable response: %s" m);
      (* Still alive. *)
      match S.Proto.parse_response (S.Dispatch.handle_line d (dsl_line ())) with
      | Ok { S.Proto.ok = true; _ } -> ()
      | _ -> Alcotest.fail "dispatcher stopped serving after errors")

let test_stats_volatile () =
  with_dispatch ~jobs:1 (fun d ->
      let stats () =
        match
          S.Proto.parse_response
            (S.Dispatch.handle_line d {|{"id":"s","op":"stats"}|})
        with
        | Ok { S.Proto.ok = true; result = Some r; _ } -> r
        | _ -> Alcotest.fail "stats did not answer"
      in
      let volatile r =
        match E.Jsonx.member "volatile" r with
        | Some v -> v
        | None -> Alcotest.fail "stats carries no volatile object"
      in
      let num v name =
        match Option.bind (E.Jsonx.member name v) E.Jsonx.num with
        | Some n -> n
        | None -> Alcotest.failf "volatile field %s missing" name
      in
      let v0 = volatile (stats ()) in
      Alcotest.(check (float 0.0)) "no sheds yet" 0.0 (num v0 "shed");
      Alcotest.(check (float 0.0)) "no drains yet" 0.0 (num v0 "drained");
      Alcotest.(check (float 0.0)) "no deadline misses yet" 0.0
        (num v0 "deadline_exceeded");
      Alcotest.(check (float 0.0)) "no open circuits" 0.0
        (num v0 "breaker_open");
      Alcotest.(check bool) "uptime present" true (num v0 "uptime_s" >= 0.0);
      (* Tallies and registered gauges feed in live. *)
      S.Dispatch.set_gauges d (fun () -> [ ("queue_depth", 7.0) ]);
      S.Dispatch.note_shed d;
      S.Dispatch.note_drained d;
      ignore (S.Dispatch.handle_line d (dsl_line ~deadline_ms:0 ()));
      let v1 = volatile (stats ()) in
      Alcotest.(check (float 0.0)) "shed tally" 1.0 (num v1 "shed");
      Alcotest.(check (float 0.0)) "drained tally" 1.0 (num v1 "drained");
      Alcotest.(check (float 0.0)) "deadline tally" 1.0
        (num v1 "deadline_exceeded");
      Alcotest.(check (float 0.0)) "registered gauge" 7.0
        (num v1 "queue_depth"))

let test_circuit_breaker () =
  with_dispatch ~jobs:1 (fun d ->
      (* A persistent injected fault quarantines the cell's content
         key... *)
      let plan =
        R.Inject.plan ~seed:5
          [ R.Inject.spec ~max_fires:1 ~transient:false R.Inject.Task_raise ]
      in
      let first =
        R.Inject.with_plan plan (fun () ->
            S.Dispatch.handle_line d (dsl_line ~id:"f1" ()))
      in
      Alcotest.(check string) "quarantined" "injected-fault"
        (error_code_of first);
      Alcotest.(check int) "one open circuit" 1 (S.Dispatch.breaker_open d);
      (* ... and the breaker fast-fails the identical request even
         though the fault plan is long disarmed: a known-bad cell is
         never re-executed. *)
      Alcotest.(check string) "circuit open" "circuit-open"
        (error_code_of (S.Dispatch.handle_line d (dsl_line ~id:"f2" ())));
      (* Distinct content is untouched. *)
      match
        S.Proto.parse_response
          (S.Dispatch.handle_line d (dsl_line ~id:"f3" ~budget:100000 ()))
      with
      | Ok { S.Proto.ok = true; _ } -> ()
      | _ -> Alcotest.fail "breaker must scope to the quarantined key")

(* ----- server: the socket loop end to end -------------------------- *)

let test_server_socket () =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "hcvliw-test-serve-%d.sock" (Unix.getpid ()))
  in
  let listen = S.Server.listen_unix path in
  let srv =
    Domain.spawn (fun () ->
        let engine = E.Engine.create ~jobs:1 () in
        Fun.protect
          ~finally:(fun () -> E.Engine.shutdown engine)
          (fun () ->
            let dispatch = S.Dispatch.create engine in
            S.Server.run (S.Server.create ~dispatch listen);
            (S.Dispatch.served dispatch, S.Dispatch.errors dispatch)))
  in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let ask line =
    output_string oc line;
    output_char oc '\n';
    flush oc;
    input_line ic
  in
  (match S.Proto.parse_response (ask {|{"id":"p1","op":"ping"}|}) with
  | Ok { S.Proto.ok = true; rid = Some "p1"; _ } -> ()
  | _ -> Alcotest.fail "ping failed");
  (* A malformed line answers in-stream; the connection stays up. *)
  (match S.Proto.parse_response (ask "garbage") with
  | Ok { S.Proto.ok = false; rid = None; _ } -> ()
  | _ -> Alcotest.fail "malformed line not answered with an error");
  (match S.Proto.parse_response (ask (dsl_line ~id:"w" ())) with
  | Ok { S.Proto.ok = true; rid = Some "w"; result = Some _; _ } -> ()
  | _ -> Alcotest.fail "schedule request failed");
  (match S.Proto.parse_response (ask {|{"id":"bye","op":"shutdown"}|}) with
  | Ok { S.Proto.ok = true; rid = Some "bye"; _ } -> ()
  | _ -> Alcotest.fail "shutdown not acknowledged");
  Unix.close fd;
  (* Parse-level errors are answered by the socket loop itself; the
     dispatcher sees the three well-formed requests. *)
  let served, errors = Domain.join srv in
  Alcotest.(check int) "dispatched" 3 served;
  Alcotest.(check int) "dispatch errors" 0 errors;
  Alcotest.(check bool) "socket file still present" true (Sys.file_exists path);
  Sys.remove path

let sock_path tag =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "hcvliw-test-%s-%d.sock" tag (Unix.getpid ()))

let connect_to path () =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  fd

let spawn_server ?batch_max ?max_requests ?max_line ?slow_timeout_s
    ?max_pending listen =
  Domain.spawn (fun () ->
      let engine = E.Engine.create ~jobs:1 () in
      Fun.protect
        ~finally:(fun () -> E.Engine.shutdown engine)
        (fun () ->
          let dispatch = S.Dispatch.create engine in
          S.Server.run
            (S.Server.create ?batch_max ?max_requests ?max_line
               ?slow_timeout_s ?max_pending ~dispatch listen);
          S.Dispatch.served dispatch))

let test_server_pipelined_burst () =
  (* More pipelined requests than [batch_max] in a single write: the
     lines past the cap must still be answered without further socket
     traffic (a capped round polls its residual queue instead of
     blocking in select). *)
  let path = sock_path "burst" in
  let srv = spawn_server ~batch_max:2 (S.Server.listen_unix path) in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let n = 9 in
  for i = 0 to n - 1 do
    output_string oc (Printf.sprintf {|{"id":"p%d","op":"ping"}|} i);
    output_char oc '\n'
  done;
  output_string oc {|{"id":"bye","op":"shutdown"}|};
  output_char oc '\n';
  flush oc;
  (* All n + 1 responses arrive, in request order. *)
  for i = 0 to n - 1 do
    match S.Proto.parse_response (input_line ic) with
    | Ok { S.Proto.ok = true; rid = Some id; _ } ->
      Alcotest.(check string) "in-order response" (Printf.sprintf "p%d" i) id
    | _ -> Alcotest.failf "ping %d not answered" i
  done;
  (match S.Proto.parse_response (input_line ic) with
  | Ok { S.Proto.ok = true; rid = Some "bye"; _ } -> ()
  | _ -> Alcotest.fail "shutdown not acknowledged");
  Unix.close fd;
  Alcotest.(check int) "all requests dispatched" (n + 1) (Domain.join srv);
  Sys.remove path

let test_server_max_requests () =
  (* The self-terminating CI mode: every answer within the cap must be
     fully written out before the loop exits and closes the socket. *)
  let path = sock_path "maxreq" in
  let srv = spawn_server ~max_requests:3 (S.Server.listen_unix path) in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  for i = 0 to 2 do
    output_string oc (Printf.sprintf {|{"id":"m%d","op":"ping"}|} i);
    output_char oc '\n'
  done;
  flush oc;
  for i = 0 to 2 do
    match S.Proto.parse_response (input_line ic) with
    | Ok { S.Proto.ok = true; rid = Some id; _ } ->
      Alcotest.(check string) "capped response" (Printf.sprintf "m%d" i) id
    | _ -> Alcotest.failf "request %d lost at the cap" i
  done;
  Alcotest.(check int) "served up to the cap" 3 (Domain.join srv);
  Unix.close fd;
  Sys.remove path

(* ----- server overload protection ---------------------------------- *)

let shutdown_ok connect =
  match S.Load.run_requests ~connect [ {|{"id":"bye","op":"shutdown"}|} ] with
  | [ (_, Some r) ] when S.Load.classify r = S.Load.Ok_answer -> ()
  | _ -> Alcotest.fail "daemon did not survive to acknowledge shutdown"

let test_server_sheds_overload () =
  let path = sock_path "shed" in
  let srv = spawn_server ~max_pending:4 (S.Server.listen_unix path) in
  let connect = connect_to path in
  let lines =
    List.init 32 (fun i -> Printf.sprintf {|{"id":"b%02d","op":"ping"}|} i)
  in
  let resps = S.Load.run_burst ~connect lines in
  Alcotest.(check int) "every burst line answered" 32 (List.length resps);
  let sheds = List.filter (fun r -> S.Load.classify r = S.Load.Shed) resps in
  Alcotest.(check bool) "backlog beyond the cap shed" true (sheds <> []);
  (* The overloaded answer keeps the salvaged id and reports the
     depth. *)
  (match S.Proto.parse_response (List.hd sheds) with
  | Ok { S.Proto.rid = Some _; error = Some e; _ } ->
    Alcotest.(check bool) "queue depth in context" true
      (List.mem_assoc "queue_depth" e.Hcv_obs.Diag.context)
  | _ -> Alcotest.fail "shed response malformed");
  (* Only the flooding connection was penalised; the daemon survives. *)
  shutdown_ok connect;
  ignore (Domain.join srv);
  Sys.remove path

let test_server_half_close () =
  let path = sock_path "halfclose" in
  let srv = spawn_server (S.Server.listen_unix path) in
  let fd = connect_to path () in
  let ic = Unix.in_channel_of_descr fd in
  (* Two complete lines, a torn tail, then half-close the write side:
     the complete lines are still answered, the torn tail is dropped,
     and the server reaps the slot cleanly. *)
  let payload =
    {|{"id":"h0","op":"ping"}|} ^ "\n" ^ {|{"id":"h1","op":"ping"}|} ^ "\n"
    ^ {|{"id":"torn","op":"explore","bench":"ap|}
  in
  let n = Unix.write_substring fd payload 0 (String.length payload) in
  Alcotest.(check int) "payload written" (String.length payload) n;
  Unix.shutdown fd Unix.SHUTDOWN_SEND;
  List.iter
    (fun id ->
      match S.Proto.parse_response (input_line ic) with
      | Ok { S.Proto.ok = true; rid = Some got; _ } ->
        Alcotest.(check string) "pipelined line answered after eof" id got
      | _ -> Alcotest.failf "request %s lost at half-close" id)
    [ "h0"; "h1" ];
  (match input_line ic with
  | _ -> Alcotest.fail "torn tail must not be answered"
  | exception End_of_file -> ());
  Unix.close fd;
  (* Other connections were never disturbed. *)
  shutdown_ok (connect_to path);
  ignore (Domain.join srv);
  Sys.remove path

let test_server_reaps_slowloris () =
  let path = sock_path "loris" in
  let srv = spawn_server ~slow_timeout_s:0.2 (S.Server.listen_unix path) in
  let connect = connect_to path in
  Alcotest.(check bool) "slowloris reaped" true
    (S.Load.run_slowloris ~connect ~duration_s:0.6 ~interval_s:0.01
       ~reap_grace_s:10. ());
  shutdown_ok connect;
  ignore (Domain.join srv);
  Sys.remove path

let test_server_graceful_drain () =
  let path = sock_path "drain" in
  let listen = S.Server.listen_unix path in
  let srv =
    Domain.spawn (fun () ->
        let engine = E.Engine.create ~jobs:1 () in
        Fun.protect
          ~finally:(fun () -> E.Engine.shutdown engine)
          (fun () ->
            let dispatch = S.Dispatch.create engine in
            S.Server.run (S.Server.create ~dispatch listen);
            S.Dispatch.drained dispatch))
  in
  (* A request pipelined with the shutdown in one write must still be
     answered, and the batch lands while draining. *)
  let resps =
    S.Load.run_burst ~connect:(connect_to path)
      [ {|{"id":"da","op":"ping"}|}; {|{"id":"bye","op":"shutdown"}|} ]
  in
  Alcotest.(check int) "both pipelined lines answered" 2 (List.length resps);
  List.iter
    (fun r ->
      if S.Load.classify r <> S.Load.Ok_answer then
        Alcotest.failf "drain-phase answer is an error: %s" r)
    resps;
  Alcotest.(check bool) "answered during drain" true (Domain.join srv >= 1);
  Sys.remove path

let test_server_chaos_identity () =
  (* The reactor under torn reads and one-byte writes answers the exact
     bytes a fault-free in-process dispatcher does: socket faults are
     granularity perturbations, never data corruption. *)
  let lines =
    [
      dsl_line ~id:"c0" ();
      {|{"id":"c1","op":"ping"}|};
      dsl_line ~id:"c2" ~deadline_ms:0 ();
    ]
  in
  let expected =
    with_dispatch ~jobs:1 (fun d ->
        List.map (S.Dispatch.handle_line d) lines)
  in
  let path = sock_path "chaosid" in
  let plan =
    R.Inject.plan ~seed:11
      [
        R.Inject.spec ~prob:0.5 ~max_fires:max_int R.Inject.Torn_frame;
        R.Inject.spec ~prob:0.5 ~max_fires:max_int R.Inject.Slow_write;
      ]
  in
  let got =
    R.Inject.with_plan plan (fun () ->
        let srv = spawn_server (S.Server.listen_unix path) in
        let connect = connect_to path in
        let got = S.Load.run_requests ~connect lines in
        shutdown_ok connect;
        ignore (Domain.join srv);
        got)
  in
  List.iter2
    (fun want (_, resp) ->
      Alcotest.(check (option string)) "byte-identical under chaos"
        (Some want) resp)
    expected got;
  Sys.remove path

let test_listen_unix_guard () =
  (* The endpoint is claimed defensively: a live daemon's socket and a
     non-socket file are errors; only a stale socket is unlinked. *)
  let path = sock_path "guard" in
  let oc = open_out path in
  close_out oc;
  (match S.Server.listen_unix path with
  | _ -> Alcotest.fail "bound over a regular file"
  | exception Failure _ -> ());
  Sys.remove path;
  let live = S.Server.listen_unix path in
  (match S.Server.listen_unix path with
  | _ -> Alcotest.fail "stole a live daemon's socket"
  | exception Failure _ -> ());
  Unix.close live;
  (* The socket file of the closed listener is now stale: reclaimable. *)
  Alcotest.(check bool) "stale socket file left behind" true
    (Sys.file_exists path);
  let fresh = S.Server.listen_unix path in
  Unix.close fresh;
  Sys.remove path

(* ----- load: the generator is a pure function of the seed ---------- *)

let test_load_deterministic () =
  let a = S.Load.requests ~seed:3 25 in
  let b = S.Load.requests ~seed:3 25 in
  Alcotest.(check (list string)) "same seed, same stream" a b;
  Alcotest.(check bool) "different seed, different stream" true
    (S.Load.requests ~seed:4 25 <> a);
  (* Every line either parses or is deliberately malformed — and the
     full mix must contain both kinds. *)
  let parsed, broken =
    List.partition (fun l -> Result.is_ok (S.Proto.parse l)) a
  in
  Alcotest.(check bool) "has well-formed requests" true (parsed <> []);
  Alcotest.(check bool) "has adversarial requests" true (broken <> [])

let test_percentile () =
  let xs = [ 5.0; 1.0; 4.0; 2.0; 3.0 ] in
  Alcotest.(check (float 1e-9)) "p50" 3.0 (S.Load.percentile xs 0.50);
  Alcotest.(check (float 1e-9)) "p99" 5.0 (S.Load.percentile xs 0.99);
  Alcotest.(check bool) "empty is nan" true
    (Float.is_nan (S.Load.percentile [] 0.5))

let suite =
  [
    Alcotest.test_case "frame reassembles torn lines" `Quick test_frame_torn;
    Alcotest.test_case "frame bounds oversized lines" `Quick
      test_frame_oversized;
    Alcotest.test_case "frame survives byte reads and dropped partials"
      `Quick test_frame_drop_partial;
    Alcotest.test_case "proto parses requests" `Quick test_proto_parse;
    Alcotest.test_case "proto machine field" `Quick test_proto_machine;
    Alcotest.test_case "proto renders responses" `Quick test_proto_responses;
    Alcotest.test_case "registry content keys" `Quick test_registry_keys;
    Alcotest.test_case "frontier op" `Quick test_frontier_op;
    Alcotest.test_case "registry rejections" `Quick test_registry_rejections;
    Alcotest.test_case "dispatch is deterministic" `Quick
      test_dispatch_deterministic;
    Alcotest.test_case "dispatch dedups a batch" `Quick
      test_dispatch_batch_dedup;
    Alcotest.test_case "dispatch survives bad requests" `Quick
      test_dispatch_survives_errors;
    Alcotest.test_case "registry compiles deadlines onto budgets" `Quick
      test_deadline_compile_registry;
    Alcotest.test_case "dispatch renders deadline-exceeded" `Quick
      test_deadline_render;
    Alcotest.test_case "stats separates volatile fields" `Quick
      test_stats_volatile;
    Alcotest.test_case "circuit breaker fast-fails quarantined keys" `Quick
      test_circuit_breaker;
    Alcotest.test_case "server socket loop" `Quick test_server_socket;
    Alcotest.test_case "server drains a pipelined burst past batch_max"
      `Quick test_server_pipelined_burst;
    Alcotest.test_case "server flushes answers before max-requests exit"
      `Quick test_server_max_requests;
    Alcotest.test_case "server sheds an overload burst" `Quick
      test_server_sheds_overload;
    Alcotest.test_case "server answers pipelined lines at half-close"
      `Quick test_server_half_close;
    Alcotest.test_case "server reaps a slowloris peer" `Quick
      test_server_reaps_slowloris;
    Alcotest.test_case "server drains gracefully on shutdown" `Quick
      test_server_graceful_drain;
    Alcotest.test_case "server is byte-identical under socket chaos"
      `Quick test_server_chaos_identity;
    Alcotest.test_case "listen_unix reclaims only stale sockets" `Quick
      test_listen_unix_guard;
    Alcotest.test_case "load stream is seed-pure" `Quick
      test_load_deterministic;
    Alcotest.test_case "latency percentiles" `Quick test_percentile;
  ]
