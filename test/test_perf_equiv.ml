(* Equivalence tests for the hot-path data structures of the scheduler
   perf overhaul: the CSR-indexed DDG view, the flat MRT, the bus
   first-free pointer, and the Hsched partition-score memo.  Each
   indexed / cached structure must answer exactly like a
   straightforward reference implementation on seeded random inputs —
   the optimisations are required to be behaviour-preserving. *)

open Hcv_support
open Hcv_ir
open Hcv_machine
open Hcv_sched
open Hcv_core

(* ----- CSR view vs list accessors --------------------------------- *)

let collect iter ddg i =
  let acc = ref [] in
  iter ddg i (fun e -> acc := e :: !acc);
  List.rev !acc

let check_csr name (loop : Loop.t) =
  let ddg = loop.Loop.ddg in
  Alcotest.(check bool)
    (name ^ ": edge_array = edges")
    true
    (Array.to_list (Ddg.edge_array ddg) = Ddg.edges ddg);
  for i = 0 to Ddg.n_instrs ddg - 1 do
    let succs = Ddg.succs ddg i and preds = Ddg.preds ddg i in
    Alcotest.(check bool)
      (Printf.sprintf "%s: iter_succs %d" name i)
      true
      (collect Ddg.iter_succs ddg i = succs);
    Alcotest.(check bool)
      (Printf.sprintf "%s: iter_preds %d" name i)
      true
      (collect Ddg.iter_preds ddg i = preds);
    Alcotest.(check int)
      (Printf.sprintf "%s: out_degree %d" name i)
      (List.length succs) (Ddg.out_degree ddg i);
    Alcotest.(check int)
      (Printf.sprintf "%s: in_degree %d" name i)
      (List.length preds) (Ddg.in_degree ddg i);
    Alcotest.(check bool)
      (Printf.sprintf "%s: fold_succs %d" name i)
      true
      (List.rev (Ddg.fold_succs ddg i (fun acc e -> e :: acc) []) = succs);
    Alcotest.(check bool)
      (Printf.sprintf "%s: fold_preds %d" name i)
      true
      (List.rev (Ddg.fold_preds ddg i (fun acc e -> e :: acc) []) = preds)
  done

let test_csr_fixtures () =
  check_csr "dotprod" (Builders.dotprod ());
  check_csr "recurrence" (Builders.recurrence_loop ());
  check_csr "wide" (Builders.wide_loop ~width:6 ())

let test_csr_random () =
  for seed = 0 to 24 do
    check_csr
      (Printf.sprintf "rand%d" seed)
      (Builders.random_loop ~n:(5 + (seed mod 20)) ~seed ())
  done

(* ----- flat MRT vs a hashtable reference -------------------------- *)

(* The reference implementation mirrors what lib/sched/mrt.ml did
   before the flat rewrite: hashtable-keyed per-slot occupancy
   counters. *)
let mrt_replay ~seed ~machine =
  let rng = Rng.create seed in
  let ii = 2 + Rng.int rng 6 in
  let clocking = Clocking.homogeneous ~n_clusters:4 ~ii ~cycle_time:Q.one in
  let mrt = Mrt.create machine clocking in
  let used : (int * Opcode.fu_kind * int, int) Hashtbl.t =
    Hashtbl.create 64
  in
  let get k = Option.value ~default:0 (Hashtbl.find_opt used k) in
  let bus_used = Array.make ii 0 in
  let buses = machine.Machine.icn.Icn.buses in
  let cap c kind = Cluster.fu_count (Machine.cluster machine c) kind in
  for step = 0 to 799 do
    let c = Rng.int rng 4 in
    let kind = Rng.pick rng Opcode.all_fu_kinds in
    let cycle = Rng.int rng (4 * ii) in
    let slot = cycle mod ii in
    let ctx = Printf.sprintf "seed %d step %d" seed step in
    match Rng.int rng 4 with
    | 0 ->
      Alcotest.(check bool)
        (ctx ^ ": fu_available")
        (get (c, kind, slot) < cap c kind)
        (Mrt.fu_available mrt ~cluster:c ~kind ~cycle)
    | 1 ->
      if Mrt.fu_available mrt ~cluster:c ~kind ~cycle then begin
        Mrt.fu_reserve mrt ~cluster:c ~kind ~cycle;
        Hashtbl.replace used (c, kind, slot) (get (c, kind, slot) + 1)
      end
    | 2 ->
      if get (c, kind, slot) > 0 then begin
        Mrt.fu_release mrt ~cluster:c ~kind ~cycle;
        Hashtbl.replace used (c, kind, slot) (get (c, kind, slot) - 1)
      end;
      Alcotest.(check int)
        (ctx ^ ": fu_used")
        (get (c, kind, slot))
        (Mrt.fu_used mrt ~cluster:c ~kind ~slot)
    | _ -> (
      (* Bus traffic plus a first-free query checked against a naive
         scan over the reference occupancy. *)
      (match Rng.int rng 3 with
      | 0 ->
        Alcotest.(check bool)
          (ctx ^ ": bus_available")
          (bus_used.(slot) < buses)
          (Mrt.bus_available mrt ~cycle)
      | 1 ->
        if Mrt.bus_available mrt ~cycle then begin
          Mrt.bus_reserve mrt ~cycle;
          bus_used.(slot) <- bus_used.(slot) + 1
        end
      | _ ->
        if bus_used.(slot) > 0 then begin
          Mrt.bus_release mrt ~cycle;
          bus_used.(slot) <- bus_used.(slot) - 1
        end);
      let earliest = Rng.int_in rng (-2) (2 * ii) in
      let latest = earliest + Rng.int rng (2 * ii) in
      let naive =
        let rec scan c =
          if c > latest then None
          else if bus_used.(c mod ii) < buses then Some c
          else scan (c + 1)
        in
        scan (max 0 earliest)
      in
      Alcotest.(check (option int))
        (ctx ^ ": bus_first_free")
        naive
        (Mrt.bus_first_free mrt ~earliest ~latest))
  done

let test_mrt_reference () =
  for seed = 100 to 111 do
    mrt_replay ~seed ~machine:Builders.machine_1bus;
    mrt_replay ~seed:(seed + 1000) ~machine:Builders.machine_2bus
  done

(* ----- score memo never changes Hsched output --------------------- *)

(* A throwaway model context (scoring only compares candidates). *)
let ctx =
  let act =
    Hcv_energy.Activity.make ~exec_time_ns:1e6
      ~per_cluster_ins_energy:[| 100.; 100.; 100.; 100. |]
      ~n_comms:100. ~n_mem:100.
  in
  Hcv_energy.Model.ctx ~params:Hcv_energy.Params.default
    ~units:
      (Hcv_energy.Units.of_reference ~params:Hcv_energy.Params.default
         ~n_clusters:4 act)
    ()

let random_config rng machine =
  let fast = Rng.pick rng Presets.fast_factors in
  let slow = Rng.pick rng Presets.slow_factors in
  let fast_ct = Q.mul Presets.reference_cycle_time fast in
  let slow_ct = Q.mul fast_ct slow in
  let n_fast = 1 + Rng.int rng 3 in
  let pt ct = { Opconfig.cycle_time = ct; vdd = 1.0 } in
  Opconfig.make ~machine
    ~cluster_points:
      (Array.init 4 (fun i -> pt (if i < n_fast then fast_ct else slow_ct)))
    ~icn_point:(pt fast_ct) ~cache_point:(pt fast_ct)

let prop_score_memo_equiv =
  QCheck.Test.make ~name:"score memo preserves Hsched.schedule" ~count:25
    (QCheck.make QCheck.Gen.int) (fun qseed ->
      let rng = Rng.create qseed in
      let machine = Builders.machine_1bus in
      let loop = Builders.random_loop ~n:(5 + Rng.int rng 10) ~seed:qseed () in
      let config = random_config rng machine in
      let max_tries = 1 + Rng.int rng 8 in
      let seed = Rng.int rng 5 in
      let run score_memo =
        Hsched.schedule ~ctx ~config ~loop ~max_tries ~seed ~score_memo ()
      in
      match (run true, run false) with
      | Error a, Error b -> a = b
      | Ok (sa, ta), Ok (sb, tb) ->
        sa.Schedule.placements = sb.Schedule.placements
        && sa.Schedule.transfers = sb.Schedule.transfers
        && ta = tb
      | _ -> false)

(* ----- pseudo-schedule fixtures: chosen slots unchanged ----------- *)

let pseudo_slots ~machine ~ii loop assignment =
  let clocking = Clocking.homogeneous ~n_clusters:4 ~ii ~cycle_time:Q.one in
  let est = Pseudo.estimate ~machine ~clocking ~loop ~assignment () in
  let s = est.Pseudo.schedule in
  let places =
    Array.to_list s.Schedule.placements
    |> List.mapi (fun i (p : Schedule.placement) ->
           Printf.sprintf "%d:%d@%d" i p.cluster p.cycle)
    |> String.concat " "
  in
  let comms =
    List.map
      (fun (t : Schedule.transfer) ->
        Printf.sprintf "%d>%d@%d" t.src t.dst_cluster t.bus_cycle)
      s.Schedule.transfers
    |> String.concat " "
  in
  places ^ (if comms = "" then "" else " | " ^ comms)

let test_pseudo_fixture_slots () =
  let machine = Builders.machine_1bus in
  let dot = Builders.dotprod () in
  Alcotest.(check string)
    "dotprod slots" "0:0@0 1:0@1 2:0@3 3:0@10"
    (pseudo_slots ~machine ~ii:6 dot
       (Array.make (Ddg.n_instrs dot.Loop.ddg) 0));
  Alcotest.(check string)
    "dotprod split slots" "0:0@0 1:1@0 2:2@5 3:3@13 | 0>2@3 1>2@4 2>3@12"
    (pseudo_slots ~machine ~ii:6 dot [| 0; 1; 2; 3 |]);
  let wide = Builders.wide_loop ~width:4 () in
  Alcotest.(check string)
    "wide slots"
    "0:0@0 1:0@2 2:0@5 3:1@0 4:1@2 5:1@5 6:2@0 7:2@2 8:2@5 9:3@0 10:3@2 11:3@5"
    (pseudo_slots ~machine ~ii:4 wide
       (Partition.initial_even ~n_clusters:4 wide.Loop.ddg));
  let rc = Builders.recurrence_loop () in
  Alcotest.(check string)
    "recurrence slots"
    "0:0@0 1:3@5 2:1@15 3:1@0 4:2@0 5:0@6 6:2@11 | 0>3@4 1>1@14 3>0@3 4>0@5"
    (pseudo_slots ~machine ~ii:4 rc
       (Partition.initial_even ~n_clusters:4 rc.Loop.ddg))

let suite =
  [
    Alcotest.test_case "CSR view: fixture loops" `Quick test_csr_fixtures;
    Alcotest.test_case "CSR view: random loops" `Quick test_csr_random;
    Alcotest.test_case "flat MRT vs hashtable reference" `Quick
      test_mrt_reference;
    QCheck_alcotest.to_alcotest prop_score_memo_equiv;
    Alcotest.test_case "pseudo fixture slots unchanged" `Quick
      test_pseudo_fixture_slots;
  ]
