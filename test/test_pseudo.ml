(* Pseudo-schedules: cheap estimates used during refinement. *)

open Hcv_support
open Hcv_ir
open Hcv_machine
open Hcv_sched

let machine = Presets.machine_4c ~buses:1

let test_feasible_simple () =
  let loop = Builders.dotprod () in
  let clocking = Clocking.homogeneous ~n_clusters:4 ~ii:6 ~cycle_time:Q.one in
  let assignment = Array.make (Ddg.n_instrs loop.Loop.ddg) 0 in
  let est = Pseudo.estimate ~machine ~clocking ~loop ~assignment () in
  Alcotest.(check bool) "feasible" true (Pseudo.feasible est);
  Alcotest.(check int) "no comms on one cluster" 0
    (Schedule.n_comms est.Pseudo.schedule)

let test_overflow_on_tiny_ii () =
  (* 8 memory ops on one cluster (1 port) at II=2: overflow. *)
  let loop = Builders.wide_loop ~width:4 () in
  let clocking = Clocking.homogeneous ~n_clusters:4 ~ii:2 ~cycle_time:Q.one in
  let assignment = Array.make (Ddg.n_instrs loop.Loop.ddg) 0 in
  let est = Pseudo.estimate ~machine ~clocking ~loop ~assignment () in
  Alcotest.(check bool) "overflow" true (est.Pseudo.overflow > 0);
  Alcotest.(check bool) "infeasible" false (Pseudo.feasible est)

let test_back_violation () =
  (* Recurrence latency 12 at II=2: the greedy placement cannot satisfy
     the back edge. *)
  let b = Ddg.Builder.create () in
  let a = Ddg.Builder.add_instr b (Opcode.make Opcode.Mult Opcode.Fp) in
  let c = Ddg.Builder.add_instr b (Opcode.make Opcode.Mult Opcode.Fp) in
  Ddg.Builder.add_edge b a c;
  Ddg.Builder.add_edge b ~distance:1 c a;
  let loop = Loop.make ~name:"r" (Ddg.Builder.build b) in
  let clocking = Clocking.homogeneous ~n_clusters:4 ~ii:2 ~cycle_time:Q.one in
  let est =
    Pseudo.estimate ~machine ~clocking ~loop ~assignment:[| 0; 0 |] ()
  in
  Alcotest.(check bool) "back violation" true (est.Pseudo.back_violations > 0)

let test_score_ordering () =
  (* Feasible estimates score strictly below infeasible ones. *)
  let loop = Builders.wide_loop ~width:4 () in
  let n = Ddg.n_instrs loop.Loop.ddg in
  let tight = Clocking.homogeneous ~n_clusters:4 ~ii:2 ~cycle_time:Q.one in
  let loose = Clocking.homogeneous ~n_clusters:4 ~ii:8 ~cycle_time:Q.one in
  let bad =
    Pseudo.estimate ~machine ~clocking:tight ~loop ~assignment:(Array.make n 0) ()
  in
  let good =
    Pseudo.estimate ~machine ~clocking:loose ~loop
      ~assignment:(Partition.initial_even ~n_clusters:4 loop.Loop.ddg)
      ()
  in
  Alcotest.(check bool) "ordering" true (Pseudo.score good < Pseudo.score bad)

let test_comms_counted () =
  (* A chain split across clusters must count transfers. *)
  let b = Ddg.Builder.create () in
  let x = Ddg.Builder.add_instr b (Opcode.make Opcode.Arith Opcode.Fp) in
  let y = Ddg.Builder.add_instr b (Opcode.make Opcode.Arith Opcode.Fp) in
  Ddg.Builder.add_edge b x y;
  let loop = Loop.make ~name:"xy" (Ddg.Builder.build b) in
  let clocking = Clocking.homogeneous ~n_clusters:4 ~ii:4 ~cycle_time:Q.one in
  let est = Pseudo.estimate ~machine ~clocking ~loop ~assignment:[| 0; 2 |] () in
  Alcotest.(check int) "one comm" 1 (Schedule.n_comms est.Pseudo.schedule)

let suite =
  [
    Alcotest.test_case "feasible estimate" `Quick test_feasible_simple;
    Alcotest.test_case "overflow detection" `Quick test_overflow_on_tiny_ii;
    Alcotest.test_case "back-edge violation" `Quick test_back_violation;
    Alcotest.test_case "score ordering" `Quick test_score_ordering;
    Alcotest.test_case "comms counted" `Quick test_comms_counted;
  ]
