(* Exact rational arithmetic. *)

open Hcv_support

let q = Alcotest.testable Q.pp Q.equal

let test_normalisation () =
  Alcotest.(check q) "6/4 = 3/2" (Q.make 3 2) (Q.make 6 4);
  Alcotest.(check q) "-6/-4 = 3/2" (Q.make 3 2) (Q.make (-6) (-4));
  Alcotest.(check q) "6/-4 = -3/2" (Q.make (-3) 2) (Q.make 6 (-4));
  Alcotest.(check q) "0/7 = 0" Q.zero (Q.make 0 7);
  Alcotest.check_raises "zero denominator"
    (Invalid_argument "Q.make: zero denominator") (fun () ->
      ignore (Q.make 1 0))

let test_arith () =
  Alcotest.(check q) "1/2 + 1/3" (Q.make 5 6) (Q.add (Q.make 1 2) (Q.make 1 3));
  Alcotest.(check q) "1/2 - 1/3" (Q.make 1 6) (Q.sub (Q.make 1 2) (Q.make 1 3));
  Alcotest.(check q) "2/3 * 3/4" (Q.make 1 2) (Q.mul (Q.make 2 3) (Q.make 3 4));
  Alcotest.(check q) "1/2 / 1/4" (Q.of_int 2) (Q.div (Q.make 1 2) (Q.make 1 4));
  Alcotest.(check q) "inv 3/5" (Q.make 5 3) (Q.inv (Q.make 3 5));
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Q.div Q.one Q.zero))

let test_floor_ceil () =
  Alcotest.(check int) "floor 7/2" 3 (Q.floor (Q.make 7 2));
  Alcotest.(check int) "ceil 7/2" 4 (Q.ceil (Q.make 7 2));
  Alcotest.(check int) "floor -7/2" (-4) (Q.floor (Q.make (-7) 2));
  Alcotest.(check int) "ceil -7/2" (-3) (Q.ceil (Q.make (-7) 2));
  Alcotest.(check int) "floor 4" 4 (Q.floor (Q.of_int 4));
  Alcotest.(check int) "ceil 4" 4 (Q.ceil (Q.of_int 4))

let test_compare () =
  Alcotest.(check bool) "1/3 < 1/2" true Q.(Q.make 1 3 < Q.make 1 2);
  Alcotest.(check bool) "2/4 = 1/2" true (Q.equal (Q.make 2 4) (Q.make 1 2));
  Alcotest.(check q) "min" (Q.make 1 3) (Q.min (Q.make 1 3) (Q.make 1 2));
  Alcotest.(check q) "max" (Q.make 1 2) (Q.max (Q.make 1 3) (Q.make 1 2))

let test_of_float_approx () =
  Alcotest.(check q) "0.5" (Q.make 1 2) (Q.of_float_approx 0.5);
  Alcotest.(check q) "1.25" (Q.make 5 4) (Q.of_float_approx 1.25);
  Alcotest.(check q) "integers" (Q.of_int 7) (Q.of_float_approx 7.0);
  (* 1/3 is not exactly representable; the approximation must be
     closer than 1e-6. *)
  let approx = Q.of_float_approx (1.0 /. 3.0) in
  Alcotest.(check bool) "1/3 approx" true
    (Float.abs (Q.to_float approx -. (1.0 /. 3.0)) < 1e-6)

let test_gcd_lcm () =
  Alcotest.(check int) "gcd 12 18" 6 (Q.gcd 12 18);
  Alcotest.(check int) "gcd 0 5" 5 (Q.gcd 0 5);
  Alcotest.(check int) "gcd -12 18" 6 (Q.gcd (-12) 18);
  Alcotest.(check int) "lcm 4 6" 12 (Q.lcm 4 6);
  Alcotest.(check int) "lcm 0 6" 0 (Q.lcm 0 6)

(* Near-max_int operands: the naive cross-multiplying implementations
   overflowed silently here; the gcd-normalised ones must stay exact
   whenever the reduced result fits in a native int. *)
let test_overflow () =
  let big = max_int / 2 in
  (* (big/3) * (3/big) = 1: gcd reduction before multiplying *)
  Alcotest.(check q) "huge mul cancels" Q.one
    (Q.mul (Q.make big 3) (Q.make 3 big));
  (* a + (-a) at a huge denominator *)
  let a = Q.make 1 big in
  Alcotest.(check q) "huge add cancels" Q.zero (Q.add a (Q.neg a));
  (* n/(n+1) vs (n-1)/n at huge n: cross products ~ max_int^2/4 would
     overflow; the exact comparison must still order them correctly *)
  let lo = Q.make (big - 1) big and hi = Q.make big (big + 1) in
  Alcotest.(check int) "huge compare <" (-1) (Q.compare lo hi);
  Alcotest.(check int) "huge compare >" 1 (Q.compare hi lo);
  Alcotest.(check int) "huge compare =" 0 (Q.compare hi hi);
  Alcotest.(check bool) "huge max picks the larger" true
    (Q.equal hi (Q.max lo hi));
  (* common-denominator add: d1 = den, no cross product at all *)
  Alcotest.(check q) "huge same-den add"
    (Q.make 2 big)
    (Q.add (Q.make 1 big) (Q.make 1 big));
  (* sub mirroring add *)
  Alcotest.(check q) "huge sub" (Q.make 1 big)
    (Q.sub (Q.make 2 big) (Q.make 1 big));
  (* near-max integer fast paths *)
  Alcotest.(check int) "floor of huge int" big (Q.floor (Q.of_int big));
  Alcotest.(check int) "huge int compare" 1
    (Q.compare (Q.of_int big) (Q.of_int (big - 1)))

(* gcd/lcm at the extreme ends of the int range. *)
let test_gcd_boundaries () =
  Alcotest.(check int) "gcd max_int max_int" max_int (Q.gcd max_int max_int);
  Alcotest.(check int) "gcd max_int 1" 1 (Q.gcd max_int 1);
  Alcotest.(check int) "gcd max_int 0" max_int (Q.gcd max_int 0);
  (* max_int = 2^62 - 1 = 3 * 715827883 * 2147483647 *)
  Alcotest.(check int) "gcd max_int 3" 3 (Q.gcd max_int 3);
  Alcotest.(check int) "gcd max_int 7" 1 (Q.gcd max_int 7);
  Alcotest.(check bool) "gcd of negatives is non-negative" true
    (Q.gcd (-12) (-18) = 6);
  Alcotest.(check int) "gcd 1 1" 1 (Q.gcd 1 1);
  Alcotest.(check int) "gcd 0 0" 0 (Q.gcd 0 0);
  Alcotest.(check int) "lcm max_int 1" max_int (Q.lcm max_int 1);
  Alcotest.(check int) "lcm max_int max_int" max_int (Q.lcm max_int max_int);
  Alcotest.(check int) "lcm 3 max_int" max_int (Q.lcm 3 max_int);
  (* make at the boundary stays in normal form *)
  let m = Q.make max_int max_int in
  Alcotest.(check q) "max_int/max_int = 1" Q.one m;
  let h = Q.make max_int 2 in
  Alcotest.(check int) "max_int/2 num" max_int (Q.num h);
  Alcotest.(check int) "max_int/2 den" 2 (Q.den h);
  (* both rounding helpers used to overflow on the adjustment term
     [p + q - 1] with p near max_int *)
  Alcotest.(check int) "floor max_int/2" (max_int / 2) (Q.floor h);
  Alcotest.(check int) "ceil max_int/2" ((max_int / 2) + 1) (Q.ceil h);
  let nh = Q.make (-max_int) 2 in
  Alcotest.(check int) "floor -max_int/2" (-((max_int / 2) + 1)) (Q.floor nh);
  Alcotest.(check int) "ceil -max_int/2" (-(max_int / 2)) (Q.ceil nh)

(* Mixed-sign rationals through every operation class. *)
let test_mixed_sign () =
  let a = Q.make (-1) 3 and b = Q.make 1 2 in
  Alcotest.(check q) "-1/3 + 1/2" (Q.make 1 6) (Q.add a b);
  Alcotest.(check q) "-1/3 - 1/2" (Q.make (-5) 6) (Q.sub a b);
  Alcotest.(check q) "-1/3 * 1/2" (Q.make (-1) 6) (Q.mul a b);
  Alcotest.(check q) "-1/3 / 1/2" (Q.make (-2) 3) (Q.div a b);
  Alcotest.(check q) "neg * neg" (Q.make 1 6) (Q.mul a (Q.neg b));
  Alcotest.(check q) "inv of negative" (Q.make (-3) 1) (Q.inv a);
  Alcotest.(check int) "sign -1/3" (-1) (Q.sign a);
  Alcotest.(check int) "sign 0" 0 (Q.sign Q.zero);
  Alcotest.(check bool) "-1/3 < 1/2" true Q.(a < b);
  Alcotest.(check bool) "-1/2 < -1/3" true Q.(Q.neg b < a);
  Alcotest.(check q) "min across zero" a (Q.min a b);
  Alcotest.(check q) "max across zero" b (Q.max a b);
  Alcotest.(check bool) "-4/2 is an integer" true
    (Q.is_integer (Q.make (-4) 2));
  Alcotest.(check int) "floor -1/3" (-1) (Q.floor a);
  Alcotest.(check int) "ceil -1/3" 0 (Q.ceil a);
  (* fused ops with a negative divisor flip the rounding direction *)
  Alcotest.(check int) "floor_div 7/2 by -1" (-4)
    (Q.floor_div (Q.make 7 2) (Q.of_int (-1)));
  Alcotest.(check int) "ceil_div 7/2 by -1" (-3)
    (Q.ceil_div (Q.make 7 2) (Q.of_int (-1)));
  Alcotest.(check q) "add_mul_int with negative n" (Q.make (-5) 2)
    (Q.add_mul_int (Q.make 1 2) (Q.make 3 2) (-2));
  Alcotest.(check q) "mul_int negative" (Q.make 2 3)
    (Q.mul_int a (-2));
  Alcotest.(check q) "div_int negative" (Q.make 1 6)
    (Q.div_int a (-2))

let test_fused_ops () =
  Alcotest.(check int) "ceil_div 7/2 / 1" 4
    (Q.ceil_div (Q.make 7 2) Q.one);
  Alcotest.(check int) "floor_div 7/2 / 1" 3
    (Q.floor_div (Q.make 7 2) Q.one);
  Alcotest.(check int) "ceil_div -7/2 / 1" (-3)
    (Q.ceil_div (Q.make (-7) 2) Q.one);
  Alcotest.(check q) "add_mul_int" (Q.make 7 2)
    (Q.add_mul_int (Q.make 1 2) (Q.make 3 2) 2);
  Alcotest.check_raises "ceil_div by zero" Division_by_zero (fun () ->
      ignore (Q.ceil_div Q.one Q.zero))

(* Property tests. *)

let arb_q =
  QCheck.map
    (fun (n, d) -> Q.make n d)
    (QCheck.pair (QCheck.int_range (-1000) 1000) (QCheck.int_range 1 1000))

let prop_add_comm =
  QCheck.Test.make ~name:"add commutative" ~count:200 (QCheck.pair arb_q arb_q)
    (fun (a, b) -> Q.equal (Q.add a b) (Q.add b a))

let prop_mul_assoc =
  QCheck.Test.make ~name:"mul associative" ~count:200
    (QCheck.triple arb_q arb_q arb_q) (fun (a, b, c) ->
      Q.equal (Q.mul (Q.mul a b) c) (Q.mul a (Q.mul b c)))

let prop_floor_ceil =
  QCheck.Test.make ~name:"floor <= q <= ceil, within 1" ~count:200 arb_q
    (fun a ->
      let f = Q.floor a and c = Q.ceil a in
      Q.(of_int f <= a) && Q.(a <= of_int c) && c - f <= 1)

let prop_sub_add_inverse =
  QCheck.Test.make ~name:"a - b + b = a" ~count:200 (QCheck.pair arb_q arb_q)
    (fun (a, b) -> Q.equal (Q.add (Q.sub a b) b) a)

let prop_normal_form =
  QCheck.Test.make ~name:"results are in normal form" ~count:200
    (QCheck.pair arb_q arb_q) (fun (a, b) ->
      let r = Q.add a b in
      Q.den r > 0 && Q.gcd (Q.num r) (Q.den r) = 1)

let prop_compare_vs_float =
  QCheck.Test.make ~name:"compare agrees with cross-multiplication"
    ~count:500 (QCheck.pair arb_q arb_q) (fun (a, b) ->
      (* small operands: the naive cross product is exact and must agree *)
      let naive =
        Stdlib.compare (Q.num a * Q.den b) (Q.num b * Q.den a)
      in
      Stdlib.compare (Q.compare a b) 0 = Stdlib.compare naive 0)

let prop_fused_div =
  QCheck.Test.make ~name:"ceil_div/floor_div agree with ceil/floor of div"
    ~count:500
    (QCheck.pair arb_q arb_q) (fun (a, b) ->
      QCheck.assume (Q.sign b <> 0);
      Q.ceil_div a b = Q.ceil (Q.div a b)
      && Q.floor_div a b = Q.floor (Q.div a b))

let prop_add_mul_int =
  QCheck.Test.make ~name:"add_mul_int = add + mul_int" ~count:500
    (QCheck.triple arb_q arb_q (QCheck.int_range (-50) 50))
    (fun (a, b, n) ->
      Q.equal (Q.add_mul_int a b n) (Q.add a (Q.mul_int b n)))

let suite =
  [
    Alcotest.test_case "normalisation" `Quick test_normalisation;
    Alcotest.test_case "arithmetic" `Quick test_arith;
    Alcotest.test_case "floor/ceil" `Quick test_floor_ceil;
    Alcotest.test_case "comparisons" `Quick test_compare;
    Alcotest.test_case "of_float_approx" `Quick test_of_float_approx;
    Alcotest.test_case "gcd/lcm" `Quick test_gcd_lcm;
    Alcotest.test_case "near-max_int operands" `Quick test_overflow;
    Alcotest.test_case "gcd/lcm boundaries" `Quick test_gcd_boundaries;
    Alcotest.test_case "mixed-sign rationals" `Quick test_mixed_sign;
    Alcotest.test_case "fused ops" `Quick test_fused_ops;
    QCheck_alcotest.to_alcotest prop_add_comm;
    QCheck_alcotest.to_alcotest prop_mul_assoc;
    QCheck_alcotest.to_alcotest prop_floor_ceil;
    QCheck_alcotest.to_alcotest prop_sub_add_inverse;
    QCheck_alcotest.to_alcotest prop_normal_form;
    QCheck_alcotest.to_alcotest prop_compare_vs_float;
    QCheck_alcotest.to_alcotest prop_fused_div;
    QCheck_alcotest.to_alcotest prop_add_mul_int;
  ]
