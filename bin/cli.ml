(* The hcvliw command-line interface. *)

open Cmdliner
open Hcv_support
open Hcv_ir
open Hcv_machine
open Hcv_energy
open Hcv_core
open Hcv_workload

let setup_logs () =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some Logs.Warning)

let machine_of ~buses = Presets.machine_4c ~buses

let load_loops path =
  match Dsl.parse_file path with
  | Ok loops -> Ok loops
  | Error e -> Error (Format.asprintf "%s: %a" path Dsl.pp_error e)

let or_die = function
  | Ok v -> v
  | Error msg ->
    Printf.eprintf "error: %s\n" msg;
    exit 1

(* Same, for results whose error is a structured diagnostic. *)
let diag_ok = function
  | Ok v -> v
  | Error d ->
    Printf.eprintf "error: %s\n" (Hcv_obs.Diag.to_string d);
    exit 1

(* ----- --machine: family names and description files --------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* A SPEC is tried as a family name first, as a machine-description
   file second; absent means the paper machine at the given bus
   count.  Description files carry their own ICN, so --buses does not
   apply to them. *)
let resolve_machine ~buses = function
  | None -> machine_of ~buses
  | Some spec -> (
    match Family.find ~buses spec with
    | Some m -> m
    | None ->
      if Sys.file_exists spec then
        match Hcv_explore.Machdesc.of_string (read_file spec) with
        | Ok m -> m
        | Error msg -> or_die (Error (Printf.sprintf "%s: %s" spec msg))
      else
        or_die
          (Error
             (Printf.sprintf
                "unknown machine %S: not a family (one of %s) and not a file"
                spec
                (String.concat ", " Family.names))))

let machine_arg =
  Cmdliner.Arg.(
    value & opt (some string) None
    & info [ "machine" ] ~docv:"SPEC"
        ~doc:
          "Target machine: a capability-asymmetric family name \
           ($(b,big-little), $(b,fp-heavy), $(b,scalar-satellite)) or a \
           path to a JSON machine-description file.  Default: the \
           paper's 4-cluster machine.  Description files carry their \
           own interconnect, so $(b,--buses) does not apply to them.")

(* The same SPEC resolution for cell-based sweeps: the selection rides
   in the cell (and so in its cache key).  Description files are
   canonicalised exactly as the serve boundary does, so equal machines
   key equally however they arrive. *)
let machine_sel_of_spec = function
  | None -> Sweep.Paper
  | Some spec ->
    if List.mem spec Family.names then Sweep.Family spec
    else if Sys.file_exists spec then
      match Hcv_explore.Machdesc.of_string (read_file spec) with
      | Ok m -> Sweep.Desc (Hcv_explore.Machdesc.to_string m)
      | Error msg -> or_die (Error (Printf.sprintf "%s: %s" spec msg))
    else
      or_die
        (Error
           (Printf.sprintf
              "unknown machine %S: not a family (one of %s) and not a file"
              spec
              (String.concat ", " Family.names)))

(* ----- bench: run the full pipeline for benchmarks ---------------- *)

let run_benchmark ~buses ~n_loops ~seed name =
  let machine = machine_of ~buses in
  match Specfp.find name with
  | None ->
    Error
      (Hcv_obs.Diag.v ~code:"unknown-benchmark"
         (Printf.sprintf "unknown benchmark %S" name))
  | Some spec ->
    let loops = Specfp.loops ?n_loops ~seed spec in
    Pipeline.run ~machine ~name ~loops ()

let bench_cmd =
  let bench_arg =
    Arg.(value & pos 0 string "all" & info [] ~docv:"BENCHMARK")
  in
  let buses =
    Arg.(value & opt int 1 & info [ "buses" ] ~doc:"Number of register buses.")
  in
  let n_loops =
    Arg.(
      value & opt (some int) None
      & info [ "loops" ] ~doc:"Loops per benchmark (default: per-spec).")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Workload seed.") in
  let run name buses n_loops seed =
    setup_logs ();
    let names =
      if name = "all" then List.map (fun s -> s.Specfp.name) Specfp.all
      else [ name ]
    in
    List.iter
      (fun n ->
        let r = diag_ok (run_benchmark ~buses ~n_loops ~seed n) in
        Format.printf "%a@." Pipeline.pp_summary r)
      names
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:
         "Run the full profile/select/schedule pipeline for one (or all) \
          synthetic SPECfp2000 benchmarks and report normalised ED2.")
    Term.(const run $ bench_arg $ buses $ n_loops $ seed)

(* ----- table2 ----------------------------------------------------- *)

let table2_cmd =
  let run () =
    setup_logs ();
    let machine = machine_of ~buses:1 in
    let t =
      Tablefmt.create
        ~title:"Table 2: share of execution time per constraint class"
        [
          ("benchmark", Tablefmt.Left);
          ("resource (paper)", Tablefmt.Right);
          ("resource (ours)", Tablefmt.Right);
          ("border (paper)", Tablefmt.Right);
          ("border (ours)", Tablefmt.Right);
          ("recurrence (paper)", Tablefmt.Right);
          ("recurrence (ours)", Tablefmt.Right);
        ]
    in
    List.iter
      (fun spec ->
        let loops = Specfp.loops ~seed:42 spec in
        let res, border, rec_ = Specfp.table2_row machine loops in
        Tablefmt.add_row t
          [
            spec.Specfp.name;
            Tablefmt.cell_pct spec.Specfp.res_share;
            Tablefmt.cell_pct res;
            Tablefmt.cell_pct spec.Specfp.border_share;
            Tablefmt.cell_pct border;
            Tablefmt.cell_pct spec.Specfp.rec_share;
            Tablefmt.cell_pct rec_;
          ])
      Specfp.all;
    Tablefmt.print t
  in
  Cmd.v
    (Cmd.info "table2" ~doc:"Reproduce Table 2 (constraint-class mix).")
    Term.(const run $ const ())

(* ----- schedule: schedule loops from a .loop file ------------------ *)

let schedule_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let buses = Arg.(value & opt int 1 & info [ "buses" ]) in
  let hetero =
    Arg.(
      value & flag
      & info [ "hetero" ]
          ~doc:"Select a heterogeneous configuration first and use it.")
  in
  let run file buses machine hetero =
    setup_logs ();
    let machine = resolve_machine ~buses machine in
    let loops = or_die (load_loops file) in
    if hetero then begin
      let profile = diag_ok (Profile.profile ~machine ~loops ()) in
      let units =
        Units.of_reference ~params:Params.default
          ~n_clusters:(Machine.n_clusters machine)
          profile.Profile.activity
      in
      let ctx = Model.ctx ~params:Params.default ~units () in
      let choice = diag_ok (Select.select_heterogeneous ~ctx ~machine profile) in
      Format.printf "%a@.@." Select.pp_choice choice;
      List.iter
        (fun loop ->
          match
            Hsched.schedule ~ctx ~config:choice.Select.config ~loop ()
          with
          | Ok (sched, stats) ->
            Format.printf "%a@.(IT=%a, MIT=%a, %d pre-placed)@.@."
              Hcv_sched.Schedule.pp sched Q.pp stats.Hsched.it Q.pp
              stats.Hsched.mit stats.Hsched.prePlaced
          | Error d ->
            Format.printf "%s: FAILED: %a@." loop.Loop.name Hcv_obs.Diag.pp d)
        loops
    end
    else
      List.iter
        (fun loop ->
          match
            Hcv_sched.Homo.schedule ~machine
              ~cycle_time:Presets.reference_cycle_time ~loop ()
          with
          | Ok (sched, stats) ->
            Format.printf "%a@.(II=%d, MII=%d)@.@." Hcv_sched.Schedule.pp
              sched stats.Hcv_sched.Homo.ii stats.Hcv_sched.Homo.mii
          | Error msg -> Format.printf "%s: FAILED: %s@." loop.Loop.name msg)
        loops
  in
  Cmd.v
    (Cmd.info "schedule" ~doc:"Modulo-schedule the loops of a .loop file.")
    Term.(const run $ file $ buses $ machine_arg $ hetero)

(* ----- dot --------------------------------------------------------- *)

let dot_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let run file =
    let loops = or_die (load_loops file) in
    List.iter (fun loop -> print_string (Dot.of_loop loop)) loops
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Emit Graphviz DOT for the loops of a .loop file.")
    Term.(const run $ file)

(* ----- gen --------------------------------------------------------- *)

let gen_cmd =
  let bench = Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCH") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ]) in
  let n_loops = Arg.(value & opt (some int) None & info [ "loops" ]) in
  let run bench seed n_loops =
    match Specfp.find bench with
    | None -> or_die (Error (Printf.sprintf "unknown benchmark %S" bench))
    | Some spec ->
      print_string (Dsl.print_all (Specfp.loops ?n_loops ~seed spec))
  in
  Cmd.v
    (Cmd.info "gen"
       ~doc:"Generate a synthetic benchmark population as a .loop file.")
    Term.(const run $ bench $ seed $ n_loops)

(* ----- explore ------------------------------------------------------ *)

module E = Hcv_explore
module R = Hcv_resilience
module S = Hcv_serve

(* Cache recovery diagnostics (corrupt lines quarantined, directory
   unusable, ...) go to stderr; stdout stays the deterministic report. *)
let cache_warn d = Printf.eprintf "warning: %s\n%!" (Hcv_obs.Diag.to_string d)

(* Shared engine/cache lifecycle for every engine-backed subcommand
   (explore, fig7, chaos, serve): open the persistent cache with
   recovery warnings to stderr, create the engine, and guarantee
   worker join + cache close however [f] exits. *)
let with_engine ?cache_dir ?progress ~jobs f =
  let cache = Option.map (E.Cache.open_dir ~warn:cache_warn) cache_dir in
  let engine = E.Engine.create ~jobs ?cache ?progress () in
  Fun.protect
    ~finally:(fun () -> E.Engine.shutdown engine)
    (fun () -> f ~cache engine)

(* ----- observability flags (--trace / --metrics) ------------------- *)

let trace_arg =
  Arg.(
    value & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write the run's span tree to $(docv) as JSONL: one object per \
           span in pre-order, with an explicit depth.  Wall-clock \
           durations and volatile gauges come last in each object so \
           they can be stripped mechanically; everything before them is \
           byte-identical for any --jobs value and cache state.")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "Print the span/counter table to stderr when the run completes.")

(* Run [f] under a collecting root span when --trace or --metrics asked
   for one, under the free null span otherwise (the zero-cost-when-off
   contract).  The metrics table goes to stderr so the deterministic
   stdout of the figures stays untouched. *)
let with_obs ~trace ~metrics name f =
  if trace = None && not metrics then f Hcv_obs.Trace.null
  else begin
    let sp = Hcv_obs.Trace.root name in
    let r = f sp in
    (match Hcv_obs.Trace.export sp with
    | None -> ()
    | Some node ->
      Option.iter
        (fun path -> E.Tracex.write_jsonl ~wall:true ~path node)
        trace;
      if metrics then begin
        Hcv_obs.Metrics.print Format.err_formatter node;
        Format.pp_print_flush Format.err_formatter ()
      end);
    r
  end

(* Parallel, memoised design-space exploration over the synthetic
   SPECfp population: every (benchmark, machine variant) cell runs the
   full profile/select/schedule pipeline on the Hcv_explore engine.
   With --cache the completed cells persist to disk, so a repeated run
   — or --resume after an interruption — only computes what is
   missing; results are reassembled in submission order, making the
   output independent of --jobs and of the cache state. *)
let explore_cmd =
  let bench_arg =
    Arg.(
      value & pos_all string [ "all" ]
      & info [] ~docv:"BENCHMARK"
          ~doc:"Benchmarks to explore (default: the whole population).")
  in
  let buses =
    Arg.(value & opt int 1 & info [ "buses" ] ~doc:"Number of register buses.")
  in
  let n_loops =
    Arg.(
      value & opt (some int) None
      & info [ "loops" ] ~doc:"Loops per benchmark (default: per-spec).")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Workload seed.") in
  let steps =
    Arg.(
      value & opt (some int) None
      & info [ "steps" ]
          ~doc:"Frequency-grid steps (default: unrestricted frequencies).")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:"Worker domains for the sweep (1 = serial; the result is \
                identical for any value).")
  in
  let cache =
    Arg.(
      value & opt (some string) None
      & info [ "cache" ] ~docv:"DIR"
          ~doc:"Persist completed cells to $(docv)/cache.jsonl and reuse \
                them on later runs.")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:"Resume an interrupted sweep from --cache: report how many \
                cells were recovered, compute only the rest.")
  in
  let compact =
    Arg.(
      value & flag
      & info [ "compact-cache" ]
          ~doc:"After the sweep, rewrite --cache's file as one \
                integrity-checked record per live entry (atomic \
                write-temp-then-rename), dropping superseded duplicates, \
                corrupt lines and any torn tail.")
  in
  let csv =
    Arg.(
      value & opt (some string) None
      & info [ "csv" ] ~docv:"FILE"
          ~doc:"Append per-stage telemetry (cells, hits, wall clock) to \
                $(docv).")
  in
  let show_config =
    Arg.(
      value & flag
      & info [ "show-config" ]
          ~doc:"Also print each benchmark's selected heterogeneous \
                configuration.")
  in
  let run benches buses machine n_loops seed steps jobs cache resume compact
      csv show_config trace metrics =
    setup_logs ();
    if resume && cache = None then
      or_die (Error "--resume needs --cache DIR");
    if compact && cache = None then
      or_die (Error "--compact-cache needs --cache DIR");
    let machine = machine_sel_of_spec machine in
    let names =
      if List.mem "all" benches then
        List.map (fun s -> s.Specfp.name) Specfp.all
      else benches
    in
    List.iter
      (fun n ->
        if Specfp.find n = None then
          or_die (Error (Printf.sprintf "unknown benchmark %S" n)))
      names;
    let cells =
      List.map
        (fun name ->
          Sweep.cell ~buses ?n_loops ~seed ?grid_steps:steps ~machine name)
        names
    in
    let progress = E.Progress.create ~verbose:true ?csv () in
    with_engine ?cache_dir:cache ~progress ~jobs
      (fun ~cache engine ->
        (match (cache, resume) with
        | Some c, true ->
          Printf.eprintf "resuming: %d completed cells on disk\n%!"
            (E.Cache.stats c).E.Cache.entries
        | _, _ -> ());
        let loops_of (c : Sweep.cell) =
          Specfp.loops ?n_loops:c.Sweep.n_loops ~seed:c.Sweep.seed
            (Option.get (Specfp.find c.Sweep.bench))
        in
        let outcomes =
          with_obs ~trace ~metrics "explore" (fun obs ->
              Sweep.run engine ~label:"explore" ~obs ~loops_of cells)
        in
        let t =
          Tablefmt.create
            [
              ("benchmark", Tablefmt.Left);
              ("ED2 ratio", Tablefmt.Right);
              ("time ratio", Tablefmt.Right);
              ("energy ratio", Tablefmt.Right);
              ("fallbacks", Tablefmt.Right);
            ]
        in
        let ok =
          List.filter
            (fun (o : Sweep.outcome) ->
              match o.Sweep.error with
              | None -> true
              | Some msg ->
                Printf.printf "  !! %s failed: %s\n%!" o.Sweep.bench msg;
                false)
            outcomes
        in
        List.iter
          (fun (o : Sweep.outcome) ->
            Tablefmt.add_row t
              [
                o.Sweep.bench;
                Tablefmt.cell_f o.Sweep.ed2_ratio;
                Tablefmt.cell_f o.Sweep.time_ratio;
                Tablefmt.cell_f o.Sweep.energy_ratio;
                string_of_int o.Sweep.fallbacks;
              ])
          ok;
        if ok <> [] then begin
          Tablefmt.add_sep t;
          Tablefmt.add_row t
            [
              "mean";
              Tablefmt.cell_f
                (Listx.mean
                   (List.map (fun (o : Sweep.outcome) -> o.Sweep.ed2_ratio) ok));
              "-"; "-"; "-";
            ]
        end;
        Tablefmt.print t;
        if show_config then
          List.iter
            (fun (o : Sweep.outcome) ->
              let machine =
                Sweep.machine_of_cell
                  (Sweep.cell ~buses ?n_loops ~seed ?grid_steps:steps
                     o.Sweep.bench)
              in
              match Sweep.choice_of_string ~machine o.Sweep.hetero with
              | Some choice ->
                Format.printf "@.%s:@.%a@." o.Sweep.bench Select.pp_choice
                  choice
              | None -> ())
            ok;
        (match cache with
        | Some c ->
          let s = E.Cache.stats c in
          Printf.eprintf "cache: %d hits, %d misses, %d entries\n%!"
            s.E.Cache.hits s.E.Cache.misses s.E.Cache.entries;
          if compact then (
            match E.Cache.compact c with
            | Ok n -> Printf.eprintf "cache: compacted to %d records\n%!" n
            | Error d -> cache_warn d)
        | None -> ()))
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Explore the design space over the benchmark population on a \
          parallel worker pool, with a persistent result cache and \
          checkpoint/resume.")
    Term.(
      const run $ bench_arg $ buses $ machine_arg $ n_loops $ seed $ steps
      $ jobs $ cache $ resume $ compact $ csv $ show_config $ trace_arg
      $ metrics_arg)

(* ----- fig7: the paper's Figure 7 through the staged pipeline ------- *)

let fig7_cmd =
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ]
          ~doc:
            "Small variant: 1 bus, 6 loops per benchmark (the \
             golden-pinned configuration).")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:"Worker domains for the sweep (1 = serial; stdout and the \
                deterministic trace are identical for any value).")
  in
  let cache =
    Arg.(
      value & opt (some string) None
      & info [ "cache" ] ~docv:"DIR"
          ~doc:"Persist completed cells to $(docv) and reuse them on later \
                runs (each cell's trace rides the cache, so warm and cold \
                runs emit the same spans).")
  in
  let run quick jobs cache trace metrics =
    setup_logs ();
    let buses_list = if quick then [ 1 ] else [ 1; 2 ] in
    let n_loops = if quick then Some 6 else Some 10 in
    let steps_list = [ None; Some 16; Some 8; Some 4 ] in
    let cells =
      List.concat_map
        (fun buses ->
          List.concat_map
            (fun steps ->
              List.map
                (fun spec ->
                  Sweep.cell ~buses ?n_loops ~seed:42 ?grid_steps:steps
                    spec.Specfp.name)
                Specfp.all)
            steps_list)
        buses_list
    in
    with_engine ?cache_dir:cache ~jobs
      (fun ~cache:_ engine ->
        with_obs ~trace ~metrics "fig7" (fun obs ->
            let loops_of (c : Sweep.cell) =
              Specfp.loops ?n_loops:c.Sweep.n_loops ~seed:c.Sweep.seed
                (Option.get (Specfp.find c.Sweep.bench))
            in
            Printf.printf
              "Figure 7: mean ED2 ratio vs number of supported frequencies\n%!";
            let outcomes =
              ref (Sweep.run engine ~label:"fig7" ~obs ~loops_of cells)
            in
            let n_specs = List.length Specfp.all in
            let next_group () =
              let g = Listx.take n_specs !outcomes in
              outcomes := Listx.drop n_specs !outcomes;
              g
            in
            let t =
              Tablefmt.create
                [
                  ("buses", Tablefmt.Right);
                  ("any freq", Tablefmt.Right);
                  ("16 freqs", Tablefmt.Right);
                  ("8 freqs", Tablefmt.Right);
                  ("4 freqs", Tablefmt.Right);
                ]
            in
            List.iter
              (fun buses ->
                let row =
                  List.map
                    (fun _steps ->
                      let ok =
                        List.filter
                          (fun (o : Sweep.outcome) -> o.Sweep.error = None)
                          (next_group ())
                      in
                      Tablefmt.cell_f
                        (Listx.mean
                           (List.map
                              (fun (o : Sweep.outcome) -> o.Sweep.ed2_ratio)
                              ok)))
                    steps_list
                in
                Tablefmt.add_row t (string_of_int buses :: row))
              buses_list;
            Tablefmt.print t))
  in
  Cmd.v
    (Cmd.info "fig7"
       ~doc:
         "Reproduce the paper's Figure 7 (mean ED2 ratio vs number of \
          supported frequencies) through the staged pipeline, with \
          per-stage span tracing (--trace) and counters (--metrics).")
    Term.(const run $ quick $ jobs $ cache $ trace_arg $ metrics_arg)

(* ----- frontier: multi-objective Pareto selection ------------------- *)

(* Same engine-backed sweep as explore, but each cell also runs the
   optional frontier stage: the §3.3 selection sweep folded into a
   Pareto frontier over {time, energy, ED2, EDP, power}.  Stdout is the
   fig7-style regime report; --csv dumps the member vectors.  Both are
   byte-identical for any --jobs value and cache state. *)
let frontier_cmd =
  let bench_arg =
    Arg.(
      value & pos_all string [ "all" ]
      & info [] ~docv:"BENCHMARK"
          ~doc:"Benchmarks to sweep (default: the whole population).")
  in
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ]
          ~doc:"Small variant: 1 bus, 6 loops per benchmark (the \
                golden-pinned configuration).")
  in
  let objectives =
    Arg.(
      value & opt (some string) None
      & info [ "objectives" ] ~docv:"LIST"
          ~doc:"Comma-separated objective set (subset of \
                time,energy,ed2,edp,power; default: all five).")
  in
  let caps =
    Arg.(
      value & opt_all string []
      & info [ "cap" ] ~docv:"OBJ<=BOUND"
          ~doc:"Feasibility constraint, e.g. --cap 'energy<=2.5e4' for \
                the fastest point under an energy cap or --cap \
                'time<=1.2e5' for the lowest energy under a deadline.  \
                Repeatable.")
  in
  let buses =
    Arg.(value & opt int 1 & info [ "buses" ] ~doc:"Number of register buses.")
  in
  let n_loops =
    Arg.(
      value & opt (some int) None
      & info [ "loops" ] ~doc:"Loops per benchmark (default: per-spec).")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Workload seed.") in
  let steps =
    Arg.(
      value & opt (some int) None
      & info [ "steps" ]
          ~doc:"Frequency-grid steps (default: unrestricted frequencies).")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:"Worker domains for the sweep (1 = serial; the output is \
                identical for any value).")
  in
  let cache =
    Arg.(
      value & opt (some string) None
      & info [ "cache" ] ~docv:"DIR"
          ~doc:"Persist completed cells to $(docv) and reuse them on later \
                runs (frontier cells share the directory with explore/fig7 \
                cells without colliding).")
  in
  let csv =
    Arg.(
      value & opt (some string) None
      & info [ "csv" ] ~docv:"FILE"
          ~doc:"Write the frontier members as CSV to $(docv) ('-' for \
                stdout, before the report).")
  in
  let schedule_corner =
    Arg.(
      value & opt (some string) None
      & info [ "schedule-corner" ] ~docv:"OBJ"
          ~doc:"After the sweep, take each benchmark's frontier corner \
                minimising $(docv) (one of time,energy,ed2,edp,power) and \
                schedule it through the full pipeline, reporting the \
                measured — not predicted — activity, model ED2 and \
                fallback count.")
  in
  let parse_spec objectives caps =
    let objectives =
      match objectives with
      | None -> Hcv_core.Frontier.all_objectives
      | Some s ->
        List.map
          (fun name ->
            let name = String.trim name in
            match Hcv_core.Frontier.objective_of_string name with
            | Some o -> o
            | None ->
              or_die
                (Error
                   (Printf.sprintf
                      "unknown objective %S (one of time,energy,ed2,edp,power)"
                      name)))
          (String.split_on_char ',' s)
    in
    if objectives = [] then or_die (Error "--objectives is empty");
    let caps =
      List.map
        (fun s ->
          match Hcv_core.Frontier.cap_of_string s with
          | Ok c -> c
          | Error msg -> or_die (Error msg))
        caps
    in
    Hcv_core.Frontier.spec ~objectives ~caps ()
  in
  let run benches quick objectives caps buses n_loops seed steps jobs cache
      csv schedule_corner trace metrics =
    setup_logs ();
    let spec = parse_spec objectives caps in
    let corner_obj =
      Option.map
        (fun name ->
          match Hcv_core.Frontier.objective_of_string (String.trim name) with
          | Some o -> o
          | None ->
            or_die
              (Error
                 (Printf.sprintf
                    "unknown objective %S (one of time,energy,ed2,edp,power)"
                    name)))
        schedule_corner
    in
    let buses = if quick then 1 else buses in
    let n_loops = if quick then Some 6 else n_loops in
    let names =
      if List.mem "all" benches then
        List.map (fun s -> s.Specfp.name) Specfp.all
      else benches
    in
    List.iter
      (fun n ->
        if Specfp.find n = None then
          or_die (Error (Printf.sprintf "unknown benchmark %S" n)))
      names;
    let cells =
      List.map
        (fun name ->
          Sweep.cell ~buses ?n_loops ~seed ?grid_steps:steps ~frontier:spec
            name)
        names
    in
    with_engine ?cache_dir:cache ~jobs (fun ~cache:_ engine ->
        let loops_of (c : Sweep.cell) =
          Specfp.loops ?n_loops:c.Sweep.n_loops ~seed:c.Sweep.seed
            (Option.get (Specfp.find c.Sweep.bench))
        in
        let outcomes =
          with_obs ~trace ~metrics "frontier" (fun obs ->
              Sweep.run engine ~label:"frontier" ~obs ~loops_of cells)
        in
        let fronts =
          List.filter_map
            (fun ((c : Sweep.cell), (o : Sweep.outcome)) ->
              match o.Sweep.error with
              | Some msg ->
                Printf.printf "  !! %s failed: %s\n%!" o.Sweep.bench msg;
                None
              | None ->
                let machine = Sweep.machine_of_cell c in
                let choices =
                  List.filter_map
                    (Sweep.choice_of_string ~machine)
                    o.Sweep.frontier
                in
                Some
                  (o.Sweep.bench, Frontier_report.rebuild ~spec choices))
            (List.combine cells outcomes)
        in
        (match csv with
        | None -> ()
        | Some path ->
          let lines =
            Frontier_report.csv_header
            :: List.concat_map
                 (fun (bench, f) -> Frontier_report.csv_rows ~bench f)
                 fronts
          in
          let body = String.concat "\n" lines ^ "\n" in
          if path = "-" then print_string body
          else begin
            let oc = open_out path in
            Fun.protect
              ~finally:(fun () -> close_out oc)
              (fun () -> output_string oc body)
          end);
        Format.printf "%a@?" Frontier_report.pp_report fronts;
        (* --schedule-corner: run the chosen non-ED2 corner through the
           actual scheduler, so the report shows measured behaviour, not
           just the selection model's predictions. *)
        match corner_obj with
        | None -> ()
        | Some obj ->
          let t =
            Tablefmt.create
              ~title:
                (Printf.sprintf "scheduled min-%s corner (measured)"
                   (Frontier.objective_name obj))
              [
                ("benchmark", Tablefmt.Left);
                ("predicted ED2", Tablefmt.Right);
                ("measured ED2", Tablefmt.Right);
                ("time ns", Tablefmt.Right);
                ("energy", Tablefmt.Right);
                ("fallbacks", Tablefmt.Right);
              ]
          in
          List.iter
            (fun (bench, front) ->
              match Frontier.min_by front obj with
              | None -> ()
              | Some corner -> (
                let choice = corner.Frontier.item in
                let machine =
                  Sweep.machine_of_cell
                    (Sweep.cell ~buses ?n_loops ~seed ?grid_steps:steps
                       ~frontier:spec bench)
                in
                let loops =
                  Specfp.loops ?n_loops ~seed
                    (Option.get (Specfp.find bench))
                in
                match Profile.profile ~machine ~loops () with
                | Error d ->
                  Printf.printf "  !! %s: %s\n%!" bench
                    (Hcv_obs.Diag.to_string d)
                | Ok profile ->
                  let units =
                    Units.of_reference ~params:Params.default
                      ~n_clusters:(Machine.n_clusters machine)
                      profile.Profile.activity
                  in
                  let ctx = Model.ctx ~params:Params.default ~units () in
                  let act, ed2, n_causes =
                    Pipeline.measure_config ~ctx ~machine ~profile
                      ~config:choice.Select.config ()
                  in
                  let energy =
                    Model.total
                      (Model.energy ctx ~config:choice.Select.config act)
                  in
                  Tablefmt.add_row t
                    [
                      bench;
                      Tablefmt.cell_f choice.Select.predicted_ed2;
                      Tablefmt.cell_f ed2;
                      Tablefmt.cell_f act.Activity.exec_time_ns;
                      Tablefmt.cell_f energy;
                      string_of_int n_causes;
                    ]))
            fronts;
          Tablefmt.print t)
  in
  Cmd.v
    (Cmd.info "frontier"
       ~doc:
         "Compute the Pareto frontier of the configuration-selection \
          sweep per benchmark (objectives over time/energy/ED2/EDP/power \
          with optional caps) and report the objective regimes; the ED2 \
          corner is exactly the paper's scalarised selection.")
    Term.(
      const run $ bench_arg $ quick $ objectives $ caps $ buses $ n_loops
      $ seed $ steps $ jobs $ cache $ csv $ schedule_corner $ trace_arg
      $ metrics_arg)

(* ----- families: sweep the named asymmetric machine families -------- *)

(* The capability-heterogeneity counterpart of explore: the same
   engine-backed sweep, fanned out over the named machine families
   (with the paper machine riding along as the symmetric baseline), so
   the normalised ratios are directly comparable across cluster
   mixes. *)
let families_cmd =
  let bench_arg =
    Arg.(
      value & pos_all string [ "all" ]
      & info [] ~docv:"BENCHMARK"
          ~doc:"Benchmarks to sweep (default: the whole population).")
  in
  let buses =
    Arg.(value & opt int 1 & info [ "buses" ] ~doc:"Number of register buses.")
  in
  let n_loops =
    Arg.(
      value & opt (some int) None
      & info [ "loops" ] ~doc:"Loops per benchmark (default: per-spec).")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Workload seed.") in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:"Worker domains for the sweep (1 = serial; the output is \
                identical for any value).")
  in
  let cache =
    Arg.(
      value & opt (some string) None
      & info [ "cache" ] ~docv:"DIR"
          ~doc:"Persist completed cells to $(docv) and reuse them on later \
                runs (family cells share the directory with explore/fig7 \
                cells without colliding).")
  in
  let run benches buses n_loops seed jobs cache trace metrics =
    setup_logs ();
    let names =
      if List.mem "all" benches then
        List.map (fun s -> s.Specfp.name) Specfp.all
      else benches
    in
    List.iter
      (fun n ->
        if Specfp.find n = None then
          or_die (Error (Printf.sprintf "unknown benchmark %S" n)))
      names;
    let machines =
      ("paper", Sweep.Paper)
      :: List.map (fun f -> (f, Sweep.Family f)) Family.names
    in
    let cells =
      List.concat_map
        (fun (_, sel) ->
          List.map
            (fun name -> Sweep.cell ~buses ?n_loops ~seed ~machine:sel name)
            names)
        machines
    in
    with_engine ?cache_dir:cache ~jobs (fun ~cache:_ engine ->
        let loops_of (c : Sweep.cell) =
          Specfp.loops ?n_loops:c.Sweep.n_loops ~seed:c.Sweep.seed
            (Option.get (Specfp.find c.Sweep.bench))
        in
        let outcomes =
          ref
            (with_obs ~trace ~metrics "families" (fun obs ->
                 Sweep.run engine ~label:"families" ~obs ~loops_of cells))
        in
        let n_benches = List.length names in
        let next_group () =
          let g = Listx.take n_benches !outcomes in
          outcomes := Listx.drop n_benches !outcomes;
          g
        in
        let t =
          Tablefmt.create
            ~title:"machine families: normalised ratios per benchmark"
            [
              ("machine", Tablefmt.Left);
              ("benchmark", Tablefmt.Left);
              ("ED2 ratio", Tablefmt.Right);
              ("time ratio", Tablefmt.Right);
              ("energy ratio", Tablefmt.Right);
              ("fallbacks", Tablefmt.Right);
            ]
        in
        List.iteri
          (fun gi (label, _) ->
            if gi > 0 then Tablefmt.add_sep t;
            let ok =
              List.filter
                (fun (o : Sweep.outcome) ->
                  match o.Sweep.error with
                  | None -> true
                  | Some msg ->
                    Printf.printf "  !! %s/%s failed: %s\n%!" label
                      o.Sweep.bench msg;
                    false)
                (next_group ())
            in
            List.iter
              (fun (o : Sweep.outcome) ->
                Tablefmt.add_row t
                  [
                    label;
                    o.Sweep.bench;
                    Tablefmt.cell_f o.Sweep.ed2_ratio;
                    Tablefmt.cell_f o.Sweep.time_ratio;
                    Tablefmt.cell_f o.Sweep.energy_ratio;
                    string_of_int o.Sweep.fallbacks;
                  ])
              ok;
            if ok <> [] then
              Tablefmt.add_row t
                [
                  label;
                  "mean";
                  Tablefmt.cell_f
                    (Listx.mean
                       (List.map
                          (fun (o : Sweep.outcome) -> o.Sweep.ed2_ratio)
                          ok));
                  "-"; "-"; "-";
                ])
          machines;
        Tablefmt.print t)
  in
  Cmd.v
    (Cmd.info "families"
       ~doc:
         "Sweep the named capability-asymmetric machine families \
          (big-little, fp-heavy, scalar-satellite) plus the paper's \
          symmetric machine over the benchmark population and report \
          normalised ED2/time/energy per (machine, benchmark) pair.")
    Term.(
      const run $ bench_arg $ buses $ n_loops $ seed $ jobs $ cache
      $ trace_arg $ metrics_arg)

(* ----- chaos: fault-injection drill for the exploration stack ------- *)

(* Three sweeps over the same cells: a fault-free baseline, a run under
   an armed fault plan (task raises, torn cache writes, slowed
   workers), and a recovery run warm-started from the faulted run's
   cache.  The engine's supervision and the cache's recovery make all
   three reports byte-identical; this command asserts exactly that, so
   CI can drill the resilience machinery end to end. *)
let chaos_cmd =
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Fault-plan seed.")
  in
  let jobs =
    Arg.(
      value & opt int 2
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:"Worker domains (faults fire on workers too).")
  in
  let n_loops =
    Arg.(
      value & opt int 4
      & info [ "loops" ] ~doc:"Loops per benchmark (small keeps the drill \
                               fast).")
  in
  let log =
    Arg.(
      value & opt (some string) None
      & info [ "log" ] ~docv:"FILE"
          ~doc:"Append one JSON record per armed fault point (its firing \
                count) to $(docv) (JSONL).")
  in
  let run seed jobs n_loops log trace metrics =
    setup_logs ();
    let cells =
      List.map
        (fun (s : Specfp.spec) -> Sweep.cell ~buses:1 ~n_loops ~seed:42 s.Specfp.name)
        Specfp.all
    in
    let loops_of (c : Sweep.cell) =
      Specfp.loops ?n_loops:c.Sweep.n_loops ~seed:c.Sweep.seed
        (Option.get (Specfp.find c.Sweep.bench))
    in
    (* One rendered report per sweep; byte-compared below. *)
    let render tag ~cache_dir obs =
      with_engine ~cache_dir ~jobs
        (fun ~cache:_ engine ->
          let outcomes = Sweep.run engine ~label:tag ~obs ~loops_of cells in
          let t =
            Tablefmt.create
              [
                ("benchmark", Tablefmt.Left);
                ("ED2 ratio", Tablefmt.Right);
                ("time ratio", Tablefmt.Right);
                ("energy ratio", Tablefmt.Right);
                ("fallbacks", Tablefmt.Right);
                ("error", Tablefmt.Left);
              ]
          in
          List.iter
            (fun (o : Sweep.outcome) ->
              Tablefmt.add_row t
                [
                  o.Sweep.bench;
                  Tablefmt.cell_f o.Sweep.ed2_ratio;
                  Tablefmt.cell_f o.Sweep.time_ratio;
                  Tablefmt.cell_f o.Sweep.energy_ratio;
                  string_of_int o.Sweep.fallbacks;
                  Option.value o.Sweep.error ~default:"-";
                ])
            outcomes;
          Tablefmt.render t)
    in
    let base =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "hcvliw-chaos-%d-%d" (Unix.getpid ()) seed)
    in
    let dir_a = Filename.concat base "baseline" in
    let dir_b = Filename.concat base "faulted" in
    (* Remove whatever the drill left behind, whole tree — not a fixed
       file list, so renamed cache artefacts can't strand a directory. *)
    let cleanup () =
      let rec rm path =
        match Sys.is_directory path with
        | true ->
          Array.iter (fun f -> rm (Filename.concat path f)) (Sys.readdir path);
          (try Sys.rmdir path with Sys_error _ -> ())
        | false -> ( try Sys.remove path with Sys_error _ -> ())
        | exception Sys_error _ -> ()
      in
      rm base
    in
    cleanup ();
    (* [exit] does not unwind [Fun.protect], so the protected region
       only reports divergence; the process exits after cleanup ran. *)
    let ok =
      Fun.protect ~finally:cleanup (fun () ->
        with_obs ~trace ~metrics "chaos" (fun obs ->
            let baseline = render "chaos-baseline" ~cache_dir:dir_a obs in
            (* Transient task raises stay under the retry policy's spare
               attempts, so supervision must recover every one; torn
               writes only damage the disk file, never the report. *)
            let plan =
              R.Inject.plan ~seed
                [
                  R.Inject.spec ~max_fires:2 R.Inject.Task_raise;
                  R.Inject.spec ~max_fires:3 R.Inject.Torn_write;
                  R.Inject.spec ~max_fires:4 R.Inject.Slow_cell;
                ]
            in
            let faulted =
              R.Inject.with_plan plan (fun () ->
                  render "chaos-faulted" ~cache_dir:dir_b obs)
            in
            (* Recovery: reopen the faulted run's cache (quarantining
               its torn lines) and re-sweep warm. *)
            let recovered = render "chaos-recovered" ~cache_dir:dir_b obs in
            Printf.eprintf "chaos: injected%s\n%!"
              (String.concat ""
                 (List.map
                    (fun (p, n) ->
                      Printf.sprintf " %s=%d" (R.Inject.point_name p) n)
                    (R.Inject.fires plan)));
            (match log with
            | None -> ()
            | Some path ->
              let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
              List.iter
                (fun (p, n) ->
                  output_string oc
                    (E.Jsonx.to_string
                       (E.Jsonx.Obj
                          [
                            ("seed", E.Jsonx.Num (float_of_int seed));
                            ("point", E.Jsonx.Str (R.Inject.point_name p));
                            ("fires", E.Jsonx.Num (float_of_int n));
                          ]));
                  output_char oc '\n')
                (R.Inject.fires plan);
              close_out oc);
            print_string baseline;
            let ok_faulted = String.equal baseline faulted in
            let ok_recovered = String.equal baseline recovered in
            if ok_faulted && ok_recovered then
              Printf.eprintf
                "chaos: faulted and recovered reports byte-identical to the \
                 fault-free run\n%!"
            else begin
              if not ok_faulted then
                Printf.eprintf
                  "chaos: FAULTED report diverged from the baseline\n%!";
              if not ok_recovered then
                Printf.eprintf
                  "chaos: RECOVERED report diverged from the baseline\n%!"
            end;
            ok_faulted && ok_recovered))
    in
    if not ok then exit 1
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Drill the resilience machinery: sweep the benchmark population \
          fault-free, again under a seeded fault-injection plan (task \
          raises, torn cache writes, slowed workers), then once more warm \
          from the damaged cache — and assert all three reports are \
          byte-identical.")
    Term.(const run $ seed $ jobs $ n_loops $ log $ trace_arg $ metrics_arg)

(* ----- serve / loadgen: the scheduling-as-a-service plane ----------- *)

let socket_arg =
  Arg.(
    value & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket path (exactly one of --socket/--tcp).")

let tcp_arg =
  Arg.(
    value & opt (some string) None
    & info [ "tcp" ] ~docv:"HOST:PORT" ~doc:"TCP endpoint.")

let parse_tcp hp =
  match String.rindex_opt hp ':' with
  | None -> Error (Printf.sprintf "bad endpoint %S (want HOST:PORT)" hp)
  | Some i -> (
    let host = String.sub hp 0 i in
    match int_of_string_opt (String.sub hp (i + 1) (String.length hp - i - 1)) with
    | Some port when port > 0 -> Ok (host, port)
    | _ -> Error (Printf.sprintf "bad endpoint %S (want HOST:PORT)" hp))

let sockaddr_of ~socket ~tcp =
  match (socket, tcp) with
  | Some p, None -> Unix.ADDR_UNIX p
  | None, Some hp ->
    let host, port = or_die (parse_tcp hp) in
    let addr =
      try (Unix.gethostbyname host).Unix.h_addr_list.(0)
      with Not_found -> Unix.inet_addr_of_string host
    in
    Unix.ADDR_INET (addr, port)
  | _ -> or_die (Error "exactly one of --socket or --tcp is required")

let serve_cmd =
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:"Worker domains shared by every request (responses are \
                identical for any value).")
  in
  let cache =
    Arg.(
      value & opt (some string) None
      & info [ "cache" ] ~docv:"DIR"
          ~doc:"Serve from (and warm) the persistent result cache in \
                $(docv) — the same cache the explore/fig7 sweeps use.")
  in
  let batch_max =
    Arg.(
      value & opt int 256
      & info [ "batch-max" ] ~docv:"N"
          ~doc:"Cap on run requests dispatched as one engine fan-out.")
  in
  let max_requests =
    Arg.(
      value & opt (some int) None
      & info [ "max-requests" ] ~docv:"N"
          ~doc:"Drain and exit after answering $(docv) requests (CI smoke \
                mode).")
  in
  let default_deadline_ms =
    Arg.(
      value & opt (some int) None
      & info [ "default-deadline-ms" ] ~docv:"MS"
          ~doc:"Server-side deadline compiled onto every run request that \
                does not carry its own deadline_ms (default: none).")
  in
  let idle_timeout =
    Arg.(
      value & opt float 300.
      & info [ "idle-timeout" ] ~docv:"SECONDS"
          ~doc:"Close connections idle for $(docv) seconds.")
  in
  let slow_timeout =
    Arg.(
      value & opt float 10.
      & info [ "slow-timeout" ] ~docv:"SECONDS"
          ~doc:"Close connections whose request line fails to complete \
                within $(docv) seconds (slowloris defence).")
  in
  let max_pending =
    Arg.(
      value & opt int 512
      & info [ "max-pending" ] ~docv:"N"
          ~doc:"Per-connection backlog cap: complete request lines beyond \
                $(docv) are answered with structured overloaded errors.")
  in
  let max_out =
    Arg.(
      value & opt int (8 lsl 20)
      & info [ "max-out" ] ~docv:"BYTES"
          ~doc:"Close a connection whose unread response backlog exceeds \
                $(docv) bytes (slow-reader defence).")
  in
  let drain_grace =
    Arg.(
      value & opt float 5.
      & info [ "drain-grace" ] ~docv:"SECONDS"
          ~doc:"Bound on the graceful drain after shutdown/--max-requests.")
  in
  let run socket tcp jobs cache batch_max max_requests default_deadline_ms
      idle_timeout slow_timeout max_pending max_out drain_grace trace metrics =
    setup_logs ();
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let listen =
      match (socket, tcp) with
      | Some p, None -> (
        try S.Server.listen_unix p
        with Failure msg -> or_die (Error msg))
      | None, Some hp ->
        let host, port = or_die (parse_tcp hp) in
        S.Server.listen_tcp ~host ~port
      | _ -> or_die (Error "exactly one of --socket or --tcp is required")
    in
    with_engine ?cache_dir:cache ~jobs (fun ~cache:_ engine ->
        let dispatch = S.Dispatch.create ?default_deadline_ms engine in
        let server =
          S.Server.create ~batch_max ?max_requests
            ~idle_timeout_s:idle_timeout ~slow_timeout_s:slow_timeout
            ~max_pending ~max_out ~drain_grace_s:drain_grace ~dispatch listen
        in
        Printf.eprintf "serve: listening (%d worker%s)\n%!" jobs
          (if jobs = 1 then "" else "s");
        with_obs ~trace ~metrics "serve" (fun obs ->
            S.Server.run ~obs server);
        Printf.eprintf "serve: answered %d requests (%d errors, %d shed)\n%!"
          (S.Dispatch.served dispatch)
          (S.Dispatch.errors dispatch)
          (S.Dispatch.shed dispatch));
    (* The daemon owns its socket file; leave no stale one behind. *)
    Option.iter
      (fun p -> try Sys.remove p with Sys_error _ -> ())
      socket
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the scheduling daemon: accept JSONL explore/schedule \
          requests over a Unix or TCP socket, batch concurrent requests \
          onto one shared worker pool and one warm persistent cache, and \
          answer each with a structured (byte-deterministic) response \
          line.  Overload protection: per-request deadlines, bounded \
          backlogs with deterministic shedding, idle/slowloris timeouts \
          and graceful drain.")
    Term.(
      const run $ socket_arg $ tcp_arg $ jobs $ cache $ batch_max
      $ max_requests $ default_deadline_ms $ idle_timeout $ slow_timeout
      $ max_pending $ max_out $ drain_grace $ trace_arg $ metrics_arg)

let loadgen_cmd =
  let requests =
    Arg.(
      value & opt int 50
      & info [ "requests" ] ~docv:"N" ~doc:"Requests to issue.")
  in
  let concurrency =
    Arg.(
      value & opt int 4
      & info [ "concurrency" ] ~docv:"K"
          ~doc:"Concurrent client connections (round-robin request split).")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Request-stream seed.")
  in
  let n_loops =
    Arg.(
      value & opt int 2
      & info [ "loops" ] ~doc:"Loops per benchmark in explore requests.")
  in
  let mix =
    Arg.(
      value
      & opt (enum [ ("clean", S.Load.Clean); ("full", S.Load.Full) ])
          S.Load.Full
      & info [ "mix" ] ~docv:"MIX"
          ~doc:"Request mix: $(b,clean) (well-formed only) or $(b,full) \
                (adds malformed and strict-budget requests).")
  in
  let transcript =
    Arg.(
      value & opt (some string) None
      & info [ "transcript" ] ~docv:"FILE"
          ~doc:"Write one \"INDEX\\tRESPONSE\" line per request, sorted by \
                issue index — byte-comparable across runs.")
  in
  let json =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the requests/s + latency summary to $(docv) instead \
                of stdout.")
  in
  let shutdown =
    Arg.(
      value & flag
      & info [ "shutdown" ]
          ~doc:"Send a shutdown request to the daemon when done.")
  in
  let deadline_ms =
    Arg.(
      value & opt (some int) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:"Stamp every generated request with this deadline_ms \
                (0 is the fast-fail probe).")
  in
  let run socket tcp requests concurrency seed n_loops mix transcript json
      shutdown deadline_ms =
    setup_logs ();
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let addr = sockaddr_of ~socket ~tcp in
    let connect () =
      let fd =
        Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0
      in
      (try Unix.connect fd addr
       with Unix.Unix_error (e, _, _) ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         or_die
           (Error
              (Printf.sprintf "cannot connect to the daemon: %s"
                 (Unix.error_message e))));
      fd
    in
    let lines = S.Load.requests ~mix ~n_loops ~seed requests in
    let lines =
      match deadline_ms with
      | None -> lines
      | Some ms -> List.map (S.Load.with_deadline ms) lines
    in
    let numbered = List.mapi (fun i l -> (i, l)) lines in
    let concurrency = max 1 concurrency in
    let chunks =
      List.init concurrency (fun w ->
          List.filter (fun (i, _) -> i mod concurrency = w) numbered)
    in
    (* One connection per worker; requests on a connection are issued
       synchronously so per-request latency is honest.  A connection
       the daemon closed mid-chunk marks its remaining requests as
       transport errors instead of killing the whole run. *)
    let run_chunk chunk =
      if chunk = [] then []
      else begin
        let fd = connect () in
        Fun.protect
          ~finally:(fun () ->
            try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            let ic = Unix.in_channel_of_descr fd in
            let oc = Unix.out_channel_of_descr fd in
            List.map
              (fun (i, line) ->
                let t0 = Unix.gettimeofday () in
                match
                  output_string oc line;
                  output_char oc '\n';
                  flush oc;
                  input_line ic
                with
                | resp ->
                  (Some ((Unix.gettimeofday () -. t0) *. 1e9), (i, Some resp))
                | exception (End_of_file | Sys_error _) -> (None, (i, None)))
              chunk)
      end
    in
    let pool = E.Pool.create ~jobs:concurrency () in
    let t0 = Unix.gettimeofday () in
    let per_chunk =
      Fun.protect
        ~finally:(fun () -> E.Pool.shutdown pool)
        (fun () -> E.Pool.map pool run_chunk chunks)
    in
    let wall_ns = (Unix.gettimeofday () -. t0) *. 1e9 in
    let all = List.concat per_chunk in
    (* Percentiles are computed over successfully answered requests
       only: a shed request or a dead connection is not a latency
       sample. *)
    let latencies_ns =
      List.filter_map
        (fun (lat, (_, resp)) ->
          match (lat, Option.map S.Load.classify resp) with
          | Some ns, Some S.Load.Ok_answer -> Some ns
          | _ -> None)
        all
    in
    let responses =
      List.sort
        (fun (i, _) (j, _) -> compare (i : int) j)
        (List.map snd all)
    in
    let ok, errors, shed, deadline_exceeded, transport =
      List.fold_left
        (fun (ok, err, shed, dl, tr) (_, resp) ->
          match Option.map S.Load.classify resp with
          | Some S.Load.Ok_answer -> (ok + 1, err, shed, dl, tr)
          | Some S.Load.Shed -> (ok, err + 1, shed + 1, dl, tr)
          | Some S.Load.Deadline_exceeded -> (ok, err + 1, shed, dl + 1, tr)
          | Some S.Load.Error_answer -> (ok, err + 1, shed, dl, tr)
          | None -> (ok, err, shed, dl, tr + 1))
        (0, 0, 0, 0, 0) responses
    in
    (match transcript with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      List.iter
        (fun (i, resp) ->
          Printf.fprintf oc "%06d\t%s\n" i
            (Option.value resp ~default:"#transport-error"))
        responses;
      close_out oc);
    if shutdown then begin
      let fd = connect () in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let ic = Unix.in_channel_of_descr fd in
          let oc = Unix.out_channel_of_descr fd in
          output_string oc "{\"id\":\"loadgen-shutdown\",\"op\":\"shutdown\"}\n";
          flush oc;
          ignore (input_line ic))
    end;
    let summary =
      E.Jsonx.to_string
        (S.Load.summary_json ~shed ~deadline_exceeded ~transport ~requests
           ~concurrency ~wall_ns ~ok ~errors ~latencies_ns ())
    in
    match json with
    | None -> print_endline summary
    | Some path ->
      let oc = open_out path in
      output_string oc summary;
      output_char oc '\n';
      close_out oc
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:
         "Drive a running daemon with a deterministic (seeded) request \
          stream over concurrent connections and report requests/s plus \
          p50/p99 latency; with --transcript, responses are written in \
          issue order for byte-comparison across runs.  Shed and \
          deadline-exceeded answers are tallied separately from \
          transport errors, and percentiles cover successfully answered \
          requests only.")
    Term.(
      const run $ socket_arg $ tcp_arg $ requests $ concurrency $ seed
      $ n_loops $ mix $ transcript $ json $ shutdown $ deadline_ms)

(* ----- soak: adversarial socket chaos drill for the serve plane ----- *)

(* The serve-plane counterpart of [chaos]: a fault-free sequential
   baseline answers the clean and deadline-zero request cohorts
   in-process, then a daemon hardened with deliberately small overload
   knobs serves the same cohorts concurrently while a seeded fault plan
   tears its reads and writes and adversarial personas (slowloris,
   mid-frame disconnect, oversize flood, pipelined burst) attack it.
   The drill asserts the daemon survives — every well-behaved request
   answered byte-identically to the baseline, the slowloris reaped, the
   burst shed with structured overloaded errors, and the final
   pipelined shutdown drained gracefully. *)
let soak_cmd =
  let seed =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~doc:"Fault-plan and request-stream seed.")
  in
  let requests =
    Arg.(
      value & opt int 24
      & info [ "requests" ] ~docv:"N"
          ~doc:"Well-behaved requests in the clean cohort.")
  in
  let concurrency =
    Arg.(
      value & opt int 4
      & info [ "concurrency" ] ~docv:"K"
          ~doc:"Concurrent well-behaved clients (round-robin split).")
  in
  let jobs =
    Arg.(
      value & opt int 2
      & info [ "jobs"; "j" ] ~docv:"N" ~doc:"Daemon worker domains.")
  in
  let n_loops =
    Arg.(
      value & opt int 2
      & info [ "loops" ] ~doc:"Loops per benchmark (small keeps the drill \
                               fast).")
  in
  let transcript =
    Arg.(
      value & opt (some string) None
      & info [ "transcript" ] ~docv:"FILE"
          ~doc:"Write every cohort answer (tab-separated, in issue order) \
                to $(docv) — the artefact CI uploads when the drill \
                fails.")
  in
  let run seed requests concurrency jobs n_loops transcript =
    setup_logs ();
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let concurrency = max 1 concurrency in
    let clean = S.Load.requests ~mix:S.Load.Clean ~n_loops ~seed requests in
    let dz =
      (* The fast-fail-probe cohort: deadline 0 compiles to the minimum
         budget, so these answer deterministically too (deadline-exceeded
         or a cheap success), and byte-identity covers the deadline
         path. *)
      List.map (S.Load.with_deadline 0)
        (S.Load.requests ~mix:S.Load.Clean ~n_loops ~seed:(seed + 1)
           (max 4 (requests / 4)))
    in
    (* Fault-free, sequential, serverless baseline: by the dispatcher's
       determinism contract these are the exact bytes every clean and
       deadline-zero request must get back under chaos. *)
    let expected_clean, expected_dz =
      with_engine ~jobs:1 (fun ~cache:_ engine ->
          let d = S.Dispatch.create engine in
          ( List.map (fun l -> S.Dispatch.handle_line d l) clean,
            List.map (fun l -> S.Dispatch.handle_line d l) dz ))
    in
    let path =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "hcvliw-soak-%d.sock" (Unix.getpid ()))
    in
    let cleanup () = try Sys.remove path with Sys_error _ -> () in
    cleanup ();
    let ok =
      Fun.protect ~finally:cleanup (fun () ->
          let listen =
            try S.Server.listen_unix path
            with Failure msg -> or_die (Error msg)
          in
          let max_line = 4096 in
          let max_pending = 4 in
          (* Server-side faults are granularity/timing perturbations
             only — torn 1-byte reads, 1-byte writes, brief stalls —
             which cannot change response bytes.  Conn_close stays
             unarmed here: it would reset well-behaved clients and void
             the identity assertion; peer resets are the disconnect
             persona's job. *)
          let plan =
            R.Inject.plan ~seed
              [
                R.Inject.spec ~prob:0.25 ~max_fires:max_int
                  R.Inject.Torn_frame;
                R.Inject.spec ~prob:0.2 ~max_fires:max_int
                  R.Inject.Slow_write;
                R.Inject.spec ~prob:0.05 ~max_fires:64 R.Inject.Conn_stall;
              ]
          in
          R.Inject.with_plan plan (fun () ->
              let srv =
                Domain.spawn (fun () ->
                    with_engine ~jobs (fun ~cache:_ engine ->
                        let dispatch = S.Dispatch.create engine in
                        let server =
                          S.Server.create ~max_line ~max_pending
                            ~slow_timeout_s:0.5 ~idle_timeout_s:30.
                            ~max_out:(1 lsl 20) ~drain_grace_s:2. ~dispatch
                            listen
                        in
                        S.Server.run server;
                        ( S.Dispatch.served dispatch,
                          S.Dispatch.shed dispatch,
                          S.Dispatch.drained dispatch )))
              in
              let connect () =
                let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
                (try Unix.connect fd (Unix.ADDR_UNIX path)
                 with e ->
                   (try Unix.close fd with Unix.Unix_error _ -> ());
                   raise e);
                fd
              in
              let numbered = List.mapi (fun i l -> (i, l)) clean in
              let chunk w =
                List.filter (fun (i, _) -> i mod concurrency = w) numbered
              in
              let clean_task w () =
                let c = chunk w in
                if c = [] then `Answers []
                else
                  `Answers
                    (List.map2
                       (fun (i, _) (_, resp) -> (i, resp))
                       c
                       (S.Load.run_requests ~connect (List.map snd c)))
              in
              let ping i =
                Printf.sprintf "{\"id\":\"burst%03d\",\"op\":\"ping\"}" i
              in
              let is_shed r = S.Load.classify r = S.Load.Shed in
              let tasks =
                List.init concurrency clean_task
                @ [
                    (fun () -> `Dz (S.Load.run_requests ~connect dz));
                    (fun () ->
                      `Loris
                        (S.Load.run_slowloris ~connect ~duration_s:3.0
                           ~interval_s:0.01 ()));
                    (fun () ->
                      S.Load.run_disconnect ~connect
                        (S.Load.requests ~mix:S.Load.Clean ~n_loops:1
                           ~seed:(seed + 2) 2);
                      `Disc);
                    (fun () ->
                      (* Shedding needs the burst to outrun the drain
                         loop; a torn first read can defer that, so the
                         persona retries a couple of times. *)
                      let rec attempt k =
                        let got =
                          S.Load.run_burst ~connect (List.init 40 ping)
                        in
                        if List.exists is_shed got || k <= 1 then got
                        else attempt (k - 1)
                      in
                      `Burst (attempt 3));
                    (fun () ->
                      let rec attempt k =
                        let got =
                          S.Load.run_flood ~connect
                            ~line_bytes:(2 * max_line) 12
                        in
                        if got <> [] || k <= 1 then got else attempt (k - 1)
                      in
                      `Flood (attempt 3));
                  ]
              in
              let pool = E.Pool.create ~jobs:(List.length tasks) () in
              let results =
                Fun.protect
                  ~finally:(fun () -> E.Pool.shutdown pool)
                  (fun () -> E.Pool.map pool (fun f -> f ()) tasks)
              in
              (* Graceful drain: pipeline a request and the shutdown in
                 one write — the request must still be answered, and the
                 batch lands while draining.  (A line pipelined {e
                 after} the shutdown is not owed an answer: drain stops
                 reading, and bytes still in the kernel buffer are
                 dropped by contract.) *)
              let drain_resps =
                S.Load.run_burst ~connect
                  [
                    "{\"id\":\"drain-a\",\"op\":\"ping\"}";
                    "{\"id\":\"drain-bye\",\"op\":\"shutdown\"}";
                  ]
              in
              let served, shed_srv, drained = Domain.join srv in
              let fails = ref [] in
              let failf fmt =
                Printf.ksprintf (fun s -> fails := s :: !fails) fmt
              in
              let answers =
                List.sort compare
                  (List.concat_map
                     (function `Answers l -> l | _ -> [])
                     results)
              in
              List.iteri
                (fun i want ->
                  match List.assoc_opt i answers with
                  | Some (Some got) when String.equal got want -> ()
                  | Some (Some got) ->
                    failf "clean request %d diverged under chaos:\n  want %s\n  got  %s"
                      i want got
                  | Some None ->
                    failf "clean request %d lost its answer (transport error)" i
                  | None -> failf "clean request %d missing from the cohort" i)
                expected_clean;
              let dz_got =
                List.concat_map (function `Dz l -> l | _ -> []) results
              in
              if List.length dz_got <> List.length expected_dz then
                failf "deadline-zero cohort answered %d/%d requests"
                  (List.length dz_got) (List.length expected_dz);
              List.iteri
                (fun i want ->
                  match List.nth_opt dz_got i with
                  | Some (_, Some got) when String.equal got want -> ()
                  | Some (_, Some got) ->
                    failf "deadline-zero request %d diverged:\n  want %s\n  got  %s"
                      i want got
                  | Some (_, None) ->
                    failf "deadline-zero request %d lost its answer" i
                  | None -> ())
                expected_dz;
              (match
                 List.find_map
                   (function `Loris r -> Some r | _ -> None)
                   results
               with
              | Some true -> ()
              | _ ->
                failf "slowloris connection was not reaped by the slow \
                       timeout");
              let burst =
                List.concat_map (function `Burst l -> l | _ -> []) results
              in
              let burst_sheds = List.length (List.filter is_shed burst) in
              if burst_sheds = 0 then
                failf "pipelined burst provoked no overloaded shed \
                       (max_pending %d)" max_pending;
              List.iter
                (fun r ->
                  match S.Load.classify r with
                  | S.Load.Ok_answer | S.Load.Shed -> ()
                  | _ -> failf "burst answer neither ok nor shed: %s" r)
                burst;
              let flood =
                List.concat_map (function `Flood l -> l | _ -> []) results
              in
              if flood = [] then
                failf "oversize flood got no structured answers";
              List.iter
                (fun r ->
                  match S.Load.classify r with
                  | S.Load.Error_answer | S.Load.Shed -> ()
                  | S.Load.Ok_answer | S.Load.Deadline_exceeded ->
                    failf "oversize flood line was accepted: %s" r)
                flood;
              if List.length drain_resps <> 2 then
                failf "graceful drain answered %d/2 pipelined lines"
                  (List.length drain_resps)
              else
                List.iter
                  (fun r ->
                    if S.Load.classify r <> S.Load.Ok_answer then
                      failf "drain-phase answer is an error: %s" r)
                  drain_resps;
              if drained = 0 then
                failf "dispatcher recorded no drain-phase answers";
              (match transcript with
              | None -> ()
              | Some path ->
                let oc = open_out path in
                List.iter
                  (fun (i, resp) ->
                    Printf.fprintf oc "clean\t%06d\t%s\n" i
                      (Option.value resp ~default:"#transport-error"))
                  answers;
                List.iteri
                  (fun i (_, resp) ->
                    Printf.fprintf oc "dz\t%06d\t%s\n" i
                      (Option.value resp ~default:"#transport-error"))
                  dz_got;
                List.iter (fun r -> Printf.fprintf oc "burst\t%s\n" r) burst;
                List.iter (fun r -> Printf.fprintf oc "flood\t%s\n" r) flood;
                List.iter (fun r -> Printf.fprintf oc "drain\t%s\n" r)
                  drain_resps;
                close_out oc);
              Printf.eprintf "soak: injected%s\n%!"
                (String.concat ""
                   (List.map
                      (fun (p, n) ->
                        Printf.sprintf " %s=%d" (R.Inject.point_name p) n)
                      (R.Inject.fires plan)));
              Printf.eprintf
                "soak: daemon answered %d (shed %d, drained %d); burst \
                 sheds %d; flood answers %d\n%!"
                served shed_srv drained burst_sheds (List.length flood);
              match List.rev !fails with
              | [] ->
                Printf.eprintf
                  "soak: survived — clean and deadline cohorts \
                   byte-identical to the fault-free sequential run\n%!";
                true
              | fs ->
                List.iter (Printf.eprintf "soak: FAIL %s\n%!") fs;
                false))
    in
    if not ok then exit 1
  in
  Cmd.v
    (Cmd.info "soak"
       ~doc:
         "Drill the daemon's overload hardening: serve a clean cohort and \
          a deadline-zero cohort concurrently while seeded socket faults \
          (torn reads, slow writes, stalls) and adversarial personas \
          (slowloris, mid-frame disconnect, oversize flood, pipelined \
          burst) attack the reactor — then assert zero crashes, \
          byte-identity of every well-behaved answer against a \
          fault-free sequential run, structured overloaded sheds, and a \
          graceful pipelined-shutdown drain.")
    Term.(
      const run $ seed $ requests $ concurrency $ jobs $ n_loops $ transcript)

(* ----- fuzz: differential testing of the scheduler ------------------ *)

let fuzz_cmd =
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Fuzz seed.") in
  let cases =
    Arg.(value & opt int 500 & info [ "cases" ] ~doc:"Number of fuzz cases.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:"Worker domains (1 = serial; the result is identical for any \
                value).")
  in
  let log =
    Arg.(
      value & opt (some string) None
      & info [ "log" ] ~docv:"FILE"
          ~doc:"Append one JSON record per failure to $(docv) (JSONL).")
  in
  let no_shrink =
    Arg.(
      value & flag
      & info [ "no-shrink" ] ~doc:"Log failing cases without minimising them.")
  in
  let run seed cases jobs log no_shrink trace metrics =
    setup_logs ();
    let pool = E.Pool.create ~jobs () in
    let report =
      with_obs ~trace ~metrics "fuzz" (fun obs ->
          Fun.protect
            ~finally:(fun () -> E.Pool.shutdown pool)
            (fun () ->
              Hcv_check.Diff.run ~pool ~obs ~shrink:(not no_shrink) ~seed
                ~cases ()))
    in
    Format.printf "%a@." Hcv_check.Diff.pp_report report;
    (match log with
    | Some path when report.Hcv_check.Diff.failures <> [] ->
      let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
      List.iter
        (fun f ->
          output_string oc
            (E.Jsonx.to_string (Hcv_check.Diff.failure_json f));
          output_char oc '\n')
        report.Hcv_check.Diff.failures;
      close_out oc;
      Printf.eprintf "wrote %d failure records to %s\n%!"
        (List.length report.Hcv_check.Diff.failures)
        path
    | _ -> ());
    List.iter
      (fun (f : Hcv_check.Diff.failure) ->
        Format.printf "@.FAIL seed %d [%s]: %s@.%s@." f.seed
          (Hcv_check.Diff.category_to_string f.category)
          f.detail f.repro)
      report.Hcv_check.Diff.failures;
    if report.Hcv_check.Diff.failures <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differentially fuzz the heterogeneous scheduler: random \
          loops/machines/configurations, checked by the independent \
          legality oracle, the cycle simulator and the energy/time \
          estimation models.")
    Term.(const run $ seed $ cases $ jobs $ log $ no_shrink $ trace_arg
          $ metrics_arg)

(* ----- simulate: run loops through the cycle simulator ------------- *)

let simulate_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let buses = Arg.(value & opt int 1 & info [ "buses" ]) in
  let trip =
    Arg.(
      value & opt (some int) None
      & info [ "trip" ] ~doc:"Iteration count (default: the loop's).")
  in
  let run file buses machine trip =
    setup_logs ();
    let machine = resolve_machine ~buses machine in
    let loops = or_die (load_loops file) in
    List.iter
      (fun loop ->
        match
          Hcv_sched.Homo.schedule ~machine
            ~cycle_time:Presets.reference_cycle_time ~loop ()
        with
        | Error msg -> Format.printf "%s: FAILED: %s@." loop.Loop.name msg
        | Ok (sched, stats) ->
          let trip = Option.value trip ~default:loop.Loop.trip in
          let r = Hcv_sim.Simulator.run ~schedule:sched ~trip () in
          Format.printf "%s (II=%d): %a@." loop.Loop.name
            stats.Hcv_sched.Homo.ii Hcv_sim.Simulator.pp_result r;
          List.iter (fun v -> Format.printf "  violation: %s@." v)
            r.Hcv_sim.Simulator.violations)
      loops
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:
         "Schedule the loops of a .loop file and replay them on the \
          cycle-level multi-clock-domain simulator.")
    Term.(const run $ file $ buses $ machine_arg $ trip)

(* ----- report: pipelined-code and register report ------------------ *)

let report_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let buses = Arg.(value & opt int 1 & info [ "buses" ]) in
  let full =
    Arg.(
      value & flag
      & info [ "full" ] ~doc:"Also print the prologue/kernel/epilogue listing.")
  in
  let run file buses machine full =
    setup_logs ();
    let machine = resolve_machine ~buses machine in
    let loops = or_die (load_loops file) in
    List.iter
      (fun loop ->
        match
          Hcv_sched.Homo.schedule ~machine
            ~cycle_time:Presets.reference_cycle_time ~loop ()
        with
        | Error msg -> Format.printf "%s: FAILED: %s@." loop.Loop.name msg
        | Ok (sched, _) ->
          let code = Hcv_sched.Codegen.emit sched in
          print_string (Hcv_sched.Codegen.render_kernel_table code);
          Format.printf "static code size: %d ops (kernel %d), SC=%d@."
            (Hcv_sched.Codegen.static_ops code)
            (Hcv_sched.Codegen.kernel_ops code)
            code.Hcv_sched.Codegen.stage_count;
          Format.printf "%a@." Hcv_sched.Regalloc.pp
            (Hcv_sched.Regalloc.analyze sched);
          Format.printf "%a@.@." Hcv_sched.Control.pp
            (Hcv_sched.Control.analyze sched);
          if full then print_string (Hcv_sched.Codegen.render code))
      loops
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Emit the software-pipelined code (kernel table, optionally the \
          full listing) plus register and control-path reports.")
    Term.(const run $ file $ buses $ machine_arg $ full)

(* ----- debug: dump pipeline internals for one benchmark ------------ *)

let debug_cmd =
  let bench = Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCH") in
  let run bench machine =
    setup_logs ();
    let machine = resolve_machine ~buses:1 machine in
    let spec = Option.get (Specfp.find bench) in
    let loops = Specfp.loops ~seed:42 spec in
    let r = diag_ok (Pipeline.run ~machine ~name:bench ~loops ()) in
    let pr_act label (a : Activity.t) =
      Format.printf "%s: T=%.0f ins=[%s] comms=%.0f mem=%.0f@." label
        a.Activity.exec_time_ns
        (String.concat ";"
           (Array.to_list
              (Array.map (Printf.sprintf "%.0f") a.Activity.per_cluster_ins_energy)))
        a.Activity.n_comms a.Activity.n_mem
    in
    pr_act "reference " r.Pipeline.profile.Profile.activity;
    pr_act "hetero    " r.Pipeline.hetero_activity;
    Format.printf "homo choice:@.%a@.het choice:@.%a@." Select.pp_choice
      r.Pipeline.homo Select.pp_choice r.Pipeline.hetero;
    List.iter
      (fun (lr : Pipeline.loop_result) ->
        let s = lr.Pipeline.schedule in
        let dist = Hcv_sched.Schedule.per_cluster_ins_energy s in
        Format.printf "  %-16s IT=%a MIT=%a comms=%d dist=[%s]@."
          lr.Pipeline.profile.Profile.loop.Loop.name Q.pp
          lr.Pipeline.stats.Hsched.it Q.pp lr.Pipeline.stats.Hsched.mit
          (Hcv_sched.Schedule.n_comms s)
          (String.concat ";"
             (Array.to_list (Array.map (Printf.sprintf "%.1f") dist))))
      r.Pipeline.loop_results;
    let homo_ct =
      (Opconfig.point r.Pipeline.homo.Select.config (Comp.Cluster 0))
        .Opconfig.cycle_time
    in
    let homo_act = Profile.scale_cycle_time r.Pipeline.profile homo_ct in
    Format.printf "homo breakdown:   %a@." Model.pp_breakdown
      (Model.energy r.Pipeline.ctx ~config:r.Pipeline.homo.Select.config
         homo_act);
    Format.printf "hetero breakdown: %a@." Model.pp_breakdown
      (Model.energy r.Pipeline.ctx ~config:r.Pipeline.hetero.Select.config
         r.Pipeline.hetero_activity);
    Format.printf "ed2 ratio=%.3f time=%.3f energy=%.3f fallbacks=%d@."
      r.Pipeline.ed2_ratio r.Pipeline.time_ratio r.Pipeline.energy_ratio
      r.Pipeline.fallbacks
  in
  Cmd.v (Cmd.info "debug" ~doc:"Dump pipeline internals.")
    Term.(const run $ bench $ machine_arg)

let main () =
  let info =
    Cmd.info "hcvliw" ~version:"1.0.0"
      ~doc:"Heterogeneous clustered VLIW microarchitectures (CGO 2007)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ bench_cmd; table2_cmd; schedule_cmd; simulate_cmd; report_cmd; dot_cmd;
            gen_cmd; explore_cmd; fig7_cmd; frontier_cmd; families_cmd;
            chaos_cmd; serve_cmd; loadgen_cmd; soak_cmd; fuzz_cmd;
            debug_cmd ]))
