open Hcv_support
open Hcv_ir
open Hcv_energy
open Hcv_machine
open Hcv_sched

type event =
  | Issue of { instr : Instr.id; iter : int }
  | Complete of { instr : Instr.id; iter : int }
  | Bus_depart of { t_idx : int; iter : int }
  | Bus_arrive of { t_idx : int; iter : int }

type cache_model = { miss_rate : float; miss_penalty_cycles : int }

type result = {
  exec_ns : Q.t;
  n_issues : int;
  n_transfers : int;
  n_mem_accesses : int;
  per_cluster_ins_energy : float array;
  violations : string list;
  events : int;
  n_misses : int;
  stall_ns : Q.t;
}

let max_violations = 64

(* Deterministic per-access miss decision: splitmix64 of (instr, iter)
   compared against the miss rate. *)
let misses cache ~instr ~iter =
  match cache with
  | None -> false
  | Some { miss_rate; _ } ->
    let rng = Hcv_support.Rng.create ((instr * 1000003) + iter) in
    Hcv_support.Rng.chance rng miss_rate

let run ?cache ~schedule ~trip () =
  if trip < 1 then invalid_arg "Simulator.run: trip < 1";
  let sched = schedule in
  let machine = sched.Schedule.machine in
  let clocking = sched.Schedule.clocking in
  let loop = sched.Schedule.loop in
  let ddg = loop.Loop.ddg in
  let n = Ddg.n_instrs ddg in
  let it = clocking.Clocking.it in
  let buslat = machine.Machine.icn.Icn.latency_cycles in
  let transfers = Array.of_list sched.Schedule.transfers in
  let violations = ref [] in
  let n_viol = ref 0 in
  let violate fmt =
    Format.kasprintf
      (fun s ->
        incr n_viol;
        if !n_viol <= max_violations then violations := s :: !violations)
      fmt
  in
  (* Deterministic per-(instr, iter) times. *)
  let issue_time i k = Q.add (Schedule.start_time sched i) (Q.mul_int it k) in
  let complete_time i k = Q.add (Schedule.def_time sched i) (Q.mul_int it k) in
  let depart_time ti k =
    Q.add
      (Q.mul_int clocking.Clocking.icn_ct transfers.(ti).Schedule.bus_cycle)
      (Q.mul_int it k)
  in
  let arrive_time ti k =
    Q.add
      (Q.mul_int clocking.Clocking.icn_ct
         (transfers.(ti).Schedule.bus_cycle + buslat))
      (Q.mul_int it k)
  in
  (* Build the event queue. *)
  let q = Pqueue.create () in
  for k = 0 to trip - 1 do
    for i = 0 to n - 1 do
      Pqueue.push q (issue_time i k) (Issue { instr = i; iter = k });
      Pqueue.push q (complete_time i k) (Complete { instr = i; iter = k })
    done;
    Array.iteri
      (fun ti _ ->
        Pqueue.push q (depart_time ti k) (Bus_depart { t_idx = ti; iter = k });
        Pqueue.push q (arrive_time ti k) (Bus_arrive { t_idx = ti; iter = k }))
      transfers
  done;
  (* Occupancy tracking per absolute cycle of each domain. *)
  let fu_busy : (int * Opcode.fu_kind * int, int) Hashtbl.t =
    Hashtbl.create 1024
  in
  let bus_busy : (int, int) Hashtbl.t = Hashtbl.create 1024 in
  let bump tbl key cap what =
    let v = 1 + Option.value (Hashtbl.find_opt tbl key) ~default:0 in
    Hashtbl.replace tbl key v;
    if v > cap then violate "%s over capacity (%d > %d)" what v cap
  in
  (* Find the transfer serving a cross-cluster value edge. *)
  let transfer_for src dst_cluster =
    let found = ref (-1) in
    Array.iteri
      (fun ti (tr : Schedule.transfer) ->
        if !found = -1 && tr.Schedule.src = src
           && tr.Schedule.dst_cluster = dst_cluster
        then found := ti)
      transfers;
    !found
  in
  let sync = Timing.sync_penalty clocking in
  let check_operands i k now =
    List.iter
      (fun (e : Edge.t) ->
        let src_iter = k - e.distance in
        if src_iter >= 0 then begin
          let p = sched.Schedule.placements.(e.src) in
          let pd = sched.Schedule.placements.(i) in
          if p.Schedule.cluster = pd.Schedule.cluster then begin
            (* The edge's latency may be below the full instruction
               latency (e.g. 0-latency orderings). *)
            let avail =
              Q.add
                (Q.add (issue_time e.src src_iter)
                   (Q.mul_int
                      (Timing.eff_ct clocking ~cluster:p.Schedule.cluster
                         (Ddg.instr ddg e.src))
                      e.latency))
                Q.zero
            in
            if Q.( < ) now avail then
              violate "iter %d: %a issued at %a before operand ready at %a" k
                Edge.pp e Q.pp now Q.pp avail
          end
          else if Edge.carries_value e then begin
            match transfer_for e.src pd.Schedule.cluster with
            | -1 -> violate "iter %d: missing transfer for %a" k Edge.pp e
            | ti ->
              let avail = arrive_time ti src_iter in
              if Q.( < ) now avail then
                violate "iter %d: %a issued at %a before arrival at %a" k
                  Edge.pp e Q.pp now Q.pp avail
          end
          else begin
            (* Non-value cross-domain ordering: the *edge's* latency
               governs (an anti edge may have latency 0), plus one ICN
               cycle of synchronisation. *)
            let avail =
              Q.add
                (Q.add (issue_time e.src src_iter)
                   (Q.mul_int
                      (Timing.eff_ct clocking ~cluster:p.Schedule.cluster
                         (Ddg.instr ddg e.src))
                      e.latency))
                sync
            in
            if Q.( < ) now avail then
              violate "iter %d: %a issued at %a before sync'd source at %a" k
                Edge.pp e Q.pp now Q.pp avail
          end
        end)
      (Ddg.preds ddg i)
  in
  let per_cluster = Array.make (Machine.n_clusters machine) 0.0 in
  let n_issues = ref 0 and n_transfers = ref 0 and n_mem = ref 0 in
  let n_misses = ref 0 in
  let stall = ref Q.zero in
  let events = ref 0 in
  let last = ref Q.zero in
  let continue_ = ref true in
  while !continue_ do
    match Pqueue.pop q with
    | None -> continue_ := false
    | Some (now, ev) ->
      incr events;
      last := Q.max !last now;
      (match ev with
      | Issue { instr = i; iter = k } ->
        let p = sched.Schedule.placements.(i) in
        let ins = Ddg.instr ddg i in
        let kind = Instr.fu ins in
        incr n_issues;
        per_cluster.(p.Schedule.cluster) <-
          per_cluster.(p.Schedule.cluster) +. Instr.energy ins;
        if kind = Opcode.Mem_port then begin
          incr n_mem;
          if misses cache ~instr:i ~iter:k then begin
            incr n_misses;
            stall :=
              Q.add !stall
                (Q.mul_int clocking.Clocking.cache_ct
                   (match cache with
                   | Some c -> c.miss_penalty_cycles
                   | None -> 0))
          end
        end;
        let abs_cycle =
          p.Schedule.cycle + (k * clocking.Clocking.cluster_ii.(p.Schedule.cluster))
        in
        bump fu_busy
          (p.Schedule.cluster, kind, abs_cycle)
          (Cluster.fu_count (Machine.cluster machine p.Schedule.cluster) kind)
          (Printf.sprintf "C%d %s cycle %d" p.Schedule.cluster
             (Opcode.fu_to_string kind) abs_cycle);
        check_operands i k now
      | Complete _ -> ()
      | Bus_depart { t_idx = ti; iter = k } ->
        let tr = transfers.(ti) in
        incr n_transfers;
        (* The value must have left its producer and crossed the sync
           queue before the bus picks it up. *)
        let avail = Q.add (complete_time tr.Schedule.src k) sync in
        if Q.( < ) now avail then
          violate "iter %d: transfer of %d departs at %a before %a" k
            tr.Schedule.src Q.pp now Q.pp avail;
        (* The bus is pipelined, like the FUs: a transfer occupies its
           issue slot only, [latency_cycles] is pure transit delay. *)
        let base = tr.Schedule.bus_cycle + (k * clocking.Clocking.icn_ii) in
        bump bus_busy base machine.Machine.icn.Icn.buses
          (Printf.sprintf "bus cycle %d" base)
      | Bus_arrive _ -> ())
  done;
  {
    exec_ns = Q.add !last !stall;
    n_issues = !n_issues;
    n_transfers = !n_transfers;
    (* A miss refills through the cache: one extra access of dynamic
       energy. *)
    n_mem_accesses = !n_mem + !n_misses;
    per_cluster_ins_energy = per_cluster;
    violations = List.rev !violations;
    events = !events;
    n_misses = !n_misses;
    stall_ns = !stall;
  }

let measure ~schedule ~trip =
  let r = run ~schedule ~trip () in
  if r.violations <> [] then Error r.violations
  else
    Ok
      (Activity.make
         ~exec_time_ns:(Q.to_float r.exec_ns)
         ~per_cluster_ins_energy:r.per_cluster_ins_energy
         ~n_comms:(float_of_int r.n_transfers)
         ~n_mem:(float_of_int r.n_mem_accesses))

let pp_result ppf r =
  Format.fprintf ppf
    "sim{t=%a ns, issues=%d, transfers=%d, mem=%d, misses=%d, events=%d, violations=%d}"
    Q.pp r.exec_ns r.n_issues r.n_transfers r.n_mem_accesses r.n_misses
    r.events (List.length r.violations)
