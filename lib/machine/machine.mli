(** A machine design: the structural part of the microarchitecture,
    independent of any frequency/voltage operating point. *)

type t = {
  name : string;
  clusters : Cluster.t array;
  icn : Icn.t;
  grid : Freqgrid.t;
}

val make :
  ?name:string -> ?grid:Freqgrid.t -> clusters:Cluster.t array -> icn:Icn.t
  -> unit -> t
(** [grid] defaults to [Unrestricted].
    @raise Invalid_argument if there are no clusters. *)

val n_clusters : t -> int
val cluster : t -> int -> Cluster.t

val fu_total : t -> Hcv_ir.Opcode.fu_kind -> int
(** Machine-wide count of a resource kind. *)

val supports : t -> Hcv_ir.Opcode.fu_kind -> bool
(** [supports m k] iff some cluster has at least one unit of kind [k].
    An op whose kind the machine does not support cannot be scheduled
    at all. *)

val eligible_clusters : t -> Hcv_ir.Opcode.fu_kind -> bool array
(** Per-cluster capability mask for kind [k]: element [i] is true iff
    cluster [i] can execute ops of that kind. *)

val capability_symmetric : t -> bool
(** True iff every cluster can execute every resource kind (the paper's
    machines).  Capability-aware layers use this to skip eligibility
    filtering — and thereby stay byte-identical — on symmetric
    machines. *)

val components : t -> Comp.t list

val with_grid : t -> Freqgrid.t -> t
val with_icn : t -> Icn.t -> t

val pp : Format.formatter -> t -> unit
