(** Cluster designs: the per-cluster resource mix.

    A cluster is a semi-independent unit of functional units, memory
    ports and a register file (paper §2.1).  All clusters of the paper's
    evaluation machine share one design (1 FP FU, 1 integer FU, 1 memory
    port, 16 registers); this module allows arbitrary mixes. *)

type t = {
  name : string;
  int_fus : int;
  fp_fus : int;
  mem_ports : int;
  registers : int;
}

val make :
  ?name:string -> int_fus:int -> fp_fus:int -> mem_ports:int
  -> registers:int -> unit -> t
(** Partial clusters (zero FP units, zero memory ports, even zero FUs
    altogether) are constructible: capability-asymmetric machines need
    them, and placement feasibility is a per-op question answered by
    {!capable}.
    @raise Invalid_argument on a negative count. *)

val fu_count : t -> Hcv_ir.Opcode.fu_kind -> int

val capable : t -> Hcv_ir.Opcode.fu_kind -> bool
(** [capable c k] iff the cluster has at least one unit of kind [k] —
    i.e. an op occupying a [k] can legally execute on [c]. *)

val issue_width : t -> int
(** Total operations issuable per cycle: sum of FU and port counts. *)

val paper : t
(** The CGO'07 evaluation cluster: 1 int FU, 1 FP FU, 1 memory port,
    16 registers. *)

val pp : Format.formatter -> t -> unit
