type t = {
  name : string;
  int_fus : int;
  fp_fus : int;
  mem_ports : int;
  registers : int;
}

(* Capability-asymmetric machines need partial clusters (no FP units,
   no memory port, even issue-width 0 satellites used purely as
   register space), so only negative counts are structurally invalid.
   Whether a given mix can run a given workload is a placement
   question, answered per-op by [capable]. *)
let make ?(name = "cluster") ~int_fus ~fp_fus ~mem_ports ~registers () =
  if int_fus < 0 || fp_fus < 0 || mem_ports < 0 || registers < 0 then
    invalid_arg "Cluster.make: negative resource count";
  { name; int_fus; fp_fus; mem_ports; registers }

let fu_count t = function
  | Hcv_ir.Opcode.Int_fu -> t.int_fus
  | Hcv_ir.Opcode.Fp_fu -> t.fp_fus
  | Hcv_ir.Opcode.Mem_port -> t.mem_ports

let capable t kind = fu_count t kind > 0

let issue_width t = t.int_fus + t.fp_fus + t.mem_ports

let paper = make ~name:"paper" ~int_fus:1 ~fp_fus:1 ~mem_ports:1 ~registers:16 ()

let pp ppf t =
  Format.fprintf ppf "%s{int=%d fp=%d mem=%d regs=%d}" t.name t.int_fus
    t.fp_fus t.mem_ports t.registers
