type t = {
  name : string;
  clusters : Cluster.t array;
  icn : Icn.t;
  grid : Freqgrid.t;
}

let make ?(name = "machine") ?(grid = Freqgrid.Unrestricted) ~clusters ~icn () =
  if Array.length clusters = 0 then
    invalid_arg "Machine.make: no clusters";
  { name; clusters; icn; grid }

let n_clusters t = Array.length t.clusters
let cluster t i = t.clusters.(i)

let fu_total t kind =
  Array.fold_left (fun acc c -> acc + Cluster.fu_count c kind) 0 t.clusters

let supports t kind = fu_total t kind > 0

let eligible_clusters t kind =
  Array.map (fun c -> Cluster.capable c kind) t.clusters

(* A machine is capability-symmetric when every cluster can execute
   every resource kind; the paper's machines all are.  Layers that
   special-case eligibility use this to keep the symmetric path
   byte-identical. *)
let capability_symmetric t =
  List.for_all
    (fun kind -> Array.for_all (fun c -> Cluster.capable c kind) t.clusters)
    Hcv_ir.Opcode.all_fu_kinds

let components t = Comp.all ~n_clusters:(n_clusters t)
let with_grid t grid = { t with grid }
let with_icn t icn = { t with icn }

let pp ppf t =
  Format.fprintf ppf "@[<v>%s: %d clusters, %a, %a" t.name (n_clusters t)
    Icn.pp t.icn Freqgrid.pp t.grid;
  Array.iter (fun c -> Format.fprintf ppf "@,  %a" Cluster.pp c) t.clusters;
  Format.fprintf ppf "@]"
