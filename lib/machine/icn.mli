(** Inter-cluster connection network: a set of shared register buses.

    Register values move between clusters through explicit copy
    operations.  The buses are pipelined, like the functional units: a
    copy occupies its issue slot only, and [latency_cycles] is the
    transit delay until the value is usable in the destination cluster
    (the paper assumes a 1-cycle-latency register bus and evaluates 1
    and 2 buses). *)

type t = { buses : int; latency_cycles : int }

val make : ?latency_cycles:int -> buses:int -> unit -> t
(** [latency_cycles] defaults to 1.
    @raise Invalid_argument if [buses < 1] or [latency_cycles < 1]. *)

val paper_1bus : t
val paper_2bus : t
val pp : Format.formatter -> t -> unit
