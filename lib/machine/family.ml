(* Named capability-asymmetric machine families.

   The paper's evaluation machine (Presets.machine_4c) is
   frequency-heterogeneous but capability-homogeneous: four identical
   1-int/1-fp/1-mem clusters.  These families explore the other axis —
   clusters with asymmetric FU mixes — while keeping the same ICN and
   frequency-grid machinery, so every existing layer (profiling,
   selection, scheduling, legality checking) runs on them unchanged.

   Every family still supports every resource kind machine-wide: a
   kind nobody has would make all paper workloads trivially
   unschedulable.  Individual clusters may lack kinds; placement
   feasibility is per-op (Cluster.capable). *)

let cluster = Cluster.make

(* 2 wide full-capability clusters + 2 narrow FP-less clusters: the
   big/LITTLE-style mix. *)
let big_little ~buses =
  Machine.make
    ~name:(Printf.sprintf "big-little-%dbus" buses)
    ~clusters:
      [|
        cluster ~name:"big0" ~int_fus:2 ~fp_fus:2 ~mem_ports:2 ~registers:32 ();
        cluster ~name:"big1" ~int_fus:2 ~fp_fus:2 ~mem_ports:2 ~registers:32 ();
        cluster ~name:"little0" ~int_fus:1 ~fp_fus:0 ~mem_ports:1 ~registers:8
          ();
        cluster ~name:"little1" ~int_fus:1 ~fp_fus:0 ~mem_ports:1 ~registers:8
          ();
      |]
    ~icn:(Icn.make ~buses ()) ()

(* FP-big / int-little: two FP-rich clusters without spare integer
   width, two integer clusters with no FP units at all. *)
let fp_heavy ~buses =
  Machine.make
    ~name:(Printf.sprintf "fp-heavy-%dbus" buses)
    ~clusters:
      [|
        cluster ~name:"fpbig0" ~int_fus:1 ~fp_fus:2 ~mem_ports:1 ~registers:24
          ();
        cluster ~name:"fpbig1" ~int_fus:1 ~fp_fus:2 ~mem_ports:1 ~registers:24
          ();
        cluster ~name:"intlil0" ~int_fus:2 ~fp_fus:0 ~mem_ports:1 ~registers:12
          ();
        cluster ~name:"intlil1" ~int_fus:2 ~fp_fus:0 ~mem_ports:1 ~registers:12
          ();
      |]
    ~icn:(Icn.make ~buses ()) ()

(* One wide hub with all the FP units and memory ports, surrounded by
   scalar integer-only satellite clusters. *)
let scalar_satellite ~buses =
  Machine.make
    ~name:(Printf.sprintf "scalar-satellite-%dbus" buses)
    ~clusters:
      [|
        cluster ~name:"hub" ~int_fus:2 ~fp_fus:2 ~mem_ports:2 ~registers:32 ();
        cluster ~name:"sat0" ~int_fus:1 ~fp_fus:0 ~mem_ports:0 ~registers:8 ();
        cluster ~name:"sat1" ~int_fus:1 ~fp_fus:0 ~mem_ports:0 ~registers:8 ();
        cluster ~name:"sat2" ~int_fus:1 ~fp_fus:0 ~mem_ports:0 ~registers:8 ();
      |]
    ~icn:(Icn.make ~buses ()) ()

let table =
  [
    ("big-little", big_little);
    ("fp-heavy", fp_heavy);
    ("scalar-satellite", scalar_satellite);
  ]

let names = List.map fst table

let find ?(buses = 1) name =
  Option.map (fun mk -> mk ~buses) (List.assoc_opt name table)

let machine ?(buses = 1) name =
  match find ~buses name with
  | Some m -> m
  | None ->
    invalid_arg
      (Printf.sprintf "Family.machine: unknown family %S (known: %s)" name
         (String.concat ", " names))

let all ?(buses = 1) () = List.map (fun (n, mk) -> (n, mk ~buses)) table
