(** Named capability-asymmetric machine families.

    Each family is a fixed cluster mix parameterised only by the ICN
    bus count, mirroring {!Presets.machine_4c}.  All families support
    every resource kind machine-wide (so the paper workloads remain
    schedulable), but individual clusters may lack FP units or memory
    ports entirely — the capability axis the paper leaves unexplored.

    Families: ["big-little"] (2 wide full clusters + 2 narrow FP-less),
    ["fp-heavy"] (2 FP-rich + 2 integer-only), ["scalar-satellite"]
    (1 wide hub + 3 scalar integer-only satellites). *)

val names : string list
(** Family names, in a fixed presentation order. *)

val find : ?buses:int -> string -> Machine.t option
(** Look a family up by name; [buses] defaults to 1. *)

val machine : ?buses:int -> string -> Machine.t
(** Like {!find}. @raise Invalid_argument on an unknown name. *)

val all : ?buses:int -> unit -> (string * Machine.t) list
(** Every family, in {!names} order. *)
