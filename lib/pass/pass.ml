open Hcv_obs

type ('a, 'b) t =
  | Stage : string * (Trace.span -> 'a -> ('b, Diag.t) result) -> ('a, 'b) t
  | Seq : ('a, 'c) t * ('c, 'b) t -> ('a, 'b) t

let v ~name f = Stage (name, f)
let pure ~name f = Stage (name, fun sp a -> Ok (f sp a))
let ( >>> ) p q = Seq (p, q)

let names t =
  let rec go : type a b. a:unit -> (a, b) t -> string list -> string list =
   fun ~a:() t acc ->
    match t with
    | Stage (name, _) -> name :: acc
    | Seq (p, q) -> go ~a:() p (go ~a:() q acc)
  in
  go ~a:() t []

let rec run : type a b. obs:Trace.span -> (a, b) t -> a -> (b, Diag.t) result
    =
 fun ~obs t x ->
  match t with
  | Stage (name, f) ->
    Trace.span obs ("stage:" ^ name) (fun sp ->
        match f sp x with
        | Ok _ as ok -> ok
        | Error d -> Error (Diag.with_stage name d))
  | Seq (p, q) -> (
    match run ~obs p x with Ok y -> run ~obs q y | Error _ as e -> e)
