(** Typed stage combinators: the pass manager of the end-to-end flow.

    A [('a, 'b) t] is a named stage from an ['a] artifact to a ['b]
    artifact that can fail with a structured {!Hcv_obs.Diag.t}.  Running
    a stage opens a span named ["stage:<name>"] under the caller's
    observation span — the stage body records its counters there — and
    stamps the stage name onto any diagnostic that escapes without
    provenance, so an error always says *where* in the flow it arose.

    Stages compose left to right with {!(>>>)}; a composite runs each
    constituent in its own span and short-circuits on the first error.
    The combinator is deliberately sequential — parallelism lives inside
    stages (worker pools over independent cells), never between them. *)

open Hcv_obs

type ('a, 'b) t

val v :
  name:string -> (Trace.span -> 'a -> ('b, Diag.t) result) -> ('a, 'b) t
(** A fallible stage.  The span passed to the body is the stage's own
    span. *)

val pure : name:string -> (Trace.span -> 'a -> 'b) -> ('a, 'b) t
(** A stage that cannot fail. *)

val ( >>> ) : ('a, 'b) t -> ('b, 'c) t -> ('a, 'c) t

val names : ('a, 'b) t -> string list
(** Stage names in execution order. *)

val run : obs:Trace.span -> ('a, 'b) t -> 'a -> ('b, Diag.t) result
(** Execute the (composite) stage under [obs]: one child span per
    constituent stage, errors tagged with the failing stage's name. *)
