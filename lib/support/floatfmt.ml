(* Locale-stable float rendering.  See floatfmt.mli. *)

(* OCaml's float printers go through the C runtime's snprintf, which is
   locale-sensitive for the decimal separator when the embedding
   process called setlocale.  Golden-pinned reports must not drift on
   such hosts, so every printer normalises the separator back to '.'.
   (The exponent marker and digits are locale-independent.) *)
let stable s = String.map (fun c -> if c = ',' then '.' else c) s

let compact f = stable (Printf.sprintf "%.6g" f)
let sig_digits n f = stable (Printf.sprintf "%.*g" n f)
let fixed n f = stable (Printf.sprintf "%.*f" n f)
