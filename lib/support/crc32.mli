(** CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320).

    The integrity check behind the persistent cache's v3 record format:
    cheap enough to run on every append, strong enough to catch the
    torn writes and bit rot an append-only JSONL file accumulates. *)

val string : string -> int32
(** CRC-32 of the whole string. *)

val hex : int32 -> string
(** Eight lowercase hex digits, zero-padded — the on-disk rendering. *)

val check_hex : string -> string -> bool
(** [check_hex s h] is true when [h] equals [hex (string s)]
    (case-insensitive). *)
