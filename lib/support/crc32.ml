let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let string s =
  let t = Lazy.force table in
  let crc = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let idx =
        Int32.to_int
          (Int32.logand
             (Int32.logxor !crc (Int32.of_int (Char.code ch)))
             0xFFl)
      in
      crc := Int32.logxor t.(idx) (Int32.shift_right_logical !crc 8))
    s;
  Int32.lognot !crc

let hex crc = Printf.sprintf "%08lx" crc

let check_hex s h = String.lowercase_ascii h = hex (string s)
