(** Exact rational arithmetic over native 63-bit integers.

    Times (initiation times, cycle times) and frequencies in this project
    are exact rationals so that questions such as "is [it * f] an
    integer?" or "does this frequency belong to the machine's discrete
    grid?" are decidable without floating-point fuzz.  Values are kept in
    normal form: positive denominator, reduced by gcd.  Arithmetic
    normalises through gcds *before* cross-multiplying (Knuth TAOCP
    4.5.1) and comparison uses a Euclid-style remainder descent, so any
    operation whose reduced operands and result fit in a native int is
    exact — even when the naive cross products would overflow. *)

type t = private { num : int; den : int }

val make : int -> int -> t
(** [make num den] is the normalised rational [num/den].
    @raise Invalid_argument if [den = 0]. *)

val of_int : int -> t
val zero : t
val one : t

val num : t -> int
val den : t -> int

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** @raise Division_by_zero if the divisor is zero. *)

val neg : t -> t
val inv : t -> t
(** @raise Division_by_zero on [inv zero]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool

val min : t -> t -> t
val max : t -> t -> t

val is_integer : t -> bool

val floor : t -> int
(** Largest integer [<= t] (mathematical floor, also for negatives). *)

val ceil : t -> int
(** Smallest integer [>= t]. *)

val sign : t -> int

val to_float : t -> float
val of_float_approx : ?max_den:int -> float -> t
(** Best rational approximation with denominator [<= max_den]
    (default 1_000_000), via continued fractions.  Used only for
    display-level conversions, never in scheduling decisions. *)

val mul_int : t -> int -> t
val div_int : t -> int -> t

val add_mul_int : t -> t -> int -> t
(** [add_mul_int a b n] is [add a (mul_int b n)] — the fused
    "time plus n cycles" step of the schedulers' hot path. *)

val floor_div : t -> t -> int
(** [floor_div a b = floor (div a b)] without building the intermediate
    rational.  @raise Division_by_zero if [b] is zero. *)

val ceil_div : t -> t -> int
(** [ceil_div a b = ceil (div a b)] without building the intermediate
    rational.  @raise Division_by_zero if [b] is zero. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val gcd : int -> int -> int
(** Greatest common divisor on non-negative representatives. *)

val lcm : int -> int -> int
