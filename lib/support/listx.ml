let sum_int = List.fold_left ( + ) 0
let sum_float = List.fold_left ( +. ) 0.0

let mean = function
  | [] -> invalid_arg "Listx.mean: empty list"
  | l -> sum_float l /. float_of_int (List.length l)

let geomean = function
  | [] -> invalid_arg "Listx.geomean: empty list"
  | l ->
    let logs =
      List.map
        (fun v ->
          if v <= 0.0 then invalid_arg "Listx.geomean: non-positive value";
          Float.log v)
        l
    in
    Float.exp (mean logs)

let min_by key = function
  | [] -> invalid_arg "Listx.min_by: empty list"
  | x :: rest ->
    fst
      (List.fold_left
         (fun (best, bk) y ->
           let yk = key y in
           if yk < bk then (y, yk) else (best, bk))
         (x, key x) rest)

let max_by key = function
  | [] -> invalid_arg "Listx.max_by: empty list"
  | x :: rest ->
    fst
      (List.fold_left
         (fun (best, bk) y ->
           let yk = key y in
           if yk > bk then (y, yk) else (best, bk))
         (x, key x) rest)

let range lo hi = List.init (max 0 (hi - lo)) (fun i -> lo + i)

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let rec drop n l =
  match l with
  | [] -> []
  | _ when n <= 0 -> l
  | _ :: rest -> drop (n - 1) rest

let group_by key l =
  let keys = ref [] in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun x ->
      let k = key x in
      if not (Hashtbl.mem tbl k) then keys := k :: !keys;
      Hashtbl.replace tbl k (x :: (try Hashtbl.find tbl k with Not_found -> [])))
    l;
  List.rev_map (fun k -> (k, List.rev (Hashtbl.find tbl k))) !keys

let uniq l =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun x ->
      if Hashtbl.mem seen x then false
      else begin
        Hashtbl.add seen x ();
        true
      end)
    l
