(** Small list/float helpers used across the project. *)

val sum_int : int list -> int
val sum_float : float list -> float
val mean : float list -> float
(** Arithmetic mean. @raise Invalid_argument on the empty list. *)

val geomean : float list -> float
(** Geometric mean of positive values.
    @raise Invalid_argument on the empty list or non-positive values. *)

val min_by : ('a -> 'b) -> 'a list -> 'a
(** Element minimising the key (first on ties).
    @raise Invalid_argument on the empty list. *)

val max_by : ('a -> 'b) -> 'a list -> 'a
(** Element maximising the key (first on ties).
    @raise Invalid_argument on the empty list. *)

val range : int -> int -> int list
(** [range lo hi] is [\[lo; lo+1; ...; hi-1\]] ([\[\]] if [hi <= lo]). *)

val take : int -> 'a list -> 'a list
val drop : int -> 'a list -> 'a list
val group_by : ('a -> 'b) -> 'a list -> ('b * 'a list) list
(** Groups preserve first-occurrence order of keys and element order
    within a group.  Keys are compared with polymorphic equality. *)

val uniq : 'a list -> 'a list
(** Remove duplicates (polymorphic equality), keeping first
    occurrences. *)
