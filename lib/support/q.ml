type t = { num : int; den : int }

let rec gcd_pos a b = if b = 0 then a else gcd_pos b (a mod b)
let gcd a b = gcd_pos (abs a) (abs b)
let lcm a b = if a = 0 || b = 0 then 0 else abs (a / gcd a b * b)

let make num den =
  if den = 0 then invalid_arg "Q.make: zero denominator";
  if den = 1 then { num; den = 1 }
  else begin
    let s = if den < 0 then -1 else 1 in
    let num = s * num and den = s * den in
    let g = gcd num den in
    if g = 0 then { num = 0; den = 1 } else { num = num / g; den = den / g }
  end

let of_int n = { num = n; den = 1 }
let zero = of_int 0
let one = of_int 1
let num t = t.num
let den t = t.den

(* Floor/ceil integer division (OCaml [/] truncates toward zero).
   Written as [(p - 1) / q + 1] rather than [(p + q - 1) / q] so that
   operands near max_int do not overflow the adjustment term. *)
let floordiv p q = if p >= 0 then p / q else -(((-p - 1) / q) + 1)
let ceildiv p q = if p <= 0 then -(-p / q) else ((p - 1) / q) + 1

(* Knuth TAOCP 4.5.1: normalise through gcds *before* the
   cross-multiplications, so intermediates stay within native range for
   any inputs whose reduced result fits.  The den = 1 fast paths cover
   the overwhelmingly common integer-cycle arithmetic of the
   schedulers. *)

let add a b =
  if a.num = 0 then b
  else if b.num = 0 then a
  else if a.den = 1 && b.den = 1 then { num = a.num + b.num; den = 1 }
  else begin
    let d1 = gcd_pos a.den b.den in
    if d1 = 1 then
      (* denominators coprime: the sum is already in lowest terms *)
      { num = (a.num * b.den) + (b.num * a.den); den = a.den * b.den }
    else begin
      let t = (a.num * (b.den / d1)) + (b.num * (a.den / d1)) in
      let d2 = gcd t d1 in
      { num = t / d2; den = a.den / d1 * (b.den / d2) }
    end
  end

let neg a = { a with num = -a.num }
let sub a b = add a (neg b)

let mul a b =
  if a.den = 1 && b.den = 1 then { num = a.num * b.num; den = 1 }
  else begin
    let g1 = gcd a.num b.den and g2 = gcd b.num a.den in
    {
      num = a.num / g1 * (b.num / g2);
      den = a.den / g2 * (b.den / g1);
    }
  end

let inv a =
  if a.num = 0 then raise Division_by_zero;
  if a.num < 0 then { num = -a.den; den = -a.num }
  else { num = a.den; den = a.num }

let div a b =
  if b.num = 0 then raise Division_by_zero;
  mul a (inv b)

(* Exact overflow-free comparison: compare integer parts, then recurse
   on the (inverted) remainder fractions — Euclid's algorithm on the
   pair, so it terminates and never multiplies. *)
let rec cmp_pos a b c d =
  (* a/b vs c/d with a, c >= 0 and b, d > 0 *)
  let q1 = a / b and q2 = c / d in
  if q1 <> q2 then Stdlib.compare q1 q2
  else begin
    let r1 = a mod b and r2 = c mod d in
    if r1 = 0 then if r2 = 0 then 0 else -1
    else if r2 = 0 then 1
    else cmp_pos d r2 b r1
  end

let compare a b =
  if a.den = b.den then Stdlib.compare a.num b.num
  else if a.num >= 0 && b.num <= 0 then if a.num = 0 && b.num = 0 then 0 else 1
  else if a.num <= 0 && b.num >= 0 then -1
  else if a.num > 0 then cmp_pos a.num a.den b.num b.den
  else cmp_pos (-b.num) b.den (-a.num) a.den

let equal a b = a.num = b.num && a.den = b.den
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b
let is_integer t = t.den = 1
let floor t = if t.den = 1 then t.num else floordiv t.num t.den
let ceil t = if t.den = 1 then t.num else ceildiv t.num t.den
let sign t = Stdlib.compare t.num 0
let to_float t = float_of_int t.num /. float_of_int t.den

let of_float_approx ?(max_den = 1_000_000) f =
  if Float.is_nan f || Float.is_integer f then of_int (int_of_float f)
  else begin
    let negative = f < 0.0 in
    let f = Float.abs f in
    let a0 = int_of_float (Float.floor f) in
    let frac = f -. float_of_int a0 in
    (* Continued-fraction convergents p/q with q bounded by max_den;
       [x >= 1] is the reciprocal of the remaining fractional part. *)
    let rec go x p_prev q_prev p q depth =
      let a = int_of_float (Float.floor x) in
      let p' = (a * p) + p_prev and q' = (a * q) + q_prev in
      if q' > max_den || depth > 64 then (p, q)
      else
        let rem = x -. float_of_int a in
        if rem < 1e-12 then (p', q')
        else go (1.0 /. rem) p q p' q' (depth + 1)
    in
    let p, q =
      if frac < 1e-12 then (a0, 1) else go (1.0 /. frac) 1 0 a0 1 0
    in
    make (if negative then -p else p) q
  end

let mul_int t n =
  if n = 1 then t
  else if n = 0 then zero
  else if t.den = 1 then { num = t.num * n; den = 1 }
  else begin
    let g = gcd n t.den in
    { num = t.num * (n / g); den = t.den / g }
  end

let div_int t n =
  if n = 0 then invalid_arg "Q.make: zero denominator";
  let g = gcd t.num n in
  let num = t.num / g and n = n / g in
  if n < 0 then { num = -num; den = t.den * -n }
  else { num; den = t.den * n }

let add_mul_int a b n = add a (mul_int b n)

let floor_div a b =
  if b.num = 0 then raise Division_by_zero;
  if a.den = 1 && b.den = 1 then floordiv a.num b.num
  else begin
    (* floor((a.num * b.den) / (a.den * b.num)), gcd-reduced first *)
    let g1 = gcd a.num b.num and g2 = gcd_pos a.den b.den in
    let p = a.num / g1 * (b.den / g2) and q = a.den / g2 * (b.num / g1) in
    if q < 0 then floordiv (-p) (-q) else floordiv p q
  end

let ceil_div a b = -floor_div (neg a) b

let pp ppf t =
  if t.den = 1 then Format.fprintf ppf "%d" t.num
  else Format.fprintf ppf "%d/%d" t.num t.den

let to_string t = Format.asprintf "%a" pp t

(* Comparison operators over [t] come last so that the int/float
   comparisons above keep their Stdlib meaning. *)
let ( < ) a b = compare a b < 0
let ( <= ) a b = compare a b <= 0
let ( > ) a b = compare a b > 0
let ( >= ) a b = compare a b >= 0
