(** Locale-stable float rendering for human-facing reports.

    Every golden-pinned printer (selection choices, frontier CSV and
    regime reports) formats floats through this one helper so the byte
    form cannot drift across environments: the decimal separator is
    always ['.'] even when the host process switched the C locale
    (OCaml's [%f]/[%g] reach the C library's locale-sensitive
    rendering).

    Cache keys and replayable values do {e not} use these — they keep
    the exact ["%h"] forms of [Hcv_explore.Codec]. *)

val compact : float -> string
(** ["%.6g"] — the report default. *)

val sig_digits : int -> float -> string
(** ["%.<n>g"]. *)

val fixed : int -> float -> string
(** ["%.<n>f"]. *)
