(** Operation classes of the target ISA.

    The paper (Table 1) classifies operations into four classes
    (memory, arithmetic, multiply, division/modulo/sqrt) in two domains
    (integer, floating point), and assigns each a latency in cycles and
    an average dynamic energy relative to an integer add. *)

type clazz =
  | Memory  (** loads and stores; executes on a memory port *)
  | Arith  (** add/sub/logic/compare *)
  | Mult
  | Div  (** division, modulo, square root *)

type domain = Int | Fp

type t = { clazz : clazz; domain : domain }

val make : clazz -> domain -> t

val latency : t -> int
(** Latency in cycles of the executing cluster (paper Table 1). *)

val energy : t -> float
(** Average dynamic energy of one execution, relative to an integer add
    (paper Table 1). *)

type fu_kind =
  | Int_fu
  | Fp_fu
  | Mem_port
      (** The three per-cluster resource kinds of the paper's machine. *)

val fu : t -> fu_kind
(** Resource kind the operation occupies for one cycle (fully pipelined
    units, single issue slot per operation, as in the paper's model). *)

val all : t list
(** The eight opcode classes, in Table 1 order. *)

val all_fu_kinds : fu_kind list

val n_fu_kinds : int
val fu_index : fu_kind -> int
(** Dense index of a resource kind, [0 .. n_fu_kinds - 1] in
    [all_fu_kinds] order — for flat per-kind tables. *)

val mnemonics : (string * t) list
(** Assembly-ish names accepted by the loop DSL: [ld.i], [st.i], [ld.f],
    [st.f], [add.i], [add.f], [mul.i], [mul.f], [div.i], [div.f],
    [sqrt.f], [mod.i].  Several mnemonics may map to the same class. *)

val of_mnemonic : string -> t option
val to_string : t -> string
val fu_to_string : fu_kind -> string
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val pp_fu : Format.formatter -> fu_kind -> unit
