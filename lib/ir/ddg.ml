(* The graph is stored twice: CSR-style flat arrays (the primary
   representation, used by the schedulers' hot paths) and per-node
   adjacency lists precomputed from them (the legacy view served by
   [succs]/[preds]/[edges]).  Both views list every node's edges in
   construction order, so callers observe exactly the ordering the
   list-based implementation produced. *)
type t = {
  instrs : Instr.t array;
  edge_arr : Edge.t array;  (* construction order *)
  succ_off : int array;  (* length n+1; node i's out-edges are
                            edge_arr.(succ_idx.(succ_off.(i) .. succ_off.(i+1)-1)) *)
  succ_idx : int array;
  pred_off : int array;
  pred_idx : int array;
  edges_l : Edge.t list;
  succs_l : Edge.t list array;
  preds_l : Edge.t list array;
  topo : Instr.id list;  (* cached: computed once at construction *)
}

let n_instrs t = Array.length t.instrs
let instr t i = t.instrs.(i)
let instrs t = t.instrs
let edges t = t.edges_l
let n_edges t = Array.length t.edge_arr
let succs t i = t.succs_l.(i)
let preds t i = t.preds_l.(i)

(* CSR view *)

let edge_array t = t.edge_arr
let out_degree t i = t.succ_off.(i + 1) - t.succ_off.(i)
let in_degree t i = t.pred_off.(i + 1) - t.pred_off.(i)

let iter_succs t i f =
  for k = t.succ_off.(i) to t.succ_off.(i + 1) - 1 do
    f t.edge_arr.(t.succ_idx.(k))
  done

let iter_preds t i f =
  for k = t.pred_off.(i) to t.pred_off.(i + 1) - 1 do
    f t.edge_arr.(t.pred_idx.(k))
  done

let fold_succs t i f init =
  let acc = ref init in
  for k = t.succ_off.(i) to t.succ_off.(i + 1) - 1 do
    acc := f !acc t.edge_arr.(t.succ_idx.(k))
  done;
  !acc

let fold_preds t i f init =
  let acc = ref init in
  for k = t.pred_off.(i) to t.pred_off.(i + 1) - 1 do
    acc := f !acc t.edge_arr.(t.pred_idx.(k))
  done;
  !acc

let find_instr t name =
  Array.fold_left
    (fun acc (ins : Instr.t) ->
      match acc with
      | Some _ -> acc
      | None -> if String.equal ins.name name then Some ins else None)
    None t.instrs

(* Stable counting sort of edge indices by [key e] — per-node slices
   keep construction order. *)
let csr_index n edge_arr key =
  let m = Array.length edge_arr in
  let off = Array.make (n + 1) 0 in
  Array.iter (fun e -> off.(key e + 1) <- off.(key e + 1) + 1) edge_arr;
  for i = 1 to n do
    off.(i) <- off.(i) + off.(i - 1)
  done;
  let idx = Array.make m 0 in
  let cursor = Array.sub off 0 n in
  for k = 0 to m - 1 do
    let node = key edge_arr.(k) in
    idx.(cursor.(node)) <- k;
    cursor.(node) <- cursor.(node) + 1
  done;
  (off, idx)

(* Kahn topological sort of the zero-distance subgraph over the CSR
   arrays.  Returns None if that subgraph has a cycle. *)
let topo_order_csr n edge_arr succ_off succ_idx =
  let indeg = Array.make n 0 in
  Array.iter
    (fun (e : Edge.t) -> if e.distance = 0 then indeg.(e.dst) <- indeg.(e.dst) + 1)
    edge_arr;
  let queue = Queue.create () in
  Array.iteri (fun i d -> if d = 0 then Queue.add i queue) indeg;
  let order = ref [] in
  let count = ref 0 in
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    incr count;
    order := i :: !order;
    for k = succ_off.(i) to succ_off.(i + 1) - 1 do
      let e : Edge.t = edge_arr.(succ_idx.(k)) in
      if e.distance = 0 then begin
        indeg.(e.dst) <- indeg.(e.dst) - 1;
        if indeg.(e.dst) = 0 then Queue.add e.dst queue
      end
    done
  done;
  if !count = n then Some (List.rev !order) else None

let of_instrs instrs edges =
  Array.iteri
    (fun i (ins : Instr.t) ->
      if ins.id <> i then invalid_arg "Ddg.of_instrs: id/index mismatch")
    instrs;
  let n = Array.length instrs in
  let edge_arr = Array.of_list edges in
  Array.iter
    (fun (e : Edge.t) ->
      if e.src < 0 || e.src >= n || e.dst < 0 || e.dst >= n then
        invalid_arg "Ddg.of_instrs: edge endpoint out of range")
    edge_arr;
  let succ_off, succ_idx = csr_index n edge_arr (fun (e : Edge.t) -> e.src) in
  let pred_off, pred_idx = csr_index n edge_arr (fun (e : Edge.t) -> e.dst) in
  let topo =
    match topo_order_csr n edge_arr succ_off succ_idx with
    | Some order -> order
    | None -> invalid_arg "Ddg.of_instrs: zero-distance dependence cycle"
  in
  let list_view off idx =
    Array.init n (fun i ->
        List.init
          (off.(i + 1) - off.(i))
          (fun k -> edge_arr.(idx.(off.(i) + k))))
  in
  {
    instrs;
    edge_arr;
    succ_off;
    succ_idx;
    pred_off;
    pred_idx;
    edges_l = edges;
    succs_l = list_view succ_off succ_idx;
    preds_l = list_view pred_off pred_idx;
    topo;
  }

module Builder = struct
  type t = {
    mutable rev_instrs : Instr.t list;
    mutable rev_edges : Edge.t list;
    mutable count : int;
    mutable lat : int array;  (* latency of instruction i, O(1) lookup *)
  }

  let create () =
    { rev_instrs = []; rev_edges = []; count = 0; lat = Array.make 16 0 }

  let add_instr b ?name op =
    let id = b.count in
    let name = match name with Some n -> n | None -> Printf.sprintf "n%d" id in
    let ins = Instr.make ~id ~name ~op in
    b.rev_instrs <- ins :: b.rev_instrs;
    if id >= Array.length b.lat then begin
      let bigger = Array.make (2 * Array.length b.lat) 0 in
      Array.blit b.lat 0 bigger 0 id;
      b.lat <- bigger
    end;
    b.lat.(id) <- Instr.latency ins;
    b.count <- id + 1;
    id

  let add_edge b ?kind ?distance ?latency src dst =
    if src < 0 || src >= b.count || dst < 0 || dst >= b.count then
      invalid_arg "Ddg.Builder.add_edge: unknown endpoint";
    let latency = match latency with Some l -> l | None -> b.lat.(src) in
    b.rev_edges <- Edge.make ?kind ?distance ~src ~dst ~latency () :: b.rev_edges

  let build b =
    of_instrs (Array.of_list (List.rev b.rev_instrs)) (List.rev b.rev_edges)
end

let fu_demand t =
  let counts = Array.make Opcode.n_fu_kinds 0 in
  Array.iter
    (fun ins ->
      let k = Opcode.fu_index (Instr.fu ins) in
      counts.(k) <- counts.(k) + 1)
    t.instrs;
  List.map (fun kind -> (kind, counts.(Opcode.fu_index kind))) Opcode.all_fu_kinds

let topo_order t = t.topo

let earliest_starts t =
  let n = n_instrs t in
  let start = Array.make n 0 in
  List.iter
    (fun i ->
      iter_succs t i (fun (e : Edge.t) ->
          if e.distance = 0 then
            start.(e.dst) <- max start.(e.dst) (start.(i) + e.latency)))
    (topo_order t);
  start

let heights t =
  let n = n_instrs t in
  let h = Array.make n 0 in
  Array.iteri (fun i ins -> h.(i) <- Instr.latency ins) t.instrs;
  List.iter
    (fun i ->
      iter_succs t i (fun (e : Edge.t) ->
          if e.distance = 0 then h.(i) <- max h.(i) (e.latency + h.(e.dst))))
    (List.rev (topo_order t));
  h

let acyclic_critical_path t =
  if n_instrs t = 0 then 0
  else Array.fold_left max 0 (heights t)

let total_energy t =
  Array.fold_left (fun acc ins -> acc +. Instr.energy ins) 0.0 t.instrs

let pp ppf t =
  Format.fprintf ppf "@[<v>ddg (%d instrs, %d edges)" (n_instrs t) (n_edges t);
  Array.iter (fun ins -> Format.fprintf ppf "@,  %a" Instr.pp ins) t.instrs;
  Array.iter (fun e -> Format.fprintf ppf "@,  %a" Edge.pp e) t.edge_arr
