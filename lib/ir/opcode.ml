type clazz = Memory | Arith | Mult | Div
type domain = Int | Fp
type t = { clazz : clazz; domain : domain }

let make clazz domain = { clazz; domain }

(* Paper Table 1: latency and energy (relative to an integer add). *)
let latency t =
  match (t.clazz, t.domain) with
  | Memory, (Int | Fp) -> 2
  | Arith, Int -> 1
  | Arith, Fp -> 3
  | Mult, Int -> 2
  | Mult, Fp -> 6
  | Div, Int -> 6
  | Div, Fp -> 18

let energy t =
  match (t.clazz, t.domain) with
  | Memory, (Int | Fp) -> 1.0
  | Arith, Int -> 1.0
  | Arith, Fp -> 1.2
  | Mult, Int -> 1.1
  | Mult, Fp -> 1.5
  | Div, Int -> 1.4
  | Div, Fp -> 2.0

type fu_kind = Int_fu | Fp_fu | Mem_port

let fu t =
  match (t.clazz, t.domain) with
  | Memory, (Int | Fp) -> Mem_port
  | (Arith | Mult | Div), Int -> Int_fu
  | (Arith | Mult | Div), Fp -> Fp_fu

let all =
  [
    { clazz = Memory; domain = Int };
    { clazz = Memory; domain = Fp };
    { clazz = Arith; domain = Int };
    { clazz = Arith; domain = Fp };
    { clazz = Mult; domain = Int };
    { clazz = Mult; domain = Fp };
    { clazz = Div; domain = Int };
    { clazz = Div; domain = Fp };
  ]

let all_fu_kinds = [ Int_fu; Fp_fu; Mem_port ]
let n_fu_kinds = 3
let fu_index = function Int_fu -> 0 | Fp_fu -> 1 | Mem_port -> 2

let mnemonics =
  [
    ("ld.i", { clazz = Memory; domain = Int });
    ("st.i", { clazz = Memory; domain = Int });
    ("ld.f", { clazz = Memory; domain = Fp });
    ("st.f", { clazz = Memory; domain = Fp });
    ("add.i", { clazz = Arith; domain = Int });
    ("add.f", { clazz = Arith; domain = Fp });
    ("mul.i", { clazz = Mult; domain = Int });
    ("mul.f", { clazz = Mult; domain = Fp });
    ("div.i", { clazz = Div; domain = Int });
    ("div.f", { clazz = Div; domain = Fp });
    ("sqrt.f", { clazz = Div; domain = Fp });
    ("mod.i", { clazz = Div; domain = Int });
  ]

let of_mnemonic s = List.assoc_opt s mnemonics

let clazz_to_string = function
  | Memory -> "mem"
  | Arith -> "arith"
  | Mult -> "mult"
  | Div -> "div"

let domain_to_string = function Int -> "i" | Fp -> "f"

let to_string t = clazz_to_string t.clazz ^ "." ^ domain_to_string t.domain

let fu_to_string = function
  | Int_fu -> "int-fu"
  | Fp_fu -> "fp-fu"
  | Mem_port -> "mem-port"

let equal a b = a.clazz = b.clazz && a.domain = b.domain
let compare = Stdlib.compare
let pp ppf t = Format.pp_print_string ppf (to_string t)
let pp_fu ppf k = Format.pp_print_string ppf (fu_to_string k)
