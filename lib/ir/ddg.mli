(** Data-dependence graphs of loop bodies.

    A DDG is an immutable graph over a dense array of instructions with
    dependence edges carrying (latency, distance).  Zero-distance edges
    must form a DAG (a same-iteration dependence cycle is meaningless);
    loop-carried cycles are recurrences and are analysed by {!Scc} and
    {!Recurrence}. *)

type t

(** {1 Construction} *)

module Builder : sig
  type ddg := t
  type t

  val create : unit -> t

  val add_instr : t -> ?name:string -> Opcode.t -> Instr.id
  (** Returns the dense id of the new instruction.  [name] defaults to
      ["n<id>"]. *)

  val add_edge :
    t -> ?kind:Edge.kind -> ?distance:int -> ?latency:int -> Instr.id
    -> Instr.id -> unit
  (** [latency] defaults to the latency of the source instruction, the
      common case for flow dependences.
      @raise Invalid_argument on unknown endpoints. *)

  val build : t -> ddg
  (** @raise Invalid_argument if the zero-distance subgraph has a
      cycle. *)
end

val of_instrs : Instr.t array -> Edge.t list -> t
(** Low-level constructor; performs the same validation as
    [Builder.build].  Instruction ids must equal their array index. *)

(** {1 Accessors} *)

val n_instrs : t -> int
val instr : t -> Instr.id -> Instr.t
val instrs : t -> Instr.t array
val edges : t -> Edge.t list
val n_edges : t -> int
val succs : t -> Instr.id -> Edge.t list
val preds : t -> Instr.id -> Edge.t list

val find_instr : t -> string -> Instr.t option
(** Lookup by name (first match). *)

(** {1 Indexed (CSR) view}

    Flat-array access for hot paths: no list traversal, no per-query
    allocation.  Edges are visited in the same order as the list
    accessors above (construction order per node). *)

val edge_array : t -> Edge.t array
(** All edges in construction order.  Physical array — do not mutate. *)

val out_degree : t -> Instr.id -> int
val in_degree : t -> Instr.id -> int
val iter_succs : t -> Instr.id -> (Edge.t -> unit) -> unit
val iter_preds : t -> Instr.id -> (Edge.t -> unit) -> unit
val fold_succs : t -> Instr.id -> ('a -> Edge.t -> 'a) -> 'a -> 'a
val fold_preds : t -> Instr.id -> ('a -> Edge.t -> 'a) -> 'a -> 'a

(** {1 Analyses} *)

val fu_demand : t -> (Opcode.fu_kind * int) list
(** Number of instructions per resource kind (every kind present in
    [Opcode.all_fu_kinds], possibly with count 0). *)

val topo_order : t -> Instr.id list
(** Topological order of the zero-distance subgraph. *)

val acyclic_critical_path : t -> int
(** Length (sum of edge latencies, plus the last instruction's latency)
    of the longest path through zero-distance edges — a lower bound on
    the iteration length in cycles on a single-frequency machine. *)

val earliest_starts : t -> int array
(** Longest-path-from-roots start cycle for each instruction over the
    zero-distance subgraph (ASAP times with infinite resources). *)

val heights : t -> int array
(** Longest path (in latency) from each instruction to any sink of the
    zero-distance subgraph, including the instruction's own latency.
    Standard scheduling priority. *)

val total_energy : t -> float
(** Sum of per-instruction dynamic energies (relative to an int add). *)

val pp : Format.formatter -> t -> unit
