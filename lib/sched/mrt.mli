(** Modulo reservation tables.

    One table per cluster (II_C columns, one row per functional-unit
    kind with the cluster's capacity) plus one for the ICN buses (II_ICN
    columns, capacity = number of buses).  An operation issued at
    absolute cycle [k] occupies column [k mod II] of its domain. *)

open Hcv_ir
open Hcv_machine

type t

val create : Machine.t -> Clocking.t -> t
(** Empty tables for the given clocking.
    @raise Invalid_argument on cluster-count mismatch. *)

val fu_available : t -> cluster:int -> kind:Opcode.fu_kind -> cycle:int -> bool
val fu_reserve : t -> cluster:int -> kind:Opcode.fu_kind -> cycle:int -> unit
(** @raise Invalid_argument when the slot is full (callers must check
    {!fu_available} first). *)

val fu_release : t -> cluster:int -> kind:Opcode.fu_kind -> cycle:int -> unit
(** @raise Invalid_argument when the slot is already empty. *)

val bus_available : t -> cycle:int -> bool
val bus_reserve : t -> cycle:int -> unit
val bus_release : t -> cycle:int -> unit

val bus_first_free : t -> earliest:int -> latest:int -> int option
(** Earliest cycle in [[max 0 earliest, latest]] whose bus slot has
    spare capacity — the same answer as a linear [bus_available] scan,
    but starting from an internally tracked verified-full prefix, so
    repeated searches over a mostly-full window are O(1). *)

val fu_slots_free : t -> cluster:int -> kind:Opcode.fu_kind -> int
(** Number of modulo slots of one FU row with spare capacity.  Zero
    means [fu_available] is false at every cycle, so a placement scan
    can fail immediately. *)

val bus_slots_free : t -> int
(** Number of bus modulo slots with spare capacity.  Zero means no new
    transfer can ever be created (and none can move, so the table can
    no longer change). *)

val fu_used : t -> cluster:int -> kind:Opcode.fu_kind -> slot:int -> int
(** Occupancy of one column (for tests and pretty-printing). *)

val bus_used : t -> slot:int -> int

val clear : t -> unit
val pp : Format.formatter -> t -> unit
