open Hcv_support
open Hcv_ir
open Hcv_machine

type failure = Budget_exhausted | Positive_cycle | Register_pressure

let failure_to_string = function
  | Budget_exhausted -> "scheduling budget exhausted"
  | Positive_cycle -> "recurrence cannot meet the initiation time"
  | Register_pressure -> "register lifetimes exceed the register files"

(* Early-exit iteration over CSR adjacency — the hot-path replacement
   for List.for_all over the legacy edge lists (same visit order). *)
exception False

let forall_preds ddg i f =
  match
    Ddg.iter_preds ddg i (fun e -> if not (f e) then raise_notrace False)
  with
  | () -> true
  | exception False -> false

let forall_succs ddg i f =
  match
    Ddg.iter_succs ddg i (fun e -> if not (f e) then raise_notrace False)
  with
  | () -> true
  | exception False -> false

(* Longest time-path from each node to any node (its "height"): the
   classical scheduling priority, here over rational time.  Returns
   None when a positive cycle exists (the IT is below what the
   partitioned recurrences need).  Edge weights (source latency at its
   cluster's effective cycle time minus the iterations the dependence
   spans) are precomputed once; the relaxation rounds then only add. *)
let heights memo ddg assignment =
  let clocking = Timing.Memo.clocking memo in
  let n = Ddg.n_instrs ddg in
  let h =
    Array.init n (fun i ->
        Timing.Memo.def_offset memo ~cluster:assignment.(i) (Ddg.instr ddg i))
  in
  let edge_arr = Ddg.edge_array ddg in
  let weights =
    Array.map
      (fun (e : Edge.t) ->
        Q.sub
          (Timing.Memo.lat_offset memo ~cluster:assignment.(e.src)
             (Instr.fu (Ddg.instr ddg e.src))
             e.latency)
          (Q.mul_int clocking.Clocking.it e.distance))
      edge_arr
  in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds <= n do
    changed := false;
    incr rounds;
    Array.iteri
      (fun k (e : Edge.t) ->
        let cand = Q.add weights.(k) h.(e.dst) in
        if Q.( > ) cand h.(e.src) then begin
          h.(e.src) <- cand;
          changed := true
        end)
      edge_arr
  done;
  if !changed then None else Some h

type transfer_state = {
  mutable bus_cycle : int;
  mutable users : int;  (* placed consumers currently relying on it *)
}

type state = {
  machine : Machine.t;
  clocking : Clocking.t;
  memo : Timing.Memo.t;
  loop : Loop.t;
  assignment : int array;
  buslat : int;
  mrt : Mrt.t;
  placed : bool array;
  cyc : int array;
  last_forced : int array;
  it_d : Q.t array;  (* it * distance, for the distances in the DDG *)
  transfers : (int * int, transfer_state) Hashtbl.t;
      (* (producer, destination cluster) -> bus slot *)
}

let ddg st = st.loop.Loop.ddg
let it st = st.clocking.Clocking.it
let instr st i = Ddg.instr (ddg st) i

let it_mul st d =
  if d < Array.length st.it_d then st.it_d.(d) else Q.mul_int (it st) d

let start_of st i =
  Timing.Memo.start_time st.memo ~cluster:st.assignment.(i) ~cycle:st.cyc.(i)

(* Definition time of [src] under edge latency [lat]. *)
let def_of st src lat =
  Q.add (start_of st src)
    (Timing.Memo.lat_offset st.memo ~cluster:st.assignment.(src)
       (Instr.fu (instr st src))
       lat)

let value_def st src =
  Q.add (start_of st src)
    (Timing.Memo.def_offset st.memo ~cluster:st.assignment.(src) (instr st src))

(* ----- transfer management ------------------------------------- *)

let find_bus st ~earliest ~latest = Mrt.bus_first_free st.mrt ~earliest ~latest

(* Ensure the value of [src] reaches [dst_cluster] by [need].  Commits
   bus reservations; records an undo thunk in [undo].  The transfer's
   earliest slot depends only on [src]'s placement. *)
let serve_transfer st ~undo ~src ~dst_cluster ~need =
  let key = (src, dst_cluster) in
  let earliest =
    Timing.earliest_bus_cycle st.clocking ~def_time:(value_def st src)
  in
  let latest = Timing.latest_bus_cycle st.clocking ~buslat:st.buslat ~need in
  match Hashtbl.find_opt st.transfers key with
  | Some ts when ts.bus_cycle <= latest && ts.bus_cycle >= earliest ->
    ts.users <- ts.users + 1;
    undo := (fun () -> ts.users <- ts.users - 1) :: !undo;
    true
  | Some ts -> (
    (* Move the transfer; any slot in [earliest, latest] also serves
       the existing consumers (their needs were >= this window's start
       ... moving earlier only helps; moving later than the old slot
       could break them, so only move earlier). *)
    let latest = min latest (ts.bus_cycle - 1) in
    match find_bus st ~earliest ~latest with
    | Some b ->
      let old = ts.bus_cycle in
      Mrt.bus_release st.mrt ~cycle:old;
      Mrt.bus_reserve st.mrt ~cycle:b;
      ts.bus_cycle <- b;
      ts.users <- ts.users + 1;
      undo :=
        (fun () ->
          ts.users <- ts.users - 1;
          Mrt.bus_release st.mrt ~cycle:b;
          Mrt.bus_reserve st.mrt ~cycle:old;
          ts.bus_cycle <- old)
        :: !undo;
      true
    | None -> false)
  | None -> (
    match find_bus st ~earliest ~latest with
    | Some b ->
      Mrt.bus_reserve st.mrt ~cycle:b;
      Hashtbl.replace st.transfers key { bus_cycle = b; users = 1 };
      undo :=
        (fun () ->
          Mrt.bus_release st.mrt ~cycle:b;
          Hashtbl.remove st.transfers key)
        :: !undo;
      true
    | None -> false)

(* Remove all transfer involvement of instruction [i]. *)
let drop_transfers st i =
  (* As producer. *)
  let dead =
    Hashtbl.fold
      (fun ((src, _) as key) ts acc ->
        if src = i then (key, ts) :: acc else acc)
      st.transfers []
  in
  List.iter
    (fun (key, (ts : transfer_state)) ->
      Mrt.bus_release st.mrt ~cycle:ts.bus_cycle;
      Hashtbl.remove st.transfers key)
    dead;
  (* As consumer: release one use of each incoming cross-cluster value. *)
  let c = st.assignment.(i) in
  Ddg.iter_preds (ddg st) i (fun (e : Edge.t) ->
      if
        Edge.carries_value e && st.placed.(e.src)
        && st.assignment.(e.src) <> c
      then
        match Hashtbl.find_opt st.transfers (e.src, c) with
        | Some ts ->
          ts.users <- ts.users - 1;
          if ts.users <= 0 then begin
            Mrt.bus_release st.mrt ~cycle:ts.bus_cycle;
            Hashtbl.remove st.transfers (e.src, c)
          end
        | None -> ())

let unplace st i =
  assert st.placed.(i);
  st.placed.(i) <- false;
  Mrt.fu_release st.mrt ~cluster:st.assignment.(i)
    ~kind:(Instr.fu (instr st i))
    ~cycle:st.cyc.(i);
  drop_transfers st i

(* ----- constraint checks around a tentative placement ----------- *)

(* Earliest start time of [i] implied by its placed predecessors. *)
let ready_time st i =
  let c = st.assignment.(i) in
  Ddg.fold_preds (ddg st) i
    (fun acc (e : Edge.t) ->
      if not st.placed.(e.src) then acc
      else begin
        let def = def_of st e.src e.latency in
        let r =
          if st.assignment.(e.src) = c then
            Timing.dep_ready_same st.clocking ~it:(it st) ~def_time:def
              ~distance:e.distance
          else if Edge.carries_value e then
            Q.sub
              (Timing.bus_arrival st.clocking ~buslat:st.buslat
                 ~bus_cycle:
                   (Timing.earliest_bus_cycle st.clocking
                      ~def_time:(value_def st e.src)))
              (it_mul st e.distance)
          else
            Q.sub
              (Q.add def (Timing.sync_penalty st.clocking))
              (it_mul st e.distance)
        in
        Q.max acc r
      end)
    Q.zero

(* Try to place [i] at cycle [k]; commits on success, rolls back on
   failure.  [check_succs] distinguishes the normal path (all placed
   neighbour constraints must hold) from forced placement (violating
   neighbours get evicted by the caller). *)
let try_place st i k =
  let c = st.assignment.(i) in
  let kind = Instr.fu (instr st i) in
  if not (Mrt.fu_available st.mrt ~cluster:c ~kind ~cycle:k) then false
  else begin
    let undo = ref [] in
    let prev_cyc = st.cyc.(i) in
    st.cyc.(i) <- k;
    st.placed.(i) <- true;
    let rollback () =
      List.iter (fun f -> f ()) !undo;
      st.placed.(i) <- false;
      st.cyc.(i) <- prev_cyc
    in
    let ok_preds =
      forall_preds (ddg st) i (fun (e : Edge.t) ->
          if not st.placed.(e.src) || e.src = i then true
          else begin
            let lhs = Q.add (start_of st i) (it_mul st e.distance) in
            let def = def_of st e.src e.latency in
            if st.assignment.(e.src) = c then Q.( >= ) lhs def
            else if Edge.carries_value e then
              serve_transfer st ~undo ~src:e.src ~dst_cluster:c ~need:lhs
            else Q.( >= ) lhs (Q.add def (Timing.sync_penalty st.clocking))
          end)
    in
    let ok_succs =
      ok_preds
      && forall_succs (ddg st) i (fun (e : Edge.t) ->
             if not st.placed.(e.dst) || e.dst = i then true
             else begin
               let lhs = Q.add (start_of st e.dst) (it_mul st e.distance) in
               let def = def_of st i e.latency in
               if st.assignment.(e.dst) = c then Q.( >= ) lhs def
               else if Edge.carries_value e then
                 serve_transfer st ~undo ~src:i
                   ~dst_cluster:st.assignment.(e.dst) ~need:lhs
               else Q.( >= ) lhs (Q.add def (Timing.sync_penalty st.clocking))
             end)
    in
    (* Self edges (i -> i): pure IT feasibility, checked in both lists
       above via the e.src = i / e.dst = i guards being skipped -- check
       them here explicitly. *)
    let ok_self =
      ok_succs
      && forall_succs (ddg st) i (fun (e : Edge.t) ->
             e.dst <> i
             || Q.( >= )
                  (Q.add (start_of st i) (it_mul st e.distance))
                  (def_of st i e.latency))
    in
    if ok_self then begin
      Mrt.fu_reserve st.mrt ~cluster:c ~kind ~cycle:k;
      true
    end
    else begin
      rollback ();
      false
    end
  end

(* Forced placement at [k]: evict whatever stands in the way, place
   unconditionally.  Returns evicted instructions. *)
let force_place st i k =
  let c = st.assignment.(i) in
  let kind = Instr.fu (instr st i) in
  let evicted = ref [] in
  let evict j =
    if st.placed.(j) && j <> i then begin
      unplace st j;
      evicted := j :: !evicted
    end
  in
  (* Resource conflicts: occupants of the same modulo slot. *)
  let ii = st.clocking.Clocking.cluster_ii.(c) in
  while not (Mrt.fu_available st.mrt ~cluster:c ~kind ~cycle:k) do
    (* Find a placed occupant of this (cluster, kind, slot). *)
    let slot = k mod ii in
    let victim = ref (-1) in
    Array.iteri
      (fun j p ->
        if
          !victim = -1 && p && j <> i
          && st.assignment.(j) = c
          && Instr.fu (instr st j) = kind
          && st.cyc.(j) mod ii = slot
        then victim := j)
      st.placed;
    if !victim = -1 then
      (* No placed occupant (capacity 0): nothing can free the slot.
         This only happens when the partition put an op on a cluster
         with no unit of that kind -- treat as impossible and let the
         caller's budget run out quickly. *)
      raise Exit
    else evict !victim
  done;
  st.cyc.(i) <- k;
  st.placed.(i) <- true;
  Mrt.fu_reserve st.mrt ~cluster:c ~kind ~cycle:k;
  (* Evict any placed neighbour whose constraint the forced placement
     breaks (or whose transfer cannot be scheduled). *)
  let check_edge (e : Edge.t) =
    if st.placed.(e.src) && st.placed.(e.dst) then begin
      let lhs = Q.add (start_of st e.dst) (it_mul st e.distance) in
      let def = def_of st e.src e.latency in
      let other = if e.src = i then e.dst else e.src in
      if e.src = e.dst then begin
        if Q.( < ) lhs def then (* self recurrence broken: unfixable here *)
          ()
      end
      else if st.assignment.(e.src) = st.assignment.(e.dst) then begin
        if Q.( < ) lhs def then evict other
      end
      else if Edge.carries_value e then begin
        let undo = ref [] in
        if
          not
            (serve_transfer st ~undo ~src:e.src
               ~dst_cluster:st.assignment.(e.dst) ~need:lhs)
        then evict other
      end
      else if Q.( < ) lhs (Q.add def (Timing.sync_penalty st.clocking)) then
        evict other
    end
  in
  Ddg.iter_preds (ddg st) i check_edge;
  Ddg.iter_succs (ddg st) i check_edge;
  !evicted

let contains_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* Recompute the full transfer set from the final placements: one bus
   transfer per (producer, destination cluster), scheduled earliest-
   deadline-first.  Clears whatever the incremental bookkeeping left. *)
let rebuild_transfers st =
  Hashtbl.iter
    (fun _ (ts : transfer_state) -> Mrt.bus_release st.mrt ~cycle:ts.bus_cycle)
    st.transfers;
  Hashtbl.reset st.transfers;
  (* Collect the tightest deadline per (src, dst cluster). *)
  let needs : (int * int, Q.t) Hashtbl.t = Hashtbl.create 16 in
  Array.iter
    (fun (e : Edge.t) ->
      if Edge.carries_value e && st.assignment.(e.src) <> st.assignment.(e.dst)
      then begin
        let key = (e.src, st.assignment.(e.dst)) in
        let lhs = Q.add (start_of st e.dst) (it_mul st e.distance) in
        match Hashtbl.find_opt needs key with
        | Some prev when Q.( <= ) prev lhs -> ()
        | Some _ | None -> Hashtbl.replace needs key lhs
      end)
    (Ddg.edge_array (ddg st));
  let ordered =
    Hashtbl.fold (fun key need acc -> (need, key) :: acc) needs []
    |> List.sort (fun (a, ka) (b, kb) ->
           match Q.compare a b with 0 -> Stdlib.compare ka kb | c -> c)
  in
  let ok =
    List.for_all
      (fun (need, ((src, _dst_cluster) as key)) ->
        let earliest =
          Timing.earliest_bus_cycle st.clocking ~def_time:(value_def st src)
        in
        let latest =
          Timing.latest_bus_cycle st.clocking ~buslat:st.buslat ~need
        in
        match find_bus st ~earliest ~latest with
        | Some b ->
          Mrt.bus_reserve st.mrt ~cycle:b;
          Hashtbl.replace st.transfers key { bus_cycle = b; users = 1 };
          true
        | None -> false)
      ordered
  in
  if ok then Ok () else Error ()

(* it * d for every distance in the DDG, precomputed. *)
let it_table clocking ddg =
  let maxd =
    Array.fold_left
      (fun acc (e : Edge.t) -> max acc e.distance)
      0 (Ddg.edge_array ddg)
  in
  Array.init (maxd + 1) (fun d -> Q.mul_int clocking.Clocking.it d)

let run ~machine ~clocking ~loop ~assignment ?(budget_factor = 16) () =
  let ddg_ = loop.Loop.ddg in
  let n = Ddg.n_instrs ddg_ in
  if Array.length assignment <> n then
    invalid_arg "Slot_sched.run: assignment arity mismatch";
  let memo = Timing.Memo.create clocking in
  match heights memo ddg_ assignment with
  | None -> Error Positive_cycle
  | Some h ->
    let st =
      {
        machine;
        clocking;
        memo;
        loop;
        assignment;
        buslat = machine.Machine.icn.Icn.latency_cycles;
        mrt = Mrt.create machine clocking;
        placed = Array.make n false;
        cyc = Array.make n 0;
        last_forced = Array.make n (-1);
        it_d = it_table clocking ddg_;
        transfers = Hashtbl.create 16;
      }
    in
    let budget = ref (budget_factor * max n 1) in
    let next_unplaced () =
      let best = ref (-1) in
      for i = n - 1 downto 0 do
        if not st.placed.(i) then
          if !best = -1 || Q.( > ) h.(i) h.(!best) then best := i
      done;
      !best
    in
    let rec loop_sched () =
      let i = next_unplaced () in
      if i = -1 then Ok ()
      else if !budget <= 0 then Error Budget_exhausted
      else begin
        decr budget;
        let c = st.assignment.(i) in
        let ii = st.clocking.Clocking.cluster_ii.(c) in
        let e0 =
          Timing.earliest_cycle st.clocking ~cluster:c ~ready:(ready_time st i)
        in
        let rec try_k k remaining =
          if remaining = 0 then false
          else if try_place st i k then true
          else try_k (k + 1) (remaining - 1)
        in
        if try_k e0 (max ii 1) then loop_sched ()
        else begin
          let kf = max e0 (st.last_forced.(i) + 1) in
          st.last_forced.(i) <- kf;
          match force_place st i kf with
          | _evicted -> loop_sched ()
          | exception Exit -> Error Budget_exhausted
        end
      end
    in
    (match loop_sched () with
    | Error e -> Error e
    | Ok () -> (
      (* The incremental transfer bookkeeping above is a heuristic
         capacity pressure; rebuild the transfer set from scratch so the
         final schedule is exactly consistent with the placements. *)
      match rebuild_transfers st with
      | Error () -> Error Budget_exhausted
      | Ok () ->
        let placements =
          Array.init n (fun i ->
              { Schedule.cluster = st.assignment.(i); cycle = st.cyc.(i) })
        in
        let transfers =
          Hashtbl.fold
            (fun (src, dst_cluster) ts acc ->
              { Schedule.src; dst_cluster; bus_cycle = ts.bus_cycle } :: acc)
            st.transfers []
          |> List.sort Stdlib.compare
        in
        let sched =
          Schedule.make ~loop ~machine ~clocking ~placements ~transfers
        in
        (match Schedule.validate sched with
        | Ok () -> Ok sched
        | Error errs ->
          if
            List.for_all
              (fun m -> contains_substring m "register pressure")
              errs
          then Error Register_pressure
          else
            invalid_arg
              (Printf.sprintf "Slot_sched.run: internal error: %s"
                 (String.concat "; " errs)))))
