(** Control-path overhead of the distributed clustered VLIW (paper
    §2.1).

    The machine follows HPL-PD's unbundled branch architecture with a
    distributed control path: every cluster keeps its own PC and
    executes, per loop iteration,
    - one branch-target computation (an integer operation per cluster),
    - one branch-condition evaluation in a single cluster (the one
      hosting the loop counter), whose result is broadcast to the other
      clusters over the ICN,
    - one control-transfer operation per cluster when the branch is
      taken.

    The modulo schedulers treat the loop back-branch as free (the paper
    does too: the branch executes in parallel with the kernel); this
    module quantifies that overhead for a given schedule so it can be
    reported or charged explicitly. *)


type t = {
  branch_ops_per_iter : int;
      (** target computations + control transfers across clusters,
          plus the single condition evaluation *)
  broadcasts_per_iter : int;  (** condition broadcasts over the ICN *)
  energy_per_iter : float;
      (** Table-1 relative energy of the control operations *)
  slack_ok : bool;
      (** the condition can be computed and broadcast within one II on
          the condition cluster (no IT increase needed) *)
}

val analyze : ?cond_cluster:int -> Schedule.t -> t
(** [cond_cluster] defaults to the schedule's fastest int-capable
    cluster (the fastest cluster outright on int-uniform machines,
    first on ties).  The branch ops are integer-arithmetic class; each
    broadcast costs one bus transfer. *)

val overhead_activity : t -> trip:int -> n_clusters:int -> cond_cluster:int
  -> Hcv_energy.Activity.t -> Hcv_energy.Activity.t
(** Add the control overhead of [trip] iterations to an activity (the
    instruction energy is charged to the clusters, the broadcasts to the
    ICN); execution time is unchanged when [slack_ok]. *)

val pp : Format.formatter -> t -> unit
