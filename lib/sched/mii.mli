(** Minimum initiation interval bounds for homogeneous machines
    (Rau's resMII / recMII, paper §2.2). *)

val missing_kinds :
  Hcv_machine.Machine.t -> Hcv_ir.Ddg.t -> Hcv_ir.Opcode.fu_kind list
(** Resource kinds the loop demands but no cluster can execute —
    non-empty means the loop is unschedulable on this machine.  The
    pipeline entry points screen with this so user-supplied
    capability-asymmetric machines degrade to structured errors. *)

val missing_kinds_msg :
  Hcv_machine.Machine.t -> Hcv_ir.Ddg.t -> string option
(** Human-readable rendering of {!missing_kinds}; [None] when the
    machine covers every demanded kind. *)

val res_mii : Hcv_machine.Machine.t -> Hcv_ir.Ddg.t -> int
(** Resource-constrained bound: max over resource kinds of
    [ceil(demand / machine-wide count)].  On capability-asymmetric
    machines this is still the exact minimum over binding-feasible
    assignments of the per-cluster bounds (the proportional split over
    capable clusters attains it).  Kinds with demand but no resource
    anywhere raise [Invalid_argument] — screen with {!missing_kinds}.
    At least 1 for non-empty loops. *)

val res_mii_cluster : Hcv_machine.Cluster.t -> Hcv_ir.Ddg.t -> Hcv_ir.Instr.id list -> int
(** Same bound restricted to the instructions assigned to one
    cluster. *)

val eligibility :
  Hcv_machine.Machine.t -> Hcv_ir.Ddg.t -> bool array array option
(** Per-instruction cluster-capability masks in {!Partition}'s
    [?eligible] format, or [None] when the machine is
    capability-symmetric (so symmetric machines take the byte-identical
    unmasked path). *)

val rec_mii : Hcv_ir.Ddg.t -> int
(** Recurrence-constrained bound (0 when the loop has no
    recurrence). *)

val mii : Hcv_machine.Machine.t -> Hcv_ir.Ddg.t -> int
(** [max (res_mii, rec_mii, 1)]. *)

type constraint_class =
  | Resource_constrained  (** recMII < resMII *)
  | Borderline  (** resMII <= recMII < 1.3 * resMII *)
  | Recurrence_constrained  (** recMII >= 1.3 * resMII *)
      (** The paper's Table 2 classification of loops. *)

val classify : Hcv_machine.Machine.t -> Hcv_ir.Ddg.t -> constraint_class
val class_to_string : constraint_class -> string
