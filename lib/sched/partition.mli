(** Multilevel graph partitioning for cluster assignment (paper §4.1,
    following Aletà et al. MICRO'01 / PACT'02).

    The DDG is repeatedly *coarsened* by heavy-edge matching until at
    most as many macronodes remain as there are clusters; the coarsest
    graph gets an initial assignment; then each level is *refined* by
    greedy node moves guided by an externally supplied score (the
    homogeneous baseline scores pseudo-schedules with {!Pseudo.score};
    the heterogeneous scheduler scores predicted ED²).

    Nodes may be pre-assigned ([fixed]): they are kept in their cluster
    through coarsening (only compatible macronodes merge) and never
    moved during refinement — this implements the paper's pre-placement
    of critical recurrences (§4.1.1). *)

open Hcv_ir

type result = { assignment : int array; score : float }

val run :
  ?obs:Hcv_obs.Trace.span -> n_clusters:int -> ddg:Ddg.t
  -> ?fixed:(Instr.id * int) list -> ?groups:Instr.id list list -> ?seed:int
  -> score:(int array -> float) -> unit -> result
(** [score] maps a full per-instruction assignment to a cost (lower is
    better); it is called many times and should be cheap.  [seed]
    (default 0) perturbs tie-breaking deterministically.

    [?obs] (default {!Hcv_obs.Trace.null}) counts ["partition.runs"],
    the coarsening hierarchy depth ["partition.levels"] and the accepted
    refinement moves ["partition.refine_moves"].

    [groups] lists sets of instructions that must stay together through
    coarsening (the paper keeps recurrences whole, §4.1.1): each group
    becomes a single macronode one level above the instruction level, so
    groups can only be split by instruction-level refinement moves.
    Groups must be disjoint; instructions of one group must not carry
    conflicting [fixed] clusters.
    @raise Invalid_argument if [n_clusters < 1], an id is out of range,
    a fixed cluster is out of range, or groups overlap/conflict. *)

val initial_even : n_clusters:int -> Ddg.t -> int array
(** A trivial deterministic assignment (round-robin over a topological
    order) — used as a fallback and in tests. *)
