(** Multilevel graph partitioning for cluster assignment (paper §4.1,
    following Aletà et al. MICRO'01 / PACT'02).

    The DDG is repeatedly *coarsened* by heavy-edge matching until at
    most as many macronodes remain as there are clusters; the coarsest
    graph gets an initial assignment; then each level is *refined* by
    greedy node moves guided by an externally supplied score (the
    homogeneous baseline scores pseudo-schedules with {!Pseudo.score};
    the heterogeneous scheduler scores predicted ED²).

    Refinement is incremental-gain guided (Fiduccia–Mattheyses style):
    per-producer per-cluster value-edge counters give the *exact*
    cross-cluster transfer delta of any candidate move in O(deg) and
    are updated in O(deg) after a committed move.  {!Pseudo.score}
    prices a clean pseudo-schedule as [transfers * 100 + it_length]; the
    counters also track the current transfer total, so the residual
    [it_length = current - 100 * comms] is known exactly and any
    candidate whose transfer delta alone costs at least that residual
    provably cannot improve — it is pruned without a full estimate.
    The injected exact [score] is still
    consulted for every surviving move and decides acceptance, so a
    move is committed only when the exact score improves.  Stressed
    scores (structural penalties at or above [stressed]) fall back to
    scoring the full neighbourhood, exactly like the pre-gain-counter
    implementation.

    Nodes may be pre-assigned ([fixed]): they are kept in their cluster
    through coarsening (only compatible macronodes merge) and never
    moved during refinement — this implements the paper's pre-placement
    of critical recurrences (§4.1.1). *)

open Hcv_ir

type result = { assignment : int array; score : float }

(** Coarsening hierarchies, reusable across scoring contexts.

    Coarsening depends only on the DDG topology, the pre-placement
    constraints and the recurrence groups — never on the machine,
    clocking or score — so one hierarchy can serve every partitioner
    invocation of a scheduling call (every IT attempt and every
    restart). Levels are stored as flat CSR arrays (members, adjacency)
    so refinement walks them without hashing or per-node allocation. *)
module Hier : sig
  type t

  val build :
    ddg:Ddg.t -> ?fixed:(Instr.id * int) list -> ?groups:Instr.id list list
    -> unit -> t
  (** Coarsen [ddg] by heavy-edge matching down to a fixpoint (no pair
      of compatible macronodes left to merge).  [groups] lists sets of
      instructions that must stay together through coarsening (the
      paper keeps recurrences whole, §4.1.1): each group becomes a
      single macronode one level above the instruction level, so groups
      can only be split by instruction-level refinement moves.  Groups
      must be disjoint; instructions of one group must not carry
      conflicting [fixed] clusters.
      @raise Invalid_argument if an id is out of range or groups
      overlap/conflict.  (Fixed *cluster* ids are validated by
      {!run_hier}, which knows the cluster count.) *)

  val n_levels : t -> int
  (** Hierarchy depth, finest level included. *)
end

val run_hier :
  ?obs:Hcv_obs.Trace.span -> n_clusters:int -> hier:Hier.t -> ?seed:int
  -> ?stressed:float -> ?eligible:bool array array
  -> score:(int array -> float) -> unit -> result
(** Partition over a prebuilt hierarchy: initial assignment on the
    coarsest level with more than [n_clusters] macronodes (or the
    fixpoint level), then proxy-guided exact-gated refinement projected
    down to the instruction level.  [score] maps a full
    per-instruction assignment to a cost (lower is better); [seed]
    (default 0) perturbs the initial assignment deterministically, so
    restarts with different seeds explore different basins over the
    *same* hierarchy.

    [stressed] (default [1e7], {!Pseudo.score}'s first structural
    penalty tier) bounds the scores the transfer-delta pruning may
    trust: pruning engages only while the current score is below it.
    Pass [0.0] for scores that are not shaped like
    [transfers * 100 + nonnegative residual] (e.g. predicted ED²) — the
    full neighbourhood is then scored exactly, at the pre-gain-counter
    cost.

    [?eligible] (default: every placement allowed) supplies
    per-instruction capability masks for capability-asymmetric
    machines: [eligible.(i).(cl)] is false when instruction [i] cannot
    execute on cluster [cl] (no FU of its kind there).  Initial
    assignment and refinement then only ever propose eligible
    placements for free nodes; macronodes whose members' masks
    conflict at coarse levels fall back to unconstrained and are
    repaired at finer levels (deterministically, lowest eligible
    cluster), so the returned instruction-level assignment always
    respects the masks for non-fixed instructions.  Omitting the
    argument is byte-identical to the pre-capability behaviour —
    symmetric machines must omit it.

    [?obs] (default {!Hcv_obs.Trace.null}) counts ["partition.runs"],
    the refined hierarchy depth ["partition.levels"], the accepted
    refinement moves ["partition.refine_moves"], the exact-score
    consultations ["partition.exact_evals"] and the candidate moves the
    cut/load proxy pruned away ["partition.proxy_pruned"].
    @raise Invalid_argument if [n_clusters < 1] or a fixed cluster is
    out of range. *)

val run :
  ?obs:Hcv_obs.Trace.span -> n_clusters:int -> ddg:Ddg.t
  -> ?fixed:(Instr.id * int) list -> ?groups:Instr.id list list -> ?seed:int
  -> ?stressed:float -> ?eligible:bool array array
  -> score:(int array -> float) -> unit -> result
(** [Hier.build] followed by {!run_hier} — for one-shot callers.
    Callers that repartition the same (ddg, fixed, groups) under
    several scores should build the hierarchy once and call
    {!run_hier}.
    @raise Invalid_argument as {!Hier.build} and {!run_hier}. *)

val initial_even : n_clusters:int -> Ddg.t -> int array
(** A trivial deterministic assignment (round-robin over a topological
    order) — used as a fallback and in tests. *)
