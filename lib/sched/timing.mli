(** The timing rules shared by the scheduler, the schedule validator and
    the cycle simulator.

    All times are exact rationals in ns, measured from the start of the
    kernel's iteration 0.

    Rules:
    - an instruction issued at cycle [k] of cluster [c] starts at
      [k * ct_c] and defines its value at [(k + latency) * ct_eff],
      where [ct_eff = ct_c] except for memory operations, which advance
      at [max ct_c ct_cache] per cycle (the cache cannot deliver faster
      than its own clock; the paper always clocks the cache with the
      fastest cluster so this never bites in the evaluation);
    - a same-cluster dependence of distance [d] requires
      [start(dst) + d*IT >= def_time(src)];
    - a cross-cluster value transfer enters a synchronisation queue for
      one ICN cycle, occupies a bus for [Icn.latency_cycles] ICN cycles
      starting at bus cycle [b], and arrives at
      [(b + latency_cycles) * ct_icn]; the consumer then requires
      [start(dst) + d*IT >= arrival];
    - cross-cluster dependences that carry no value (anti/output/memory
      ordering) need no bus but pay one ICN cycle of synchronisation:
      [start(dst) + d*IT >= def_time(src) + ct_icn]. *)

open Hcv_support
open Hcv_ir

val eff_ct : Clocking.t -> cluster:int -> Instr.t -> Q.t
val start_time : Clocking.t -> cluster:int -> cycle:int -> Q.t
val def_time : Clocking.t -> cluster:int -> cycle:int -> Instr.t -> Q.t

val earliest_bus_cycle : Clocking.t -> def_time:Q.t -> int
(** First bus cycle usable by a value defined at [def_time] (includes
    the one-cycle synchronisation penalty). *)

val latest_bus_cycle : Clocking.t -> buslat:int -> need:Q.t -> int
(** Last bus cycle whose arrival is no later than [need] (may be
    negative, meaning no bus cycle can make it). *)

val bus_arrival : Clocking.t -> buslat:int -> bus_cycle:int -> Q.t

val earliest_cycle : Clocking.t -> cluster:int -> ready:Q.t -> int
(** First issue cycle of the cluster starting at or after [ready]
    (never negative). *)

val dep_ready_same : Clocking.t -> it:Q.t -> def_time:Q.t -> distance:int -> Q.t
(** Earliest start time of the consumer of a same-cluster dependence:
    [def_time - distance * it]. *)

val sync_penalty : Clocking.t -> Q.t
(** One ICN cycle, the cost of crossing clock domains without a bus. *)

(** Precomputed timing quantities for one fixed clocking.  [eff_ct] and
    the [eff_ct * latency] definition offsets are tabulated per
    (cluster, fu kind, latency) at creation, so the schedulers' per-edge
    queries cost an array read instead of a Q multiplication. *)
module Memo : sig
  type t

  val create : Clocking.t -> t
  val clocking : t -> Clocking.t

  val eff_ct : t -> cluster:int -> Opcode.fu_kind -> Q.t
  (** Equal to {!val:eff_ct} of any instruction of that kind. *)

  val lat_offset : t -> cluster:int -> Opcode.fu_kind -> int -> Q.t
  (** [eff_ct * lat] for an arbitrary (edge) latency. *)

  val def_offset : t -> cluster:int -> Instr.t -> Q.t
  (** [eff_ct * latency] — the instruction's definition delay. *)

  val start_time : t -> cluster:int -> cycle:int -> Q.t
  val def_time : t -> cluster:int -> cycle:int -> Instr.t -> Q.t
end
