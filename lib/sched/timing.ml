open Hcv_support
open Hcv_ir

let eff_ct clocking ~cluster ins =
  let ct = clocking.Clocking.cluster_ct.(cluster) in
  match Instr.fu ins with
  | Opcode.Mem_port -> Q.max ct clocking.Clocking.cache_ct
  | Opcode.Int_fu | Opcode.Fp_fu -> ct

let start_time clocking ~cluster ~cycle =
  Q.mul_int clocking.Clocking.cluster_ct.(cluster) cycle

let def_time clocking ~cluster ~cycle ins =
  Q.add (start_time clocking ~cluster ~cycle)
    (Q.mul_int (eff_ct clocking ~cluster ins) (Instr.latency ins))

let earliest_bus_cycle clocking ~def_time =
  (* One sync cycle: the transfer may start at the first ICN cycle
     boundary at least one ICN cycle after the value is ready;
     ceil((def + ct) / ct) = ceil(def / ct) + 1. *)
  max 0 (Q.ceil_div def_time clocking.Clocking.icn_ct + 1)

let latest_bus_cycle clocking ~buslat ~need =
  Q.floor_div need clocking.Clocking.icn_ct - buslat

let bus_arrival clocking ~buslat ~bus_cycle =
  Q.mul_int clocking.Clocking.icn_ct (bus_cycle + buslat)

let earliest_cycle clocking ~cluster ~ready =
  max 0 (Q.ceil_div ready clocking.Clocking.cluster_ct.(cluster))

let dep_ready_same _clocking ~it ~def_time ~distance =
  Q.sub def_time (Q.mul_int it distance)

let sync_penalty clocking = clocking.Clocking.icn_ct

(* Precomputed per-(cluster, kind, latency) timing quantities for one
   fixed clocking — the schedulers query these once per edge visit, so
   re-deriving the Q products (gcd normalisations included) on every
   call dominated the hot path. *)
module Memo = struct
  type t = {
    clocking : Clocking.t;
    eff_cts : Q.t array array;  (* cluster × fu-kind index *)
    def_offsets : Q.t array array array;
        (* cluster × fu-kind index × latency: eff_ct * latency *)
  }

  let max_latency =
    List.fold_left (fun acc op -> max acc (Opcode.latency op)) 0 Opcode.all

  let create clocking =
    let n = Clocking.n_clusters clocking in
    let eff_cts =
      Array.init n (fun cluster ->
          let ct = clocking.Clocking.cluster_ct.(cluster) in
          Array.init Opcode.n_fu_kinds (fun k ->
              if k = Opcode.fu_index Opcode.Mem_port then
                Q.max ct clocking.Clocking.cache_ct
              else ct))
    in
    let def_offsets =
      Array.init n (fun cluster ->
          Array.init Opcode.n_fu_kinds (fun k ->
              Array.init (max_latency + 1) (fun lat ->
                  Q.mul_int eff_cts.(cluster).(k) lat)))
    in
    { clocking; eff_cts; def_offsets }

  let clocking t = t.clocking

  let eff_ct t ~cluster kind = t.eff_cts.(cluster).(Opcode.fu_index kind)

  let lat_offset t ~cluster kind lat =
    let k = Opcode.fu_index kind in
    let row = t.def_offsets.(cluster).(k) in
    if lat >= 0 && lat < Array.length row then row.(lat)
    else Q.mul_int t.eff_cts.(cluster).(k) lat

  let def_offset t ~cluster ins =
    lat_offset t ~cluster (Instr.fu ins) (Instr.latency ins)

  let start_time t ~cluster ~cycle =
    Q.mul_int t.clocking.Clocking.cluster_ct.(cluster) cycle

  let def_time t ~cluster ~cycle ins =
    Q.add (start_time t ~cluster ~cycle) (def_offset t ~cluster ins)
end
