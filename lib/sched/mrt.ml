open Hcv_ir
open Hcv_machine

(* Rows are dense arrays indexed by [Opcode.fu_index] — no hashtable
   probe on the reserve/release/available hot path. *)
type cluster_table = {
  ii : int;
  caps : int array;  (* capacity per fu-kind index *)
  used : int array array;  (* occupancy per fu-kind index, length ii *)
  free_slots : int array;
      (* per fu-kind index: number of modulo slots with spare capacity.
         Zero means every candidate cycle is rejected, which the
         schedulers use to fail congested placements without scanning. *)
}

type t = {
  clusters : cluster_table array;
  bus_ii : int;
  bus_capacity : int;
  bus_used : int array;
  mutable bus_free_slots : int;  (* modulo slots with spare bus capacity *)
  mutable bus_ff : int;
      (* verified-full prefix: every cycle < bus_ff has a full bus slot.
         Lets the slot search skip the front of the window. *)
}

let create machine clocking =
  if Machine.n_clusters machine <> Clocking.n_clusters clocking then
    invalid_arg "Mrt.create: cluster count mismatch";
  let clusters =
    Array.mapi
      (fun i cluster ->
        let ii = clocking.Clocking.cluster_ii.(i) in
        let caps = Array.make Opcode.n_fu_kinds 0 in
        List.iter
          (fun kind ->
            caps.(Opcode.fu_index kind) <- Cluster.fu_count cluster kind)
          Opcode.all_fu_kinds;
        let used = Array.init Opcode.n_fu_kinds (fun _ -> Array.make ii 0) in
        let free_slots =
          Array.map (fun cap -> if cap > 0 then ii else 0) caps
        in
        { ii; caps; used; free_slots })
      machine.Machine.clusters
  in
  {
    clusters;
    bus_ii = clocking.Clocking.icn_ii;
    bus_capacity = machine.Machine.icn.Icn.buses;
    bus_used = Array.make clocking.Clocking.icn_ii 0;
    bus_free_slots =
      (if machine.Machine.icn.Icn.buses > 0 then clocking.Clocking.icn_ii
       else 0);
    bus_ff = 0;
  }

let slot_of ii cycle =
  if cycle < 0 then invalid_arg "Mrt: negative cycle";
  cycle mod ii

let fu_available t ~cluster ~kind ~cycle =
  let ct = t.clusters.(cluster) in
  let k = Opcode.fu_index kind in
  ct.used.(k).(slot_of ct.ii cycle) < ct.caps.(k)

let fu_reserve t ~cluster ~kind ~cycle =
  let ct = t.clusters.(cluster) in
  let k = Opcode.fu_index kind in
  let r = ct.used.(k) in
  let s = slot_of ct.ii cycle in
  if r.(s) >= ct.caps.(k) then invalid_arg "Mrt.fu_reserve: slot full";
  r.(s) <- r.(s) + 1;
  if r.(s) = ct.caps.(k) then ct.free_slots.(k) <- ct.free_slots.(k) - 1

let fu_release t ~cluster ~kind ~cycle =
  let ct = t.clusters.(cluster) in
  let r = ct.used.(Opcode.fu_index kind) in
  let s = slot_of ct.ii cycle in
  if r.(s) <= 0 then invalid_arg "Mrt.fu_release: slot empty";
  let k = Opcode.fu_index kind in
  if r.(s) = ct.caps.(k) then ct.free_slots.(k) <- ct.free_slots.(k) + 1;
  r.(s) <- r.(s) - 1

let bus_available t ~cycle = t.bus_used.(slot_of t.bus_ii cycle) < t.bus_capacity

let bus_reserve t ~cycle =
  let s = slot_of t.bus_ii cycle in
  if t.bus_used.(s) >= t.bus_capacity then
    invalid_arg "Mrt.bus_reserve: slot full";
  t.bus_used.(s) <- t.bus_used.(s) + 1;
  if t.bus_used.(s) = t.bus_capacity then
    t.bus_free_slots <- t.bus_free_slots - 1

let bus_release t ~cycle =
  let s = slot_of t.bus_ii cycle in
  if t.bus_used.(s) <= 0 then invalid_arg "Mrt.bus_release: slot empty";
  if t.bus_used.(s) = t.bus_capacity then
    t.bus_free_slots <- t.bus_free_slots + 1;
  t.bus_used.(s) <- t.bus_used.(s) - 1;
  (* the smallest absolute cycle of the freed congruence class *)
  if s < t.bus_ff then t.bus_ff <- s

let bus_first_free t ~earliest ~latest =
  if earliest > latest then None
  else begin
    let lo = max 0 earliest in
    (* Cycles < bus_ff are known full; skipping them cannot change the
       answer.  Only a scan that starts inside the verified prefix may
       extend it. *)
    let start = max lo t.bus_ff in
    let extend = lo <= t.bus_ff in
    let rec go b =
      if b > latest then begin
        if extend then t.bus_ff <- min (latest + 1) t.bus_ii;
        None
      end
      else if t.bus_used.(b mod t.bus_ii) < t.bus_capacity then begin
        if extend then t.bus_ff <- b;
        Some b
      end
      else go (b + 1)
    in
    go start
  end

let fu_slots_free t ~cluster ~kind =
  t.clusters.(cluster).free_slots.(Opcode.fu_index kind)

let bus_slots_free t = t.bus_free_slots

let fu_used t ~cluster ~kind ~slot =
  t.clusters.(cluster).used.(Opcode.fu_index kind).(slot)

let bus_used t ~slot = t.bus_used.(slot)

let clear t =
  Array.iter
    (fun ct -> Array.iter (fun r -> Array.fill r 0 (Array.length r) 0) ct.used)
    t.clusters;
  Array.iter
    (fun ct ->
      Array.iteri
        (fun k cap -> ct.free_slots.(k) <- (if cap > 0 then ct.ii else 0))
        ct.caps)
    t.clusters;
  Array.fill t.bus_used 0 (Array.length t.bus_used) 0;
  t.bus_free_slots <- (if t.bus_capacity > 0 then t.bus_ii else 0);
  t.bus_ff <- 0

let pp ppf t =
  Format.fprintf ppf "@[<v>mrt:";
  Array.iteri
    (fun i ct ->
      Format.fprintf ppf "@,  C%d (II=%d):" i ct.ii;
      List.iter
        (fun kind ->
          let r = ct.used.(Opcode.fu_index kind) in
          Format.fprintf ppf " %a=[%s]" Opcode.pp_fu kind
            (String.concat ";" (Array.to_list (Array.map string_of_int r))))
        Opcode.all_fu_kinds)
    t.clusters;
  Format.fprintf ppf "@,  bus (II=%d cap=%d): [%s]@]" t.bus_ii t.bus_capacity
    (String.concat ";" (Array.to_list (Array.map string_of_int t.bus_used)))
