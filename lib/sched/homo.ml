open Hcv_ir
open Hcv_machine

type stats = { ii : int; tries : int; mii : int }

let schedule ~machine ~cycle_time ~loop ?(max_tries = 64) ?(seed = 0) () =
  let ddg = loop.Loop.ddg in
  let n_clusters = Machine.n_clusters machine in
  match Mii.missing_kinds_msg machine ddg with
  | Some msg -> Error (Printf.sprintf "%s: %s" loop.Loop.name msg)
  | None ->
  let mii = Mii.mii machine ddg in
  let eligible = Mii.eligibility machine ddg in
  (* Coarsening is clocking-independent: one hierarchy serves every II
     attempt. *)
  let hier =
    if n_clusters = 1 then None else Some (Partition.Hier.build ~ddg ())
  in
  let rec attempt ii tries =
    if tries > max_tries then
      Error
        (Printf.sprintf "no schedule for %s within %d IIs above MII=%d"
           loop.Loop.name max_tries mii)
    else begin
      let clocking = Clocking.homogeneous ~n_clusters ~ii ~cycle_time in
      let assignment =
        if n_clusters = 1 then Array.make (Ddg.n_instrs ddg) 0
        else begin
          let score a =
            Pseudo.score
              (Pseudo.estimate ~machine ~clocking ~loop ~assignment:a ())
          in
          let hier = Option.get hier in
          (Partition.run_hier ~n_clusters ~hier ~seed ?eligible ~score ())
            .Partition.assignment
        end
      in
      match Slot_sched.run ~machine ~clocking ~loop ~assignment () with
      | Ok sched -> Ok (sched, { ii; tries; mii })
      | Error _ -> attempt (ii + 1) (tries + 1)
    end
  in
  attempt (max mii 1) 1
