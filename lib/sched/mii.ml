open Hcv_ir
open Hcv_machine

let ceil_div a b = (a + b - 1) / b

let res_mii machine ddg =
  let bound =
    List.fold_left
      (fun acc (kind, demand) ->
        if demand = 0 then acc
        else begin
          let avail = Machine.fu_total machine kind in
          (* Invariant: presets and Gen only build machines with every
             FU kind the workloads demand. *)
          if avail = 0 then
            invalid_arg
              (Printf.sprintf "Mii.res_mii: no %s in the machine"
                 (Opcode.fu_to_string kind));
          max acc (ceil_div demand avail)
        end)
      0 (Ddg.fu_demand ddg)
  in
  if Ddg.n_instrs ddg = 0 then 0 else max bound 1

let res_mii_cluster cluster ddg members =
  List.fold_left
    (fun acc kind ->
      let demand =
        List.fold_left
          (fun d i -> if Instr.fu (Ddg.instr ddg i) = kind then d + 1 else d)
          0 members
      in
      if demand = 0 then acc
      else begin
        let avail = Cluster.fu_count cluster kind in
        if avail = 0 then max_int (* unschedulable in this cluster *)
        else max acc (ceil_div demand avail)
      end)
    0 Opcode.all_fu_kinds

let rec_mii = Recurrence.rec_mii

let mii machine ddg = max 1 (max (res_mii machine ddg) (rec_mii ddg))

type constraint_class =
  | Resource_constrained
  | Borderline
  | Recurrence_constrained

let classify machine ddg =
  let res = res_mii machine ddg and re = rec_mii ddg in
  (* Table 2 uses: recMII < resMII | resMII <= recMII < 1.3 resMII |
     1.3 resMII <= recMII, comparing with exact arithmetic. *)
  if re < res then Resource_constrained
  else if 10 * re < 13 * res then Borderline
  else Recurrence_constrained

let class_to_string = function
  | Resource_constrained -> "resource"
  | Borderline -> "borderline"
  | Recurrence_constrained -> "recurrence"
