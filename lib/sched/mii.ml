open Hcv_ir
open Hcv_machine

let ceil_div a b = (a + b - 1) / b

(* Resource kinds the loop demands but no cluster of the machine can
   execute.  Non-empty means the loop is unschedulable on this machine
   full stop — capability-asymmetric machines arriving from description
   files make this a reachable user input, so every pipeline entry
   point checks it and degrades to a structured error instead of
   tripping res_mii's invariant below. *)
let missing_kinds machine ddg =
  List.filter_map
    (fun (kind, demand) ->
      if demand > 0 && not (Machine.supports machine kind) then Some kind
      else None)
    (Ddg.fu_demand ddg)

let missing_kinds_msg machine ddg =
  match missing_kinds machine ddg with
  | [] -> None
  | kinds ->
    Some
      (Printf.sprintf "machine %s has no %s but the loop demands it"
         machine.Machine.name
         (String.concat "/" (List.map Opcode.fu_to_string kinds)))

(* For every kind some cluster supports, the machine-wide ratio is the
   exact binding-feasible bound even on capability-asymmetric machines:
   min over assignments of per-cluster demand splits d_i (Σd_i = d)
   of max_i ceil(d_i / c_i) equals ceil(d / Σc_i), achieved by the
   proportional split over the capable clusters (incapable clusters
   take d_i = 0).  Kinds no cluster supports make every assignment
   binding-infeasible — callers screen those with [missing_kinds]. *)
let res_mii machine ddg =
  let bound =
    List.fold_left
      (fun acc (kind, demand) ->
        if demand = 0 then acc
        else begin
          let avail = Machine.fu_total machine kind in
          (* Backstop: pipeline entry points screen unsupported kinds
             via [missing_kinds] and fail structurally first. *)
          if avail = 0 then
            invalid_arg
              (Printf.sprintf "Mii.res_mii: no %s in the machine"
                 (Opcode.fu_to_string kind));
          max acc (ceil_div demand avail)
        end)
      0 (Ddg.fu_demand ddg)
  in
  if Ddg.n_instrs ddg = 0 then 0 else max bound 1

let res_mii_cluster cluster ddg members =
  List.fold_left
    (fun acc kind ->
      let demand =
        List.fold_left
          (fun d i -> if Instr.fu (Ddg.instr ddg i) = kind then d + 1 else d)
          0 members
      in
      if demand = 0 then acc
      else begin
        let avail = Cluster.fu_count cluster kind in
        if avail = 0 then max_int (* unschedulable in this cluster *)
        else max acc (ceil_div demand avail)
      end)
    0 Opcode.all_fu_kinds

(* Per-instruction cluster-capability masks for Partition, or None on
   capability-symmetric machines — omitting the masks keeps the
   symmetric partitioning path byte-identical to the pre-capability
   implementation. *)
let eligibility machine ddg =
  if Machine.capability_symmetric machine then None
  else
    Some
      (Array.init (Ddg.n_instrs ddg) (fun i ->
           Machine.eligible_clusters machine (Instr.fu (Ddg.instr ddg i))))

let rec_mii = Recurrence.rec_mii

let mii machine ddg = max 1 (max (res_mii machine ddg) (rec_mii ddg))

type constraint_class =
  | Resource_constrained
  | Borderline
  | Recurrence_constrained

let classify machine ddg =
  let res = res_mii machine ddg and re = rec_mii ddg in
  (* Table 2 uses: recMII < resMII | resMII <= recMII < 1.3 resMII |
     1.3 resMII <= recMII, comparing with exact arithmetic. *)
  if re < res then Resource_constrained
  else if 10 * re < 13 * res then Borderline
  else Recurrence_constrained

let class_to_string = function
  | Resource_constrained -> "resource"
  | Borderline -> "borderline"
  | Recurrence_constrained -> "recurrence"
