(** Pseudo-schedules (paper §4.1.2, following Aletà et al. PACT'02).

    A pseudo-schedule is a fast, greedy, no-backtracking placement of a
    partitioned loop used to *estimate* the characteristics of the final
    schedule while refining a partition: iteration length, number of
    communications, register pressure and (approximate) schedulability.
    It never fails: instructions that do not fit are placed anyway
    (overbooking the reservation tables) and counted in [overflow]. *)

open Hcv_support
open Hcv_ir
open Hcv_machine

type t = {
  schedule : Schedule.t;  (** the greedy placement (may be invalid) *)
  overflow : int;
      (** instructions for which no conflict-free slot existed *)
  back_violations : int;
      (** loop-carried dependences the greedy placement breaks *)
  regs_ok : bool;
  n_comms : int;  (** equals [Schedule.n_comms schedule], precomputed *)
  it_length : Q.t;
      (** equals [Schedule.it_length schedule], precomputed — {!score}
          reads these instead of re-deriving every def time from the
          placements *)
}

val feasible : t -> bool
(** No overflow, no violated back edge, registers fit. *)

val estimate :
  ?memo:Timing.Memo.t -> ?obs:Hcv_obs.Trace.span -> machine:Machine.t
  -> clocking:Clocking.t -> loop:Loop.t -> assignment:int array -> unit -> t
(** Greedily place every instruction on its assigned cluster in
    topological order (earliest dependence-ready cycle, scanning one II
    window, reserving buses for cross-cluster values).

    [?obs] (default {!Hcv_obs.Trace.null}, which costs nothing on this
    hot path) counts every evaluation (["pseudo.evals"]) and the
    infeasible ones (["pseudo.infeasible"]). *)

val score : t -> float
(** Schedulability-first scalar for homogeneous partition refinement
    (lower is better): overflow and broken recurrences dominate, then
    register feasibility, then communications, then iteration length. *)

