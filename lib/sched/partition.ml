open Hcv_ir

type result = { assignment : int array; score : float }

let edge_weight (e : Edge.t) = if Edge.carries_value e then 2 else 1

(* A level of the multilevel hierarchy, stored flat: [n] macronodes,
   member instructions and weighted undirected adjacency both in CSR
   form, pre-placed cluster per macronode ([-1] = free).  Flat int
   arrays keep refinement allocation-free: the gain counters index
   straight into [adj_nbr]/[adj_w] and members are blitted ranges, not
   lists. *)
type level = {
  n : int;
  member_off : int array;  (* n+1 offsets into member_ids *)
  member_ids : int array;  (* instruction ids, grouped per macronode *)
  fixed : int array;  (* pre-assigned cluster, or -1 *)
  adj_off : int array;  (* n+1 offsets into adj_nbr/adj_w *)
  adj_nbr : int array;  (* neighbour macronode (same level) *)
  adj_w : int array;  (* accumulated edge weight to that neighbour *)
}

let member_count level v = level.member_off.(v + 1) - level.member_off.(v)

(* Build the instruction-level graph: one macronode per instruction,
   parallel edges merged by weight.  Distinct-neighbour dedup uses a
   version-stamp scratch pair (stamp/pos) so each pass is O(n + E) with
   no hashing. *)
let finest_level ~fixed ddg =
  let n = Ddg.n_instrs ddg in
  let stamp = Array.make (max n 1) (-1) in
  let pos = Array.make (max n 1) 0 in
  let adj_off = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    let c = ref 0 in
    let see u =
      if u <> v && stamp.(u) <> v then begin
        stamp.(u) <- v;
        incr c
      end
    in
    Ddg.iter_succs ddg v (fun e -> see e.Edge.dst);
    Ddg.iter_preds ddg v (fun e -> see e.Edge.src);
    adj_off.(v + 1) <- !c
  done;
  for v = 0 to n - 1 do
    adj_off.(v + 1) <- adj_off.(v) + adj_off.(v + 1)
  done;
  let m = adj_off.(n) in
  let adj_nbr = Array.make (max m 1) 0 in
  let adj_w = Array.make (max m 1) 0 in
  Array.fill stamp 0 (max n 1) (-1);
  for v = 0 to n - 1 do
    let next = ref adj_off.(v) in
    let see u w =
      if u <> v then
        if stamp.(u) <> v then begin
          stamp.(u) <- v;
          pos.(u) <- !next;
          adj_nbr.(!next) <- u;
          adj_w.(!next) <- w;
          incr next
        end
        else adj_w.(pos.(u)) <- adj_w.(pos.(u)) + w
    in
    Ddg.iter_succs ddg v (fun e -> see e.Edge.dst (edge_weight e));
    Ddg.iter_preds ddg v (fun e -> see e.Edge.src (edge_weight e))
  done;
  {
    n;
    member_off = Array.init (n + 1) (fun i -> i);
    member_ids = Array.init (max n 1) (fun i -> i);
    fixed;
    adj_off;
    adj_nbr;
    adj_w;
  }

(* Coarse-level construction shared by matching and grouping: given the
   old->new map and, per new node, its old members in ascending old
   order, rebuild members (blitted ranges) and merged adjacency. *)
let build_members level map n' =
  let member_off = Array.make (n' + 1) 0 in
  for v = 0 to level.n - 1 do
    member_off.(map.(v) + 1) <- member_off.(map.(v) + 1) + member_count level v
  done;
  for nv = 0 to n' - 1 do
    member_off.(nv + 1) <- member_off.(nv) + member_off.(nv + 1)
  done;
  let member_ids = Array.make (max member_off.(n') 1) 0 in
  let cursor = Array.sub member_off 0 n' in
  for v = 0 to level.n - 1 do
    let nv = map.(v) in
    let len = member_count level v in
    Array.blit level.member_ids level.member_off.(v) member_ids cursor.(nv) len;
    cursor.(nv) <- cursor.(nv) + len
  done;
  (member_off, member_ids)

(* Merged adjacency of the coarse level.  [olds_off]/[olds] list each
   new node's old members; the stamp/pos scratch dedups new-neighbour
   entries exactly as in [finest_level]. *)
let build_adj level map olds_off olds n' =
  let stamp = Array.make (max n' 1) (-1) in
  let pos = Array.make (max n' 1) 0 in
  let adj_off = Array.make (n' + 1) 0 in
  for nv = 0 to n' - 1 do
    let c = ref 0 in
    for k = olds_off.(nv) to olds_off.(nv + 1) - 1 do
      let v = olds.(k) in
      for a = level.adj_off.(v) to level.adj_off.(v + 1) - 1 do
        let nu = map.(level.adj_nbr.(a)) in
        if nu <> nv && stamp.(nu) <> nv then begin
          stamp.(nu) <- nv;
          incr c
        end
      done
    done;
    adj_off.(nv + 1) <- !c
  done;
  for nv = 0 to n' - 1 do
    adj_off.(nv + 1) <- adj_off.(nv) + adj_off.(nv + 1)
  done;
  let m = adj_off.(n') in
  let adj_nbr = Array.make (max m 1) 0 in
  let adj_w = Array.make (max m 1) 0 in
  Array.fill stamp 0 (max n' 1) (-1);
  for nv = 0 to n' - 1 do
    let next = ref adj_off.(nv) in
    for k = olds_off.(nv) to olds_off.(nv + 1) - 1 do
      let v = olds.(k) in
      for a = level.adj_off.(v) to level.adj_off.(v + 1) - 1 do
        let nu = map.(level.adj_nbr.(a)) in
        if nu <> nv then
          if stamp.(nu) <> nv then begin
            stamp.(nu) <- nv;
            pos.(nu) <- !next;
            adj_nbr.(!next) <- nu;
            adj_w.(!next) <- level.adj_w.(a);
            incr next
          end
          else adj_w.(pos.(nu)) <- adj_w.(pos.(nu)) + level.adj_w.(a)
      done
    done
  done;
  (adj_off, adj_nbr, adj_w)

(* The old-members-of-each-new-node CSR, in ascending old order. *)
let olds_of_map map n n' =
  let olds_off = Array.make (n' + 1) 0 in
  for v = 0 to n - 1 do
    olds_off.(map.(v) + 1) <- olds_off.(map.(v) + 1) + 1
  done;
  for nv = 0 to n' - 1 do
    olds_off.(nv + 1) <- olds_off.(nv) + olds_off.(nv + 1)
  done;
  let olds = Array.make (max n 1) 0 in
  let cursor = Array.sub olds_off 0 n' in
  for v = 0 to n - 1 do
    olds.(cursor.(map.(v))) <- v;
    cursor.(map.(v)) <- cursor.(map.(v)) + 1
  done;
  (olds_off, olds)

(* One round of heavy-edge matching, or None when nothing merged.
   Matching may only merge nodes with identical placement constraints:
   merging a pre-placed (fixed) node with a free one would freeze the
   free node's instructions to that cluster for every coarser level and
   bar refinement from ever moving them. *)
let coarsen_once level =
  let n = level.n in
  let matched = Array.make (max n 1) (-1) in
  let merged = ref 0 in
  for v = 0 to n - 1 do
    if matched.(v) = -1 then begin
      (* Heaviest compatible unmatched neighbour, ties to lowest index. *)
      let best = ref (-1) and best_w = ref 0 in
      for a = level.adj_off.(v) to level.adj_off.(v + 1) - 1 do
        let u = level.adj_nbr.(a) and w = level.adj_w.(a) in
        if
          matched.(u) = -1 && u <> v
          && level.fixed.(u) = level.fixed.(v)
          && (w > !best_w || (w = !best_w && (!best = -1 || u < !best)))
        then begin
          best := u;
          best_w := w
        end
      done;
      if !best >= 0 then begin
        matched.(v) <- !best;
        matched.(!best) <- v;
        incr merged
      end
    end
  done;
  if !merged = 0 then None
  else begin
    (* New indices: the lower endpoint of each pair leads. *)
    let map = Array.make n (-1) in
    let next = ref 0 in
    for v = 0 to n - 1 do
      if map.(v) = -1 then begin
        map.(v) <- !next;
        if matched.(v) >= 0 then map.(matched.(v)) <- !next;
        incr next
      end
    done;
    let n' = !next in
    let fixed = Array.make n' (-1) in
    for v = 0 to n - 1 do
      fixed.(map.(v)) <- level.fixed.(v)
    done;
    let member_off, member_ids = build_members level map n' in
    let olds_off, olds = olds_of_map map n n' in
    let adj_off, adj_nbr, adj_w = build_adj level map olds_off olds n' in
    Some { n = n'; member_off; member_ids; fixed; adj_off; adj_nbr; adj_w }
  end

(* Merge the members of each group into one macronode, producing the
   level just above the instruction level. *)
(* Invariant: group/fixed validation below guards caller-constructed
   data (Hsched derives both from the loop's own DDG), not user input —
   violations are bugs, hence [invalid_arg] rather than a Diag. *)
let coarsen_groups level groups =
  let n = level.n in
  let map = Array.make (max n 1) (-1) in
  let next = ref 0 in
  List.iter
    (fun group ->
      match group with
      | [] -> ()
      | _ ->
        let g = !next in
        incr next;
        List.iter
          (fun i ->
            if i < 0 || i >= n then
              invalid_arg "Partition.run: group id out of range";
            if map.(i) <> -1 then invalid_arg "Partition.run: groups overlap";
            map.(i) <- g)
          group)
    groups;
  for i = 0 to n - 1 do
    if map.(i) = -1 then begin
      map.(i) <- !next;
      incr next
    end
  done;
  let n' = !next in
  let fixed = Array.make n' (-1) in
  for v = 0 to n - 1 do
    let f = level.fixed.(v) in
    if f >= 0 then begin
      let nv = map.(v) in
      if fixed.(nv) >= 0 && fixed.(nv) <> f then
        invalid_arg "Partition.run: conflicting fixed clusters in a group";
      fixed.(nv) <- f
    end
  done;
  let member_off, member_ids = build_members level map n' in
  let olds_off, olds = olds_of_map map n n' in
  let adj_off, adj_nbr, adj_w = build_adj level map olds_off olds n' in
  { n = n'; member_off; member_ids; fixed; adj_off; adj_nbr; adj_w }

module Hier = struct
  type t = {
    n_instrs : int;
    fixed : (Instr.id * int) list;  (* kept for run-time range checks *)
    levels : level array;  (* finest first *)
    base : int;  (* 1 when a groups level exists, else 0 *)
    (* Directed value-edge CSR at the instruction level (multiplicity
       preserved), for the transfer-delta gain counters refinement
       maintains: vsucc lists each producer's value consumers, vpred
       the inverse. *)
    vsucc_off : int array;
    vsucc : int array;
    vpred_off : int array;
    vpred : int array;
  }

  (* Coarsening never looks at the cluster count, so the chain is built
     once, down to its fixpoint; [run_hier] picks the prefix a given
     [n_clusters] needs. *)
  let build ~ddg ?(fixed = []) ?(groups = []) () =
    let n = Ddg.n_instrs ddg in
    let fixed_arr = Array.make (max n 1) (-1) in
    List.iter
      (fun (i, cl) ->
        if i < 0 || i >= n then
          invalid_arg "Partition.run: fixed id out of range";
        fixed_arr.(i) <- cl)
      fixed;
    let finest = finest_level ~fixed:fixed_arr ddg in
    let rev = ref [ finest ] in
    if groups <> [] then rev := coarsen_groups finest groups :: !rev;
    let continue_ = ref (n > 0) in
    while !continue_ do
      match coarsen_once (List.hd !rev) with
      | Some l -> rev := l :: !rev
      | None -> continue_ := false
    done;
    let vsucc_off = Array.make (n + 1) 0 in
    let vpred_off = Array.make (n + 1) 0 in
    let edges = List.filter Edge.carries_value (Ddg.edges ddg) in
    List.iter
      (fun (e : Edge.t) ->
        vsucc_off.(e.src + 1) <- vsucc_off.(e.src + 1) + 1;
        vpred_off.(e.dst + 1) <- vpred_off.(e.dst + 1) + 1)
      edges;
    for i = 0 to n - 1 do
      vsucc_off.(i + 1) <- vsucc_off.(i) + vsucc_off.(i + 1);
      vpred_off.(i + 1) <- vpred_off.(i) + vpred_off.(i + 1)
    done;
    let nv = vsucc_off.(n) in
    let vsucc = Array.make (max nv 1) 0 in
    let vpred = Array.make (max nv 1) 0 in
    let scur = Array.sub vsucc_off 0 (max n 1) in
    let pcur = Array.sub vpred_off 0 (max n 1) in
    List.iter
      (fun (e : Edge.t) ->
        vsucc.(scur.(e.src)) <- e.dst;
        scur.(e.src) <- scur.(e.src) + 1;
        vpred.(pcur.(e.dst)) <- e.src;
        pcur.(e.dst) <- pcur.(e.dst) + 1)
      edges;
    {
      n_instrs = n;
      fixed;
      levels = Array.of_list (List.rev !rev);
      base = (if groups = [] then 0 else 1);
      vsucc_off;
      vsucc;
      vpred_off;
      vpred;
    }

  let n_levels t = Array.length t.levels
end

let project level macro instr_assignment =
  for v = 0 to level.n - 1 do
    for j = level.member_off.(v) to level.member_off.(v + 1) - 1 do
      instr_assignment.(level.member_ids.(j)) <- macro.(v)
    done
  done

(* Bonus convergence passes past the reference implementation's two,
   affordable because pruning makes a no-move sweep nearly free. *)
let max_passes = 6

(* Greedy refinement of macronode assignments at one level, entered at
   exact score [current] for the projected [instr_assignment]; a move
   commits only when the injected exact score strictly improves, so
   this is steepest descent over the same neighbourhood as the
   reference implementation.

   The gain counters: [vcnt.(p * k + c)] counts the value edges from
   producer instruction [p] into cluster [c], maintained in O(deg)
   after every committed move.  [Pseudo] materialises one transfer per
   (producer, destination cluster), so the exact transfer delta of
   moving macronode [v] to cluster [b] is a sum over the producers
   feeding or inside [v] of how their per-cluster consumer counts
   change — computable from [vcnt] without touching the schedule.

   Pruning: while the current score is below [stressed], it has shape
   transfers * 100 + it_length with it_length under one transfer's
   worth, so a candidate whose transfer delta is >= 1 cannot improve
   and is pruned without an exact eval; interior macronodes cost
   nothing.  At or above [stressed] the score carries structural
   penalties (FU overflow, recurrence violations, register overflow in
   [Pseudo.score]) whose escape moves the transfer proxy cannot see,
   so the full neighbourhood is scored, exactly like the reference.
   Scores without this shape disable pruning via [stressed <= 0]. *)
(* Per-macronode capability mask at one level: AND of the members'
   per-instruction masks, flattened [v * k + cl].  A macronode whose
   members' masks conflict (possible after heavy-edge matching merges
   capability-incompatible instructions) falls back to all-true: coarse
   levels may then park it anywhere, and the finest level — where every
   macronode is a single instruction, so masks are exact — repairs and
   keeps it feasible. *)
let level_eligibility ~k ~(eligible : bool array array) level =
  let e = Array.make (max (level.n * k) 1) true in
  for v = 0 to level.n - 1 do
    let any = ref false in
    for cl = 0 to k - 1 do
      let ok = ref true in
      let j = ref level.member_off.(v) in
      while !ok && !j < level.member_off.(v + 1) do
        if not eligible.(level.member_ids.(!j)).(cl) then ok := false;
        incr j
      done;
      e.((v * k) + cl) <- !ok;
      if !ok then any := true
    done;
    if not !any then
      for cl = 0 to k - 1 do
        e.((v * k) + cl) <- true
      done
  done;
  e

let refine ~n_clusters ~score ~stressed ~pruned ~moves ~current ~comms
    ~(hier : Hier.t) ~vcnt ~inst2node ~pbuf ~cbuf ~pstamp ?elig level macro
    instr_assignment =
  let n = level.n in
  let k = n_clusters in
  let node_ok v cl =
    match elig with None -> true | Some e -> e.((v * k) + cl)
  in
  let prune_on = stressed > 0.0 in
  for v = 0 to n - 1 do
    for j = level.member_off.(v) to level.member_off.(v + 1) - 1 do
      inst2node.(level.member_ids.(j)) <- v
    done
  done;
  let set_members v cl =
    for j = level.member_off.(v) to level.member_off.(v + 1) - 1 do
      instr_assignment.(level.member_ids.(j)) <- cl
    done
  in
  (* Producers whose transfer count a move of [v] can change: external
     producers with a consumer in [v] (cbuf = how many), then member
     producers (cbuf = their consumer count inside [v]). *)
  let nprod = ref 0 in
  let gather v =
    nprod := 0;
    for j = level.member_off.(v) to level.member_off.(v + 1) - 1 do
      let i = level.member_ids.(j) in
      for a = hier.Hier.vpred_off.(i) to hier.Hier.vpred_off.(i + 1) - 1 do
        let p = hier.Hier.vpred.(a) in
        if inst2node.(p) <> v then
          if pstamp.(p) < 0 then begin
            pstamp.(p) <- !nprod;
            pbuf.(!nprod) <- p;
            cbuf.(!nprod) <- 1;
            incr nprod
          end
          else cbuf.(pstamp.(p)) <- cbuf.(pstamp.(p)) + 1
      done
    done;
    let n_ext = !nprod in
    for e = 0 to n_ext - 1 do
      pstamp.(pbuf.(e)) <- -1
    done;
    for j = level.member_off.(v) to level.member_off.(v + 1) - 1 do
      let i = level.member_ids.(j) in
      if hier.Hier.vsucc_off.(i + 1) > hier.Hier.vsucc_off.(i) then begin
        let s = ref 0 in
        for a = hier.Hier.vsucc_off.(i) to hier.Hier.vsucc_off.(i + 1) - 1 do
          if inst2node.(hier.Hier.vsucc.(a)) = v then incr s
        done;
        pbuf.(!nprod) <- i;
        cbuf.(!nprod) <- !s;
        incr nprod
      end
    done;
    n_ext
  in
  (* Exact transfer delta of moving the gathered [v] from [home] to
     [b].  External producers keep their cluster; member producers move
     with [v], which swaps the home/destination columns' roles in
     their "one transfer per foreign cluster with consumers" count. *)
  let delta_comms ~n_ext ~home b =
    let d = ref 0 in
    for e = 0 to !nprod - 1 do
      let row = pbuf.(e) * k and c = cbuf.(e) in
      if e < n_ext then begin
        let clp = instr_assignment.(pbuf.(e)) in
        let before =
          (if vcnt.(row + home) > 0 && home <> clp then 1 else 0)
          + (if vcnt.(row + b) > 0 && b <> clp then 1 else 0)
        in
        (* After the move the destination column holds >= c >= 1. *)
        let after =
          (if vcnt.(row + home) - c > 0 && home <> clp then 1 else 0)
          + (if b <> clp then 1 else 0)
        in
        d := !d + after - before
      end
      else
        d :=
          !d
          + (if vcnt.(row + home) - c > 0 then 1 else 0)
          - (if vcnt.(row + b) > 0 then 1 else 0)
    done;
    !d
  in
  (* Transfers producer [p] emits when it sits in cluster [cl]: one
     per foreign cluster with a consumer — {!Pseudo}'s dedup rule. *)
  let contrib p cl =
    let row = p * k in
    let m = ref 0 in
    for c = 0 to k - 1 do
      if c <> cl && vcnt.(row + c) > 0 then incr m
    done;
    !m
  in
  let commit ~n_ext ~home b =
    for e = 0 to !nprod - 1 do
      let p = pbuf.(e) and c = cbuf.(e) in
      let row = p * k in
      let cl_before = if e < n_ext then instr_assignment.(p) else home in
      let cl_after = if e < n_ext then instr_assignment.(p) else b in
      comms := !comms - contrib p cl_before;
      vcnt.(row + home) <- vcnt.(row + home) - c;
      vcnt.(row + b) <- vcnt.(row + b) + c;
      comms := !comms + contrib p cl_after
    done
  in
  (* A node whose neighbourhood was scanned move-free and whose exact
     scores depend on nothing that changed since (no commit anywhere —
     the score sees the whole assignment) would rescan to the very same
     vectors, scores and "no move" verdict, so it is skipped: [seen.(v)]
     records the commit count at [v]'s last fruitless scan.  This makes
     converged passes free and [max_passes] a cap, not a cost. *)
  let seen = Array.make (max n 1) (-1) in
  let commits = ref 0 in
  let improved = ref true in
  let pass = ref 0 in
  let passes = if prune_on then max_passes else 2 in
  (* Extra passes past the reference implementation's two run only
     while the score is clean: there pruning and the scan-version skip
     make them nearly free, and they can only descend further.  In
     stressed states a pass costs the full neighbourhood, so stop where
     the reference does. *)
  while
    !improved && !pass < passes && (!pass < 2 || !current < stressed)
  do
    incr pass;
    improved := false;
    for v = 0 to n - 1 do
      if level.fixed.(v) < 0 && seen.(v) <> !commits then begin
        let home = macro.(v) in
        let n_ext = if prune_on then gather v else 0 in
        let use_prune = prune_on && !current < stressed in
        (* On a clean score the residual above the transfer pricing is
           exactly [current - 100 * comms] (it_length, nonnegative): a
           candidate whose transfer delta alone costs at least that
           much cannot score below [current], however its residual
           moves. *)
        let it_cur = !current -. (100.0 *. float_of_int !comms) in
        let best_cl = ref home and best_s = ref !current in
        for cl = 0 to k - 1 do
          if cl <> home && node_ok v cl then
            if
              use_prune
              &&
              let d = delta_comms ~n_ext ~home cl in
              d >= 1 && 100.0 *. float_of_int d >= it_cur
            then incr pruned
            else begin
              set_members v cl;
              let s = score instr_assignment in
              if s < !best_s then begin
                best_s := s;
                best_cl := cl
              end
            end
        done;
        set_members v !best_cl;
        if !best_cl <> home then begin
          macro.(v) <- !best_cl;
          current := !best_s;
          improved := true;
          incr moves;
          incr commits;
          if prune_on then commit ~n_ext ~home !best_cl
        end
        else seen.(v) <- !commits
      end
    done
  done

let initial_even ~n_clusters ddg =
  let a = Array.make (Ddg.n_instrs ddg) 0 in
  List.iteri (fun k i -> a.(i) <- k mod n_clusters) (Ddg.topo_order ddg);
  a

let run_hier ?(obs = Hcv_obs.Trace.null) ~n_clusters ~(hier : Hier.t)
    ?(seed = 0) ?(stressed = 1e7) ?eligible ~score () =
  if n_clusters < 1 then invalid_arg "Partition.run: n_clusters < 1";
  List.iter
    (fun (_, cl) ->
      if cl < 0 || cl >= n_clusters then
        invalid_arg "Partition.run: fixed cluster out of range")
    hier.Hier.fixed;
  let n = hier.Hier.n_instrs in
  if n = 0 then { assignment = [||]; score = score [||] }
  else begin
    let exact = ref 0 and pruned = ref 0 and moves = ref 0 in
    let memo_hits = ref 0 in
    (* Refinement revisits assignment vectors (a fruitless candidate of
       one pass is often re-proposed after an unrelated commit); the
       injected score is pure, so identical vectors are answered from a
       memo.  Packs one byte per instruction, so only for cluster
       counts that fit. *)
    let score =
      if n_clusters > 256 then begin
        fun a ->
          incr exact;
          score a
      end
      else begin
        let tbl = Hashtbl.create 512 in
        fun a ->
          let key =
            Bytes.unsafe_to_string
              (Bytes.init n (fun i -> Char.unsafe_chr a.(i)))
          in
          match Hashtbl.find_opt tbl key with
          | Some s ->
            incr memo_hits;
            s
          | None ->
            incr exact;
            let s = score a in
            Hashtbl.add tbl key s;
            s
      end
    in
    let levels = hier.Hier.levels in
    (* The prefix of the prebuilt chain this cluster count needs: stop
       at the first level coarse enough, or at the fixpoint. *)
    let top = ref hier.Hier.base in
    while
      levels.(!top).n > n_clusters && !top + 1 < Array.length levels
    do
      incr top
    done;
    (* Initial assignment on the coarsest level: fixed nodes to their
       clusters, the rest greedily by score, heaviest (most members)
       first; the seed rotates the starting cluster for tie diversity. *)
    let coarsest = levels.(!top) in
    let coarse_elig =
      Option.map
        (fun e -> level_eligibility ~k:n_clusters ~eligible:e coarsest)
        eligible
    in
    let coarse_ok v cl =
      match coarse_elig with
      | None -> true
      | Some e -> e.((v * n_clusters) + cl)
    in
    let macro = Array.make coarsest.n (-1) in
    let instr_assignment = Array.make n 0 in
    for v = 0 to coarsest.n - 1 do
      if coarsest.fixed.(v) >= 0 then macro.(v) <- coarsest.fixed.(v)
    done;
    let unassigned =
      List.init coarsest.n (fun v -> v)
      |> List.filter (fun v -> macro.(v) = -1)
      |> List.sort (fun a b ->
             let c =
               Stdlib.compare (member_count coarsest b) (member_count coarsest a)
             in
             if c <> 0 then c else Stdlib.compare a b)
    in
    (* Fill with a provisional round-robin so the score sees a complete
       assignment, then greedily improve node by node.  With capability
       masks the rotation runs over each node's eligible clusters, so
       even the provisional state never pins an op on a cluster that
       cannot execute it. *)
    List.iteri
      (fun idx v ->
        match coarse_elig with
        | None -> macro.(v) <- (idx + seed) mod n_clusters
        | Some e ->
          let count = ref 0 in
          for cl = 0 to n_clusters - 1 do
            if e.((v * n_clusters) + cl) then incr count
          done;
          let pick = ref ((idx + seed) mod !count) and cl = ref 0 in
          while not (e.((v * n_clusters) + !cl)) do incr cl done;
          while !pick > 0 do
            incr cl;
            while not (e.((v * n_clusters) + !cl)) do incr cl done;
            decr pick
          done;
          macro.(v) <- !cl)
      unassigned;
    project coarsest macro instr_assignment;
    List.iter
      (fun v ->
        let best_cl = ref macro.(v) and best_s = ref infinity in
        for cl = 0 to n_clusters - 1 do
          if coarse_ok v cl then begin
            for j = coarsest.member_off.(v) to coarsest.member_off.(v + 1) - 1
            do
              instr_assignment.(coarsest.member_ids.(j)) <- cl
            done;
            let s = score instr_assignment in
            if s < !best_s then begin
              best_s := s;
              best_cl := cl
            end
          end
        done;
        macro.(v) <- !best_cl;
        for j = coarsest.member_off.(v) to coarsest.member_off.(v + 1) - 1 do
          instr_assignment.(coarsest.member_ids.(j)) <- !best_cl
        done)
      unassigned;
    (* Refine down the hierarchy.  Macro assignments at a finer level
       start from the (already projected) instruction assignment; the
       entry score is threaded instead of recomputed per level. *)
    let current = ref (score instr_assignment) in
    (* Scratch for refinement's transfer-delta gain counters, shared
       across levels; vcnt tracks the committed assignment, which
       projection down a level never changes. *)
    let prune_on = stressed > 0.0 in
    let k = n_clusters in
    let vcnt = Array.make (if prune_on then n * k else 1) 0 in
    (* Current deduped transfer count, from the same counters. *)
    let comms = ref 0 in
    let reset_counters () =
      if prune_on then begin
        Array.fill vcnt 0 (n * k) 0;
        for p = 0 to n - 1 do
          for a = hier.Hier.vsucc_off.(p) to hier.Hier.vsucc_off.(p + 1) - 1
          do
            let c = instr_assignment.(hier.Hier.vsucc.(a)) in
            vcnt.((p * k) + c) <- vcnt.((p * k) + c) + 1
          done
        done;
        comms := 0;
        for p = 0 to n - 1 do
          let row = p * k in
          let clp = instr_assignment.(p) in
          for c = 0 to k - 1 do
            if c <> clp && vcnt.(row + c) > 0 then incr comms
          done
        done
      end
    in
    reset_counters ();
    let inst2node = Array.make (max n 1) 0 in
    let pbuf = Array.make ((2 * n) + 1) 0 in
    let cbuf = Array.make ((2 * n) + 1) 0 in
    let pstamp = Array.make (max n 1) (-1) in
    for l = !top downto 0 do
      let level = levels.(l) in
      let macro =
        Array.init level.n (fun v ->
            instr_assignment.(level.member_ids.(level.member_off.(v))))
      in
      let elig =
        Option.map (fun e -> level_eligibility ~k ~eligible:e level) eligible
      in
      (* Projection down a level can expose capability violations that a
         coarser all-true fallback mask allowed (or that conflicting
         members hid); repair them deterministically — lowest eligible
         cluster — before refinement, which then only ever proposes
         eligible candidates. *)
      (match elig with
      | None -> ()
      | Some e ->
        let repaired = ref false in
        for v = 0 to level.n - 1 do
          if level.fixed.(v) < 0 && not e.((v * k) + macro.(v)) then begin
            let cl = ref 0 in
            while not e.((v * k) + !cl) do
              incr cl
            done;
            macro.(v) <- !cl;
            repaired := true
          end
        done;
        if !repaired then begin
          project level macro instr_assignment;
          current := score instr_assignment;
          reset_counters ()
        end);
      refine ~n_clusters ~score ~stressed ~pruned ~moves ~current ~comms
        ~hier ~vcnt ~inst2node ~pbuf ~cbuf ~pstamp ?elig level macro
        instr_assignment
    done;
    Hcv_obs.Trace.incr obs "partition.runs";
    Hcv_obs.Trace.add obs "partition.levels" (!top + 1);
    Hcv_obs.Trace.add obs "partition.refine_moves" !moves;
    Hcv_obs.Trace.add obs "partition.exact_evals" !exact;
    Hcv_obs.Trace.add obs "partition.proxy_pruned" !pruned;
    Hcv_obs.Trace.add obs "partition.score_memo_hits" !memo_hits;
    { assignment = instr_assignment; score = !current }
  end

let run ?obs ~n_clusters ~ddg ?(fixed = []) ?(groups = []) ?seed ?stressed
    ?eligible ~score () =
  if n_clusters < 1 then invalid_arg "Partition.run: n_clusters < 1";
  let hier = Hier.build ~ddg ~fixed ~groups () in
  run_hier ?obs ~n_clusters ~hier ?seed ?stressed ?eligible ~score ()
