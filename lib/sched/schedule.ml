open Hcv_support
open Hcv_ir
open Hcv_machine

type placement = { cluster : int; cycle : int }
type transfer = { src : Instr.id; dst_cluster : int; bus_cycle : int }

type t = {
  loop : Loop.t;
  machine : Machine.t;
  clocking : Clocking.t;
  placements : placement array;
  transfers : transfer list;
}

let make ~loop ~machine ~clocking ~placements ~transfers =
  if Array.length placements <> Ddg.n_instrs loop.Loop.ddg then
    invalid_arg "Schedule.make: placement arity mismatch";
  { loop; machine; clocking; placements; transfers }

let start_time t i =
  let p = t.placements.(i) in
  Timing.start_time t.clocking ~cluster:p.cluster ~cycle:p.cycle

let def_time t i =
  let p = t.placements.(i) in
  Timing.def_time t.clocking ~cluster:p.cluster ~cycle:p.cycle
    (Ddg.instr t.loop.Loop.ddg i)

let buslat t = t.machine.Machine.icn.Icn.latency_cycles

let arrival t (tr : transfer) =
  Timing.bus_arrival t.clocking ~buslat:(buslat t) ~bus_cycle:tr.bus_cycle

let it_length t =
  let len = ref Q.zero in
  Array.iteri (fun i _ -> len := Q.max !len (def_time t i)) t.placements;
  List.iter (fun tr -> len := Q.max !len (arrival t tr)) t.transfers;
  !len

let stage_count t =
  let it = t.clocking.Clocking.it in
  if Q.sign it <= 0 then 0 else Q.ceil (Q.div (it_length t) it)

let exec_time_ns t ~trip =
  let it = Q.to_float t.clocking.Clocking.it in
  (float_of_int (trip - 1) *. it) +. Q.to_float (it_length t)

let n_comms t = List.length t.transfers

let per_cluster_ins_energy t =
  let e = Array.make (Machine.n_clusters t.machine) 0.0 in
  Array.iteri
    (fun i p ->
      e.(p.cluster) <-
        e.(p.cluster) +. Instr.energy (Ddg.instr t.loop.Loop.ddg i))
    t.placements;
  e

let n_mem t =
  Array.fold_left
    (fun acc (ins : Instr.t) ->
      if Instr.fu ins = Opcode.Mem_port then acc + 1 else acc)
    0
    (Ddg.instrs t.loop.Loop.ddg)

(* Per-cluster summed value lifetimes in ns.  A value lives in its
   producer's register file from definition until its last same-cluster
   read or last bus send, and in each destination cluster's register
   file from bus arrival until the last read there. *)
let lifetimes_ns t =
  let ddg = t.loop.Loop.ddg in
  let it = t.clocking.Clocking.it in
  let n = Array.length t.placements in
  let spans = Array.make (Machine.n_clusters t.machine) Q.zero in
  (* Start times are read once per incident value edge below; transfers
     are bucketed by source so each instruction only visits its own. *)
  let starts = Array.init n (fun i -> start_time t i) in
  let by_src = Array.make n [] in
  List.iter (fun (tr : transfer) -> by_src.(tr.src) <- tr :: by_src.(tr.src))
    t.transfers;
  let last_read ~cluster i death0 =
    Ddg.fold_succs ddg i
      (fun death (e : Edge.t) ->
        if Edge.carries_value e && t.placements.(e.dst).cluster = cluster then
          Q.max death (Q.add starts.(e.dst) (Q.mul_int it e.distance))
        else death)
      death0
  in
  Array.iteri
    (fun i p ->
      let birth = def_time t i in
      let death = ref (last_read ~cluster:p.cluster i birth) in
      List.iter
        (fun (tr : transfer) ->
          death :=
            Q.max !death (Q.mul_int t.clocking.Clocking.icn_ct tr.bus_cycle))
        by_src.(i);
      spans.(p.cluster) <- Q.add spans.(p.cluster) (Q.sub !death birth))
    t.placements;
  List.iter
    (fun (tr : transfer) ->
      let birth = arrival t tr in
      let death = last_read ~cluster:tr.dst_cluster tr.src birth in
      spans.(tr.dst_cluster) <- Q.add spans.(tr.dst_cluster) (Q.sub death birth))
    t.transfers;
  spans

let validate t =
  let errs = ref [] in
  let err fmt = Format.kasprintf (fun s -> errs := s :: !errs) fmt in
  let ddg = t.loop.Loop.ddg in
  let n_cl = Machine.n_clusters t.machine in
  let it = t.clocking.Clocking.it in
  (* Placements in range and on existing resources. *)
  Array.iteri
    (fun i p ->
      if p.cluster < 0 || p.cluster >= n_cl then
        err "instr %d: cluster %d out of range" i p.cluster
      else begin
        if p.cycle < 0 then err "instr %d: negative cycle %d" i p.cycle;
        let kind = Instr.fu (Ddg.instr ddg i) in
        if Cluster.fu_count (Machine.cluster t.machine p.cluster) kind = 0 then
          err "instr %d: cluster %d has no %s" i p.cluster
            (Opcode.fu_to_string kind)
      end)
    t.placements;
  if !errs <> [] then Error (List.rev !errs)
  else begin
    (* FU capacity per modulo slot. *)
    let tbl = Hashtbl.create 64 in
    Array.iteri
      (fun i p ->
        let kind = Instr.fu (Ddg.instr ddg i) in
        let slot = p.cycle mod t.clocking.Clocking.cluster_ii.(p.cluster) in
        let key = (p.cluster, kind, slot) in
        Hashtbl.replace tbl key
          (1 + Option.value (Hashtbl.find_opt tbl key) ~default:0))
      t.placements;
    Hashtbl.iter
      (fun (cl, kind, slot) used ->
        let cap = Cluster.fu_count (Machine.cluster t.machine cl) kind in
        if used > cap then
          err "cluster %d %s slot %d: %d ops for %d units" cl
            (Opcode.fu_to_string kind) slot used cap)
      tbl;
    (* Bus capacity per modulo slot. *)
    let bus = Array.make t.clocking.Clocking.icn_ii 0 in
    List.iter
      (fun (tr : transfer) ->
        if tr.bus_cycle < 0 then err "transfer from %d: negative bus cycle" tr.src
        else begin
          let slot = tr.bus_cycle mod t.clocking.Clocking.icn_ii in
          bus.(slot) <- bus.(slot) + 1
        end)
      t.transfers;
    Array.iteri
      (fun slot used ->
        if used > t.machine.Machine.icn.Icn.buses then
          err "bus slot %d: %d transfers for %d buses" slot used
            t.machine.Machine.icn.Icn.buses)
      bus;
    (* Transfers must leave after their value is defined. *)
    List.iter
      (fun (tr : transfer) ->
        if tr.dst_cluster < 0 || tr.dst_cluster >= n_cl then
          err "transfer from %d: bad cluster %d" tr.src tr.dst_cluster;
        let earliest =
          Timing.earliest_bus_cycle t.clocking ~def_time:(def_time t tr.src)
        in
        if tr.bus_cycle < earliest then
          err "transfer from %d: bus cycle %d before earliest %d" tr.src
            tr.bus_cycle earliest)
      t.transfers;
    (* Dependences. *)
    List.iter
      (fun (e : Edge.t) ->
        let ps = t.placements.(e.src) and pd = t.placements.(e.dst) in
        let lhs = Q.add (start_time t e.dst) (Q.mul_int it e.distance) in
        (* The def time under the edge's latency (which may differ from
           the instruction latency, e.g. 0-latency anti edges). *)
        let src_def =
          Q.add
            (start_time t e.src)
            (Q.mul_int
               (Timing.eff_ct t.clocking ~cluster:ps.cluster
                  (Ddg.instr ddg e.src))
               e.latency)
        in
        if ps.cluster = pd.cluster then begin
          if Q.( < ) lhs src_def then
            err "edge %a violated: dst starts at %a, needs %a" Edge.pp e Q.pp
              lhs Q.pp src_def
        end
        else if Edge.carries_value e then begin
          let ok =
            List.exists
              (fun (tr : transfer) ->
                tr.src = e.src && tr.dst_cluster = pd.cluster
                && Q.( <= ) (arrival t tr) lhs
                && tr.bus_cycle
                   >= Timing.earliest_bus_cycle t.clocking
                        ~def_time:(def_time t e.src))
              t.transfers
          in
          if not ok then
            err "edge %a: no transfer delivers the value in time" Edge.pp e
        end
        else begin
          let needed = Q.add src_def (Timing.sync_penalty t.clocking) in
          if Q.( < ) lhs needed then
            err "cross-cluster edge %a violated: dst at %a, needs %a" Edge.pp
              e Q.pp lhs Q.pp needed
        end)
      (Ddg.edges ddg);
    (* Register pressure. *)
    Array.iteri
      (fun cl span ->
        let budget =
          Q.mul_int it (Machine.cluster t.machine cl).Cluster.registers
        in
        if Q.( > ) span budget then
          err "cluster %d register pressure: lifetimes %a ns > budget %a ns" cl
            Q.pp span Q.pp budget)
      (lifetimes_ns t);
    match List.rev !errs with [] -> Ok () | es -> Error es
  end

let pp ppf t =
  Format.fprintf ppf "@[<v>schedule of %s (IT=%a ns, len=%a ns, SC=%d):"
    t.loop.Loop.name Q.pp t.clocking.Clocking.it Q.pp (it_length t)
    (stage_count t);
  Array.iteri
    (fun i p ->
      Format.fprintf ppf "@,  %a @@ C%d cycle %d" Instr.pp
        (Ddg.instr t.loop.Loop.ddg i) p.cluster p.cycle)
    t.placements;
  List.iter
    (fun (tr : transfer) ->
      Format.fprintf ppf "@,  copy %d -> C%d @@ bus cycle %d" tr.src
        tr.dst_cluster tr.bus_cycle)
    t.transfers;
  Format.fprintf ppf "@]"
