open Hcv_support
open Hcv_ir
open Hcv_machine
open Hcv_energy

type t = {
  branch_ops_per_iter : int;
  broadcasts_per_iter : int;
  energy_per_iter : float;
  slack_ok : bool;
}

let int_op_energy = Opcode.energy (Opcode.make Opcode.Arith Opcode.Int)

let analyze ?cond_cluster (sched : Schedule.t) =
  let clocking = sched.Schedule.clocking in
  let n_clusters = Array.length clocking.Clocking.cluster_ii in
  let cond_cluster =
    match cond_cluster with
    | Some c -> c
    | None ->
      (* The condition evaluation is an integer op, so the default
         condition cluster is the fastest *int-capable* one — on a
         capability-asymmetric machine the overall-fastest cluster may
         carry no integer unit at all.  On int-uniform machines (the
         paper design included) this is exactly the fastest cluster,
         first on cycle-time ties. *)
      let best = ref (-1) in
      Array.iteri
        (fun i ct ->
          if
            Cluster.capable
              (Machine.cluster sched.Schedule.machine i)
              Opcode.Int_fu
            && (!best < 0 || Q.( < ) ct clocking.Clocking.cluster_ct.(!best))
          then best := i)
        clocking.Clocking.cluster_ct;
      if !best >= 0 then !best else Clocking.fastest_cluster clocking
  in
  (* Per iteration: one target computation and one control transfer in
     every cluster, one condition evaluation in the condition cluster. *)
  let branch_ops_per_iter = (2 * n_clusters) + 1 in
  let broadcasts_per_iter = max 0 (n_clusters - 1) in
  let energy_per_iter = float_of_int branch_ops_per_iter *. int_op_energy in
  (* Slack check: condition (1 int-op latency) + sync + bus transfer
     must fit within one initiation time. *)
  let cond_ct = clocking.Clocking.cluster_ct.(cond_cluster) in
  let cond_time =
    Q.add
      (Q.mul_int cond_ct (Opcode.latency (Opcode.make Opcode.Arith Opcode.Int)))
      (Q.add (Timing.sync_penalty clocking)
         (Q.mul_int clocking.Clocking.icn_ct
            sched.Schedule.machine.Machine.icn.Icn.latency_cycles))
  in
  let slack_ok = Q.( <= ) cond_time clocking.Clocking.it in
  { branch_ops_per_iter; broadcasts_per_iter; energy_per_iter; slack_ok }

let overhead_activity t ~trip ~n_clusters ~cond_cluster (act : Activity.t) =
  let per_cluster = Array.copy act.Activity.per_cluster_ins_energy in
  let trip_f = float_of_int trip in
  (* Two ops (target + transfer) in every cluster, one extra condition
     op in the condition cluster. *)
  for c = 0 to n_clusters - 1 do
    per_cluster.(c) <- per_cluster.(c) +. (2.0 *. int_op_energy *. trip_f)
  done;
  per_cluster.(cond_cluster) <-
    per_cluster.(cond_cluster) +. (int_op_energy *. trip_f);
  Activity.make ~exec_time_ns:act.Activity.exec_time_ns
    ~per_cluster_ins_energy:per_cluster
    ~n_comms:(act.Activity.n_comms +. (float_of_int t.broadcasts_per_iter *. trip_f))
    ~n_mem:act.Activity.n_mem

let pp ppf t =
  Format.fprintf ppf
    "control{%d branch ops/iter, %d broadcasts/iter, E=%.1f, slack %s}"
    t.branch_ops_per_iter t.broadcasts_per_iter t.energy_per_iter
    (if t.slack_ok then "ok" else "INSUFFICIENT")
