open Hcv_support
open Hcv_ir
open Hcv_machine

type t = {
  schedule : Schedule.t;
  overflow : int;
  back_violations : int;
  regs_ok : bool;
  n_comms : int;
  it_length : Q.t;
}

let feasible t = t.overflow = 0 && t.back_violations = 0 && t.regs_ok

exception False

let estimate ?memo ?(obs = Hcv_obs.Trace.null) ~machine ~clocking ~loop
    ~assignment () =
  let ddg = loop.Loop.ddg in
  let n = Ddg.n_instrs ddg in
  (* Invariant: callers build the assignment from this DDG (caller bug,
     not an input condition). *)
  if Array.length assignment <> n then
    invalid_arg "Pseudo.estimate: assignment arity mismatch";
  let it = clocking.Clocking.it in
  let memo =
    match memo with Some m -> m | None -> Timing.Memo.create clocking
  in
  let buslat = machine.Machine.icn.Icn.latency_cycles in
  let mrt = Mrt.create machine clocking in
  let cyc = Array.make n 0 in
  let placed = Array.make n false in
  let overflow = ref 0 in
  (* it * d for every distance in the DDG, computed once. *)
  let it_d =
    let maxd =
      Array.fold_left
        (fun acc (e : Edge.t) -> max acc e.distance)
        0 (Ddg.edge_array ddg)
    in
    Array.init (maxd + 1) (fun d -> Q.mul_int it d)
  in
  (* One transfer per (producer, destination cluster); moving a transfer
     earlier is always safe for already-served consumers. *)
  let n_clusters = Machine.n_clusters machine in
  (* One transfer per (producer, destination cluster), in dense arrays
     keyed by [src * n_clusters + dst].  [tr_arrival] caches the
     arrival time of the reserved slot: the serve fast path is then a
     single comparison ([arrival <= need] iff [slot <= latest]). *)
  let tr_slot = Array.make (n * n_clusters) (-1) in
  let tr_arrival = Array.make (n * n_clusters) Q.zero in
  let tr_keys = ref [] in
  (* Start, value-definition time and earliest bus cycle of every placed
     instruction, filled in when its cycle is committed: each is read
     once per incident edge per candidate cycle, so recomputing the Q
     products every time dominated the estimator. *)
  let starts = Array.make n Q.zero in
  let defs = Array.make n Q.zero in
  let ebus = Array.make n 0 in
  (* Per-source resume cache for failed bus searches.  A search for
     src's value always starts at the fixed cycle [ebus.(src)], and bus
     occupancy only grows between releases, so once [ebus.(src) ..
     full_upto.(src)] is known fully booked a later search over the
     same prefix can skip it — O(total window width) scanning per
     source instead of O(candidates x width).  Any bus release bumps
     [bus_epoch], conservatively invalidating every cache.
     [full_bound] is [icn_ct * (full_upto + 1 + buslat)]: [latest <=
     full_upto] iff [need < full_bound], so the known-full reject is a
     single comparison with no division. *)
  let bus_epoch = ref 0 in
  let scan_epoch = Array.make n (-1) in
  let full_upto = Array.make n min_int in
  let full_bound = Array.make n Q.zero in
  let icn_ct = clocking.Clocking.icn_ct in
  let set_full_upto src upto =
    scan_epoch.(src) <- !bus_epoch;
    full_upto.(src) <- upto;
    full_bound.(src) <- Q.mul_int icn_ct (upto + 1 + buslat)
  in
  let def_of_edge (e : Edge.t) =
    (* Source definition time under the edge's latency. *)
    Q.add starts.(e.src)
      (Timing.Memo.lat_offset memo ~cluster:assignment.(e.src)
         (Instr.fu (Ddg.instr ddg e.src))
         e.latency)
  in
  (* Plan (without committing) a bus slot in [earliest, latest]; prefer
     the earliest free cycle. *)
  let find_bus ~earliest ~latest = Mrt.bus_first_free mrt ~earliest ~latest in
  (* Set when a pred could not be served because every bus modulo slot
     is full and it needs a brand-new transfer.  The bus table cannot
     change while the current instruction keeps probing later cycles
     (creating needs a free slot, and moving first finds one), so no
     candidate cycle can ever serve that pred — the placement loop can
     jump straight to the overflow outcome it would otherwise reach by
     exhausting its tries. *)
  let serve_blocked = ref false in
  (* Serve a cross-cluster value edge for a consumer starting at [need]:
     reuse (or advance) the transfer, or create one.  Returns false when
     no bus slot can make the delivery. *)
  let serve_transfer ~src ~dst_cluster ~need =
    let key = (src * n_clusters) + dst_cluster in
    let b = tr_slot.(key) in
    if b >= 0 && Q.( <= ) tr_arrival.(key) need then true
    else if Mrt.bus_slots_free mrt = 0 then begin
      (* Every modulo slot is full, so the window scan below cannot
         succeed whatever the window is. *)
      if b < 0 then serve_blocked := true;
      false
    end
    else if scan_epoch.(src) = !bus_epoch && Q.( < ) need full_bound.(src)
    then false (* the whole [ebus.(src), latest] window is known full *)
    else begin
      (* No transfer yet, or the existing one arrives too late for this
         consumer; find a slot that delivers in time (moving a transfer
         earlier is always safe for already-served consumers). *)
      let latest = Timing.latest_bus_cycle clocking ~buslat ~need in
      let from =
        if scan_epoch.(src) = !bus_epoch then
          max ebus.(src) (full_upto.(src) + 1)
        else ebus.(src)
      in
      match find_bus ~earliest:from ~latest with
      | Some b' ->
        set_full_upto src (b' - 1);
        if b >= 0 then begin
          Mrt.bus_release mrt ~cycle:b;
          incr bus_epoch
        end
        else tr_keys := (src, dst_cluster) :: !tr_keys;
        Mrt.bus_reserve mrt ~cycle:b';
        tr_slot.(key) <- b';
        tr_arrival.(key) <- Timing.bus_arrival clocking ~buslat ~bus_cycle:b';
        true
      | None ->
        set_full_upto src latest;
        false
    end
  in
  (* Greedy placement in topological order of the acyclic subgraph. *)
  List.iter
    (fun i ->
      let c = assignment.(i) in
      let ins = Ddg.instr ddg i in
      let kind = Instr.fu ins in
      let ii = clocking.Clocking.cluster_ii.(c) in
      let ready =
        Ddg.fold_preds ddg i
          (fun acc (e : Edge.t) ->
            if not placed.(e.src) then acc
            else begin
              let r =
                if assignment.(e.src) = c then
                  Timing.dep_ready_same clocking ~it
                    ~def_time:(def_of_edge e) ~distance:e.distance
                else if Edge.carries_value e then
                  (* Earliest conceivable arrival through the bus. *)
                  let bus_cycle =
                    if e.latency = Instr.latency (Ddg.instr ddg e.src) then
                      ebus.(e.src)
                    else
                      Timing.earliest_bus_cycle clocking
                        ~def_time:(def_of_edge e)
                  in
                  Q.sub
                    (Timing.bus_arrival clocking ~buslat ~bus_cycle)
                    it_d.(e.distance)
                else
                  Q.sub
                    (Q.add (def_of_edge e) (Timing.sync_penalty clocking))
                    it_d.(e.distance)
              in
              Q.max acc r
            end)
          Q.zero
      in
      let e0 = Timing.earliest_cycle clocking ~cluster:c ~ready in
      let try_cycle k =
        serve_blocked := false;
        if not (Mrt.fu_available mrt ~cluster:c ~kind ~cycle:k) then false
        else begin
          (* Tentatively adopt cycle k to compute consumer needs. *)
          let prev = cyc.(i) in
          cyc.(i) <- k;
          let start_i = Timing.Memo.start_time memo ~cluster:c ~cycle:k in
          let ok =
            match
              Ddg.iter_preds ddg i (fun (e : Edge.t) ->
                  let served =
                    (not placed.(e.src))
                    || assignment.(e.src) = c
                    || (not (Edge.carries_value e))
                    ||
                    let need = Q.add start_i it_d.(e.distance) in
                    serve_transfer ~src:e.src ~dst_cluster:c ~need
                  in
                  if not served then raise_notrace False)
            with
            | () -> true
            | exception False -> false
          in
          if not ok then cyc.(i) <- prev;
          ok
        end
      in
      let overbook () =
        (* Overbook at the dependence-ready cycle. *)
        incr overflow;
        cyc.(i) <- e0
      in
      let rec place k tries =
        if tries = 0 then overbook ()
        else if try_cycle k then Mrt.fu_reserve mrt ~cluster:c ~kind ~cycle:k
        else if !serve_blocked then
          (* A pred needs a new transfer on a saturated bus; no later
             cycle can change that, so the try loop would fail them
             all and overbook anyway. *)
          overbook ()
        else place (k + 1) (tries - 1)
      in
      if Mrt.fu_slots_free mrt ~cluster:c ~kind = 0 then
        (* Every modulo slot of this FU row is full: [try_cycle] fails
           its availability check at every candidate, so skip straight
           to the identical overbooked outcome. *)
        overbook ()
      else place e0 (max ii 1);
      starts.(i) <- Timing.Memo.start_time memo ~cluster:c ~cycle:cyc.(i);
      defs.(i) <- Q.add starts.(i) (Timing.Memo.def_offset memo ~cluster:c ins);
      ebus.(i) <- Timing.earliest_bus_cycle clocking ~def_time:defs.(i);
      placed.(i) <- true)
    (Ddg.topo_order ddg);
  (* Loop-carried dependences: check, and reserve buses for the value
     transfers the greedy forward pass did not see. *)
  let back_violations = ref 0 in
  Array.iter
    (fun (e : Edge.t) ->
      if e.distance > 0 then begin
        let lhs = Q.add starts.(e.dst) it_d.(e.distance) in
        let def = def_of_edge e in
        if assignment.(e.src) = assignment.(e.dst) then begin
          if Q.( < ) lhs def then incr back_violations
        end
        else if Edge.carries_value e then begin
          if not (serve_transfer ~src:e.src ~dst_cluster:assignment.(e.dst) ~need:lhs)
          then incr back_violations
        end
        else if Q.( < ) lhs (Q.add def (Timing.sync_penalty clocking)) then
          incr back_violations
      end)
    (Ddg.edge_array ddg);
  let placements =
    Array.init n (fun i ->
        { Schedule.cluster = assignment.(i); cycle = cyc.(i) })
  in
  let transfer_list =
    List.map
      (fun (src, dst_cluster) ->
        {
          Schedule.src;
          dst_cluster;
          bus_cycle = tr_slot.((src * n_clusters) + dst_cluster);
        })
      !tr_keys
    |> List.sort Stdlib.compare
  in
  let schedule =
    Schedule.make ~loop ~machine ~clocking ~placements ~transfers:transfer_list
  in
  (* Score ingredients, from the arrays the placement pass already
     filled: [defs.(i)] is exactly [Schedule.def_time] (the memo's
     def_offset is the same product) and [tr_arrival] caches every
     transfer's arrival, so the iteration length and the per-cluster
     lifetime sums need no re-derivation from the placements — the
     estimator is scored once per call on the partitioner's hot path. *)
  let n_comms = List.length !tr_keys in
  let it_length =
    let len = ref Q.zero in
    Array.iter (fun d -> len := Q.max !len d) defs;
    List.iter
      (fun (src, dst_cluster) ->
        len := Q.max !len tr_arrival.((src * n_clusters) + dst_cluster))
      !tr_keys;
    !len
  in
  let regs_ok =
    let spans = Array.make n_clusters Q.zero in
    (* Latest bus send per producer: max cycle <=> max send time. *)
    let tr_last = Array.make (max n 1) min_int in
    List.iter
      (fun (src, dst_cluster) ->
        let b = tr_slot.((src * n_clusters) + dst_cluster) in
        if b > tr_last.(src) then tr_last.(src) <- b)
      !tr_keys;
    for i = 0 to n - 1 do
      let c = assignment.(i) in
      let birth = defs.(i) in
      let death =
        ref
          (Ddg.fold_succs ddg i
             (fun death (e : Edge.t) ->
               if Edge.carries_value e && assignment.(e.dst) = c then
                 Q.max death (Q.add starts.(e.dst) it_d.(e.distance))
               else death)
             birth)
      in
      if tr_last.(i) > min_int then
        death := Q.max !death (Q.mul_int icn_ct tr_last.(i));
      spans.(c) <- Q.add spans.(c) (Q.sub !death birth)
    done;
    (* Destination-side spans: bus arrival to last read there. *)
    List.iter
      (fun (src, dst_cluster) ->
        let birth = tr_arrival.((src * n_clusters) + dst_cluster) in
        let death =
          Ddg.fold_succs ddg src
            (fun death (e : Edge.t) ->
              if Edge.carries_value e && assignment.(e.dst) = dst_cluster then
                Q.max death (Q.add starts.(e.dst) it_d.(e.distance))
              else death)
            birth
        in
        spans.(dst_cluster) <- Q.add spans.(dst_cluster) (Q.sub death birth))
      !tr_keys;
    let ok = ref true in
    Array.iteri
      (fun ci (cl : Cluster.t) ->
        if not (Q.( <= ) spans.(ci) (Q.mul_int it cl.Cluster.registers)) then
          ok := false)
      machine.Machine.clusters;
    !ok
  in
  let t =
    { schedule; overflow = !overflow; back_violations = !back_violations;
      regs_ok; n_comms; it_length }
  in
  Hcv_obs.Trace.incr obs "pseudo.evals";
  if not (feasible t) then Hcv_obs.Trace.incr obs "pseudo.infeasible";
  t

let score t =
  (float_of_int t.overflow *. 1e12)
  +. (float_of_int t.back_violations *. 1e9)
  +. (if t.regs_ok then 0.0 else 1e7)
  +. (float_of_int t.n_comms *. 100.0)
  +. Q.to_float t.it_length
