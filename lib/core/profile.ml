open Hcv_support
open Hcv_ir
open Hcv_machine
open Hcv_energy
open Hcv_sched

type loop_profile = {
  loop : Loop.t;
  sched : Schedule.t;
  ii_hom : int;
  mii_hom : int;
  it_length_cycles : int;
  n_comms : int;
  lifetime_ns : float;
  exec_ns : float;
  reps : float;
  activity : Activity.t;
  rec_mii : int;
  fu_demands : (Opcode.fu_kind * int) list;
}

type t = {
  machine : Machine.t;
  config : Opconfig.t;
  loops : loop_profile list;
  activity : Activity.t;
}

let t_norm_ns = 1e6

let activity_of_schedule sched ~trip =
  let per_iter = Schedule.per_cluster_ins_energy sched in
  Activity.make
    ~exec_time_ns:(Schedule.exec_time_ns sched ~trip)
    ~per_cluster_ins_energy:(Array.map (fun e -> e *. float_of_int trip) per_iter)
    ~n_comms:(float_of_int (Schedule.n_comms sched * trip))
    ~n_mem:(float_of_int (Schedule.n_mem sched * trip))

let profile ?(obs = Hcv_obs.Trace.null) ~machine ~loops () =
  let config = Presets.reference_config machine in
  let cycle_time = Presets.reference_cycle_time in
  (* Capability screen up front: the machine is fixed for the whole
     pipeline, so a demanded FU kind no cluster supports dooms every
     downstream stage — report it as the machine's fault, not as a
     scheduling failure. *)
  match
    List.find_map
      (fun loop ->
        Option.map
          (fun msg -> (loop, msg))
          (Mii.missing_kinds_msg machine loop.Loop.ddg))
      loops
  with
  | Some (loop, msg) ->
    Error
      (Hcv_obs.Diag.v ~code:"machine-incapable"
         ~context:
           [ ("loop", loop.Loop.name); ("machine", machine.Machine.name) ]
         msg)
  | None ->
  let rec build acc = function
    | [] -> Ok (List.rev acc)
    | loop :: rest -> (
      match Homo.schedule ~machine ~cycle_time ~loop () with
      | Error msg ->
        Error
          (Hcv_obs.Diag.v ~code:"reference-unschedulable"
             ~context:[ ("loop", loop.Loop.name) ]
             msg)
      | Ok (sched, stats) ->
        let exec_ns = Schedule.exec_time_ns sched ~trip:loop.Loop.trip in
        let lifetime_ns =
          Array.fold_left
            (fun acc q -> acc +. Q.to_float q)
            0.0 (Schedule.lifetimes_ns sched)
        in
        let lp =
          {
            loop;
            sched;
            ii_hom = stats.Homo.ii;
            mii_hom = stats.Homo.mii;
            it_length_cycles =
              Q.ceil (Q.div (Schedule.it_length sched) cycle_time);
            n_comms = Schedule.n_comms sched;
            lifetime_ns;
            exec_ns;
            reps = 0.0 (* filled after weight normalisation *);
            activity = activity_of_schedule sched ~trip:loop.Loop.trip;
            (* DDG-only inputs of the per-configuration MIT, computed
               once here so selection's design-point sweep does not
               re-derive them per point. *)
            rec_mii = Mii.rec_mii loop.Loop.ddg;
            fu_demands =
              List.filter (fun (_, d) -> d > 0) (Ddg.fu_demand loop.Loop.ddg);
          }
        in
        build (lp :: acc) rest)
  in
  match build [] loops with
  | Error _ as e -> e
  | Ok [] -> Error (Hcv_obs.Diag.v ~code:"no-loops" "nothing to profile")
  | Ok lps ->
    Hcv_obs.Trace.add obs "profile.loops" (List.length lps);
    let total_weight =
      Listx.sum_float (List.map (fun lp -> lp.loop.Loop.weight) lps)
    in
    let lps =
      List.map
        (fun lp ->
          let share = lp.loop.Loop.weight /. total_weight in
          { lp with reps = share *. t_norm_ns /. lp.exec_ns })
        lps
    in
    let activity =
      List.fold_left
        (fun acc (lp : loop_profile) ->
          Activity.add acc (Activity.scale lp.activity lp.reps))
        (Activity.zero ~n_clusters:(Machine.n_clusters machine))
        lps
    in
    Ok { machine; config; loops = lps; activity }

let scale_cycle_time t cycle_time =
  let k = Q.to_float (Q.div cycle_time Presets.reference_cycle_time) in
  let a = t.activity in
  Activity.make
    ~exec_time_ns:(a.Activity.exec_time_ns *. k)
    ~per_cluster_ins_energy:a.Activity.per_cluster_ins_energy
    ~n_comms:a.Activity.n_comms ~n_mem:a.Activity.n_mem
