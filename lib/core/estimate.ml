open Hcv_support
open Hcv_machine
open Hcv_energy
open Hcv_sched

type loop_estimate = { it : Q.t; it_length_ns : float; exec_ns : float }

let loop_it ~config (lp : Profile.loop_profile) =
  let machine = config.Opconfig.machine in
  let mit =
    Mit.mit_parts ~config ~rec_mii:lp.Profile.rec_mii
      ~demands:lp.Profile.fu_demands
  in
  (* Bus-slot bound: buses * II_icn >= communications per iteration. *)
  let comm_bound =
    if lp.Profile.n_comms = 0 then Q.zero
    else
      Q.div_int
        (Q.mul_int (Opconfig.cycle_time config Comp.Icn) lp.Profile.n_comms)
        machine.Machine.icn.Icn.buses
  in
  (* Lifetime bound: total register capacity across clusters. *)
  let total_regs =
    Array.fold_left
      (fun acc (c : Cluster.t) -> acc + c.Cluster.registers)
      0 machine.Machine.clusters
  in
  let lifetime_bound =
    if total_regs = 0 then Q.zero
    else
      Q.of_float_approx ~max_den:1000
        (lp.Profile.lifetime_ns /. float_of_int total_regs)
  in
  let lower = Q.max mit (Q.max comm_bound lifetime_bound) in
  (* The reference scheduler achieved ii_hom >= mii_hom; the same
     schedulability slack (partition quality, bus pressure) will apply
     to the heterogeneous schedule, so inflate the bound by the
     profiled ratio. *)
  let inflation =
    if lp.Profile.mii_hom <= 0 then Q.one
    else Q.make lp.Profile.ii_hom lp.Profile.mii_hom
  in
  let lower = Q.mul lower inflation in
  (* Snap up to the first IT with a synchronisable clocking. *)
  let rec snap it tries =
    if tries = 0 then it
    else
      match Clocking.of_config ~config ~it with
      | Ok _ -> it
      | Error _ -> snap (Mit.next_candidate ~config ~after:it) (tries - 1)
  in
  snap lower 64

let mean_cluster_ct config =
  let pts = config.Opconfig.cluster_points in
  Listx.mean
    (Array.to_list
       (Array.map (fun (p : Opconfig.point) -> Q.to_float p.Opconfig.cycle_time) pts))

let loop_estimate ~config (lp : Profile.loop_profile) =
  let it = loop_it ~config lp in
  let it_length_ns =
    float_of_int lp.Profile.it_length_cycles *. mean_cluster_ct config
  in
  let trip = lp.Profile.loop.Hcv_ir.Loop.trip in
  let exec_ns = (float_of_int (trip - 1) *. Q.to_float it) +. it_length_ns in
  { it; it_length_ns; exec_ns }

let predict_activity ~config (p : Profile.t) =
  let n_clusters = Machine.n_clusters p.Profile.machine in
  List.fold_left
    (fun acc (lp : Profile.loop_profile) ->
      let est = loop_estimate ~config lp in
      let ref_act = lp.Profile.activity in
      let act =
        Activity.make ~exec_time_ns:est.exec_ns
          ~per_cluster_ins_energy:ref_act.Activity.per_cluster_ins_energy
          ~n_comms:ref_act.Activity.n_comms ~n_mem:ref_act.Activity.n_mem
      in
      Activity.add acc (Activity.scale act lp.Profile.reps))
    (Activity.zero ~n_clusters) p.Profile.loops

let predict_ed2 ~ctx ~config p =
  Model.ed2 ctx ~config (predict_activity ~config p)
