(** Rendering of selection frontiers: the CSV dump and the fig7-style
    per-benchmark report behind [hcvliw frontier].

    Both renderings are pure functions of the frontier members (floats
    through {!Hcv_support.Floatfmt}), so their bytes are identical for
    any worker count and cache state. *)

(** {2 Rebuilding from cached members}

    {!Sweep.outcome} persists a frontier as its serialized member
    choices in member order.  Members are mutually non-dominated, so
    re-folding them rebuilds the same frontier with entry indices equal
    to member positions — the canonical form both renderings consume
    (a live {!Select.frontier_heterogeneous} result is normalised the
    same way, which keeps cold and warm runs byte-identical). *)

val rebuild :
  spec:Frontier.spec -> Select.choice list -> Select.choice Frontier.t

(** {2 Objective regimes}

    The report contrasts one pick per {e regime} on the same frontier:
    the five single-objective corners ([min-ed2] is exactly the paper's
    scalarised selector) plus two constrained regimes derived from the
    ED² corner — [fast@e-cap] (fastest member whose energy is within
    10% of the ED² corner's) and [frugal@t-cap] (lowest-energy member
    whose time is within 10% of the ED² corner's).  Constrained picks
    search frontier members only, which is sound: any feasible swept
    point is dominated by a member that is also feasible and at least
    as good on the optimised objective. *)

val regimes :
  Select.choice Frontier.t -> (string * Select.choice Frontier.entry) list
(** In fixed regime order; empty only on an empty frontier. *)

(** {2 Renderings} *)

val csv_header : string
(** [bench,member,fast_ct,slow_ct,time_ns,energy,ed2,edp,power] *)

val csv_rows : bench:string -> Select.choice Frontier.t -> string list
(** One row per member in member order (no header). *)

val pp_report :
  Format.formatter -> (string * Select.choice Frontier.t) list -> unit
(** The fig7-style report: per benchmark, the frontier size and one
    line per regime with its objective vector and its time/energy
    ratios against the ED² corner. *)
