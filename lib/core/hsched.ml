open Hcv_support
open Hcv_ir
open Hcv_machine
open Hcv_energy
open Hcv_sched

type stats = {
  it : Q.t;
  mit : Q.t;
  tries : int;
  sync_bumps : int;
  prePlaced : int;
}

let cluster_ct config i =
  (Opconfig.point config (Comp.Cluster i)).Opconfig.cycle_time

(* Can [cluster] host the recurrence members [nodes] (on top of the
   instructions [already] placed there) within its II? *)
let cluster_fits ~machine ~clocking ~ddg ~cluster ~already nodes min_ii =
  let ii = clocking.Clocking.cluster_ii.(cluster) in
  if min_ii > ii then false
  else begin
    let cl = Machine.cluster machine cluster in
    let members = nodes @ already in
    let res = Mii.res_mii_cluster cl ddg members in
    res <= ii
  end

let preplace_recurrences ?(obs = Hcv_obs.Trace.null) ~config ~clocking ddg =
  let machine = config.Opconfig.machine in
  let n_clusters = Machine.n_clusters machine in
  let recs = Recurrence.find_all ddg in
  (* Only the recurrences that do not fit every cluster need
     pre-placement (paper §4.1.1). *)
  let min_cluster_ii = Array.fold_left min max_int clocking.Clocking.cluster_ii in
  let needs_placement =
    List.filter (fun (r : Recurrence.t) -> r.Recurrence.min_ii > min_cluster_ii) recs
  in
  let placed_per_cluster = Array.make n_clusters [] in
  let rec place acc = function
    | [] -> Ok acc
    | (r : Recurrence.t) :: rest -> (
      (* Slowest feasible cluster (max cycle time; lowest index on
         ties). *)
      let best = ref None in
      for c = 0 to n_clusters - 1 do
        if
          cluster_fits ~machine ~clocking ~ddg ~cluster:c
            ~already:placed_per_cluster.(c) r.Recurrence.nodes
            r.Recurrence.min_ii
        then begin
          let ct = cluster_ct config c in
          match !best with
          | None -> best := Some (c, ct)
          | Some (_, bct) -> if Q.( > ) ct bct then best := Some (c, ct)
        end
      done;
      match !best with
      | None ->
        Error
          (Hcv_obs.Diag.v ~code:"preplace-no-cluster"
             ~context:
               [
                 ("recurrence", Format.asprintf "%a" Recurrence.pp r);
                 ("it", Format.asprintf "%a" Q.pp clocking.Clocking.it);
               ]
             "recurrence fits no cluster at this initiation time")
      | Some (c, _) ->
        placed_per_cluster.(c) <- r.Recurrence.nodes @ placed_per_cluster.(c);
        place
          (List.rev_append
             (List.map (fun i -> (i, c)) r.Recurrence.nodes)
             acc)
          rest)
  in
  let r = place [] needs_placement in
  (match r with
  | Ok placed ->
    Hcv_obs.Trace.add obs "preplace.placed" (List.length placed)
  | Error _ -> Hcv_obs.Trace.incr obs "preplace.rejects");
  r

(* Score a candidate partition by the ED2 its pseudo-schedule predicts
   (paper §4.1.2).  Unschedulable partitions keep the huge
   schedulability-first penalties so that any feasible partition wins. *)
let ed2_score ?memo ?obs ~ctx ~config ~machine ~clocking ~loop assignment =
  let est = Pseudo.estimate ?memo ?obs ~machine ~clocking ~loop ~assignment () in
  if not (Pseudo.feasible est) then 1e14 +. Pseudo.score est
  else begin
    let act =
      Profile.activity_of_schedule est.Pseudo.schedule
        ~trip:loop.Loop.trip
    in
    Model.ed2 ctx ~config act
  end

type score_mode = Ed2 | Schedulability

(* Counter-safe slugs for the slot-scheduler failure causes (the
   human-readable {!Slot_sched.failure_to_string} strings have spaces). *)
let slot_failure_slug = function
  | Slot_sched.Budget_exhausted -> "budget_exhausted"
  | Slot_sched.Positive_cycle -> "positive_cycle"
  | Slot_sched.Register_pressure -> "register_pressure"

(* Memoise a partition-scoring function by the exact assignment.  The
   multilevel refinement proposes the same (or a just-reverted)
   assignment over and over — each hit skips a whole pseudo-schedule.
   The key is the full assignment (one byte per instruction), so hits
   can never alias and the memo is behaviour-preserving; the score is
   pure for a fixed clocking, which is why the table must not outlive
   the IT attempt it was built for. *)
(* Raised (notrace: it is control flow, not an error) by the budget
   guard when a schedule call has spent its allotment of raw partition
   scorings; caught once at the top of [schedule]. *)
exception Budget_exhausted

let memoised_score score =
  let cache : (string, float) Hashtbl.t = Hashtbl.create 256 in
  fun (assignment : int array) ->
    let key =
      String.init (Array.length assignment) (fun i ->
          Char.chr assignment.(i))
    in
    match Hashtbl.find_opt cache key with
    | Some s -> s
    | None ->
      let s = score assignment in
      Hashtbl.add cache key s;
      s

let schedule ?(obs = Hcv_obs.Trace.null) ~ctx ~config ~loop ?(max_tries = 64)
    ?(seed = 0) ?(preplace = true) ?(score_mode = Ed2) ?(score_memo = true)
    ?budget () =
  let machine = config.Opconfig.machine in
  (* One allotment for the whole call: the counter survives IT bumps, so
     a pathological config cannot spin through 64 attempts each paying
     full price. *)
  let budget_left = ref (Option.value budget ~default:max_int) in
  let n_clusters = Machine.n_clusters machine in
  let ddg = loop.Loop.ddg in
  match Mii.missing_kinds_msg machine ddg with
  | Some msg ->
    (* Capability-asymmetric machines can arrive from description
       files, so a demanded kind no cluster supports is a user input,
       not an invariant violation: fail structurally before Mit would
       trip its backstop. *)
    Hcv_obs.Trace.incr obs "hsched.machine_incapable";
    Error
      (Hcv_obs.Diag.v ~code:"machine-incapable"
         ~context:
           [ ("loop", loop.Loop.name); ("machine", machine.Machine.name) ]
         msg)
  | None ->
  let eligible = Mii.eligibility machine ddg in
  let mit = Mit.mit ~config ddg in
  let mit = if Q.sign mit <= 0 then Mit.next_candidate ~config ~after:Q.zero else mit in
  let groups =
    List.map (fun (r : Recurrence.t) -> r.Recurrence.nodes) (Recurrence.find_all ddg)
  in
  (* Coarsening depends only on (ddg, fixed, groups) — never on the
     clocking — so the hierarchy is shared across IT attempts and both
     restarts; it only rebuilds when preplacement pins the recurrences
     differently at the new IT. *)
  let hier_cache = ref None in
  let hier_for fixed =
    match !hier_cache with
    | Some (f, h) when f = fixed ->
      Hcv_obs.Trace.incr obs "partition.hier_reuses";
      h
    | Some _ | None ->
      let h = Partition.Hier.build ~ddg ~fixed ~groups () in
      Hcv_obs.Trace.incr obs "partition.hier_builds";
      hier_cache := Some (fixed, h);
      h
  in
  (* ED² is not priced in transfers, so the partitioner's
     transfer-delta pruning must stay off for it; the schedulability
     score is exactly {!Pseudo.score}, which the default threshold
     matches. *)
  let stressed =
    match score_mode with Ed2 -> 0.0 | Schedulability -> 1e7
  in
  let rec attempt it tries sync_bumps last_cause =
    if tries > max_tries then
      Error
        (Hcv_obs.Diag.v ~code:"unschedulable"
           ~context:
             [
               ("loop", loop.Loop.name);
               ("mit", Format.asprintf "%a" Q.pp mit);
               ("max_tries", string_of_int max_tries);
               ("last_cause", last_cause);
             ]
           "no heterogeneous schedule within the IT budget")
    else begin
      Hcv_obs.Trace.incr obs "hsched.attempts";
      let bump ~sync ~cause () =
        attempt
          (Mit.next_candidate ~config ~after:it)
          (tries + 1)
          (if sync then sync_bumps + 1 else sync_bumps)
          cause
      in
      match Clocking.of_config ~config ~it with
      | Error _ ->
        Hcv_obs.Trace.incr obs "hsched.clock_rejects";
        bump ~sync:true ~cause:"clocking" ()
      | Ok clocking -> (
        match
          (if preplace then preplace_recurrences ~obs ~config ~clocking ddg
           else Ok [])
        with
        | Error _ -> bump ~sync:false ~cause:"preplace" ()
        | Ok fixed -> (
          let memo = Timing.Memo.create clocking in
          let score =
            match score_mode with
            | Ed2 -> ed2_score ~memo ~obs ~ctx ~config ~machine ~clocking ~loop
            | Schedulability ->
              fun assignment ->
                Pseudo.score
                  (Pseudo.estimate ~memo ~obs ~machine ~clocking ~loop
                     ~assignment ())
          in
          (* The budget guard wraps the *raw* score, beneath the memo:
             only fresh pseudo-schedule evaluations spend budget, memo
             hits stay free — so a budget large enough for the distinct
             assignments never changes the result. *)
          let score =
            match budget with
            | None -> score
            | Some _ ->
              fun assignment ->
                if !budget_left <= 0 then raise_notrace Budget_exhausted
                else begin
                  decr budget_left;
                  score assignment
                end
          in
          (* The memo depends on the clocking, so it lives exactly as
             long as this IT attempt; sharing it across the two
             partitioner restarts below is what makes the second restart
             nearly free on its revisited assignments. *)
          let score =
            if score_memo && n_clusters <= 256 then memoised_score score
            else score
          in
          (* Two deterministic restarts of the multilevel partitioner
             over the shared hierarchy; keep the better-scored
             partition. *)
          let hier = hier_for fixed in
          let part_a =
            Partition.run_hier ~obs ~n_clusters ~hier ~seed ~stressed
              ?eligible ~score ()
          in
          let part_b =
            Partition.run_hier ~obs ~n_clusters ~hier ~seed:(seed + 1)
              ~stressed ?eligible ~score ()
          in
          let part =
            if part_b.Partition.score < part_a.Partition.score then part_b
            else part_a
          in
          match
            Slot_sched.run ~machine ~clocking ~loop
              ~assignment:part.Partition.assignment ()
          with
          | Ok sched ->
            Ok
              ( sched,
                {
                  it;
                  mit;
                  tries;
                  sync_bumps;
                  prePlaced = List.length fixed;
                } )
          | Error f ->
            let cause = slot_failure_slug f in
            Hcv_obs.Trace.incr obs ("hsched.slot." ^ cause);
            bump ~sync:false ~cause ()))
    end
  in
  match attempt mit 1 0 "none" with
  | r -> r
  | exception Budget_exhausted ->
    Hcv_obs.Trace.incr obs "hsched.budget_exhausted";
    Error
      (Hcv_obs.Diag.v ~code:"budget-exhausted"
         ~context:
           [
             ("loop", loop.Loop.name);
             ("budget", string_of_int (Option.value budget ~default:0));
             ("mit", Format.asprintf "%a" Q.pp mit);
           ]
         "partition-scoring budget exhausted before a schedule was found")
