(** Profiling the reference homogeneous run (paper §3).

    The configuration-selection models consume, per loop: the II and
    iteration length achieved by the homogeneous scheduler, the number
    of inter-cluster communications, the summed register lifetimes, and
    the activity counts (instructions per cluster, communications,
    memory accesses) — plus the loop's average trip count and its share
    of whole-program execution time.

    A benchmark's loops are mixed with invocation rates [reps] chosen so
    that each loop contributes its declared [weight] share of the
    reference run's time, and the whole reference run is normalised to
    {!t_norm_ns}. *)

open Hcv_support
open Hcv_ir
open Hcv_machine
open Hcv_energy
open Hcv_sched

type loop_profile = {
  loop : Loop.t;
  sched : Schedule.t;  (** homogeneous reference schedule *)
  ii_hom : int;
  mii_hom : int;  (** the lower bound the scheduler started from *)
  it_length_cycles : int;  (** iteration length, reference cycles *)
  n_comms : int;  (** per iteration *)
  lifetime_ns : float;  (** summed lifetimes per iteration, all clusters *)
  exec_ns : float;  (** one invocation (trip iterations) on the reference *)
  reps : float;  (** invocations per normalised reference run *)
  activity : Activity.t;  (** one invocation on the reference machine *)
  rec_mii : int;  (** recurrence MII — DDG-only, cached for selection *)
  fu_demands : (Opcode.fu_kind * int) list;
      (** nonzero {!Ddg.fu_demand} entries, cached for selection *)
}

type t = {
  machine : Machine.t;
  config : Opconfig.t;  (** the reference homogeneous configuration *)
  loops : loop_profile list;
  activity : Activity.t;  (** whole normalised run *)
}

val t_norm_ns : float
(** Normalised reference-run duration (1e6 ns). *)

val activity_of_schedule : Schedule.t -> trip:int -> Activity.t
(** Activity of one invocation: per-iteration counts scaled by the trip
    count, execution time from the modulo-schedule formula. *)

val profile :
  ?obs:Hcv_obs.Trace.span -> machine:Machine.t -> loops:Loop.t list -> unit
  -> (t, Hcv_obs.Diag.t) result
(** Schedule every loop on the reference homogeneous configuration (1
    ns / 1 V) and aggregate.  Fails with a [reference-unschedulable]
    diagnostic (context: the loop name) if some loop cannot be
    scheduled, or [no-loops] on an empty list.  [?obs] counts
    ["profile.loops"]. *)

val scale_cycle_time : t -> Q.t -> Activity.t
(** Whole-run activity of a *homogeneous* design with a different cycle
    time: the schedule (and all counts) are identical, only time scales
    (paper §5.1). *)
