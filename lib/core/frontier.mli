(** Multi-objective Pareto frontiers over predicted design points.

    The paper's selector (§3.3/§5.1) scalarises to ED² alone;
    heterogeneous scheduling is more naturally a Pareto exploration
    over performance, power and energy (Coutinho et al., Mack et al. —
    see PAPERS.md).  This module is the small pure core behind
    {!Select.frontier_heterogeneous}: objective vectors derived from a
    predicted (time, energy) pair, pluggable objective sets, cap
    constraints ("fastest under an energy cap", "lowest energy under a
    deadline"), and a deterministic non-dominated fold.

    {2 Dominance}

    Over an objective set [O], point [a] {e dominates} [b] iff
    [value a o <= value b o] for every [o] in [O] and the inequality is
    strict for at least one.  A frontier is the set of offered points
    no other offered point dominates, kept in offer order — so for a
    fixed offer sequence the frontier is a pure function of the inputs,
    whatever worker count produced the scores.

    {2 Scalarisation corners}

    For any objective [o] in the set, {!min_by} returns the earliest
    member minimising [o].  When [Ed2] is in the objective set and all
    points have positive time and energy, the earliest offered point
    with minimal ED² is itself never dominated (dominance forces a
    strictly smaller ED²), so the ED² corner of the unconstrained
    frontier is {e exactly} the choice of the paper's scalarised
    selector — the legacy [select_heterogeneous] is the
    [min_by Ed2] corner of {!Select.frontier_heterogeneous}. *)

type objective = Time | Energy | Ed2 | Edp | Power

val all_objectives : objective list
(** Canonical order: time, energy, ed2, edp, power. *)

val objective_name : objective -> string
val objective_of_string : string -> objective option

type vec = {
  time_ns : float;  (** predicted execution time, ns *)
  energy : float;  (** predicted energy *)
  ed2 : float;  (** [energy * time^2] *)
  edp : float;  (** [energy * time] *)
  power : float;
      (** mean power [energy / time] — the §3 model is time-aggregate,
          so mean power stands in for peak power *)
}

val vec : time_ns:float -> energy:float -> vec
(** Derives the ED²/EDP/power components.  The derivations use the
    same operation order as {!Select}'s predictions, so the ED²
    component of a choice's vector is bit-identical to its
    [predicted_ed2]. *)

val value : vec -> objective -> float

(** {2 Constraints} *)

type cap = { cap : objective; bound : float }
(** Feasibility constraint: [value v cap <= bound]. *)

val cap_of_string : string -> (cap, string) result
(** Parses ["OBJECTIVE<=BOUND"] (also accepted: ["OBJECTIVE=BOUND"]). *)

val cap_to_string : cap -> string
(** ["obj<=bound"], bound in {!Hcv_support.Floatfmt.compact} form. *)

val feasible : caps:cap list -> vec -> bool
(** All caps hold.  A vector with a NaN component is never feasible
    under a cap on that component. *)

val dominates : objectives:objective list -> vec -> vec -> bool
(** [dominates ~objectives a b]: [a] weakly better everywhere on
    [objectives], strictly better somewhere. *)

(** {2 Objective-set + constraint specifications} *)

type spec = private { objectives : objective list; caps : cap list }
(** Canonical: objectives deduplicated in {!all_objectives} order, caps
    sorted — equal specs have equal keys. *)

val spec : ?objectives:objective list -> ?caps:cap list -> unit -> spec
(** Defaults: every objective, no caps.
    @raise Invalid_argument on an empty objective list. *)

val default_spec : spec

val spec_key : spec -> string
(** Deterministic content-key fragment (exact ["%h"] bounds) — what
    {!Sweep.cell_key} folds in for frontier cells. *)

val spec_to_json : spec -> Hcv_explore.Jsonx.t
val spec_of_json : Hcv_explore.Jsonx.t -> (spec, string) result
(** Wire form used by the serve protocol:
    [{"objectives":["time",...],"caps":[["energy",BOUND],...]}];
    both fields optional with the {!spec} defaults. *)

(** {2 Frontiers} *)

type 'a entry = {
  item : 'a;
  fvec : vec;
  index : int;  (** 0-based offer order *)
}

type 'a t

val empty : spec -> 'a t

val add : 'a t -> vec:vec -> 'a -> 'a t
(** Offer one point: dropped when it violates a cap or an existing
    member dominates it; otherwise it joins and evicts the members it
    dominates.  Points with equal vectors never dominate each other, so
    predicted ties all stay on the frontier. *)

val of_list : spec -> ('a * vec) list -> 'a t
(** {!add} folded left to right. *)

val spec_of : 'a t -> spec
val members : 'a t -> 'a entry list
(** Non-dominated feasible points, ascending {!entry.index}. *)

val size : 'a t -> int
val considered : 'a t -> int
(** Points offered, including dropped ones. *)

val infeasible : 'a t -> int
(** Points dropped by the caps alone. *)

val min_by : 'a t -> objective -> 'a entry option
(** Earliest member strictly minimising the objective; [None] on an
    empty frontier. *)

val pp_vec : Format.formatter -> vec -> unit
(** Locale-stable ({!Hcv_support.Floatfmt}) rendering of the five
    components. *)
