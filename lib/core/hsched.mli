(** Heterogeneous modulo scheduling (paper §4, Fig. 5).

    Given an operating configuration (per-domain maximum frequencies
    fixed by the §3.3 selection), schedule a loop:

    1. IT := MIT;
    2. select a synchronisable (frequency, II) pair per domain — on
       failure increase the IT ("synchronisation problem");
    3. pre-place critical recurrences: recurrences that do not fit every
       cluster's II are placed, most critical first, in the *slowest*
       cluster that can still host them (§4.1.1);
    4. partition the remaining DDG with the multilevel scheme, scoring
       candidate partitions by the ED² predicted from their
       pseudo-schedule and the §3.1 energy model (§4.1.2);
    5. run slot assignment; on failure increase the IT and restart. *)

open Hcv_support
open Hcv_ir
open Hcv_machine
open Hcv_energy
open Hcv_sched

type stats = {
  it : Q.t;  (** final initiation time *)
  mit : Q.t;
  tries : int;  (** IT candidates attempted *)
  sync_bumps : int;  (** IT increases due to frequency-grid misses *)
  prePlaced : int;  (** instructions fixed by recurrence pre-placement *)
}

val preplace_recurrences :
  ?obs:Hcv_obs.Trace.span -> config:Opconfig.t -> clocking:Clocking.t
  -> Ddg.t -> ((Instr.id * int) list, Hcv_obs.Diag.t) result
(** The §4.1.1 pre-placement: assignments for every instruction in a
    recurrence whose minimum II exceeds the II of at least one cluster.
    Errors with [preplace-no-cluster] (context: the recurrence and the
    IT) when some recurrence fits no cluster at this clocking.  [?obs]
    counts ["preplace.placed"] / ["preplace.rejects"]. *)

type score_mode =
  | Ed2  (** the paper's §4.1.2 refinement objective *)
  | Schedulability
      (** the homogeneous baseline's objective ({!Hcv_sched.Pseudo.score});
          used by the ablation benches to isolate the value of
          energy-aware refinement *)

val schedule :
  ?obs:Hcv_obs.Trace.span -> ctx:Model.ctx -> config:Opconfig.t
  -> loop:Loop.t -> ?max_tries:int -> ?seed:int -> ?preplace:bool
  -> ?score_mode:score_mode -> ?score_memo:bool -> ?budget:int -> unit
  -> (Schedule.t * stats, Hcv_obs.Diag.t) result
(** [max_tries] (default 64) bounds IT candidates above the MIT.
    [preplace] (default true) and [score_mode] (default [Ed2]) are
    ablation switches for the two heterogeneous-specific ingredients of
    §4.1.  [score_memo] (default true) memoises the partition-scoring
    function by exact assignment within each IT attempt; it never
    changes the result (the score is pure per clocking) and exists as a
    switch for the equivalence tests.

    [budget] (default unlimited) caps the number of {e raw} partition
    scorings — pseudo-schedule evaluations — across the whole call, the
    unit that dominates the scheduler's running time.  Memo hits are
    free, so a budget that covers every distinct assignment is
    invisible; a pathological loop/config pair that would otherwise
    churn through the full [max_tries] IT ladder instead degrades in
    bounded work with a [budget-exhausted] diagnostic (context: loop,
    budget, MIT), which {!Pipeline} folds into its estimate-fallback
    path like any other scheduling failure.

    Errors with [unschedulable] (context: loop, MIT, [max_tries] and the
    last failure cause) when the IT budget is exhausted.  [?obs] counts
    per-phase events: ["hsched.attempts"], ["hsched.clock_rejects"],
    ["hsched.slot.<cause>"] per slot-scheduler failure,
    ["hsched.budget_exhausted"], plus the {!Hcv_sched.Partition},
    {!Hcv_sched.Pseudo} and pre-placement counters of the phases it
    drives. *)
