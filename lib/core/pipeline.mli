(** End-to-end evaluation of one benchmark (the flow behind the paper's
    Figures 6-9), composed as an explicit staged pass
    ({!Hcv_pass.Pass}):

    1. [profile] — profile the loops on the reference homogeneous
       machine;
    2. [context] — derive the energy-model context from the baseline
       breakdown;
    3. [homo-optimum] — find the *optimum homogeneous* design (§5.1),
       the denominator of every normalised result;
    4. [select] — select the heterogeneous (and uniform fallback)
       configuration with the §3.3 models;
    5. [schedule] — modulo-schedule every loop on the candidate
       configurations with the §4 heterogeneous scheduler;
    6. [evaluate] — evaluate both designs with the §3.1 energy model,
       using measured (scheduled) activity for the heterogeneous
       machine.

    Each stage runs in a ["stage:<name>"] span under the caller's [?obs]
    and failures are {!Hcv_obs.Diag.t}s stamped with the failing stage's
    name. *)

open Hcv_energy
open Hcv_ir
open Hcv_machine
open Hcv_sched

type loop_result = {
  profile : Profile.loop_profile;
  schedule : Schedule.t;  (** heterogeneous schedule *)
  stats : Hsched.stats;
}

type t = {
  name : string;
  profile : Profile.t;
  ctx : Model.ctx;
  homo : Select.choice;
  hetero : Select.choice;
  frontier : Select.choice Frontier.t option;
      (** Pareto frontier of the §3.3 selection sweep — present only
          when [run] was given a [?frontier] spec (the optional
          [frontier] stage) *)
  loop_results : loop_result list;
  fallbacks : int;
      (** loops that failed heterogeneous scheduling and were accounted
          with the §3.2 estimate instead (0 in a healthy run) *)
  fallback_causes : (string * Hcv_obs.Diag.t) list;
      (** (loop name, diagnostic) per fallback, in loop order — also
          surfaced by {!pp_summary} and as ["fallback.<code>"] counters
          in the trace *)
  hetero_activity : Activity.t;
  ed2_homo : float;
  ed2_hetero : float;
  ed2_ratio : float;  (** hetero / optimum homogeneous; < 1 is a win *)
  time_ratio : float;
  energy_ratio : float;
}

val stage_names : string list
(** The six always-on stage names, in execution order.  When a
    [?frontier] spec is passed to {!run} an additional ["frontier"]
    stage runs between [select] and [schedule]. *)

val run :
  ?pool:Hcv_explore.Pool.t -> ?budget:int -> ?frontier:Frontier.spec
  -> ?params:Params.t -> ?obs:Hcv_obs.Trace.span -> machine:Machine.t
  -> name:string -> loops:Loop.t list -> unit -> (t, Hcv_obs.Diag.t) result
(** [?pool] parallelises the §3.3 configuration-selection sweeps on the
    given worker pool without changing their result (see {!Select}).
    Don't pass a pool when the [run] call itself executes on a pool
    worker — the nested sweep would then run inline anyway.

    [?budget] (default unlimited) bounds the dominant work units of the
    expensive stages: the number of design points each §3.3 selection
    sweep scores ({!Select}) and the number of raw partition scorings
    each per-loop §4 scheduling call may spend ({!Hsched.schedule}).  A
    loop that exhausts its scheduling budget degrades to the §3.2
    estimate through the normal fallback path, with the
    [budget-exhausted] diagnostic recorded in [fallback_causes] — the
    run still completes.

    [?frontier] (default absent) inserts the optional [frontier] stage:
    {!Select.frontier_heterogeneous} runs over the same selection sweep
    under the given spec and the result lands in [t.frontier].  Without
    it the span tree is exactly the six default stages, so existing
    golden traces are unaffected.

    [?obs] (default {!Hcv_obs.Trace.null}) opens one span per stage,
    one ["candidate:<tag>"] span per scheduled candidate configuration
    and one ["loop:<name>"] span per scheduled loop; all the counters
    beneath are deterministic (identical for any worker count and cache
    state). *)

val measure_config :
  ?preplace:bool -> ?score_mode:Hsched.score_mode -> ?budget:int
  -> ?obs:Hcv_obs.Trace.span -> ctx:Model.ctx -> machine:Machine.t
  -> profile:Profile.t -> config:Opconfig.t -> unit
  -> Activity.t * float * int
(** Schedule every profiled loop under an arbitrary configuration
    (optionally with the §4.1 ablation switches) and return the measured
    activity, its model ED2 and the number of estimate fallbacks — the
    building block of the ablation benches. *)

val pp_summary : Format.formatter -> t -> unit
(** One line: name, ED²/time/energy ratios, and — when loops fell back
    to the estimate — the per-loop diagnostic codes. *)
