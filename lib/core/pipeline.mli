(** End-to-end evaluation of one benchmark (the flow behind the paper's
    Figures 6-9):

    1. profile the loops on the reference homogeneous machine;
    2. derive the energy-model context from the baseline breakdown;
    3. find the *optimum homogeneous* design (§5.1) — the denominator of
       every normalised result;
    4. select the heterogeneous configuration with the §3.3 models;
    5. modulo-schedule every loop on the selected configuration with the
       §4 heterogeneous scheduler;
    6. evaluate both designs with the §3.1 energy model, using measured
       (scheduled) activity for the heterogeneous machine. *)

open Hcv_energy
open Hcv_ir
open Hcv_machine
open Hcv_sched

type loop_result = {
  profile : Profile.loop_profile;
  schedule : Schedule.t;  (** heterogeneous schedule *)
  stats : Hsched.stats;
}

type t = {
  name : string;
  profile : Profile.t;
  ctx : Model.ctx;
  homo : Select.choice;
  hetero : Select.choice;
  loop_results : loop_result list;
  fallbacks : int;
      (** loops that failed heterogeneous scheduling and were accounted
          with the §3.2 estimate instead (0 in a healthy run) *)
  hetero_activity : Activity.t;
  ed2_homo : float;
  ed2_hetero : float;
  ed2_ratio : float;  (** hetero / optimum homogeneous; < 1 is a win *)
  time_ratio : float;
  energy_ratio : float;
}

val run :
  ?pool:Hcv_explore.Pool.t -> ?params:Params.t -> machine:Machine.t
  -> name:string -> loops:Loop.t list -> unit -> (t, string) result
(** [?pool] parallelises the §3.3 configuration-selection sweeps on the
    given worker pool without changing their result (see {!Select}).
    Don't pass a pool when the [run] call itself executes on a pool
    worker — the nested sweep would then run inline anyway. *)

val measure_config :
  ?preplace:bool -> ?score_mode:Hsched.score_mode -> ctx:Model.ctx
  -> machine:Machine.t -> profile:Profile.t -> config:Opconfig.t -> unit
  -> Activity.t * float * int
(** Schedule every profiled loop under an arbitrary configuration
    (optionally with the §4.1 ablation switches) and return the measured
    activity, its model ED2 and the number of estimate fallbacks — the
    building block of the ablation benches. *)

val pp_summary : Format.formatter -> t -> unit
