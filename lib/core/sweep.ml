open Hcv_machine
open Hcv_energy
module E = Hcv_explore

type machine_sel =
  | Paper
  | Family of string
  | Desc of string

type cell = {
  bench : string;
  buses : int;
  n_loops : int option;
  seed : int;
  grid_steps : int option;
  params : Params.t;
  frontier : Frontier.spec option;
  machine : machine_sel;
}

let cell ?(buses = 1) ?n_loops ?(seed = 42) ?grid_steps
    ?(params = Params.default) ?frontier ?(machine = Paper) bench =
  { bench; buses; n_loops; seed; grid_steps; params; frontier; machine }

let machine_of_cell c =
  let m =
    match c.machine with
    | Paper -> Presets.machine_4c ~buses:c.buses
    | Family f -> (
      match Family.find ~buses:c.buses f with
      | Some m -> m
      | None ->
        invalid_arg (Printf.sprintf "Sweep: unknown machine family %S" f))
    | Desc d -> (
      (* Descriptions are self-contained (ICN included), so the cell's
         bus count does not apply; callers validate at admission and
         re-serialise canonically, making this a backstop. *)
      match E.Machdesc.of_string d with
      | Ok m -> m
      | Error msg -> invalid_arg ("Sweep: bad machine description: " ^ msg))
  in
  match c.grid_steps with
  | None -> m
  | Some _ as steps -> Machine.with_grid m (Presets.grid_of_steps steps)

(* Covers the pipeline, the workload generator and the outcome format:
   bump on any change that invalidates persisted outcomes.
   v2: outcomes carry the per-cell deterministic trace. *)
let version_salt = "hcv-sweep-v2"

let cell_key c =
  E.Codec.digest
    ([
       version_salt;
       (* Covers the machine selection too: family and description
          machines resolve to non-paper cluster mixes, whose
          machine_key appends the full structural signature — paper
          cells keep their historical keys byte-for-byte. *)
       E.Codec.machine_key (machine_of_cell c);
       E.Codec.params_key c.params;
       c.bench;
       string_of_int c.seed;
       (match c.n_loops with None -> "-" | Some n -> string_of_int n);
     ]
    (* Appended only when present: plain cells keep their pre-frontier
       keys (no salt bump, old caches stay valid) and frontier cells can
       never collide with them. *)
    @
    match c.frontier with
    | None -> []
    | Some s -> [ "frontier"; Frontier.spec_key s ])

type outcome = {
  bench : string;
  ed2_ratio : float;
  time_ratio : float;
  energy_ratio : float;
  fallbacks : int;
  causes : string list;
  hetero : string;
  frontier : string list;
  error : string option;
  trace : Hcv_obs.Trace.node option;
}

let choice_to_string (c : Select.choice) =
  E.Jsonx.to_string
    (E.Jsonx.Obj
       [
         ("config", E.Codec.opconfig_to_json c.Select.config);
         ("ed2", E.Jsonx.Str (E.Codec.float_to_string c.Select.predicted_ed2));
         ( "t",
           E.Jsonx.Str (E.Codec.float_to_string c.Select.predicted_time_ns) );
         ( "e",
           E.Jsonx.Str (E.Codec.float_to_string c.Select.predicted_energy) );
       ])

let choice_of_string ~machine s =
  match E.Jsonx.of_string s with
  | Error _ -> None
  | Ok j ->
    let ( let* ) = Option.bind in
    let fstr field =
      Option.bind (Option.bind (E.Jsonx.member field j) E.Jsonx.str)
        E.Codec.float_of_string
    in
    let* config =
      Option.bind (E.Jsonx.member "config" j)
        (fun cj -> E.Codec.opconfig_of_json ~machine cj)
    in
    let* predicted_ed2 = fstr "ed2" in
    let* predicted_time_ns = fstr "t" in
    let* predicted_energy = fstr "e" in
    Some { Select.config; predicted_ed2; predicted_time_ns; predicted_energy }

let outcome_to_string o =
  let fields =
    [
      ("bench", E.Jsonx.Str o.bench);
      ("ed2", E.Jsonx.Str (E.Codec.float_to_string o.ed2_ratio));
      ("time", E.Jsonx.Str (E.Codec.float_to_string o.time_ratio));
      ("energy", E.Jsonx.Str (E.Codec.float_to_string o.energy_ratio));
      ("fallbacks", E.Jsonx.Num (float_of_int o.fallbacks));
      ("hetero", E.Jsonx.Str o.hetero);
    ]
    (* Written only when non-empty, so entries without fallbacks keep
       their pre-causes byte form. *)
    @ (match o.causes with
      | [] -> []
      | cs ->
        [ ("causes", E.Jsonx.List (List.map (fun c -> E.Jsonx.Str c) cs)) ])
    (* Ditto: only frontier cells (whose keys are new) ever write it. *)
    @ (match o.frontier with
      | [] -> []
      | ms ->
        [ ("frontier", E.Jsonx.List (List.map (fun m -> E.Jsonx.Str m) ms)) ])
    @ (match o.error with
      | None -> []
      | Some msg -> [ ("error", E.Jsonx.Str msg) ])
    @
    match o.trace with
    | None -> []
    (* Deterministic view only: a cached trace must replay identically
       whatever the run that produced it. *)
    | Some node -> [ ("trace", E.Tracex.json_of_node ~wall:false node) ]
  in
  E.Jsonx.to_string (E.Jsonx.Obj fields)

let outcome_of_string s =
  match E.Jsonx.of_string s with
  | Error _ -> None
  | Ok j ->
    let ( let* ) = Option.bind in
    let fstr field =
      Option.bind (Option.bind (E.Jsonx.member field j) E.Jsonx.str)
        E.Codec.float_of_string
    in
    let* bench = Option.bind (E.Jsonx.member "bench" j) E.Jsonx.str in
    let* ed2_ratio = fstr "ed2" in
    let* time_ratio = fstr "time" in
    let* energy_ratio = fstr "energy" in
    let* fallbacks = Option.bind (E.Jsonx.member "fallbacks" j) E.Jsonx.int in
    let* hetero = Option.bind (E.Jsonx.member "hetero" j) E.Jsonx.str in
    (* A pre-causes entry that carries fallbacks is stale: decoding it
       with [causes = []] would make a warm response differ from a cold
       recompute of the same cell, so it must miss and recompute.
       Clean pre-causes entries keep decoding with [causes = []]. *)
    let* causes =
      match E.Jsonx.member "causes" j with
      | Some cj -> Option.map (List.filter_map E.Jsonx.str) (E.Jsonx.list cj)
      | None -> if fallbacks > 0 then None else Some []
    in
    (* Only frontier-keyed cells ever wrote this; a successful frontier
       cell always has at least one member, so [] only decodes for plain
       or failed cells — no staleness ambiguity. *)
    let frontier =
      match E.Jsonx.member "frontier" j with
      | Some fj ->
        Option.value ~default:[]
          (Option.map (List.filter_map E.Jsonx.str) (E.Jsonx.list fj))
      | None -> []
    in
    let error = Option.bind (E.Jsonx.member "error" j) E.Jsonx.str in
    let trace = Option.bind (E.Jsonx.member "trace" j) E.Tracex.node_of_json in
    Some
      {
        bench;
        ed2_ratio;
        time_ratio;
        energy_ratio;
        fallbacks;
        causes;
        hetero;
        frontier;
        error;
        trace;
      }

let codec =
  {
    E.Engine.cell_key;
    encode = outcome_to_string;
    decode = outcome_of_string;
  }

(* Deadline calibration: how much budgeted scheduling work one
   millisecond of wall-clock deadline buys.  A fixed constant rather
   than a measured rate keeps deadline-derived budgets — and therefore
   responses and cache keys — deterministic across hosts and runs.
   The floor of 1 point makes a zero deadline the fast-fail probe: the
   pipeline still completes through the estimate-fallback path instead
   of erroring out. *)
let points_per_ms = 64
let budget_of_deadline ms = max 1 (ms * points_per_ms)

let run_cell ?budget ~loops_of c =
  let machine = machine_of_cell c in
  let loops = loops_of c in
  (* Always collect the per-cell trace: it rides in the outcome through
     the cache, so a warm sweep replays the very spans a cold one
     collected (what makes [--trace] warm/cold-identical).  Only the
     deterministic view is kept — wall times and volatile gauges are
     stripped before the outcome is encoded or grafted. *)
  let sp = Hcv_obs.Trace.root ("cell:" ^ c.bench) in
  let outcome =
    match
      Pipeline.run ?budget ?frontier:c.frontier ~params:c.params ~machine
        ~name:c.bench ~loops ~obs:sp ()
    with
    | Ok r ->
      {
        bench = c.bench;
        ed2_ratio = r.Pipeline.ed2_ratio;
        time_ratio = r.Pipeline.time_ratio;
        energy_ratio = r.Pipeline.energy_ratio;
        fallbacks = r.Pipeline.fallbacks;
        causes =
          List.map
            (fun (_, d) -> Hcv_obs.Diag.code d)
            r.Pipeline.fallback_causes;
        hetero = choice_to_string r.Pipeline.hetero;
        frontier =
          (match r.Pipeline.frontier with
          | None -> []
          | Some f ->
            List.map
              (fun (e : Select.choice Frontier.entry) ->
                choice_to_string e.Frontier.item)
              (Frontier.members f));
        error = None;
        trace = None;
      }
    | Error diag ->
      {
        bench = c.bench;
        ed2_ratio = Float.nan;
        time_ratio = Float.nan;
        energy_ratio = Float.nan;
        fallbacks = 0;
        causes = [];
        hetero = "";
        frontier = [];
        error = Some (Hcv_obs.Diag.to_string diag);
        trace = None;
      }
    | exception e ->
      {
        bench = c.bench;
        ed2_ratio = Float.nan;
        time_ratio = Float.nan;
        energy_ratio = Float.nan;
        fallbacks = 0;
        causes = [];
        hetero = "";
        frontier = [];
        error = Some (Printexc.to_string e);
        trace = None;
      }
  in
  let trace =
    Option.bind (Hcv_obs.Trace.export sp) (fun node ->
        E.Tracex.node_of_json (E.Tracex.json_of_node ~wall:false node))
  in
  { outcome with trace }

(* A cell the engine's supervisor gave up on (the task raised on every
   retry attempt): quarantined into the report exactly like a pipeline
   failure, so the rest of the sweep stands. *)
let quarantined_outcome (c : cell) diag =
  {
    bench = c.bench;
    ed2_ratio = Float.nan;
    time_ratio = Float.nan;
    energy_ratio = Float.nan;
    fallbacks = 0;
    causes = [];
    hetero = "";
    frontier = [];
    error = Some (Hcv_obs.Diag.to_string diag);
    trace = None;
  }

let run engine ?(label = "sweep") ?(obs = Hcv_obs.Trace.null) ~loops_of cells
    =
  Hcv_obs.Trace.span obs ("sweep:" ^ label) (fun sp ->
      let results =
        E.Engine.sweep engine ~label ~obs:sp ~codec (run_cell ~loops_of) cells
      in
      let outcomes =
        List.map2
          (fun c -> function
            | Ok o -> o
            | Error d -> quarantined_outcome c d)
          cells results
      in
      (* Graft the per-cell traces in submission order — hit or
         computed, every cell contributes the same subtree. *)
      List.iter
        (fun o -> Option.iter (Hcv_obs.Trace.graft sp) o.trace)
        outcomes;
      outcomes)
