open Hcv_machine
open Hcv_energy
module E = Hcv_explore

type cell = {
  bench : string;
  buses : int;
  n_loops : int option;
  seed : int;
  grid_steps : int option;
  params : Params.t;
}

let cell ?(buses = 1) ?n_loops ?(seed = 42) ?grid_steps
    ?(params = Params.default) bench =
  { bench; buses; n_loops; seed; grid_steps; params }

let machine_of_cell c =
  let m = Presets.machine_4c ~buses:c.buses in
  match c.grid_steps with
  | None -> m
  | Some _ as steps -> Machine.with_grid m (Presets.grid_of_steps steps)

(* Covers the pipeline, the workload generator and the outcome format:
   bump on any change that invalidates persisted outcomes. *)
let version_salt = "hcv-sweep-v1"

let cell_key c =
  E.Codec.digest
    [
      version_salt;
      E.Codec.machine_key (machine_of_cell c);
      E.Codec.params_key c.params;
      c.bench;
      string_of_int c.seed;
      (match c.n_loops with None -> "-" | Some n -> string_of_int n);
    ]

type outcome = {
  bench : string;
  ed2_ratio : float;
  time_ratio : float;
  energy_ratio : float;
  fallbacks : int;
  hetero : string;
  error : string option;
}

let choice_to_string (c : Select.choice) =
  E.Jsonx.to_string
    (E.Jsonx.Obj
       [
         ("config", E.Codec.opconfig_to_json c.Select.config);
         ("ed2", E.Jsonx.Str (E.Codec.float_to_string c.Select.predicted_ed2));
         ( "t",
           E.Jsonx.Str (E.Codec.float_to_string c.Select.predicted_time_ns) );
         ( "e",
           E.Jsonx.Str (E.Codec.float_to_string c.Select.predicted_energy) );
       ])

let choice_of_string ~machine s =
  match E.Jsonx.of_string s with
  | Error _ -> None
  | Ok j ->
    let ( let* ) = Option.bind in
    let fstr field =
      Option.bind (Option.bind (E.Jsonx.member field j) E.Jsonx.str)
        E.Codec.float_of_string
    in
    let* config =
      Option.bind (E.Jsonx.member "config" j)
        (fun cj -> E.Codec.opconfig_of_json ~machine cj)
    in
    let* predicted_ed2 = fstr "ed2" in
    let* predicted_time_ns = fstr "t" in
    let* predicted_energy = fstr "e" in
    Some { Select.config; predicted_ed2; predicted_time_ns; predicted_energy }

let outcome_to_string o =
  let fields =
    [
      ("bench", E.Jsonx.Str o.bench);
      ("ed2", E.Jsonx.Str (E.Codec.float_to_string o.ed2_ratio));
      ("time", E.Jsonx.Str (E.Codec.float_to_string o.time_ratio));
      ("energy", E.Jsonx.Str (E.Codec.float_to_string o.energy_ratio));
      ("fallbacks", E.Jsonx.Num (float_of_int o.fallbacks));
      ("hetero", E.Jsonx.Str o.hetero);
    ]
    @ match o.error with
      | None -> []
      | Some msg -> [ ("error", E.Jsonx.Str msg) ]
  in
  E.Jsonx.to_string (E.Jsonx.Obj fields)

let outcome_of_string s =
  match E.Jsonx.of_string s with
  | Error _ -> None
  | Ok j ->
    let ( let* ) = Option.bind in
    let fstr field =
      Option.bind (Option.bind (E.Jsonx.member field j) E.Jsonx.str)
        E.Codec.float_of_string
    in
    let* bench = Option.bind (E.Jsonx.member "bench" j) E.Jsonx.str in
    let* ed2_ratio = fstr "ed2" in
    let* time_ratio = fstr "time" in
    let* energy_ratio = fstr "energy" in
    let* fallbacks = Option.bind (E.Jsonx.member "fallbacks" j) E.Jsonx.int in
    let* hetero = Option.bind (E.Jsonx.member "hetero" j) E.Jsonx.str in
    let error = Option.bind (E.Jsonx.member "error" j) E.Jsonx.str in
    Some
      { bench; ed2_ratio; time_ratio; energy_ratio; fallbacks; hetero; error }

let codec =
  {
    E.Engine.cell_key;
    encode = outcome_to_string;
    decode = outcome_of_string;
  }

let run_cell ~loops_of c =
  let machine = machine_of_cell c in
  let loops = loops_of c in
  match
    Pipeline.run ~params:c.params ~machine ~name:c.bench ~loops ()
  with
  | Ok r ->
    {
      bench = c.bench;
      ed2_ratio = r.Pipeline.ed2_ratio;
      time_ratio = r.Pipeline.time_ratio;
      energy_ratio = r.Pipeline.energy_ratio;
      fallbacks = r.Pipeline.fallbacks;
      hetero = choice_to_string r.Pipeline.hetero;
      error = None;
    }
  | Error msg ->
    {
      bench = c.bench;
      ed2_ratio = Float.nan;
      time_ratio = Float.nan;
      energy_ratio = Float.nan;
      fallbacks = 0;
      hetero = "";
      error = Some msg;
    }
  | exception e ->
    {
      bench = c.bench;
      ed2_ratio = Float.nan;
      time_ratio = Float.nan;
      energy_ratio = Float.nan;
      fallbacks = 0;
      hetero = "";
      error = Some (Printexc.to_string e);
    }

let run engine ?(label = "sweep") ~loops_of cells =
  E.Engine.sweep engine ~label ~codec (run_cell ~loops_of) cells
