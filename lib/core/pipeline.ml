open Hcv_machine
open Hcv_energy
open Hcv_sched

let src = Logs.Src.create "hcv.pipeline" ~doc:"benchmark pipeline"

module Log = (val Logs.src_log src : Logs.LOG)

type loop_result = {
  profile : Profile.loop_profile;
  schedule : Schedule.t;
  stats : Hsched.stats;
}

type t = {
  name : string;
  profile : Profile.t;
  ctx : Model.ctx;
  homo : Select.choice;
  hetero : Select.choice;
  loop_results : loop_result list;
  fallbacks : int;
  hetero_activity : Activity.t;
  ed2_homo : float;
  ed2_hetero : float;
  ed2_ratio : float;
  time_ratio : float;
  energy_ratio : float;
}

(* Schedule every loop under [config] and aggregate the measured
   activity; loops that fail fall back to the §3.2 estimate. *)
let evaluate ?preplace ?score_mode ~ctx ~machine ~name (profile : Profile.t)
    (choice : Select.choice) =
  let config = choice.Select.config in
  let loop_results, fallback_acts =
    List.fold_left
      (fun (acc, fb) (lp : Profile.loop_profile) ->
        match
          Hsched.schedule ?preplace ?score_mode ~ctx ~config
            ~loop:lp.Profile.loop ()
        with
        | Ok (schedule, stats) -> ({ profile = lp; schedule; stats } :: acc, fb)
        | Error msg ->
          Log.warn (fun m ->
              m "%s: loop %s fell back to the estimate: %s" name
                lp.Profile.loop.Hcv_ir.Loop.name msg);
          let est = Estimate.loop_estimate ~config lp in
          let ref_act = lp.Profile.activity in
          let act =
            Activity.make ~exec_time_ns:est.Estimate.exec_ns
              ~per_cluster_ins_energy:ref_act.Activity.per_cluster_ins_energy
              ~n_comms:ref_act.Activity.n_comms ~n_mem:ref_act.Activity.n_mem
          in
          (acc, Activity.scale act lp.Profile.reps :: fb))
      ([], []) profile.Profile.loops
  in
  let loop_results = List.rev loop_results in
  let activity =
    List.fold_left
      (fun acc r ->
        Activity.add acc
          (Activity.scale
             (Profile.activity_of_schedule r.schedule
                ~trip:r.profile.Profile.loop.Hcv_ir.Loop.trip)
             r.profile.Profile.reps))
      (Activity.zero ~n_clusters:(Machine.n_clusters machine))
      loop_results
  in
  let activity = List.fold_left Activity.add activity fallback_acts in
  let ed2 = Model.ed2 ctx ~config activity in
  (loop_results, List.length fallback_acts, activity, ed2)

let run ?pool ?(params = Params.default) ~machine ~name ~loops () =
  match Profile.profile ~machine ~loops with
  | Error msg -> Error (Printf.sprintf "%s: profiling failed: %s" name msg)
  | Ok profile ->
    let units =
      Units.of_reference ~params ~n_clusters:(Machine.n_clusters machine)
        profile.Profile.activity
    in
    let ctx = Model.ctx ~params ~units () in
    let homo = Select.optimum_homogeneous ~ctx ~machine profile in
    (* The model picks a heterogeneous candidate; schedule it and the
       best uniform-frequency candidate, and keep whichever measures
       better (the paper's selector likewise falls back to a same-
       frequency configuration when heterogeneity does not pay). *)
    let hetero_pick = Select.select_heterogeneous ?pool ~ctx ~machine profile in
    let uniform_pick = Select.select_uniform ?pool ~ctx ~machine profile in
    let eval = evaluate ~ctx ~machine ~name profile in
    let candidates =
      if hetero_pick.Select.config = uniform_pick.Select.config then
        [ (hetero_pick, eval hetero_pick) ]
      else [ (hetero_pick, eval hetero_pick); (uniform_pick, eval uniform_pick) ]
    in
    let hetero, (loop_results, fallbacks, hetero_activity, ed2_hetero) =
      Hcv_support.Listx.min_by (fun (_, (_, _, _, ed2)) -> ed2) candidates
    in
    let homo_ct =
      (Opconfig.point homo.Select.config (Comp.Cluster 0)).Opconfig.cycle_time
    in
    let homo_activity = Profile.scale_cycle_time profile homo_ct in
    let ed2_homo = Model.ed2 ctx ~config:homo.Select.config homo_activity in
    let e_homo =
      Model.total (Model.energy ctx ~config:homo.Select.config homo_activity)
    in
    let e_het =
      Model.total
        (Model.energy ctx ~config:hetero.Select.config hetero_activity)
    in
    Ok
      {
        name;
        profile;
        ctx;
        homo;
        hetero;
        loop_results;
        fallbacks;
        hetero_activity;
        ed2_homo;
        ed2_hetero;
        ed2_ratio = ed2_hetero /. ed2_homo;
        time_ratio =
          hetero_activity.Activity.exec_time_ns
          /. homo_activity.Activity.exec_time_ns;
        energy_ratio = e_het /. e_homo;
      }

let measure_config ?preplace ?score_mode ~ctx ~machine ~profile ~config () =
  let choice =
    {
      Select.config;
      predicted_ed2 = 0.0;
      predicted_time_ns = 0.0;
      predicted_energy = 0.0;
    }
  in
  let _, fallbacks, activity, ed2 =
    evaluate ?preplace ?score_mode ~ctx ~machine ~name:"measure" profile choice
  in
  (activity, ed2, fallbacks)

let pp_summary ppf t =
  Format.fprintf ppf "%-12s ED2 %.3f (time x%.3f, energy x%.3f)%s" t.name
    t.ed2_ratio t.time_ratio t.energy_ratio
    (if t.fallbacks > 0 then Printf.sprintf " [%d fallbacks]" t.fallbacks
     else "")
