open Hcv_machine
open Hcv_energy
open Hcv_sched
open Hcv_obs

let src = Logs.Src.create "hcv.pipeline" ~doc:"benchmark pipeline"

module Log = (val Logs.src_log src : Logs.LOG)

type loop_result = {
  profile : Profile.loop_profile;
  schedule : Schedule.t;
  stats : Hsched.stats;
}

type t = {
  name : string;
  profile : Profile.t;
  ctx : Model.ctx;
  homo : Select.choice;
  hetero : Select.choice;
  frontier : Select.choice Frontier.t option;
  loop_results : loop_result list;
  fallbacks : int;
  fallback_causes : (string * Diag.t) list;
  hetero_activity : Activity.t;
  ed2_homo : float;
  ed2_hetero : float;
  ed2_ratio : float;
  time_ratio : float;
  energy_ratio : float;
}

(* Schedule every loop under [config] and aggregate the measured
   activity; loops that fail fall back to the §3.2 estimate, recording
   the loop and the diagnostic that caused the fallback. *)
let evaluate ?preplace ?score_mode ?budget ?(obs = Trace.null) ~ctx ~machine
    ~name (profile : Profile.t) (choice : Select.choice) =
  let config = choice.Select.config in
  let loop_results, fallbacks_rev =
    List.fold_left
      (fun (acc, fb) (lp : Profile.loop_profile) ->
        let lname = lp.Profile.loop.Hcv_ir.Loop.name in
        Trace.span obs ("loop:" ^ lname) (fun sp ->
            match
              Hsched.schedule ~obs:sp ?preplace ?score_mode ?budget ~ctx
                ~config ~loop:lp.Profile.loop ()
            with
            | Ok (schedule, stats) ->
              ({ profile = lp; schedule; stats } :: acc, fb)
            | Error diag ->
              Log.warn (fun m ->
                  m "%s: loop %s fell back to the estimate: %a" name lname
                    Diag.pp diag);
              Trace.incr sp ("fallback." ^ Diag.code diag);
              let est = Estimate.loop_estimate ~config lp in
              let ref_act = lp.Profile.activity in
              let act =
                Activity.make ~exec_time_ns:est.Estimate.exec_ns
                  ~per_cluster_ins_energy:
                    ref_act.Activity.per_cluster_ins_energy
                  ~n_comms:ref_act.Activity.n_comms
                  ~n_mem:ref_act.Activity.n_mem
              in
              ( acc,
                (lname, diag, Activity.scale act lp.Profile.reps) :: fb )))
      ([], []) profile.Profile.loops
  in
  let loop_results = List.rev loop_results in
  let fallbacks = List.rev fallbacks_rev in
  let activity =
    List.fold_left
      (fun acc r ->
        Activity.add acc
          (Activity.scale
             (Profile.activity_of_schedule r.schedule
                ~trip:r.profile.Profile.loop.Hcv_ir.Loop.trip)
             r.profile.Profile.reps))
      (Activity.zero ~n_clusters:(Machine.n_clusters machine))
      loop_results
  in
  let activity =
    List.fold_left (fun acc (_, _, a) -> Activity.add acc a) activity fallbacks
  in
  let ed2 = Model.ed2 ctx ~config activity in
  let causes = List.map (fun (l, d, _) -> (l, d)) fallbacks in
  (loop_results, causes, activity, ed2)

(* The six paper stages as an explicitly composed pass (the flow behind
   Figures 6-9; see the .mli header).  Each stage runs in its own
   ["stage:<name>"] span and failures carry the stage's provenance. *)
let stages ?pool ?budget ?frontier ~params ~machine ~name () =
  let open Hcv_pass.Pass in
  let profile_stage =
    v ~name:"profile" (fun obs loops -> Profile.profile ~obs ~machine ~loops ())
  in
  let context_stage =
    pure ~name:"context" (fun _obs (profile : Profile.t) ->
        let units =
          Units.of_reference ~params ~n_clusters:(Machine.n_clusters machine)
            profile.Profile.activity
        in
        (profile, Model.ctx ~params ~units ()))
  in
  let homo_stage =
    v ~name:"homo-optimum" (fun obs (profile, ctx) ->
        Result.map
          (fun homo -> (profile, ctx, homo))
          (Select.optimum_homogeneous ~obs ~ctx ~machine profile))
  in
  let select_stage =
    v ~name:"select" (fun obs (profile, ctx, homo) ->
        Result.bind
          (Select.select_heterogeneous ?pool ?budget ~obs ~ctx ~machine
             profile)
          (fun hetero_pick ->
            Result.map
              (fun uniform_pick ->
                (profile, ctx, homo, hetero_pick, uniform_pick, None))
              (Select.select_uniform ?pool ?budget ~obs ~ctx ~machine profile)))
  in
  (* Composed only when a frontier spec was requested, so the default
     pipeline's span tree (and its golden-pinned traces) is unchanged. *)
  let frontier_stage spec =
    v ~name:"frontier"
      (fun obs (profile, ctx, homo, hetero_pick, uniform_pick, _) ->
        Result.map
          (fun f -> (profile, ctx, homo, hetero_pick, uniform_pick, Some f))
          (Select.frontier_heterogeneous ?pool ?budget ~obs ~spec ~ctx ~machine
             profile))
  in
  let schedule_stage =
    pure ~name:"schedule"
      (fun obs (profile, ctx, homo, hetero_pick, uniform_pick, front) ->
        (* The model picks a heterogeneous candidate; schedule it and
           the best uniform-frequency candidate, and keep whichever
           measures better (the paper's selector likewise falls back to
           a same-frequency configuration when heterogeneity does not
           pay). *)
        let eval tag choice =
          Trace.span obs ("candidate:" ^ tag) (fun sp ->
              evaluate ?budget ~obs:sp ~ctx ~machine ~name profile choice)
        in
        let candidates =
          if hetero_pick.Select.config = uniform_pick.Select.config then
            [ (hetero_pick, eval "hetero" hetero_pick) ]
          else
            [
              (hetero_pick, eval "hetero" hetero_pick);
              (uniform_pick, eval "uniform" uniform_pick);
            ]
        in
        let hetero, measured =
          Hcv_support.Listx.min_by (fun (_, (_, _, _, ed2)) -> ed2) candidates
        in
        (profile, ctx, homo, hetero, front, measured))
  in
  let evaluate_stage =
    pure ~name:"evaluate"
      (fun obs (profile, ctx, homo, hetero, front, measured) ->
        let loop_results, fallback_causes, hetero_activity, ed2_hetero =
          measured
        in
        let homo_ct =
          (Opconfig.point homo.Select.config (Comp.Cluster 0))
            .Opconfig.cycle_time
        in
        let homo_activity = Profile.scale_cycle_time profile homo_ct in
        let ed2_homo = Model.ed2 ctx ~config:homo.Select.config homo_activity in
        let e_homo =
          Model.total
            (Model.energy ctx ~config:homo.Select.config homo_activity)
        in
        let e_het =
          Model.total
            (Model.energy ctx ~config:hetero.Select.config hetero_activity)
        in
        Trace.add obs "evaluate.loops" (List.length loop_results);
        Trace.add obs "evaluate.fallbacks" (List.length fallback_causes);
        {
          name;
          profile;
          ctx;
          homo;
          hetero;
          frontier = front;
          loop_results;
          fallbacks = List.length fallback_causes;
          fallback_causes;
          hetero_activity;
          ed2_homo;
          ed2_hetero;
          ed2_ratio = ed2_hetero /. ed2_homo;
          time_ratio =
            hetero_activity.Activity.exec_time_ns
            /. homo_activity.Activity.exec_time_ns;
          energy_ratio = e_het /. e_homo;
        })
  in
  let head = profile_stage >>> context_stage >>> homo_stage >>> select_stage in
  let head =
    match frontier with
    | None -> head
    | Some spec -> head >>> frontier_stage spec
  in
  head >>> schedule_stage >>> evaluate_stage

let stage_names = [ "profile"; "context"; "homo-optimum"; "select"; "schedule"; "evaluate" ]

let run ?pool ?budget ?frontier ?(params = Params.default) ?(obs = Trace.null)
    ~machine ~name ~loops () =
  Hcv_pass.Pass.run ~obs
    (stages ?pool ?budget ?frontier ~params ~machine ~name ())
    loops

let measure_config ?preplace ?score_mode ?budget ?obs ~ctx ~machine ~profile
    ~config () =
  let choice =
    {
      Select.config;
      predicted_ed2 = 0.0;
      predicted_time_ns = 0.0;
      predicted_energy = 0.0;
    }
  in
  let _, causes, activity, ed2 =
    evaluate ?preplace ?score_mode ?budget ?obs ~ctx ~machine ~name:"measure"
      profile choice
  in
  (activity, ed2, List.length causes)

let pp_summary ppf t =
  Format.fprintf ppf "%-12s ED2 %.3f (time x%.3f, energy x%.3f)%s" t.name
    t.ed2_ratio t.time_ratio t.energy_ratio
    (if t.fallbacks > 0 then
       Printf.sprintf " [%d fallbacks: %s]" t.fallbacks
         (String.concat ", "
            (List.map
               (fun (l, d) -> Printf.sprintf "%s=%s" l (Diag.code d))
               t.fallback_causes))
     else "")
