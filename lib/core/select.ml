open Hcv_support
open Hcv_machine
open Hcv_energy

type choice = {
  config : Opconfig.t;
  predicted_ed2 : float;
  predicted_time_ns : float;
  predicted_energy : float;
}

(* Energy of one domain at supply voltage [vdd] and frequency [f]
   (GHz): delta * dyn + sigma * stat_power * time, or None when [vdd]
   cannot sustain [f]. *)
let domain_energy ~(ctx : Model.ctx) ~vdd ~f ~dyn ~stat_power ~time =
  match Alpha_power.supports ctx.Model.alpha ~vdd ~f with
  | None -> None
  | Some vth ->
    Some
      ((Scale.delta ~vdd ~vdd_ref:ctx.Model.vdd_ref *. dyn)
      +. Scale.sigma ~vdd ~vth ~vdd_ref:ctx.Model.vdd_ref
           ~vth_ref:ctx.Model.vth_ref ()
         *. stat_power *. time)

(* Best supply voltage for one domain: minimises the domain energy over
   the candidate voltages that can sustain [f]. *)
let best_vdd ~(ctx : Model.ctx) ~candidates ~f ~dyn ~stat_power ~time =
  List.fold_left
    (fun acc vdd ->
      match domain_energy ~ctx ~vdd ~f ~dyn ~stat_power ~time with
      | None -> acc
      | Some e -> (
        match acc with
        | Some (_, be) when be <= e -> acc
        | Some _ | None -> Some (vdd, e)))
    None candidates

(* Given cycle times per domain and the predicted activity, pick the
   per-domain voltages and compute the total predicted energy.  Returns
   None when some domain's frequency exceeds every allowed voltage. *)
let optimise_voltages ~(ctx : Model.ctx) ~machine ~cluster_cts ~icn_ct ~cache_ct
    (act : Activity.t) =
  let u = ctx.Model.units in
  let time = act.Activity.exec_time_ns in
  let n = Machine.n_clusters machine in
  let rec clusters i acc_e acc_v =
    if i >= n then Some (List.rev acc_v, acc_e)
    else
      let f = Q.to_float (Q.inv cluster_cts.(i)) in
      match
        best_vdd ~ctx ~candidates:Presets.cluster_vdds ~f
          ~dyn:(u.Units.e_ins *. act.Activity.per_cluster_ins_energy.(i))
          ~stat_power:u.Units.p_stat_cluster ~time
      with
      | None -> None
      | Some (v, e) -> clusters (i + 1) (acc_e +. e) (v :: acc_v)
  in
  match clusters 0 0.0 [] with
  | None -> None
  | Some (cluster_vdds, e_clusters) -> (
    match
      ( best_vdd ~ctx ~candidates:Presets.icn_vdds
          ~f:(Q.to_float (Q.inv icn_ct))
          ~dyn:(u.Units.e_comm *. act.Activity.n_comms)
          ~stat_power:u.Units.p_stat_icn ~time,
        best_vdd ~ctx ~candidates:Presets.cache_vdds
          ~f:(Q.to_float (Q.inv cache_ct))
          ~dyn:(u.Units.e_access *. act.Activity.n_mem)
          ~stat_power:u.Units.p_stat_cache ~time )
    with
    | Some (icn_vdd, e_icn), Some (cache_vdd, e_cache) ->
      let config =
        Opconfig.make ~machine
          ~cluster_points:
            (Array.of_list
               (List.mapi
                  (fun i vdd -> { Opconfig.cycle_time = cluster_cts.(i); vdd })
                  cluster_vdds))
          ~icn_point:{ Opconfig.cycle_time = icn_ct; vdd = icn_vdd }
          ~cache_point:{ Opconfig.cycle_time = cache_ct; vdd = cache_vdd }
      in
      Some
        {
          config;
          predicted_ed2 = (e_clusters +. e_icn +. e_cache) *. time *. time;
          predicted_time_ns = time;
          predicted_energy = e_clusters +. e_icn +. e_cache;
        }
    | _, _ -> None)

let better a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some ca, Some cb -> if cb.predicted_ed2 < ca.predicted_ed2 then b else a

let homogeneous_cts () =
  let ref_ct = Presets.reference_cycle_time in
  List.concat_map
    (fun fast ->
      List.map (fun slow -> Q.mul ref_ct (Q.mul fast slow)) Presets.slow_factors)
    Presets.fast_factors
  |> List.sort_uniq Q.compare

(* Voltages every domain can legally use: the intersection of the
   per-domain ranges (a homogeneous design has a single supply voltage
   for the whole chip, paper §2.1). *)
let shared_vdds =
  List.filter
    (fun v -> List.mem v Presets.icn_vdds && List.mem v Presets.cache_vdds)
    Presets.cluster_vdds

let optimum_homogeneous ?(obs = Hcv_obs.Trace.null) ~ctx ~machine
    (p : Profile.t) =
  let u = ctx.Model.units in
  let n = Machine.n_clusters machine in
  let eval ct vdd =
    let act = Profile.scale_cycle_time p ct in
    let time = act.Activity.exec_time_ns in
    let f = Q.to_float (Q.inv ct) in
    let dom = domain_energy ~ctx ~vdd ~f ~time in
    let rec clusters i acc =
      if i >= n then Some acc
      else
        match
          dom
            ~dyn:(u.Units.e_ins *. act.Activity.per_cluster_ins_energy.(i))
            ~stat_power:u.Units.p_stat_cluster
        with
        | None -> None
        | Some e -> clusters (i + 1) (acc +. e)
    in
    match clusters 0 0.0 with
    | None -> None
    | Some e_cl -> (
      match
        ( dom ~dyn:(u.Units.e_comm *. act.Activity.n_comms)
            ~stat_power:u.Units.p_stat_icn,
          dom
            ~dyn:(u.Units.e_access *. act.Activity.n_mem)
            ~stat_power:u.Units.p_stat_cache )
      with
      | Some e_icn, Some e_cache ->
        let e = e_cl +. e_icn +. e_cache in
        Some
          {
            config =
              Opconfig.homogeneous ~machine ~cycle_time:ct ~vdd ();
            predicted_ed2 = e *. time *. time;
            predicted_time_ns = time;
            predicted_energy = e;
          }
      | _, _ -> None)
  in
  let cts = homogeneous_cts () in
  Hcv_obs.Trace.add obs "homo.points"
    (List.length cts * List.length shared_vdds);
  let best =
    List.fold_left
      (fun acc ct ->
        List.fold_left (fun acc vdd -> better acc (eval ct vdd)) acc shared_vdds)
      None cts
  in
  match best with
  | Some c -> Ok c
  | None ->
    Error
      (Hcv_obs.Diag.v ~code:"no-homogeneous-point"
         ~context:
           [
             ("cycle_times", string_of_int (List.length cts));
             ("vdds", string_of_int (List.length shared_vdds));
           ]
         "no homogeneous design point is realisable under the voltage model")

(* Score one (fast factor, slow factor) design point: predict the
   activity from the cycle times alone (placeholder voltages) and pick
   the per-domain voltages that minimise the predicted energy. *)
let eval_design_point ~ctx ~machine (p : Profile.t) (fast_factor, slow_factor) =
  let ref_ct = Presets.reference_cycle_time in
  let n = Machine.n_clusters machine in
  let fast_ct = Q.mul ref_ct fast_factor in
  let slow_ct = Q.mul fast_ct slow_factor in
  let cluster_cts =
    Array.init n (fun i -> if i = 0 then fast_ct else slow_ct)
  in
  let shape =
    Opconfig.make ~machine
      ~cluster_points:
        (Array.map
           (fun cycle_time -> { Opconfig.cycle_time; vdd = 1.0 })
           cluster_cts)
      ~icn_point:{ Opconfig.cycle_time = fast_ct; vdd = 1.0 }
      ~cache_point:{ Opconfig.cycle_time = fast_ct; vdd = 1.0 }
  in
  let act = Estimate.predict_activity ~config:shape p in
  optimise_voltages ~ctx ~machine ~cluster_cts ~icn_ct:fast_ct
    ~cache_ct:fast_ct act

(* Score the whole heterogeneous design-point grid, returning the
   scored points in the serial nesting order (fast factor outer, slow
   factor inner).  Every consumer folds over this list left to right, so
   ties keep resolving to the same candidate whatever the worker
   count. *)
let sweep_heterogeneous ?pool ?(obs = Hcv_obs.Trace.null) ?budget ~ctx ~machine
    ~slow_factors (p : Profile.t) =
  let points =
    List.concat_map
      (fun fast -> List.map (fun slow -> (fast, slow)) slow_factors)
      Presets.fast_factors
  in
  (* The budget keeps the sweep a prefix of the serial point order, so a
     budgeted selection is exactly the selection over a smaller grid —
     still deterministic for any worker count. *)
  let points =
    match budget with
    | Some b when b < List.length points ->
      Hcv_obs.Trace.add obs "select.budget_dropped" (List.length points - b);
      Hcv_support.Listx.take b points
    | Some _ | None -> points
  in
  Hcv_obs.Trace.add obs "select.points" (List.length points);
  let eval = eval_design_point ~ctx ~machine p in
  match pool with
  | None -> List.map eval points
  | Some pool -> Hcv_explore.Pool.map pool eval points

let select_heterogeneous_gen ?pool ?obs ?budget ~ctx ~machine ~slow_factors
    (p : Profile.t) =
  let scored =
    sweep_heterogeneous ?pool ?obs ?budget ~ctx ~machine ~slow_factors p
  in
  match List.fold_left better None scored with
  | Some c -> Ok c
  | None ->
    Error
      (Hcv_obs.Diag.v ~code:"no-heterogeneous-point"
         ~context:[ ("points", string_of_int (List.length scored)) ]
         "no heterogeneous design point is realisable under the voltage model")

let select_heterogeneous ?pool ?obs ?budget ~ctx ~machine p =
  select_heterogeneous_gen ?pool ?obs ?budget ~ctx ~machine
    ~slow_factors:Presets.slow_factors p

let select_uniform ?pool ?obs ?budget ~ctx ~machine p =
  select_heterogeneous_gen ?pool ?obs ?budget ~ctx ~machine
    ~slow_factors:[ Q.one ] p

(* [Frontier.vec] recomputes ed2 as [energy *. t *. t] with the exact
   operation order of [optimise_voltages], so the vector's ed2 is
   bit-identical to [predicted_ed2]. *)
let vec_of_choice c =
  Frontier.vec ~time_ns:c.predicted_time_ns ~energy:c.predicted_energy

let frontier_heterogeneous ?pool ?(obs = Hcv_obs.Trace.null) ?budget
    ?(spec = Frontier.default_spec) ~ctx ~machine (p : Profile.t) =
  let scored =
    sweep_heterogeneous ?pool ~obs ?budget ~ctx ~machine
      ~slow_factors:Presets.slow_factors p
  in
  let realisable = List.filter_map Fun.id scored in
  if realisable = [] then
    Error
      (Hcv_obs.Diag.v ~code:"no-heterogeneous-point"
         ~context:[ ("points", string_of_int (List.length scored)) ]
         "no heterogeneous design point is realisable under the voltage model")
  else
    (* Realisable points in serial order: the frontier fold (and the
       entry indices) is a pure function of the profile, whatever the
       worker count or cache state. *)
    let f =
      Frontier.of_list spec (List.map (fun c -> (c, vec_of_choice c)) realisable)
    in
    Hcv_obs.Trace.add obs "frontier.considered" (Frontier.considered f);
    Hcv_obs.Trace.add obs "frontier.infeasible" (Frontier.infeasible f);
    Hcv_obs.Trace.add obs "frontier.size" (Frontier.size f);
    if Frontier.size f = 0 then
      Error
        (Hcv_obs.Diag.v ~code:"no-feasible-point"
           ~context:
             [
               ("points", string_of_int (Frontier.considered f));
               ("infeasible", string_of_int (Frontier.infeasible f));
               ("caps", Frontier.spec_key spec);
             ]
           "every realisable design point violates a frontier cap")
    else Ok f

let pp_choice ppf c =
  let open Hcv_support.Floatfmt in
  Format.fprintf ppf "@[<v>predicted: ED2=%s E=%s T=%s ns@,%a@]"
    (sig_digits 6 c.predicted_ed2)
    (fixed 4 c.predicted_energy)
    (fixed 1 c.predicted_time_ns)
    Opconfig.pp c.config
