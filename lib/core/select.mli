(** Frequency/voltage selection (paper §3.3 and §5.1).

    Both searches score candidates with the §3 models over the reference
    profile.  The energy model is separable per clock domain, so for a
    fixed set of cycle times the best supply voltage of each domain is
    chosen independently: the voltage (from the domain's allowed range)
    that minimises that domain's predicted energy, among voltages whose
    α-power threshold voltage is realisable at the domain's frequency.

    - {!optimum_homogeneous} sweeps single-frequency, single-voltage
      designs (a homogeneous machine runs the whole chip at one
      frequency and one supply voltage, §2.1; the voltage must belong to
      every domain's allowed range) over the cross product of the
      paper's fast and slow cycle-time factors.  On a homogeneous
      machine every design executes the same schedule in the same number
      of cycles, so only the cycle time scales execution time and only
      δ/σ scale energy (§5.1); the model is exact here.
    - {!select_heterogeneous} sweeps the paper's heterogeneous space:
      one fast cluster (cycle time ∈ fast factors × reference) and the
      remaining clusters slow (cycle time ∈ slow factors × fast); the
      ICN and the cache are clocked with the fast cluster. *)

open Hcv_machine
open Hcv_energy

type choice = {
  config : Opconfig.t;
  predicted_ed2 : float;
  predicted_time_ns : float;
  predicted_energy : float;
}

val optimum_homogeneous :
  ?obs:Hcv_obs.Trace.span -> ctx:Model.ctx -> machine:Machine.t -> Profile.t
  -> (choice, Hcv_obs.Diag.t) result
(** Errors with [no-homogeneous-point] when no candidate is realisable
    under the voltage model.  [?obs] counts the swept ["homo.points"]. *)

val select_heterogeneous :
  ?pool:Hcv_explore.Pool.t -> ?obs:Hcv_obs.Trace.span -> ?budget:int
  -> ctx:Model.ctx -> machine:Machine.t -> Profile.t
  -> (choice, Hcv_obs.Diag.t) result
(** The heterogeneous candidate with the lowest predicted ED² (errors
    with [no-heterogeneous-point] when the whole sweep is unrealisable;
    [?obs] counts the swept ["select.points"]).  With
    [?pool] the independent design points of the sweep are scored in
    parallel on the pool's worker domains; the scored points are folded
    in the serial nesting order, so the result is identical for any
    worker count.  [?budget] (default unlimited) caps the number of
    design points scored; the sweep keeps the leading prefix of the
    serial point order (so a budgeted selection equals the selection
    over a smaller grid) and counts the omitted points as
    ["select.budget_dropped"].  The
    sweep includes the all-slow-factors-1 points, so the result is never
    predicted worse than the best uniform-frequency configuration of the
    same cycle-time grid (the paper's selector likewise falls back to
    uniform frequencies for register- or resource-constrained
    programs). *)

val select_uniform :
  ?pool:Hcv_explore.Pool.t -> ?obs:Hcv_obs.Trace.span -> ?budget:int
  -> ctx:Model.ctx -> machine:Machine.t -> Profile.t
  -> (choice, Hcv_obs.Diag.t) result
(** The best *uniform-frequency* configuration with per-domain voltages
    (all clusters, the ICN and the cache at one cycle time).  This is
    the configuration the paper's selector falls back to for register-
    or resource-constrained programs; {!Pipeline} schedules it alongside
    the heterogeneous pick and keeps whichever measures better. *)

val sweep_heterogeneous :
  ?pool:Hcv_explore.Pool.t -> ?obs:Hcv_obs.Trace.span -> ?budget:int
  -> ctx:Model.ctx -> machine:Machine.t -> slow_factors:Hcv_support.Q.t list
  -> Profile.t -> choice option list
(** The scored design-point grid behind both selectors, in the serial
    nesting order (fast factor outer, slow factor inner); [None] marks
    an unrealisable point.  {!select_heterogeneous} is a [better]-fold
    and {!frontier_heterogeneous} a dominance-fold over exactly this
    list ([slow_factors = Presets.slow_factors]; [select_uniform] uses
    [[Q.one]]).  [?pool]/[?budget]/[?obs] as on
    {!select_heterogeneous}. *)

val vec_of_choice : choice -> Frontier.vec
(** The choice's objective vector.  Its ED² component is bit-identical
    to [predicted_ed2] (same operation order). *)

val frontier_heterogeneous :
  ?pool:Hcv_explore.Pool.t -> ?obs:Hcv_obs.Trace.span -> ?budget:int
  -> ?spec:Frontier.spec -> ctx:Model.ctx -> machine:Machine.t -> Profile.t
  -> (choice Frontier.t, Hcv_obs.Diag.t) result
(** The Pareto frontier of the same design-point sweep as
    {!select_heterogeneous} ([?pool]/[?budget]/[?obs] behave
    identically; the frontier is folded over the scored points in the
    serial nesting order, so members and their indices are byte-identical
    for any worker count or cache state).  [?spec] defaults to all five
    objectives with no caps; under that default the frontier's
    [Frontier.min_by _ Ed2] corner is {e exactly}
    {!select_heterogeneous}'s choice (same earliest-minimum tie-break).
    Errors with [no-heterogeneous-point] when the whole sweep is
    unrealisable, and with [no-feasible-point] when realisable points
    exist but every one violates a cap.  Counts ["frontier.considered"],
    ["frontier.infeasible"] and ["frontier.size"] on [?obs]. *)

val pp_choice : Format.formatter -> choice -> unit
