open Hcv_support
open Hcv_ir
open Hcv_machine
open Hcv_sched

let rec_mit_of ~config ~rec_mii =
  Q.mul_int (Opconfig.fastest_cluster_cycle_time config) rec_mii

let rec_mit ~config ddg = rec_mit_of ~config ~rec_mii:(Mii.rec_mii ddg)

let capacity_at ~config ~it kind =
  let machine = config.Opconfig.machine in
  let n = Machine.n_clusters machine in
  let total = ref 0 in
  for i = 0 to n - 1 do
    let ct = (Opconfig.point config (Comp.Cluster i)).Opconfig.cycle_time in
    let slots = Q.floor (Q.div it ct) in
    total := !total + (slots * Cluster.fu_count (Machine.cluster machine i) kind)
  done;
  !total

let candidates ~config ~upto =
  let machine = config.Opconfig.machine in
  let n = Machine.n_clusters machine in
  let acc = ref [] in
  for i = 0 to n - 1 do
    let ct = (Opconfig.point config (Comp.Cluster i)).Opconfig.cycle_time in
    let kmax = Q.floor (Q.div upto ct) in
    for k = 1 to kmax do
      acc := Q.mul_int ct k :: !acc
    done
  done;
  List.sort_uniq Q.compare !acc

let res_mit_demands ~config demands =
  let machine = config.Opconfig.machine in
  let demands = List.filter (fun (_, d) -> d > 0) demands in
  if demands = [] then Q.zero
  else begin
    List.iter
      (fun (kind, _) ->
        (* Backstop, not user-input validation: every pipeline entry
           point (Profile.profile, Hsched.schedule, Homo.schedule)
           screens demanded-but-unsupported kinds with
           Mii.missing_kinds and fails structurally, so reaching this
           with a zero total is a caller bug.  Per-cluster capability
           asymmetry is handled below: capacity_at counts each kind on
           capable clusters only. *)
        if Machine.fu_total machine kind = 0 then
          invalid_arg
            (Printf.sprintf "Mit.res_mit: no %s anywhere in the machine"
               (Opcode.fu_to_string kind)))
      demands;
    (* An upper bound: the largest per-kind demand served by a single
       unit on the slowest cluster. *)
    let slowest =
      Array.fold_left
        (fun acc (p : Opconfig.point) -> Q.max acc p.Opconfig.cycle_time)
        Q.zero config.Opconfig.cluster_points
    in
    let worst_demand =
      List.fold_left (fun acc (_, d) -> max acc d) 1 demands
    in
    let upto = Q.mul_int slowest worst_demand in
    let feasible it =
      List.for_all (fun (kind, d) -> capacity_at ~config ~it kind >= d) demands
    in
    (* Walk the candidate grid (multiples of the cluster cycle times)
       in ascending order with one cursor per cluster, instead of
       materialising and sorting the whole grid: selection calls this
       for every loop of every design point, so the allocations of the
       list-and-sort version dominated the stage. *)
    let pts = config.Opconfig.cluster_points in
    let n = Array.length pts in
    let ks = Array.make n 1 in
    let at i = Q.mul_int pts.(i).Opconfig.cycle_time ks.(i) in
    let rec walk () =
      let cand = ref Q.zero in
      for i = 0 to n - 1 do
        let v = at i in
        if Q.( <= ) v upto && (Q.sign !cand = 0 || Q.( < ) v !cand) then
          cand := v
      done;
      if Q.sign !cand = 0 then upto (* grid exhausted: upto is feasible *)
      else if feasible !cand then !cand
      else begin
        for i = 0 to n - 1 do
          if Q.compare (at i) !cand = 0 then ks.(i) <- ks.(i) + 1
        done;
        walk ()
      end
    in
    walk ()
  end

let res_mit ~config ddg = res_mit_demands ~config (Ddg.fu_demand ddg)

let mit_parts ~config ~rec_mii ~demands =
  Q.max (rec_mit_of ~config ~rec_mii) (res_mit_demands ~config demands)

let mit ~config ddg =
  mit_parts ~config ~rec_mii:(Mii.rec_mii ddg) ~demands:(Ddg.fu_demand ddg)

let next_candidate ~config ~after =
  let machine = config.Opconfig.machine in
  let n = Machine.n_clusters machine in
  let best = ref None in
  for i = 0 to n - 1 do
    let ct = (Opconfig.point config (Comp.Cluster i)).Opconfig.cycle_time in
    (* Smallest multiple of ct strictly greater than after. *)
    let k = Q.floor (Q.div after ct) + 1 in
    let cand = Q.mul_int ct k in
    let cand =
      if Q.( > ) cand after then cand else Q.mul_int ct (k + 1)
    in
    match !best with
    | None -> best := Some cand
    | Some b -> if Q.( < ) cand b then best := Some cand
  done;
  match !best with
  | Some b -> b
  (* Invariant: [Machine.make] rejects cluster-less machines. *)
  | None -> invalid_arg "Mit.next_candidate: machine has no clusters"
