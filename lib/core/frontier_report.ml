(* Frontier renderings.  See frontier_report.mli. *)

open Hcv_machine
module Floatfmt = Hcv_support.Floatfmt
module Q = Hcv_support.Q

let rebuild ~spec choices =
  Frontier.of_list spec
    (List.map (fun c -> (c, Select.vec_of_choice c)) choices)

(* Earliest member minimising [pick] among members satisfying [ok] —
   the same strict-< tie-break as Frontier.min_by. *)
let min_member f ~ok ~pick =
  List.fold_left
    (fun best (m : Select.choice Frontier.entry) ->
      if not (ok m.Frontier.fvec) then best
      else
        match best with
        | None -> Some m
        | Some (b : Select.choice Frontier.entry) ->
          if pick m.Frontier.fvec < pick b.Frontier.fvec then Some m else best)
    None (Frontier.members f)

let cap_slack = 1.10

let regimes f =
  match Frontier.min_by f Frontier.Ed2 with
  | None -> []
  | Some ed2c ->
    let corner o label =
      Option.map (fun m -> (label, m)) (Frontier.min_by f o)
    in
    let capped label ~cap_on ~minimise =
      let bound = cap_slack *. Frontier.value ed2c.Frontier.fvec cap_on in
      (* The ED² corner satisfies its own cap, so the pick exists. *)
      Option.map
        (fun m -> (label, m))
        (min_member f
           ~ok:(fun v -> Frontier.value v cap_on <= bound)
           ~pick:(fun v -> Frontier.value v minimise))
    in
    List.filter_map Fun.id
      [
        Some ("min-ed2", ed2c);
        corner Frontier.Time "min-time";
        corner Frontier.Energy "min-energy";
        corner Frontier.Edp "min-edp";
        corner Frontier.Power "min-power";
        capped "fast@e-cap" ~cap_on:Frontier.Energy ~minimise:Frontier.Time;
        capped "frugal@t-cap" ~cap_on:Frontier.Time ~minimise:Frontier.Energy;
      ]

let csv_header = "bench,member,fast_ct,slow_ct,time_ns,energy,ed2,edp,power"

let cluster_cts (config : Opconfig.t) =
  let fast = Opconfig.fastest_cluster_cycle_time config in
  let n = Machine.n_clusters config.Opconfig.machine in
  let slow = ref fast in
  for i = 0 to n - 1 do
    let ct = Opconfig.cycle_time config (Comp.Cluster i) in
    if Q.compare ct !slow > 0 then slow := ct
  done;
  (fast, !slow)

let csv_rows ~bench f =
  List.map
    (fun (m : Select.choice Frontier.entry) ->
      let v = m.Frontier.fvec in
      let fast, slow = cluster_cts m.Frontier.item.Select.config in
      Printf.sprintf "%s,%d,%s,%s,%s,%s,%s,%s,%s" bench m.Frontier.index
        (Q.to_string fast) (Q.to_string slow)
        (Floatfmt.compact v.Frontier.time_ns)
        (Floatfmt.compact v.Frontier.energy)
        (Floatfmt.compact v.Frontier.ed2)
        (Floatfmt.compact v.Frontier.edp)
        (Floatfmt.compact v.Frontier.power))
    (Frontier.members f)

let pp_report ppf rows =
  Format.fprintf ppf
    "@[<v>frontier regimes (caps at %sx the min-ed2 corner)@,@]"
    (Floatfmt.compact cap_slack);
  List.iter
    (fun (bench, f) ->
      Format.fprintf ppf "@[<v>%s: %d frontier member%s@," bench
        (Frontier.size f)
        (if Frontier.size f = 1 then "" else "s");
      (match Frontier.min_by f Frontier.Ed2 with
      | None -> ()
      | Some ed2c ->
        let tv = ed2c.Frontier.fvec.Frontier.time_ns in
        let ev = ed2c.Frontier.fvec.Frontier.energy in
        List.iter
          (fun (label, (m : Select.choice Frontier.entry)) ->
            let v = m.Frontier.fvec in
            Format.fprintf ppf "  %-13s %a  (time x%s, energy x%s)@," label
              Frontier.pp_vec v
              (Floatfmt.fixed 3 (v.Frontier.time_ns /. tv))
              (Floatfmt.fixed 3 (v.Frontier.energy /. ev)))
          (regimes f));
      Format.fprintf ppf "@]")
    rows
