(** Minimum initiation time (paper §2.2): the heterogeneous
    generalisation of the MII.

      MIT = max(recMIT, resMIT)

    where recMIT = recMII * (cycle time of the fastest cluster) and
    resMIT is the smallest initiation time at which the per-cluster IIs
    provide enough issue slots of every resource kind for the loop. *)

open Hcv_support
open Hcv_ir
open Hcv_machine

val rec_mit : config:Opconfig.t -> Ddg.t -> Q.t

val rec_mit_of : config:Opconfig.t -> rec_mii:int -> Q.t
(** {!rec_mit} from a precomputed recurrence MII — the MII depends only
    on the DDG, so callers sweeping many configurations over the same
    loop (configuration selection) compute it once. *)

val capacity_at : config:Opconfig.t -> it:Q.t -> Opcode.fu_kind -> int
(** Total issue slots of a kind across clusters within one IT:
    [sum_C floor(it / ct_C) * count_C(kind)]. *)

val res_mit : config:Opconfig.t -> Ddg.t -> Q.t
(** Smallest candidate IT with enough capacity for every kind.
    @raise Invalid_argument if some kind is demanded but absent from
    every cluster. *)

val res_mit_demands :
  config:Opconfig.t -> (Opcode.fu_kind * int) list -> Q.t
(** {!res_mit} from a precomputed FU-demand profile ({!Ddg.fu_demand});
    zero-demand kinds are ignored.  The candidate grid is walked with
    per-cluster cursors, never materialised.
    @raise Invalid_argument as {!res_mit}. *)

val mit : config:Opconfig.t -> Ddg.t -> Q.t

val mit_parts :
  config:Opconfig.t -> rec_mii:int -> demands:(Opcode.fu_kind * int) list
  -> Q.t
(** {!mit} from precomputed DDG-only parts — what the selection stage
    calls per (design point, loop). *)

val candidates : config:Opconfig.t -> upto:Q.t -> Q.t list
(** The ascending grid of ITs at which some cluster gains an issue slot
    (multiples of cluster cycle times), up to [upto] inclusive. *)

val next_candidate : config:Opconfig.t -> after:Q.t -> Q.t
(** Smallest grid IT strictly greater than [after] — the IT-increase
    step of the Fig. 5 loop. *)
