(** Design-space sweep cells: the bridge between the evaluation (the
    paper's Figures 6–9 and the ablation benches) and the
    {!Hcv_explore.Engine}.

    A {!cell} names one independent unit of the evaluation sweep — a
    benchmark run on one machine variant under one energy-parameter
    set — by the *inputs* that generate it (benchmark name, workload
    seed, loop count, bus count, frequency grid, parameters).  The
    content key hashes exactly those inputs, so a persistent cache
    entry is valid for as long as the generators are; bump
    {!version_salt} when an incompatible change to the pipeline or the
    workload generator invalidates old results.

    An {!outcome} is the cached distillation of a {!Pipeline.run}: the
    normalised ratios every figure consumes, plus the selected
    heterogeneous configuration serialized with {!choice_to_string}
    (floats in exact ["%h"] form so replays are bit-identical). *)

open Hcv_ir
open Hcv_machine
open Hcv_energy

(** Which machine the cell sweeps.  [Paper] (the default) is
    {!Presets.machine_4c}; [Family name] resolves a named
    capability-asymmetric design via {!Hcv_machine.Family.find} at the
    cell's bus count; [Desc json] carries a self-contained
    {!Hcv_explore.Machdesc} description (canonical text — callers
    validate and re-serialise at admission), whose own ICN supersedes
    the cell's bus count. *)
type machine_sel =
  | Paper
  | Family of string
  | Desc of string

type cell = {
  bench : string;  (** synthetic SPECfp benchmark name *)
  buses : int;
  n_loops : int option;  (** [None]: the benchmark's default *)
  seed : int;
  grid_steps : int option;
      (** divider-grid steps; [None]: unrestricted frequencies *)
  params : Params.t;
  frontier : Frontier.spec option;
      (** when present the cell's pipeline also runs the optional
          frontier stage and the outcome carries the members *)
  machine : machine_sel;
}

val cell :
  ?buses:int -> ?n_loops:int -> ?seed:int -> ?grid_steps:int
  -> ?params:Params.t -> ?frontier:Frontier.spec -> ?machine:machine_sel
  -> string -> cell
(** Defaults: 1 bus, per-spec loops, seed 42, unrestricted grid,
    {!Params.default}, no frontier stage, the paper machine. *)

val machine_of_cell : cell -> Machine.t
(** Resolves the cell's machine selection (and grid-steps override).
    @raise Invalid_argument on an unknown family name or a malformed
    machine description — callers validate those at admission. *)

val version_salt : string

val cell_key : cell -> string
(** Digest of the generating inputs.  The frontier spec is folded in
    only when present, so plain cells keep their pre-frontier keys
    (existing caches stay valid) and frontier cells never collide with
    them.  The machine selection is covered through
    {!Hcv_explore.Codec.machine_key}, which appends the full structural
    signature for any non-paper cluster mix — paper cells keep their
    historical keys. *)

type outcome = {
  bench : string;
  ed2_ratio : float;
  time_ratio : float;
  energy_ratio : float;
  fallbacks : int;
  causes : string list;
      (** diagnostic codes of the estimate fallbacks, in loop order
          (e.g. ["budget-exhausted"]); [[]] when every loop scheduled.
          Written to the cache only when non-empty, so pre-causes
          entries decode with [[]] *)
  hetero : string;
      (** serialized winning {!Select.choice}; [""] on failure *)
  frontier : string list;
      (** serialized frontier members in deterministic member order
          (each a {!choice_to_string}); [[]] unless the cell carried a
          frontier spec and the pipeline succeeded.  Like [causes],
          written to the cache only when non-empty *)
  error : string option;
      (** [Some msg] when the pipeline failed; the ratios are then
          [nan] (rendered {!Hcv_obs.Diag.to_string}, so the stage and
          code survive the cache) *)
  trace : Hcv_obs.Trace.node option;
      (** the cell's deterministic trace (wall times and volatile gauges
          stripped); cached with the outcome so warm sweeps replay the
          spans cold ones collected *)
}

val outcome_to_string : outcome -> string
val outcome_of_string : string -> outcome option

val choice_to_string : Select.choice -> string
val choice_of_string :
  machine:Machine.t -> string -> Select.choice option
(** Round-trips {!choice_to_string}; needs the machine to rebind the
    configuration (same contract as [Hcv_sched.Serialize]). *)

val codec : (cell, outcome) Hcv_explore.Engine.codec

val points_per_ms : int
(** Deadline calibration: the scheduling work budget one millisecond of
    wall-clock deadline buys.  A fixed constant (not a measured rate)
    so deadline-derived budgets are deterministic across hosts. *)

val budget_of_deadline : int -> int
(** [budget_of_deadline ms = max 1 (ms * points_per_ms)] — the floor of
    1 makes a zero deadline a fast-fail probe that still completes
    through the estimate-fallback path. *)

val run_cell : ?budget:int -> loops_of:(cell -> Loop.t list) -> cell -> outcome
(** One full {!Pipeline.run}; failures are folded into the outcome
    rather than raised, so a failing benchmark does not poison a
    parallel sweep.  No inner pool: cells are the unit of
    parallelism.  [?budget] is threaded to {!Pipeline.run} (the serving
    plane uses it; budgeted cells must be keyed by the caller so they
    never collide with unbudgeted ones — {!cell_key} does not cover
    it). *)

val run :
  Hcv_explore.Engine.t -> ?label:string -> ?obs:Hcv_obs.Trace.span
  -> loops_of:(cell -> Loop.t list) -> cell list -> outcome list
(** [Engine.sweep] over the cells with {!codec} — parallel, memoised,
    deterministic, supervised.  A cell the engine quarantines (its task
    raised on every retry attempt) comes back as an outcome whose
    [error] renders the quarantine diagnostic, so the rest of the sweep
    report stands; healthy cells are unaffected.  With [?obs] the whole
    sweep runs under a ["sweep:<label>"] span; each cell's trace (hit
    or computed) is grafted beneath it in submission order, so the
    deterministic span tree is identical for any [--jobs] value and
    cache state. *)
