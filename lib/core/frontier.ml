(* Pure Pareto-dominance core.  See frontier.mli for the contract. *)

module Jsonx = Hcv_explore.Jsonx
module Floatfmt = Hcv_support.Floatfmt

type objective = Time | Energy | Ed2 | Edp | Power

let all_objectives = [ Time; Energy; Ed2; Edp; Power ]

let objective_name = function
  | Time -> "time"
  | Energy -> "energy"
  | Ed2 -> "ed2"
  | Edp -> "edp"
  | Power -> "power"

let objective_of_string = function
  | "time" -> Some Time
  | "energy" -> Some Energy
  | "ed2" -> Some Ed2
  | "edp" -> Some Edp
  | "power" -> Some Power
  | _ -> None

let rank = function Time -> 0 | Energy -> 1 | Ed2 -> 2 | Edp -> 3 | Power -> 4

type vec = {
  time_ns : float;
  energy : float;
  ed2 : float;
  edp : float;
  power : float;
}

(* [energy *. t *. t] left-associates exactly like Select's
   [predicted_ed2 = (e_clusters +. e_icn +. e_cache) *. time *. time],
   so the ed2 component is bit-identical to the legacy score. *)
let vec ~time_ns ~energy =
  {
    time_ns;
    energy;
    ed2 = energy *. time_ns *. time_ns;
    edp = energy *. time_ns;
    power = energy /. time_ns;
  }

let value v = function
  | Time -> v.time_ns
  | Energy -> v.energy
  | Ed2 -> v.ed2
  | Edp -> v.edp
  | Power -> v.power

type cap = { cap : objective; bound : float }

let cap_to_string c =
  Printf.sprintf "%s<=%s" (objective_name c.cap) (Floatfmt.compact c.bound)

let cap_of_string s =
  let split sep =
    match String.index_opt s sep.[0] with
    | Some i
      when i + String.length sep <= String.length s
           && String.sub s i (String.length sep) = sep ->
        Some
          ( String.sub s 0 i,
            String.sub s
              (i + String.length sep)
              (String.length s - i - String.length sep) )
    | _ -> None
  in
  let parts =
    match split "<=" with Some p -> Some p | None -> split "="
  in
  match parts with
  | None -> Error (Printf.sprintf "cap %S: expected OBJECTIVE<=BOUND" s)
  | Some (name, bound) -> (
      let name = String.trim name and bound = String.trim bound in
      match objective_of_string name with
      | None ->
          Error
            (Printf.sprintf "cap %S: unknown objective %S (one of %s)" s name
               (String.concat "/" (List.map objective_name all_objectives)))
      | Some cap -> (
          match float_of_string_opt bound with
          | Some b when Float.is_finite b && b > 0.0 -> Ok { cap; bound = b }
          | _ ->
              Error
                (Printf.sprintf "cap %S: bound %S is not a positive number" s
                   bound)))

(* NaN components compare false against any bound, so a NaN vector is
   never feasible under a cap on that component — exactly what we want
   for degenerate predictions. *)
let feasible ~caps v = List.for_all (fun c -> value v c.cap <= c.bound) caps

let dominates ~objectives a b =
  List.for_all (fun o -> value a o <= value b o) objectives
  && List.exists (fun o -> value a o < value b o) objectives

type spec = { objectives : objective list; caps : cap list }

let spec ?(objectives = all_objectives) ?(caps = []) () =
  if objectives = [] then invalid_arg "Frontier.spec: empty objective list";
  let objectives =
    List.filter (fun o -> List.mem o objectives) all_objectives
  in
  let caps =
    List.sort_uniq
      (fun a b ->
        match compare (rank a.cap) (rank b.cap) with
        | 0 -> compare a.bound b.bound
        | c -> c)
      caps
  in
  { objectives; caps }

let default_spec = spec ()

let spec_key s =
  let objs = String.concat "," (List.map objective_name s.objectives) in
  let caps =
    List.map
      (fun c ->
        Printf.sprintf "%s<=%s" (objective_name c.cap)
          (Hcv_explore.Codec.float_to_string c.bound))
      s.caps
  in
  String.concat "|" (objs :: caps)

let spec_to_json s =
  Jsonx.Obj
    [
      ( "objectives",
        Jsonx.List
          (List.map (fun o -> Jsonx.Str (objective_name o)) s.objectives) );
      ( "caps",
        Jsonx.List
          (List.map
             (fun c ->
               Jsonx.List
                 [ Jsonx.Str (objective_name c.cap); Jsonx.Num c.bound ])
             s.caps) );
    ]

let spec_of_json j =
  let ( let* ) = Result.bind in
  let* objectives =
    match Jsonx.member "objectives" j with
    | None | Some Jsonx.Null -> Ok all_objectives
    | Some v -> (
        match Jsonx.list v with
        | None -> Error "frontier objectives: expected a list"
        | Some items ->
            List.fold_left
              (fun acc item ->
                let* acc = acc in
                match Option.bind (Jsonx.str item) objective_of_string with
                | Some o -> Ok (o :: acc)
                | None ->
                    Error
                      (Printf.sprintf "frontier objectives: bad entry %s"
                         (Jsonx.to_string item)))
              (Ok []) items
            |> Result.map List.rev)
  in
  let* caps =
    match Jsonx.member "caps" j with
    | None | Some Jsonx.Null -> Ok []
    | Some v -> (
        match Jsonx.list v with
        | None -> Error "frontier caps: expected a list"
        | Some items ->
            List.fold_left
              (fun acc item ->
                let* acc = acc in
                match Jsonx.list item with
                | Some [ name; bound ] -> (
                    match
                      ( Option.bind (Jsonx.str name) objective_of_string,
                        Jsonx.num bound )
                    with
                    | Some cap, Some b when Float.is_finite b && b > 0.0 ->
                        Ok ({ cap; bound = b } :: acc)
                    | _ ->
                        Error
                          (Printf.sprintf "frontier caps: bad entry %s"
                             (Jsonx.to_string item)))
                | _ ->
                    Error
                      (Printf.sprintf
                         "frontier caps: expected [NAME, BOUND], got %s"
                         (Jsonx.to_string item)))
              (Ok []) items
            |> Result.map List.rev)
  in
  if objectives = [] then Error "frontier objectives: empty list"
  else Ok (spec ~objectives ~caps ())

type 'a entry = { item : 'a; fvec : vec; index : int }

type 'a t = {
  fspec : spec;
  (* non-dominated members, descending index (cheap cons); [members]
     re-reverses *)
  rev_members : 'a entry list;
  considered : int;
  infeasible : int;
}

let empty fspec = { fspec; rev_members = []; considered = 0; infeasible = 0 }

let add t ~vec:v item =
  let considered = t.considered + 1 in
  if not (feasible ~caps:t.fspec.caps v) then
    { t with considered; infeasible = t.infeasible + 1 }
  else if
    List.exists
      (fun m -> dominates ~objectives:t.fspec.objectives m.fvec v)
      t.rev_members
  then { t with considered }
  else
    let survivors =
      List.filter
        (fun m -> not (dominates ~objectives:t.fspec.objectives v m.fvec))
        t.rev_members
    in
    let entry = { item; fvec = v; index = considered - 1 } in
    { t with considered; rev_members = entry :: survivors }

let of_list fspec points =
  List.fold_left (fun t (item, v) -> add t ~vec:v item) (empty fspec) points

let spec_of t = t.fspec
let members t = List.rev t.rev_members
let size t = List.length t.rev_members
let considered t = t.considered
let infeasible t = t.infeasible

let min_by t obj =
  (* Strict < over ascending-index members keeps the earliest minimum —
     the same tie-break as Select.better. *)
  List.fold_left
    (fun best m ->
      match best with
      | None -> Some m
      | Some b -> if value m.fvec obj < value b.fvec obj then Some m else best)
    None (members t)

let pp_vec ppf v =
  Format.fprintf ppf "T=%s ns E=%s ED2=%s EDP=%s P=%s"
    (Floatfmt.compact v.time_ns)
    (Floatfmt.compact v.energy) (Floatfmt.compact v.ed2)
    (Floatfmt.compact v.edp) (Floatfmt.compact v.power)
