(* Seeded random generators and the greedy shrinker.  See gen.mli. *)

open Hcv_support
open Hcv_ir
open Hcv_machine

let op_add_f = Opcode.make Opcode.Arith Opcode.Fp
let op_add_i = Opcode.make Opcode.Arith Opcode.Int
let op_mul_f = Opcode.make Opcode.Mult Opcode.Fp
let op_div_f = Opcode.make Opcode.Div Opcode.Fp
let op_ld = Opcode.make Opcode.Memory Opcode.Fp
let op_st = Opcode.make Opcode.Memory Opcode.Fp

(* {1 Exemplar loops} — shared with the test suite via test/builders.ml. *)

(* A simple FP dot-product-like loop:
     a = load; b = load; m = a*b; s = s + m (loop-carried self add). *)
let dotprod ?(trip = 100) () =
  let b = Ddg.Builder.create () in
  let a = Ddg.Builder.add_instr b ~name:"a" op_ld in
  let b2 = Ddg.Builder.add_instr b ~name:"b" op_ld in
  let m = Ddg.Builder.add_instr b ~name:"m" op_mul_f in
  let s = Ddg.Builder.add_instr b ~name:"s" op_add_f in
  Ddg.Builder.add_edge b a m;
  Ddg.Builder.add_edge b b2 m;
  Ddg.Builder.add_edge b m s;
  Ddg.Builder.add_edge b ~distance:1 s s;
  Loop.make ~trip ~name:"dotprod" (Ddg.Builder.build b)

(* A recurrence-constrained loop: a long dependence chain feeding back
   with distance 1, plus some independent off-recurrence work. *)
let recurrence_loop ?(trip = 100) () =
  let b = Ddg.Builder.create () in
  let x1 = Ddg.Builder.add_instr b ~name:"x1" op_add_f in
  let x2 = Ddg.Builder.add_instr b ~name:"x2" op_mul_f in
  let x3 = Ddg.Builder.add_instr b ~name:"x3" op_add_f in
  Ddg.Builder.add_edge b x1 x2;
  Ddg.Builder.add_edge b x2 x3;
  Ddg.Builder.add_edge b ~distance:1 x3 x1;
  let l1 = Ddg.Builder.add_instr b ~name:"l1" op_ld in
  let l2 = Ddg.Builder.add_instr b ~name:"l2" op_ld in
  let y = Ddg.Builder.add_instr b ~name:"y" op_add_f in
  let st = Ddg.Builder.add_instr b ~name:"st" op_st in
  Ddg.Builder.add_edge b l1 y;
  Ddg.Builder.add_edge b l2 y;
  Ddg.Builder.add_edge b y st;
  Loop.make ~trip ~name:"recurrence" (Ddg.Builder.build b)

(* A resource-constrained loop: many independent memory + FP ops, no
   recurrence. *)
let wide_loop ?(trip = 100) ?(width = 8) () =
  let b = Ddg.Builder.create () in
  for k = 0 to width - 1 do
    let ld = Ddg.Builder.add_instr b ~name:(Printf.sprintf "ld%d" k) op_ld in
    let ad =
      Ddg.Builder.add_instr b ~name:(Printf.sprintf "add%d" k) op_add_f
    in
    let st = Ddg.Builder.add_instr b ~name:(Printf.sprintf "st%d" k) op_st in
    Ddg.Builder.add_edge b ld ad;
    Ddg.Builder.add_edge b ad st
  done;
  Loop.make ~trip ~name:"wide" (Ddg.Builder.build b)

(* A seeded random loop: a random DAG over [n] instructions (only
   forward zero-distance edges, so the acyclicity invariant holds by
   construction) plus a few loop-carried edges in either direction. *)
let random_loop ?(n = 20) ~seed () =
  let rng = Rng.create seed in
  let ops = [ op_add_f; op_add_i; op_mul_f; op_div_f; op_ld; op_st ] in
  let b = Ddg.Builder.create () in
  let ids = Array.init n (fun _ -> Ddg.Builder.add_instr b (Rng.pick rng ops)) in
  for j = 1 to n - 1 do
    if Rng.chance rng 0.85 then Ddg.Builder.add_edge b ids.(Rng.int rng j) ids.(j);
    if Rng.chance rng 0.35 then Ddg.Builder.add_edge b ids.(Rng.int rng j) ids.(j);
    if Rng.chance rng 0.2 then
      Ddg.Builder.add_edge b ~distance:(1 + Rng.int rng 2) ids.(j)
        ids.(Rng.int rng j)
  done;
  Loop.make ~trip:100 ~name:(Printf.sprintf "rand%d" seed) (Ddg.Builder.build b)

(* {1 Fuzz cases} *)

type case = {
  seed : int;
  loop : Loop.t;
  machine : Machine.t;
  config : Opconfig.t;
}

let opcode_mix =
  List.map
    (fun (op : Opcode.t) ->
      let w =
        match op.clazz with
        | Opcode.Arith -> 4.
        | Opcode.Memory -> 3.
        | Opcode.Mult -> 2.
        | Opcode.Div -> 1.
      in
      (op, w))
    Opcode.all

let gen_loop ~rng ?(min_n = 4) ?(max_n = 24) () =
  let n = Rng.int_in rng min_n max_n in
  let b = Ddg.Builder.create () in
  let ids =
    Array.init n (fun _ ->
        Ddg.Builder.add_instr b (Rng.pick_weighted rng opcode_mix))
  in
  (* Forward zero-distance DAG: each node draws up to two predecessors
     among earlier nodes (acyclic by construction). *)
  for j = 1 to n - 1 do
    if Rng.chance rng 0.8 then
      Ddg.Builder.add_edge b ids.(Rng.int rng j) ids.(j);
    if Rng.chance rng 0.4 then
      Ddg.Builder.add_edge b ids.(Rng.int rng j) ids.(j)
  done;
  (* 0-2 controlled recurrence cycles: an ascending chain of
     zero-distance flow edges closed by one loop-carried back edge, so
     every cycle has positive total distance. *)
  let n_recs = Rng.int rng 3 in
  for _ = 1 to n_recs do
    let len = 1 + Rng.int rng (min 3 n) in
    let first = Rng.int rng (n - len + 1) in
    let chain = Array.init len (fun k -> ids.(first + k)) in
    for k = 0 to len - 2 do
      Ddg.Builder.add_edge b chain.(k) chain.(k + 1)
    done;
    Ddg.Builder.add_edge b
      ~distance:(1 + Rng.int rng 2)
      chain.(len - 1) chain.(0)
  done;
  (* Occasional non-value ordering edges: forward anti dependences and
     loop-carried memory-disambiguation edges. *)
  for j = 1 to n - 1 do
    if Rng.chance rng 0.1 then
      Ddg.Builder.add_edge b ~kind:Edge.Anti ~latency:(Rng.int rng 2)
        ids.(Rng.int rng j) ids.(j);
    if Rng.chance rng 0.07 then
      Ddg.Builder.add_edge b ~kind:Edge.Mem ~distance:1 ~latency:1 ids.(j)
        ids.(Rng.int rng j)
  done;
  let trip = Rng.int_in rng 2 200 in
  Loop.make ~trip ~name:"fuzz" (Ddg.Builder.build b)

(* Capability-asymmetric draws: any kind — or all of them — may be
   absent from a cluster.  [gen_machine] patches machine-wide coverage
   afterwards, so every opcode mix stays placeable somewhere and the
   differential harness exercises the schedulers, not the entry-point
   capability screen. *)
let gen_cluster ~rng i =
  Cluster.make
    ~name:(Printf.sprintf "c%d" i)
    ~int_fus:(Rng.int rng 3) ~fp_fus:(Rng.int rng 3)
    ~mem_ports:(Rng.int rng 3)
    ~registers:(Rng.pick rng [ 8; 16; 32 ])
    ()

let add_unit (c : Cluster.t) = function
  | Opcode.Int_fu -> { c with Cluster.int_fus = c.Cluster.int_fus + 1 }
  | Opcode.Fp_fu -> { c with Cluster.fp_fus = c.Cluster.fp_fus + 1 }
  | Opcode.Mem_port -> { c with Cluster.mem_ports = c.Cluster.mem_ports + 1 }

(* Machine-wide coverage: every kind must live on at least one cluster.
   The patched cluster is drawn from the stream, so repaired machines
   stay seed-deterministic; only the machine-wide total is guaranteed —
   individual clusters stay asymmetric. *)
let ensure_coverage ~rng clusters =
  List.iter
    (fun kind ->
      if not (Array.exists (fun c -> Cluster.capable c kind) clusters)
      then begin
        let i = Rng.int rng (Array.length clusters) in
        clusters.(i) <- add_unit clusters.(i) kind
      end)
    Opcode.all_fu_kinds

let gen_machine ~rng () =
  let n_cl = Rng.int_in rng 1 4 in
  let clusters =
    if Rng.chance rng 0.5 then
      (* identical clusters, as in the paper's evaluation machine; the
         replicated design must itself cover every kind *)
      let c0 =
        List.fold_left
          (fun c kind -> if Cluster.capable c kind then c else add_unit c kind)
          (gen_cluster ~rng 0) Opcode.all_fu_kinds
      in
      Array.init n_cl (fun i -> { c0 with Cluster.name = Printf.sprintf "c%d" i })
    else begin
      let cs = Array.init n_cl (fun i -> gen_cluster ~rng i) in
      ensure_coverage ~rng cs;
      cs
    end
  in
  let icn =
    Icn.make
      ~latency_cycles:(Rng.int_in rng 1 2)
      ~buses:(Rng.int_in rng 1 2)
      ()
  in
  let grid =
    match Rng.int rng 3 with
    | 0 -> Freqgrid.Unrestricted
    | 1 -> Presets.grid_of_steps (Some (Rng.pick rng [ 4; 8; 16 ]))
    | _ ->
      Freqgrid.uniform
        ~steps:(Rng.int_in rng 4 10)
        ~top:(Q.make 5 2 (* 2.5 GHz *))
  in
  Machine.make ~name:"fuzz" ~grid ~clusters ~icn ()

(* Drawn configurations must be realisable (every domain has a valid
   threshold voltage): the production pipeline filters candidates with
   [Opconfig.realisable] before the scheduler ever sees them, and the
   energy model raises on unrealisable domains. *)
let rec gen_config ~rng ~machine =
  let n = Machine.n_clusters machine in
  let fast_ct =
    Q.mul (Rng.pick rng Presets.fast_factors) Presets.reference_cycle_time
  in
  let slow_ct = Q.mul fast_ct (Rng.pick rng Presets.slow_factors) in
  let is_fast = Array.init n (fun _ -> Rng.bool rng) in
  is_fast.(Rng.int rng n) <- true;
  let vdd_fast = Rng.pick rng Presets.cluster_vdds in
  let vdd_slow = Rng.pick rng Presets.cluster_vdds in
  let cluster_points =
    Array.map
      (fun fast ->
        if fast then { Opconfig.cycle_time = fast_ct; vdd = vdd_fast }
        else { Opconfig.cycle_time = slow_ct; vdd = vdd_slow })
      is_fast
  in
  let icn_point =
    { Opconfig.cycle_time = fast_ct; vdd = Rng.pick rng Presets.icn_vdds }
  in
  let cache_point =
    { Opconfig.cycle_time = fast_ct; vdd = Rng.pick rng Presets.cache_vdds }
  in
  let config = Opconfig.make ~machine ~cluster_points ~icn_point ~cache_point in
  if Opconfig.realisable config then config else gen_config ~rng ~machine

let case ~seed =
  let rng = Rng.create seed in
  let machine = gen_machine ~rng () in
  let config = gen_config ~rng ~machine in
  let loop = gen_loop ~rng () in
  { seed; loop; machine; config }

let population ~seed ~n =
  let rng = Rng.create seed in
  List.init n (fun i ->
      let l = gen_loop ~rng () in
      let weight = 0.05 +. Rng.float rng 1.0 in
      Loop.make ~trip:l.Loop.trip ~weight
        ~name:(Printf.sprintf "fuzz%d" i)
        l.ddg)

let gen_metrics ~rng ?(n = 32) () =
  (* Fresh positive draws over several orders of magnitude, with a
     slice of exact repeats so dominance ties are exercised. *)
  let rec go i acc =
    if i >= n then List.rev acc
    else
      let pair =
        match acc with
        | prev :: _ when Rng.chance rng 0.15 -> prev
        | _ ->
          let time_ns = 1.0 +. Rng.float rng 999.0 in
          let energy = 0.01 +. Rng.float rng 99.99 in
          (time_ns, energy)
      in
      go (i + 1) (pair :: acc)
  in
  go 0 []

(* {1 Shrinking} *)

(* Rebuild a loop from an explicit instruction subset and edge list,
   remapping ids densely.  Edges whose endpoints were dropped vanish. *)
let rebuild_loop (loop : Loop.t) ~instrs ~edges =
  let b = Ddg.Builder.create () in
  let remap = Hashtbl.create 16 in
  List.iter
    (fun (i : Instr.t) ->
      let nid = Ddg.Builder.add_instr b ~name:i.name i.op in
      Hashtbl.replace remap i.id nid)
    instrs;
  List.iter
    (fun (e : Edge.t) ->
      match (Hashtbl.find_opt remap e.src, Hashtbl.find_opt remap e.dst) with
      | Some s, Some d ->
        Ddg.Builder.add_edge b ~kind:e.kind ~distance:e.distance
          ~latency:e.latency s d
      | _ -> ())
    edges;
  Loop.make ~trip:loop.trip ~weight:loop.weight ~name:loop.name
    (Ddg.Builder.build b)

(* Rebuild the operating configuration against a structurally edited
   machine, preserving the surviving per-domain points. *)
let retarget_config (cfg : Opconfig.t) machine =
  Opconfig.make ~machine
    ~cluster_points:
      (Array.sub cfg.cluster_points 0 (Machine.n_clusters machine))
    ~icn_point:cfg.icn_point ~cache_point:cfg.cache_point

(* All one-step reductions of a case, as thunks; a thunk returns [None]
   when the reduction does not apply or fails to build. *)
let candidates c =
  let ddg = c.loop.Loop.ddg in
  let n = Ddg.n_instrs ddg in
  let instrs = Array.to_list (Ddg.instrs ddg) in
  let edges = Ddg.edges ddg in
  let mk f () = try Some (f ()) with _ -> None in
  let drop_instrs =
    if n <= 1 then []
    else
      List.init n (fun k ->
          let k = n - 1 - k in
          mk (fun () ->
              {
                c with
                loop =
                  rebuild_loop c.loop
                    ~instrs:
                      (List.filter (fun (i : Instr.t) -> i.id <> k) instrs)
                    ~edges;
              }))
  in
  let drop_edges =
    List.mapi
      (fun k _ ->
        mk (fun () ->
            {
              c with
              loop =
                rebuild_loop c.loop ~instrs
                  ~edges:(List.filteri (fun j _ -> j <> k) edges);
            }))
      edges
  in
  let weaken_edges =
    List.mapi
      (fun k (e : Edge.t) ->
        mk (fun () ->
            let e' =
              if e.distance > 1 then { e with distance = 1 }
              else if e.latency > 0 then { e with latency = e.latency / 2 }
              else invalid_arg "nothing to weaken"
            in
            {
              c with
              loop =
                rebuild_loop c.loop ~instrs
                  ~edges:(List.mapi (fun j e0 -> if j = k then e' else e0) edges);
            }))
      edges
  in
  let drop_cluster =
    if Machine.n_clusters c.machine <= 1 then []
    else
      [
        mk (fun () ->
            let m = c.machine in
            let clusters =
              Array.sub m.clusters 0 (Machine.n_clusters m - 1)
            in
            let machine =
              Machine.make ~name:m.name ~grid:m.grid ~clusters ~icn:m.icn ()
            in
            { c with machine; config = retarget_config c.config machine });
      ]
  in
  let one_bus =
    if c.machine.icn.buses <= 1 then []
    else
      [
        mk (fun () ->
            let icn =
              Icn.make ~latency_cycles:c.machine.icn.latency_cycles ~buses:1 ()
            in
            let machine = Machine.with_icn c.machine icn in
            { c with machine; config = retarget_config c.config machine });
      ]
  in
  let free_grid =
    match c.machine.grid with
    | Freqgrid.Unrestricted -> []
    | _ ->
      [
        mk (fun () ->
            let machine = Machine.with_grid c.machine Freqgrid.Unrestricted in
            { c with machine; config = retarget_config c.config machine });
      ]
  in
  let homo_config =
    if Opconfig.is_homogeneous c.config then []
    else
      [
        mk (fun () ->
            let p =
              c.config.cluster_points.(Opconfig.fastest_cluster c.config)
            in
            let config =
              Opconfig.make ~machine:c.machine
                ~cluster_points:(Array.map (fun _ -> p) c.config.cluster_points)
                ~icn_point:p ~cache_point:p
            in
            if not (Opconfig.realisable config) then
              invalid_arg "unrealisable";
            { c with config });
      ]
  in
  let shrink_trip =
    if c.loop.trip <= 2 then []
    else
      [
        mk (fun () ->
            {
              c with
              loop =
                Loop.make
                  ~trip:(max 2 (c.loop.trip / 2))
                  ~weight:c.loop.weight ~name:c.loop.name c.loop.ddg;
            });
      ]
  in
  drop_instrs @ drop_edges @ weaken_edges @ drop_cluster @ one_bus @ free_grid
  @ homo_config @ shrink_trip

let shrink ?(max_checks = 400) ~keep c0 =
  let checks = ref 0 in
  let keep_safe c =
    if !checks >= max_checks then false
    else begin
      incr checks;
      try keep c with _ -> false
    end
  in
  let rec pass c =
    let rec try_cands = function
      | [] -> c
      | cand :: rest -> (
        match cand () with
        | Some c' when keep_safe c' -> pass c'
        | _ -> try_cands rest)
    in
    try_cands (candidates c)
  in
  pass c0

(* {1 Printing} *)

let print_case c =
  let buf = Buffer.create 512 in
  let commented s =
    String.split_on_char '\n' s
    |> List.iter (fun line ->
           if String.trim line <> "" then (
             Buffer.add_string buf "# ";
             Buffer.add_string buf line;
             Buffer.add_char buf '\n'))
  in
  commented (Printf.sprintf "fuzz case, seed %d" c.seed);
  commented (Format.asprintf "%a" Machine.pp c.machine);
  commented (Format.asprintf "%a" Opconfig.pp c.config);
  Buffer.add_string buf (Dsl.print c.loop);
  Buffer.contents buf
