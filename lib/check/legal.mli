(** Independent schedule-legality verifier — the fuzzing oracle.

    Every guarantee the schedulers give about legality (FU and bus
    conflicts modulo II, cross-clock-domain dependence latencies,
    transfer timing, register pressure) is otherwise implicit in the
    scheduler's own data structures: the modulo reservation tables
    ([Mrt]), the timing memo ([Timing.Memo]) and the pseudo-schedule
    estimator caches ([Pseudo]).  This module re-derives all of those
    conditions from first principles — straight from the paper's §2/§4
    rules and the raw [Schedule.t]/[Clocking.t] records, using nothing
    but exact rational arithmetic and the DDG accessors — so a bug in
    any of the hot-path structures cannot hide from it.  It shares no
    occupancy or timing code with [Mrt], [Timing] or [Pseudo] (nor with
    [Schedule.validate], which is built on [Timing]).

    The rules, re-stated independently:

    - clocking: IT > 0, and every domain's (II, cycle time) pair
      satisfies [II >= 1] and [II * ct = IT] exactly;
    - an instruction at cycle [k] of cluster [c] starts at [k * ct_c]
      and defines its value [latency] effective cycles later, where the
      effective cycle time is [ct_c] except for memory operations,
      which advance at [max ct_c ct_cache];
    - FU occupancy: at most [capacity] operations of a resource kind in
      any modulo slot [k mod II_c] of a cluster;
    - bus occupancy: at most [buses] transfers in any modulo slot
      [b mod II_icn];
    - a transfer may depart no earlier than one full ICN cycle after
      its value is defined: [(b - 1) * ct_icn >= def(src)];
    - a same-cluster dependence of distance [d] needs
      [start(dst) + d*IT >= start(src) + latency_e * eff_ct(src)];
    - a cross-cluster value dependence needs a transfer to the
      consumer's cluster arriving (at [(b + buslat) * ct_icn]) no later
      than [start(dst) + d*IT];
    - a cross-cluster non-value dependence pays one ICN cycle of
      synchronisation instead of a bus;
    - per-cluster summed value lifetimes must not exceed
      [registers * IT]. *)

open Hcv_support
open Hcv_machine
open Hcv_sched

type violation = { rule : string; detail : string }
(** [rule] is a stable category tag: ["structure"], ["clocking"],
    ["placement"], ["fu-capacity"], ["bus-capacity"], ["transfer"],
    ["dependence"] or ["register-pressure"]. *)

val verify : Schedule.t -> (unit, violation list) result
(** Check every legality rule above; returns all violations found. *)

val verify_clocking :
  config:Opconfig.t -> Clocking.t -> (unit, violation list) result
(** Check a clocking against the operating configuration it was derived
    from: domain count, [II * ct = IT] integrality, no domain clocked
    above its configured maximum frequency, and — under a discrete
    frequency grid — every domain frequency a member of the grid. *)

val lifetime_sums : Schedule.t -> Q.t array
(** Independently derived per-cluster summed value lifetimes (ns): each
    value lives in its producer's register file from definition to its
    last same-cluster read or last bus departure, and in every
    destination cluster from bus arrival to the last read there.  The
    differential tests compare this against the production
    {!Schedule.lifetimes_ns}. *)

val to_strings : violation list -> string list
val pp_violation : Format.formatter -> violation -> unit
