(** Seeded random generators for fuzzing, and a greedy shrinker.

    Everything is driven by the deterministic splitmix64 {!Rng}: equal
    seeds give equal cases, across processes and worker counts.  The
    generators cover the axes the paper's evaluation varies — DDG shape
    (DAG depth/width plus controlled recurrence cycles), machine design
    (cluster count, FU mix, register-file size, bus width and latency,
    frequency grid) and operating point (fast/slow cluster cycle-time
    splits from the paper's factor sets).

    The module also hosts the exemplar loops the test suite shares
    ({!dotprod}, {!recurrence_loop}, {!wide_loop}, {!random_loop}), so
    test code and fuzzer draw DDGs from one place. *)

open Hcv_support
open Hcv_ir
open Hcv_machine

(** {1 Exemplar loops (shared with the test suite)} *)

val dotprod : ?trip:int -> unit -> Loop.t
(** load, load, multiply, loop-carried accumulate. *)

val recurrence_loop : ?trip:int -> unit -> Loop.t
(** A distance-1 recurrence chain plus independent off-recurrence work. *)

val wide_loop : ?trip:int -> ?width:int -> unit -> Loop.t
(** [width] independent load/add/store strands; resource-constrained. *)

val random_loop : ?n:int -> seed:int -> unit -> Loop.t
(** Random forward DAG plus a few loop-carried edges; equal seeds give
    equal loops. *)

(** {1 Fuzz cases} *)

type case = {
  seed : int;
  loop : Loop.t;
  machine : Machine.t;
  config : Opconfig.t;
}
(** One differential-test input: a loop to schedule on an operating
    configuration of a machine design. *)

val gen_loop : rng:Rng.t -> ?min_n:int -> ?max_n:int -> unit -> Loop.t
(** A random loop: weighted opcode mix, forward zero-distance DAG,
    0-2 controlled recurrence cycles (an ascending chain closed by a
    loop-carried back edge), occasional anti/memory-ordering edges. *)

val gen_machine : rng:Rng.t -> unit -> Machine.t
(** 1-4 clusters (identical fully-capable designs, or
    capability-asymmetric mixes where a cluster may lack FP units,
    memory ports, or carry no FU at all), 1-2 buses of latency 1-2, and
    one of: unrestricted frequencies, the paper's divider grid, a
    uniform grid.  Every FU kind is guaranteed on at least one cluster
    (deterministically repaired from the same seed stream), so generated
    machines never trip the pipeline's machine-incapable screen. *)

val gen_config : rng:Rng.t -> machine:Machine.t -> Opconfig.t
(** An operating point drawn from the paper's fast/slow cycle-time
    factors: a fast group of clusters, the rest slow, ICN and cache
    clocked with the fast group.  Always realisable (redrawn otherwise),
    matching the production pipeline's [Opconfig.realisable] filter. *)

val case : seed:int -> case
(** The complete case for one seed: machine, then configuration, then
    loop, drawn from one generator stream. *)

val population : seed:int -> n:int -> Loop.t list
(** [n] random loops with random trip counts and weights — profile
    input for whole-benchmark differential runs. *)

val gen_metrics : rng:Rng.t -> ?n:int -> unit -> (float * float) list
(** [n] (default 32) positive [(time_ns, energy)] pairs for the pure
    frontier-dominance properties — a mix of fresh draws and exact
    repeats of earlier pairs, so tie handling is exercised too.  Equal
    streams give equal corpora. *)

(** {1 Shrinking and printing} *)

val shrink : ?max_checks:int -> keep:(case -> bool) -> case -> case
(** Greedy minimisation: repeatedly try dropping an instruction,
    dropping an edge, weakening an edge (distance/latency), dropping a
    cluster, going to one bus, freeing the frequency grid, making the
    configuration homogeneous, and shrinking the trip count — keeping
    any reduction for which [keep] still holds, until a fixpoint (or
    [max_checks] evaluations of [keep], default 400).  [keep] failures
    by exception count as "does not reproduce". *)

val print_case : case -> string
(** A printable repro: the machine and configuration as [#] comment
    lines followed by the loop in the [.loop] DSL — the whole string
    still parses with {!Dsl.parse}. *)
