(* The independent legality oracle.  Everything here is re-derived from
   the raw schedule/clocking records with plain rational arithmetic: no
   Mrt, no Timing, no Pseudo, no Schedule.validate — those are the
   subjects under test. *)

open Hcv_support
open Hcv_ir
open Hcv_machine
open Hcv_sched

type violation = { rule : string; detail : string }

let pp_violation ppf v = Format.fprintf ppf "[%s] %s" v.rule v.detail
let to_strings vs = List.map (fun v -> v.rule ^ ": " ^ v.detail) vs

(* ----- first-principles timing --------------------------------------- *)

(* Issue time of placement p: cycle boundaries of the cluster's domain. *)
let start_of (ck : Clocking.t) (p : Schedule.placement) =
  Q.mul_int ck.Clocking.cluster_ct.(p.Schedule.cluster) p.Schedule.cycle

(* Effective cycle time of an operation on a cluster: memory operations
   cannot advance faster than the cache clock. *)
let eff_ct_of (ck : Clocking.t) ~cluster kind =
  let ct = ck.Clocking.cluster_ct.(cluster) in
  match kind with
  | Opcode.Mem_port -> Q.max ct ck.Clocking.cache_ct
  | Opcode.Int_fu | Opcode.Fp_fu -> ct

(* Value-definition time of instruction i under its own latency. *)
let def_of (s : Schedule.t) i =
  let p = s.Schedule.placements.(i) in
  let ins = Ddg.instr s.Schedule.loop.Loop.ddg i in
  Q.add (start_of s.Schedule.clocking p)
    (Q.mul_int
       (eff_ct_of s.Schedule.clocking ~cluster:p.Schedule.cluster
          (Instr.fu ins))
       (Instr.latency ins))

(* Arrival time of a transfer: it occupies the bus from cycle b and the
   value is usable in the destination cluster at the end of the bus
   occupancy, (b + buslat) ICN-cycle boundaries in. *)
let arrival_of (s : Schedule.t) (tr : Schedule.transfer) =
  let buslat = s.Schedule.machine.Machine.icn.Icn.latency_cycles in
  Q.mul_int s.Schedule.clocking.Clocking.icn_ct
    (tr.Schedule.bus_cycle + buslat)

(* ----- lifetimes ------------------------------------------------------ *)

let lifetime_sums (s : Schedule.t) =
  let ddg = s.Schedule.loop.Loop.ddg in
  let ck = s.Schedule.clocking in
  let it = ck.Clocking.it in
  let spans = Array.make (Machine.n_clusters s.Schedule.machine) Q.zero in
  let start i = start_of ck s.Schedule.placements.(i) in
  (* Last read of the value of [src] inside [cluster], at or after
     [from]: consumers of iteration [i + d] read at start + d*IT. *)
  let last_read ~cluster src from =
    List.fold_left
      (fun acc (e : Edge.t) ->
        if
          e.Edge.kind = Edge.Flow
          && s.Schedule.placements.(e.Edge.dst).Schedule.cluster = cluster
        then Q.max acc (Q.add (start e.Edge.dst) (Q.mul_int it e.Edge.distance))
        else acc)
      from (Ddg.succs ddg src)
  in
  Array.iteri
    (fun i (p : Schedule.placement) ->
      let birth = def_of s i in
      (* The producer-side copy also stays live until its last bus
         departure (the send reads the register). *)
      let death =
        List.fold_left
          (fun acc (tr : Schedule.transfer) ->
            if tr.Schedule.src = i then
              Q.max acc
                (Q.mul_int ck.Clocking.icn_ct tr.Schedule.bus_cycle)
            else acc)
          (last_read ~cluster:p.Schedule.cluster i birth)
          s.Schedule.transfers
      in
      spans.(p.Schedule.cluster) <-
        Q.add spans.(p.Schedule.cluster) (Q.sub death birth))
    s.Schedule.placements;
  List.iter
    (fun (tr : Schedule.transfer) ->
      let birth = arrival_of s tr in
      let death = last_read ~cluster:tr.Schedule.dst_cluster tr.Schedule.src birth in
      spans.(tr.Schedule.dst_cluster) <-
        Q.add spans.(tr.Schedule.dst_cluster) (Q.sub death birth))
    s.Schedule.transfers;
  spans

(* ----- the verifier --------------------------------------------------- *)

(* [add] takes the already-rendered detail string, so this helper can be
   shared between [verify] and [verify_clocking]. *)
let check_domain add name ~it ~ii ~ct =
  if ii < 1 then add "clocking" (Printf.sprintf "%s: II %d < 1" name ii);
  if Q.sign ct <= 0 then
    add "clocking"
      (Format.asprintf "%s: non-positive cycle time %a" name Q.pp ct);
  if ii >= 1 && Q.sign ct > 0 && not (Q.equal (Q.mul_int ct ii) it) then
    add "clocking"
      (Format.asprintf "%s: II (%d) x cycle time (%a) is not the IT (%a)" name
         ii Q.pp ct Q.pp it)

let verify (s : Schedule.t) =
  let vs = ref [] in
  let add rule detail = vs := { rule; detail } :: !vs in
  let err rule fmt = Format.kasprintf (add rule) fmt in
  let ddg = s.Schedule.loop.Loop.ddg in
  let ck = s.Schedule.clocking in
  let it = ck.Clocking.it in
  let n_cl = Machine.n_clusters s.Schedule.machine in
  let n = Array.length s.Schedule.placements in
  (* Structure and clocking first; the later checks index freely. *)
  if Ddg.n_instrs ddg <> n then
    err "structure" "placements cover %d instructions, DDG has %d" n
      (Ddg.n_instrs ddg);
  if Array.length ck.Clocking.cluster_ct <> n_cl
     || Array.length ck.Clocking.cluster_ii <> n_cl
  then
    err "structure" "clocking has %d cluster domains, machine has %d"
      (Array.length ck.Clocking.cluster_ct) n_cl;
  if Q.sign it <= 0 then err "clocking" "non-positive IT %a" Q.pp it;
  if !vs = [] then begin
    Array.iteri
      (fun c ct ->
        check_domain add (Printf.sprintf "cluster %d" c) ~it
          ~ii:ck.Clocking.cluster_ii.(c) ~ct)
      ck.Clocking.cluster_ct;
    check_domain add "icn" ~it ~ii:ck.Clocking.icn_ii ~ct:ck.Clocking.icn_ct;
    check_domain add "cache" ~it ~ii:ck.Clocking.cache_ii
      ~ct:ck.Clocking.cache_ct
  end;
  (* Placement sanity. *)
  if !vs = [] then
    Array.iteri
      (fun i (p : Schedule.placement) ->
        if p.Schedule.cluster < 0 || p.Schedule.cluster >= n_cl then
          err "placement" "instr %d: cluster %d out of range" i
            p.Schedule.cluster
        else if p.Schedule.cycle < 0 then
          err "placement" "instr %d: negative cycle %d" i p.Schedule.cycle)
      s.Schedule.placements;
  match !vs with
  | _ :: _ -> Error (List.rev !vs)
  | [] ->
    (* Capability eligibility, re-derived per placement: an operation
       may only sit on a cluster owning at least one unit of its FU
       kind.  The modulo-occupancy check below also rejects such a
       placement (u > cap with cap = 0), but this rule names the
       offending operation directly. *)
    Array.iteri
      (fun i (p : Schedule.placement) ->
        let kind = Instr.fu (Ddg.instr ddg i) in
        if
          not
            (Cluster.capable
               (Machine.cluster s.Schedule.machine p.Schedule.cluster)
               kind)
        then
          err "fu-eligibility" "instr %d (%s) placed on cluster %d with no %s"
            i
            (Ddg.instr ddg i).Instr.name
            p.Schedule.cluster
            (Opcode.fu_to_string kind))
      s.Schedule.placements;
    (* FU occupancy per (cluster, kind, cycle mod II_cluster). *)
    let used =
      Array.init n_cl (fun c ->
          Array.make_matrix Opcode.n_fu_kinds ck.Clocking.cluster_ii.(c) 0)
    in
    Array.iteri
      (fun i (p : Schedule.placement) ->
        let kind = Instr.fu (Ddg.instr ddg i) in
        let slot = p.Schedule.cycle mod ck.Clocking.cluster_ii.(p.Schedule.cluster) in
        let row = used.(p.Schedule.cluster).(Opcode.fu_index kind) in
        row.(slot) <- row.(slot) + 1)
      s.Schedule.placements;
    Array.iteri
      (fun c per_kind ->
        List.iter
          (fun kind ->
            let cap = Cluster.fu_count (Machine.cluster s.Schedule.machine c) kind in
            Array.iteri
              (fun slot u ->
                if u > cap then
                  err "fu-capacity"
                    "cluster %d %s modulo slot %d: %d operations on %d units"
                    c (Opcode.fu_to_string kind) slot u cap)
              per_kind.(Opcode.fu_index kind))
          Opcode.all_fu_kinds)
      used;
    (* Transfers: endpoints, departure-after-sync, bus occupancy. *)
    let bus_used = Array.make ck.Clocking.icn_ii 0 in
    List.iter
      (fun (tr : Schedule.transfer) ->
        if tr.Schedule.src < 0 || tr.Schedule.src >= n then
          err "transfer" "transfer of unknown instruction %d" tr.Schedule.src
        else if tr.Schedule.dst_cluster < 0 || tr.Schedule.dst_cluster >= n_cl
        then
          err "transfer" "transfer from %d: cluster %d out of range"
            tr.Schedule.src tr.Schedule.dst_cluster
        else if tr.Schedule.bus_cycle < 0 then
          err "transfer" "transfer from %d: negative bus cycle %d"
            tr.Schedule.src tr.Schedule.bus_cycle
        else begin
          let slot = tr.Schedule.bus_cycle mod ck.Clocking.icn_ii in
          bus_used.(slot) <- bus_used.(slot) + 1;
          (* One full ICN cycle must separate the value definition from
             the bus departure (the synchronisation queue). *)
          let sync_ok =
            Q.( >= )
              (Q.mul_int ck.Clocking.icn_ct (tr.Schedule.bus_cycle - 1))
              (def_of s tr.Schedule.src)
          in
          if not sync_ok then
            err "transfer"
              "transfer from %d departs at bus cycle %d, less than one ICN \
               cycle after its value is defined (%a ns)"
              tr.Schedule.src tr.Schedule.bus_cycle Q.pp (def_of s tr.Schedule.src)
        end)
      s.Schedule.transfers;
    Array.iteri
      (fun slot u ->
        if u > s.Schedule.machine.Machine.icn.Icn.buses then
          err "bus-capacity" "bus modulo slot %d: %d transfers on %d buses"
            slot u s.Schedule.machine.Machine.icn.Icn.buses)
      bus_used;
    (* Dependences, in nanoseconds across clock domains. *)
    List.iter
      (fun (e : Edge.t) ->
        let ps = s.Schedule.placements.(e.Edge.src) in
        let pd = s.Schedule.placements.(e.Edge.dst) in
        (* Earliest time the consumer's iteration may observe the
           dependence: its start plus the distance in iterations. *)
        let avail =
          Q.add (start_of ck pd) (Q.mul_int it e.Edge.distance)
        in
        (* Definition time under the *edge's* latency (anti/output edges
           carry a latency different from the instruction's). *)
        let src_kind = Instr.fu (Ddg.instr ddg e.Edge.src) in
        let edge_def =
          Q.add (start_of ck ps)
            (Q.mul_int
               (eff_ct_of ck ~cluster:ps.Schedule.cluster src_kind)
               e.Edge.latency)
        in
        if ps.Schedule.cluster = pd.Schedule.cluster then begin
          if Q.( < ) avail edge_def then
            err "dependence"
              "edge %a: consumer observes at %a ns, producer defines at %a ns"
              Edge.pp e Q.pp avail Q.pp edge_def
        end
        else if e.Edge.kind = Edge.Flow then begin
          let served =
            List.exists
              (fun (tr : Schedule.transfer) ->
                tr.Schedule.src = e.Edge.src
                && tr.Schedule.dst_cluster = pd.Schedule.cluster
                && Q.( <= ) (arrival_of s tr) avail)
              s.Schedule.transfers
          in
          (* Departure legality of every transfer is already enforced
             above, so a serving transfer only needs to arrive in time. *)
          if not served then
            err "dependence"
              "edge %a: no transfer delivers the value to cluster %d by %a ns"
              Edge.pp e pd.Schedule.cluster Q.pp avail
        end
        else begin
          let needed = Q.add edge_def ck.Clocking.icn_ct in
          if Q.( < ) avail needed then
            err "dependence"
              "cross-domain edge %a: consumer observes at %a ns, needs %a ns \
               (one ICN cycle of synchronisation)"
              Edge.pp e Q.pp avail Q.pp needed
        end)
      (Ddg.edges ddg);
    (* Register pressure: per-cluster lifetime budget. *)
    Array.iteri
      (fun c span ->
        let budget =
          Q.mul_int it (Machine.cluster s.Schedule.machine c).Cluster.registers
        in
        if Q.( > ) span budget then
          err "register-pressure"
            "cluster %d: summed lifetimes %a ns exceed %d registers x IT = %a \
             ns"
            c Q.pp span
            (Machine.cluster s.Schedule.machine c).Cluster.registers Q.pp
            budget)
      (lifetime_sums s);
    (match List.rev !vs with [] -> Ok () | es -> Error es)

let verify_clocking ~(config : Opconfig.t) (ck : Clocking.t) =
  let vs = ref [] in
  let add rule detail = vs := { rule; detail } :: !vs in
  let err rule fmt = Format.kasprintf (add rule) fmt in
  let machine = config.Opconfig.machine in
  let n_cl = Machine.n_clusters machine in
  if Array.length ck.Clocking.cluster_ct <> n_cl then
    err "clocking" "clocking has %d cluster domains, config machine has %d"
      (Array.length ck.Clocking.cluster_ct) n_cl
  else begin
    let grid_freqs = Freqgrid.frequencies machine.Machine.grid in
    let check name comp ii ct =
      check_domain add name ~it:ck.Clocking.it ~ii ~ct;
      (* No domain may be clocked above its configured maximum
         frequency: the actual cycle time only ever stretches. *)
      let fmax_ct = Opconfig.cycle_time config comp in
      if Q.( < ) ct fmax_ct then
        err "clocking" "%s: cycle time %a ns below the configured minimum %a ns"
          name Q.pp ct Q.pp fmax_ct;
      match grid_freqs with
      | None -> ()
      | Some fs ->
        let f = Q.inv ct in
        if not (List.exists (Q.equal f) fs) then
          err "clocking" "%s: frequency %a GHz is not on the machine's grid"
            name Q.pp f
    in
    Array.iteri
      (fun c ct ->
        check (Printf.sprintf "cluster %d" c) (Comp.Cluster c)
          ck.Clocking.cluster_ii.(c) ct)
      ck.Clocking.cluster_ct;
    check "icn" Comp.Icn ck.Clocking.icn_ii ck.Clocking.icn_ct;
    check "cache" Comp.Cache ck.Clocking.cache_ii ck.Clocking.cache_ct
  end;
  match List.rev !vs with [] -> Ok () | es -> Error es
