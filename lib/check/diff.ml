(* Differential fuzz drivers.  See diff.mli. *)

open Hcv_support
open Hcv_ir
open Hcv_machine
open Hcv_energy
open Hcv_sched
open Hcv_explore

type tolerances = {
  energy_rel : float;
  est_ratio_lo : float;
  est_ratio_hi : float;
}

let default_tolerances =
  { energy_rel = 1e-6; est_ratio_lo = 0.2; est_ratio_hi = 5.0 }

type category =
  | Crash
  | Illegal
  | Clocking
  | Oracle_disagreement
  | Sim_violation
  | Sim_time_mismatch
  | Energy_mismatch
  | Estimate_out_of_band
  | Frontier_mismatch

let category_to_string = function
  | Crash -> "crash"
  | Illegal -> "illegal"
  | Clocking -> "clocking"
  | Oracle_disagreement -> "oracle-disagreement"
  | Sim_violation -> "sim-violation"
  | Sim_time_mismatch -> "sim-time-mismatch"
  | Energy_mismatch -> "energy-mismatch"
  | Estimate_out_of_band -> "estimate-out-of-band"
  | Frontier_mismatch -> "frontier-mismatch"

let all_categories =
  [
    Crash;
    Illegal;
    Clocking;
    Oracle_disagreement;
    Sim_violation;
    Sim_time_mismatch;
    Energy_mismatch;
    Estimate_out_of_band;
    Frontier_mismatch;
  ]

type outcome = {
  scheduled : bool;
  energy_checked : bool;
  estimate_checked : bool;
  frontier_checked : bool;
  problems : (category * string) list;
}

(* A throwaway scoring context: the scheduler's ED2 refinement only
   needs *some* consistent unit energies, and the energy differential
   compares measured vs analytic under the same ctx, so any reference
   activity works. *)
let ctx_for machine =
  let n = Machine.n_clusters machine in
  let act =
    Activity.make ~exec_time_ns:1e6
      ~per_cluster_ins_energy:(Array.make n 100.)
      ~n_comms:100. ~n_mem:100.
  in
  Model.ctx ~params:Params.default
    ~units:(Units.of_reference ~params:Params.default ~n_clusters:n act)
    ()

let rel_err a b =
  let scale = Float.max (Float.abs a) (Float.abs b) in
  if scale = 0.0 then 0.0 else Float.abs (a -. b) /. scale

(* The modulo-schedule execution-time formula, exact. *)
let formula_exec_ns (s : Schedule.t) ~trip =
  Q.add
    (Q.mul_int s.Schedule.clocking.Clocking.it (trip - 1))
    (Schedule.it_length s)

let check_scheduled ~tol (c : Gen.case) (sched : Schedule.t) =
  let problems = ref [] in
  let problem cat detail = problems := (cat, detail) :: !problems in
  let catching label f =
    try f ()
    with e -> problem Crash (label ^ ": " ^ Printexc.to_string e)
  in
  (* 1. The independent oracle. *)
  let legal = Legal.verify sched in
  (match legal with
  | Ok () -> ()
  | Error vs ->
    problem Illegal (String.concat "; " (Legal.to_strings vs)));
  (* 2. Oracle vs the production validator: same rules, independent
     derivations — they must agree on legality. *)
  catching "validate" (fun () ->
      match (legal, Schedule.validate sched) with
      | Ok (), Error es ->
        problem Oracle_disagreement
          ("oracle accepts, Schedule.validate rejects: "
          ^ String.concat "; " es)
      | Error _, Ok () ->
        problem Oracle_disagreement "oracle rejects, Schedule.validate accepts"
      | Ok (), Ok () | Error _, Error _ -> ());
  (* 3. The two lifetime derivations must agree exactly. *)
  catching "lifetimes" (fun () ->
      let ours = Legal.lifetime_sums sched in
      let theirs = Schedule.lifetimes_ns sched in
      Array.iteri
        (fun cl a ->
          if not (Q.equal a theirs.(cl)) then
            problem Oracle_disagreement
              (Format.asprintf
                 "cluster %d lifetimes: oracle %a ns, production %a ns" cl Q.pp
                 a Q.pp theirs.(cl)))
        ours);
  (* 4. The clocking against the config and its grid. *)
  catching "clocking" (fun () ->
      match Legal.verify_clocking ~config:c.Gen.config sched.clocking with
      | Ok () -> ()
      | Error vs ->
        problem Clocking (String.concat "; " (Legal.to_strings vs)));
  (* 5. Event-driven replay: no violations, and the exact replay time
     equals the modulo-schedule formula. *)
  catching "simulator" (fun () ->
      let trip = max 1 (min 12 c.Gen.loop.Loop.trip) in
      let r = Hcv_sim.Simulator.run ~schedule:sched ~trip () in
      (match r.Hcv_sim.Simulator.violations with
      | [] -> ()
      | vs -> problem Sim_violation (String.concat "; " vs));
      let expect = formula_exec_ns sched ~trip in
      if not (Q.equal r.Hcv_sim.Simulator.exec_ns expect) then
        problem Sim_time_mismatch
          (Format.asprintf "replay %a ns, formula %a ns (trip %d)" Q.pp
             r.Hcv_sim.Simulator.exec_ns Q.pp expect trip));
  (* 6. Energy of measured vs analytic activity (realisable configs
     only: the model has no operating point otherwise). *)
  let energy_checked = ref false in
  catching "energy" (fun () ->
      if Opconfig.realisable c.Gen.config then begin
        let trip = max 1 (min 12 c.Gen.loop.Loop.trip) in
        match Hcv_sim.Simulator.measure ~schedule:sched ~trip with
        | Error _ -> () (* already reported as Sim_violation *)
        | Ok measured ->
          energy_checked := true;
          let ctx = ctx_for c.Gen.machine in
          let analytic = Hcv_core.Profile.activity_of_schedule sched ~trip in
          let em =
            Model.total (Model.energy ctx ~config:c.Gen.config measured)
          in
          let ea =
            Model.total (Model.energy ctx ~config:c.Gen.config analytic)
          in
          if rel_err em ea > tol.energy_rel then
            problem Energy_mismatch
              (Printf.sprintf
                 "measured-activity energy %.6g, analytic %.6g (rel err %.3g \
                  > %.3g)"
                 em ea (rel_err em ea) tol.energy_rel)
      end);
  (* 7. The §3.2 compile-time estimate against the scheduled time. *)
  let estimate_checked = ref false in
  catching "estimate" (fun () ->
      match
        Hcv_core.Profile.profile ~machine:c.Gen.machine ~loops:[ c.Gen.loop ]
          ()
      with
      | Error _ -> () (* reference profile unobtainable: skip *)
      | Ok profile ->
        let lp = List.hd profile.Hcv_core.Profile.loops in
        let est = Hcv_core.Estimate.loop_estimate ~config:c.Gen.config lp in
        let actual =
          Schedule.exec_time_ns sched ~trip:c.Gen.loop.Loop.trip
        in
        if actual > 0.0 then begin
          estimate_checked := true;
          let ratio = est.Hcv_core.Estimate.exec_ns /. actual in
          if ratio < tol.est_ratio_lo || ratio > tol.est_ratio_hi then
            problem Estimate_out_of_band
              (Printf.sprintf
                 "estimated %.4g ns vs scheduled %.4g ns: ratio %.4g outside \
                  [%.3g, %.3g]"
                 est.Hcv_core.Estimate.exec_ns actual ratio tol.est_ratio_lo
                 tol.est_ratio_hi)
        end);
  (* 8. The Pareto frontier of the §3.3 selection sweep against the
     legacy scalarised selector, over the case's single-loop profile:
     sound (no member dominates another), complete (every realisable
     swept point dominated by or tying a member), and its ED² corner
     byte-identical to the selector's choice. *)
  let frontier_checked = ref false in
  catching "frontier" (fun () ->
      let module S = Hcv_core.Select in
      let module F = Hcv_core.Frontier in
      match
        Hcv_core.Profile.profile ~machine:c.Gen.machine ~loops:[ c.Gen.loop ]
          ()
      with
      | Error _ -> () (* reference profile unobtainable: skip *)
      | Ok profile -> (
        let ctx = ctx_for c.Gen.machine in
        let legacy =
          S.select_heterogeneous ~ctx ~machine:c.Gen.machine profile
        in
        let front =
          S.frontier_heterogeneous ~ctx ~machine:c.Gen.machine profile
        in
        match (legacy, front) with
        | Error _, Error _ -> () (* both agree nothing is realisable *)
        | Ok _, Error d ->
          problem Frontier_mismatch
            ("selector found a choice but the frontier errored: "
            ^ Hcv_obs.Diag.code d)
        | Error d, Ok _ ->
          problem Frontier_mismatch
            ("frontier is non-empty but the selector errored: "
            ^ Hcv_obs.Diag.code d)
        | Ok best, Ok f -> (
          frontier_checked := true;
          let members = F.members f in
          let objectives = (F.spec_of f).F.objectives in
          List.iter
            (fun (a : _ F.entry) ->
              List.iter
                (fun (b : _ F.entry) ->
                  if
                    a.F.index <> b.F.index
                    && F.dominates ~objectives a.F.fvec b.F.fvec
                  then
                    problem Frontier_mismatch
                      (Printf.sprintf "member %d dominates member %d"
                         a.F.index b.F.index))
                members)
            members;
          let scored =
            S.sweep_heterogeneous ~ctx ~machine:c.Gen.machine
              ~slow_factors:Presets.slow_factors profile
          in
          List.iteri
            (fun i -> function
              | None -> ()
              | Some ch ->
                let v = S.vec_of_choice ch in
                let covered =
                  List.exists
                    (fun (m : _ F.entry) ->
                      m.F.fvec = v || F.dominates ~objectives m.F.fvec v)
                    members
                in
                if not covered then
                  problem Frontier_mismatch
                    (Printf.sprintf
                       "scored point %d is neither dominated by nor on the \
                        frontier"
                       i))
            scored;
          match F.min_by f F.Ed2 with
          | None -> problem Frontier_mismatch "frontier has no ED2 corner"
          | Some corner ->
            let cb = Hcv_core.Sweep.choice_to_string corner.F.item in
            let sb = Hcv_core.Sweep.choice_to_string best in
            if not (String.equal cb sb) then
              problem Frontier_mismatch
                ("ED2 corner differs from select_heterogeneous: " ^ cb
               ^ " vs " ^ sb))));
  (!energy_checked, !estimate_checked, !frontier_checked, List.rev !problems)

let check_case ?(tol = default_tolerances) (c : Gen.case) =
  match
    let ctx = ctx_for c.Gen.machine in
    Hcv_core.Hsched.schedule ~ctx ~config:c.Gen.config ~loop:c.Gen.loop ()
  with
  | Ok (sched, _stats) ->
    let energy_checked, estimate_checked, frontier_checked, problems =
      check_scheduled ~tol c sched
    in
    { scheduled = true; energy_checked; estimate_checked; frontier_checked;
      problems }
  | Error _ ->
    (* Clean rejection: random machines may be unschedulable. *)
    {
      scheduled = false;
      energy_checked = false;
      estimate_checked = false;
      frontier_checked = false;
      problems = [];
    }
  | exception e ->
    {
      scheduled = false;
      energy_checked = false;
      estimate_checked = false;
      frontier_checked = false;
      problems = [ (Crash, "Hsched.schedule: " ^ Printexc.to_string e) ];
    }

type failure = {
  seed : int;
  category : category;
  detail : string;
  repro : string;
}

type report = {
  cases : int;
  scheduled : int;
  unschedulable : int;
  energy_checked : int;
  estimate_checked : int;
  frontier_checked : int;
  failures : failure list;
}

let shrunk_repro ~tol ~shrink ~shrink_checks (c : Gen.case) category =
  if not shrink then Gen.print_case c
  else
    let keep c' =
      List.exists
        (fun (cat, _) -> cat = category)
        (check_case ~tol c').problems
    in
    Gen.print_case (Gen.shrink ~max_checks:shrink_checks ~keep c)

let run ?pool ?(obs = Hcv_obs.Trace.null) ?(tol = default_tolerances)
    ?(shrink = true) ?(shrink_checks = 150) ~seed ~cases () =
  (* Sub-seeds drawn up front from one stream, so the work list — and
     therefore every result — is identical for any worker count. *)
  let seeds =
    let rng = Rng.create seed in
    List.init cases (fun _ -> Int64.to_int (Rng.next rng) land max_int)
  in
  let check seed =
    let c = Gen.case ~seed in
    let o = check_case ~tol c in
    let failures =
      List.map
        (fun (category, detail) ->
          {
            seed;
            category;
            detail;
            repro = shrunk_repro ~tol ~shrink ~shrink_checks c category;
          })
        o.problems
    in
    (o, failures)
  in
  let results =
    match pool with
    | Some p -> Pool.map p check seeds
    | None -> List.map check seeds
  in
  Hcv_obs.Trace.add obs "fuzz.cases" cases;
  List.iter
    (fun ((o : outcome), fs) ->
      if o.scheduled then Hcv_obs.Trace.incr obs "fuzz.scheduled"
      else Hcv_obs.Trace.incr obs "fuzz.unschedulable";
      List.iter
        (fun f ->
          Hcv_obs.Trace.incr obs
            ("fuzz.fail." ^ category_to_string f.category))
        fs)
    results;
  List.fold_left
    (fun acc ((o : outcome), fs) ->
      {
        acc with
        scheduled = (acc.scheduled + if o.scheduled then 1 else 0);
        unschedulable = (acc.unschedulable + if o.scheduled then 0 else 1);
        energy_checked =
          (acc.energy_checked + if o.energy_checked then 1 else 0);
        estimate_checked =
          (acc.estimate_checked + if o.estimate_checked then 1 else 0);
        frontier_checked =
          (acc.frontier_checked + if o.frontier_checked then 1 else 0);
        failures = acc.failures @ fs;
      })
    {
      cases;
      scheduled = 0;
      unschedulable = 0;
      energy_checked = 0;
      estimate_checked = 0;
      frontier_checked = 0;
      failures = [];
    }
    results

let failure_json f =
  Jsonx.Obj
    [
      ("seed", Jsonx.Num (float_of_int f.seed));
      ("category", Jsonx.Str (category_to_string f.category));
      ("detail", Jsonx.Str f.detail);
      ("repro", Jsonx.Str f.repro);
    ]

let pp_report ppf r =
  let t =
    Tablefmt.create ~title:"fuzz summary"
      [ ("metric", Tablefmt.Left); ("count", Tablefmt.Right) ]
  in
  Tablefmt.add_row t [ "cases"; string_of_int r.cases ];
  Tablefmt.add_row t [ "scheduled"; string_of_int r.scheduled ];
  Tablefmt.add_row t [ "unschedulable"; string_of_int r.unschedulable ];
  Tablefmt.add_row t [ "energy checked"; string_of_int r.energy_checked ];
  Tablefmt.add_row t [ "estimate checked"; string_of_int r.estimate_checked ];
  Tablefmt.add_row t [ "frontier checked"; string_of_int r.frontier_checked ];
  Tablefmt.add_sep t;
  List.iter
    (fun cat ->
      let n =
        List.length (List.filter (fun f -> f.category = cat) r.failures)
      in
      if n > 0 then
        Tablefmt.add_row t
          [ "FAIL " ^ category_to_string cat; string_of_int n ])
    all_categories;
  Tablefmt.add_row t [ "failures"; string_of_int (List.length r.failures) ];
  Format.fprintf ppf "%s" (Tablefmt.render t)
