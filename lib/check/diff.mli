(** Differential fuzz drivers.

    For every generated {!Gen.case} this module runs the heterogeneous
    scheduler and cross-checks its output along independent paths:

    - {!Legal.verify} must accept the schedule (and must agree with the
      production [Schedule.validate] — the two are separate derivations
      of the same rules, so any disagreement is a bug in one of them);
    - {!Legal.lifetime_sums} must equal [Schedule.lifetimes_ns] exactly;
    - {!Legal.verify_clocking} must accept the chosen clocking against
      the operating configuration and its frequency grid;
    - the event-driven {!Simulator} replay must report no violations,
      and its exact execution time must equal the modulo-schedule
      formula [(trip - 1) * IT + iteration_length];
    - the §3.1 energy of the simulator-measured activity must match the
      energy of the analytic activity within [tol.energy_rel]
      (realisable configurations only — the model has no threshold
      voltage otherwise);
    - the §3.2 compile-time {!Estimate} of the loop's execution time
      must fall within [tol.est_ratio_lo, tol.est_ratio_hi] of the
      scheduled time (skipped when the reference profile itself cannot
      be built);
    - the Pareto frontier of the §3.3 selection sweep
      ({!Hcv_core.Select.frontier_heterogeneous}) must be sound (no
      member dominates another), complete (every realisable swept point
      is dominated by or ties a member) and scalarisation-consistent
      (its ED² corner is byte-identical to [select_heterogeneous]'s
      choice; both paths must agree on whether a choice exists at
      all) — skipped with the estimate check when the profile cannot be
      built.

    A case the scheduler *rejects* is not a failure — random machines
    are allowed to be unschedulable — but the rejection must be a clean
    [Error], never an exception. *)

open Hcv_explore

type tolerances = {
  energy_rel : float;
      (** relative error allowed between measured- and analytic-activity
          energy *)
  est_ratio_lo : float;  (** estimate/scheduled time lower bound *)
  est_ratio_hi : float;  (** estimate/scheduled time upper bound *)
}

val default_tolerances : tolerances

type category =
  | Crash  (** the scheduler (or a checker) raised *)
  | Illegal  (** {!Legal.verify} rejected the schedule *)
  | Clocking  (** {!Legal.verify_clocking} rejected the clocking *)
  | Oracle_disagreement
      (** [Schedule.validate] and {!Legal.verify} disagree, or the two
          lifetime derivations differ *)
  | Sim_violation  (** the simulator found a runtime violation *)
  | Sim_time_mismatch  (** replay time differs from the IT formula *)
  | Energy_mismatch  (** measured vs analytic energy out of band *)
  | Estimate_out_of_band  (** §3.2 time estimate out of band *)
  | Frontier_mismatch
      (** the selection frontier is unsound/incomplete, or its ED²
          corner differs from [select_heterogeneous] *)

val category_to_string : category -> string

type outcome = {
  scheduled : bool;
  energy_checked : bool;
  estimate_checked : bool;
  frontier_checked : bool;
  problems : (category * string) list;  (** empty when the case passed *)
}

val check_case : ?tol:tolerances -> Gen.case -> outcome
(** Run every cross-check on one case.  Never raises: scheduler or
    checker exceptions become [Crash] problems. *)

type failure = {
  seed : int;
  category : category;
  detail : string;
  repro : string;  (** {!Gen.print_case} of the (shrunk) failing case *)
}

type report = {
  cases : int;
  scheduled : int;
  unschedulable : int;
  energy_checked : int;
  estimate_checked : int;
  frontier_checked : int;
  failures : failure list;
}

val run :
  ?pool:Pool.t -> ?obs:Hcv_obs.Trace.span -> ?tol:tolerances -> ?shrink:bool
  -> ?shrink_checks:int -> seed:int -> cases:int -> unit -> report
(** Fuzz [cases] cases derived deterministically from [seed] (the same
    cases regardless of [pool] size).  Each failing case is shrunk with
    {!Gen.shrink} (keep = same failure category; at most [shrink_checks]
    re-checks, default 150) unless [shrink] is [false].  [?obs] counts
    ["fuzz.cases"], ["fuzz.scheduled"], ["fuzz.unschedulable"] and one
    ["fuzz.fail.<category>"] counter per failure — all deterministic for
    a fixed seed, whatever the pool size. *)

val failure_json : failure -> Jsonx.t
(** One JSONL record: seed, category, detail and the printable repro. *)

val pp_report : Format.formatter -> report -> unit
(** Bench-style summary table: case counts, per-category failures. *)
