open Hcv_obs

let str_obj kvs = Jsonx.Obj (List.map (fun (k, v) -> (k, Jsonx.Str v)) kvs)
let int_obj kvs =
  Jsonx.Obj (List.map (fun (k, v) -> (k, Jsonx.Num (float_of_int v))) kvs)

(* Volatile gauges and wall clocks always render last so a consumer can
   strip the run-dependent tail and keep the deterministic prefix. *)
let wall_fields (n : Trace.node) =
  [
    ("volatile", Jsonx.Obj (List.map (fun (k, v) -> (k, Jsonx.Num v)) n.volatile));
    ("wall_us", Jsonx.Num (Float.round (n.wall_ns /. 10.0) /. 100.0));
  ]

let rec json_of_node ?(wall = false) (n : Trace.node) =
  Jsonx.Obj
    ([ ("span", Jsonx.Str n.name) ]
    @ (match n.attrs with [] -> [] | a -> [ ("attrs", str_obj a) ])
    @ (match n.counters with [] -> [] | c -> [ ("counters", int_obj c) ])
    @ (match n.children with
      | [] -> []
      | cs ->
        [ ("children", Jsonx.List (List.map (json_of_node ~wall) cs)) ])
    @ if wall then wall_fields n else [])

let rec node_of_json j =
  let ( let* ) = Option.bind in
  let* name = Option.bind (Jsonx.member "span" j) Jsonx.str in
  let obj_pairs field of_v =
    match Jsonx.member field j with
    | Some (Jsonx.Obj kvs) ->
      List.filter_map (fun (k, v) -> Option.map (fun v -> (k, v)) (of_v v)) kvs
    | Some _ | None -> []
  in
  let attrs = obj_pairs "attrs" Jsonx.str in
  let counters = obj_pairs "counters" Jsonx.int in
  let volatile = obj_pairs "volatile" Jsonx.num in
  let wall_ns =
    match Option.bind (Jsonx.member "wall_us" j) Jsonx.num with
    | Some us -> us *. 1e3
    | None -> 0.0
  in
  let children =
    match Jsonx.member "children" j with
    | Some (Jsonx.List cs) -> List.filter_map node_of_json cs
    | Some _ | None -> []
  in
  Some { Trace.name; attrs; counters; volatile; wall_ns; children }

let jsonl ?(wall = false) node =
  let rec go depth acc (n : Trace.node) =
    let line =
      Jsonx.to_string
        (Jsonx.Obj
           ([
              ("depth", Jsonx.Num (float_of_int depth));
              ("span", Jsonx.Str n.name);
            ]
           @ (match n.attrs with [] -> [] | a -> [ ("attrs", str_obj a) ])
           @ (match n.counters with
             | [] -> []
             | c -> [ ("counters", int_obj c) ])
           @ if wall then wall_fields n else []))
    in
    List.fold_left (go (depth + 1)) (line :: acc) n.children
  in
  List.rev (go 0 [] node)

let write_jsonl ?wall ~path node =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      List.iter
        (fun line ->
          output_string oc line;
          output_char oc '\n')
        (jsonl ?wall node))
