type t = {
  n_jobs : int;
  q : (unit -> unit) Workq.t;
  domains : unit Domain.t array;
  mutable down : bool;
}

(* Set in every worker domain so that a nested [map] (a sweep issued
   from inside a task) runs inline instead of re-entering the queue —
   re-entering could deadlock with every worker blocked on subtasks
   that only workers can run. *)
let in_worker = Domain.DLS.new_key (fun () -> false)

let default_jobs () = Domain.recommended_domain_count ()

let create ?(jobs = 1) () =
  let n_jobs = max 1 jobs in
  let q = Workq.create () in
  let domains =
    if n_jobs = 1 then [||]
    else
      Array.init n_jobs (fun _ ->
          Domain.spawn (fun () ->
              Domain.DLS.set in_worker true;
              let rec loop () =
                match Workq.pop q with
                | Some task ->
                  task ();
                  loop ()
                | None -> ()
              in
              loop ()))
  in
  { n_jobs; q; domains; down = false }

let jobs t = t.n_jobs

let map_outcome t f xs =
  let items = Array.of_list xs in
  let n = Array.length items in
  if n = 0 then []
  else if
    Array.length t.domains = 0 || t.down || Domain.DLS.get in_worker || n = 1
  then
    List.map
      (fun x ->
        match f x with
        | v -> Ok v
        | exception e -> Error (e, Printexc.get_raw_backtrace ()))
      xs
  else begin
    let results = Array.make n None in
    let mutex = Mutex.create () in
    let finished = Condition.create () in
    let remaining = ref n in
    Array.iteri
      (fun i x ->
        Workq.push t.q (fun () ->
            (match f x with
            | v -> results.(i) <- Some (Ok v)
            | exception e ->
              results.(i) <- Some (Error (e, Printexc.get_raw_backtrace ())));
            Mutex.lock mutex;
            decr remaining;
            if !remaining = 0 then Condition.signal finished;
            Mutex.unlock mutex))
      items;
    Mutex.lock mutex;
    while !remaining > 0 do
      Condition.wait finished mutex
    done;
    Mutex.unlock mutex;
    List.init n (fun i ->
        match results.(i) with Some r -> r | None -> assert false)
  end

let map t f xs =
  let outcomes = map_outcome t f xs in
  (* The serial run would have hit the lowest-indexed failure first;
     report that one. *)
  List.iter
    (function
      | Error (e, bt) -> Printexc.raise_with_backtrace e bt
      | Ok _ -> ())
    outcomes;
  List.map (function Ok v -> v | Error _ -> assert false) outcomes

let shutdown t =
  if not t.down then begin
    t.down <- true;
    Workq.close t.q;
    Array.iter Domain.join t.domains
  end
