(* JSON machine descriptions: the import/export format that lets
   machines arrive from files (`hcvliw --machine FILE`), from the serve
   wire protocol (the "machine" request field) and from sweep cells,
   instead of only from compiled-in presets.

   Shape:
     { "name": "my-machine",
       "clusters": [ { "int": 1, "fp": 1, "mem": 1, "regs": 16,
                       "name": "c0" }, ... ],
       "icn": { "buses": 1, "latency": 1 },
       "grid": "unrestricted"
             | { "kind": "uniform",  "steps": 8, "top": "20/9" }
             | { "kind": "dividers", "steps": 8, "base": "20/9" } }

   "icn" and "grid" are optional (1 bus / 1 cycle, unrestricted);
   cluster "name" and "regs" are optional ("c<i>", 16).  Rationals use
   Codec's exact "num/den" form.  [to_string] emits every field
   explicitly, so it is a canonical form: structurally equal machines
   serialise byte-identically, which is what lets the serialised text
   serve as a cache-key component. *)

open Hcv_support
open Hcv_machine
module J = Jsonx

let ( let* ) = Result.bind

let err fmt = Format.kasprintf (fun msg -> Error msg) fmt

let int_field ?default j k =
  match J.member k j with
  | None -> (
    match default with
    | Some d -> Ok d
    | None -> err "missing integer field %S" k)
  | Some v -> (
    match J.int v with
    | Some n when n >= 0 -> Ok n
    | Some _ -> err "field %S must be non-negative" k
    | None -> err "field %S must be an integer" k)

let q_field j k =
  match Option.bind (J.member k j) J.str with
  | None -> err "grid needs a rational string field %S (e.g. \"20/9\")" k
  | Some s -> (
    match Codec.q_of_string s with
    | Some q when Q.(zero < q) -> Ok q
    | Some _ -> err "field %S must be a positive rational" k
    | None -> err "field %S is not a rational (\"num/den\")" k)

let cluster_of_json i j =
  match j with
  | J.Obj _ ->
    let* int_fus = int_field j "int" in
    let* fp_fus = int_field j "fp" in
    let* mem_ports = int_field j "mem" in
    let* registers = int_field ~default:16 j "regs" in
    let name =
      Option.value
        (Option.bind (J.member "name" j) J.str)
        ~default:(Printf.sprintf "c%d" i)
    in
    Ok (Cluster.make ~name ~int_fus ~fp_fus ~mem_ports ~registers ())
  | _ -> err "cluster %d must be a JSON object" i

let icn_of_json = function
  | None -> Ok (Icn.make ~buses:1 ())
  | Some j ->
    let* buses = int_field ~default:1 j "buses" in
    let* latency = int_field ~default:1 j "latency" in
    if buses < 1 then err "icn \"buses\" must be >= 1"
    else if latency < 1 then err "icn \"latency\" must be >= 1"
    else Ok (Icn.make ~latency_cycles:latency ~buses ())

let grid_of_json = function
  | None -> Ok Freqgrid.Unrestricted
  | Some (J.Str "unrestricted") -> Ok Freqgrid.Unrestricted
  | Some (J.Obj _ as j) -> (
    let* steps = int_field j "steps" in
    if steps < 1 then err "grid \"steps\" must be >= 1"
    else
      match Option.bind (J.member "kind" j) J.str with
      | Some "uniform" ->
        let* top = q_field j "top" in
        Ok (Freqgrid.uniform ~steps ~top)
      | Some "dividers" ->
        let* base = q_field j "base" in
        Ok (Freqgrid.dividers ~steps ~base)
      | Some k -> err "unknown grid kind %S" k
      | None -> err "grid needs \"kind\": \"uniform\" or \"dividers\"")
  | Some _ -> err "\"grid\" must be \"unrestricted\" or an object"

let of_json j =
  match j with
  | J.Obj _ -> (
    let name =
      Option.value (Option.bind (J.member "name" j) J.str) ~default:"custom"
    in
    match Option.bind (J.member "clusters" j) J.list with
    | None -> err "machine needs a \"clusters\" list"
    | Some [] -> err "machine needs at least one cluster"
    | Some cs ->
      let* clusters =
        List.fold_left
          (fun acc (i, c) ->
            let* acc = acc in
            let* c = cluster_of_json i c in
            Ok (c :: acc))
          (Ok [])
          (List.mapi (fun i c -> (i, c)) cs)
      in
      let clusters = Array.of_list (List.rev clusters) in
      let* icn = icn_of_json (J.member "icn" j) in
      let* grid = grid_of_json (J.member "grid" j) in
      (* Structural validity beyond the constructors: a machine no part
         of which can execute some demanded kind is caught later, per
         workload; a machine with no issue capacity at all is caught
         here. *)
      if
        not
          (List.exists
             (fun k -> Machine.supports { name; clusters; icn; grid } k)
             Hcv_ir.Opcode.all_fu_kinds)
      then err "machine has no functional units on any cluster"
      else Ok (Machine.make ~name ~grid ~clusters ~icn ()))
  | _ -> err "machine description must be a JSON object"

let of_string s =
  match J.of_string s with
  | Error msg -> err "machine description: %s" msg
  | Ok j -> of_json j

let to_json (m : Machine.t) =
  J.Obj
    [
      ("name", J.Str m.Machine.name);
      ( "clusters",
        J.List
          (Array.to_list
             (Array.map
                (fun (c : Cluster.t) ->
                  J.Obj
                    [
                      ("name", J.Str c.Cluster.name);
                      ("int", J.Num (float_of_int c.Cluster.int_fus));
                      ("fp", J.Num (float_of_int c.Cluster.fp_fus));
                      ("mem", J.Num (float_of_int c.Cluster.mem_ports));
                      ("regs", J.Num (float_of_int c.Cluster.registers));
                    ])
                m.Machine.clusters)) );
      ( "icn",
        J.Obj
          [
            ("buses", J.Num (float_of_int m.Machine.icn.Icn.buses));
            ( "latency",
              J.Num (float_of_int m.Machine.icn.Icn.latency_cycles) );
          ] );
      ( "grid",
        match m.Machine.grid with
        | Freqgrid.Unrestricted -> J.Str "unrestricted"
        | Freqgrid.Uniform { steps; top } ->
          J.Obj
            [
              ("kind", J.Str "uniform");
              ("steps", J.Num (float_of_int steps));
              ("top", J.Str (Codec.q_to_string top));
            ]
        | Freqgrid.Dividers { steps; base } ->
          J.Obj
            [
              ("kind", J.Str "dividers");
              ("steps", J.Num (float_of_int steps));
              ("base", J.Str (Codec.q_to_string base));
            ] );
    ]

let to_string m = J.to_string (to_json m)
