open Hcv_support
open Hcv_machine
open Hcv_energy

let digest parts = Digest.to_hex (Digest.string (String.concat "\x00" parts))

let float_to_string f = Printf.sprintf "%h" f
let float_of_string s = float_of_string_opt s

let q_to_string q = Printf.sprintf "%d/%d" (Q.num q) (Q.den q)

let q_of_string s =
  match String.split_on_char '/' s with
  | [ n ] -> Option.map Q.of_int (int_of_string_opt n)
  | [ n; d ] -> (
    match (int_of_string_opt n, int_of_string_opt d) with
    | Some n, Some d when d <> 0 -> Some (Q.make n d)
    | _, _ -> None)
  | _ -> None

let grid_key = function
  | Freqgrid.Unrestricted -> "unrestricted"
  | Freqgrid.Uniform { steps; top } ->
    Printf.sprintf "uniform:%d:%s" steps (q_to_string top)
  | Freqgrid.Dividers { steps; base } ->
    Printf.sprintf "dividers:%d:%s" steps (q_to_string base)

(* The historical key (name, cluster count, grid) is kept byte-for-byte
   for the paper-shaped machines so existing caches stay valid; any
   other cluster mix or ICN appends its full structural signature —
   name alone no longer pins the shape once machines can arrive from
   description files. *)
let machine_key (m : Machine.t) =
  let base =
    Printf.sprintf "%s:%d:%s" m.Machine.name (Machine.n_clusters m)
      (grid_key m.Machine.grid)
  in
  let paper_shaped =
    Array.for_all (fun c -> c = Cluster.paper) m.Machine.clusters
    && m.Machine.icn.Icn.latency_cycles = 1
  in
  if paper_shaped then base
  else
    Printf.sprintf "%s:clusters=%s:icn=%d.%d" base
      (String.concat ","
         (Array.to_list
            (Array.map
               (fun (c : Cluster.t) ->
                 Printf.sprintf "%d.%d.%d.%d" c.Cluster.int_fus c.Cluster.fp_fus
                   c.Cluster.mem_ports c.Cluster.registers)
               m.Machine.clusters)))
      m.Machine.icn.Icn.buses m.Machine.icn.Icn.latency_cycles

let params_key (p : Params.t) =
  String.concat ":"
    (List.map float_to_string
       [
         p.Params.frac_icn; p.Params.frac_cache; p.Params.leak_cluster;
         p.Params.leak_icn; p.Params.leak_cache;
       ])

let point_to_json (p : Opconfig.point) =
  Jsonx.Obj
    [
      ("ct", Jsonx.Str (q_to_string p.Opconfig.cycle_time));
      ("vdd", Jsonx.Str (float_to_string p.Opconfig.vdd));
    ]

let point_of_json j =
  match
    ( Option.bind (Jsonx.member "ct" j) Jsonx.str,
      Option.bind (Jsonx.member "vdd" j) Jsonx.str )
  with
  | Some ct, Some vdd -> (
    match (q_of_string ct, float_of_string vdd) with
    | Some cycle_time, Some vdd -> Some { Opconfig.cycle_time; vdd }
    | _, _ -> None)
  | _, _ -> None

let opconfig_to_json (c : Opconfig.t) =
  Jsonx.Obj
    [
      ( "clusters",
        Jsonx.List
          (Array.to_list (Array.map point_to_json c.Opconfig.cluster_points))
      );
      ("icn", point_to_json c.Opconfig.icn_point);
      ("cache", point_to_json c.Opconfig.cache_point);
    ]

let opconfig_of_json ~machine j =
  let ( let* ) = Option.bind in
  let* clusters = Option.bind (Jsonx.member "clusters" j) Jsonx.list in
  let* icn = Jsonx.member "icn" j in
  let* cache = Jsonx.member "cache" j in
  let* cluster_points =
    List.fold_left
      (fun acc p ->
        match (acc, point_of_json p) with
        | Some acc, Some p -> Some (p :: acc)
        | _, _ -> None)
      (Some []) clusters
    |> Option.map (fun l -> Array.of_list (List.rev l))
  in
  let* icn_point = point_of_json icn in
  let* cache_point = point_of_json cache in
  if Array.length cluster_points <> Machine.n_clusters machine then None
  else
    match Opconfig.make ~machine ~cluster_points ~icn_point ~cache_point with
    | c -> Some c
    | exception Invalid_argument _ -> None

let activity_to_json (a : Activity.t) =
  Jsonx.Obj
    [
      ("t", Jsonx.Str (float_to_string a.Activity.exec_time_ns));
      ( "ins",
        Jsonx.List
          (Array.to_list
             (Array.map
                (fun e -> Jsonx.Str (float_to_string e))
                a.Activity.per_cluster_ins_energy)) );
      ("comms", Jsonx.Str (float_to_string a.Activity.n_comms));
      ("mem", Jsonx.Str (float_to_string a.Activity.n_mem));
    ]

let activity_of_json j =
  let ( let* ) = Option.bind in
  let fstr field = Option.bind (Jsonx.member field j) Jsonx.str in
  let* t = Option.bind (fstr "t") float_of_string in
  let* ins = Option.bind (Jsonx.member "ins" j) Jsonx.list in
  let* comms = Option.bind (fstr "comms") float_of_string in
  let* mem = Option.bind (fstr "mem") float_of_string in
  let* per_cluster =
    List.fold_left
      (fun acc v ->
        match (acc, Option.bind (Jsonx.str v) float_of_string) with
        | Some acc, Some f -> Some (f :: acc)
        | _, _ -> None)
      (Some []) ins
    |> Option.map (fun l -> Array.of_list (List.rev l))
  in
  match
    Activity.make ~exec_time_ns:t ~per_cluster_ins_energy:per_cluster
      ~n_comms:comms ~n_mem:mem
  with
  | a -> Some a
  | exception Invalid_argument _ -> None

let floats_to_string fs =
  Jsonx.to_string
    (Jsonx.List (List.map (fun f -> Jsonx.Str (float_to_string f)) fs))

let floats_of_string s =
  match Jsonx.of_string s with
  | Ok (Jsonx.List xs) ->
    List.fold_left
      (fun acc v ->
        match (acc, Option.bind (Jsonx.str v) float_of_string) with
        | Some acc, Some f -> Some (f :: acc)
        | _, _ -> None)
      (Some []) xs
    |> Option.map List.rev
  | Ok _ | Error _ -> None
