(** A fixed pool of OCaml 5 worker domains fed by a {!Workq}.

    The pool exists to parallelise the independent cells of a design-
    space sweep *without changing its result*: {!map} hands each element
    to a worker, stores every result in the slot of its submission
    index, and returns the list in submission order, so the output is
    identical to [List.map] regardless of worker count or completion
    order.

    [jobs = 1] (the default) spawns no domains and runs everything in
    the calling domain — the serial behaviour, bit for bit.  A {!map}
    issued from *inside* a worker (a nested sweep) also runs inline in
    that worker, which makes nesting safe: workers never block waiting
    for tasks that only they could execute. *)

type t

val create : ?jobs:int -> unit -> t
(** [jobs] worker domains (default 1 = serial; values [< 1] are clamped
    to 1).  With [jobs > 1] the pool spawns [jobs] domains that live
    until {!shutdown}. *)

val jobs : t -> int

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val map_outcome :
  t -> ('a -> 'b) -> 'a list
  -> ('b, exn * Printexc.raw_backtrace) result list
(** Supervised parallel [List.map]: every task runs to completion and
    each element's outcome is reported in its own slot — [Error] holds
    the raised exception with its backtrace — so one failing element
    cannot abort the fan-out.  Deterministic ordering as {!map}. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Parallel [List.map] with deterministic ordering.  If one or more
    applications raise, every task still runs to completion and the
    exception of the *lowest-indexed* failing element is re-raised (with
    its original backtrace) — matching what the serial run would report
    first.  [{!map_outcome} + re-raise]. *)

val shutdown : t -> unit
(** Close the queue and join the workers.  Idempotent.  The pool must
    not be used afterwards. *)
