(** Trace serialization: {!Hcv_obs.Trace.node} to/from {!Jsonx}, plus
    the JSONL rendering behind [--trace FILE].

    Two views of a trace:
    - the {b deterministic} view ([wall:false], the default) — span
      names, attrs and counters only.  Byte-identical for any worker
      count and cache state, so it can be golden-pinned and diffed;
    - the {b timed} view ([wall:true]) — adds the [wall_us] duration
      and the volatile gauges as the *last* fields of every object, so
      a consumer (or CI) can strip them mechanically.

    The JSONL form is one object per span in pre-order with an explicit
    [depth]; depth + order reconstruct the tree unambiguously. *)

open Hcv_obs

val json_of_node : ?wall:bool -> Trace.node -> Jsonx.t
(** Nested object form (children inline), used for cache round-trips.
    Default [wall:false]. *)

val node_of_json : Jsonx.t -> Trace.node option
(** Inverse of {!json_of_node}; missing wall/volatile fields decode as
    zero/empty. *)

val jsonl : ?wall:bool -> Trace.node -> string list
(** Pre-order, one line per span: [{"depth":d,"span":name,...}]. *)

val write_jsonl : ?wall:bool -> path:string -> Trace.node -> unit
(** Write (truncate) [path] with {!jsonl} lines. *)
