(** JSON machine descriptions.

    The import/export format through which machines reach the system
    from files ([hcvliw ... --machine FILE]), the serve wire protocol
    (the ["machine"] request field) and sweep cells — instead of only
    from compiled-in presets.  See the implementation header for the
    exact shape; rationals use {!Codec.q_to_string}'s ["num/den"]
    form. *)

open Hcv_machine

val of_json : Jsonx.t -> (Machine.t, string) result
val of_string : string -> (Machine.t, string) result

val to_json : Machine.t -> Jsonx.t

val to_string : Machine.t -> string
(** Canonical: every field is emitted explicitly, so structurally equal
    machines serialise byte-identically and the text can serve as a
    cache-key component. *)
