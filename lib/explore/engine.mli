(** The deterministic parallel sweep engine, with supervised execution.

    A sweep is a list of independent cells mapped through a pure
    function.  The engine (a) distributes the cells over a fixed
    {!Pool} of worker domains, (b) memoises each cell's result in a
    persistent {!Cache} keyed by a content hash of the cell's inputs,
    (c) feeds per-stage telemetry to a {!Progress} reporter, and
    (d) {e supervises} every cell: a raising task is retried under a
    bounded-backoff {!Hcv_resilience.Retry} policy and, if it keeps
    failing, quarantined as a structured [Diag] in its own result slot
    while every healthy cell completes — one poisoned cell can no
    longer abort a whole fan-out.

    Determinism contract: results come back in submission order and
    workers never share mutable state, so the output of {!sweep} and
    {!map} is identical to the serial [List.map] for any worker count
    and any mix of cache hits — which is what lets a bench assert
    byte-identical tables between [--jobs 1] and [--jobs N], and
    between cold and warm caches.  Faults recovered by retry leave the
    output untouched too (the [hcvliw chaos] command pins this).

    Fault points ({!Hcv_resilience.Inject}, queried with the cell key):
    [Task_raise] fires before the task body, [Slow_cell] stalls a
    worker briefly to shuffle completion order. *)

type t

type ('a, 'b) codec = {
  cell_key : 'a -> string;
      (** content address; must cover every input that affects the
          result *)
  encode : 'b -> string;
  decode : string -> 'b option;
      (** [None] on a corrupt or stale entry — the engine recomputes
          the cell (and reclassifies the probe as a miss) instead of
          failing *)
}

val create :
  ?jobs:int -> ?cache:Cache.t -> ?progress:Progress.t
  -> ?policy:Hcv_resilience.Retry.policy -> unit -> t
(** [jobs] defaults to 1 (serial); [cache] to no memoisation;
    [progress] to a silent reporter; [policy] to
    {!Hcv_resilience.Retry.default_policy} (3 attempts, doubling
    backoff from 1 ms). *)

val jobs : t -> int
val cache : t -> Cache.t option
val progress : t -> Progress.t

val map :
  t -> ?label:string -> ?obs:Hcv_obs.Trace.span -> ('a -> 'b) -> 'a list
  -> 'b list
(** Parallel deterministic map, no memoisation, no supervision (one
    telemetry stage; an exception propagates as in {!Pool.map}).  With
    [?obs] the stage reports a deterministic ["cells"] counter and
    per-worker busy-time gauges into the span. *)

val sweep : t -> ?label:string -> ?obs:Hcv_obs.Trace.span
  -> codec:('a, 'b) codec -> ('a -> 'b) -> 'a list
  -> ('b, Hcv_obs.Diag.t) result list
(** Memoised, supervised parallel map: cells whose key is in the cache
    are served from it; the rest are computed on the pool under the
    retry policy and stored the moment each cell completes, so a killed
    run checkpoints everything it finished.  A cell that fails every
    attempt returns [Error diag] (codes ["task-failed"] /
    ["injected-fault"], context: cell key, attempts, exception) in its
    own slot — it is not cached, so a later run retries it.  Duplicate
    keys within one call are computed independently (sweep cells are
    normally distinct).  With [?obs] the stage reports a deterministic
    ["cells"] counter plus volatile ["cache.hits"]/["cache.computed"]/
    ["resilience.retries"]/["resilience.quarantined"]/per-worker-busy
    gauges (cache, fault-plan and worker figures are run-dependent, so
    they never enter the deterministic counter view). *)

val shutdown : t -> unit
(** Join the workers and close the cache file.  Idempotent; the cache
    is closed even when joining a worker raises. *)
